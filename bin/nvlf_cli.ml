(* nvlf: a scriptable driver for the log-free durable data structures.

     nvlf stats  --structure skiplist --size 1024      per-flavor cost profile
     nvlf drill  --structure bst --rounds 200          crash-point fuzzing
     nvlf run      --structure hash --flavor lc ...    one workload run
     nvlf sanitize --struct list --max-dirty 10        NVSan + crash-state enum
     nvlf trace  --structure hash --out trace.json     flight-record a run
     nvlf top    --structure hash --interval 0.5       live substrate rates

   The benchmark figures live in bench/main.exe; this tool is for poking at
   a single configuration interactively. *)

open Cmdliner
open Workload
module I = Harness.Instance

let structure_conv =
  let parse = function
    | "list" -> Ok I.List
    | "hash" -> Ok I.Hash
    | "skiplist" -> Ok I.Skiplist
    | "bst" -> Ok I.Bst
    | s -> Error (`Msg ("unknown structure: " ^ s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (I.structure_name s))

let flavor_conv =
  let parse = function
    | "volatile" -> Ok I.Volatile
    | "lp" | "link-persist" -> Ok I.Lp
    | "lc" | "link-cache" -> Ok I.Lc
    | "log" -> Ok I.Log
    | s -> Error (`Msg ("unknown flavor: " ^ s))
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (I.flavor_name f))

let structure_arg =
  Arg.(
    value
    & opt structure_conv I.Hash
    & info [ "structure" ] ~doc:"list | hash | skiplist | bst")

let size_arg = Arg.(value & opt int 1024 & info [ "size" ] ~doc:"Steady-state size.")
let threads_arg = Arg.(value & opt int 1 & info [ "threads" ] ~doc:"Domains.")
let duration_arg = Arg.(value & opt float 0.3 & info [ "duration" ] ~doc:"Seconds.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")

let calibrated_latency () =
  let l = Nvm.Latency_model.default () in
  l.nvram_write_ns <- Harness.Calibrate.write_ns ();
  l

(* stats: run each flavor and print its cost profile. *)
let stats structure size nthreads duration seed =
  Printf.printf "%s, %d elements, %d thread(s), %.2fs per flavor\n"
    (I.structure_name structure) size nthreads duration;
  Printf.printf "%-14s %12s %9s %8s %9s %9s %9s %11s %11s\n" "flavor" "ops/s"
    "syncs/op" "wb/op" "loads/op" "APT hit%" "LC adds%" "p50" "p99";
  List.iter
    (fun flavor ->
      let inst =
        I.create ~nthreads ~size_hint:size ~latency:(calibrated_latency ())
          ~structure ~flavor ()
      in
      Keygen.prefill inst.ops ~size ~seed;
      Nvm.Heap.reset_stats (Lfds.Ctx.heap inst.ctx);
      let r =
        Run.throughput ~nthreads ~duration
          ~step:
            (Run.set_workload inst.ops ~mix:Keygen.update_only
               ~range:(Keygen.range_for ~size))
          ~seed ()
      in
      let st = Nvm.Heap.aggregate_stats (Lfds.Ctx.heap inst.ctx) in
      let ops = float_of_int (max 1 r.total_ops) in
      let pct a b = if a + b = 0 then 0. else 100. *. float_of_int a /. float_of_int (a + b) in
      let hist =
        Run.latency_profile ~n:2000
          ~step:
            (Run.set_workload inst.ops ~mix:Keygen.update_only
               ~range:(Keygen.range_for ~size))
          ~seed ()
      in
      Printf.printf "%-14s %12.0f %9.2f %8.2f %9.1f %8.1f%% %8.1f%% %11s %11s\n"
        (I.flavor_name flavor) r.throughput
        (float_of_int st.sync_batches /. ops)
        (float_of_int st.write_backs /. ops)
        (float_of_int st.loads /. ops)
        (pct st.apt_hits st.apt_misses)
        (pct st.lc_adds st.lc_fails)
        (Report.human_ns (Histogram.percentile hist 50.))
        (Report.human_ns (Histogram.percentile hist 99.)))
    [ I.Volatile; I.Lp; I.Lc; I.Log ]

(* drill: randomized mid-operation crash + recovery verification. *)
let drill structure rounds seed =
  let rng = Xoshiro.make ~seed in
  let inst = ref (I.create ~nthreads:1 ~size_hint:256 ~structure ~flavor:I.Lp ()) in
  let model = Hashtbl.create 64 in
  let crashes = ref 0 and violations = ref 0 in
  for round = 1 to rounds do
    let heap = Lfds.Ctx.heap !inst.ctx in
    Nvm.Heap.set_trip heap (Xoshiro.in_range rng ~lo:1 ~hi:800);
    (try
       for _ = 1 to 25 do
         let key = Xoshiro.in_range rng ~lo:1 ~hi:512 in
         if Xoshiro.chance rng ~num:1 ~den:2 then begin
           if !inst.ops.insert ~tid:0 ~key ~value:key then
             Hashtbl.replace model key key
         end
         else if !inst.ops.remove ~tid:0 ~key then Hashtbl.remove model key
       done;
       Nvm.Heap.disarm_trip heap
     with Nvm.Heap.Crashed ->
       incr crashes;
       let recovered, _, _ = I.crash_and_recover ~seed:round !inst in
       inst := recovered;
       let diffs = ref [] in
       for key = 1 to 512 do
         if Hashtbl.mem model key <> (!inst.ops.search ~tid:0 ~key <> None) then
           diffs := key :: !diffs
       done;
       (match !diffs with
       | [] -> ()
       | [ key ] ->
           if !inst.ops.search ~tid:0 ~key <> None then Hashtbl.replace model key key
           else Hashtbl.remove model key
       | ks -> violations := !violations + List.length ks))
  done;
  Printf.printf "%s: %d rounds, %d crashes, %d violations\n"
    (I.structure_name structure) rounds !crashes !violations;
  if !violations > 0 then exit 1

(* sanitize: NVSan online pass over both durable flavors, then exhaustive
   small-scope crash-state enumeration. Exit 1 on any violation — the CI
   gate. *)
let sanitize structure ops max_dirty seed =
  let failed = ref false in
  List.iter
    (fun flavor ->
      let inst = I.create ~nthreads:1 ~size_hint:256 ~structure ~flavor () in
      let cfg =
        {
          (Sanitizer.Nvsan.default_config ~durable:true) with
          strict_deref = true;
          root_limit = Lfds.Ctx.static_limit inst.ctx;
        }
      in
      let san = Sanitizer.Nvsan.attach ~config:cfg (Lfds.Ctx.heap inst.ctx) in
      let rng = Xoshiro.make ~seed in
      for _ = 1 to ops do
        let key = Xoshiro.in_range rng ~lo:1 ~hi:256 in
        match Xoshiro.below rng 10 with
        | 0 | 1 | 2 | 3 -> ignore (inst.ops.insert ~tid:0 ~key ~value:key)
        | 4 | 5 | 6 -> ignore (inst.ops.remove ~tid:0 ~key)
        | _ -> ignore (inst.ops.search ~tid:0 ~key)
      done;
      Sanitizer.Nvsan.detach san;
      List.iter
        (fun v -> print_endline (Sanitizer.Nvsan.violation_to_string v))
        (Sanitizer.Nvsan.violations san);
      let n = Sanitizer.Nvsan.violation_count san in
      Printf.printf "sanitize %s/%s: %d ops, %d violation(s)\n%!"
        (I.structure_name structure) (I.flavor_name flavor) ops n;
      if n > 0 then failed := true)
    [ I.Lp; I.Lc ];
  let r = Sanitizer.Crash_enum.run ~structure ~max_dirty ~seed () in
  Format.printf "crash-enum %s: %a@." (I.structure_name structure)
    Sanitizer.Crash_enum.pp_result r;
  List.iter print_endline r.Sanitizer.Crash_enum.violations;
  if r.Sanitizer.Crash_enum.violations <> [] then failed := true;
  if !failed then exit 1

(* run: one timed workload with a final summary. *)
let run_once structure flavor size nthreads duration seed update_pct =
  let inst =
    I.create ~nthreads ~size_hint:size ~latency:(calibrated_latency ())
      ~structure ~flavor ()
  in
  Keygen.prefill inst.ops ~size ~seed;
  let r =
    Run.throughput ~nthreads ~duration
      ~step:
        (Run.set_workload inst.ops
           ~mix:(Keygen.mixed ~update_pct)
           ~range:(Keygen.range_for ~size))
      ~seed ()
  in
  Printf.printf "%s / %s: %s over %.2fs (%d ops; per-thread: %s)\n"
    (I.structure_name structure) (I.flavor_name flavor)
    (Report.human_ops r.throughput) r.duration r.total_ops
    (String.concat ","
       (Array.to_list (Array.map string_of_int r.per_thread)));
  Printf.printf "final size: %d\n" (inst.ops.size ())

(* trace: flight-record one workload run with NVTrace and write the spans
   as Chrome trace-event JSON. With --sanitize, NVSan rides the observer
   multiplexer alongside the tracer; any violation exits 1. *)
let trace_run structure flavor size nthreads duration seed update_pct out
    ring_size sanitize =
  let inst =
    I.create ~nthreads ~size_hint:size ~latency:(calibrated_latency ())
      ~structure ~flavor ()
  in
  let heap = Lfds.Ctx.heap inst.ctx in
  let san =
    if sanitize && flavor <> I.Log then
      Some
        (Sanitizer.Nvsan.attach
           ~config:
             {
               (Sanitizer.Nvsan.default_config
                  ~durable:(match flavor with I.Lp | I.Lc -> true | _ -> false))
               with
               root_limit = Lfds.Ctx.static_limit inst.ctx;
             }
           heap)
    else None
  in
  Keygen.prefill inst.ops ~size ~seed;
  Nvm.Heap.reset_stats heap;
  let tr = Trace.Nvtrace.attach ~ring_size heap in
  let r =
    Run.throughput ~nthreads ~duration
      ~step:
        (Run.set_workload inst.ops
           ~mix:(Keygen.mixed ~update_pct)
           ~range:(Keygen.range_for ~size))
      ~seed ()
  in
  Trace.Nvtrace.detach tr;
  let b = Trace.Chrome_trace.create () in
  Trace.Chrome_trace.add_process b ~pid:0
    ~name:
      (Printf.sprintf "%s/%s size=%d t=%d" (I.structure_name structure)
         (I.flavor_name flavor) size nthreads);
  Trace.Chrome_trace.add_spans b ~pid:0 (Trace.Nvtrace.spans tr);
  Trace.Chrome_trace.write_file b out;
  Printf.printf "%s / %s: %s over %.2fs\n" (I.structure_name structure)
    (I.flavor_name flavor)
    (Report.human_ops r.throughput)
    r.duration;
  Printf.printf
    "recorded %d spans (%d retained, %d dropped to wrap-around); wrote %d \
     events to %s\n"
    (Trace.Nvtrace.span_count tr)
    (List.length (Trace.Nvtrace.spans tr))
    (Trace.Nvtrace.dropped tr)
    (Trace.Chrome_trace.event_count b)
    out;
  List.iter
    (fun (op, h) ->
      let a = List.assoc op (Trace.Nvtrace.attribution tr) in
      let per v =
        float_of_int v /. float_of_int (max 1 a.Trace.Nvtrace.ops)
      in
      Printf.printf
        "%-18s n=%-9d p50=%-9s p99=%-9s p99.9=%-9s | wb/op %.2f fence/op %.2f\n"
        op (Histogram.count h)
        (Report.human_ns (Histogram.percentile h 50.))
        (Report.human_ns (Histogram.percentile h 99.))
        (Report.human_ns (Histogram.percentile h 99.9))
        (per a.Trace.Nvtrace.a_write_backs)
        (per a.Trace.Nvtrace.a_fences))
    (Trace.Nvtrace.histograms tr);
  match san with
  | None -> ()
  | Some s ->
      Sanitizer.Nvsan.detach s;
      let n = Sanitizer.Nvsan.violation_count s in
      List.iter
        (fun v -> print_endline (Sanitizer.Nvsan.violation_to_string v))
        (Sanitizer.Nvsan.violations s);
      Printf.printf "sanitizer: %d violation(s)\n%!" n;
      if n > 0 then exit 1

(* top: run the workload while the main domain prints interval-diffed
   substrate rates, like top(1) for the persistence layer. *)
let top structure flavor size nthreads duration seed update_pct interval =
  let inst =
    I.create ~nthreads ~size_hint:size ~latency:(calibrated_latency ())
      ~structure ~flavor ()
  in
  let heap = Lfds.Ctx.heap inst.ctx in
  Keygen.prefill inst.ops ~size ~seed;
  Nvm.Heap.reset_stats heap;
  Printf.printf "%s / %s, %d elements, %d thread(s), tick %.2fs\n"
    (I.structure_name structure) (I.flavor_name flavor) size nthreads interval;
  print_endline Trace.Metrics.header;
  let last = ref (Trace.Metrics.sample heap) in
  let r =
    Run.throughput ~interval
      ~on_tick:(fun ~elapsed ->
        let now = Trace.Metrics.sample heap in
        let older = !last in
        last := now;
        let d, dt = Trace.Metrics.delta ~older ~newer:now in
        Printf.printf "%6.1fs %s\n%!" elapsed (Trace.Metrics.report ~dt d))
      ~nthreads ~duration
      ~step:
        (Run.set_workload inst.ops
           ~mix:(Keygen.mixed ~update_pct)
           ~range:(Keygen.range_for ~size))
      ~seed ()
  in
  Printf.printf "total: %s over %.2fs\n"
    (Report.human_ops r.throughput)
    r.duration

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Cost profile of every flavor")
    Term.(
      const stats $ structure_arg $ size_arg $ threads_arg $ duration_arg
      $ seed_arg)

let drill_cmd =
  let rounds = Arg.(value & opt int 100 & info [ "rounds" ] ~doc:"Rounds.") in
  Cmd.v (Cmd.info "drill" ~doc:"Randomized crash-point fuzzing")
    Term.(const drill $ structure_arg $ rounds $ seed_arg)

let sanitize_cmd =
  let structure =
    Arg.(
      value
      & opt structure_conv I.Hash
      & info [ "structure"; "struct" ] ~doc:"list | hash | skiplist | bst")
  in
  let ops =
    Arg.(value & opt int 4000 & info [ "ops" ] ~doc:"Online sanitized ops.")
  in
  let max_dirty =
    Arg.(
      value
      & opt int 10
      & info [ "max-dirty" ]
          ~doc:"Enumerate crash states for trips with up to this many dirty lines.")
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:"NVSan pass + exhaustive crash-state enumeration (exit 1 on violation)")
    Term.(const sanitize $ structure $ ops $ max_dirty $ seed_arg)

let run_cmd =
  let flavor =
    Arg.(value & opt flavor_conv I.Lc & info [ "flavor" ] ~doc:"volatile|lp|lc|log")
  in
  let update_pct =
    Arg.(value & opt int 100 & info [ "updates" ] ~doc:"Update percentage.")
  in
  Cmd.v (Cmd.info "run" ~doc:"One timed workload")
    Term.(
      const run_once $ structure_arg $ flavor $ size_arg $ threads_arg
      $ duration_arg $ seed_arg $ update_pct)

let flavor_arg =
  Arg.(value & opt flavor_conv I.Lc & info [ "flavor" ] ~doc:"volatile|lp|lc|log")

let update_pct_arg =
  Arg.(value & opt int 100 & info [ "updates" ] ~doc:"Update percentage.")

let trace_cmd =
  let out =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Chrome trace-event JSON output (chrome://tracing, Perfetto).")
  in
  let ring_size =
    Arg.(
      value
      & opt int Trace.Nvtrace.default_ring_size
      & info [ "ring-size" ] ~doc:"Retained spans per domain.")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Also attach NVSan through the observer multiplexer; exit 1 on \
             any violation.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Flight-record one workload and write a Chrome trace")
    Term.(
      const trace_run $ structure_arg $ flavor_arg $ size_arg $ threads_arg
      $ duration_arg $ seed_arg $ update_pct_arg $ out $ ring_size $ sanitize)

let top_cmd =
  let interval =
    Arg.(
      value & opt float 0.5 & info [ "interval" ] ~doc:"Seconds between ticks.")
  in
  Cmd.v
    (Cmd.info "top" ~doc:"Live interval-diffed substrate rates during a run")
    Term.(
      const top $ structure_arg $ flavor_arg $ size_arg $ threads_arg
      $ duration_arg $ seed_arg $ update_pct_arg $ interval)

let () =
  let info = Cmd.info "nvlf" ~doc:"Log-free durable data structures driver" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ stats_cmd; drill_cmd; run_cmd; sanitize_cmd; trace_cmd; top_cmd ]))
