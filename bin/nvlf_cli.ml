(* nvlf: a scriptable driver for the log-free durable data structures.

     nvlf stats  --structure skiplist --size 1024      per-flavor cost profile
     nvlf drill  --structure bst --rounds 200          crash-point fuzzing
     nvlf queue-drill --struct both --ops 300          producer-consumer crash drill
     nvlf run      --structure hash --flavor lc ...    one workload run
     nvlf sanitize --struct list --max-dirty 10        NVSan + crash-state enum
     nvlf trace  --structure hash --out trace.json     flight-record a run
     nvlf top    --structure hash --interval 0.5       live substrate rates
     nvlf serve  --port 11211 --workers 4              NVServe TCP front end
     nvlf serve  --drill                               kill/recover/audit drill
     nvlf loadgen --port 11211 --conns 8               load client + latency

   The benchmark figures live in bench/main.exe; this tool is for poking at
   a single configuration interactively. *)

open Cmdliner
open Workload
module I = Harness.Instance

let structure_conv =
  let parse = function
    | "list" -> Ok I.List
    | "hash" -> Ok I.Hash
    | "skiplist" -> Ok I.Skiplist
    | "bst" -> Ok I.Bst
    | s -> Error (`Msg ("unknown structure: " ^ s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (I.structure_name s))

let flavor_conv =
  let parse s =
    match I.flavor_of_string s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (I.flavor_name f))

let structure_arg =
  Arg.(
    value
    & opt structure_conv I.Hash
    & info [ "structure" ] ~doc:"list | hash | skiplist | bst")

let size_arg = Arg.(value & opt int 1024 & info [ "size" ] ~doc:"Steady-state size.")
let threads_arg = Arg.(value & opt int 1 & info [ "threads" ] ~doc:"Domains.")
let duration_arg = Arg.(value & opt float 0.3 & info [ "duration" ] ~doc:"Seconds.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")

let calibrated_latency () =
  let l = Nvm.Latency_model.default () in
  l.nvram_write_ns <- Harness.Calibrate.write_ns ();
  l

(* stats: run each flavor and print its cost profile. *)
let stats structure size nthreads duration seed =
  Printf.printf "%s, %d elements, %d thread(s), %.2fs per flavor\n"
    (I.structure_name structure) size nthreads duration;
  Printf.printf "%-14s %12s %9s %8s %9s %9s %9s %11s %11s\n" "flavor" "ops/s"
    "syncs/op" "wb/op" "loads/op" "APT hit%" "LC adds%" "p50" "p99";
  List.iter
    (fun flavor ->
      let inst =
        I.create ~nthreads ~size_hint:size ~latency:(calibrated_latency ())
          ~structure ~flavor ()
      in
      Keygen.prefill inst.ops ~size ~seed;
      Nvm.Heap.reset_stats (Lfds.Ctx.heap inst.ctx);
      let r =
        Run.throughput ~nthreads ~duration
          ~step:
            (Run.set_workload inst.ops ~mix:Keygen.update_only
               ~range:(Keygen.range_for ~size))
          ~seed ()
      in
      let st = Nvm.Heap.aggregate_stats (Lfds.Ctx.heap inst.ctx) in
      let ops = float_of_int (max 1 r.total_ops) in
      let pct a b = if a + b = 0 then 0. else 100. *. float_of_int a /. float_of_int (a + b) in
      let hist =
        Run.latency_profile ~n:2000
          ~step:
            (Run.set_workload inst.ops ~mix:Keygen.update_only
               ~range:(Keygen.range_for ~size))
          ~seed ()
      in
      Printf.printf "%-14s %12.0f %9.2f %8.2f %9.1f %8.1f%% %8.1f%% %11s %11s\n"
        (I.flavor_name flavor) r.throughput
        (float_of_int st.sync_batches /. ops)
        (float_of_int st.write_backs /. ops)
        (float_of_int st.loads /. ops)
        (pct st.apt_hits st.apt_misses)
        (pct st.lc_adds st.lc_fails)
        (Report.human_ns (Histogram.percentile hist 50.))
        (Report.human_ns (Histogram.percentile hist 99.)))
    [ I.Volatile; I.Lp; I.Lc; I.Nvt; I.Lf; I.Log ]

(* drill: randomized mid-operation crash + recovery verification. *)
let drill structure rounds seed =
  let rng = Xoshiro.make ~seed in
  let inst = ref (I.create ~nthreads:1 ~size_hint:256 ~structure ~flavor:I.Lp ()) in
  let model = Hashtbl.create 64 in
  let crashes = ref 0 and violations = ref 0 in
  for round = 1 to rounds do
    let heap = Lfds.Ctx.heap !inst.ctx in
    Nvm.Heap.set_trip heap (Xoshiro.in_range rng ~lo:1 ~hi:800);
    (try
       for _ = 1 to 25 do
         let key = Xoshiro.in_range rng ~lo:1 ~hi:512 in
         if Xoshiro.chance rng ~num:1 ~den:2 then begin
           if !inst.ops.insert ~tid:0 ~key ~value:key then
             Hashtbl.replace model key key
         end
         else if !inst.ops.remove ~tid:0 ~key then Hashtbl.remove model key
       done;
       Nvm.Heap.disarm_trip heap
     with Nvm.Heap.Crashed ->
       incr crashes;
       let recovered, _, _ = I.crash_and_recover ~seed:round !inst in
       inst := recovered;
       let diffs = ref [] in
       for key = 1 to 512 do
         if Hashtbl.mem model key <> (!inst.ops.search ~tid:0 ~key <> None) then
           diffs := key :: !diffs
       done;
       (match !diffs with
       | [] -> ()
       | [ key ] ->
           if !inst.ops.search ~tid:0 ~key <> None then Hashtbl.replace model key key
           else Hashtbl.remove model key
       | ks -> violations := !violations + List.length ks))
  done;
  Printf.printf "%s: %d rounds, %d crashes, %d violations\n"
    (I.structure_name structure) rounds !crashes !violations;
  if !violations > 0 then exit 1

(* queue-drill: producer-consumer crash drill over the FIFO shapes. Real
   domains stream tagged values through the queue/deque, the trip-wire
   kills one mid-operation, the machine power-fails with seeded evictions,
   and the audit cross-checks acked productions against acked consumptions
   plus the recovered drain (duplication / loss / per-producer order). *)
let queue_drill structures producers consumers ops trip seed =
  let module QI = Harness.Queue_instance in
  let module QD = Sanitizer.Queue_drill in
  let failed = ref false in
  List.iter
    (fun structure ->
      List.iter
        (fun flavor ->
          let r =
            QD.run ~producers ~consumers ~ops_per_producer:ops ~seed ~trip
              ~structure ~flavor ()
          in
          Format.printf "%a@." QD.pp_report r;
          if not (QD.ok r) then failed := true)
        [ I.Lp; I.Lc; I.Nvt; I.Lf ])
    structures;
  if !failed then begin
    Printf.eprintf "queue-drill: violations detected\n";
    exit 1
  end

(* sanitize: NVSan online pass over every durable flavor, then exhaustive
   small-scope crash-state enumeration per flavor. Exit 1 on any violation
   — the CI gate. With [--races], also run NVRace: contended clean runs
   per flavor must report zero races, and every injected racy corpus
   variant must be flagged with its expected violation class. *)
let sanitize structure ops max_dirty seed races =
  let failed = ref false in
  let race_gate () =
    (* Clean gate: the real structure under 2-domain contention. *)
    List.iter
      (fun flavor ->
        let inst = I.create ~nthreads:2 ~size_hint:256 ~structure ~flavor () in
        let det =
          Sanitizer.Nvrace.attach
            ~config:
              {
                (Sanitizer.Nvrace.default_config ()) with
                root_limit = Lfds.Ctx.static_limit inst.ctx;
              }
            (Lfds.Ctx.heap inst.ctx)
        in
        let worker tid () =
          let rng = Xoshiro.make ~seed:(seed + (tid * 37)) in
          for _ = 1 to ops / 2 do
            let key = Xoshiro.in_range rng ~lo:1 ~hi:64 in
            match Xoshiro.below rng 3 with
            | 0 -> ignore (inst.ops.insert ~tid ~key ~value:key)
            | 1 -> ignore (inst.ops.remove ~tid ~key)
            | _ -> ignore (inst.ops.search ~tid ~key)
          done
        in
        let ds = List.init 2 (fun tid -> Domain.spawn (worker tid)) in
        List.iter Domain.join ds;
        Sanitizer.Nvrace.detach det;
        List.iter
          (fun v -> print_endline (Sanitizer.Nvrace.violation_to_string v))
          (Sanitizer.Nvrace.violations det);
        let n = Sanitizer.Nvrace.violation_count det in
        Printf.printf "races %s/%s: %d ops over 2 domains, %d race(s)\n%!"
          (I.structure_name structure) (I.flavor_name flavor) ops n;
        if n > 0 then failed := true)
      [ I.Lp; I.Lc; I.Nvt; I.Lf ];
    (* Detection gate: every injected racy variant must be flagged. *)
    List.iter
      (fun race ->
        let ctx =
          Lfds.Ctx.create
            {
              (Lfds.Ctx.default_config ()) with
              size_words = 1 lsl 18;
              nthreads = 2;
            }
        in
        let det =
          Sanitizer.Nvrace.attach
            ~config:
              {
                (Sanitizer.Nvrace.default_config ()) with
                root_limit = Lfds.Ctx.static_limit ctx;
              }
            (Lfds.Ctx.heap ctx)
        in
        Injected.Race_list.run_scenario ctx race;
        Sanitizer.Nvrace.detach det;
        let want = Injected.Race_list.expected_code race in
        let codes =
          List.map
            (fun v -> v.Sanitizer.Nvrace.code)
            (Sanitizer.Nvrace.violations det)
        in
        let hit = List.mem want codes in
        Printf.printf "races injected/%s: want %s, got [%s] — %s\n%!"
          (Injected.Race_list.race_name race)
          want (String.concat "," codes)
          (if hit then "flagged" else "MISSED");
        if not hit then failed := true)
      Injected.Race_list.all_races
  in
  List.iter
    (fun flavor ->
      let inst = I.create ~nthreads:1 ~size_hint:256 ~structure ~flavor () in
      let cfg =
        {
          (Sanitizer.Nvsan.config_for_mode (I.mode_of_flavor flavor)) with
          strict_deref = true;
          root_limit = Lfds.Ctx.static_limit inst.ctx;
        }
      in
      let san = Sanitizer.Nvsan.attach ~config:cfg (Lfds.Ctx.heap inst.ctx) in
      let rng = Xoshiro.make ~seed in
      for _ = 1 to ops do
        let key = Xoshiro.in_range rng ~lo:1 ~hi:256 in
        match Xoshiro.below rng 10 with
        | 0 | 1 | 2 | 3 -> ignore (inst.ops.insert ~tid:0 ~key ~value:key)
        | 4 | 5 | 6 -> ignore (inst.ops.remove ~tid:0 ~key)
        | _ -> ignore (inst.ops.search ~tid:0 ~key)
      done;
      Sanitizer.Nvsan.detach san;
      List.iter
        (fun v -> print_endline (Sanitizer.Nvsan.violation_to_string v))
        (Sanitizer.Nvsan.violations san);
      let n = Sanitizer.Nvsan.violation_count san in
      Printf.printf "sanitize %s/%s: %d ops, %d violation(s)\n%!"
        (I.structure_name structure) (I.flavor_name flavor) ops n;
      if n > 0 then failed := true)
    [ I.Lp; I.Lc; I.Nvt; I.Lf ];
  List.iter
    (fun flavor ->
      let r = Sanitizer.Crash_enum.run ~structure ~flavor ~max_dirty ~seed () in
      Format.printf "crash-enum %s/%s: %a@." (I.structure_name structure)
        (I.flavor_name flavor) Sanitizer.Crash_enum.pp_result r;
      List.iter print_endline r.Sanitizer.Crash_enum.violations;
      if r.Sanitizer.Crash_enum.violations <> [] then failed := true)
    [ I.Lp; I.Nvt; I.Lf ];
  if races then race_gate ();
  if !failed then exit 1

(* lincheck: recorded-history linearizability over live multi-domain runs
   for every flavor, then crash-composed durable linearizability for the
   durable flavors. Exit 1 if any history fails — the CI gate. *)
let lincheck structure nthreads ops_per_thread seed =
  let failed = ref false in
  let show name (o : Sanitizer.Lincheck.outcome) =
    Printf.printf "lincheck %s: %s\n%!" name
      (Format.asprintf "%a" Sanitizer.Lincheck.pp_outcome o);
    if not (Sanitizer.Lincheck.ok o) then failed := true
  in
  List.iter
    (fun flavor ->
      let o =
        Sanitizer.Lincheck.live_check ~nthreads ~ops_per_thread ~key_range:24
          ~seed ~structure ~flavor ()
      in
      show
        (Printf.sprintf "%s/%s/live" (I.structure_name structure)
           (I.flavor_name flavor))
        o)
    [ I.Volatile; I.Lp; I.Lc; I.Nvt; I.Lf ];
  List.iter
    (fun flavor ->
      let o =
        Sanitizer.Lincheck.durable_check ~nthreads:2
          ~total_ops:(nthreads * ops_per_thread) ~key_range:24 ~seed ~trip:400
          ~structure ~flavor ()
      in
      show
        (Printf.sprintf "%s/%s/durable" (I.structure_name structure)
           (I.flavor_name flavor))
        o)
    [ I.Lp; I.Lc; I.Nvt; I.Lf ];
  if !failed then exit 1

(* run: one timed workload with a final summary. *)
let run_once structure flavor size nthreads duration seed update_pct =
  let inst =
    I.create ~nthreads ~size_hint:size ~latency:(calibrated_latency ())
      ~structure ~flavor ()
  in
  Keygen.prefill inst.ops ~size ~seed;
  let r =
    Run.throughput ~nthreads ~duration
      ~step:
        (Run.set_workload inst.ops
           ~mix:(Keygen.mixed ~update_pct)
           ~range:(Keygen.range_for ~size))
      ~seed ()
  in
  Printf.printf "%s / %s: %s over %.2fs (%d ops; per-thread: %s)\n"
    (I.structure_name structure) (I.flavor_name flavor)
    (Report.human_ops r.throughput) r.duration r.total_ops
    (String.concat ","
       (Array.to_list (Array.map string_of_int r.per_thread)));
  Printf.printf "final size: %d\n" (inst.ops.size ())

(* trace: flight-record one workload run with NVTrace and write the spans
   as Chrome trace-event JSON. With --sanitize, NVSan rides the observer
   multiplexer alongside the tracer; any violation exits 1. *)
let trace_run structure flavor size nthreads duration seed update_pct out
    ring_size sanitize =
  let inst =
    I.create ~nthreads ~size_hint:size ~latency:(calibrated_latency ())
      ~structure ~flavor ()
  in
  let heap = Lfds.Ctx.heap inst.ctx in
  let san =
    if sanitize && flavor <> I.Log then
      Some
        (Sanitizer.Nvsan.attach
           ~config:
             {
               (Sanitizer.Nvsan.config_for_mode (I.mode_of_flavor flavor))
               with
               root_limit = Lfds.Ctx.static_limit inst.ctx;
             }
           heap)
    else None
  in
  Keygen.prefill inst.ops ~size ~seed;
  Nvm.Heap.reset_stats heap;
  let tr = Trace.Nvtrace.attach ~ring_size heap in
  let r =
    Run.throughput ~nthreads ~duration
      ~step:
        (Run.set_workload inst.ops
           ~mix:(Keygen.mixed ~update_pct)
           ~range:(Keygen.range_for ~size))
      ~seed ()
  in
  Trace.Nvtrace.detach tr;
  let b = Trace.Chrome_trace.create () in
  Trace.Chrome_trace.add_process b ~pid:0
    ~name:
      (Printf.sprintf "%s/%s size=%d t=%d" (I.structure_name structure)
         (I.flavor_name flavor) size nthreads);
  Trace.Chrome_trace.add_spans b ~pid:0 (Trace.Nvtrace.spans tr);
  Trace.Chrome_trace.write_file b out;
  Printf.printf "%s / %s: %s over %.2fs\n" (I.structure_name structure)
    (I.flavor_name flavor)
    (Report.human_ops r.throughput)
    r.duration;
  Printf.printf
    "recorded %d spans (%d retained, %d dropped to wrap-around); wrote %d \
     events to %s\n"
    (Trace.Nvtrace.span_count tr)
    (List.length (Trace.Nvtrace.spans tr))
    (Trace.Nvtrace.dropped tr)
    (Trace.Chrome_trace.event_count b)
    out;
  List.iter
    (fun (op, h) ->
      let a = List.assoc op (Trace.Nvtrace.attribution tr) in
      let per v =
        float_of_int v /. float_of_int (max 1 a.Trace.Nvtrace.ops)
      in
      Printf.printf
        "%-18s n=%-9d p50=%-9s p99=%-9s p99.9=%-9s | wb/op %.2f fence/op %.2f\n"
        op (Histogram.count h)
        (Report.human_ns (Histogram.percentile h 50.))
        (Report.human_ns (Histogram.percentile h 99.))
        (Report.human_ns (Histogram.percentile h 99.9))
        (per a.Trace.Nvtrace.a_write_backs)
        (per a.Trace.Nvtrace.a_fences))
    (Trace.Nvtrace.histograms tr);
  match san with
  | None -> ()
  | Some s ->
      Sanitizer.Nvsan.detach s;
      let n = Sanitizer.Nvsan.violation_count s in
      List.iter
        (fun v -> print_endline (Sanitizer.Nvsan.violation_to_string v))
        (Sanitizer.Nvsan.violations s);
      Printf.printf "sanitizer: %d violation(s)\n%!" n;
      if n > 0 then exit 1

(* top: run the workload while the main domain prints interval-diffed
   substrate rates, like top(1) for the persistence layer. *)
let top structure flavor size nthreads duration seed update_pct interval
    show_latency =
  let inst =
    I.create ~nthreads ~size_hint:size ~latency:(calibrated_latency ())
      ~structure ~flavor ()
  in
  let heap = Lfds.Ctx.heap inst.ctx in
  Keygen.prefill inst.ops ~size ~seed;
  Nvm.Heap.reset_stats heap;
  (* The flight recorder attaches at this quiescent point (before the worker
     domains spawn); each tick then diffs the *merged* per-domain histogram
     view so the interval percentiles cover every domain's samples. *)
  let tr = if show_latency then Some (Trace.Nvtrace.attach heap) else None in
  let lasth = ref (Option.map (fun tr -> Trace.Metrics.hist_sample tr) tr) in
  Printf.printf "%s / %s, %d elements, %d thread(s), tick %.2fs\n"
    (I.structure_name structure) (I.flavor_name flavor) size nthreads interval;
  print_endline Trace.Metrics.header;
  let last = ref (Trace.Metrics.sample heap) in
  let r =
    Run.throughput ~interval
      ~on_tick:(fun ~elapsed ->
        let now = Trace.Metrics.sample heap in
        let older = !last in
        last := now;
        let d, dt = Trace.Metrics.delta ~older ~newer:now in
        Printf.printf "%6.1fs %s\n%!" elapsed (Trace.Metrics.report ~dt d);
        match tr with
        | None -> ()
        | Some tr ->
            let nowh = Trace.Metrics.hist_sample tr in
            let olderh = match !lasth with Some s -> s | None -> nowh in
            lasth := Some nowh;
            let hd, _ = Trace.Metrics.hist_delta ~older:olderh ~newer:nowh in
            List.iter
              (fun (op, h) ->
                if Workload.Histogram.count h > 0 then
                  Printf.printf "         %-14s n=%-8d p50 %-10s p99 %-10s max %s\n%!"
                    op
                    (Workload.Histogram.count h)
                    (Report.human_ns (Workload.Histogram.percentile h 50.))
                    (Report.human_ns (Workload.Histogram.percentile h 99.))
                    (Report.human_ns (Workload.Histogram.max_ns h)))
              hd)
      ~nthreads ~duration
      ~step:
        (Run.set_workload inst.ops
           ~mix:(Keygen.mixed ~update_pct)
           ~range:(Keygen.range_for ~size))
      ~seed ()
  in
  (match tr with None -> () | Some tr -> Trace.Nvtrace.detach tr);
  Printf.printf "total: %s over %.2fs\n"
    (Report.human_ops r.throughput)
    r.duration

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Cost profile of every flavor")
    Term.(
      const stats $ structure_arg $ size_arg $ threads_arg $ duration_arg
      $ seed_arg)

let drill_cmd =
  let rounds = Arg.(value & opt int 100 & info [ "rounds" ] ~doc:"Rounds.") in
  Cmd.v (Cmd.info "drill" ~doc:"Randomized crash-point fuzzing")
    Term.(const drill $ structure_arg $ rounds $ seed_arg)

let queue_drill_cmd =
  let module QI = Harness.Queue_instance in
  let structures_conv =
    let parse = function
      | "mpmc" -> Ok [ QI.Mpmc ]
      | "deque" -> Ok [ QI.Deque ]
      | "both" -> Ok [ QI.Mpmc; QI.Deque ]
      | s -> Error (`Msg ("unknown queue structure: " ^ s))
    in
    Arg.conv
      ( parse,
        fun ppf ss ->
          Format.pp_print_string ppf
            (String.concat "," (List.map QI.structure_name ss)) )
  in
  let structures =
    Arg.(
      value
      & opt structures_conv [ QI.Mpmc; QI.Deque ]
      & info [ "structure"; "struct" ] ~doc:"mpmc | deque | both")
  in
  let producers =
    Arg.(
      value & opt int 2
      & info [ "producers" ] ~doc:"Producer domains (the deque forces 1).")
  in
  let consumers =
    Arg.(value & opt int 2 & info [ "consumers" ] ~doc:"Consumer domains.")
  in
  let ops =
    Arg.(value & opt int 300 & info [ "ops" ] ~doc:"Ops per producer.")
  in
  let trip =
    Arg.(
      value & opt int 4000
      & info [ "trip" ]
          ~doc:"Kill a domain after this many persisted-memory primitives.")
  in
  Cmd.v
    (Cmd.info "queue-drill"
       ~doc:
         "Producer-consumer crash drill: stream tagged values through the \
          MPMC queue / work-stealing deque, power-fail mid-traffic, audit \
          acked vs recovered items (exit 1 on violation)")
    Term.(
      const queue_drill $ structures $ producers $ consumers $ ops $ trip
      $ seed_arg)

let sanitize_cmd =
  let structure =
    Arg.(
      value
      & opt structure_conv I.Hash
      & info [ "structure"; "struct" ] ~doc:"list | hash | skiplist | bst")
  in
  let ops =
    Arg.(value & opt int 4000 & info [ "ops" ] ~doc:"Online sanitized ops.")
  in
  let max_dirty =
    Arg.(
      value
      & opt int 10
      & info [ "max-dirty" ]
          ~doc:"Enumerate crash states for trips with up to this many dirty lines.")
  in
  let races =
    Arg.(
      value & flag
      & info [ "races" ]
          ~doc:
            "Also run NVRace: contended clean runs must be race-free and \
             every injected racy variant must be flagged.")
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:"NVSan pass + exhaustive crash-state enumeration (exit 1 on violation)")
    Term.(const sanitize $ structure $ ops $ max_dirty $ seed_arg $ races)

let lincheck_cmd =
  let structure =
    Arg.(
      value
      & opt structure_conv I.Hash
      & info [ "structure"; "struct" ] ~doc:"list | hash | skiplist | bst")
  in
  let nthreads =
    Arg.(
      value & opt int 2
      & info [ "threads" ] ~doc:"Recording domains for the live check (2-4).")
  in
  let ops =
    Arg.(value & opt int 150 & info [ "ops" ] ~doc:"Ops per thread.")
  in
  Cmd.v
    (Cmd.info "lincheck"
       ~doc:
         "Linearizability of recorded histories (live runs per flavor, \
          crash-composed durable runs for lp/lc/nvt/lf); exit 1 on failure")
    Term.(const lincheck $ structure $ nthreads $ ops $ seed_arg)

let run_cmd =
  let flavor =
    Arg.(value & opt flavor_conv I.Lc & info [ "flavor" ] ~doc:"volatile|lp|lc|nvt|lf|log")
  in
  let update_pct =
    Arg.(value & opt int 100 & info [ "updates" ] ~doc:"Update percentage.")
  in
  Cmd.v (Cmd.info "run" ~doc:"One timed workload")
    Term.(
      const run_once $ structure_arg $ flavor $ size_arg $ threads_arg
      $ duration_arg $ seed_arg $ update_pct)

let flavor_arg =
  Arg.(value & opt flavor_conv I.Lc & info [ "flavor" ] ~doc:"volatile|lp|lc|nvt|lf|log")

let update_pct_arg =
  Arg.(value & opt int 100 & info [ "updates" ] ~doc:"Update percentage.")

let trace_cmd =
  let out =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Chrome trace-event JSON output (chrome://tracing, Perfetto).")
  in
  let ring_size =
    Arg.(
      value
      & opt int Trace.Nvtrace.default_ring_size
      & info [ "ring-size" ] ~doc:"Retained spans per domain.")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Also attach NVSan through the observer multiplexer; exit 1 on \
             any violation.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Flight-record one workload and write a Chrome trace")
    Term.(
      const trace_run $ structure_arg $ flavor_arg $ size_arg $ threads_arg
      $ duration_arg $ seed_arg $ update_pct_arg $ out $ ring_size $ sanitize)

let top_cmd =
  let interval =
    Arg.(
      value & opt float 0.5 & info [ "interval" ] ~doc:"Seconds between ticks.")
  in
  let latency_flag =
    Arg.(
      value & flag
      & info [ "latency" ]
          ~doc:
            "Also flight-record per-operation latency and print \
             interval-diffed percentiles (all domains merged) each tick.")
  in
  Cmd.v
    (Cmd.info "top" ~doc:"Live interval-diffed substrate rates during a run")
    Term.(
      const top $ structure_arg $ flavor_arg $ size_arg $ threads_arg
      $ duration_arg $ seed_arg $ update_pct_arg $ interval $ latency_flag)

(* --- NVServe: TCP server, load client, crash drill --- *)

let mode_conv =
  let parse s =
    match Lfds.Persist_mode.of_string s with
    | Ok m -> Ok m
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Lfds.Persist_mode.to_string m))

let print_drill_report (c : Server.Drill.config) (r : Server.Drill.report) =
  let ms s = Printf.sprintf "%.2f ms" (s *. 1e3) in
  Printf.printf "drill: %s, %d workers/shards, %d keys over %d-capacity store\n"
    (Lfds.Persist_mode.to_string c.Server.Drill.mode)
    c.Server.Drill.nworkers c.Server.Drill.nkeys c.Server.Drill.capacity;
  let l = r.Server.Drill.load in
  Printf.printf
    "load:  %d ops (%s) from %d conns before the kill; %d sets, %d deletes, \
     %d gets (%d hits), %d errors\n"
    l.Server.Loadgen.ops
    (Report.human_ops l.Server.Loadgen.ops_per_s)
    c.Server.Drill.nconns l.Server.Loadgen.sets l.Server.Loadgen.deletes
    l.Server.Loadgen.gets l.Server.Loadgen.hits l.Server.Loadgen.errors;
  Printf.printf
    "crash: kill mid-traffic, torn op %s, eviction p=%.2f; %d acked keys, %d \
     in-flight\n"
    (if r.Server.Drill.torn then "injected" else "not injected")
    c.Server.Drill.eviction_probability r.Server.Drill.acked_keys
    r.Server.Drill.inflight_keys;
  Printf.printf "persistence: %d fences before the kill (%.2f per request)\n"
    r.Server.Drill.fences r.Server.Drill.fences_per_req;
  Printf.printf
    "recovery: layout %s + attach/sweep %s = %s total; %d leaked nodes freed, \
     %d residual\n"
    (ms r.Server.Drill.ctx_recover_s)
    (ms r.Server.Drill.sweep_s)
    (ms r.Server.Drill.recovery_s)
    r.Server.Drill.freed_leaks r.Server.Drill.residual_leaks;
  print_endline
    "timeline: (crash phases, then recovery; depth-0 recovery phases sum to \
     the total)";
  List.iter
    (fun (e : Nvm.Timeline.event) ->
      Printf.printf "  %s%-16s %8.2f ms%s\n"
        (String.make (2 * e.Nvm.Timeline.depth) ' ')
        e.Nvm.Timeline.phase
        (e.Nvm.Timeline.dur_s *. 1e3)
        (if e.Nvm.Timeline.detail = "" then ""
         else "  (" ^ e.Nvm.Timeline.detail ^ ")"))
    r.Server.Drill.timeline;
  Printf.printf
    "audit: %d acked keys verified over TCP, %d exempt (in-flight), %d lost%s; \
     post-recovery probe %s\n"
    r.Server.Drill.checked r.Server.Drill.exempt r.Server.Drill.lost
    (if r.Server.Drill.strict then ""
     else
       Printf.sprintf " (tolerated: %s acks are durable only to the last flush)"
         (Lfds.Persist_mode.to_string c.Server.Drill.mode))
    (if r.Server.Drill.post_ok then "ok" else "FAILED");
  Printf.printf "verdict: %s\n%!" (if r.Server.Drill.ok then "OK" else "FAILED")

(* JSON string escaping shared by the inline nvlf-bench/2 writers. *)
let json_esc s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* Minimal nvlf-bench/2 document with one "drill" record: config, the audit
   verdict, and the recovery timeline as structured per-phase fields
   (EXPERIMENTS.md documents the schema). *)
let drill_json_doc path (c : Server.Drill.config) (r : Server.Drill.report) =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"nvlf-bench/2\",\"generated_unix\":%.3f,\"argv\":[%s],\"records\":[{"
       (Unix.gettimeofday ())
       (String.concat ","
          (Array.to_list
             (Array.map (fun a -> "\"" ^ json_esc a ^ "\"") Sys.argv))));
  let timeline =
    String.concat ","
      (List.map
         (fun (e : Nvm.Timeline.event) ->
           Printf.sprintf
             "{\"phase\":\"%s\",\"detail\":\"%s\",\"start_s\":%.6g,\"ms\":%.6g,\"depth\":%d}"
             (json_esc e.Nvm.Timeline.phase)
             (json_esc e.Nvm.Timeline.detail)
             e.Nvm.Timeline.start_s
             (e.Nvm.Timeline.dur_s *. 1e3)
             e.Nvm.Timeline.depth)
         r.Server.Drill.timeline)
  in
  Buffer.add_string b
    (String.concat ","
       [
         "\"kind\":\"drill\"";
         Printf.sprintf "\"mode\":\"%s\""
           (Lfds.Persist_mode.to_string c.Server.Drill.mode);
         Printf.sprintf "\"workers\":%d" c.Server.Drill.nworkers;
         Printf.sprintf "\"buckets\":%d" c.Server.Drill.nbuckets;
         Printf.sprintf "\"capacity\":%d" c.Server.Drill.capacity;
         Printf.sprintf "\"keys\":%d" c.Server.Drill.nkeys;
         Printf.sprintf "\"conns\":%d" c.Server.Drill.nconns;
         Printf.sprintf "\"pipeline\":%d" c.Server.Drill.pipeline;
         Printf.sprintf "\"max_batch\":%d" c.Server.Drill.max_batch;
         Printf.sprintf "\"max_delay_us\":%d" c.Server.Drill.max_delay_us;
         Printf.sprintf "\"evict_p\":%.6g" c.Server.Drill.eviction_probability;
         Printf.sprintf "\"seed\":%d" c.Server.Drill.seed;
         Printf.sprintf "\"ops\":%d" r.Server.Drill.load.Server.Loadgen.ops;
         Printf.sprintf "\"acked_keys\":%d" r.Server.Drill.acked_keys;
         Printf.sprintf "\"inflight_keys\":%d" r.Server.Drill.inflight_keys;
         Printf.sprintf "\"fences\":%d" r.Server.Drill.fences;
         Printf.sprintf "\"fences_per_req\":%.6g" r.Server.Drill.fences_per_req;
         Printf.sprintf "\"torn\":%b" r.Server.Drill.torn;
         Printf.sprintf "\"ctx_recover_ms\":%.6g"
           (r.Server.Drill.ctx_recover_s *. 1e3);
         Printf.sprintf "\"sweep_ms\":%.6g" (r.Server.Drill.sweep_s *. 1e3);
         Printf.sprintf "\"recovery_ms\":%.6g" (r.Server.Drill.recovery_s *. 1e3);
         Printf.sprintf "\"timeline\":[%s]" timeline;
         Printf.sprintf "\"freed_leaks\":%d" r.Server.Drill.freed_leaks;
         Printf.sprintf "\"residual_leaks\":%d" r.Server.Drill.residual_leaks;
         Printf.sprintf "\"checked\":%d" r.Server.Drill.checked;
         Printf.sprintf "\"exempt\":%d" r.Server.Drill.exempt;
         Printf.sprintf "\"lost\":%d" r.Server.Drill.lost;
         Printf.sprintf "\"post_ok\":%b" r.Server.Drill.post_ok;
         Printf.sprintf "\"strict\":%b" r.Server.Drill.strict;
         Printf.sprintf "\"ok\":%b" r.Server.Drill.ok;
       ]);
  Buffer.add_string b "}]}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let serve port workers buckets capacity mode idle_timeout duration drill conns
    keys pipeline evict_p no_torn max_batch max_delay_us metrics_port
    sample_every trace_out json runtime seed =
  let runtime =
    match Server.Nvserve.runtime_of_string runtime with
    | Some r -> r
    | None ->
        Printf.eprintf "serve: unknown --runtime %S (sched | select)\n" runtime;
        exit 2
  in
  if drill then begin
    let c =
      {
        Server.Drill.nworkers = workers;
        nbuckets = buckets;
        capacity;
        mode;
        nconns = conns;
        duration = (if duration > 0. then duration else 1.0);
        nkeys = keys;
        pipeline;
        seed;
        eviction_probability = evict_p;
        torn_op = not no_torn;
        max_batch;
        max_delay_us;
      }
    in
    let r = Server.Drill.run c in
    print_drill_report c r;
    (match json with
    | None -> ()
    | Some path ->
        drill_json_doc path c r;
        Printf.printf "drill record written to %s\n%!" path);
    if not r.Server.Drill.ok then exit 1
  end
  else begin
    let cfg =
      {
        (Server.Nvserve.default_config ()) with
        Server.Nvserve.port;
        nworkers = workers;
        nbuckets = buckets;
        capacity;
        mode;
        idle_timeout;
        max_batch;
        max_delay_us;
        metrics_port;
        sample_every;
        runtime;
      }
    in
    let srv = Server.Nvserve.start cfg in
    Printf.printf
      "nvlf serve: %s on 127.0.0.1:%d — %d workers/shards, %d buckets, \
       capacity %d, %s runtime, group commit %s (Ctrl-C for graceful stop)\n%!"
      (Lfds.Persist_mode.to_string mode)
      (Server.Nvserve.port srv) workers buckets capacity
      (Server.Nvserve.runtime_to_string runtime)
      (if max_batch > 1 then
         Printf.sprintf "up to %d ops/fence (max delay %d us)" max_batch
           max_delay_us
       else "off");
    (match Server.Nvserve.metrics_port srv with
    | Some mp ->
        Printf.printf "  metrics: http://127.0.0.1:%d/metrics (Prometheus text)\n%!"
          mp
    | None -> ());
    if sample_every > 0 then
      Printf.printf
        "  sampling: 1 in %d requests per worker through \
         queue/parse/execute/fence/respond\n%!"
        sample_every;
    let stop_flag = ref false in
    let handler = Sys.Signal_handle (fun _ -> stop_flag := true) in
    Sys.set_signal Sys.sigint handler;
    (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
    let t0 = Unix.gettimeofday () in
    while
      (not !stop_flag)
      && (duration <= 0. || Unix.gettimeofday () -. t0 < duration)
    do
      Unix.sleepf 0.1
    done;
    (* Fences/request from the substrate, read before the shutdown flush
       adds its own write-backs and fence. *)
    let st = Nvm.Heap.aggregate_stats (Lfds.Ctx.heap (Server.Nvserve.ctx srv)) in
    Server.Nvserve.stop srv;
    Printf.printf
      "nvlf serve: stopped after %.1fs — %d connections, %d requests, %d items; \
       store persisted\n%!"
      (Unix.gettimeofday () -. t0)
      (Server.Nvserve.connections_accepted srv)
      (Server.Nvserve.requests_served srv)
      (Server.Shard_store.count (Server.Nvserve.store srv));
    let served = Server.Nvserve.requests_served srv in
    let dh = Server.Nvserve.batch_depth_hist srv in
    Printf.printf
      "  persistence: %.3f fences/request (%d fences); %d group commits \
       covering %d ops (batch depth p50 %.0f p99 %.0f mean %.1f)\n%!"
      (float_of_int st.Nvm.Pstats.fences /. float_of_int (max 1 served))
      st.Nvm.Pstats.fences st.Nvm.Pstats.group_commits st.Nvm.Pstats.group_ops
      (Workload.Histogram.percentile dh 50.)
      (Workload.Histogram.percentile dh 99.)
      (Workload.Histogram.mean dh);
    let tel = Server.Nvserve.telemetry srv in
    let rh = Server.Telemetry.req_hist tel in
    if Workload.Histogram.count rh > 0 then begin
      let p q = Workload.Histogram.percentile rh q /. 1e3 in
      Printf.printf
        "  sampled: %d requests — p50 %.1f us p99 %.1f us p99.9 %.1f us max \
         %.1f us\n%!"
        (Workload.Histogram.count rh)
        (p 50.) (p 99.) (p 99.9)
        (Workload.Histogram.max_ns rh /. 1e3);
      Printf.printf "  stage means: %s\n%!"
        (String.concat "  "
           (List.init Server.Telemetry.n_stages (fun s ->
                Printf.sprintf "%s %.1fus"
                  Server.Telemetry.stage_names.(s)
                  (Workload.Histogram.mean (Server.Telemetry.stage_hist tel s)
                  /. 1e3))))
    end;
    match trace_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Server.Telemetry.chrome_trace tel);
        close_out oc;
        Printf.printf "  trace: %d sampled requests written to %s\n%!"
          (List.length (Server.Telemetry.samples tel))
          path
  end

(* Minimal nvlf-bench/2 document with one "loadgen" record, matching the
   schema bench/json_out.ml writes (documented in EXPERIMENTS.md). *)
let loadgen_json_doc path (cfg : Server.Loadgen.config) (r : Server.Loadgen.report) =
  let b = Buffer.create 1024 in
  let esc = json_esc in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"nvlf-bench/2\",\"generated_unix\":%.3f,\"argv\":[%s],\"records\":[{"
       (Unix.gettimeofday ())
       (String.concat ","
          (Array.to_list
             (Array.map (fun a -> "\"" ^ esc a ^ "\"") Sys.argv))));
  let p q = Workload.Histogram.percentile r.Server.Loadgen.hist q in
  Buffer.add_string b
    (String.concat ","
       [
         "\"kind\":\"loadgen\"";
         Printf.sprintf "\"host\":\"%s\"" (esc cfg.Server.Loadgen.host);
         Printf.sprintf "\"port\":%d" cfg.Server.Loadgen.port;
         Printf.sprintf "\"conns\":%d" cfg.Server.Loadgen.nconns;
         Printf.sprintf "\"duration\":%.6g" cfg.Server.Loadgen.duration;
         Printf.sprintf "\"keys\":%d" cfg.Server.Loadgen.nkeys;
         Printf.sprintf "\"set_pct\":%d" cfg.Server.Loadgen.mix.Keygen.insert_pct;
         Printf.sprintf "\"delete_pct\":%d" cfg.Server.Loadgen.mix.Keygen.remove_pct;
         Printf.sprintf "\"pipeline\":%d" cfg.Server.Loadgen.pipeline;
         Printf.sprintf "\"value_bytes\":%d" cfg.Server.Loadgen.value_bytes;
         Printf.sprintf "\"seed\":%d" cfg.Server.Loadgen.seed;
         Printf.sprintf "\"ops\":%d" r.Server.Loadgen.ops;
         Printf.sprintf "\"ops_per_s\":%.6g" r.Server.Loadgen.ops_per_s;
         Printf.sprintf "\"sets\":%d" r.Server.Loadgen.sets;
         Printf.sprintf "\"deletes\":%d" r.Server.Loadgen.deletes;
         Printf.sprintf "\"gets\":%d" r.Server.Loadgen.gets;
         Printf.sprintf "\"hits\":%d" r.Server.Loadgen.hits;
         Printf.sprintf "\"misses\":%d" r.Server.Loadgen.misses;
         Printf.sprintf "\"errors\":%d" r.Server.Loadgen.errors;
         Printf.sprintf "\"dead_conns\":%d" r.Server.Loadgen.dead_conns;
         Printf.sprintf "\"open_conns\":%d" cfg.Server.Loadgen.open_conns;
         Printf.sprintf "\"hot\":%d" cfg.Server.Loadgen.hot;
         Printf.sprintf "\"open_failures\":%d" r.Server.Loadgen.open_failures;
         Printf.sprintf "\"open_s\":%.6g" r.Server.Loadgen.open_s;
         Printf.sprintf "\"elapsed\":%.6g" r.Server.Loadgen.elapsed;
         Printf.sprintf "\"p50_ns\":%.6g" (p 50.);
         Printf.sprintf "\"p99_ns\":%.6g" (p 99.);
         Printf.sprintf "\"p999_ns\":%.6g" (p 99.9);
         Printf.sprintf "\"mean_ns\":%.6g" (Workload.Histogram.mean r.Server.Loadgen.hist);
         Printf.sprintf "\"max_ns\":%.6g" (Workload.Histogram.max_ns r.Server.Loadgen.hist);
         (let d q = Workload.Histogram.percentile r.Server.Loadgen.inflight q in
          String.concat ","
            [
              Printf.sprintf "\"inflight_p50\":%.6g" (d 50.);
              Printf.sprintf "\"inflight_p99\":%.6g" (d 99.);
              Printf.sprintf "\"inflight_mean\":%.6g"
                (Workload.Histogram.mean r.Server.Loadgen.inflight);
              Printf.sprintf "\"inflight_max\":%.6g"
                (Workload.Histogram.max_ns r.Server.Loadgen.inflight);
            ]);
       ]);
  Buffer.add_string b "}]}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let loadgen host port conns duration keys set_pct delete_pct pipeline
    value_bytes seed hot drivers json =
  (* --hot flips open-many mode: --conns is then the total connections to
     open and hold, --hot the driven subset, --drivers the driver domains. *)
  let open_many = hot > 0 in
  let cfg =
    {
      Server.Loadgen.host;
      port;
      nconns = (if open_many then drivers else conns);
      duration;
      nkeys = keys;
      mix = { Keygen.insert_pct = set_pct; remove_pct = delete_pct };
      pipeline;
      value_bytes;
      seed;
      open_conns = (if open_many then conns else 0);
      hot;
    }
  in
  let r = Server.Loadgen.run cfg in
  if open_many then
    Printf.printf
      "loadgen: %d ops in %.2fs = %s over %d open conns (%d hot, %d drivers, \
       pipeline %d; opened in %.2fs)\n"
      r.Server.Loadgen.ops r.Server.Loadgen.elapsed
      (Report.human_ops r.Server.Loadgen.ops_per_s)
      conns hot cfg.Server.Loadgen.nconns pipeline r.Server.Loadgen.open_s
  else
    Printf.printf
      "loadgen: %d ops in %.2fs = %s over %d conns (pipeline %d)\n"
      r.Server.Loadgen.ops r.Server.Loadgen.elapsed
      (Report.human_ops r.Server.Loadgen.ops_per_s)
      conns pipeline;
  if r.Server.Loadgen.open_failures > 0 then
    Printf.printf "  %d connections failed to open\n"
      r.Server.Loadgen.open_failures;
  Printf.printf "  %d sets, %d deletes, %d gets (%d hits / %d misses)\n"
    r.Server.Loadgen.sets r.Server.Loadgen.deletes r.Server.Loadgen.gets
    r.Server.Loadgen.hits r.Server.Loadgen.misses;
  let p q = Workload.Histogram.percentile r.Server.Loadgen.hist q in
  Printf.printf "  latency p50 %s  p99 %s  p99.9 %s  max %s\n"
    (Report.human_ns (p 50.)) (Report.human_ns (p 99.))
    (Report.human_ns (p 99.9))
    (Report.human_ns (Workload.Histogram.max_ns r.Server.Loadgen.hist));
  let d q = Workload.Histogram.percentile r.Server.Loadgen.inflight q in
  Printf.printf "  inflight depth p50 %.0f  p99 %.0f  mean %.1f  max %.0f\n"
    (d 50.) (d 99.)
    (Workload.Histogram.mean r.Server.Loadgen.inflight)
    (Workload.Histogram.max_ns r.Server.Loadgen.inflight);
  if r.Server.Loadgen.errors > 0 || r.Server.Loadgen.dead_conns > 0 then
    Printf.printf "  %d errors, %d dead connections\n" r.Server.Loadgen.errors
      r.Server.Loadgen.dead_conns;
  (match json with None -> () | Some path -> loadgen_json_doc path cfg r);
  if r.Server.Loadgen.errors > 0 || r.Server.Loadgen.open_failures > 0 then
    exit 1

let port_arg =
  Arg.(value & opt int 11211 & info [ "port" ] ~doc:"TCP port (0 = ephemeral).")

let workers_arg =
  Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker domains (= shards).")

let mode_arg =
  Arg.(
    value
    & opt mode_conv Lfds.Persist_mode.Link_persist
    & info [ "mode" ] ~doc:"volatile | lp | lc | nvt | lf")

let conns_arg =
  Arg.(value & opt int 4 & info [ "conns" ] ~doc:"Client connections.")

let keys_arg = Arg.(value & opt int 10_000 & info [ "keys" ] ~doc:"Key-range size.")

let pipeline_arg =
  Arg.(value & opt int 8 & info [ "pipeline" ] ~doc:"Requests per batch.")

let serve_cmd =
  let buckets =
    Arg.(value & opt int 4096 & info [ "buckets" ] ~doc:"Hash buckets (total).")
  in
  let capacity =
    Arg.(value & opt int 100_000 & info [ "capacity" ] ~doc:"LRU capacity (items).")
  in
  let idle_timeout =
    Arg.(
      value & opt float 60.
      & info [ "idle-timeout" ] ~doc:"Close idle connections after SECONDS (0 = never.)")
  in
  let duration =
    Arg.(
      value & opt float 0.
      & info [ "duration" ]
          ~doc:"Serve for SECONDS then stop gracefully (0 = until Ctrl-C). \
                With $(b,--drill): seconds of load before the kill.")
  in
  let drill =
    Arg.(
      value & flag
      & info [ "drill" ]
          ~doc:
            "Crash-recovery drill: take load, kill the server mid-traffic, \
             power-cut the heap, recover, restart, and audit every \
             acknowledged mutation over TCP. Exit 1 on any loss, leak, or \
             failed restart.")
  in
  let evict_p =
    Arg.(
      value & opt float 0.5
      & info [ "evict-p" ] ~doc:"Drill: cache-line eviction probability at the crash.")
  in
  let no_torn =
    Arg.(
      value & flag
      & info [ "no-torn-op" ] ~doc:"Drill: skip the injected mid-operation crash.")
  in
  let max_batch =
    Arg.(
      value
      & opt int (Server.Nvserve.default_config ()).Server.Nvserve.max_batch
      & info [ "max-batch" ]
          ~doc:
            "Group commit: max operations under one covering fence (1 = \
             eager per-op fences, the unbatched baseline).")
  in
  let max_delay_us =
    Arg.(
      value
      & opt int (Server.Nvserve.default_config ()).Server.Nvserve.max_delay_us
      & info [ "max-delay-us" ]
          ~doc:
            "Group commit starvation bound: microseconds an under-filled \
             batch may be held open waiting to fill (0 = commit at every \
             poll wakeup; responses are never delayed).")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve a Prometheus text exposition of the nvlf stats counters \
             on this loopback port (0 = ephemeral; the bound port is printed \
             at startup).")
  in
  let sample_every =
    Arg.(
      value & opt int 0
      & info [ "sample-every" ] ~docv:"N"
          ~doc:
            "Trace every Nth request per worker through the \
             queue/parse/execute/fence/respond stages; percentiles appear \
             under $(b,stats nvlf) and in the shutdown summary (0 = sampler \
             off).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "On stop, write the sampled requests as Chrome trace-event JSON \
             (chrome://tracing, Perfetto); needs $(b,--sample-every).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "With $(b,--drill): write an nvlf-bench/2 drill record including \
             the per-phase recovery timeline.")
  in
  let runtime =
    Arg.(
      value & opt string "sched"
      & info [ "runtime" ] ~docv:"RUNTIME"
          ~doc:
            "Connection-multiplexing runtime: $(b,sched) (work-stealing run \
             queues over epoll, poll(2) fallback; scales past FD_SETSIZE) or \
             $(b,select) (legacy per-worker select loop, capped below 1024 \
             fds).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"NVServe: sharded memcached-protocol TCP server over the NV heap")
    Term.(
      const serve $ port_arg $ workers_arg $ buckets $ capacity $ mode_arg
      $ idle_timeout $ duration $ drill $ conns_arg $ keys_arg $ pipeline_arg
      $ evict_p $ no_torn $ max_batch $ max_delay_us $ metrics_port
      $ sample_every $ trace_out $ json $ runtime $ seed_arg)

let loadgen_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server address.")
  in
  let duration =
    Arg.(value & opt float 2. & info [ "duration" ] ~doc:"Seconds of load.")
  in
  let set_pct =
    Arg.(value & opt int 20 & info [ "set-pct" ] ~doc:"Percentage of sets.")
  in
  let delete_pct =
    Arg.(value & opt int 10 & info [ "delete-pct" ] ~doc:"Percentage of deletes.")
  in
  let value_bytes =
    Arg.(value & opt int 24 & info [ "value-bytes" ] ~doc:"Payload size.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write an nvlf-bench/2 loadgen record.")
  in
  let hot =
    Arg.(
      value & opt int 0
      & info [ "hot" ] ~docv:"N"
          ~doc:
            "Open-many mode: open $(b,--conns) connections, hold them all, \
             but drive only N of them — the C10K mostly-idle shape (0 = \
             classic mode, every connection driven by its own domain).")
  in
  let drivers =
    Arg.(
      value & opt int 8
      & info [ "drivers" ] ~docv:"N"
          ~doc:
            "Open-many mode: driver domains rotating over the hot subset \
             (ignored without $(b,--hot)).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive an NVServe instance with validated concurrent load")
    Term.(
      const loadgen $ host $ port_arg $ conns_arg $ duration $ keys_arg
      $ set_pct $ delete_pct $ pipeline_arg $ value_bytes $ seed_arg $ hot
      $ drivers $ json)

(* --- watch: live stats-nvlf dashboard over the kv interval differ --- *)

(* One stats scrape over an open connection: send the command, read to the
   END terminator (or an ERROR line), return the STAT key/value pairs. *)
let scrape_stats fd arg =
  let req = (match arg with None -> "stats" | Some a -> "stats " ^ a) ^ "\r\n" in
  let n = Unix.write_substring fd req 0 (String.length req) in
  if n <> String.length req then failwith "watch: short write";
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let finished () =
    let s = Buffer.contents buf in
    let ends suffix =
      let ls = String.length s and lx = String.length suffix in
      ls >= lx && String.sub s (ls - lx) lx = suffix
    in
    ends "END\r\n" || ends "ERROR\r\n"
  in
  while not (finished ()) do
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> failwith "watch: server closed the connection"
    | n -> Buffer.add_subbytes buf chunk 0 n
  done;
  List.filter_map
    (fun line ->
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      match String.split_on_char ' ' line with
      | "STAT" :: k :: rest -> Some (k, String.concat " " rest)
      | _ -> None)
    (String.split_on_char '\n' (Buffer.contents buf))

let watch host port interval count =
  let addr =
    try Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    with _ ->
      Unix.ADDR_INET ((Unix.gethostbyname host).Unix.h_addr_list.(0), port)
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "watch: cannot connect to %s:%d: %s\n%!" host port
       (Unix.error_message e);
     exit 1);
  let kvs0 = scrape_stats fd (Some "nvlf") in
  if kvs0 = [] then begin
    Printf.eprintf
      "watch: no STAT lines in response — not an NVServe stats endpoint?\n%!";
    exit 1
  end;
  let get kvs k = List.assoc_opt k kvs in
  let level kvs k =
    Option.value (Option.bind (get kvs k) float_of_string_opt) ~default:0.
  in
  Printf.printf
    "nvlf watch %s:%d — mode %s, %s workers / %s shards, up %ss (tick %gs)\n%!"
    host port
    (Option.value (get kvs0 "mode") ~default:"?")
    (Option.value (get kvs0 "workers") ~default:"?")
    (Option.value (get kvs0 "shards") ~default:"?")
    (Option.value (get kvs0 "uptime_s") ~default:"?")
    interval;
  print_endline
    "   ops/s |  get/s  set/s  hit% | fence/req ops/commit depth-p50 | conns \
     \ items | p50-us p99-us | in-MB/s out-MB/s";
  let last = ref (Trace.Metrics.kv_sample kvs0) in
  let ticks = ref 0 in
  let stop_flag = ref false in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop_flag := true))
   with Invalid_argument _ -> ());
  while (not !stop_flag) && (count = 0 || !ticks < count) do
    Unix.sleepf interval;
    let kvs = scrape_stats fd (Some "nvlf") in
    let now = Trace.Metrics.kv_sample kvs in
    let older = !last in
    last := now;
    let d, dt = Trace.Metrics.kv_delta ~older ~newer:now in
    let dv k = Option.value (List.assoc_opt k d) ~default:0. in
    let rate k = if dt > 0. then dv k /. dt else 0. in
    let reqs = dv "requests" in
    let lookups = dv "get_hits" +. dv "get_misses" in
    let commits = dv "group_commits" in
    Printf.printf
      "%8s | %6s %6s %4.0f%% | %9.3f %10.1f %9.0f | %5.0f %6.0f | %6.0f %6.0f \
       | %7.2f %8.2f\n%!"
      (Report.human_ops (rate "requests"))
      (Report.human_ops (rate "cmd_get"))
      (Report.human_ops (rate "cmd_set"))
      (if lookups > 0. then 100. *. dv "get_hits" /. lookups else 0.)
      (if reqs > 0. then dv "fences" /. reqs else 0.)
      (if commits > 0. then dv "group_ops" /. commits else 0.)
      (level kvs "batch_depth_p50")
      (level kvs "open_conns")
      (level kvs "curr_items")
      (level kvs "req_p50_us")
      (level kvs "req_p99_us")
      (rate "bytes_read" /. 1e6)
      (rate "bytes_written" /. 1e6);
    incr ticks
  done;
  Unix.close fd

let watch_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server address.")
  in
  let interval =
    Arg.(
      value & opt float 1.0 & info [ "interval" ] ~doc:"Seconds between scrapes.")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~doc:"Stop after N ticks (0 = until Ctrl-C).")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Live NVServe dashboard: interval-diffed rates from repeated [stats \
          nvlf] scrapes")
    Term.(const watch $ host $ port_arg $ interval $ count)

let () =
  let info = Cmd.info "nvlf" ~doc:"Log-free durable data structures driver" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            stats_cmd; drill_cmd; queue_drill_cmd; run_cmd; sanitize_cmd;
            lincheck_cmd; trace_cmd; top_cmd; serve_cmd; loadgen_cmd;
            watch_cmd;
          ]))
