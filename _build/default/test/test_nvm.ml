(* Unit and property tests for the NVM substrate: cache-line geometry,
   marked pointers, the simulated heap's volatile/durable split, crash
   semantics, regions and the persistent allocator. *)

open Nvm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Cacheline --- *)

let test_cacheline_geometry () =
  check_int "words per line" 8 Cacheline.words_per_line;
  check_int "line of 0" 0 (Cacheline.line_of_addr 0);
  check_int "line of 7" 0 (Cacheline.line_of_addr 7);
  check_int "line of 8" 1 (Cacheline.line_of_addr 8);
  check_int "addr of line 3" 24 (Cacheline.addr_of_line 3);
  check_int "align_down 13" 8 (Cacheline.align_down 13);
  check_int "align_up 13" 16 (Cacheline.align_up 13);
  check_int "align_up 16" 16 (Cacheline.align_up 16);
  check_bool "aligned 16" true (Cacheline.is_aligned 16);
  check_bool "unaligned 17" false (Cacheline.is_aligned 17)

let prop_line_roundtrip =
  QCheck.Test.make ~name:"line_of/addr_of roundtrip" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun addr ->
      let line = Cacheline.line_of_addr addr in
      let base = Cacheline.addr_of_line line in
      base <= addr && addr < base + Cacheline.words_per_line)

(* --- Marked_ptr --- *)

let test_marked_ptr_basic () =
  let a = 64 in
  let p = Marked_ptr.make a ~delete:false ~unflushed:false ~tag:false in
  check_int "clean addr" a (Marked_ptr.addr p);
  check_bool "not deleted" false (Marked_ptr.is_deleted p);
  let p = Marked_ptr.with_delete p in
  check_bool "deleted" true (Marked_ptr.is_deleted p);
  check_int "addr preserved" a (Marked_ptr.addr p);
  let p = Marked_ptr.with_unflushed p in
  check_bool "unflushed" true (Marked_ptr.is_unflushed p);
  let p = Marked_ptr.clear_unflushed p in
  check_bool "cleared" false (Marked_ptr.is_unflushed p);
  check_bool "delete survives clear" true (Marked_ptr.is_deleted p);
  check_bool "null is null" true (Marked_ptr.is_null Marked_ptr.null)

let test_marked_ptr_unaligned () =
  Alcotest.check_raises "unaligned make"
    (Invalid_argument "Marked_ptr.make: unaligned address") (fun () ->
      ignore (Marked_ptr.make 13 ~delete:false ~unflushed:false ~tag:false))

let prop_marked_ptr_roundtrip =
  QCheck.Test.make ~name:"marked_ptr mark roundtrip" ~count:500
    QCheck.(quad (int_bound 10_000) bool bool bool)
    (fun (a8, d, u, t) ->
      let a = a8 * 8 in
      let p = Marked_ptr.make a ~delete:d ~unflushed:u ~tag:t in
      Marked_ptr.addr p = a
      && Marked_ptr.is_deleted p = d
      && Marked_ptr.is_unflushed p = u
      && Marked_ptr.is_tagged p = t)

(* --- Heap: volatile/durable split --- *)

let mk_heap ?(size = 4096) () = Heap.create ~size_words:size ()

let test_heap_store_load () =
  let h = mk_heap () in
  Heap.store h ~tid:0 100 42;
  check_int "volatile read" 42 (Heap.load h ~tid:0 100);
  check_int "durable unchanged" 0 (Heap.durable_load h 100);
  check_bool "line dirty" true (Heap.line_is_dirty h 100)

let test_heap_persist () =
  let h = mk_heap () in
  Heap.store h ~tid:0 100 42;
  Heap.persist h ~tid:0 100;
  check_int "durable after persist" 42 (Heap.durable_load h 100);
  check_bool "line clean" false (Heap.line_is_dirty h 100)

let test_heap_writeback_without_fence () =
  let h = mk_heap () in
  Heap.store h ~tid:0 100 42;
  Heap.write_back h ~tid:0 100;
  check_int "not durable before fence" 0 (Heap.durable_load h 100);
  check_int "pending" 1 (Heap.pending_count h ~tid:0);
  Heap.fence h ~tid:0;
  check_int "durable after fence" 42 (Heap.durable_load h 100);
  check_int "no pending" 0 (Heap.pending_count h ~tid:0)

let test_heap_fence_batches () =
  let h = mk_heap () in
  for i = 0 to 7 do
    Heap.store h ~tid:0 (i * 64) i;
    Heap.write_back h ~tid:0 (i * 64)
  done;
  let st = Heap.stats h 0 in
  let before = st.sync_batches in
  Heap.fence h ~tid:0;
  check_int "one batch for 8 lines" (before + 1) st.sync_batches;
  check_int "8 lines drained" 8 st.lines_drained

let test_heap_writeback_dedup () =
  let h = mk_heap () in
  Heap.store h ~tid:0 100 1;
  Heap.write_back h ~tid:0 100;
  Heap.write_back h ~tid:0 101;
  (* same line *)
  check_int "same line deduped" 1 (Heap.pending_count h ~tid:0)

let test_heap_cas () =
  let h = mk_heap () in
  Heap.store h ~tid:0 10 5;
  check_bool "cas success" true (Heap.cas h ~tid:0 10 ~expected:5 ~desired:6);
  check_bool "cas failure" false (Heap.cas h ~tid:0 10 ~expected:5 ~desired:7);
  check_int "value" 6 (Heap.load h ~tid:0 10)

let test_heap_fetch_add () =
  let h = mk_heap () in
  Heap.store h ~tid:0 10 5;
  check_int "old value" 5 (Heap.fetch_add h ~tid:0 10 3);
  check_int "new value" 8 (Heap.load h ~tid:0 10)

let test_heap_crash_loses_unflushed () =
  let h = mk_heap () in
  Heap.store h ~tid:0 100 42;
  Heap.crash h ~eviction_probability:0.0;
  check_int "unflushed store lost" 0 (Heap.load h ~tid:0 100)

let test_heap_crash_keeps_flushed () =
  let h = mk_heap () in
  Heap.store h ~tid:0 100 42;
  Heap.persist h ~tid:0 100;
  Heap.store h ~tid:0 200 99;
  Heap.crash h ~eviction_probability:0.0;
  check_int "flushed survives" 42 (Heap.load h ~tid:0 100);
  check_int "unflushed lost" 0 (Heap.load h ~tid:0 200)

let test_heap_crash_eviction_lottery () =
  (* With eviction probability 1 every dirty line survives the crash. *)
  let h = mk_heap () in
  Heap.store h ~tid:0 100 42;
  Heap.store h ~tid:0 200 43;
  Heap.crash h ~eviction_probability:1.0;
  check_int "evicted line survived" 42 (Heap.load h ~tid:0 100);
  check_int "evicted line survived (2)" 43 (Heap.load h ~tid:0 200)

let test_heap_crash_clears_pending () =
  let h = mk_heap () in
  Heap.store h ~tid:0 100 42;
  Heap.write_back h ~tid:0 100;
  Heap.crash h ~eviction_probability:0.0;
  check_int "pending dropped" 0 (Heap.pending_count h ~tid:0);
  check_int "value lost" 0 (Heap.load h ~tid:0 100)

let test_heap_flush_all () =
  let h = mk_heap () in
  for i = 0 to 99 do
    Heap.store h ~tid:0 i i
  done;
  Heap.flush_all h ~tid:0;
  Heap.crash h ~eviction_probability:0.0;
  let ok = ref true in
  for i = 0 to 99 do
    if Heap.load h ~tid:0 i <> i then ok := false
  done;
  check_bool "all survived clean shutdown" true !ok

let test_heap_bounds () =
  let h = mk_heap ~size:128 () in
  Alcotest.check_raises "load out of bounds"
    (Invalid_argument "Heap: address 128 out of bounds") (fun () ->
      ignore (Heap.load h ~tid:0 128))

let test_heap_trip () =
  let h = mk_heap () in
  Heap.set_trip h 3;
  Heap.store h ~tid:0 0 1;
  Heap.store h ~tid:0 1 1;
  Heap.store h ~tid:0 2 1;
  Alcotest.check_raises "trips on 4th primitive" Heap.Crashed (fun () ->
      Heap.store h ~tid:0 3 1);
  (* Disarmed after tripping. *)
  Heap.store h ~tid:0 4 1;
  check_int "works after trip" 1 (Heap.load h ~tid:0 4)

let test_heap_wb_overflow_drains () =
  let h = mk_heap ~size:(1 lsl 16) () in
  (* Exceed the pending buffer; the implicit drain must keep going. *)
  for i = 0 to 5000 do
    let a = i * 8 mod (1 lsl 16) in
    Heap.store h ~tid:0 a (i + 1);
    Heap.write_back h ~tid:0 a
  done;
  Heap.fence h ~tid:0;
  check_int "first line durable via implicit drain" 1 (Heap.durable_load h 0)

let prop_crash_durable_subset =
  (* With eviction probability 0, a crash exposes exactly the persisted
     image for every line that was explicitly synced. *)
  QCheck.Test.make ~name:"crash(p=0) preserves persisted lines" ~count:50
    QCheck.(
      list_of_size (Gen.int_range 1 50) (pair (int_bound 511) (int_bound 1000)))
    (fun writes ->
      let h = Heap.create ~size_words:512 () in
      let persisted = Hashtbl.create 16 in
      List.iteri
        (fun i (addr, v) ->
          Heap.store h ~tid:0 addr v;
          if i mod 3 = 0 then begin
            Heap.persist h ~tid:0 addr;
            let base = Cacheline.align_down addr in
            for a = base to base + 7 do
              Hashtbl.replace persisted a (Heap.load h ~tid:0 a)
            done
          end)
        writes;
      Heap.crash h ~eviction_probability:0.0;
      Hashtbl.fold (fun a v ok -> ok && Heap.load h ~tid:0 a = v) persisted true)

let test_wb_instruction_clflush_serializes () =
  let h = mk_heap () in
  Heap.set_wb_instruction h Heap.Clflush;
  Heap.store h ~tid:0 100 42;
  Heap.write_back h ~tid:0 100;
  (* clflush completes alone: durable before any fence. *)
  check_int "durable without fence" 42 (Heap.durable_load h 100);
  check_int "nothing pending" 0 (Heap.pending_count h ~tid:0)

let test_wb_instruction_clflushopt_invalidates () =
  let h = mk_heap () in
  Heap.set_wb_instruction h Heap.Clflushopt;
  Heap.store h ~tid:0 100 42;
  Heap.persist h ~tid:0 100;
  (* Value still readable (reload from NVRAM), durable as with clwb. *)
  check_int "readable after invalidation" 42 (Heap.load h ~tid:0 100);
  check_int "durable" 42 (Heap.durable_load h 100)

let test_wb_instruction_clwb_keeps_line () =
  let h = mk_heap () in
  check_bool "default is clwb" true (Heap.wb_instruction h = Heap.Clwb);
  Heap.store h ~tid:0 100 42;
  Heap.persist h ~tid:0 100;
  check_int "line stays valid" 42 (Heap.load h ~tid:0 100)

(* --- Region --- *)

let test_region_carve () =
  let r = Region.make ~base:8 ~limit:1024 in
  let a = Region.carve r 10 in
  check_int "first carve at base" 8 a;
  let b = Region.carve r 10 in
  check_bool "second carve aligned above" true
    (b >= a + 10 && Cacheline.is_aligned b);
  Region.align_to r 64;
  let c = Region.carve r 8 in
  check_int "aligned to 64" 0 (c mod 64)

let test_region_overflow () =
  let r = Region.make ~base:0 ~limit:16 in
  ignore (Region.carve r 8);
  Alcotest.check_raises "carve beyond limit"
    (Invalid_argument "Region.carve: out of space (need 16, have 8)") (fun () ->
      ignore (Region.carve r 16))

(* --- Nvalloc --- *)

let mk_alloc ?(page_words = 512) () =
  let h = Heap.create ~size_words:(1 lsl 16) () in
  (h, Nvalloc.create h ~base:1024 ~size_words:((1 lsl 16) - 1024) ~page_words ())

let test_alloc_basic () =
  let _, a = mk_alloc () in
  let n1 = Nvalloc.alloc a ~tid:0 ~size_class:8 in
  let n2 = Nvalloc.alloc a ~tid:0 ~size_class:8 in
  check_bool "distinct" true (n1 <> n2);
  check_bool "aligned" true (Cacheline.is_aligned n1);
  check_bool "same page (locality)" true
    (Nvalloc.page_of a n1 = Nvalloc.page_of a n2)

let test_alloc_next_addr_prediction () =
  let _, a = mk_alloc () in
  for _ = 1 to 100 do
    let predicted = Nvalloc.next_alloc_addr a ~tid:0 ~size_class:8 in
    let got = Nvalloc.alloc a ~tid:0 ~size_class:8 in
    check_int "next_alloc_addr predicts alloc" predicted got
  done

let test_alloc_free_reuse () =
  let _, a = mk_alloc () in
  let n1 = Nvalloc.alloc a ~tid:0 ~size_class:8 in
  Nvalloc.free a ~tid:0 n1;
  let n2 = Nvalloc.alloc a ~tid:0 ~size_class:8 in
  check_int "freed slot reused first" n1 n2

let test_alloc_classes_segregated () =
  let _, a = mk_alloc () in
  let n8 = Nvalloc.alloc a ~tid:0 ~size_class:8 in
  let n16 = Nvalloc.alloc a ~tid:0 ~size_class:16 in
  check_bool "different pages per class" true
    (Nvalloc.page_of a n8 <> Nvalloc.page_of a n16);
  check_int "class of n8" 8 (Nvalloc.size_class_of a ~tid:0 n8);
  check_int "class of n16" 16 (Nvalloc.size_class_of a ~tid:0 n16)

let test_alloc_bitmap_tracks () =
  let _, a = mk_alloc () in
  let ns = List.init 10 (fun _ -> Nvalloc.alloc a ~tid:0 ~size_class:8) in
  check_int "allocated count" 10 (Nvalloc.allocated_count a ~tid:0);
  List.iteri (fun i n -> if i < 5 then Nvalloc.free a ~tid:0 n) ns;
  check_int "after frees" 5 (Nvalloc.allocated_count a ~tid:0)

let test_alloc_page_exhaustion () =
  let _, a = mk_alloc ~page_words:128 () in
  (* 128-word pages hold (128-8)/8 = 15 slots; force several pages. *)
  let ns = List.init 100 (fun _ -> Nvalloc.alloc a ~tid:0 ~size_class:8) in
  check_int "100 live" 100 (Nvalloc.allocated_count a ~tid:0);
  let pages = List.sort_uniq compare (List.map (Nvalloc.page_of a) ns) in
  check_bool "spans multiple pages" true (List.length pages >= 7)

let test_alloc_per_thread_pages () =
  let _, a = mk_alloc () in
  let n0 = Nvalloc.alloc a ~tid:0 ~size_class:8 in
  let n1 = Nvalloc.alloc a ~tid:1 ~size_class:8 in
  check_bool "threads own distinct pages" true
    (Nvalloc.page_of a n0 <> Nvalloc.page_of a n1)

let test_alloc_recover () =
  let h, a = mk_alloc () in
  let live = List.init 20 (fun _ -> Nvalloc.alloc a ~tid:0 ~size_class:8) in
  List.iteri (fun i n -> if i mod 2 = 0 then Nvalloc.free a ~tid:0 n) live;
  Heap.flush_all h ~tid:0;
  Heap.crash h ~eviction_probability:0.0;
  let a' = Nvalloc.recover h ~base:1024 ~size_words:((1 lsl 16) - 1024) () in
  check_int "allocated survives recovery" 10 (Nvalloc.allocated_count a' ~tid:0);
  (* Fresh allocations from the recovered state must not collide with the
     surviving live slots. *)
  let survivors =
    List.filteri (fun i _ -> i mod 2 = 1) live |> List.sort_uniq compare
  in
  for _ = 1 to 50 do
    let n = Nvalloc.alloc a' ~tid:0 ~size_class:8 in
    check_bool "no collision with survivors" false (List.mem n survivors)
  done

let test_alloc_iter_allocated () =
  let _, a = mk_alloc () in
  let ns = List.init 5 (fun _ -> Nvalloc.alloc a ~tid:0 ~size_class:8) in
  let page = Nvalloc.page_of a (List.hd ns) in
  let seen = ref [] in
  Nvalloc.iter_allocated a ~tid:0 ~page (fun addr -> seen := addr :: !seen);
  check_int "iterates allocated" 5 (List.length !seen);
  List.iter (fun n -> check_bool "present" true (List.mem n !seen)) ns

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"allocations never overlap" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 2))
    (fun classes ->
      let _, a = mk_alloc () in
      let spans = ref [] in
      List.for_all
        (fun c ->
          let size_class = 8 * (c + 1) in
          let n = Nvalloc.alloc a ~tid:0 ~size_class in
          let ok =
            List.for_all
              (fun (base, len) -> n + size_class <= base || base + len <= n)
              !spans
          in
          spans := (n, size_class) :: !spans;
          ok)
        classes)

(* --- Latency model / Pstats --- *)

let test_latency_model_defaults () =
  let l = Latency_model.default () in
  check_int "write default" 125 l.nvram_write_ns;
  check_bool "injection on" true l.inject;
  let l = Latency_model.no_injection () in
  check_bool "injection off" false l.inject

let test_pstats_aggregate () =
  let r = Pstats.make_registry () in
  (Pstats.get r 0).loads <- 5;
  (Pstats.get r 1).loads <- 7;
  (Pstats.get r 1).sync_batches <- 2;
  let total = Pstats.aggregate r in
  check_int "loads summed" 12 total.loads;
  check_int "syncs summed" 2 total.sync_batches;
  Pstats.reset_registry r;
  check_int "reset" 0 (Pstats.aggregate r).loads

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "nvm"
    [
      ( "cacheline",
        [
          Alcotest.test_case "geometry" `Quick test_cacheline_geometry;
          qt prop_line_roundtrip;
        ] );
      ( "marked_ptr",
        [
          Alcotest.test_case "basic" `Quick test_marked_ptr_basic;
          Alcotest.test_case "unaligned" `Quick test_marked_ptr_unaligned;
          qt prop_marked_ptr_roundtrip;
        ] );
      ( "heap",
        [
          Alcotest.test_case "store/load" `Quick test_heap_store_load;
          Alcotest.test_case "persist" `Quick test_heap_persist;
          Alcotest.test_case "wb needs fence" `Quick test_heap_writeback_without_fence;
          Alcotest.test_case "fence batches" `Quick test_heap_fence_batches;
          Alcotest.test_case "wb dedup" `Quick test_heap_writeback_dedup;
          Alcotest.test_case "cas" `Quick test_heap_cas;
          Alcotest.test_case "fetch_add" `Quick test_heap_fetch_add;
          Alcotest.test_case "crash loses unflushed" `Quick
            test_heap_crash_loses_unflushed;
          Alcotest.test_case "crash keeps flushed" `Quick test_heap_crash_keeps_flushed;
          Alcotest.test_case "eviction lottery" `Quick test_heap_crash_eviction_lottery;
          Alcotest.test_case "crash clears pending" `Quick
            test_heap_crash_clears_pending;
          Alcotest.test_case "flush_all" `Quick test_heap_flush_all;
          Alcotest.test_case "bounds" `Quick test_heap_bounds;
          Alcotest.test_case "trip wire" `Quick test_heap_trip;
          Alcotest.test_case "wb overflow drains" `Quick test_heap_wb_overflow_drains;
          qt prop_crash_durable_subset;
          Alcotest.test_case "clflush serializes" `Quick
            test_wb_instruction_clflush_serializes;
          Alcotest.test_case "clflushopt invalidates" `Quick
            test_wb_instruction_clflushopt_invalidates;
          Alcotest.test_case "clwb keeps line" `Quick test_wb_instruction_clwb_keeps_line;
        ] );
      ( "region",
        [
          Alcotest.test_case "carve" `Quick test_region_carve;
          Alcotest.test_case "overflow" `Quick test_region_overflow;
        ] );
      ( "nvalloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "next_alloc_addr" `Quick test_alloc_next_addr_prediction;
          Alcotest.test_case "free/reuse" `Quick test_alloc_free_reuse;
          Alcotest.test_case "class segregation" `Quick test_alloc_classes_segregated;
          Alcotest.test_case "bitmap" `Quick test_alloc_bitmap_tracks;
          Alcotest.test_case "page exhaustion" `Quick test_alloc_page_exhaustion;
          Alcotest.test_case "per-thread pages" `Quick test_alloc_per_thread_pages;
          Alcotest.test_case "recover" `Quick test_alloc_recover;
          Alcotest.test_case "iter_allocated" `Quick test_alloc_iter_allocated;
          qt prop_alloc_no_overlap;
        ] );
      ( "latency+stats",
        [
          Alcotest.test_case "latency defaults" `Quick test_latency_model_defaults;
          Alcotest.test_case "pstats aggregate" `Quick test_pstats_aggregate;
        ] );
    ]
