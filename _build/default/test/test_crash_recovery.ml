(* Systematic crash-recovery testing: trip-point sweeps (crash after exactly
   N primitives, for many N), eviction-probability sweeps, leak freedom after
   the active-page sweep, and double-crash tolerance. *)

open Nvm
module I = Harness.Instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [n_ops] scripted updates with a crash tripped after [trip] primitives;
   verify durable linearizability (completed ops survive; at most the single
   in-flight op may differ) and leak freedom. *)
let trip_once ~structure ~flavor ~trip ~evict ~seed =
  let inst = Tutil.mk ~size_hint:256 structure flavor in
  let model = Hashtbl.create 64 in
  let rng = Workload.Xoshiro.make ~seed in
  let heap = Lfds.Ctx.heap inst.ctx in
  Heap.set_trip heap trip;
  let crashed = ref false in
  (try
     for _ = 1 to 60 do
       let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:128 in
       if Workload.Xoshiro.chance rng ~num:1 ~den:2 then begin
         if inst.ops.insert ~tid:0 ~key ~value:key then Hashtbl.replace model key key
       end
       else if inst.ops.remove ~tid:0 ~key then Hashtbl.remove model key
     done;
     Heap.disarm_trip heap
   with Heap.Crashed -> crashed := true);
  if not !crashed then Heap.disarm_trip heap;
  let inst, _dt, _freed =
    I.crash_and_recover ~seed ~eviction_probability:evict inst
  in
  (* Divergence from the model: at most the one in-flight key. *)
  let diffs = ref 0 in
  for key = 1 to 128 do
    if Hashtbl.mem model key <> (inst.ops.search ~tid:0 ~key <> None) then incr diffs
  done;
  let leak =
    Lfds.Recovery.leak_count inst.ctx
      ~active_pages:
        (List.concat_map
           (fun tid ->
             Lfds.Active_page_table.active_pages
               (Lfds.Nv_epochs.apt (Lfds.Ctx.mem inst.ctx))
               ~tid)
           [ 0 ])
      ~iter:inst.iter_reachable
  in
  (!diffs, leak, !crashed)

let sweep_trips ~structure ~flavor () =
  let crashes = ref 0 in
  List.iter
    (fun trip ->
      List.iter
        (fun evict ->
          let diffs, _leak, crashed =
            trip_once ~structure ~flavor ~trip ~evict ~seed:(trip + 31)
          in
          if crashed then incr crashes;
          check_bool
            (Printf.sprintf "trip=%d evict=%.2f: at most one in-flight diff" trip
               evict)
            true (diffs <= 1))
        [ 0.0; 0.5; 1.0 ])
    [ 50; 137; 500; 1111; 2500 ];
  check_bool "some runs actually crashed mid-operation" true (!crashes > 0)

(* Leak freedom: after recovery's sweep, the allocator's live set equals the
   structure's reachable set (over all pages, not just active ones). *)
let test_no_leaks_after_recovery structure () =
  let inst = Tutil.mk ~size_hint:256 structure I.Lp in
  for k = 1 to 150 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  for k = 1 to 150 do
    if k mod 2 = 0 then ignore (inst.ops.remove ~tid:0 ~key:k)
  done;
  let inst, _dt, _freed = I.crash_and_recover ~seed:5 inst in
  let reachable = Hashtbl.create 64 in
  inst.iter_reachable (fun a -> Hashtbl.replace reachable a ());
  let alloc = Lfds.Ctx.allocator inst.ctx in
  let stray = ref 0 in
  List.iter
    (fun page ->
      Nvalloc.iter_allocated alloc ~tid:0 ~page (fun addr ->
          if not (Hashtbl.mem reachable addr) then incr stray))
    (Nvalloc.initialized_pages alloc ~tid:0);
  check_int "allocated = reachable after sweep" 0 !stray

(* Crash during recovery-time allocation churn, then crash again. *)
let test_double_crash structure () =
  let inst = Tutil.mk ~size_hint:128 structure I.Lp in
  for k = 1 to 60 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  let inst, _, _ = I.crash_and_recover ~seed:1 inst in
  for k = 61 to 90 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  let inst, _, _ = I.crash_and_recover ~seed:2 inst in
  for k = 1 to 90 do
    Alcotest.(check (option int)) "survives two crashes" (Some k)
      (inst.ops.search ~tid:0 ~key:k)
  done

(* Recovery with every line evicted (p=1) equals a clean shutdown. *)
let test_full_eviction_recovery structure () =
  let inst = Tutil.mk ~size_hint:128 structure I.Lp in
  for k = 1 to 100 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:(k * 5))
  done;
  let inst, _, _ = I.crash_and_recover ~seed:3 ~eviction_probability:1.0 inst in
  for k = 1 to 100 do
    Alcotest.(check (option int)) "everything survives p=1" (Some (k * 5))
      (inst.ops.search ~tid:0 ~key:k)
  done

(* The search-based sweep (paper's first recovery strategy) agrees with the
   traversal-based one on the linked list. *)
let test_sweep_search_agrees () =
  let c = { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 18 } in
  let ctx = Lfds.Ctx.create c in
  let head = Lfds.Durable_list.create ctx ~root:0 in
  let ops = Lfds.Durable_list.ops ctx ~head in
  for k = 1 to 60 do
    ignore (ops.insert ~tid:0 ~key:k ~value:k)
  done;
  (* Allocate a node durably but crash before it is ever linked: a leak. *)
  let mem = Lfds.Ctx.mem ctx in
  Lfds.Nv_epochs.op_begin mem ~tid:0;
  let stray = Lfds.Nv_epochs.alloc_node mem ~tid:0 ~size_class:8 in
  let heap = Lfds.Ctx.heap ctx in
  Heap.store heap ~tid:0 stray 999;
  Heap.persist heap ~tid:0 stray;
  (* note: epoch deliberately left open, as a crashed thread would *)
  Heap.crash heap ~eviction_probability:1.0;
  let ctx', active = Lfds.Ctx.recover heap c in
  let head' = Lfds.Durable_list.attach ctx' ~root:0 in
  Lfds.Durable_list.recover_consistency ctx' ~head:head';
  let locate ~key =
    let found = ref None in
    Lfds.Durable_list.iter_nodes ctx' ~tid:0 ~head:head' (fun n ~deleted ->
        if (not deleted) && Heap.load (Lfds.Ctx.heap ctx') ~tid:0 n = key then
          found := Some n);
    !found
  in
  let freed = Lfds.Recovery.sweep_search ctx' ~active_pages:active ~locate in
  check_int "exactly the stray node freed" 1 freed;
  check_int "list intact" 60 (Lfds.Durable_list.size ctx' ~tid:0 ~head:head')

(* Link-cache mode: a checkpoint (flush_all) is a durability barrier — every
   operation completed before it survives any later crash. *)
let test_lc_checkpoint_barrier () =
  let inst = Tutil.mk ~size_hint:256 I.Hash I.Lc in
  for k = 1 to 80 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  (match Lfds.Ctx.link_cache inst.ctx with
  | Some lc -> Lfds.Link_cache.flush_all lc ~tid:0
  | None -> Alcotest.fail "expected a link cache");
  (* Post-checkpoint operations may be lost; pre-checkpoint must survive. *)
  for k = 81 to 90 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  let inst, _, _ = I.crash_and_recover ~seed:13 ~eviction_probability:0.0 inst in
  for k = 1 to 80 do
    Alcotest.(check (option int)) "checkpointed op survives" (Some k)
      (inst.ops.search ~tid:0 ~key:k)
  done

(* Parallel sweep agrees with the sequential one. *)
let test_parallel_sweep_agrees () =
  let c = { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 18; nthreads = 4 } in
  let ctx = Lfds.Ctx.create c in
  let head = Lfds.Durable_list.create ctx ~root:0 in
  let ops = Lfds.Durable_list.ops ctx ~head in
  for k = 1 to 100 do
    ignore (ops.insert ~tid:0 ~key:k ~value:k)
  done;
  (* Three stray allocations that will leak. *)
  let mem = Lfds.Ctx.mem ctx in
  Lfds.Nv_epochs.op_begin mem ~tid:0;
  for _ = 1 to 3 do
    let stray = Lfds.Nv_epochs.alloc_node mem ~tid:0 ~size_class:8 in
    Nvm.Heap.persist (Lfds.Ctx.heap ctx) ~tid:0 stray
  done;
  Nvm.Heap.crash (Lfds.Ctx.heap ctx) ~eviction_probability:1.0;
  let ctx', active = Lfds.Ctx.recover (Lfds.Ctx.heap ctx) c in
  let head' = Lfds.Durable_list.attach ctx' ~root:0 in
  Lfds.Durable_list.recover_consistency ctx' ~head:head';
  let iter f =
    Lfds.Durable_list.iter_nodes ctx' ~tid:0 ~head:head' (fun n ~deleted:_ -> f n)
  in
  let freed =
    Lfds.Recovery.sweep_traversal_parallel ctx' ~active_pages:active ~iter
      ~nworkers:4
  in
  check_int "parallel sweep frees the strays" 3 freed;
  check_int "list intact" 100 (Lfds.Durable_list.size ctx' ~tid:0 ~head:head');
  check_int "no leaks left" 0
    (Lfds.Recovery.leak_count ctx' ~active_pages:active ~iter)

let all4 f =
  List.map
    (fun s -> Alcotest.test_case (I.structure_name s) `Quick (f s))
    [ I.List; I.Hash; I.Skiplist; I.Bst ]

let () =
  Alcotest.run "crash-recovery"
    [
      ( "trip-sweep",
        List.map
          (fun s ->
            Alcotest.test_case (I.structure_name s) `Slow
              (sweep_trips ~structure:s ~flavor:I.Lp))
          [ I.List; I.Hash; I.Skiplist; I.Bst ] );
      ("leak-freedom", all4 test_no_leaks_after_recovery);
      ("double-crash", all4 test_double_crash);
      ("full-eviction", all4 test_full_eviction_recovery);
      ( "sweeps",
        [
          Alcotest.test_case "search-based sweep" `Quick test_sweep_search_agrees;
          Alcotest.test_case "LC checkpoint barrier" `Quick test_lc_checkpoint_barrier;
          Alcotest.test_case "parallel sweep" `Quick test_parallel_sweep_agrees;
        ] );
    ]
