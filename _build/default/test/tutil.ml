(* Shared helpers for the structure test suites: model-based checking of the
   set semantics (sequential), and instance shorthand. Linked into every test
   executable of this directory. *)

module I = Harness.Instance

let mk ?(nthreads = 1) ?(size_hint = 512) structure flavor =
  I.create ~nthreads ~size_hint ~structure ~flavor ()

(* One random operation applied both to the structure and to a reference
   model; returns false on divergence. *)
type op = Ins of int | Del of int | Find of int

let op_gen ~key_range =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Ins (1 + (k mod key_range))) nat;
        map (fun k -> Del (1 + (k mod key_range))) nat;
        map (fun k -> Find (1 + (k mod key_range))) nat;
      ])

let show_op = function
  | Ins k -> Printf.sprintf "Ins %d" k
  | Del k -> Printf.sprintf "Del %d" k
  | Find k -> Printf.sprintf "Find %d" k

let arb_ops ~key_range ~max_len =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map show_op l))
    QCheck.Gen.(list_size (int_range 1 max_len) (op_gen ~key_range))

(* Run an op list against [ops] and an assoc model; true iff every result
   and the final contents agree. *)
let agrees_with_model (ops : Lfds.Set_intf.ops) script =
  let model = Hashtbl.create 64 in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Ins k ->
          let expect = not (Hashtbl.mem model k) in
          let got = ops.insert ~tid:0 ~key:k ~value:(k * 3) in
          if got <> expect then ok := false;
          if got then Hashtbl.replace model k (k * 3)
      | Del k ->
          let expect = Hashtbl.mem model k in
          let got = ops.remove ~tid:0 ~key:k in
          if got <> expect then ok := false;
          if got then Hashtbl.remove model k
      | Find k ->
          let expect = Hashtbl.find_opt model k in
          if ops.search ~tid:0 ~key:k <> expect then ok := false)
    script;
  if ops.size () <> Hashtbl.length model then ok := false;
  Hashtbl.iter
    (fun k v -> if ops.search ~tid:0 ~key:k <> Some v then ok := false)
    model;
  !ok

(* Model-agreement property for a fresh instance per run. *)
let model_property ~name ~structure ~flavor ~count =
  QCheck.Test.make ~name ~count (arb_ops ~key_range:64 ~max_len:200)
    (fun script ->
      let inst = mk structure flavor in
      agrees_with_model inst.ops script)

let qt = QCheck_alcotest.to_alcotest
