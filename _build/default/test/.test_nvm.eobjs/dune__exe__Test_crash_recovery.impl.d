test/test_crash_recovery.ml: Alcotest Harness Hashtbl Heap Lfds List Nvalloc Nvm Printf Tutil Workload
