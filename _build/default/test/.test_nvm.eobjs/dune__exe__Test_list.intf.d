test/test_list.mli:
