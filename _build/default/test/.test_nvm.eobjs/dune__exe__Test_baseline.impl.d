test/test_baseline.ml: Alcotest Baseline Harness Heap Lfds List Nvm Printf Tutil
