test/test_smoke.ml: Alcotest Baseline Heap Lfds List Nvm
