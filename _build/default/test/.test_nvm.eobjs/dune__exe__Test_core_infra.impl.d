test/test_core_infra.ml: Alcotest Cacheline Heap Lfds Marked_ptr Nvm
