test/test_nvm.ml: Alcotest Cacheline Gen Hashtbl Heap Latency_model List Marked_ptr Nvalloc Nvm Pstats QCheck QCheck_alcotest Region
