test/test_kvcache.ml: Alcotest Harness Kvcache Lfds List Nvm Printf QCheck QCheck_alcotest String Unix
