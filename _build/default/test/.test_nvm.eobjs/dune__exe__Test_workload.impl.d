test/test_workload.ml: Alcotest Array Atomic Domain Harness List Tutil Workload
