test/test_concurrent.ml: Alcotest Atomic Domain Harness Hashtbl Lfds List Nvm Printf Tutil Workload
