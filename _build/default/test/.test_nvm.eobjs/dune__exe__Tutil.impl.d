test/tutil.ml: Harness Hashtbl Lfds List Printf QCheck QCheck_alcotest String
