test/test_core_infra.mli:
