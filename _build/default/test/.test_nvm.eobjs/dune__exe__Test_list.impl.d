test/test_list.ml: Alcotest Harness Heap Lfds List Marked_ptr Nvalloc Nvm Tutil
