test/test_structures.ml: Alcotest Array Harness Heap Lfds List Nvalloc Nvm Printf Tutil
