(* Log-based baselines: WAL protocol, spinlocks, and the four lock-based
   structures (semantics + rollback recovery + model agreement). *)

open Nvm
module I = Harness.Instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_ctx () =
  Lfds.Ctx.create
    { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 19; nthreads = 2 }

(* --- Spinlock --- *)

let test_spinlock_mutual_exclusion () =
  let heap = Heap.create ~size_words:128 () in
  Baseline.Spinlock.acquire heap ~tid:0 16;
  check_bool "held by 0" true (Baseline.Spinlock.holder heap ~tid:1 16 = 0);
  check_bool "try fails while held" false (Baseline.Spinlock.try_acquire heap ~tid:1 16);
  Baseline.Spinlock.release heap ~tid:0 16;
  check_bool "try succeeds after release" true (Baseline.Spinlock.try_acquire heap ~tid:1 16)

let test_spinlock_with_locks_orders_and_dedups () =
  let heap = Heap.create ~size_words:128 () in
  Baseline.Spinlock.with_locks heap ~tid:0 [ 24; 16; 24; 16 ] (fun () ->
      check_bool "both held" true
        (Baseline.Spinlock.holder heap ~tid:0 16 = 0 && Baseline.Spinlock.holder heap ~tid:0 24 = 0));
  check_int "released 16" (-1) (Baseline.Spinlock.holder heap ~tid:0 16);
  check_int "released 24" (-1) (Baseline.Spinlock.holder heap ~tid:0 24)

let test_spinlock_releases_on_exception () =
  let heap = Heap.create ~size_words:128 () in
  (try
     Baseline.Spinlock.with_locks heap ~tid:0 [ 16 ] (fun () -> failwith "boom")
   with Failure _ -> ());
  check_int "released after exception" (-1) (Baseline.Spinlock.holder heap ~tid:0 16)

(* --- WAL --- *)

let test_wal_commit_makes_durable () =
  let ctx = mk_ctx () in
  let wal = Baseline.Wal.create ctx () in
  let heap = Lfds.Ctx.heap ctx in
  let addr = Lfds.Ctx.root_slot ctx 2 in
  Baseline.Wal.begin_op wal ~tid:0;
  Baseline.Wal.logged_store wal ~tid:0 addr 42;
  Baseline.Wal.commit wal ~tid:0;
  check_int "durable after commit" 42 (Heap.durable_load heap addr)

let test_wal_rollback_on_crash_mid_op () =
  let ctx = mk_ctx () in
  let wal = Baseline.Wal.create ctx () in
  let heap = Lfds.Ctx.heap ctx in
  let addr = Lfds.Ctx.root_slot ctx 2 in
  (* Committed base value. *)
  Baseline.Wal.begin_op wal ~tid:0;
  Baseline.Wal.logged_store wal ~tid:0 addr 10;
  Baseline.Wal.commit wal ~tid:0;
  (* Crash mid-operation: stores issued, commit never reached. Adversarial
     eviction (p=1) pushes the in-place stores to NVRAM. *)
  Baseline.Wal.begin_op wal ~tid:0;
  Baseline.Wal.logged_store wal ~tid:0 addr 99;
  Heap.crash heap ~eviction_probability:1.0;
  Baseline.Wal.recover wal;
  check_int "rolled back to committed value" 10 (Heap.load heap ~tid:0 addr)

let test_wal_recover_idempotent () =
  let ctx = mk_ctx () in
  let wal = Baseline.Wal.create ctx () in
  let heap = Lfds.Ctx.heap ctx in
  let addr = Lfds.Ctx.root_slot ctx 2 in
  Baseline.Wal.begin_op wal ~tid:0;
  Baseline.Wal.logged_store wal ~tid:0 addr 7;
  Heap.crash heap ~eviction_probability:1.0;
  Baseline.Wal.recover wal;
  Baseline.Wal.recover wal;
  check_int "double recovery harmless" 0 (Heap.load heap ~tid:0 addr)

let test_wal_multi_entry_reverse_rollback () =
  let ctx = mk_ctx () in
  let wal = Baseline.Wal.create ctx () in
  let heap = Lfds.Ctx.heap ctx in
  let a = Lfds.Ctx.root_slot ctx 2 and b = Lfds.Ctx.root_slot ctx 3 in
  Baseline.Wal.begin_op wal ~tid:0;
  (* Two writes to the same word: rollback must restore the ORIGINAL. *)
  Baseline.Wal.logged_store wal ~tid:0 a 1;
  Baseline.Wal.logged_store wal ~tid:0 a 2;
  Baseline.Wal.logged_store wal ~tid:0 b 3;
  Heap.crash heap ~eviction_probability:1.0;
  Baseline.Wal.recover wal;
  check_int "a restored" 0 (Heap.load heap ~tid:0 a);
  check_int "b restored" 0 (Heap.load heap ~tid:0 b)

let test_wal_eager_syncs_per_entry () =
  let ctx = mk_ctx () in
  let wal = Baseline.Wal.create ctx () in
  let heap = Lfds.Ctx.heap ctx in
  Heap.reset_stats heap;
  Baseline.Wal.begin_op wal ~tid:0;
  Baseline.Wal.logged_store wal ~tid:0 (Lfds.Ctx.root_slot ctx 2) 1;
  Baseline.Wal.logged_store wal ~tid:0 (Lfds.Ctx.root_slot ctx 3) 2;
  Baseline.Wal.commit wal ~tid:0;
  let st = Heap.aggregate_stats heap in
  (* E entries + data batch + truncate = E + 2. *)
  check_int "eager WAL sync count" 4 st.sync_batches

(* --- Log-based structures: semantics and rollback. --- *)

let props =
  List.map
    (fun (structure, sname) ->
      Tutil.model_property
        ~name:(Printf.sprintf "log-%s = model" sname)
        ~structure ~flavor:I.Log ~count:25)
    [ (I.List, "list"); (I.Hash, "hash"); (I.Skiplist, "skiplist"); (I.Bst, "bst") ]

let test_log_structure_crash structure () =
  let inst = Tutil.mk structure I.Log in
  for k = 1 to 120 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  for k = 1 to 120 do
    if k mod 3 = 0 then ignore (inst.ops.remove ~tid:0 ~key:k)
  done;
  let inst, _dt, _freed = I.crash_and_recover ~seed:17 inst in
  for k = 1 to 120 do
    let expected = if k mod 3 = 0 then None else Some k in
    Alcotest.(check (option int)) "completed ops survive" expected
      (inst.ops.search ~tid:0 ~key:k)
  done

let test_log_skiplist_levels () =
  let inst = Tutil.mk I.Skiplist I.Log in
  for k = 1 to 400 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  for k = 1 to 400 do
    Alcotest.(check (option int)) "multi-level search" (Some k)
      (inst.ops.search ~tid:0 ~key:k)
  done;
  for k = 1 to 400 do
    check_bool "multi-level remove" true (inst.ops.remove ~tid:0 ~key:k)
  done;
  check_int "empty" 0 (inst.ops.size ())

let () =
  Alcotest.run "baseline"
    [
      ( "spinlock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_spinlock_mutual_exclusion;
          Alcotest.test_case "ordered+dedup" `Quick
            test_spinlock_with_locks_orders_and_dedups;
          Alcotest.test_case "exception safety" `Quick
            test_spinlock_releases_on_exception;
        ] );
      ( "wal",
        [
          Alcotest.test_case "commit durable" `Quick test_wal_commit_makes_durable;
          Alcotest.test_case "rollback" `Quick test_wal_rollback_on_crash_mid_op;
          Alcotest.test_case "idempotent recovery" `Quick test_wal_recover_idempotent;
          Alcotest.test_case "reverse rollback" `Quick
            test_wal_multi_entry_reverse_rollback;
          Alcotest.test_case "eager sync count" `Quick test_wal_eager_syncs_per_entry;
        ] );
      ( "log-structures",
        [
          Alcotest.test_case "list crash" `Quick (test_log_structure_crash I.List);
          Alcotest.test_case "hash crash" `Quick (test_log_structure_crash I.Hash);
          Alcotest.test_case "skiplist crash" `Quick
            (test_log_structure_crash I.Skiplist);
          Alcotest.test_case "bst crash" `Quick (test_log_structure_crash I.Bst);
          Alcotest.test_case "skiplist levels" `Quick test_log_skiplist_levels;
        ] );
      ("model", List.map Tutil.qt props);
    ]
