(* Durable linked list: semantics, durability discipline, marks, memory
   reclamation and model agreement. *)

open Nvm
module I = Harness.Instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(mode = Lfds.Persist_mode.Link_persist) () =
  let cfg =
    { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 18; mode; nthreads = 2 }
  in
  let ctx = Lfds.Ctx.create cfg in
  let head = Lfds.Durable_list.create ctx ~root:0 in
  (ctx, head, Lfds.Durable_list.ops ctx ~head)

let test_empty () =
  let _, _, ops = mk () in
  check_int "empty size" 0 (ops.size ());
  Alcotest.(check (option int)) "search empty" None (ops.search ~tid:0 ~key:5);
  check_bool "remove empty" false (ops.remove ~tid:0 ~key:5)

let test_insert_search_remove () =
  let _, _, ops = mk () in
  check_bool "insert" true (ops.insert ~tid:0 ~key:5 ~value:50);
  check_bool "insert dup" false (ops.insert ~tid:0 ~key:5 ~value:51);
  Alcotest.(check (option int)) "value kept" (Some 50) (ops.search ~tid:0 ~key:5);
  check_bool "remove" true (ops.remove ~tid:0 ~key:5);
  check_bool "remove again" false (ops.remove ~tid:0 ~key:5);
  Alcotest.(check (option int)) "gone" None (ops.search ~tid:0 ~key:5)

let test_sorted_order () =
  let ctx, head, ops = mk () in
  List.iter
    (fun k -> ignore (ops.insert ~tid:0 ~key:k ~value:k))
    [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (list (pair int int)))
    "in key order"
    [ (1, 1); (3, 3); (5, 5); (7, 7); (9, 9) ]
    (Lfds.Durable_list.to_list ctx ~tid:0 ~head)

let test_boundaries () =
  let _, _, ops = mk () in
  ignore (ops.insert ~tid:0 ~key:Lfds.Set_intf.min_key ~value:1);
  ignore (ops.insert ~tid:0 ~key:Lfds.Set_intf.max_key ~value:2);
  Alcotest.(check (option int)) "min key" (Some 1)
    (ops.search ~tid:0 ~key:Lfds.Set_intf.min_key);
  Alcotest.(check (option int)) "max key" (Some 2)
    (ops.search ~tid:0 ~key:Lfds.Set_intf.max_key)

let test_insert_is_durable () =
  let ctx, head, ops = mk () in
  ignore (ops.insert ~tid:0 ~key:10 ~value:100);
  ignore (ops.insert ~tid:0 ~key:20 ~value:200);
  Heap.crash (Lfds.Ctx.heap ctx) ~eviction_probability:0.0;
  Lfds.Durable_list.recover_consistency ctx ~head;
  Alcotest.(check (option int)) "insert survived p=0 crash" (Some 100)
    (Lfds.Durable_list.search ctx ~tid:0 ~head ~key:10);
  Alcotest.(check (option int)) "both inserts survived" (Some 200)
    (Lfds.Durable_list.search ctx ~tid:0 ~head ~key:20)

let test_remove_is_durable () =
  let ctx, head, ops = mk () in
  ignore (ops.insert ~tid:0 ~key:10 ~value:100);
  ignore (ops.remove ~tid:0 ~key:10);
  Heap.crash (Lfds.Ctx.heap ctx) ~eviction_probability:0.0;
  Lfds.Durable_list.recover_consistency ctx ~head;
  Alcotest.(check (option int)) "remove survived p=0 crash" None
    (Lfds.Durable_list.search ctx ~tid:0 ~head ~key:10)

let test_volatile_mode_no_syncs () =
  let ctx, _, ops = mk ~mode:Lfds.Persist_mode.Volatile () in
  let heap = Lfds.Ctx.heap ctx in
  Heap.reset_stats heap;
  for k = 1 to 50 do
    ignore (ops.insert ~tid:0 ~key:k ~value:k)
  done;
  (* Only NV-epochs (APT misses, generation fences) may sync; the list
     itself must not. *)
  let st = Heap.aggregate_stats heap in
  check_bool "few syncs in volatile mode" true (st.sync_batches <= 10)

let test_mark_helping () =
  (* A reader encountering an unflushed link clears it (helping). *)
  let ctx, head, ops = mk () in
  ignore (ops.insert ~tid:0 ~key:10 ~value:100);
  let heap = Lfds.Ctx.heap ctx in
  (* Manually mark the head link as unflushed, as if an updater died
     mid-link-and-persist. *)
  let v = Heap.load heap ~tid:0 head in
  Heap.store heap ~tid:0 head (Marked_ptr.with_unflushed v);
  Alcotest.(check (option int)) "search helps and answers" (Some 100)
    (ops.search ~tid:0 ~key:10);
  check_bool "mark cleared by helper" false
    (Marked_ptr.is_unflushed (Heap.load heap ~tid:0 head))

let test_reclamation_returns_memory () =
  let ctx, _, ops = mk () in
  let alloc = Lfds.Ctx.allocator ctx in
  for k = 1 to 100 do
    ignore (ops.insert ~tid:0 ~key:k ~value:k)
  done;
  for k = 1 to 100 do
    ignore (ops.remove ~tid:0 ~key:k)
  done;
  Lfds.Nv_epochs.drain (Lfds.Ctx.mem ctx) ~tid:0;
  Lfds.Nv_epochs.drain (Lfds.Ctx.mem ctx) ~tid:1;
  check_int "all nodes returned to the allocator" 0
    (Nvalloc.allocated_count alloc ~tid:0)

let test_allocator_reuse_after_churn () =
  let ctx, _, ops = mk () in
  (* Insert/remove churn on a small key space must not grow memory without
     bound: the allocator never runs out of its fixed heap. *)
  for round = 1 to 50 do
    for k = 1 to 20 do
      ignore (ops.insert ~tid:0 ~key:k ~value:round);
      ignore (ops.remove ~tid:0 ~key:k)
    done
  done;
  check_int "empty at the end" 0 (ops.size ());
  Lfds.Nv_epochs.drain (Lfds.Ctx.mem ctx) ~tid:0;
  check_bool "bounded allocation" true
    (Nvalloc.allocated_count (Lfds.Ctx.allocator ctx) ~tid:0 <= 64)

let test_iter_skips_marked () =
  let ctx, head, ops = mk () in
  ignore (ops.insert ~tid:0 ~key:1 ~value:1);
  ignore (ops.insert ~tid:0 ~key:2 ~value:2);
  ignore (ops.remove ~tid:0 ~key:1);
  check_int "size counts live only" 1 (Lfds.Durable_list.size ctx ~tid:0 ~head)

let test_hash_reuses_list_per_bucket () =
  (* Durable_hash sanity here since it is a thin wrapper over the list. *)
  let cfg = { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 18 } in
  let ctx = Lfds.Ctx.create cfg in
  let t = Lfds.Durable_hash.create ctx ~nbuckets:4 in
  for k = 1 to 64 do
    ignore (Lfds.Durable_hash.insert ctx t ~tid:0 ~key:k ~value:k)
  done;
  check_int "all inserted across buckets" 64 (Lfds.Durable_hash.size ctx t)

(* Model properties in each persist mode. *)
let props =
  [
    Tutil.model_property ~name:"list(volatile) = model" ~structure:I.List
      ~flavor:I.Volatile ~count:40;
    Tutil.model_property ~name:"list(link-persist) = model" ~structure:I.List
      ~flavor:I.Lp ~count:40;
    Tutil.model_property ~name:"list(link-cache) = model" ~structure:I.List
      ~flavor:I.Lc ~count:40;
  ]

let () =
  Alcotest.run "durable-list"
    [
      ( "semantics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/search/remove" `Quick test_insert_search_remove;
          Alcotest.test_case "sorted order" `Quick test_sorted_order;
          Alcotest.test_case "key boundaries" `Quick test_boundaries;
          Alcotest.test_case "iter skips marked" `Quick test_iter_skips_marked;
          Alcotest.test_case "hash-over-list" `Quick test_hash_reuses_list_per_bucket;
        ] );
      ( "durability",
        [
          Alcotest.test_case "insert durable" `Quick test_insert_is_durable;
          Alcotest.test_case "remove durable" `Quick test_remove_is_durable;
          Alcotest.test_case "volatile mode" `Quick test_volatile_mode_no_syncs;
          Alcotest.test_case "mark helping" `Quick test_mark_helping;
        ] );
      ( "memory",
        [
          Alcotest.test_case "reclamation" `Quick test_reclamation_returns_memory;
          Alcotest.test_case "bounded churn" `Quick test_allocator_reuse_after_churn;
        ] );
      ("model", List.map Tutil.qt props);
    ]
