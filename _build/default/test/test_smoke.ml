(* End-to-end smoke tests: every structure under inserts/removes in all three
   persist modes, plus a crash/recovery round trip. Fast and loud; detailed
   suites live in the per-module test files. *)

open Nvm

let cfg mode =
  { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 18; mode; nthreads = 2 }

type maker = {
  label : string;
  build : Lfds.Ctx.t -> Lfds.Set_intf.ops;
  rebuild : Lfds.Ctx.t -> Lfds.Set_intf.ops;  (* attach + recover_consistency *)
}

let list_maker =
  {
    label = "list";
    build =
      (fun ctx ->
        let head = Lfds.Durable_list.create ctx ~root:0 in
        Lfds.Durable_list.ops ctx ~head);
    rebuild =
      (fun ctx ->
        let head = Lfds.Durable_list.attach ctx ~root:0 in
        Lfds.Durable_list.recover_consistency ctx ~head;
        Lfds.Durable_list.ops ctx ~head);
  }

let hash_maker =
  {
    label = "hash";
    build =
      (fun ctx ->
        let t = Lfds.Durable_hash.create ctx ~nbuckets:16 in
        Lfds.Durable_hash.ops ctx t);
    rebuild =
      (fun ctx ->
        let t = Lfds.Durable_hash.attach ctx ~nbuckets:16 in
        Lfds.Durable_hash.recover_consistency ctx t;
        Lfds.Durable_hash.ops ctx t);
  }

let skiplist_maker =
  {
    label = "skiplist";
    build =
      (fun ctx ->
        let t = Lfds.Durable_skiplist.create ctx ~max_level:8 () in
        Lfds.Durable_skiplist.ops ctx t);
    rebuild =
      (fun ctx ->
        let t = Lfds.Durable_skiplist.attach ctx ~max_level:8 () in
        Lfds.Durable_skiplist.recover_consistency ctx t;
        Lfds.Durable_skiplist.ops ctx t);
  }

let smoke m mode () =
  let ctx = Lfds.Ctx.create (cfg mode) in
  let ops = m.build ctx in
  let tid = 0 in
  for k = 1 to 100 do
    Alcotest.(check bool) "insert fresh" true (ops.insert ~tid ~key:k ~value:(k * 10))
  done;
  Alcotest.(check bool) "insert dup" false (ops.insert ~tid ~key:50 ~value:1);
  Alcotest.(check int) "size" 100 (ops.size ());
  for k = 1 to 100 do
    if k mod 2 = 0 then
      Alcotest.(check bool) "remove" true (ops.remove ~tid ~key:k)
  done;
  Alcotest.(check bool) "remove absent" false (ops.remove ~tid ~key:2);
  Alcotest.(check int) "size after removes" 50 (ops.size ());
  Alcotest.(check (option int)) "search hit" (Some 510) (ops.search ~tid ~key:51);
  Alcotest.(check (option int)) "search miss" None (ops.search ~tid ~key:52)

let sorted_pairs ops =
  let acc = ref [] in
  for k = 1 to 200 do
    match ops.Lfds.Set_intf.search ~tid:0 ~key:k with
    | Some v -> acc := (k, v) :: !acc
    | None -> ()
  done;
  List.rev !acc

let smoke_crash_recover m () =
  let c = cfg Lfds.Persist_mode.Link_persist in
  let ctx = Lfds.Ctx.create c in
  let ops = m.build ctx in
  let tid = 0 in
  for k = 1 to 64 do
    ignore (ops.insert ~tid ~key:k ~value:k)
  done;
  for k = 1 to 64 do
    if k mod 4 = 0 then ignore (ops.remove ~tid ~key:k)
  done;
  let expected = sorted_pairs ops in
  let heap = Lfds.Ctx.heap ctx in
  Heap.crash heap ~seed:42 ~eviction_probability:0.3;
  let ctx', _active = Lfds.Ctx.recover heap c in
  let ops' = m.rebuild ctx' in
  Alcotest.(check (list (pair int int)))
    "all completed ops survive" expected (sorted_pairs ops')

let cases m =
  ( m.label,
    [
      Alcotest.test_case "volatile" `Quick (smoke m Lfds.Persist_mode.Volatile);
      Alcotest.test_case "link-persist" `Quick (smoke m Lfds.Persist_mode.Link_persist);
      Alcotest.test_case "link-cache" `Quick (smoke m Lfds.Persist_mode.Link_cache);
      Alcotest.test_case "crash+recover" `Quick (smoke_crash_recover m);
    ] )

let bst_maker =
  {
    label = "bst";
    build =
      (fun ctx ->
        let t = Lfds.Durable_bst.create ctx in
        Lfds.Durable_bst.ops ctx t);
    rebuild =
      (fun ctx ->
        let t = Lfds.Durable_bst.attach ctx in
        Lfds.Durable_bst.recover_consistency ctx t;
        Lfds.Durable_bst.ops ctx t);
  }

(* Log-based baselines: same smoke, with the WAL carved first and rolled back
   on recovery. *)

let log_list_maker =
  {
    label = "log-list";
    build =
      (fun ctx ->
        let wal = Baseline.Wal.create ctx () in
        let head = Baseline.Log_list.create ctx in
        Baseline.Log_list.ops ctx wal ~head);
    rebuild =
      (fun ctx ->
        let wal = Baseline.Wal.attach ctx () in
        let head = Baseline.Log_list.attach ctx in
        Baseline.Wal.recover wal;
        Baseline.Log_list.recover_consistency ctx ~head;
        Baseline.Log_list.ops ctx wal ~head);
  }

let log_hash_maker =
  {
    label = "log-hash";
    build =
      (fun ctx ->
        let wal = Baseline.Wal.create ctx () in
        let t = Baseline.Log_hash.create ctx ~nbuckets:16 in
        Baseline.Log_hash.ops ctx wal t);
    rebuild =
      (fun ctx ->
        let wal = Baseline.Wal.attach ctx () in
        let t = Baseline.Log_hash.attach ctx ~nbuckets:16 in
        Baseline.Wal.recover wal;
        Baseline.Log_hash.recover_consistency ctx t;
        Baseline.Log_hash.ops ctx wal t);
  }

let log_skiplist_maker =
  {
    label = "log-skiplist";
    build =
      (fun ctx ->
        let wal = Baseline.Wal.create ctx () in
        let t = Baseline.Log_skiplist.create ctx ~max_level:8 () in
        Baseline.Log_skiplist.ops ctx wal t);
    rebuild =
      (fun ctx ->
        let wal = Baseline.Wal.attach ctx () in
        let t = Baseline.Log_skiplist.attach ctx ~max_level:8 () in
        Baseline.Wal.recover wal;
        Baseline.Log_skiplist.recover_consistency ctx t;
        Baseline.Log_skiplist.ops ctx wal t);
  }

let log_bst_maker =
  {
    label = "log-bst";
    build =
      (fun ctx ->
        let wal = Baseline.Wal.create ctx () in
        let t = Baseline.Log_bst.create ctx in
        Baseline.Log_bst.ops ctx wal t);
    rebuild =
      (fun ctx ->
        let wal = Baseline.Wal.attach ctx () in
        let t = Baseline.Log_bst.attach ctx in
        Baseline.Wal.recover wal;
        Baseline.Log_bst.recover_consistency ctx t;
        Baseline.Log_bst.ops ctx wal t);
  }

let log_cases m =
  ( m.label,
    [
      Alcotest.test_case "ops" `Quick (smoke m Lfds.Persist_mode.Link_persist);
      Alcotest.test_case "crash+recover" `Quick (smoke_crash_recover m);
    ] )

let () =
  Alcotest.run "smoke"
    [
      cases list_maker;
      cases hash_maker;
      cases skiplist_maker;
      cases bst_maker;
      log_cases log_list_maker;
      log_cases log_hash_maker;
      log_cases log_skiplist_maker;
      log_cases log_bst_maker;
    ]
