(* Skip list, BST and hash table: structure-specific semantics, recovery
   normalization, and model agreement in every persist mode. *)

open Nvm
module I = Harness.Instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_ctx ?(mode = Lfds.Persist_mode.Link_persist) () =
  Lfds.Ctx.create
    { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 19; mode; nthreads = 2 }

(* --- Skip list --- *)

let mk_sl ?mode () =
  let ctx = mk_ctx ?mode () in
  let t = Lfds.Durable_skiplist.create ctx ~max_level:8 () in
  (ctx, t, Lfds.Durable_skiplist.ops ctx t)

let test_sl_basic () =
  let _, _, ops = mk_sl () in
  check_bool "insert" true (ops.insert ~tid:0 ~key:5 ~value:50);
  check_bool "dup" false (ops.insert ~tid:0 ~key:5 ~value:51);
  Alcotest.(check (option int)) "find" (Some 50) (ops.search ~tid:0 ~key:5);
  check_bool "remove" true (ops.remove ~tid:0 ~key:5);
  Alcotest.(check (option int)) "gone" None (ops.search ~tid:0 ~key:5);
  check_bool "remove absent" false (ops.remove ~tid:0 ~key:5)

let test_sl_many_sorted () =
  let ctx, t, ops = mk_sl () in
  let keys = List.init 500 (fun i -> ((i * 37) mod 997) + 1) in
  let uniq = List.sort_uniq compare keys in
  List.iter (fun k -> ignore (ops.insert ~tid:0 ~key:k ~value:k)) keys;
  check_int "all unique inserted" (List.length uniq) (ops.size ());
  Alcotest.(check (list int))
    "level-0 order is sorted" uniq
    (List.map fst (Lfds.Durable_skiplist.to_list ctx ~tid:0 t))

let test_sl_tower_integrity () =
  (* After heavy churn, every key reachable at level 0 must be found by the
     indexed search too. *)
  let _, _, ops = mk_sl () in
  for k = 1 to 300 do
    ignore (ops.insert ~tid:0 ~key:k ~value:k)
  done;
  for k = 1 to 300 do
    if k mod 3 = 0 then ignore (ops.remove ~tid:0 ~key:k)
  done;
  for k = 1 to 300 do
    let expected = if k mod 3 = 0 then None else Some k in
    Alcotest.(check (option int)) "indexed search agrees" expected
      (ops.search ~tid:0 ~key:k)
  done

let test_sl_rebuild_after_crash () =
  let c = { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 19 } in
  let ctx = Lfds.Ctx.create c in
  let t = Lfds.Durable_skiplist.create ctx ~max_level:8 () in
  let ops = Lfds.Durable_skiplist.ops ctx t in
  for k = 1 to 200 do
    ignore (ops.insert ~tid:0 ~key:k ~value:(k * 2))
  done;
  Heap.crash (Lfds.Ctx.heap ctx) ~eviction_probability:0.3 ~seed:3;
  let ctx', _ = Lfds.Ctx.recover (Lfds.Ctx.heap ctx) c in
  let t' = Lfds.Durable_skiplist.attach ctx' ~max_level:8 () in
  Lfds.Durable_skiplist.recover_consistency ctx' t';
  let ops' = Lfds.Durable_skiplist.ops ctx' t' in
  for k = 1 to 200 do
    Alcotest.(check (option int)) "key survives with rebuilt towers"
      (Some (k * 2)) (ops'.search ~tid:0 ~key:k)
  done

(* --- BST --- *)

let mk_bst ?mode () =
  let ctx = mk_ctx ?mode () in
  let t = Lfds.Durable_bst.create ctx in
  (ctx, t, Lfds.Durable_bst.ops ctx t)

let test_bst_basic () =
  let _, _, ops = mk_bst () in
  check_bool "insert" true (ops.insert ~tid:0 ~key:5 ~value:50);
  check_bool "dup" false (ops.insert ~tid:0 ~key:5 ~value:51);
  Alcotest.(check (option int)) "find" (Some 50) (ops.search ~tid:0 ~key:5);
  check_bool "remove" true (ops.remove ~tid:0 ~key:5);
  Alcotest.(check (option int)) "gone" None (ops.search ~tid:0 ~key:5);
  check_bool "remove absent" false (ops.remove ~tid:0 ~key:5)

let test_bst_shapes () =
  (* Ascending, descending and zig-zag insertion orders all work (external
     tree shape does not depend on balance for correctness). *)
  List.iter
    (fun order ->
      let _, _, ops = mk_bst () in
      List.iter (fun k -> ignore (ops.insert ~tid:0 ~key:k ~value:k)) order;
      check_int "all present" (List.length order) (ops.size ());
      List.iter
        (fun k ->
          Alcotest.(check (option int)) "findable" (Some k) (ops.search ~tid:0 ~key:k))
        order)
    [
      [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      [ 8; 7; 6; 5; 4; 3; 2; 1 ];
      [ 4; 8; 2; 6; 1; 5; 3; 7 ];
    ]

let test_bst_remove_root_region () =
  let _, _, ops = mk_bst () in
  List.iter (fun k -> ignore (ops.insert ~tid:0 ~key:k ~value:k)) [ 4; 2; 6 ];
  check_bool "remove first-inserted" true (ops.remove ~tid:0 ~key:4);
  Alcotest.(check (option int)) "others intact" (Some 2) (ops.search ~tid:0 ~key:2);
  Alcotest.(check (option int)) "others intact (2)" (Some 6) (ops.search ~tid:0 ~key:6);
  check_int "size" 2 (ops.size ())

let test_bst_remove_to_empty () =
  let _, _, ops = mk_bst () in
  List.iter (fun k -> ignore (ops.insert ~tid:0 ~key:k ~value:k)) [ 3; 1; 2 ];
  List.iter (fun k -> check_bool "removed" true (ops.remove ~tid:0 ~key:k)) [ 2; 3; 1 ];
  check_int "empty" 0 (ops.size ());
  (* And usable again. *)
  check_bool "reinsert" true (ops.insert ~tid:0 ~key:9 ~value:9);
  Alcotest.(check (option int)) "found" (Some 9) (ops.search ~tid:0 ~key:9)

let test_bst_internal_nodes_reclaimed () =
  let ctx, _, ops = mk_bst () in
  for k = 1 to 100 do
    ignore (ops.insert ~tid:0 ~key:k ~value:k)
  done;
  for k = 1 to 100 do
    ignore (ops.remove ~tid:0 ~key:k)
  done;
  Lfds.Nv_epochs.drain (Lfds.Ctx.mem ctx) ~tid:0;
  Lfds.Nv_epochs.drain (Lfds.Ctx.mem ctx) ~tid:1;
  check_int "leaves and internals all freed" 0
    (Nvalloc.allocated_count (Lfds.Ctx.allocator ctx) ~tid:0)

let test_bst_crash_normalization () =
  let c = { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 19 } in
  let ctx = Lfds.Ctx.create c in
  let t = Lfds.Durable_bst.create ctx in
  let ops = Lfds.Durable_bst.ops ctx t in
  for k = 1 to 100 do
    ignore (ops.insert ~tid:0 ~key:k ~value:k)
  done;
  for k = 1 to 100 do
    if k mod 2 = 0 then ignore (ops.remove ~tid:0 ~key:k)
  done;
  Heap.crash (Lfds.Ctx.heap ctx) ~eviction_probability:0.4 ~seed:11;
  let ctx', _ = Lfds.Ctx.recover (Lfds.Ctx.heap ctx) c in
  let t' = Lfds.Durable_bst.attach ctx' in
  Lfds.Durable_bst.recover_consistency ctx' t';
  let ops' = Lfds.Durable_bst.ops ctx' t' in
  for k = 1 to 100 do
    let expected = if k mod 2 = 0 then None else Some k in
    Alcotest.(check (option int)) "completed ops survive" expected
      (ops'.search ~tid:0 ~key:k)
  done

(* --- Hash table --- *)

let test_hash_bucket_distribution () =
  let ctx = mk_ctx () in
  let t = Lfds.Durable_hash.create ctx ~nbuckets:64 in
  for k = 1 to 512 do
    ignore (Lfds.Durable_hash.insert ctx t ~tid:0 ~key:k ~value:k)
  done;
  check_int "all in" 512 (Lfds.Durable_hash.size ctx t);
  (* No bucket holds a wildly disproportionate share. *)
  let counts = Array.make 64 0 in
  Lfds.Durable_hash.iter_nodes ctx t (fun node ~deleted ->
      ignore node;
      if not deleted then begin
        let k = Heap.load (Lfds.Ctx.heap ctx) ~tid:0 node in
        let b = (Lfds.Durable_hash.bucket_link t k - t.Lfds.Durable_hash.base) in
        counts.(b) <- counts.(b) + 1
      end);
  Array.iter (fun c -> check_bool "no pathological bucket" true (c < 64)) counts

let test_hash_collisions_within_bucket () =
  let ctx = mk_ctx () in
  let t = Lfds.Durable_hash.create ctx ~nbuckets:1 in
  (* Single bucket: the table degenerates to one list and must still work. *)
  for k = 1 to 100 do
    ignore (Lfds.Durable_hash.insert ctx t ~tid:0 ~key:k ~value:(k * 7))
  done;
  for k = 1 to 100 do
    Alcotest.(check (option int)) "all found" (Some (k * 7))
      (Lfds.Durable_hash.search ctx t ~tid:0 ~key:k)
  done

(* --- Model properties: every structure, every persist mode. --- *)

let props =
  List.concat_map
    (fun (structure, sname) ->
      List.map
        (fun (flavor, fname) ->
          Tutil.model_property
            ~name:(Printf.sprintf "%s(%s) = model" sname fname)
            ~structure ~flavor ~count:25)
        [ (I.Volatile, "volatile"); (I.Lp, "lp"); (I.Lc, "lc") ])
    [ (I.Hash, "hash"); (I.Skiplist, "skiplist"); (I.Bst, "bst") ]

let () =
  Alcotest.run "structures"
    [
      ( "skiplist",
        [
          Alcotest.test_case "basic" `Quick test_sl_basic;
          Alcotest.test_case "sorted bulk" `Quick test_sl_many_sorted;
          Alcotest.test_case "tower integrity" `Quick test_sl_tower_integrity;
          Alcotest.test_case "crash rebuild" `Quick test_sl_rebuild_after_crash;
        ] );
      ( "bst",
        [
          Alcotest.test_case "basic" `Quick test_bst_basic;
          Alcotest.test_case "shapes" `Quick test_bst_shapes;
          Alcotest.test_case "remove root region" `Quick test_bst_remove_root_region;
          Alcotest.test_case "remove to empty" `Quick test_bst_remove_to_empty;
          Alcotest.test_case "interior reclamation" `Quick
            test_bst_internal_nodes_reclaimed;
          Alcotest.test_case "crash normalization" `Quick test_bst_crash_normalization;
        ] );
      ( "hash",
        [
          Alcotest.test_case "distribution" `Quick test_hash_bucket_distribution;
          Alcotest.test_case "single bucket" `Quick test_hash_collisions_within_bucket;
        ] );
      ("model", List.map Tutil.qt props);
    ]
