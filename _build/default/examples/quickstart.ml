(* Quickstart: a durable hash table that survives a power failure.

   Build and run:  dune exec examples/quickstart.exe

   Walks through the library's core loop: create a simulated persistent
   heap, build a log-free durable hash table on it, do some work, pull the
   plug, and recover — all completed operations are still there, and the
   allocated-but-unlinked garbage a crash can leave behind is swept away. *)

let () =
  (* 1. A context owns the simulated NVRAM heap, the persist mode and the
        NV-epochs memory manager. Link_cache is the paper's full design:
        link-and-persist plus batched write-backs. *)
  let cfg =
    {
      (Lfds.Ctx.default_config ()) with
      size_words = 1 lsl 20;
      nthreads = 1;
      mode = Lfds.Persist_mode.Link_cache;
      latency = Nvm.Latency_model.default ();
    }
  in
  let ctx = Lfds.Ctx.create cfg in

  (* 2. A durable hash table; [ops] is the uniform set interface. *)
  let table = Lfds.Durable_hash.create ctx ~nbuckets:256 in
  let set = Lfds.Durable_hash.ops ctx table in

  Printf.printf "inserting 1000 keys...\n";
  for k = 1 to 1000 do
    ignore (set.insert ~tid:0 ~key:k ~value:(k * k))
  done;
  for k = 1 to 1000 do
    if k mod 3 = 0 then ignore (set.remove ~tid:0 ~key:k)
  done;
  Printf.printf "size before crash: %d\n" (set.size ());
  Printf.printf "search 25 -> %s\n"
    (match set.search ~tid:0 ~key:25 with
    | Some v -> string_of_int v
    | None -> "absent");

  (* 3. In link-cache mode, recent link updates may still be parked in the
        volatile cache (batched durability, section 4): operations whose
        links are still parked are not yet durably committed. Flushing the
        cache is the durability checkpoint; after it, everything above is
        guaranteed to survive. *)
  (match Lfds.Ctx.link_cache ctx with
  | Some lc -> Lfds.Link_cache.flush_all lc ~tid:0
  | None -> ());
  let size_before = set.size () in

  (* 4. Power failure: every cache line that was not synced may or may not
        have reached NVRAM (the simulator flips a coin per dirty line). *)
  Printf.printf "\n*** power failure ***\n\n";
  Nvm.Heap.crash (Lfds.Ctx.heap ctx) ~seed:7 ~eviction_probability:0.5;

  (* 5. Recovery: re-attach the layout, restore list consistency in each
        bucket, and sweep the pages that were active at the crash for
        allocated-but-unreachable nodes (NV-epochs, section 5.5). *)
  let ctx', active_pages = Lfds.Ctx.recover (Lfds.Ctx.heap ctx) cfg in
  let table' = Lfds.Durable_hash.attach ctx' ~nbuckets:256 in
  Lfds.Durable_hash.recover_consistency ctx' table';
  let iter f =
    Lfds.Durable_hash.iter_nodes ctx' table' (fun node ~deleted:_ -> f node)
  in
  let freed = Lfds.Recovery.sweep_traversal ctx' ~active_pages ~iter in
  let set' = Lfds.Durable_hash.ops ctx' table' in

  Printf.printf "recovered size: %d (leaked nodes swept: %d)\n" (set'.size ()) freed;
  Printf.printf "search 25 -> %s\n"
    (match set'.search ~tid:0 ~key:25 with
    | Some v -> string_of_int v
    | None -> "absent");
  Printf.printf "search 27 (removed before crash) -> %s\n"
    (match set'.search ~tid:0 ~key:27 with
    | Some v -> string_of_int v
    | None -> "absent");
  assert (set'.search ~tid:0 ~key:25 = Some 625);
  assert (set'.search ~tid:0 ~key:27 = None);
  assert (set'.size () = size_before);
  Printf.printf "\nall completed operations survived the crash.\n"
