(* A durable key-value store with concurrent writers.

   Build and run:  dune exec examples/kv_store.exe

   The scenario the paper's introduction motivates: an index that must
   absorb a high update rate from several threads, survive power failures,
   and come back in milliseconds. Here: four domains hammer a durable
   skip list (link-cache mode), the machine crashes mid-run, and we verify
   durable linearizability — a consistent state containing every operation
   that completed a durability point — then keep working on the recovered
   structure. *)

module I = Harness.Instance

let nthreads = 4
let per_thread_keys = 2000

let () =
  let inst =
    I.create ~nthreads ~size_hint:(nthreads * per_thread_keys)
      ~latency:(Nvm.Latency_model.default ()) ~structure:I.Skiplist ~flavor:I.Lc ()
  in
  Printf.printf "4 domains inserting %d keys each into a durable skip list...\n"
    per_thread_keys;
  let worker tid () =
    (* Disjoint key ranges so we can verify exactly what must survive. *)
    let base = tid * per_thread_keys in
    for i = 1 to per_thread_keys do
      ignore (inst.ops.insert ~tid ~key:(base + i) ~value:tid)
    done;
    (* Delete every fourth key again. *)
    for i = 1 to per_thread_keys do
      if i mod 4 = 0 then ignore (inst.ops.remove ~tid ~key:(base + i))
    done
  in
  let domains = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join domains;
  Printf.printf "size before crash: %d\n" (inst.ops.size ());

  (* Make the link cache's parked write-backs durable, then pull the plug.
     (Without the explicit flush, operations whose links were still parked
     in the volatile link cache may be lost — buffered durability, sec. 4.) *)
  (match Lfds.Ctx.link_cache inst.ctx with
  | Some lc -> Lfds.Link_cache.flush_all lc ~tid:0
  | None -> ());
  Printf.printf "*** power failure ***\n";
  let inst, dt, freed = I.crash_and_recover ~seed:99 inst in
  Printf.printf "recovered in %.2f ms (%d leaked nodes swept)\n" (dt *. 1000.) freed;

  (* Every completed operation must be reflected. *)
  let errors = ref 0 in
  for tid = 0 to nthreads - 1 do
    let base = tid * per_thread_keys in
    for i = 1 to per_thread_keys do
      let expect_present = i mod 4 <> 0 in
      let present = inst.ops.search ~tid:0 ~key:(base + i) <> None in
      if present <> expect_present then incr errors
    done
  done;
  Printf.printf "verified %d keys: %d violations\n"
    (nthreads * per_thread_keys) !errors;
  assert (!errors = 0);

  (* The recovered store is fully operational. *)
  ignore (inst.ops.insert ~tid:0 ~key:1_000_000 ~value:42);
  assert (inst.ops.search ~tid:0 ~key:1_000_000 = Some 42);
  Printf.printf "post-recovery writes work; final size: %d\n" (inst.ops.size ())
