(* Recovery drill: crash at *random instruction boundaries*, repeatedly.

   Build and run:  dune exec examples/recovery_drill.exe

   The hard part of durable data structures is not the happy path; it is
   the state NVRAM is left in when the power dies between two stores. The
   simulated heap can arm a "trip wire" that aborts an operation after a
   chosen number of primitive accesses — exposing every intermediate state.
   This drill runs hundreds of crash-recover-verify rounds at random trip
   points against a model of the completed operations, on every structure. *)

module I = Harness.Instance

let rounds = 60
let ops_per_round = 40

let drill structure =
  let inst =
    I.create ~nthreads:1 ~size_hint:256 ~structure ~flavor:I.Lp ()
  in
  let model = Hashtbl.create 64 in
  let rng = Workload.Xoshiro.make ~seed:(Hashtbl.hash (I.structure_name structure)) in
  let crashes = ref 0 in
  let inst = ref inst in
  for round = 1 to rounds do
    let heap = Lfds.Ctx.heap !inst.ctx in
    (* Arm the trip wire somewhere inside the round's work. *)
    Nvm.Heap.set_trip heap (Workload.Xoshiro.in_range rng ~lo:1 ~hi:2000);
    (try
       for _ = 1 to ops_per_round do
         let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:512 in
         if Workload.Xoshiro.chance rng ~num:1 ~den:2 then begin
           let changed = !inst.ops.insert ~tid:0 ~key ~value:key in
           if changed then Hashtbl.replace model key key
         end
         else begin
           let changed = !inst.ops.remove ~tid:0 ~key in
           if changed then Hashtbl.remove model key
         end
       done;
       Nvm.Heap.disarm_trip heap
     with Nvm.Heap.Crashed ->
       (* Power died mid-operation. The interrupted operation never returned,
          so durable linearizability allows it either way; every operation
          that DID return must survive. *)
       incr crashes;
       let recovered, _dt, _freed =
         I.crash_and_recover ~seed:round ~eviction_probability:0.5 !inst
       in
       inst := recovered;
       (* Verify the recovered state against the model, modulo the single
          in-flight operation (at most one key may differ). *)
       let diffs = ref [] in
       for key = 1 to 512 do
         let in_model = Hashtbl.mem model key in
         let in_set = !inst.ops.search ~tid:0 ~key <> None in
         if in_model <> in_set then diffs := key :: !diffs
       done;
       (match !diffs with
       | [] -> ()
       | [ key ] ->
           (* The in-flight op's key: adopt the durable outcome. *)
           if !inst.ops.search ~tid:0 ~key <> None then
             Hashtbl.replace model key key
           else Hashtbl.remove model key
       | keys ->
           Printf.printf "  round %d: %d divergent keys - BUG\n" round
             (List.length keys);
           exit 1));
  done;
  Printf.printf "%-12s %d rounds, %d mid-operation crashes, 0 violations\n"
    (I.structure_name structure) rounds !crashes

let () =
  Printf.printf "crash-at-random-point drill (durable linearizability check)\n\n";
  List.iter drill [ I.List; I.Hash; I.Skiplist; I.Bst ];
  Printf.printf "\nall structures recovered consistently from every crash.\n"
