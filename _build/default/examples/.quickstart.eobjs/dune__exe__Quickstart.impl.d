examples/quickstart.ml: Lfds Nvm Printf
