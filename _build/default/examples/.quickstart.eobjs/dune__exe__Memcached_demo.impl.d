examples/memcached_demo.ml: Kvcache Lfds List Nvm Printf String Unix
