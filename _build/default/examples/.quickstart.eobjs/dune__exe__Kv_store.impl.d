examples/kv_store.ml: Domain Harness Lfds List Nvm Printf
