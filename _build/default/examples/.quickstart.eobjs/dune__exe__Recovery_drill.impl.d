examples/recovery_drill.ml: Harness Hashtbl Lfds List Nvm Printf Workload
