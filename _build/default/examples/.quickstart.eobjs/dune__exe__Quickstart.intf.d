examples/quickstart.mli:
