examples/memcached_demo.mli:
