(* NV-Memcached: restart without the cold-cache penalty.

   Build and run:  dune exec examples/memcached_demo.exe

   Populates an NV-Memcached instance (durable hash table + durable slabs),
   kills the power, and recovers. A volatile cache would come back empty and
   pay the full warm-up again; NV-Memcached is serving its whole working set
   after a millisecond-scale sweep — the Figure 11 story, live. *)

let nkeys = 5000

let () =
  let cfg =
    {
      (Lfds.Ctx.default_config ()) with
      size_words = Nvm.Cacheline.align_up ((nkeys * 64) + (1 lsl 19));
      nthreads = 2;
      mode = Lfds.Persist_mode.Link_persist;
      latency = Nvm.Latency_model.default ();
      apt_entries = 8192;
      static_words = Nvm.Cacheline.align_up ((2 * nkeys) + 4096);
    }
  in
  let ctx = Lfds.Ctx.create cfg in
  let nbuckets = nkeys / 2 in
  let cache = Kvcache.Nv_memcached.create ctx ~nbuckets ~capacity:(2 * nkeys) in
  let ops = Kvcache.Nv_memcached.ops cache in

  let warm = Kvcache.Memtier.warmup ops ~nkeys in
  Printf.printf "warm-up: stored %d items in %.1f ms\n" (ops.count ())
    (warm *. 1000.);

  (* Serve some traffic. *)
  let hits = ref 0 in
  for n = 0 to 999 do
    if ops.get ~tid:0 ~key:(Kvcache.Memtier.key_string n) <> None then incr hits
  done;
  Printf.printf "1000 gets over the key range: %d hits\n" !hits;
  ops.set ~tid:0 ~key:"session:alice" ~value:"logged-in";
  ignore (ops.delete ~tid:0 ~key:(Kvcache.Memtier.key_string 3));

  Printf.printf "\n*** power failure ***\n\n";
  Nvm.Heap.crash (Lfds.Ctx.heap ctx) ~seed:5 ~eviction_probability:0.5;

  let t0 = Unix.gettimeofday () in
  let ctx', active = Lfds.Ctx.recover (Lfds.Ctx.heap ctx) cfg in
  let recovered =
    Kvcache.Nv_memcached.recover ctx' ~nbuckets ~capacity:(2 * nkeys)
      ~active_pages:active
  in
  let dt = Unix.gettimeofday () -. t0 in
  let rops = Kvcache.Nv_memcached.ops recovered in
  Printf.printf "recovery: %d items back online in %.2f ms (vs %.1f ms warm-up)\n"
    (rops.count ()) (dt *. 1000.) (warm *. 1000.);

  assert (rops.get ~tid:0 ~key:"session:alice" = Some "logged-in");
  assert (rops.get ~tid:0 ~key:(Kvcache.Memtier.key_string 3) = None);
  Printf.printf "session key survived; deleted key stayed deleted.\n";

  (* Still a fully functional cache. *)
  rops.set ~tid:0 ~key:"post-crash" ~value:"works";
  assert (rops.get ~tid:0 ~key:"post-crash" = Some "works");
  Printf.printf "post-recovery sets and gets work.\n\n";

  (* And it still speaks the memcached text protocol. *)
  let proto = Kvcache.Protocol.create rops in
  List.iter
    (fun req ->
      Printf.printf "> %s\n%s" (String.escaped req)
        (Kvcache.Protocol.handle proto ~tid:0 req))
    [
      "set visits 0 0 1\r\n0\r\n";
      "incr visits 41";
      "incr visits 1";
      "get visits";
    ]
