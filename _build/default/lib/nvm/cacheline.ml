(** Cache-line geometry of the simulated machine.

    The simulated persistent heap is an array of 64-bit words. Durability is
    tracked at cache-line granularity, exactly as on real hardware: a
    [clwb]-style write-back always transfers a whole 64-byte line. *)

(** Number of 64-bit words per cache line (64 bytes). *)
let words_per_line = 8

(** [log2 words_per_line], used to turn word addresses into line indices. *)
let line_shift = 3

(** Line index containing word address [addr]. *)
let line_of_addr addr = addr lsr line_shift

(** First word address of line [line]. *)
let addr_of_line line = line lsl line_shift

(** Word address of the start of the line containing [addr]. *)
let align_down addr = addr land lnot (words_per_line - 1)

(** Smallest line-aligned address [>= addr]. *)
let align_up addr = (addr + words_per_line - 1) land lnot (words_per_line - 1)

(** Whether [addr] is the first word of a cache line. *)
let is_aligned addr = addr land (words_per_line - 1) = 0
