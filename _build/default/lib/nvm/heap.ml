(** Simulated persistent memory.

    The heap is a flat array of 64-bit words with two images:

    - the {e volatile} image — what loads, stores and CAS observe. It stands
      for the CPU caches plus the memory as seen through them;
    - the {e durable} image — what survives a crash. It stands for the bytes
      physically resident in NVRAM.

    A store only touches the volatile image and marks its cache line dirty.
    Data moves to the durable image when

    - the program issues a write-back ([write_back], the [clwb] analogue)
      followed by a [fence] (the [sfence] analogue) — the guaranteed path; or
    - the simulated cache {e evicts} the line: at crash time every dirty line
      is independently written back with probability [eviction_probability],
      modelling the fact that programs do not control eviction order.

    [fence] drains the calling domain's pending write-backs and charges the
    NVRAM write latency {e once per batch} (section 6.1 of the paper: several
    outstanding [clwb]s complete in parallel).

    Crash injection for tests: [set_trip] arms a countdown decremented by
    every primitive; when it reaches zero the primitive raises [Crashed],
    aborting the operation mid-flight. [crash] then produces the post-restart
    state. This exposes every intermediate state an algorithm can leave in
    NVRAM, which is exactly what durable linearizability quantifies over. *)

exception Crashed

(** Which write-back instruction the program uses (section 2 of the paper):
    [Clwb] writes back without invalidating and batches under one fence;
    [Clflushopt] also batches but invalidates the line (the next load pays
    an NVRAM read); [Clflush] additionally serializes — every write-back
    completes immediately, alone. *)
type wb_instruction = Clwb | Clflushopt | Clflush

type t = {
  size_words : int;
  volatile : int Atomic.t array;
  durable : int array;
  dirty : Bytes.t;  (** one byte per cache line; 0 = clean *)
  pending : int array array;  (** per-tid buffer of lines awaiting fence *)
  pending_n : int array;  (** per-tid count of valid entries in [pending] *)
  latency : Latency_model.t;
  stats : Pstats.registry;
  mutable trip : int;  (** crash-injection countdown; -1 = disarmed *)
  invalid : Bytes.t;  (** lines invalidated by clflush/clflushopt *)
  mutable wb_instruction : wb_instruction;
}

let max_pending = 4096

let create ?(latency = Latency_model.no_injection ()) ~size_words () =
  if size_words <= 0 then invalid_arg "Heap.create: size";
  let lines = Cacheline.line_of_addr (size_words - 1) + 1 in
  {
    size_words;
    volatile = Array.init size_words (fun _ -> Atomic.make 0);
    durable = Array.make size_words 0;
    dirty = Bytes.make lines '\000';
    pending = Array.init Pstats.max_threads (fun _ -> Array.make max_pending 0);
    pending_n = Array.make Pstats.max_threads 0;
    latency;
    stats = Pstats.make_registry ();
    trip = -1;
    invalid = Bytes.make lines '\000';
    wb_instruction = Clwb;
  }

let size_words t = t.size_words
let set_wb_instruction t kind = t.wb_instruction <- kind
let wb_instruction t = t.wb_instruction
let latency t = t.latency
let stats t tid = Pstats.get t.stats tid
let aggregate_stats t = Pstats.aggregate t.stats
let reset_stats t = Pstats.reset_registry t.stats

(* Crash injection. *)

let set_trip t n = t.trip <- n
let disarm_trip t = t.trip <- -1

let tick t =
  if t.trip >= 0 then begin
    if t.trip = 0 then begin
      t.trip <- -1;
      raise Crashed
    end;
    t.trip <- t.trip - 1
  end

(* Primitive accesses. *)

let check t addr =
  if addr < 0 || addr >= t.size_words then
    invalid_arg (Printf.sprintf "Heap: address %d out of bounds" addr)

let mark_dirty t addr = Bytes.unsafe_set t.dirty (Cacheline.line_of_addr addr) '\001'

let load t ~tid addr =
  check t addr;
  (Pstats.get t.stats tid).loads <- (Pstats.get t.stats tid).loads + 1;
  let line = Cacheline.line_of_addr addr in
  if Bytes.unsafe_get t.invalid line <> '\000' then begin
    (* The line was invalidated by a flush: this load misses to NVRAM. *)
    Bytes.unsafe_set t.invalid line '\000';
    if t.latency.Latency_model.inject then
      Latency_model.spin_ns t.latency.Latency_model.nvram_read_ns
  end;
  Atomic.get t.volatile.(addr)

let store t ~tid addr v =
  check t addr;
  tick t;
  (Pstats.get t.stats tid).stores <- (Pstats.get t.stats tid).stores + 1;
  Atomic.set t.volatile.(addr) v;
  mark_dirty t addr

let cas t ~tid addr ~expected ~desired =
  check t addr;
  tick t;
  (Pstats.get t.stats tid).cas <- (Pstats.get t.stats tid).cas + 1;
  let ok = Atomic.compare_and_set t.volatile.(addr) expected desired in
  if ok then mark_dirty t addr;
  ok

let fetch_add t ~tid addr delta =
  check t addr;
  tick t;
  (Pstats.get t.stats tid).cas <- (Pstats.get t.stats tid).cas + 1;
  let v = Atomic.fetch_and_add t.volatile.(addr) delta in
  mark_dirty t addr;
  v

(* Write-backs and fences. *)

let drain_line t line =
  let base = Cacheline.addr_of_line line in
  let hi = min (base + Cacheline.words_per_line) t.size_words in
  Bytes.unsafe_set t.dirty line '\000';
  for a = base to hi - 1 do
    t.durable.(a) <- Atomic.get t.volatile.(a)
  done

let rec write_back t ~tid addr =
  check t addr;
  tick t;
  let st = Pstats.get t.stats tid in
  st.write_backs <- st.write_backs + 1;
  let line = Cacheline.line_of_addr addr in
  (match t.wb_instruction with
  | Clwb -> ()
  | Clflushopt | Clflush -> Bytes.unsafe_set t.invalid line '\001');
  if t.wb_instruction = Clflush then begin
    (* clflush is ordered: it completes by itself, with no batching. *)
    drain_line t line;
    st.sync_batches <- st.sync_batches + 1;
    st.lines_drained <- st.lines_drained + 1;
    Latency_model.charge_sync t.latency
  end
  else
  let buf = t.pending.(tid) and n = t.pending_n.(tid) in
  let rec seen i = i < n && (buf.(i) = line || seen (i + 1)) in
  if not (seen 0) then
    if n < max_pending then begin
      buf.(n) <- line;
      t.pending_n.(tid) <- n + 1
    end
    else begin
      (* The write-combining queue is full: hardware drains it on its own.
         Model that as an implicit batch completion, then retry. *)
      st.sync_batches <- st.sync_batches + 1;
      st.lines_drained <- st.lines_drained + n;
      for i = 0 to n - 1 do
        drain_line t buf.(i)
      done;
      t.pending_n.(tid) <- 0;
      Latency_model.charge_sync t.latency;
      st.write_backs <- st.write_backs - 1;
      write_back t ~tid addr
    end

let fence t ~tid =
  tick t;
  let st = Pstats.get t.stats tid in
  st.fences <- st.fences + 1;
  let n = t.pending_n.(tid) in
  if n > 0 then begin
    st.sync_batches <- st.sync_batches + 1;
    st.lines_drained <- st.lines_drained + n;
    let buf = t.pending.(tid) in
    for i = 0 to n - 1 do
      drain_line t buf.(i)
    done;
    t.pending_n.(tid) <- 0;
    (* One batch of parallel write-backs completes in ~one NVRAM write. *)
    Latency_model.charge_sync t.latency
  end

(** [persist t ~tid addr] = write-back + fence of a single line: the
    non-batched sync operation. *)
let persist t ~tid addr =
  write_back t ~tid addr;
  fence t ~tid

(** Write back every dirty line and wait: a clean shutdown. *)
let flush_all t ~tid =
  let lines = Bytes.length t.dirty in
  for line = 0 to lines - 1 do
    if Bytes.unsafe_get t.dirty line <> '\000' then drain_line t line
  done;
  Array.fill t.pending_n 0 (Array.length t.pending_n) 0;
  let st = Pstats.get t.stats tid in
  st.fences <- st.fences + 1;
  Latency_model.charge_sync t.latency

(* Crash and restart. *)

(** [crash t ~seed ~eviction_probability] simulates a power failure followed
    by a restart. Must be called when no other domain is accessing the heap.

    Every line still dirty (including lines with a pending but un-fenced
    write-back) is independently flushed to the durable image with probability
    [eviction_probability]; all other dirty lines lose their volatile
    contents. The volatile image is then reloaded from the durable image, as
    after a reboot that maps the NVRAM region back at the same addresses. *)
let crash ?(seed = 0xC0FFEE) ?(eviction_probability = 0.5) t =
  t.trip <- -1;
  let rng = Random.State.make [| seed |] in
  let lines = Bytes.length t.dirty in
  for line = 0 to lines - 1 do
    if Bytes.unsafe_get t.dirty line <> '\000' then begin
      if Random.State.float rng 1.0 < eviction_probability then drain_line t line
      else Bytes.unsafe_set t.dirty line '\000'
    end
  done;
  Array.fill t.pending_n 0 (Array.length t.pending_n) 0;
  for a = 0 to t.size_words - 1 do
    Atomic.set t.volatile.(a) t.durable.(a)
  done

(* Introspection for tests. *)

(** Contents of the durable image, bypassing the volatile image. *)
let durable_load t addr =
  check t addr;
  t.durable.(addr)

let line_is_dirty t addr = Bytes.get t.dirty (Cacheline.line_of_addr addr) <> '\000'

let dirty_line_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.dirty;
  !n

let pending_count t ~tid = t.pending_n.(tid)
