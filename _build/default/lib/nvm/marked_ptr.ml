(** Tagged heap pointers.

    Heap addresses are word indices into the simulated persistent heap. All
    nodes are cache-line (8-word) aligned, so the low three bits of a link
    word are available for marks, exactly like low-order pointer tagging on
    real hardware:

    - bit 0 ([delete]) - Harris-style logical-deletion mark, also used as the
      Natarajan-Mittal FLAG on BST edges;
    - bit 1 ([unflushed]) - the link-and-persist mark of section 3: set while
      the link's new value may not have reached NVRAM yet;
    - bit 2 ([tag]) - the Natarajan-Mittal TAG bit on BST edges.

    The functions here are total and pure; they compile to a handful of
    integer instructions. *)

type t = int

(** The null pointer. Address 0 is reserved by the heap layout so that no
    valid node can live there. *)
let null = 0

let delete_bit = 1
let unflushed_bit = 2
let tag_bit = 4
let mark_mask = delete_bit lor unflushed_bit lor tag_bit

(** Strip all marks, leaving the word address. *)
let addr r = r land lnot mark_mask

let is_null r = addr r = 0
let is_deleted r = r land delete_bit <> 0
let is_unflushed r = r land unflushed_bit <> 0
let is_tagged r = r land tag_bit <> 0
let marks r = r land mark_mask

let with_delete r = r lor delete_bit
let with_unflushed r = r lor unflushed_bit
let with_tag r = r lor tag_bit
let clear_delete r = r land lnot delete_bit
let clear_unflushed r = r land lnot unflushed_bit
let clear_tag r = r land lnot tag_bit

(** [make a ~delete ~unflushed ~tag] builds a marked pointer from an aligned
    address. Raises [Invalid_argument] if [a] is not 8-word aligned. *)
let make a ~delete ~unflushed ~tag =
  if a land mark_mask <> 0 then invalid_arg "Marked_ptr.make: unaligned address";
  a
  lor (if delete then delete_bit else 0)
  lor (if unflushed then unflushed_bit else 0)
  lor if tag then tag_bit else 0

let equal (a : t) (b : t) = a = b

(** Equality of the addresses, ignoring marks. *)
let same_addr a b = addr a = addr b

let pp ppf r =
  Format.fprintf ppf "%d%s%s%s" (addr r)
    (if is_deleted r then "!d" else "")
    (if is_unflushed r then "!u" else "")
    (if is_tagged r then "!t" else "")
