(** Deterministic carve-out of heap address space: volatile bookkeeping that
    hands out consecutive cache-line-aligned spans. Construction code runs
    the same [carve] sequence when creating and when recovering, so both
    sides agree on every subsystem's address without a durable directory. *)

type t

val make : base:int -> limit:int -> t

(** Allocate [n] words, cache-line aligned; raises when full. *)
val carve : t -> int -> int

(** Align the next carve to a multiple of [align] (a power of two). *)
val align_to : t -> int -> unit

val remaining : t -> int
val position : t -> int
