(** Latency model of the simulated memory hierarchy (paper Table 1 and
    section 6.1): sync operations busy-wait one NVRAM write latency per
    batch of outstanding write-backs — the same injection methodology the
    paper used on pre-NVRAM hardware. *)

type t = {
  mutable nvram_write_ns : int;  (** write-back completion latency *)
  mutable nvram_read_ns : int;  (** uncached read latency (clflush misses) *)
  dram_read_ns : int;
  dram_write_ns : int;
  mutable inject : bool;  (** busy-wait on syncs when true *)
}

(** Table-1 projections; the default 125 ns write is the average of the
    projected PCM and Memristor write latencies (section 6.1). *)
val default : unit -> t

(** Counts events but never waits (unit tests). *)
val no_injection : unit -> t

val set_write_latency : t -> int -> unit

(** Calibrated busy-wait of approximately [ns] nanoseconds. *)
val spin_ns : int -> unit

(** Charge one batch completion (waits iff injection is enabled). *)
val charge_sync : t -> unit
