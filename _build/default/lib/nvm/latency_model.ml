(** Latency model of the simulated memory hierarchy.

    Reproduces the cost assumptions of the paper's evaluation (Table 1 and
    section 6.1): NVRAM writes are the dominant cost; a sync operation (one or
    more [clwb]s followed by a store fence) waits for the NVRAM write latency
    {e once per batch} of outstanding write-backs, reflecting Intel's guidance
    that multiple line write-backs proceed in parallel.

    Since we have no NVRAM, the wait is an injected, calibrated busy-wait, the
    same methodology used by the paper itself on pre-NVRAM hardware. Injection
    can be disabled ([inject = false]) for functional tests, where only the
    event {e counts} matter. *)

type t = {
  mutable nvram_write_ns : int;  (** write-back completion latency (ns) *)
  mutable nvram_read_ns : int;  (** uncached read latency (ns); informational *)
  dram_read_ns : int;  (** DRAM read latency (ns); informational *)
  dram_write_ns : int;  (** DRAM write latency (ns); informational *)
  mutable inject : bool;  (** busy-wait on fences when true *)
}

(** Projected latencies from Table 1 of the paper. The default write latency,
    125 ns, is the average of the projected PCM (150 ns) and Memristor
    (100 ns) write latencies, matching section 6.1. *)
let default () =
  {
    nvram_write_ns = 125;
    nvram_read_ns = 60;
    dram_read_ns = 50;
    dram_write_ns = 50;
    inject = true;
  }

(** A model that records events but never waits; used by unit tests. *)
let no_injection () =
  let t = default () in
  t.inject <- false;
  t

let set_write_latency t ns = t.nvram_write_ns <- ns

(* Busy-wait calibration: measure how many iterations of a spin loop fit in a
   microsecond, once, at first use. The loop body is kept opaque to the
   optimizer through [Sys.opaque_identity]. *)

let spin_iterations n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := Sys.opaque_identity (!acc + i)
  done;
  ignore (Sys.opaque_identity !acc)

let iters_per_us : float Lazy.t =
  lazy
    (let trial = 200_000 in
     let t0 = Unix.gettimeofday () in
     spin_iterations trial;
     let t1 = Unix.gettimeofday () in
     let elapsed_us = (t1 -. t0) *. 1e6 in
     if elapsed_us <= 0. then 1000. else float_of_int trial /. elapsed_us)

(** Busy-wait for approximately [ns] nanoseconds. *)
let spin_ns ns =
  if ns > 0 then begin
    let iters = int_of_float (Lazy.force iters_per_us *. float_of_int ns /. 1000.) in
    spin_iterations (max 1 iters)
  end

(** Charge the cost of completing one batch of outstanding write-backs:
    busy-waits one NVRAM write latency if injection is enabled. *)
let charge_sync t = if t.inject then spin_ns t.nvram_write_ns
