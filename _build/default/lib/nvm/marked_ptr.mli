(** Tagged heap pointers.

    Heap addresses are word indices; nodes are cache-line (8-word) aligned,
    so the low three bits of a link word carry marks, like low-order pointer
    tagging on real hardware:

    - bit 0: Harris-style logical-deletion mark / Natarajan-Mittal FLAG;
    - bit 1: the link-and-persist "unflushed" mark (section 3);
    - bit 2: the Natarajan-Mittal TAG.

    All functions are pure and total. *)

type t = int

(** The null pointer (address 0 is reserved by the heap layout). *)
val null : t

(** Strip all marks, leaving the word address. *)
val addr : t -> int

val is_null : t -> bool
val is_deleted : t -> bool
val is_unflushed : t -> bool
val is_tagged : t -> bool

(** The mark bits alone. *)
val marks : t -> int

val with_delete : t -> t
val with_unflushed : t -> t
val with_tag : t -> t
val clear_delete : t -> t
val clear_unflushed : t -> t
val clear_tag : t -> t

(** [make a ~delete ~unflushed ~tag] builds a marked pointer from an aligned
    address; raises [Invalid_argument] if [a] is not 8-word aligned. *)
val make : int -> delete:bool -> unflushed:bool -> tag:bool -> t

val equal : t -> t -> bool

(** Address equality, ignoring marks. *)
val same_addr : t -> t -> bool

val pp : Format.formatter -> t -> unit
