lib/nvm/heap.mli: Latency_model Pstats
