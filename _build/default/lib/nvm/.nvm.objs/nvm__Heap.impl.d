lib/nvm/heap.ml: Array Atomic Bytes Cacheline Latency_model Printf Pstats Random
