lib/nvm/cacheline.ml:
