lib/nvm/marked_ptr.mli: Format
