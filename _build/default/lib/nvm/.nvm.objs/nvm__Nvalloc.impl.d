lib/nvm/nvalloc.ml: Array Atomic Cacheline Hashtbl Heap List Mutex Pstats Queue
