lib/nvm/latency_model.mli:
