lib/nvm/region.ml: Cacheline Printf
