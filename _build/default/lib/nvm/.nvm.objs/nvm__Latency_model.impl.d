lib/nvm/latency_model.ml: Lazy Sys Unix
