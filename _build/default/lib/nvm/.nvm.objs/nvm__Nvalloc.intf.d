lib/nvm/nvalloc.mli: Heap
