lib/nvm/pstats.ml: Array Format
