lib/nvm/region.mli:
