lib/nvm/marked_ptr.ml: Format
