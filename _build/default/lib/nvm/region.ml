(** Deterministic carve-out of heap address space.

    A [Region.t] hands out consecutive, cache-line-aligned spans of the heap.
    It is volatile bookkeeping only: construction code runs the same sequence
    of [carve] calls when creating a fresh heap and when re-attaching to a
    recovered one, so both sides agree on where every subsystem lives without
    storing a durable directory. *)

type t = { mutable next : int; limit : int }

let make ~base ~limit =
  if base < 0 || limit < base then invalid_arg "Region.make";
  { next = Cacheline.align_up base; limit }

(** Allocate [n] words, cache-line aligned. Raises if the region is full. *)
let carve t n =
  let base = Cacheline.align_up t.next in
  let stop = base + n in
  if stop > t.limit then
    invalid_arg
      (Printf.sprintf "Region.carve: out of space (need %d, have %d)" n
         (t.limit - base));
  t.next <- stop;
  base

(** Align the next carve to a multiple of [align] words. *)
let align_to t align =
  if align <= 0 || align land (align - 1) <> 0 then invalid_arg "Region.align_to";
  t.next <- (t.next + align - 1) land lnot (align - 1)

let remaining t = t.limit - t.next
let position t = t.next
