lib/baseline/log_list.mli: Lfds Wal
