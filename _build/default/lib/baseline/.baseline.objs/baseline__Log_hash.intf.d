lib/baseline/log_hash.mli: Lfds Wal
