lib/baseline/log_bst.ml: Cacheline Heap Lfds Nvm Spinlock Wal
