lib/baseline/spinlock.mli: Nvm
