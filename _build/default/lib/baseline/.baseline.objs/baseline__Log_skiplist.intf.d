lib/baseline/log_skiplist.mli: Lfds Wal
