lib/baseline/wal.ml: Array Cacheline Heap Lfds List Nvm
