lib/baseline/log_hash.ml: Cacheline Heap Lfds Log_list Nvm
