lib/baseline/log_bst.mli: Lfds Wal
