lib/baseline/spinlock.ml: Domain Fun Heap List Nvm Unix
