lib/baseline/log_list.ml: Cacheline Heap Lfds List Nvm Spinlock Wal
