lib/baseline/log_skiplist.ml: Array Cacheline Heap Lfds List Nvm Pstats Spinlock Wal
