lib/baseline/wal.mli: Lfds
