(** Log-based durable linked list: the lazy list of Heller et al. with
    write-ahead logging — the competitor of Figures 5-8 for lists.

    The lazy list is the best-performing lock-based list [ASPLOS'15]:
    wait-free unlocked searches; updates lock the predecessor and current
    node, validate, and mutate in place. Every in-place mutation of reachable
    state goes through [Wal.logged_store]; the critical section commits (two
    more syncs) before releasing its locks.

    Node layout (one cache line):
    {v +0 key +1 value +2 next +3 lock +4 marked +5..7 pad v}

    Heads are two-word cells [link, lock] so the predecessor position is
    uniform whether it is a node or a head (the [pos] type). Memory is
    managed by NV-epochs, identically to the log-free structures (the paper
    holds memory management constant in these comparisons). *)

open Nvm

let size_class = Cacheline.words_per_line
let key_of node = node
let value_of node = node + 1
let next_of node = node + 2
let lock_of node = node + 3
let marked_of node = node + 4

let read_key ctx ~tid node = Heap.load (Lfds.Ctx.heap ctx) ~tid (key_of node)

(* A predecessor position: where its outgoing link and lock live, and its
   marked flag if it is a real node (heads cannot be marked). *)
type pos = { link : int; lock : int; marked : int option }

let pos_of_head head = { link = head; lock = head + 1; marked = None }

let pos_of_node node =
  { link = next_of node; lock = lock_of node; marked = Some (marked_of node) }

let is_marked ctx ~tid pos =
  match pos.marked with
  | None -> false
  | Some addr -> Heap.load (Lfds.Ctx.heap ctx) ~tid addr <> 0

let node_marked ctx ~tid node =
  Heap.load (Lfds.Ctx.heap ctx) ~tid (marked_of node) <> 0

(** Create a fresh list head (next static carve): [link, lock] zeroed. *)
let create ctx =
  let head = Lfds.Ctx.carve_static ctx Cacheline.words_per_line in
  let heap = Lfds.Ctx.heap ctx in
  Heap.store heap ~tid:0 head 0;
  Heap.store heap ~tid:0 (head + 1) 0;
  Heap.persist heap ~tid:0 head;
  head

let attach ctx = Lfds.Ctx.carve_static ctx Cacheline.words_per_line

(* Unlocked traversal: first node with key >= k and its predecessor. *)
let locate ctx ~tid ~head k =
  let heap = Lfds.Ctx.heap ctx in
  let rec walk pred curr =
    if curr = 0 then (pred, 0)
    else if read_key ctx ~tid curr >= k then (pred, curr)
    else walk (pos_of_node curr) (Heap.load heap ~tid (next_of curr))
  in
  walk (pos_of_head head) (Heap.load heap ~tid head)

let search ctx ~tid ~head ~key =
  let _, curr = locate ctx ~tid ~head key in
  if curr <> 0 && read_key ctx ~tid curr = key && not (node_marked ctx ~tid curr)
  then Some (Heap.load (Lfds.Ctx.heap ctx) ~tid (value_of curr))
  else None

let validate ctx ~tid pred curr =
  (not (is_marked ctx ~tid pred))
  && Heap.load (Lfds.Ctx.heap ctx) ~tid pred.link = curr
  && (curr = 0 || not (node_marked ctx ~tid curr))

let rec insert ctx wal ~tid ~head ~key ~value =
  let pred, curr = locate ctx ~tid ~head key in
  let heap = Lfds.Ctx.heap ctx in
  let locks = pred.lock :: (if curr = 0 then [] else [ lock_of curr ]) in
  let outcome =
    Spinlock.with_locks heap ~tid locks (fun () ->
        if not (validate ctx ~tid pred curr) then `Retry
        else if curr <> 0 && read_key ctx ~tid curr = key then `Present
        else begin
          let node = Lfds.Nv_epochs.alloc_node (Lfds.Ctx.mem ctx) ~tid ~size_class in
          Heap.store heap ~tid (key_of node) key;
          Heap.store heap ~tid (value_of node) value;
          Heap.store heap ~tid (next_of node) curr;
          Heap.store heap ~tid (lock_of node) 0;
          Heap.store heap ~tid (marked_of node) 0;
          Heap.write_back heap ~tid node;
          (* The first logged store's fence covers node contents and
             allocator metadata, mirroring the log-free discipline. *)
          Wal.begin_op wal ~tid;
          Wal.logged_store wal ~tid pred.link node;
          Wal.commit wal ~tid;
          `Done
        end)
  in
  match outcome with
  | `Done -> true
  | `Present -> false
  | `Retry -> insert ctx wal ~tid ~head ~key ~value

let rec remove ctx wal ~tid ~head ~key =
  let pred, curr = locate ctx ~tid ~head key in
  if curr = 0 || read_key ctx ~tid curr <> key then false
  else begin
    let heap = Lfds.Ctx.heap ctx in
    let outcome =
      Spinlock.with_locks heap ~tid [ pred.lock; lock_of curr ] (fun () ->
          if not (validate ctx ~tid pred curr) then `Retry
          else begin
            Wal.begin_op wal ~tid;
            Wal.logged_store wal ~tid (marked_of curr) 1;
            Wal.logged_store wal ~tid pred.link (Heap.load heap ~tid (next_of curr));
            Wal.commit wal ~tid;
            `Done
          end)
    in
    match outcome with
    | `Done ->
        Lfds.Nv_epochs.retire_node (Lfds.Ctx.mem ctx) ~tid curr;
        true
    | `Retry -> remove ctx wal ~tid ~head ~key
  end

(* Quiescent helpers and recovery. *)

let iter_nodes ctx ~tid ~head f =
  let heap = Lfds.Ctx.heap ctx in
  let rec go node =
    if node <> 0 then begin
      f node ~deleted:(node_marked ctx ~tid node);
      go (Heap.load heap ~tid (next_of node))
    end
  in
  go (Heap.load heap ~tid head)

let size ctx ~tid ~head =
  let n = ref 0 in
  iter_nodes ctx ~tid ~head (fun _ ~deleted -> if not deleted then incr n);
  !n

let to_list ctx ~tid ~head =
  let acc = ref [] in
  let heap = Lfds.Ctx.heap ctx in
  iter_nodes ctx ~tid ~head (fun node ~deleted ->
      if not deleted then
        acc :=
          (read_key ctx ~tid node, Heap.load heap ~tid (value_of node)) :: !acc);
  List.rev !acc

(** Post-crash cleanup, after [Wal.recover]: the rollback already restored a
    consistent list, so only volatile residue remains — lock words and any
    marked-but-unlinked node cannot exist, but stale lock bits can. *)
let recover_consistency ctx ~head =
  let tid = 0 in
  let heap = Lfds.Ctx.heap ctx in
  Heap.store heap ~tid (head + 1) 0;
  iter_nodes ctx ~tid ~head (fun node ~deleted:_ ->
      if Heap.load heap ~tid (lock_of node) <> 0 then
        Heap.store heap ~tid (lock_of node) 0);
  Heap.fence heap ~tid

let ops ctx wal ~head =
  {
    Lfds.Set_intf.name = "log-list";
    insert =
      (fun ~tid ~key ~value ->
        Lfds.Ctx.with_op ctx ~tid (fun () -> insert ctx wal ~tid ~head ~key ~value));
    remove =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op ctx ~tid (fun () -> remove ctx wal ~tid ~head ~key));
    search =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op ctx ~tid (fun () -> search ctx ~tid ~head ~key));
    size = (fun () -> size ctx ~tid:0 ~head);
  }
