(** Test-and-test-and-set spinlock over a heap word.

    Lock words are volatile state: they are never written back on purpose,
    and the log-based structures' recovery clears any lock word a crash
    happened to make durable. *)

open Nvm

let acquire heap ~tid addr =
  (* Test-and-test-and-set with an occasional timeslice yield: on few cores
     the holder may be descheduled and pure spinning starves it. *)
  let spins = ref 0 in
  let rec spin () =
    if Heap.load heap ~tid addr <> 0 then begin
      incr spins;
      if !spins land 63 = 0 then Unix.sleepf 0. else Domain.cpu_relax ();
      spin ()
    end
    else if not (Heap.cas heap ~tid addr ~expected:0 ~desired:(tid + 1)) then spin ()
  in
  spin ()

let release heap ~tid addr = Heap.store heap ~tid addr 0

let try_acquire heap ~tid addr =
  Heap.load heap ~tid addr = 0
  && Heap.cas heap ~tid addr ~expected:0 ~desired:(tid + 1)

let holder heap ~tid addr = Heap.load heap ~tid addr - 1

(** Acquire [addrs] in address order (deadlock avoidance), run [f], release.
    Duplicate addresses are locked once. *)
let with_locks heap ~tid addrs f =
  let sorted = List.sort_uniq compare addrs in
  List.iter (fun a -> acquire heap ~tid a) sorted;
  Fun.protect ~finally:(fun () -> List.iter (fun a -> release heap ~tid a) sorted) f
