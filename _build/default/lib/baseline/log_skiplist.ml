(** Log-based durable skip list: the optimistic lock-based algorithm of
    Herlihy, Lev, Luchangco and Shavit [SIROCCO'07] with write-ahead logging.

    Updates lock the predecessor of the node at every level it occupies, so a
    log-based update must log (and, eagerly, sync) one entry per level —
    against the single level-0 sync of the log-free version. This is why the
    skip list shows the paper's largest gap (Figures 5 and 8).

    Node layout ([8 + levels] words, rounded to cache lines):
    {v +0 key +1 value +2 toplevel +3 lock +4 marked +5 fullylinked +6..7 pad
       +8+l next_l v}

    The head is a static tower of [max_level] links plus one lock word. *)

open Nvm

type t = { head : int; head_lock : int; max_level : int; rng : int array }

let key_of node = node
let value_of node = node + 1
let toplevel_of node = node + 2
let lock_of node = node + 3
let marked_of node = node + 4
let fullylinked_of node = node + 5
let next_of node level = node + 8 + level

let node_class ~levels =
  (8 + levels + Cacheline.words_per_line - 1)
  / Cacheline.words_per_line * Cacheline.words_per_line

let read_key ctx ~tid node = Heap.load (Lfds.Ctx.heap ctx) ~tid (key_of node)
let is_marked ctx ~tid node = Heap.load (Lfds.Ctx.heap ctx) ~tid (marked_of node) <> 0

let create ctx ?(max_level = 16) () =
  let span = Cacheline.align_up (max_level + 1) in
  let head = Lfds.Ctx.carve_static ctx span in
  let heap = Lfds.Ctx.heap ctx in
  let tid = 0 in
  for i = 0 to span - 1 do
    Heap.store heap ~tid (head + i) 0
  done;
  for i = 0 to (span / Cacheline.words_per_line) - 1 do
    Heap.write_back heap ~tid (head + (i * Cacheline.words_per_line))
  done;
  Heap.fence heap ~tid;
  {
    head;
    head_lock = head + max_level;
    max_level;
    rng = Array.init Pstats.max_threads (fun i -> (i * 0x2545F491) lor 1);
  }

let attach ctx ?(max_level = 16) () =
  let span = Cacheline.align_up (max_level + 1) in
  let head = Lfds.Ctx.carve_static ctx span in
  {
    head;
    head_lock = head + max_level;
    max_level;
    rng = Array.init Pstats.max_threads (fun i -> (i * 0x2545F491) lor 1);
  }

let random_level t ~tid =
  let x = t.rng.(tid) in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = (x lxor (x lsl 17)) land max_int in
  t.rng.(tid) <- x;
  let rec count lvl bits =
    if lvl >= t.max_level || bits land 1 = 0 then lvl else count (lvl + 1) (bits lsr 1)
  in
  count 1 x

(* Per-level predecessor bookkeeping: link word to rewrite, lock to take,
   and the predecessor node (0 when it is the head). *)
type preds = { links : int array; locks : int array; nodes : int array }

let make_preds t =
  {
    links = Array.make t.max_level 0;
    locks = Array.make t.max_level 0;
    nodes = Array.make t.max_level 0;
  }

(* Returns the highest level at which [k] was found (-1 if absent) and fills
   [preds] and [succs]. Pure reads; no helping, no unlinking. *)
let find ctx t ~tid k ~preds ~succs =
  let heap = Lfds.Ctx.heap ctx in
  let lfound = ref (-1) in
  let rec down level pred_node pred_link =
    if level >= 0 then begin
      let rec walk pred_node pred_link =
        let curr = Heap.load heap ~tid pred_link in
        if curr <> 0 && read_key ctx ~tid curr < k then
          walk curr (next_of curr level)
        else begin
          if !lfound < 0 && curr <> 0 && read_key ctx ~tid curr = k then
            lfound := level;
          preds.links.(level) <- pred_link;
          preds.locks.(level) <- (if pred_node = 0 then t.head_lock else lock_of pred_node);
          preds.nodes.(level) <- pred_node;
          succs.(level) <- curr;
          down (level - 1) pred_node
            (if pred_node = 0 then t.head + (level - 1)
             else next_of pred_node (level - 1))
        end
      in
      walk pred_node pred_link
    end
  in
  down (t.max_level - 1) 0 (t.head + (t.max_level - 1));
  !lfound

let search ctx t ~tid ~key =
  let preds = make_preds t and succs = Array.make t.max_level 0 in
  let lfound = find ctx t ~tid key ~preds ~succs in
  if lfound < 0 then None
  else
    let node = succs.(lfound) in
    if
      Heap.load (Lfds.Ctx.heap ctx) ~tid (fullylinked_of node) <> 0
      && not (is_marked ctx ~tid node)
    then Some (Heap.load (Lfds.Ctx.heap ctx) ~tid (value_of node))
    else None

(* Lock the distinct predecessor locks of levels [0 .. toplevel-1], from
   level 0 up. The level-0 predecessor has the largest key and higher-level
   predecessors only get smaller (the head smallest of all), so every thread
   acquires locks in descending key order — and a remover, which holds its
   victim (larger than every one of its predecessors) first, fits the same
   global order. Ascending acquisition would deadlock against removers
   through the head lock. *)
let lock_preds ctx ~tid ~preds ~toplevel =
  let heap = Lfds.Ctx.heap ctx in
  let locked = ref [] in
  for level = 0 to toplevel - 1 do
    let l = preds.locks.(level) in
    if not (List.mem l !locked) then begin
      Spinlock.acquire heap ~tid l;
      locked := l :: !locked
    end
  done;
  !locked

let unlock_all ctx ~tid locked =
  List.iter (fun l -> Spinlock.release (Lfds.Ctx.heap ctx) ~tid l) locked

let valid_level ctx ~tid ~preds ~succs level =
  let heap = Lfds.Ctx.heap ctx in
  (preds.nodes.(level) = 0 || not (is_marked ctx ~tid preds.nodes.(level)))
  && Heap.load heap ~tid preds.links.(level) = succs.(level)
  && (succs.(level) = 0 || not (is_marked ctx ~tid succs.(level)))

let rec insert ctx wal t ~tid ~key ~value =
  let preds = make_preds t and succs = Array.make t.max_level 0 in
  let lfound = find ctx t ~tid key ~preds ~succs in
  if lfound >= 0 && not (is_marked ctx ~tid succs.(lfound)) then false
  else begin
    let toplevel = random_level t ~tid in
    let locked = lock_preds ctx ~tid ~preds ~toplevel in
    let valid = ref true in
    for level = 0 to toplevel - 1 do
      if not (valid_level ctx ~tid ~preds ~succs level) then valid := false
    done;
    if not !valid then begin
      unlock_all ctx ~tid locked;
      insert ctx wal t ~tid ~key ~value
    end
    else begin
      let heap = Lfds.Ctx.heap ctx in
      let size_class = node_class ~levels:toplevel in
      let node = Lfds.Nv_epochs.alloc_node (Lfds.Ctx.mem ctx) ~tid ~size_class in
      Heap.store heap ~tid (key_of node) key;
      Heap.store heap ~tid (value_of node) value;
      Heap.store heap ~tid (toplevel_of node) toplevel;
      Heap.store heap ~tid (lock_of node) 0;
      Heap.store heap ~tid (marked_of node) 0;
      Heap.store heap ~tid (fullylinked_of node) 1;
      for l = 0 to toplevel - 1 do
        Heap.store heap ~tid (next_of node l) succs.(l)
      done;
      let lines = (size_class + Cacheline.words_per_line - 1) / Cacheline.words_per_line in
      for i = 0 to lines - 1 do
        Heap.write_back heap ~tid (node + (i * Cacheline.words_per_line))
      done;
      (* One logged (synced) link write per level. *)
      Wal.begin_op wal ~tid;
      for l = 0 to toplevel - 1 do
        Wal.logged_store wal ~tid preds.links.(l) node
      done;
      Wal.commit wal ~tid;
      unlock_all ctx ~tid locked;
      true
    end
  end

let remove ctx wal t ~tid ~key =
  let heap = Lfds.Ctx.heap ctx in
  let preds = make_preds t and succs = Array.make t.max_level 0 in
  let lfound = find ctx t ~tid key ~preds ~succs in
  if lfound < 0 then false
  else begin
    let victim = succs.(lfound) in
    let toplevel = Heap.load heap ~tid (toplevel_of victim) in
    if
      Heap.load heap ~tid (fullylinked_of victim) = 0
      || toplevel - 1 <> lfound
      || is_marked ctx ~tid victim
    then false
    else begin
      Spinlock.acquire heap ~tid (lock_of victim);
      if is_marked ctx ~tid victim then begin
        Spinlock.release heap ~tid (lock_of victim);
        false
      end
      else begin
        (* Point of no return: mark under the victim's lock, logged. *)
        Wal.begin_op wal ~tid;
        Wal.logged_store wal ~tid (marked_of victim) 1;
        let rec unlink () =
          let preds = make_preds t and succs = Array.make t.max_level 0 in
          ignore (find ctx t ~tid key ~preds ~succs);
          let locked = lock_preds ctx ~tid ~preds ~toplevel in
          let valid = ref true in
          for level = 0 to toplevel - 1 do
            if
              preds.nodes.(level) <> 0 && is_marked ctx ~tid preds.nodes.(level)
              || Heap.load heap ~tid preds.links.(level) <> victim
            then valid := false
          done;
          if not !valid then begin
            unlock_all ctx ~tid locked;
            unlink ()
          end
          else begin
            for l = toplevel - 1 downto 0 do
              Wal.logged_store wal ~tid preds.links.(l)
                (Heap.load heap ~tid (next_of victim l))
            done;
            Wal.commit wal ~tid;
            unlock_all ctx ~tid locked
          end
        in
        unlink ();
        Spinlock.release heap ~tid (lock_of victim);
        Lfds.Nv_epochs.retire_node (Lfds.Ctx.mem ctx) ~tid victim;
        true
      end
    end
  end

(* Quiescent helpers and recovery. *)

let iter_nodes ctx ~tid t f =
  let heap = Lfds.Ctx.heap ctx in
  let rec go node =
    if node <> 0 then begin
      f node ~deleted:(is_marked ctx ~tid node);
      go (Heap.load heap ~tid (next_of node 0))
    end
  in
  go (Heap.load heap ~tid t.head)

let size ctx ~tid t =
  let n = ref 0 in
  iter_nodes ctx ~tid t (fun _ ~deleted -> if not deleted then incr n);
  !n

let recover_consistency ctx t =
  let tid = 0 in
  let heap = Lfds.Ctx.heap ctx in
  Heap.store heap ~tid t.head_lock 0;
  iter_nodes ctx ~tid t (fun node ~deleted:_ ->
      if Heap.load heap ~tid (lock_of node) <> 0 then
        Heap.store heap ~tid (lock_of node) 0);
  Heap.fence heap ~tid

let ops ctx wal t =
  {
    Lfds.Set_intf.name = "log-skiplist";
    insert =
      (fun ~tid ~key ~value ->
        Lfds.Ctx.with_op ctx ~tid (fun () -> insert ctx wal t ~tid ~key ~value));
    remove =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op ctx ~tid (fun () -> remove ctx wal t ~tid ~key));
    search =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op ctx ~tid (fun () -> search ctx t ~tid ~key));
    size = (fun () -> size ctx ~tid:0 t);
  }
