(** Log-based durable BST: a lock-based external tree in the style of bst-tk
    [ASPLOS'15], with write-ahead logging.

    Same external-tree shape and sentinels as the log-free BST. Updates take
    per-node spinlocks on the one or two ancestors they rewrite, validate
    reachability, and mutate in place through the log. Searches are unlocked.

    Node layout (one cache line):
    {v +0 key +1 value +2 left +3 right +4 lock +5 removed +6..7 pad v} *)

open Nvm

type t = { r : int; s : int }

let size_class = Cacheline.words_per_line
let key_of node = node
let value_of node = node + 1
let left_of node = node + 2
let right_of node = node + 3
let lock_of node = node + 4
let removed_of node = node + 5
let inf0 = Lfds.Set_intf.max_key + 1
let inf1 = Lfds.Set_intf.max_key + 2
let inf2 = Lfds.Set_intf.max_key + 3

let read_key ctx ~tid node = Heap.load (Lfds.Ctx.heap ctx) ~tid (key_of node)

let child_link ctx ~tid node k =
  if k < read_key ctx ~tid node then left_of node else right_of node

let sibling_link ctx ~tid node k =
  if k < read_key ctx ~tid node then right_of node else left_of node

let is_leaf ctx ~tid node = Heap.load (Lfds.Ctx.heap ctx) ~tid (left_of node) = 0
let is_removed ctx ~tid node = Heap.load (Lfds.Ctx.heap ctx) ~tid (removed_of node) <> 0

let init_node ctx ~tid node ~key ~left ~right =
  let heap = Lfds.Ctx.heap ctx in
  Heap.store heap ~tid (key_of node) key;
  Heap.store heap ~tid (value_of node) 0;
  Heap.store heap ~tid (left_of node) left;
  Heap.store heap ~tid (right_of node) right;
  Heap.store heap ~tid (lock_of node) 0;
  Heap.store heap ~tid (removed_of node) 0;
  Heap.write_back heap ~tid node

let create ctx =
  let base = Lfds.Ctx.carve_static ctx (5 * size_class) in
  let r = base
  and s = base + size_class
  and l0 = base + (2 * size_class)
  and l1 = base + (3 * size_class)
  and l2 = base + (4 * size_class) in
  let tid = 0 in
  init_node ctx ~tid l0 ~key:inf0 ~left:0 ~right:0;
  init_node ctx ~tid l1 ~key:inf1 ~left:0 ~right:0;
  init_node ctx ~tid l2 ~key:inf2 ~left:0 ~right:0;
  init_node ctx ~tid s ~key:inf1 ~left:l0 ~right:l1;
  init_node ctx ~tid r ~key:inf2 ~left:s ~right:l2;
  Heap.fence (Lfds.Ctx.heap ctx) ~tid;
  { r; s }

let attach ctx =
  let base = Lfds.Ctx.carve_static ctx (5 * size_class) in
  { r = base; s = base + size_class }

(* Unlocked descent: grandparent, parent and leaf on the path to [k]. *)
let seek ctx ~tid t k =
  let heap = Lfds.Ctx.heap ctx in
  let rec go gparent parent current =
    if is_leaf ctx ~tid current then (gparent, parent, current)
    else go parent current (Heap.load heap ~tid (child_link ctx ~tid current k))
  in
  go t.r t.s (Heap.load heap ~tid (child_link ctx ~tid t.s k))

let search ctx t ~tid ~key =
  let _, _, leaf = seek ctx ~tid t key in
  if read_key ctx ~tid leaf = key then
    Some (Heap.load (Lfds.Ctx.heap ctx) ~tid (value_of leaf))
  else None

let rec insert ctx wal t ~tid ~key ~value =
  let _, parent, leaf = seek ctx ~tid t key in
  if read_key ctx ~tid leaf = key then false
  else begin
    let heap = Lfds.Ctx.heap ctx in
    let outcome =
      Spinlock.with_locks heap ~tid [ lock_of parent ] (fun () ->
          if
            is_removed ctx ~tid parent
            || Heap.load heap ~tid (child_link ctx ~tid parent key) <> leaf
          then `Retry
          else begin
            let mem = Lfds.Ctx.mem ctx in
            let new_leaf = Lfds.Nv_epochs.alloc_node mem ~tid ~size_class in
            let leaf_key = read_key ctx ~tid leaf in
            init_node ctx ~tid new_leaf ~key ~left:0 ~right:0;
            Heap.store heap ~tid (value_of new_leaf) value;
            let new_internal = Lfds.Nv_epochs.alloc_node mem ~tid ~size_class in
            let left, right =
              if key < leaf_key then (new_leaf, leaf) else (leaf, new_leaf)
            in
            init_node ctx ~tid new_internal ~key:(max key leaf_key) ~left ~right;
            Wal.begin_op wal ~tid;
            Wal.logged_store wal ~tid
              (child_link ctx ~tid parent key)
              new_internal;
            Wal.commit wal ~tid;
            `Done
          end)
    in
    match outcome with `Done -> true | `Retry -> insert ctx wal t ~tid ~key ~value
  end

let rec remove ctx wal t ~tid ~key =
  let gparent, parent, leaf = seek ctx ~tid t key in
  if read_key ctx ~tid leaf <> key then false
  else begin
    let heap = Lfds.Ctx.heap ctx in
    let outcome =
      Spinlock.with_locks heap ~tid [ lock_of gparent; lock_of parent ] (fun () ->
          if
            is_removed ctx ~tid gparent
            || is_removed ctx ~tid parent
            || Heap.load heap ~tid (child_link ctx ~tid gparent key) <> parent
            || Heap.load heap ~tid (child_link ctx ~tid parent key) <> leaf
          then `Retry
          else begin
            let sibling = Heap.load heap ~tid (sibling_link ctx ~tid parent key) in
            Wal.begin_op wal ~tid;
            Wal.logged_store wal ~tid (removed_of parent) 1;
            Wal.logged_store wal ~tid (removed_of leaf) 1;
            Wal.logged_store wal ~tid (child_link ctx ~tid gparent key) sibling;
            Wal.commit wal ~tid;
            `Done
          end)
    in
    match outcome with
    | `Done ->
        Lfds.Nv_epochs.retire_node (Lfds.Ctx.mem ctx) ~tid parent;
        Lfds.Nv_epochs.retire_node (Lfds.Ctx.mem ctx) ~tid leaf;
        true
    | `Retry -> remove ctx wal t ~tid ~key
  end

(* Quiescent helpers and recovery. *)

let iter_nodes ctx ~tid t f =
  let heap = Lfds.Ctx.heap ctx in
  let rec go node =
    if node <> 0 then
      if is_leaf ctx ~tid node then begin
        if read_key ctx ~tid node < inf0 then f node ~leaf:true
      end
      else begin
        f node ~leaf:false;
        go (Heap.load heap ~tid (left_of node));
        go (Heap.load heap ~tid (right_of node))
      end
  in
  go (Heap.load heap ~tid (left_of t.s))

let size ctx ~tid t =
  let n = ref 0 in
  iter_nodes ctx ~tid t (fun _ ~leaf -> if leaf then incr n);
  !n

let recover_consistency ctx t =
  let tid = 0 in
  let heap = Lfds.Ctx.heap ctx in
  let clear node =
    if Heap.load heap ~tid (lock_of node) <> 0 then
      Heap.store heap ~tid (lock_of node) 0
  in
  clear t.r;
  clear t.s;
  iter_nodes ctx ~tid t (fun node ~leaf:_ -> clear node);
  Heap.fence heap ~tid

let ops ctx wal t =
  {
    Lfds.Set_intf.name = "log-bst";
    insert =
      (fun ~tid ~key ~value ->
        Lfds.Ctx.with_op ctx ~tid (fun () -> insert ctx wal t ~tid ~key ~value));
    remove =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op ctx ~tid (fun () -> remove ctx wal t ~tid ~key));
    search =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op ctx ~tid (fun () -> search ctx t ~tid ~key));
    size = (fun () -> size ctx ~tid:0 t);
  }
