(** Test-and-test-and-set spinlock over a heap word, with a periodic
    timeslice yield (on few cores the holder may be descheduled). Lock words
    are volatile state: never written back on purpose; the log-based
    structures' recovery clears any that a crash made durable. *)

val acquire : Nvm.Heap.t -> tid:int -> int -> unit
val release : Nvm.Heap.t -> tid:int -> int -> unit
val try_acquire : Nvm.Heap.t -> tid:int -> int -> bool

(** Holding tid, or -1 when free. *)
val holder : Nvm.Heap.t -> tid:int -> int -> int

(** Acquire [addrs] in address order (deduplicated), run, release —
    exception-safe. *)
val with_locks : Nvm.Heap.t -> tid:int -> int list -> (unit -> 'a) -> 'a
