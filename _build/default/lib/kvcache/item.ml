(** Durable cache items: immutable key/value blobs in slab memory.

    The slab allocator is [Nvalloc] (pages = slabs, size classes = slab
    classes) managed through NV-epochs, whose active page table {e is} the
    "active slab table" of section 6.5: allocating or retiring an item marks
    its slab active with a durable write only on a miss, and recovery sweeps
    only the slabs active at crash time.

    Layout: {v +0 key-hash  +1 (key_len << 24) | val_len  +2 expiry (ms since
    epoch; 0 = never)  +3.. key bytes, then value bytes v} *)

open Nvm

let hash_of item = item
let lens_of item = item + 1
let expiry_of item = item + 2
let key_words len = Strpack.words_needed len
let key_addr item = item + 3
let value_addr item ~key_len = item + 3 + key_words key_len

let words_for ~key_len ~val_len =
  let words = 3 + key_words key_len + Strpack.words_needed val_len in
  let rounded =
    (words + Cacheline.words_per_line - 1)
    / Cacheline.words_per_line * Cacheline.words_per_line
  in
  if rounded > 64 then invalid_arg "Item: key+value too large (max ~420 bytes)";
  rounded

let key_len item heap ~tid = Heap.load heap ~tid (lens_of item) lsr 24
let val_len item heap ~tid = Heap.load heap ~tid (lens_of item) land 0xFFFFFF

(** Allocate and fully initialize an item; contents are persisted (together
    with the slab metadata) before the address is returned, so linking it
    into the durable hash table never exposes unwritten payload. *)
let alloc ?(expire_at = 0.) ctx ~tid ~key ~value =
  let heap = Lfds.Ctx.heap ctx in
  let key_len = String.length key and val_len = String.length value in
  let size_class = words_for ~key_len ~val_len in
  let item = Lfds.Nv_epochs.alloc_node (Lfds.Ctx.mem ctx) ~tid ~size_class in
  Heap.store heap ~tid (hash_of item) (Strpack.hash key);
  Heap.store heap ~tid (lens_of item) ((key_len lsl 24) lor val_len);
  Heap.store heap ~tid (expiry_of item) (int_of_float (expire_at *. 1000.));
  Strpack.write heap ~tid ~addr:(key_addr item) key;
  Strpack.write heap ~tid ~addr:(value_addr item ~key_len) value;
  Lfds.Link_persist.persist_node ctx ~tid ~addr:item ~size_class;
  (item, size_class)

let read_key ctx ~tid item =
  let heap = Lfds.Ctx.heap ctx in
  Strpack.read heap ~tid ~addr:(key_addr item) ~len:(key_len item heap ~tid)

let read_value ctx ~tid item =
  let heap = Lfds.Ctx.heap ctx in
  let key_len = key_len item heap ~tid in
  Strpack.read heap ~tid ~addr:(value_addr item ~key_len)
    ~len:(val_len item heap ~tid)

let key_matches ctx ~tid item key = String.equal (read_key ctx ~tid item) key

(** Absolute expiry in seconds since the epoch; [0.] = never. *)
let expire_at ctx ~tid item =
  float_of_int (Heap.load (Lfds.Ctx.heap ctx) ~tid (expiry_of item)) /. 1000.

let expired ctx ~tid item ~now =
  let e = expire_at ctx ~tid item in
  e > 0. && e <= now
