(** In-process memtier_benchmark equivalent (section 6.5).

    Issues a configurable mix of [set] and [get] operations with keys drawn
    uniformly at random from a key range, exactly like the paper's runs:
    1:4 set:get ratio, configurable key range, warm-up covering half the key
    range before measuring. The network layer of the real benchmark is
    identical across the three compared systems and cancels out of the
    comparison, so the generator drives the cache cores directly. *)

let key_string n = Printf.sprintf "memtier-%012d" n

let value_string n =
  (* 24-byte payload derived from the key, so gets can be validated. *)
  Printf.sprintf "value-%012d-%05d" n (n mod 99991)

(** Populate half of the key range — the paper's warm-up. Returns seconds. *)
let warmup (cache : Cache_intf.ops) ~nkeys =
  let t0 = Unix.gettimeofday () in
  for n = 0 to (nkeys / 2) - 1 do
    cache.set ~tid:0 ~key:(key_string n) ~value:(value_string n)
  done;
  Unix.gettimeofday () -. t0

(** Timed mixed run; [set_pct] of operations are sets (paper: 20 = 1:4). *)
let run (cache : Cache_intf.ops) ~nthreads ~duration ~nkeys ?(set_pct = 20) ~seed () =
  let step ~tid ~rng =
    let n = Workload.Xoshiro.below rng nkeys in
    let key = key_string n in
    if Workload.Xoshiro.chance rng ~num:set_pct ~den:100 then
      cache.set ~tid ~key ~value:(value_string n)
    else ignore (cache.get ~tid ~key)
  in
  Workload.Run.throughput ~nthreads ~duration ~step ~seed ()
