(** In-process memtier_benchmark equivalent (§6.5): a configurable set/get
    mix with uniform keys over a key range, plus the paper's warm-up
    (populate half the range). Drives the cache cores directly — the
    network layer is identical across the compared systems and cancels out. *)

val key_string : int -> string
val value_string : int -> string

(** Populate half the key range; returns elapsed seconds. *)
val warmup : Cache_intf.ops -> nkeys:int -> float

(** Timed mixed run; [set_pct] of operations are sets (default 20 = the
    paper's 1:4 set:get). *)
val run :
  Cache_intf.ops ->
  nthreads:int ->
  duration:float ->
  nkeys:int ->
  ?set_pct:int ->
  seed:int ->
  unit ->
  Workload.Run.result
