lib/kvcache/item.mli: Lfds
