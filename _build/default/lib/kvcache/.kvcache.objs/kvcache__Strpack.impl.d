lib/kvcache/strpack.ml: Bytes Char Heap Lfds Nvm String
