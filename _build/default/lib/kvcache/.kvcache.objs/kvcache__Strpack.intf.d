lib/kvcache/strpack.mli: Nvm
