lib/kvcache/nv_memcached.ml: Atomic Cache_intf Ctx Durable_hash Fun Item Lfds Lru Mutex Nv_epochs Nvm Recovery String Strpack Unix
