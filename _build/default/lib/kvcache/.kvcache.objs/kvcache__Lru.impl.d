lib/kvcache/lru.ml: Fun Hashtbl Mutex
