lib/kvcache/nv_memcached.mli: Cache_intf Lfds
