lib/kvcache/cache_intf.ml:
