lib/kvcache/memtier.ml: Cache_intf Printf Unix Workload
