lib/kvcache/memtier.mli: Cache_intf Workload
