lib/kvcache/memcached_volatile.ml: Cache_intf Fun Hashtbl Mutex String Unix
