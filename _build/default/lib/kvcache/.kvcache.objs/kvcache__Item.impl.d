lib/kvcache/item.ml: Cacheline Heap Lfds Nvm String Strpack
