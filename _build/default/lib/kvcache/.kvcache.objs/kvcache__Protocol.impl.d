lib/kvcache/protocol.ml: Buffer Cache_intf List Printf String Unix
