lib/kvcache/protocol.mli: Cache_intf
