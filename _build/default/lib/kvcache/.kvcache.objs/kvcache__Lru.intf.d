lib/kvcache/lru.mli:
