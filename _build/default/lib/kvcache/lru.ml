(** Volatile LRU index over heap item addresses.

    Memcached's LRU chains are an eviction policy, not durable state: after a
    restart NV-Memcached rebuilds them by iterating the recovered hash table
    (section 6.5), so this lives entirely in OCaml memory, guarded by one
    mutex (as memcached guards its LRU with a lock). *)

type node = {
  addr : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  tbl : (int, node) Hashtbl.t;
  mutable head : node option;  (** most recent *)
  mutable tail : node option;  (** eviction candidate *)
  lock : Mutex.t;
}

let create () =
  { tbl = Hashtbl.create 1024; head = None; tail = None; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

(** Register a (new) item as most recently used. *)
let add t addr =
  locked t (fun () ->
      let n = { addr; prev = None; next = None } in
      Hashtbl.replace t.tbl addr n;
      push_front t n)

(** Move an existing item to the front; no-op for unknown addresses. *)
let touch t addr =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl addr with
      | Some n ->
          unlink t n;
          push_front t n
      | None -> ())

(** Forget an item (deletion). *)
let remove t addr =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl addr with
      | Some n ->
          unlink t n;
          Hashtbl.remove t.tbl addr
      | None -> ())

(** Pop the least recently used item, if any. *)
let pop_lru t =
  locked t (fun () ->
      match t.tail with
      | Some n ->
          unlink t n;
          Hashtbl.remove t.tbl n.addr;
          Some n.addr
      | None -> None)

let length t = locked t (fun () -> Hashtbl.length t.tbl)
