(** Volatile LRU index over heap item addresses. Eviction policy only —
    never durable: recovery rebuilds it by walking the recovered hash table
    (§6.5). One mutex, like memcached's LRU lock. *)

type t

val create : unit -> t

(** Register a new item as most recently used. *)
val add : t -> int -> unit

(** Move to front; no-op for unknown addresses. *)
val touch : t -> int -> unit

(** Forget an item. *)
val remove : t -> int -> unit

(** Pop the least recently used item, if any. *)
val pop_lru : t -> int option

val length : t -> int
