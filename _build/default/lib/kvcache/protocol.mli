(** Memcached ASCII protocol over any cache build: [set]/[add]/[replace]/
    [append]/[prepend], [get]/[gets] (multi-key), [delete], [incr]/[decr],
    [touch], [stats], [version]. Operates on complete request strings (data
    block included); the socket loop a real server would add is the part of
    Memcached the paper's comparison holds constant. *)

type t

val create : Cache_intf.ops -> t

(** Handle one complete request (e.g. ["set k 0 0 5\r\nhello\r\n"]);
    returns the wire response. *)
val handle : t -> tid:int -> string -> string

(** One response per request. *)
val session : t -> tid:int -> string list -> string list
