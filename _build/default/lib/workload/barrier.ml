(** Sense-reversing barrier for domains. *)

type t = { n : int; count : int Atomic.t; sense : bool Atomic.t }

let make n = { n; count = Atomic.make n; sense = Atomic.make false }

let wait t =
  let my_sense = not (Atomic.get t.sense) in
  if Atomic.fetch_and_add t.count (-1) = 1 then begin
    Atomic.set t.count t.n;
    Atomic.set t.sense my_sense
  end
  else
    while Atomic.get t.sense <> my_sense do
      Domain.cpu_relax ()
    done
