(** Sense-reversing barrier for domains. *)

type t

(** [make n] synchronizes [n] participants per [wait] round. *)
val make : int -> t

val wait : t -> unit
