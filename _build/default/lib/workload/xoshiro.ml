(** Deterministic per-thread pseudo-random numbers (splitmix64-seeded
    xorshift). Every benchmark thread owns one state, so runs are
    reproducible for a given seed regardless of interleaving. *)

type t = { mutable s0 : int; mutable s1 : int }

let splitmix seed =
  let z = seed + 0x1E3779B97F4A7C15 in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let make ~seed =
  let s0 = splitmix seed in
  let s1 = splitmix s0 in
  { s0 = (if s0 = 0 then 1 else s0); s1 = (if s1 = 0 then 2 else s1) }

(** Next raw 62-bit non-negative value. *)
let next t =
  let x = t.s0 and y = t.s1 in
  t.s0 <- y;
  let x = x lxor (x lsl 23) in
  let x = x lxor (x lsr 17) lxor y lxor (y lsr 26) in
  t.s1 <- x;
  (x + y) land max_int

(** Uniform integer in [0, bound). *)
let below t bound =
  if bound <= 0 then invalid_arg "Xoshiro.below";
  next t mod bound

(** Uniform integer in [lo, hi]. *)
let in_range t ~lo ~hi = lo + below t (hi - lo + 1)

(** True with probability [num/den]. *)
let chance t ~num ~den = below t den < num
