(** Log-bucketed latency histogram: geometric buckets (~8% resolution) from
    1 ns to ~100 s, so recording is one increment and percentiles are exact
    to bucket resolution. *)

type t

val create : unit -> t
val record : t -> ns:float -> unit
val count : t -> int

(** Latency (ns) at percentile [p] in [0, 100]. *)
val percentile : t -> float -> float

val mean : t -> float
val merge : into:t -> t -> unit
val pp : Format.formatter -> t -> unit
