(** Key and operation generators matching the paper's workloads.

    Section 6.2: "50% of the operations are inserts of random keys, 50% are
    removes of random keys"; keys are drawn uniformly from a range of twice
    the target size, so the structure hovers around the target size in steady
    state (the standard search-structure methodology the paper's benchmarks
    inherit from ASCYLIB). Figure 8 uses 100% updates as well. *)

type op = Insert | Remove | Search

type mix = {
  insert_pct : int;
  remove_pct : int;  (** remainder = searches *)
}

(** 50% insert / 50% remove: the Figure 5/8 update-only workload. *)
let update_only = { insert_pct = 50; remove_pct = 50 }

(** [mixed ~update_pct]: updates split evenly, rest searches. *)
let mixed ~update_pct =
  { insert_pct = update_pct / 2; remove_pct = update_pct - (update_pct / 2) }

let pick rng mix =
  let r = Xoshiro.below rng 100 in
  if r < mix.insert_pct then Insert
  else if r < mix.insert_pct + mix.remove_pct then Remove
  else Search

(** Key range giving an expected steady-state size of [size]. *)
let range_for ~size = 2 * size

let random_key rng ~range = 1 + Xoshiro.below rng range

(** Prefill [set] to its steady-state size with uniformly random keys, as the
    paper does before measuring. *)
let prefill (set : Lfds.Set_intf.ops) ~size ~seed =
  let rng = Xoshiro.make ~seed in
  let range = range_for ~size in
  let n = ref 0 in
  while !n < size do
    let key = random_key rng ~range in
    if set.insert ~tid:0 ~key ~value:key then incr n
  done
