(** Plain-text tables for the benchmark harness, shaped like the paper's
    figures: one row per configuration, one column per series. *)

(** [table ~title ~header rows] prints an aligned table to stdout. *)
val table : title:string -> header:string list -> string list list -> unit

val f2 : float -> string
val f1 : float -> string

(** "500 ns", "1.5 us", "2.50 ms", "1.20 s". *)
val human_ns : float -> string

(** "1.50 Mop/s", "12.3 Kop/s". *)
val human_ops : float -> string
