(** Plain-text tables for the benchmark harness, shaped like the paper's
    figures: one row per configuration, one column per series. *)

let hrule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let pad w s =
  if String.length s >= w then s else s ^ String.make (w - String.length s) ' '

(** [table ~title ~header rows] prints an aligned table. *)
let table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  Printf.printf "\n== %s ==\n" title;
  let print_row row =
    print_string
      (String.concat " | " (List.map2 (fun w c -> pad w c) widths row));
    print_newline ()
  in
  print_row header;
  Printf.printf "%s\n" (hrule widths);
  List.iter print_row rows;
  flush stdout

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x

let human_ns ns =
  if ns < 1_000. then Printf.sprintf "%.0f ns" ns
  else if ns < 1_000_000. then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1_000_000_000. then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

let human_ops ops =
  if ops >= 1e6 then Printf.sprintf "%.2f Mop/s" (ops /. 1e6)
  else if ops >= 1e3 then Printf.sprintf "%.1f Kop/s" (ops /. 1e3)
  else Printf.sprintf "%.0f op/s" ops
