lib/workload/histogram.ml: Array Format Report
