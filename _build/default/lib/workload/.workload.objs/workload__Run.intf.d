lib/workload/run.mli: Histogram Keygen Lfds Xoshiro
