lib/workload/run.ml: Array Atomic Barrier Domain Histogram Keygen Lfds List Unix Xoshiro
