lib/workload/barrier.ml: Atomic Domain
