lib/workload/xoshiro.ml:
