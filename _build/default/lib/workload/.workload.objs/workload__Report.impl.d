lib/workload/report.ml: List Printf String
