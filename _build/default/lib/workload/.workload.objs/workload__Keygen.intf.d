lib/workload/keygen.mli: Lfds Xoshiro
