lib/workload/barrier.mli:
