lib/workload/report.mli:
