lib/workload/xoshiro.mli:
