lib/workload/histogram.mli: Format
