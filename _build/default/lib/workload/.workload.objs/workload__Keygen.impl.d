lib/workload/keygen.ml: Lfds Xoshiro
