(** Key and operation generators matching the paper's workloads
    (section 6.2): uniformly random keys from twice the target size, so the
    structure hovers at the target in steady state. *)

type op = Insert | Remove | Search

type mix = { insert_pct : int; remove_pct : int (** remainder = searches *) }

(** 50% insert / 50% remove (Figures 5 and 8). *)
val update_only : mix

(** Updates split evenly; the rest are searches. *)
val mixed : update_pct:int -> mix

val pick : Xoshiro.t -> mix -> op

(** Key range giving an expected steady-state size of [size]. *)
val range_for : size:int -> int

val random_key : Xoshiro.t -> range:int -> int

(** Fill [set] to its steady-state size before measuring. *)
val prefill : Lfds.Set_intf.ops -> size:int -> seed:int -> unit
