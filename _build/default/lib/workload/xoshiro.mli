(** Deterministic per-thread pseudo-random numbers (splitmix-seeded
    xorshift): every benchmark thread owns one state, so runs reproduce for
    a given seed regardless of interleaving. *)

type t

val make : seed:int -> t

(** Next raw non-negative value. *)
val next : t -> int

(** Uniform in [0, bound); raises on non-positive bound. *)
val below : t -> int -> int

(** Uniform in [lo, hi]. *)
val in_range : t -> lo:int -> hi:int -> int

(** True with probability num/den. *)
val chance : t -> num:int -> den:int -> bool
