lib/harness/instance.ml: Baseline Cacheline Heap Latency_model Lfds Nvm Option Unix
