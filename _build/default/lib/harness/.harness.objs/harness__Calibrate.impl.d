lib/harness/calibrate.ml: Heap Latency_model Lazy Nvm Sys Unix
