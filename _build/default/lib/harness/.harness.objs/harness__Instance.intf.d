lib/harness/instance.mli: Baseline Lfds Nvm
