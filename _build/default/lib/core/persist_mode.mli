(** How a log-free structure persists its links; the same algorithm code
    runs in all three modes (the paper's durable structures differ from
    their volatile counterparts only by added flushes). *)

type t =
  | Volatile  (** no write-backs: the DRAM-oriented baseline (Figure 7) *)
  | Link_persist  (** one link-and-persist sync per state change (§3) *)
  | Link_cache  (** batched durability through the link cache (§4) *)

val to_string : t -> string
val is_durable : t -> bool
