(** The link-and-persist operation (section 3) and its link-cache variant.

    [cas_link] is the single entry point structures use to change a link:

    - [Volatile]: a plain CAS;
    - [Link_persist]: CAS in the new value with the unflushed mark set,
      write it back, wait, then clear the mark. Any concurrent operation
      that reads the marked link may complete the last two steps itself
      ([help_unflushed]) — nobody ever blocks;
    - [Link_cache]: first try to register the update in the link cache
      (batched durability); fall back to link-and-persist when the cache
      cannot take the entry.

    [expected] and [desired] may carry algorithm marks (delete / flag / tag)
    but never the unflushed bit: callers clean what they read with
    [help_unflushed] before CASing, which is precisely the paper's "if an
    edge has changed ... the operation that changed it made sure it was
    durable" discipline. *)

open Nvm

let read ctx ~tid link = Heap.load (Ctx.heap ctx) ~tid link

(** Given value [v] just loaded from [link]: if it carries the unflushed
    mark, make the line durable and clear the mark (helping). Returns the
    clean value currently believable for [link]. *)
let help_unflushed ctx ~tid ~link v =
  if not (Marked_ptr.is_unflushed v) then v
  else begin
    let heap = Ctx.heap ctx in
    (match Ctx.mode ctx with
    | Persist_mode.Volatile -> ()
    | Persist_mode.Link_persist | Persist_mode.Link_cache ->
        Heap.persist heap ~tid link);
    let clean = Marked_ptr.clear_unflushed v in
    ignore (Heap.cas heap ~tid link ~expected:v ~desired:clean);
    clean
  end

(** Load [link] and help-clear its unflushed mark if present. *)
let read_clean ctx ~tid link =
  let v = read ctx ~tid link in
  if Marked_ptr.is_unflushed v then help_unflushed ctx ~tid ~link v
  else v

let cas_plain ctx ~tid ~link ~expected ~desired =
  Heap.cas (Ctx.heap ctx) ~tid link ~expected ~desired

let cas_link_persist ctx ~tid ~link ~expected ~desired =
  let heap = Ctx.heap ctx in
  let marked = Marked_ptr.with_unflushed desired in
  if not (Heap.cas heap ~tid link ~expected ~desired:marked) then false
  else begin
    Heap.persist heap ~tid link;
    (* A helper may have already cleared the mark; either way it ends clear. *)
    ignore (Heap.cas heap ~tid link ~expected:marked ~desired);
    true
  end

(** Atomically update [link] from [expected] to [desired] and make the update
    durable according to the context's persist mode. [key] identifies the
    update for the link cache. Returns false iff the CAS failed. *)
let cas_link ctx ~tid ~key ~link ~expected ~desired =
  assert (not (Marked_ptr.is_unflushed expected));
  assert (not (Marked_ptr.is_unflushed desired));
  match Ctx.mode ctx with
  | Persist_mode.Volatile -> cas_plain ctx ~tid ~link ~expected ~desired
  | Persist_mode.Link_persist -> cas_link_persist ctx ~tid ~link ~expected ~desired
  | Persist_mode.Link_cache -> (
      match Ctx.link_cache ctx with
      | None -> cas_link_persist ctx ~tid ~link ~expected ~desired
      | Some lc -> (
          match Link_cache.try_link_and_add lc ~tid ~key ~link ~expected ~desired with
          | Link_cache.Added -> true
          | Link_cache.Cas_failed -> false
          | Link_cache.Cache_full ->
              cas_link_persist ctx ~tid ~link ~expected ~desired))

(** Make everything previously linked for [key] durable before our caller's
    linearization point: in link-cache mode, scan the cache; in all durable
    modes, also clear a straggling unflushed mark on [link] if one is given.
    This is the "ensure adjacent edges are durable" step of section 3. *)
let make_durable ctx ~tid ~key ?link () =
  match Ctx.mode ctx with
  | Persist_mode.Volatile -> ()
  | Persist_mode.Link_persist | Persist_mode.Link_cache ->
      (match Ctx.link_cache ctx with
      | Some lc -> Link_cache.scan lc ~tid ~key
      | None -> ());
      (match link with
      | Some l ->
          let v = read ctx ~tid l in
          if Marked_ptr.is_unflushed v then ignore (help_unflushed ctx ~tid ~link:l v)
      | None -> ())

(** Persist freshly initialized node contents ([size_class] words starting at
    [addr]) and wait. The fence also drains the allocator's metadata
    write-backs, establishing "linked implies marked allocated" (sec. 5.5). *)
let persist_node ctx ~tid ~addr ~size_class =
  match Ctx.mode ctx with
  | Persist_mode.Volatile -> ()
  | Persist_mode.Link_persist | Persist_mode.Link_cache ->
      let heap = Ctx.heap ctx in
      let lines = (size_class + Cacheline.words_per_line - 1) / Cacheline.words_per_line in
      for i = 0 to lines - 1 do
        Heap.write_back heap ~tid (addr + (i * Cacheline.words_per_line))
      done;
      Heap.fence heap ~tid
