(** Epoch-based quiescence detection (paper section 5.2). Each thread's
    counter is odd while inside an operation; an unlinked node is safe to
    free once the epoch vector has advanced past the snapshot taken at
    unlink time on all then-active positions. Volatile state only. *)

type t

val create : nthreads:int -> t
val nthreads : t -> int
val current : t -> tid:int -> int
val is_active : int -> bool

(** Begin an operation: step the counter to odd. Asserts proper nesting. *)
val enter : t -> tid:int -> unit

(** End an operation: step the counter to even. *)
val exit : t -> tid:int -> unit

val snapshot : t -> int array

(** True once every thread active in the snapshot has since advanced. *)
val safe : t -> int array -> bool
