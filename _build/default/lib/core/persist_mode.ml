(** How a log-free data structure persists its links.

    The same algorithm code runs in all three modes (the paper's structures
    differ from their volatile counterparts only by added flushes):

    - [Volatile]: no write-backs at all — the DRAM-oriented baseline of
      Figure 7;
    - [Link_persist]: every state-changing link update is made durable with
      the link-and-persist operation of section 3 (one sync per update, plus
      helping);
    - [Link_cache]: link updates are registered in the volatile link cache of
      section 4 and written back in batches when a dependent operation needs
      them durable. *)

type t = Volatile | Link_persist | Link_cache

let to_string = function
  | Volatile -> "volatile"
  | Link_persist -> "link-and-persist"
  | Link_cache -> "link-cache"

let is_durable = function Volatile -> false | Link_persist | Link_cache -> true
