(** Post-crash leak reclamation (paper section 5.5): free every
    allocated-but-unreachable node, looking only at the pages that were
    durably marked active at crash time. Run after the structure's
    [recover_consistency]. Both of the paper's strategies are provided,
    plus a parallel variant of the traversal sweep. *)

(** Search-based sweep: for every allocated address in an active page,
    [locate ~key] the node's key in the structure and keep the node only if
    the search returns this exact address. Returns nodes freed. *)
val sweep_search :
  Ctx.t -> active_pages:int list -> locate:(key:int -> int option) -> int

(** Traversal-based sweep: [iter] enumerates every reachable node address
    (interior nodes included for trees); allocated addresses of active pages
    not seen are freed. Returns nodes freed. *)
val sweep_traversal :
  Ctx.t -> active_pages:int list -> iter:((int -> unit) -> unit) -> int

(** [sweep_traversal] with the page scan partitioned over [nworkers]
    domains (the paper notes recovery parallelizes). *)
val sweep_traversal_parallel :
  Ctx.t -> active_pages:int list -> iter:((int -> unit) -> unit) -> nworkers:int -> int

(** Allocated-but-unreachable count over active pages — zero after a sweep
    (tests). *)
val leak_count :
  Ctx.t -> active_pages:int list -> iter:((int -> unit) -> unit) -> int
