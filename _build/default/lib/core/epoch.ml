(** Epoch-based quiescence detection (section 5.2).

    Each thread owns a counter: odd while inside a data-structure operation,
    even between operations. An unlinked node can be freed once every thread
    that was mid-operation when the node was unlinked has since stepped its
    counter — i.e. once the current epoch vector dominates the vector recorded
    at unlink time on the active positions. This is the volatile core of
    NV-epochs; nothing here needs to survive a crash (a restart empties all
    thread states by definition). *)

type t = { counters : int Atomic.t array; nthreads : int }

let create ~nthreads =
  if nthreads < 1 || nthreads > Nvm.Pstats.max_threads then
    invalid_arg "Epoch.create";
  { counters = Array.init nthreads (fun _ -> Atomic.make 0); nthreads }

let nthreads t = t.nthreads
let current t ~tid = Atomic.get t.counters.(tid)
let is_active e = e land 1 = 1

(** Begin an operation: step the counter to odd. *)
let enter t ~tid =
  let e = Atomic.get t.counters.(tid) in
  assert (not (is_active e));
  Atomic.set t.counters.(tid) (e + 1)

(** End an operation: step the counter to even. *)
let exit t ~tid =
  let e = Atomic.get t.counters.(tid) in
  assert (is_active e);
  Atomic.set t.counters.(tid) (e + 1)

(** The current epoch vector. *)
let snapshot t = Array.init t.nthreads (fun i -> Atomic.get t.counters.(i))

(** [safe t snap] is true once every thread that was active (odd) in [snap]
    has advanced past its snapshotted epoch, so no references taken before
    the snapshot can still be held. *)
let safe t snap =
  let ok = ref true in
  for i = 0 to t.nthreads - 1 do
    if is_active snap.(i) && Atomic.get t.counters.(i) = snap.(i) then ok := false
  done;
  !ok
