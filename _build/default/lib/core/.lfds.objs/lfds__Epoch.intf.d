lib/core/epoch.mli:
