lib/core/active_page_table.ml: Array Cacheline Hashtbl Heap List Nvm
