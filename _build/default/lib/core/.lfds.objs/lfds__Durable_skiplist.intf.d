lib/core/durable_skiplist.mli: Ctx Set_intf
