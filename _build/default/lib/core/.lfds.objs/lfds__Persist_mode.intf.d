lib/core/persist_mode.mli:
