lib/core/active_page_table.mli: Nvm
