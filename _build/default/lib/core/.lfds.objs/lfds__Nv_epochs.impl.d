lib/core/nv_epochs.ml: Active_page_table Array Cacheline Epoch Heap List Nvalloc Nvm Queue
