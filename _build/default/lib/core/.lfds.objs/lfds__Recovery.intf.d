lib/core/recovery.mli: Ctx
