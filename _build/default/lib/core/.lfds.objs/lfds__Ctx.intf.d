lib/core/ctx.mli: Link_cache Nv_epochs Nvm Persist_mode
