lib/core/epoch.ml: Array Atomic Nvm
