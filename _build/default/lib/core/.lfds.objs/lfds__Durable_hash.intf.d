lib/core/durable_hash.mli: Ctx Set_intf
