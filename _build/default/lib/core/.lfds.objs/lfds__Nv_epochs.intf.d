lib/core/nv_epochs.mli: Active_page_table Epoch Nvm
