lib/core/link_cache.mli: Nvm
