lib/core/durable_list.mli: Ctx Set_intf
