lib/core/link_persist.ml: Cacheline Ctx Heap Link_cache Marked_ptr Nvm Persist_mode
