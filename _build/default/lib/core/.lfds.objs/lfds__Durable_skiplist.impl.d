lib/core/durable_skiplist.ml: Array Cacheline Ctx Heap Link_persist List Marked_ptr Nv_epochs Nvalloc Nvm Persist_mode Pstats Set_intf
