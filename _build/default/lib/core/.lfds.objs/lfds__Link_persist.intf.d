lib/core/link_persist.mli: Ctx
