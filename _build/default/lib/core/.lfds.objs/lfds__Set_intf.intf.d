lib/core/set_intf.mli:
