lib/core/persist_mode.ml:
