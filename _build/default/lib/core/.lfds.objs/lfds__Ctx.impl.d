lib/core/ctx.ml: Active_page_table Cacheline Epoch Heap Latency_model Link_cache Nv_epochs Nvalloc Nvm Persist_mode Region
