lib/core/durable_hash.ml: Cacheline Ctx Durable_list Heap Nvm Persist_mode Set_intf
