lib/core/durable_bst.ml: Cacheline Ctx Heap Link_persist List Marked_ptr Nv_epochs Nvalloc Nvm Persist_mode Set_intf
