lib/core/recovery.ml: Array Ctx Domain Hashtbl Heap List Nvalloc Nvm
