lib/core/link_cache.ml: Array Atomic Domain Heap List Marked_ptr Nvm Unix
