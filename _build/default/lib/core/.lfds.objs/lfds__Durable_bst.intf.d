lib/core/durable_bst.mli: Ctx Set_intf
