(** Log-free durable skip list (Herlihy-Shavit lock-free algorithm).

    The lock-free skip list of Herlihy et al. with the section-3 durability
    discipline. Only the level-0 list defines the abstract set, so only
    level-0 link updates pay a link-and-persist (or link-cache) sync:

    - level-0 insertion / deletion-mark / unlink go through
      [Link_persist.cas_link];
    - index-level links are updated with a plain CAS plus an {e asynchronous}
      write-back ([cas_lazy]): they reach NVRAM eventually and recovery
      rebuilds any index level that is stale, so they never cost a fence.

    This is what gives the skip list the paper's largest speedup over the
    log-based version, which logs (and syncs) a logarithmic number of link
    writes per update (Figures 5 and 8).

    Node layout ([4 + levels] words, rounded up to full cache lines):
    {v +0 key  +1 value  +2 toplevel  +3 pad  +4+i next_i v}

    The head tower is a static span of [max_level] links; tail is null.
    Hot-path operations thread the caller's heap cursor ([_c] forms). *)

open Nvm

type t = { head : int; max_level : int; rng : int array }

let key_of node = node
let value_of node = node + 1
let toplevel_of node = node + 2
let validity_of node = node + 3
let next_of node level = node + 4 + level

(* A link address is either a head-tower slot or [node + 4 + level]; invert
   the latter to recover the node during the level-by-level descent. *)
let node_of_link ~link ~level = link - 4 - level

let node_class ~levels =
  let words = 4 + levels in
  (words + Cacheline.words_per_line - 1)
  / Cacheline.words_per_line * Cacheline.words_per_line

let read_key cu node = Heap.Cursor.load cu (key_of node)
let read_value cu node = Heap.Cursor.load cu (value_of node)
let read_toplevel cu node = Heap.Cursor.load cu (toplevel_of node)

(** Create a fresh skip list: carves and zeroes the head tower. *)
let create ctx ?(max_level = 16) () =
  if max_level < 1 || node_class ~levels:max_level > 64 then
    invalid_arg "Durable_skiplist.create: max_level";
  let head = Ctx.carve_static ctx (Cacheline.align_up max_level) in
  let heap = Ctx.heap ctx in
  let tid = 0 in
  for l = 0 to max_level - 1 do
    Heap.store heap ~tid (head + l) 0
  done;
  for l = 0 to max_level - 1 do
    if l mod Cacheline.words_per_line = 0 then Heap.write_back heap ~tid (head + l)
  done;
  Heap.fence heap ~tid;
  {
    head;
    max_level;
    rng = Array.init Pstats.max_threads (fun i -> (i * 0x9E3779B9) lor 1);
  }

(** Re-attach after recovery (same carve, no reinitialization). *)
let attach ctx ?(max_level = 16) () =
  let head = Ctx.carve_static ctx (Cacheline.align_up max_level) in
  { head; max_level; rng = Array.init Pstats.max_threads (fun i -> (i * 0x9E3779B9) lor 1) }

(* Geometric level distribution (p = 1/2), per-thread xorshift state. *)
let random_level t ~tid =
  let x = t.rng.(tid) in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = (x lxor (x lsl 17)) land max_int in
  t.rng.(tid) <- x;
  let rec count lvl bits =
    if lvl >= t.max_level || bits land 1 = 0 then lvl else count (lvl + 1) (bits lsr 1)
  in
  count 1 x

let head_link t level = t.head + level

(* Lazy durable CAS for index levels: plain CAS + asynchronous write-back. *)
let cas_lazy ctx cu ~link ~expected ~desired =
  if Heap.Cursor.cas cu link ~expected ~desired then begin
    (match Ctx.mode ctx with
    | Persist_mode.Volatile -> ()
    (* Link-free rebuilds every index level at recovery and readers never
       consult link durability, so index links carry none at all. *)
    | Persist_mode.Link_free -> ()
    (* NVTraverse readers DO check dirtiness at the traversal boundary, and
       index words share cache lines with level-0 links — leave the line
       dirty and every later search pays a write-back + covering fence for
       it. Queue the write-back here instead: it drains under the enclosing
       update's existing covering fence, costing no extra fence. *)
    | Persist_mode.Nvtraverse | Persist_mode.Link_persist
    | Persist_mode.Link_cache ->
        Heap.Cursor.write_back cu link);
    true
  end
  else false

exception Retry

(* Find: fill [preds] (link addresses) and [succs] (node addresses) for every
   level, unlinking marked nodes on the way. Level 0 uses the durable CAS;
   index levels use the lazy one. Raises [Retry] on interference. *)
let find_once ctx t cu k ~preds ~succs =
  let is_head_slot link = link >= t.head && link < t.head + t.max_level in
  let rec down level pred_link =
    if level < 0 then ()
    else begin
      (* Carry each node's loaded next value forward: two loads per node. *)
      let rec step pred_link curr =
        if curr = 0 then begin
          preds.(level) <- pred_link;
          succs.(level) <- 0
        end
        else begin
          let nv = Heap.Cursor.load cu (next_of curr level) in
          if Marked_ptr.is_deleted nv then begin
            (* Unlink curr at this level. *)
            let nv =
              if level = 0 then
                Link_persist.help_unflushed_c ctx cu ~link:(next_of curr level) nv
              else nv
            in
            let succ = Marked_ptr.addr nv in
            (* Link-free: the unlink must not outrun the deletion verdict —
               help-record it before acting on the mark. *)
            if level = 0 then
              Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of curr);
            let ok =
              if level = 0 then
                Link_persist.cas_link_c ctx cu
                  ~key:(read_key cu curr)
                  ~link:pred_link ~expected:curr ~desired:succ
              else cas_lazy ctx cu ~link:pred_link ~expected:curr ~desired:succ
            in
            if ok then begin
              if level = 0 then Nv_epochs.retire_node_c (Ctx.mem ctx) cu curr;
              step pred_link succ
            end
            else raise Retry
          end
          else if read_key cu curr < k then
            step (next_of curr level) (Marked_ptr.addr nv)
          else begin
            preds.(level) <- pred_link;
            succs.(level) <- curr
          end
        end
      in
      let first =
        if level = 0 then Link_persist.read_clean_c ctx cu pred_link
        else Heap.Cursor.load cu pred_link
      in
      step pred_link (Marked_ptr.addr first);
      (* Descend: keep walking from the same predecessor node, one level
         lower (or from the head tower if the predecessor is the head). *)
      if level > 0 then
        let next_start =
          if is_head_slot preds.(level) then head_link t (level - 1)
          else next_of (node_of_link ~link:preds.(level) ~level) (level - 1)
        in
        down (level - 1) next_start
    end
  in
  down (t.max_level - 1) (head_link t (t.max_level - 1))

let rec find ctx t cu k ~preds ~succs =
  match find_once ctx t cu k ~preds ~succs with
  | () -> ()
  | exception Retry -> find ctx t cu k ~preds ~succs

(* A node is in the set iff linked at level 0 and not level-0 marked. *)
let found_at_0 cu ~succs k =
  let curr = succs.(0) in
  curr <> 0
  && read_key cu curr = k
  && not (Marked_ptr.is_deleted (Heap.Cursor.load cu (next_of curr 0)))

let make_position_durable ctx cu ~k ~preds ~succs =
  Link_persist.make_durable_c ctx cu ~key:k ~link:preds.(0) ();
  if succs.(0) <> 0 then
    Link_persist.make_durable_c ctx cu
      ~key:(read_key cu succs.(0))
      ~link:(next_of succs.(0) 0) ()

let search_c ctx t cu ~key =
  let preds = Array.make t.max_level 0 and succs = Array.make t.max_level 0 in
  find ctx t cu key ~preds ~succs;
  make_position_durable ctx cu ~k:key ~preds ~succs;
  if found_at_0 cu ~succs key then Some (read_value cu succs.(0)) else None

let search ctx t ~tid ~key = search_c ctx t (Ctx.cursor ctx ~tid) ~key

let rec insert_c ctx t cu ~key ~value =
  let preds = Array.make t.max_level 0 and succs = Array.make t.max_level 0 in
  find ctx t cu key ~preds ~succs;
  if found_at_0 cu ~succs key then begin
    make_position_durable ctx cu ~k:key ~preds ~succs;
    false
  end
  else begin
    make_position_durable ctx cu ~k:key ~preds ~succs;
    let levels = random_level t ~tid:(Heap.Cursor.tid cu) in
    let size_class = node_class ~levels in
    let node = Nv_epochs.alloc_node_c (Ctx.mem ctx) cu ~size_class in
    Heap.Cursor.store cu (key_of node) key;
    Heap.Cursor.store cu (value_of node) value;
    Heap.Cursor.store cu (toplevel_of node) levels;
    for l = 0 to levels - 1 do
      Heap.Cursor.store cu (next_of node l) succs.(l)
    done;
    Link_free.init_c ctx cu ~validity_word:(validity_of node)
      ~state:Link_free.valid;
    Link_persist.persist_node_c ctx cu ~addr:node ~size_class;
    (* Linearization: link at level 0, durably. *)
    if
      not
        (Link_persist.cas_link_c ctx cu ~key ~link:preds.(0) ~expected:succs.(0)
           ~desired:node)
    then begin
      Link_free.invalidate_c ctx cu ~validity_word:(validity_of node);
      Nvalloc.free_c (Ctx.allocator ctx) cu node;
      insert_c ctx t cu ~key ~value
    end
    else begin
      (* Link the index levels, best effort with refresh on failure. If the
         node gets marked for deletion while we link (its own next pointer
         carries the mark), stop and run a find pass so the concurrent
         remove's unlinking cannot miss a link we added after its sweep; the
         node's memory stays valid until our epoch ends. *)
      let snip_if_marked l =
        if Marked_ptr.is_deleted (Heap.Cursor.load cu (next_of node l))
        then begin
          find ctx t cu key ~preds ~succs;
          true
        end
        else false
      in
      let rec link_level l =
        if l < levels then begin
          let rec attempt () =
            let expected = Heap.Cursor.load cu (next_of node l) in
            if Marked_ptr.is_deleted expected then () (* being deleted: stop *)
            else if cas_lazy ctx cu ~link:preds.(l) ~expected:succs.(l) ~desired:node
            then begin if not (snip_if_marked l) then link_level (l + 1) end
            else begin
              (* Preds stale: recompute and retarget the node's forward link. *)
              find ctx t cu key ~preds ~succs;
              if found_at_0 cu ~succs key && succs.(0) = node then begin
                let current = Heap.Cursor.load cu (next_of node l) in
                if Marked_ptr.is_deleted current then ()
                else if
                  Marked_ptr.addr current = succs.(l)
                  || Heap.Cursor.cas cu (next_of node l) ~expected:current
                       ~desired:succs.(l)
                then attempt ()
                else ()
              end
            end
          in
          attempt ()
        end
      in
      link_level 1;
      true
    end
  end

let insert ctx t ~tid ~key ~value =
  insert_c ctx t (Ctx.cursor ctx ~tid) ~key ~value

let rec remove_c ctx t cu ~key =
  let preds = Array.make t.max_level 0 and succs = Array.make t.max_level 0 in
  find ctx t cu key ~preds ~succs;
  if not (found_at_0 cu ~succs key) then begin
    make_position_durable ctx cu ~k:key ~preds ~succs;
    false
  end
  else begin
    make_position_durable ctx cu ~k:key ~preds ~succs;
    let node = succs.(0) in
    let levels = read_toplevel cu node in
    (* Mark the index levels top-down (lazy durability). *)
    for l = levels - 1 downto 1 do
      let rec mark () =
        let v = Heap.Cursor.load cu (next_of node l) in
        if not (Marked_ptr.is_deleted v) then
          if
            not
              (Heap.Cursor.cas cu (next_of node l) ~expected:v
                 ~desired:(Marked_ptr.with_delete v))
          then mark ()
          else Heap.Cursor.write_back cu (next_of node l)
      in
      mark ()
    done;
    (* Linearization: durably mark level 0. *)
    let rec mark0 () =
      let v = Link_persist.read_clean_c ctx cu (next_of node 0) in
      if Marked_ptr.is_deleted v then begin
        (* Lost to a concurrent remove; its mark is durable (just cleaned).
           Link-free: help-persist the loser-visible deletion verdict our
           "absent" answer relies on. *)
        Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of node);
        Link_persist.make_durable_c ctx cu ~key ~link:(next_of node 0) ();
        false
      end
      else if
        Link_persist.cas_link_c ctx cu ~key ~link:(next_of node 0) ~expected:v
          ~desired:(Marked_ptr.with_delete v)
      then begin
        (* Link-free: the deletion verdict, durable by our op-end fence. *)
        Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of node);
        (* Physically unlink (find retires on the level-0 unlink). *)
        find ctx t cu key ~preds ~succs;
        true
      end
      else mark0 ()
    in
    if mark0 () then true else remove_c ctx t cu ~key
  end

let remove ctx t ~tid ~key = remove_c ctx t (Ctx.cursor ctx ~tid) ~key

(* Quiescent helpers. *)

let iter_nodes ctx ~tid t f =
  let cu = Ctx.cursor ctx ~tid in
  let rec go link =
    let node = Marked_ptr.addr (Heap.Cursor.load cu link) in
    if node <> 0 then begin
      let nv = Heap.Cursor.load cu (next_of node 0) in
      f node ~deleted:(Marked_ptr.is_deleted nv);
      go (next_of node 0)
    end
  in
  go (head_link t 0)

let size ctx ~tid t =
  let n = ref 0 in
  iter_nodes ctx ~tid t (fun _ ~deleted -> if not deleted then incr n);
  !n

let to_list ctx ~tid t =
  let cu = Ctx.cursor ctx ~tid in
  let acc = ref [] in
  iter_nodes ctx ~tid t (fun node ~deleted ->
      if not deleted then acc := (read_key cu node, read_value cu node) :: !acc);
  List.rev !acc

(* Recovery: the level-0 list is the durable truth. Clean it exactly like a
   linked list, then rebuild every index level from the surviving nodes'
   stored toplevels; head tower and all index links are rewritten. *)
let recover_consistency ctx t =
  let cu = Ctx.cursor ctx ~tid:0 in
  (* Pass 1: normalize level 0 (clear unflushed, complete marked deletes). *)
  let rec fix link =
    let v = Heap.Cursor.load cu link in
    let v =
      if Marked_ptr.is_unflushed v then begin
        let c = Marked_ptr.clear_unflushed v in
        Heap.Cursor.store cu link c;
        Heap.Cursor.write_back cu link;
        c
      end
      else v
    in
    let node = Marked_ptr.addr v in
    if node <> 0 then begin
      let nv = Heap.Cursor.load cu (next_of node 0) in
      if Marked_ptr.is_deleted nv then begin
        Heap.Cursor.store cu link (Marked_ptr.addr nv);
        Heap.Cursor.write_back cu link;
        Nvalloc.free_c (Ctx.allocator ctx) cu node;
        fix link
      end
      else fix (next_of node 0)
    end
  in
  fix (head_link t 0);
  (* Pass 2: rebuild index levels deterministically from toplevels. *)
  let last_link = Array.init t.max_level (fun l -> head_link t l) in
  let rec rebuild node =
    if node <> 0 then begin
      let levels = Heap.Cursor.load cu (toplevel_of node) in
      for l = 1 to min levels t.max_level - 1 do
        Heap.Cursor.store cu last_link.(l) node;
        Heap.Cursor.write_back cu last_link.(l);
        last_link.(l) <- next_of node l
      done;
      rebuild (Marked_ptr.addr (Heap.Cursor.load cu (next_of node 0)))
    end
  in
  rebuild (Marked_ptr.addr (Heap.Cursor.load cu (head_link t 0)));
  for l = 1 to t.max_level - 1 do
    Heap.Cursor.store cu last_link.(l) 0;
    Heap.Cursor.write_back cu last_link.(l)
  done;
  Heap.Cursor.fence cu

(* Link-free rebuild support: the validity-word offset for slot
   classification, and a durable reset to the empty list (head tower
   zeroed; reinsertion rebuilds every level). *)
let validity_off = 3

let reset ctx t =
  let heap = Ctx.heap ctx in
  let tid = 0 in
  for l = 0 to t.max_level - 1 do
    Heap.store heap ~tid (t.head + l) 0
  done;
  for l = 0 to t.max_level - 1 do
    if l mod Cacheline.words_per_line = 0 then
      Heap.write_back heap ~tid (t.head + l)
  done;
  Heap.fence heap ~tid

let ops ctx t =
  {
    Set_intf.name =
      "durable-skiplist(" ^ Persist_mode.to_string (Ctx.mode ctx) ^ ")";
    insert =
      (fun ~tid ~key ~value ->
        Ctx.with_op_c ~name:"skiplist.insert" ~key ~ret:Set_intf.ret_bool ctx (Ctx.cursor ctx ~tid)
          (fun cu -> insert_c ctx t cu ~key ~value));
    remove =
      (fun ~tid ~key ->
        Ctx.with_op_c ~name:"skiplist.remove" ~key ~ret:Set_intf.ret_bool ctx (Ctx.cursor ctx ~tid)
          (fun cu -> remove_c ctx t cu ~key));
    search =
      (fun ~tid ~key ->
        Ctx.with_op_c ~name:"skiplist.search" ~key ~ret:Set_intf.ret_opt ctx (Ctx.cursor ctx ~tid)
          (fun cu -> search_c ctx t cu ~key));
    size = (fun () -> size ctx ~tid:0 t);
  }
