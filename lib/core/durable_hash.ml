(** Log-free durable hash table: one Harris list per bucket (section 3).

    The bucket array is a static span of head links carved from the context's
    static region; each bucket behaves exactly like a [Durable_list], so all
    durability reasoning is inherited. The bucket count is fixed for the
    structure's lifetime (the paper sizes tables to the workload). *)

open Nvm

type t = { base : int; nbuckets : int }

let mix k =
  let h = k * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 31)) land max_int

let bucket_link t key = t.base + (mix key mod t.nbuckets)

(** Create a fresh table with [nbuckets] buckets (head links zeroed and
    persisted). Must be the next static carve in creation order. *)
let create ctx ~nbuckets =
  let base = Ctx.carve_static ctx nbuckets in
  let heap = Ctx.heap ctx in
  let tid = 0 in
  for i = 0 to nbuckets - 1 do
    Heap.store heap ~tid (base + i) 0
  done;
  let lines = (nbuckets + Cacheline.words_per_line - 1) / Cacheline.words_per_line in
  for l = 0 to lines - 1 do
    Heap.write_back heap ~tid (base + (l * Cacheline.words_per_line))
  done;
  Heap.fence heap ~tid;
  { base; nbuckets }

(** Re-attach after recovery: repeats the carve without reinitializing. *)
let attach ctx ~nbuckets =
  let base = Ctx.carve_static ctx nbuckets in
  { base; nbuckets }

let insert_c ctx t cu ~key ~value =
  Durable_list.insert_c ctx cu ~head:(bucket_link t key) ~key ~value

let remove_c ctx t cu ~key =
  Durable_list.remove_c ctx cu ~head:(bucket_link t key) ~key

let search_c ctx t cu ~key =
  Durable_list.search_c ctx cu ~head:(bucket_link t key) ~key

let insert ctx t ~tid ~key ~value =
  insert_c ctx t (Ctx.cursor ctx ~tid) ~key ~value

let remove ctx t ~tid ~key = remove_c ctx t (Ctx.cursor ctx ~tid) ~key
let search ctx t ~tid ~key = search_c ctx t (Ctx.cursor ctx ~tid) ~key

let size ctx t =
  let n = ref 0 in
  for i = 0 to t.nbuckets - 1 do
    n := !n + Durable_list.size ctx ~tid:0 ~head:(t.base + i)
  done;
  !n

let iter_nodes ctx t f =
  for i = 0 to t.nbuckets - 1 do
    Durable_list.iter_nodes ctx ~tid:0 ~head:(t.base + i) f
  done

let to_list ctx t =
  let acc = ref [] in
  for i = t.nbuckets - 1 downto 0 do
    acc := Durable_list.to_list ctx ~tid:0 ~head:(t.base + i) @ !acc
  done;
  !acc

(** Post-crash consistency restore: fix every bucket list. *)
let recover_consistency ctx t =
  for i = 0 to t.nbuckets - 1 do
    Durable_list.recover_consistency ctx ~head:(t.base + i)
  done

(* Link-free rebuild support: per-bucket layout is the list's. *)
let validity_off = Durable_list.validity_off

let reset ctx t =
  let heap = Ctx.heap ctx in
  let tid = 0 in
  for i = 0 to t.nbuckets - 1 do
    Heap.store heap ~tid (t.base + i) 0
  done;
  let lines = (t.nbuckets + Cacheline.words_per_line - 1) / Cacheline.words_per_line in
  for l = 0 to lines - 1 do
    Heap.write_back heap ~tid (t.base + (l * Cacheline.words_per_line))
  done;
  Heap.fence heap ~tid

let ops ctx t =
  {
    Set_intf.name = "durable-hash(" ^ Persist_mode.to_string (Ctx.mode ctx) ^ ")";
    insert =
      (fun ~tid ~key ~value ->
        Ctx.with_op_c ~name:"hash.insert" ~key ~ret:Set_intf.ret_bool ctx (Ctx.cursor ctx ~tid) (fun cu ->
            insert_c ctx t cu ~key ~value));
    remove =
      (fun ~tid ~key ->
        Ctx.with_op_c ~name:"hash.remove" ~key ~ret:Set_intf.ret_bool ctx (Ctx.cursor ctx ~tid) (fun cu ->
            remove_c ctx t cu ~key));
    search =
      (fun ~tid ~key ->
        Ctx.with_op_c ~name:"hash.search" ~key ~ret:Set_intf.ret_opt ctx (Ctx.cursor ctx ~tid) (fun cu ->
            search_c ctx t cu ~key));
    size = (fun () -> size ctx t);
  }
