(** Post-crash leak reclamation (paper section 5.5): free every
    allocated-but-unreachable node, looking only at the pages that were
    durably marked active at crash time. Run after the structure's
    [recover_consistency]. Both of the paper's strategies are provided,
    plus a parallel variant of the traversal sweep. *)

(** Search-based sweep: for every allocated address in an active page,
    [locate ~key] the node's key in the structure and keep the node only if
    the search returns this exact address. Returns nodes freed. *)
val sweep_search :
  Ctx.t -> active_pages:int list -> locate:(key:int -> int option) -> int

(** Traversal-based sweep: [iter] enumerates every reachable node address
    (interior nodes included for trees); allocated addresses of active pages
    not seen are freed. Returns nodes freed. *)
val sweep_traversal :
  Ctx.t -> active_pages:int list -> iter:((int -> unit) -> unit) -> int

(** [sweep_traversal] with the page scan partitioned over [nworkers]
    domains (the paper notes recovery parallelizes). *)
val sweep_traversal_parallel :
  Ctx.t -> active_pages:int list -> iter:((int -> unit) -> unit) -> nworkers:int -> int

(** Link-free rebuild: classify every allocated slot of every initialized
    page by the validity word at [validity_off]; free them all, [reset] the
    structure to empty, reinsert the [Link_free.valid] (key, value) pairs
    through [insert]. Scans the whole allocated heap — the flavor's
    recovery-time-vs-size trade. Returns the number of nodes rebuilt.

    [~ordered:true] reinserts survivors sorted by their key word — FIFO
    shapes (queue, deque) stamp an arrival sequence number there and need
    it respected; sets are order-indifferent (the default). *)
val rebuild_link_free :
  ?ordered:bool ->
  Ctx.t ->
  validity_off:int ->
  reset:(unit -> unit) ->
  insert:(key:int -> value:int -> unit) ->
  int

(** Allocated-but-unreachable count over active pages — zero after a sweep
    (tests). *)
val leak_count :
  Ctx.t -> active_pages:int list -> iter:((int -> unit) -> unit) -> int
