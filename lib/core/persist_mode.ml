(** How a log-free data structure persists its state.

    The same algorithm code runs in all modes (the paper's structures
    differ from their volatile counterparts only by added flushes):

    - [Volatile]: no write-backs at all — the DRAM-oriented baseline of
      Figure 7;
    - [Link_persist]: every state-changing link update is made durable with
      the link-and-persist operation of section 3 (one sync per update, plus
      helping);
    - [Link_cache]: link updates are registered in the volatile link cache of
      section 4 and written back in batches when a dependent operation needs
      them durable;
    - [Nvtraverse]: the NVTraverse discipline — the traversal pays zero
      flushes and fences; only the destination nodes an operation actually
      modifies are persisted before the linearizing CAS, and the op's
      remaining write-backs are drained by one covering fence on the
      response path;
    - [Link_free]: the link-free discipline of Zuriel et al. — node
      contents and a per-node validity word are persisted, links never are;
      recovery rebuilds reachability from valid node contents. *)

type t = Volatile | Link_persist | Link_cache | Nvtraverse | Link_free

let all = [ Volatile; Link_persist; Link_cache; Nvtraverse; Link_free ]

let to_string = function
  | Volatile -> "volatile"
  | Link_persist -> "link-and-persist"
  | Link_cache -> "link-cache"
  | Nvtraverse -> "nvtraverse"
  | Link_free -> "link-free"

let of_string = function
  | "volatile" | "dram" -> Ok Volatile
  | "lp" | "link-persist" | "link-and-persist" -> Ok Link_persist
  | "lc" | "link-cache" -> Ok Link_cache
  | "nvt" | "nvtraverse" -> Ok Nvtraverse
  | "lf" | "link-free" -> Ok Link_free
  | s -> Error ("unknown persist mode: " ^ s)

let is_durable = function
  | Volatile -> false
  | Link_persist | Link_cache | Nvtraverse | Link_free -> true

(* Link-cache acknowledgements are durable only up to the last flush of the
   cache, so a crash audit must tolerate acked-but-lost mutations there;
   every other durable mode fences before the response leaves. *)
let acks_durable = function
  | Volatile | Link_cache -> false
  | Link_persist | Nvtraverse | Link_free -> true

(* Which persist disciplines the sanitizer should hold the mode to. *)

(* Links are published with the unflushed mark and persisted in place. *)
let persists_links = function
  | Link_persist | Link_cache -> true
  | Volatile | Nvtraverse | Link_free -> false

(* Deleted nodes carry a durable validity word instead of durable links. *)
let uses_validity = function
  | Link_free -> true
  | Volatile | Link_persist | Link_cache | Nvtraverse -> false
