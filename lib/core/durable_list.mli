(** Log-free durable linked list: Harris' lock-free algorithm with the
    paper's link-and-persist durability discipline (section 3). The list
    hangs off a single head link word, so the hash table reuses these
    operations per bucket. All update entry points must run inside
    [Ctx.with_op] epoch brackets (the [ops] wrapper does this). *)

(** Size class of a list node (one cache line). *)
val size_class : int

(** Field offsets within a node (recovery tooling, tests). *)
val key_of : int -> int

val value_of : int -> int
val next_of : int -> int

(** Create a fresh, empty list in root slot [root]; returns the head link. *)
val create : Ctx.t -> root:int -> int

(** Head link of an existing list after recovery (same root). *)
val attach : Ctx.t -> root:int -> int

val search : Ctx.t -> tid:int -> head:int -> key:int -> int option
val insert : Ctx.t -> tid:int -> head:int -> key:int -> value:int -> bool
val remove : Ctx.t -> tid:int -> head:int -> key:int -> bool

(** Cursor-threading forms (the fast path the [~tid] forms shim onto):
    callers fetch [Ctx.cursor] once per operation. *)
val search_c : Ctx.t -> Nvm.Heap.cursor -> head:int -> key:int -> int option

val insert_c :
  Ctx.t -> Nvm.Heap.cursor -> head:int -> key:int -> value:int -> bool

val remove_c : Ctx.t -> Nvm.Heap.cursor -> head:int -> key:int -> bool

(** Quiescent traversal over all linked nodes, with each node's
    logical-deletion state. *)
val iter_nodes : Ctx.t -> tid:int -> head:int -> (int -> deleted:bool -> unit) -> unit

val size : Ctx.t -> tid:int -> head:int -> int
val to_list : Ctx.t -> tid:int -> head:int -> (int * int) list

(** Post-crash normalization (single-threaded): clear unflushed marks,
    complete half-done logical deletions, free their nodes, persist fixes.
    Run before the leak sweep. *)
val recover_consistency : Ctx.t -> head:int -> unit

(** Link-free rebuild support: validity-word offset within a node, and a
    durable reset to the empty list (head link zeroed and persisted). *)
val validity_off : int

val reset : Ctx.t -> head:int -> unit

(** Epoch-bracketed [Set_intf.ops] over the list rooted at [head]. *)
val ops : Ctx.t -> head:int -> Set_intf.ops
