(** Per-thread group-commit deferral state (NVServe batching, ISSUE 5).

    Under link-and-persist every link update pays its own fence. A server
    worker draining a pipeline of requests can do better: execute the whole
    batch with the unflushed marks {e left in place} and the write-backs
    parked in the cursor's pending buffer, then issue {e one} covering fence
    and clear every deferred mark. Responses are withheld until the covering
    fence retires, so an acked mutation is still durable before its reply
    hits the wire — the drill's strict audit contract is unchanged while the
    fence cost drops by the batch depth.

    One record exists per thread ([Ctx] owns the array); it is only ever
    touched by its owning domain, like a heap cursor. While a batch is open
    ([active]), [Link_persist.cas_link_c] routes successful CASes here
    instead of fencing: [defer_link] queues the line write-back, records the
    {e exact marked value} it installed, and announces the deferral to any
    attached observer ([A_lc_register], the same exemption the link cache
    uses — the sanitizer's flush-order and deref checkers treat a registered
    link as scheduled-for-durability rather than leaked).

    Recording the installed value (not just the address) makes the commit
    clear-pass ABA-safe: a deferred node can be helped, unlinked, retired and
    even reallocated before the batch commits, and a blind clear could strip
    an innocent mark from the reused word. The commit CAS only fires from
    the exact value this thread installed, which is no weaker than the eager
    path's two-CAS window.

    Allocation fences are deferred too: [owe_alloc_fence] notes that freshly
    initialized node lines were written back but not fenced; the debt is
    settled by the next publishing CAS (so "durably linked implies durably
    allocated" still holds, section 5.5) or at the covering fence, whichever
    comes first. *)

open Nvm

(* The link table sits on the per-request hot path (every deferred CAS
   records into it, every crossed unflushed link queries it), so it is a
   flat open-addressing int table rather than a [Hashtbl]: no per-add
   bucket allocation, no polymorphic hashing, and the commit clear-pass is
   one linear scan. Capacity stays a power of two; a batch of [max_batch]
   ops touches a few links each, so the table almost never grows past its
   initial 256 slots. *)

type t = {
  mutable active : bool;  (** a batch is open; cas_link defers to us *)
  mutable owe_fence : bool;
      (** node-init write-backs queued but not yet fenced *)
  mutable keys : int array;  (** link addresses; -1 = empty slot *)
  mutable vals : int array;
      (** marked value we installed at [keys.(i)] and must clear *)
  mutable n : int;  (** occupied slots *)
}

let initial_slots = 256

let make () =
  {
    active = false;
    owe_fence = false;
    keys = Array.make initial_slots (-1);
    vals = Array.make initial_slots 0;
    n = 0;
  }

let active t = t.active
let deferred_count t = t.n
let owes_alloc_fence t = t.owe_fence

(* Open-addressing probe: the slot holding [link], or the empty slot where
   it would go. [land mask] of the scrambled key is non-negative even when
   the product overflows. *)
let slot keys link =
  let mask = Array.length keys - 1 in
  let i = ref ((link * 0x2545F491) land mask) in
  while
    let k = Array.unsafe_get keys !i in
    k <> -1 && k <> link
  do
    i := (!i + 1) land mask
  done;
  !i

let grow t =
  let keys' = Array.make (2 * Array.length t.keys) (-1) in
  let vals' = Array.make (2 * Array.length t.vals) 0 in
  Array.iteri
    (fun i k ->
      if k <> -1 then begin
        let j = slot keys' k in
        keys'.(j) <- k;
        vals'.(j) <- t.vals.(i)
      end)
    t.keys;
  t.keys <- keys';
  t.vals <- vals'

let begin_batch t =
  t.active <- true

(** Note un-fenced node-initialization write-backs (deferred
    [persist_node]). *)
let owe_alloc_fence t = t.owe_fence <- true

(** Pay the allocation-fence debt now (before a publishing CAS makes the
    fresh node reachable). The fence also drains any deferred-link
    write-backs queued so far — harmless: their marks stay set and the
    commit clear-pass still runs. *)
let settle_alloc_fence t cu =
  if t.owe_fence then begin
    Heap.Cursor.fence cu;
    t.owe_fence <- false
  end

(** The marked value this batch installed at [link], if any. *)
let recorded_value t ~link =
  if t.n = 0 then None
  else
    let i = slot t.keys link in
    if Array.unsafe_get t.keys i = link then Some (Array.unsafe_get t.vals i)
    else None

(** Record a successful deferred link CAS: the line is queued for write-back
    and [marked] (the value installed, unflushed bit set) must be cleared
    after the covering fence. *)
let defer_link t cu ~link marked =
  Heap.Cursor.write_back cu link;
  (* Keep the table at most half full so probes stay short. *)
  if 2 * (t.n + 1) > Array.length t.keys then grow t;
  let i = slot t.keys link in
  if t.keys.(i) = -1 then begin
    t.keys.(i) <- link;
    t.n <- t.n + 1
  end;
  t.vals.(i) <- marked;
  let st = Heap.Cursor.stats cu in
  st.Pstats.deferred_links <- st.Pstats.deferred_links + 1;
  let heap = Heap.Cursor.heap cu in
  if Heap.observed heap then
    Heap.annotate heap ~tid:(Heap.Cursor.tid cu) (Heap.A_lc_register { link })

(** Close the batch: one covering fence for everything deferred, then clear
    each recorded unflushed mark (skipping links a helper already cleared or
    that have since changed). [ops] is the number of requests the batch
    executed, for the [group_ops] / [ops_per_commit] accounting. *)
let commit t cu ~ops =
  if t.active then begin
    let dirty = t.owe_fence || t.n > 0 || Heap.Cursor.pending_count cu > 0 in
    if dirty then begin
      Heap.Cursor.fence cu;
      let keys = t.keys and vals = t.vals in
      for i = 0 to Array.length keys - 1 do
        let link = Array.unsafe_get keys i in
        if link <> -1 then
          (* Helpers may have persisted+cleared the mark already, or the link
             may have moved on entirely; both mean nothing is owed here. *)
          let marked = Array.unsafe_get vals i in
          ignore
            (Heap.Cursor.cas cu link ~expected:marked
               ~desired:(Marked_ptr.clear_unflushed marked))
      done;
      let st = Heap.Cursor.stats cu in
      st.Pstats.group_commits <- st.Pstats.group_commits + 1;
      st.Pstats.group_ops <- st.Pstats.group_ops + ops
    end;
    if t.n > 0 then begin
      Array.fill t.keys 0 (Array.length t.keys) (-1);
      t.n <- 0
    end;
    t.owe_fence <- false;
    t.active <- false
  end
