(** NV-epochs: durable memory management for concurrent structures (sec. 5).

    Ties together the persistent allocator, epoch-based reclamation and the
    active page table:

    - [alloc_node] marks the page about to be allocated from as active
      {e before} allocating (Figure 4) — a durable write only on an APT miss;
    - [retire_node] marks the node's page active for unlinking, then hands
      the node to epoch-based reclamation; the node is freed once its
      generation's epoch snapshot is safe, and each freed generation costs a
      single fence;
    - the APT is trimmed when it outgrows its threshold, flushing the link
      cache first (section 5.4).

    A [Logged] mode implements the traditional alternative the paper compares
    against in Figure 9b: every allocation and every unlink writes and syncs
    a durable log record before proceeding. *)

open Nvm

type mem_mode = Nv | Logged

type generation = { snapshot : int array; nodes : int list }

type t = {
  heap : Heap.t;
  alloc : Nvalloc.t;
  apt : Active_page_table.t;
  epoch : Epoch.t;
  mem_mode : mem_mode;
  batch_size : int;
  open_batch : int list ref array;  (** per-tid nodes awaiting a snapshot *)
  open_count : int array;
  open_max_epoch : int array;  (** per-tid max unlink epoch in open batch *)
  limbo : generation Queue.t array;  (** per-tid sealed generations *)
  last_collected : int array;  (** per-tid own epoch of last freed gen *)
  mutable flush_lc : (tid:int -> unit) option;
  log_base : int;  (** per-tid durable scratch line for [Logged] mode *)
}

(** Heap words needed for the [Logged]-mode scratch lines. *)
let log_words_needed ~nthreads = nthreads * Cacheline.words_per_line

let create heap ~alloc ~apt ~epoch ?(mem_mode = Nv) ?(batch_size = 32) ~log_base
    () =
  let n = Epoch.nthreads epoch in
  {
    heap;
    alloc;
    apt;
    epoch;
    mem_mode;
    batch_size;
    open_batch = Array.init n (fun _ -> ref []);
    open_count = Array.make n 0;
    open_max_epoch = Array.make n 0;
    limbo = Array.init n (fun _ -> Queue.create ());
    last_collected = Array.make n 0;
    flush_lc = None;
    log_base;
  }

let set_link_cache_flusher t f = t.flush_lc <- Some f
let epoch t = t.epoch
let allocator t = t.alloc
let apt t = t.apt

(** Begin / end an operation (steps the thread's epoch). *)
let op_begin t ~tid = Epoch.enter t.epoch ~tid

(* Logged-mode record: one durable, synced write per event. *)
let log_event t cu addr =
  let tid = Heap.Cursor.tid cu in
  let line = t.log_base + (tid * Cacheline.words_per_line) in
  Heap.Cursor.store cu line addr;
  Heap.Cursor.persist cu line;
  let st = Heap.Cursor.stats cu in
  st.log_entries <- st.log_entries + 1

(** Allocate a node of [size_class] words, keeping the active page table
    current. The returned memory is marked allocated in durable allocator
    metadata (write-back issued, not awaited). *)
let alloc_node_c t cu ~size_class =
  let tid = Heap.Cursor.tid cu in
  (match t.mem_mode with
  | Logged ->
      let next = Nvalloc.next_alloc_addr_c t.alloc cu ~size_class in
      log_event t cu next
  | Nv ->
      let next = Nvalloc.next_alloc_addr_c t.alloc cu ~size_class in
      let page = Nvalloc.page_of t.alloc next in
      Active_page_table.ensure_active_c t.apt cu ~page
        ~epoch:(Epoch.current t.epoch ~tid)
        Active_page_table.Alloc);
  Nvalloc.alloc_c t.alloc cu ~size_class

let alloc_node t ~tid ~size_class =
  alloc_node_c t (Heap.cursor t.heap ~tid) ~size_class

(* Free a sealed generation: durable bitmap updates, then one fence. The
   annotation hands an observer the grace-period evidence — the epoch vector
   snapshotted at seal time and the vector now — before any slot is freed. *)
let free_generation t cu gen =
  let tid = Heap.Cursor.tid cu in
  if Heap.observed t.heap then
    Heap.annotate t.heap ~tid
      (Heap.A_reclaim
         {
           nodes = gen.nodes;
           snapshot = gen.snapshot;
           current = Epoch.snapshot ~tid t.epoch;
         });
  List.iter (fun addr -> Nvalloc.free_c t.alloc cu addr) gen.nodes;
  Heap.Cursor.fence cu;
  t.last_collected.(tid) <- max t.last_collected.(tid) gen.snapshot.(tid)

let try_collect t cu =
  let q = t.limbo.(Heap.Cursor.tid cu) in
  let rec loop () =
    match Queue.peek_opt q with
    | Some gen when Epoch.safe ~tid:(Heap.Cursor.tid cu) t.epoch gen.snapshot ->
        ignore (Queue.pop q);
        free_generation t cu gen;
        loop ()
    | Some _ ->
        (* Head generation still inside its grace period: some thread has
           not advanced past the sealed snapshot. Count the stall so the
           metrics layer can surface reclamation pressure. *)
        let st = Heap.Cursor.stats cu in
        st.epoch_stalls <- st.epoch_stalls + 1
    | None -> ()
  in
  loop ()

let seal t ~tid =
  if t.open_count.(tid) > 0 then begin
    let gen =
      { snapshot = Epoch.snapshot ~tid t.epoch; nodes = !(t.open_batch.(tid)) }
    in
    Queue.push gen t.limbo.(tid);
    t.open_batch.(tid) := [];
    t.open_count.(tid) <- 0
  end

(** Hand an unlinked node to reclamation. It will be freed (durably unmarked
    in the allocator bitmap) once no concurrent operation can still hold a
    reference. *)
let retire_node_c t cu addr =
  let tid = Heap.Cursor.tid cu in
  let e = Epoch.current t.epoch ~tid in
  (match t.mem_mode with
  | Logged -> log_event t cu addr
  | Nv ->
      let page = Nvalloc.page_of t.alloc addr in
      Active_page_table.ensure_active_c t.apt cu ~page ~epoch:e
        Active_page_table.Unlink);
  if Heap.observed t.heap then Heap.annotate t.heap ~tid (Heap.A_retire { addr });
  t.open_batch.(tid) := addr :: !(t.open_batch.(tid));
  t.open_count.(tid) <- t.open_count.(tid) + 1;
  t.open_max_epoch.(tid) <- max t.open_max_epoch.(tid) e;
  if t.open_count.(tid) >= t.batch_size then begin
    seal t ~tid;
    try_collect t cu
  end

let retire_node t ~tid addr = retire_node_c t (Heap.cursor t.heap ~tid) addr

(* APT trimming (section 5.4): an entry can go once (a) the epoch-based
   scheme has freed everything unlinked from its page by this thread, (b) the
   allocation that last touched it has completed, and (c) the link cache
   holds no entry that could concern it (ensured by a full flush). *)
let maybe_trim_apt t ~tid =
  if Active_page_table.needs_trim t.apt ~tid then begin
    (match t.flush_lc with Some f -> f ~tid | None -> ());
    let current = Epoch.current t.epoch ~tid in
    let removable (e : Active_page_table.entry) =
      e.last_unlink_epoch <= t.last_collected.(tid)
      && e.last_alloc_epoch < current
    in
    ignore (Active_page_table.trim t.apt ~tid ~removable)
  end

(** End an operation: steps the epoch, opportunistically collects limbo
    generations and trims the active page table. *)
let op_end_c t cu =
  let tid = Heap.Cursor.tid cu in
  Epoch.exit t.epoch ~tid;
  try_collect t cu;
  maybe_trim_apt t ~tid

let op_end t ~tid = op_end_c t (Heap.cursor t.heap ~tid)

(** Force-seal and collect everything collectable for [tid] (tests, clean
    shutdown). Other threads must be quiescent for full reclamation. *)
let drain t ~tid =
  seal t ~tid;
  try_collect t (Heap.cursor t.heap ~tid)

(** Fault injection (sanitizer regression corpus): seal and free {e every}
    generation retired by the cursor's thread immediately, skipping the
    grace-period check. A deliberate use-after-grace-period bug — never call
    outside the injected-bug tests. *)
let free_unsafely_c t cu =
  let tid = Heap.Cursor.tid cu in
  seal t ~tid;
  let q = t.limbo.(tid) in
  while not (Queue.is_empty q) do
    free_generation t cu (Queue.pop q)
  done

(** Nodes retired by [tid] but not yet freed (tests). *)
let pending_retired t ~tid =
  t.open_count.(tid)
  + Queue.fold (fun acc g -> acc + List.length g.nodes) 0 t.limbo.(tid)
