(** Execution context shared by all log-free structures: the simulated heap,
    the persist mode, the optional link cache, the NV-epochs memory manager,
    and the heap layout (root slots, static region, APT spans, log lines,
    allocator span).

    The layout is {e reconstructed}, not read, at recovery: [recover] reruns
    the same carving sequence on the crashed heap, so creation code and
    recovery code always agree on addresses — structures must therefore
    carve static space in the same order when creating and attaching. *)

type t

type config = {
  size_words : int;  (** total heap size *)
  nthreads : int;
  mode : Persist_mode.t;
  mem_mode : Nv_epochs.mem_mode;
  latency : Nvm.Latency_model.t;
  lc_buckets : int;  (** link-cache buckets (Link_cache mode) *)
  apt_entries : int;  (** active-page-table capacity per thread *)
  trim_threshold : int;  (** APT size that triggers a trim attempt *)
  page_words : int;  (** allocator page size *)
  n_roots : int;  (** root slots (one cache line each) *)
  static_words : int;  (** size of the static carve region *)
  reclaim_batch : int;  (** epoch-reclamation generation size *)
}

(** Sensible defaults: 1 Mi-word heap, 1 thread, link-and-persist, NV memory
    mode, no latency injection, 4 KiB pages. *)
val default_config : unit -> config

(** Create a fresh heap and context (initializes the durable layout). *)
val create : config -> t

(** Re-attach to a crashed heap: rebuilds the allocator from durable page
    metadata and returns the fresh context plus the pages that were durably
    active at crash time — the recovery sweep's worklist. Raises
    [Invalid_argument] if the heap carries no nvlf layout. *)
val recover : Nvm.Heap.t -> config -> t * int list

(** Durably-active pages of a crashed heap without rebuilding (reads the
    durable APT image; call before [recover] if needed separately). *)
val crashed_active_pages : Nvm.Heap.t -> config -> int list

(** Address of root slot [i]; each root lives on its own cache line. *)
val root_slot : t -> int -> int

(** Carve [n] words of static space (hash bucket arrays, head towers...).
    Same-order discipline applies across create/recover. *)
val carve_static : t -> int -> int

val heap : t -> Nvm.Heap.t

(** First address above the pointer-bearing prefix (root slots + static
    region); higher words outside allocated nodes are bookkeeping, never
    structure links. *)
val static_limit : t -> int

(** The calling domain's heap cursor (fetch once per operation, thread
    through all heap accesses — the fast path). *)
val cursor : t -> tid:int -> Nvm.Heap.cursor

(** The calling domain's group-commit deferral state (see {!Group_commit}).
    Single-domain use, like [cursor]. *)
val group_commit : t -> tid:int -> Group_commit.t

val mode : t -> Persist_mode.t
val mem : t -> Nv_epochs.t
val link_cache : t -> Link_cache.t option
val nthreads : t -> int
val allocator : t -> Nvm.Nvalloc.t

(** Run one data-structure operation inside epoch brackets. A crash
    exception propagates with the epoch left odd, exactly as a crashed
    thread would leave it. [name] labels the operation and [key] carries its
    key argument for an attached heap observer (pass a static string; both
    are only consulted when one is attached). *)
val with_op :
  ?name:string ->
  ?key:int ->
  ?ret:('a -> int) ->
  t ->
  tid:int ->
  (unit -> 'a) ->
  'a

(** [with_op] threading a pre-fetched cursor to the body — structures fetch
    the cursor once per operation and stay on the [_c] APIs inside. [ret]
    encodes the result into [A_op_end] for history recorders (only consulted
    when an observer is attached); without it the response is recorded as
    [Nvm.Heap.op_ret_unknown]. *)
val with_op_c :
  ?name:string ->
  ?key:int ->
  ?ret:('a -> int) ->
  t ->
  Nvm.Heap.cursor ->
  (Nvm.Heap.cursor -> 'a) ->
  'a
