(** Durable active-page tracking (section 5.4).

    Each thread keeps the set of memory pages it is currently allocating
    from or unlinking into. Page {e addresses} are durable — inserting one is
    the only logging NV-epochs ever does, and it is skipped whenever the page
    is already present (the common, local case measured in Figure 9a). The
    per-page metadata used for trimming (last allocation epoch, last unlink
    epoch) is volatile: it is only needed to decide when an entry may be
    dropped, never for recovery.

    Durable layout: one span of [entries_max] words per thread, carved from
    the heap at a fixed, reconstructible position; a zero word is an empty
    slot. *)

open Nvm

type entry = {
  page : int;
  slot : int;  (** index into the thread's durable span *)
  mutable last_alloc_epoch : int;
  mutable last_unlink_epoch : int;
}

type t = {
  heap : Heap.t;
  base : int;
  entries_max : int;
  nthreads : int;
  trim_threshold : int;
  tables : (int, entry) Hashtbl.t array;  (** per-tid page -> entry *)
  free_slots : int list ref array;  (** per-tid free durable slots *)
}

let span_words t = (t.entries_max + Cacheline.words_per_line - 1) / Cacheline.words_per_line * Cacheline.words_per_line

let slot_addr t ~tid slot = t.base + (tid * span_words t) + slot

(** Words of heap space needed for [nthreads] tables of [entries_max]
    entries (pass to [Region.carve]). *)
let words_needed ~nthreads ~entries_max =
  let per = (entries_max + Cacheline.words_per_line - 1) / Cacheline.words_per_line * Cacheline.words_per_line in
  nthreads * per

let create heap ~base ~nthreads ?(entries_max = 64) ?(trim_threshold = 16) () =
  let t =
    {
      heap;
      base;
      entries_max;
      nthreads;
      trim_threshold;
      tables = Array.init nthreads (fun _ -> Hashtbl.create 64);
      free_slots =
        Array.init nthreads (fun _ ->
            ref (List.init entries_max (fun i -> i)));
    }
  in
  (* Fresh table: zero the durable spans (they may hold garbage). *)
  for tid = 0 to nthreads - 1 do
    for slot = 0 to entries_max - 1 do
      Heap.store heap ~tid (slot_addr t ~tid slot) 0
    done;
    for slot = 0 to entries_max - 1 do
      if slot mod Cacheline.words_per_line = 0 then
        Heap.write_back heap ~tid (slot_addr t ~tid slot)
    done;
    Heap.fence heap ~tid
  done;
  t

let size t ~tid = Hashtbl.length t.tables.(tid)
let mem t ~tid ~page = Hashtbl.mem t.tables.(tid) page

type reason = Alloc | Unlink

(** Record that [page] is being used by the cursor's domain at [epoch]. A
    hit updates volatile metadata only; a miss appends the page address
    durably and {e waits} for the write-back — the sole logging cost of
    NV-epochs. *)
let ensure_active_c t cu ~page ~epoch reason =
  let tid = Heap.Cursor.tid cu in
  let st = Heap.Cursor.stats cu in
  match Hashtbl.find_opt t.tables.(tid) page with
  | Some e ->
      st.apt_hits <- st.apt_hits + 1;
      (match reason with
      | Alloc ->
          st.apt_alloc_hits <- st.apt_alloc_hits + 1;
          e.last_alloc_epoch <- max e.last_alloc_epoch epoch
      | Unlink ->
          st.apt_unlink_hits <- st.apt_unlink_hits + 1;
          e.last_unlink_epoch <- max e.last_unlink_epoch epoch)
  | None ->
      st.apt_misses <- st.apt_misses + 1;
      (match reason with
      | Alloc -> st.apt_alloc_misses <- st.apt_alloc_misses + 1
      | Unlink -> st.apt_unlink_misses <- st.apt_unlink_misses + 1);
      let slot =
        match !(t.free_slots.(tid)) with
        | [] -> failwith "Active_page_table: table full (raise entries_max)"
        | s :: rest ->
            t.free_slots.(tid) := rest;
            s
      in
      let e =
        {
          page;
          slot;
          last_alloc_epoch = (match reason with Alloc -> epoch | Unlink -> 0);
          last_unlink_epoch = (match reason with Unlink -> epoch | Alloc -> 0);
        }
      in
      Hashtbl.replace t.tables.(tid) page e;
      Heap.Cursor.store cu (slot_addr t ~tid slot) page;
      Heap.Cursor.persist cu (slot_addr t ~tid slot)

let ensure_active t ~tid ~page ~epoch reason =
  ensure_active_c t (Heap.cursor t.heap ~tid) ~page ~epoch reason

(** Drop every entry for which [removable] holds. The durable slot is zeroed
    with a write-back but no fence: a stale entry surviving a crash only
    causes extra recovery work, never incorrect recovery. *)
let trim t ~tid ~removable =
  let cu = Heap.cursor t.heap ~tid in
  let dropped = ref [] in
  Hashtbl.iter
    (fun page e -> if removable e then dropped := (page, e) :: !dropped)
    t.tables.(tid);
  List.iter
    (fun (page, e) ->
      Hashtbl.remove t.tables.(tid) page;
      t.free_slots.(tid) := e.slot :: !(t.free_slots.(tid));
      Heap.Cursor.store cu (slot_addr t ~tid e.slot) 0;
      Heap.Cursor.write_back cu (slot_addr t ~tid e.slot))
    !dropped;
  List.length !dropped

let needs_trim t ~tid = size t ~tid > t.trim_threshold

(** All pages currently marked active by [tid] (volatile view). *)
let active_pages t ~tid =
  Hashtbl.fold (fun page _ acc -> page :: acc) t.tables.(tid) []

(** Read the durable table contents — what recovery sees after a crash.
    [base], [nthreads] and [entries_max] must match the values used at
    creation time (they are reconstructed by re-running the layout code). *)
let durable_active_pages heap ~base ~nthreads ~entries_max =
  let per =
    (entries_max + Cacheline.words_per_line - 1)
    / Cacheline.words_per_line * Cacheline.words_per_line
  in
  let acc = ref [] in
  for tid = 0 to nthreads - 1 do
    for slot = 0 to entries_max - 1 do
      let v = Heap.durable_load heap (base + (tid * per) + slot) in
      if v <> 0 then acc := v :: !acc
    done
  done;
  List.sort_uniq compare !acc
