(** The link-and-persist operation (section 3) and its link-cache variant.

    [cas_link] is the single entry point structures use to change a link:

    - [Volatile]: a plain CAS;
    - [Link_persist]: CAS in the new value with the unflushed mark set,
      write it back, wait, then clear the mark. Any concurrent operation
      that reads the marked link may complete the last two steps itself
      ([help_unflushed]) — nobody ever blocks;
    - [Link_cache]: first try to register the update in the link cache
      (batched durability); fall back to link-and-persist when the cache
      cannot take the entry.

    [expected] and [desired] may carry algorithm marks (delete / flag / tag)
    but never the unflushed bit: callers clean what they read with
    [help_unflushed] before CASing, which is precisely the paper's "if an
    edge has changed ... the operation that changed it made sure it was
    durable" discipline.

    Every primitive has a [_c] form taking the caller's heap cursor; the
    [~tid] forms are shims for cold paths and tests. Structure traversals
    should fetch the cursor once ([Ctx.cursor]) and stay on the [_c] API.

    Race-model contract (NVRace): every shared-link mutation in this module
    is a CAS — including the helping path's mark-clear — never a plain
    store. That is what lets the detector treat a plain store as a private
    ownership claim: publishing or editing a reachable link through
    anything but [cas_link] is, by construction, a [racy-store]. *)

open Nvm

let read_c _ctx cu link = Heap.Cursor.load cu link
let read ctx ~tid link = Heap.load (Ctx.heap ctx) ~tid link

(** Given value [v] just loaded from [link]: if it carries the unflushed
    mark, make the line durable and clear the mark (helping). Returns the
    clean value currently believable for [link].

    Exception: while a group-commit batch is open, a thread re-reading a
    link {e it deferred itself} must not help it — that would pay the very
    fence the batch exists to amortize (an overwrite set traverses the
    bucket its own remove just marked). The mark stays set; the batch's
    covering fence and clear-pass will retire it. Only the exact recorded
    value is suppressed, so foreign marks (or our link after a helper and a
    stranger both touched it) are still helped normally. *)
let help_unflushed_c ctx cu ~link v =
  if not (Marked_ptr.is_unflushed v) then v
  else begin
    let gc = Ctx.group_commit ctx ~tid:(Heap.Cursor.tid cu) in
    if Group_commit.active gc && Group_commit.recorded_value gc ~link = Some v
    then Marked_ptr.clear_unflushed v
    else begin
      (match Ctx.mode ctx with
      | Persist_mode.Volatile -> ()
      (* The fence-minimal flavors never create unflushed marks, so helping
         one can only mean clearing a stale bit; there is nothing to sync. *)
      | Persist_mode.Nvtraverse | Persist_mode.Link_free -> ()
      | Persist_mode.Link_persist | Persist_mode.Link_cache ->
          Heap.Cursor.persist cu link);
      let clean = Marked_ptr.clear_unflushed v in
      ignore (Heap.Cursor.cas cu link ~expected:v ~desired:clean);
      clean
    end
  end

let help_unflushed ctx ~tid ~link v =
  help_unflushed_c ctx (Ctx.cursor ctx ~tid) ~link v

(** Load [link] and help-clear its unflushed mark if present. *)
let read_clean_c ctx cu link =
  let v = Heap.Cursor.load cu link in
  if Marked_ptr.is_unflushed v then help_unflushed_c ctx cu ~link v else v

let read_clean ctx ~tid link = read_clean_c ctx (Ctx.cursor ctx ~tid) link

let cas_plain cu ~link ~expected ~desired =
  Heap.Cursor.cas cu link ~expected ~desired

let cas_link_persist cu ~link ~expected ~desired =
  let marked = Marked_ptr.with_unflushed desired in
  if not (Heap.Cursor.cas cu link ~expected ~desired:marked) then false
  else begin
    Heap.Cursor.persist cu link;
    (* A helper may have already cleared the mark; either way it ends clear. *)
    ignore (Heap.Cursor.cas cu link ~expected:marked ~desired);
    true
  end

(* Group-commit variant of link-and-persist: install the marked value, queue
   the write-back, and leave both the fence and the mark-clear to the batch
   commit. Any outstanding allocation-fence debt is settled first so a fresh
   node is durably initialized before it becomes durably reachable.

   [expected] is clean (the caller read it through [help_unflushed], whose
   self-suppression strips our own deferred mark without clearing it) — so
   when this very batch already owns [link], memory actually still holds the
   recorded marked value. Try that first; fall back to the clean expected
   (a helper may have cleared the mark between our read and now). *)
let cas_link_deferred gc cu ~link ~expected ~desired =
  Group_commit.settle_alloc_fence gc cu;
  let marked = Marked_ptr.with_unflushed desired in
  let installed =
    match Group_commit.recorded_value gc ~link with
    | Some rv
      when Marked_ptr.equal (Marked_ptr.clear_unflushed rv) expected
           && Heap.Cursor.cas cu link ~expected:rv ~desired:marked ->
        true
    | _ -> Heap.Cursor.cas cu link ~expected ~desired:marked
  in
  if installed then Group_commit.defer_link gc cu ~link marked;
  installed

(** Atomically update [link] from [expected] to [desired] and make the update
    durable according to the context's persist mode. [key] identifies the
    update for the link cache. Returns false iff the CAS failed.

    While the calling thread has a group-commit batch open (link-and-persist
    mode only), the fence and mark-clear are deferred to the batch's
    covering commit instead of being paid here. *)
let cas_link_c ctx cu ~key ~link ~expected ~desired =
  assert (not (Marked_ptr.is_unflushed expected));
  assert (not (Marked_ptr.is_unflushed desired));
  match Ctx.mode ctx with
  | Persist_mode.Volatile -> cas_plain cu ~link ~expected ~desired
  | Persist_mode.Nvtraverse ->
      (* Fence-free: install the clean value, queue the line; the op's
         covering fence on the response path drains it. No unflushed mark —
         a reader that must rely on the link queues its own write-back at
         the boundary ([Nvtraverse.ensure_word_durable_c]). *)
      let ok = cas_plain cu ~link ~expected ~desired in
      if ok then Heap.Cursor.write_back cu link;
      ok
  | Persist_mode.Link_free ->
      (* Links are never persisted; durability lives in the validity words. *)
      cas_plain cu ~link ~expected ~desired
  | Persist_mode.Link_persist ->
      let gc = Ctx.group_commit ctx ~tid:(Heap.Cursor.tid cu) in
      if Group_commit.active gc then
        cas_link_deferred gc cu ~link ~expected ~desired
      else cas_link_persist cu ~link ~expected ~desired
  | Persist_mode.Link_cache -> (
      match Ctx.link_cache ctx with
      | None -> cas_link_persist cu ~link ~expected ~desired
      | Some lc -> (
          match
            Link_cache.try_link_and_add_c lc cu ~key ~link ~expected ~desired
          with
          | Link_cache.Added -> true
          | Link_cache.Cas_failed -> false
          | Link_cache.Cache_full ->
              cas_link_persist cu ~link ~expected ~desired))

let cas_link ctx ~tid ~key ~link ~expected ~desired =
  cas_link_c ctx (Ctx.cursor ctx ~tid) ~key ~link ~expected ~desired

(** Make everything previously linked for [key] durable before our caller's
    linearization point: in link-cache mode, scan the cache; in all durable
    modes, also clear a straggling unflushed mark on [link] if one is given.
    This is the "ensure adjacent edges are durable" step of section 3. *)
let make_durable_c ctx cu ~key ?link () =
  match Ctx.mode ctx with
  | Persist_mode.Volatile -> ()
  | Persist_mode.Nvtraverse ->
      (* The boundary of the NVTraverse discipline: queue a write-back for
         the adjacent link iff its line is dirty; the response-path fence
         drains it. No fence here, and clean positions queue nothing. *)
      (match link with
      | Some l -> Nvtraverse.ensure_word_durable_c (Ctx.heap ctx) cu l
      | None -> ())
  | Persist_mode.Link_free ->
      (* Links carry no durability; validity transitions are persisted at
         their own sites ([Link_free.mark_deleted_c]). *)
      ()
  | Persist_mode.Link_persist | Persist_mode.Link_cache ->
      (match Ctx.link_cache ctx with
      | Some lc -> Link_cache.scan_c lc cu ~key
      | None -> ());
      (match link with
      | Some l ->
          let v = Heap.Cursor.load cu l in
          if Marked_ptr.is_unflushed v then
            ignore (help_unflushed_c ctx cu ~link:l v)
      | None -> ())

let make_durable ctx ~tid ~key ?link () =
  make_durable_c ctx (Ctx.cursor ctx ~tid) ~key ?link ()

(** Persist freshly initialized node contents ([size_class] words starting at
    [addr]) and wait. The fence also drains the allocator's metadata
    write-backs, establishing "linked implies marked allocated" (sec. 5.5).

    With a group-commit batch open, the write-backs are queued but the fence
    becomes a debt ([owe_alloc_fence]) settled by the next publishing CAS —
    so consecutive allocations in one request (item + structure node) share
    one fence, and "durably linked implies durably allocated" still holds. *)
let persist_node_c ctx cu ~addr ~size_class =
  match Ctx.mode ctx with
  | Persist_mode.Volatile -> ()
  | Persist_mode.Link_persist | Persist_mode.Link_cache
  | Persist_mode.Nvtraverse | Persist_mode.Link_free ->
      let lines = (size_class + Cacheline.words_per_line - 1) / Cacheline.words_per_line in
      for i = 0 to lines - 1 do
        Heap.Cursor.write_back cu (addr + (i * Cacheline.words_per_line))
      done;
      let gc = Ctx.group_commit ctx ~tid:(Heap.Cursor.tid cu) in
      if Ctx.mode ctx = Persist_mode.Link_persist && Group_commit.active gc
      then Group_commit.owe_alloc_fence gc
      else Heap.Cursor.fence cu

let persist_node ctx ~tid ~addr ~size_class =
  persist_node_c ctx (Ctx.cursor ctx ~tid) ~addr ~size_class

(** {2 Group-commit batch brackets}

    [defer_begin_c] opens a batch on the calling thread: subsequent
    [cas_link_c] / [persist_node_c] calls defer their fences until
    [defer_commit_c], which issues one covering fence and clears the
    deferred marks. Only link-and-persist mode defers — the link cache has
    its own batching and volatile mode has nothing to fence — so both
    brackets are no-ops elsewhere and callers need not mode-switch. *)

let defer_begin_c ctx cu =
  match Ctx.mode ctx with
  | Persist_mode.Link_persist ->
      Group_commit.begin_batch
        (Ctx.group_commit ctx ~tid:(Heap.Cursor.tid cu))
  | Persist_mode.Volatile | Persist_mode.Link_cache
  | Persist_mode.Nvtraverse | Persist_mode.Link_free ->
      ()

let defer_commit_c ctx cu ~ops =
  match Ctx.mode ctx with
  | Persist_mode.Link_persist ->
      Group_commit.commit (Ctx.group_commit ctx ~tid:(Heap.Cursor.tid cu)) cu ~ops
  | Persist_mode.Volatile | Persist_mode.Link_cache
  | Persist_mode.Nvtraverse | Persist_mode.Link_free ->
      ()

let defer_begin ctx ~tid = defer_begin_c ctx (Ctx.cursor ctx ~tid)
let defer_commit ctx ~tid ~ops = defer_commit_c ctx (Ctx.cursor ctx ~tid) ~ops
