(** The link cache (section 4).

    A small, volatile, best-effort hash table holding the addresses of data
    structure links whose latest value has not yet been written back to
    NVRAM. Updates register links here instead of syncing them one at a time;
    when an operation needs one of them durable, the whole bucket is flushed
    as a single batch of write-backs followed by one fence.

    Layout mirrors the paper's Figure 2: each bucket models one cache line
    with six entries. The flush flag and the six 2-bit entry states
    (free / pending / busy) are packed into a single atomic word per bucket,
    so reservation and state transitions are single CASes. Hashes and link
    addresses live in plain arrays: they are only interpreted for entries
    whose state says they are valid, and a stale address read by a racing
    scan can at worst trigger a redundant (always safe) write-back.

    All heap traffic runs on the caller's cursor ([Nvm.Heap.Cursor]); the
    [~tid] entry points are shims. Spin-waits use [Nvm.Backoff]: bounded
    exponential [cpu_relax] that degrades to an OS-timeslice yield, because
    the awaited flusher may be descheduled when cores are scarce.

    No HTM here: we implement the paper's documented fallback path (marked
    link insertion via the pending state). *)

open Nvm

type t = {
  heap : Heap.t;
  nbuckets : int;
  states : int Atomic.t array;  (** bit 0 = flushing; bits 2i+1..2i+2 = entry i *)
  hashes : int array;  (** nbuckets * 6, 16-bit key hashes *)
  addrs : int array;  (** nbuckets * 6, link word addresses *)
}

let entries_per_bucket = 6
let flush_bit = 1

(* Entry states. *)
let st_free = 0
let st_pending = 1
let st_busy = 2
let state_of w i = (w lsr ((2 * i) + 1)) land 3

let with_state w i s =
  let shift = (2 * i) + 1 in
  w land lnot (3 lsl shift) lor (s lsl shift)

let is_flushing w = w land flush_bit <> 0

let create heap ?(nbuckets = 32) () =
  {
    heap;
    nbuckets;
    states = Array.init nbuckets (fun _ -> Atomic.make 0);
    hashes = Array.make (nbuckets * entries_per_bucket) 0;
    addrs = Array.make (nbuckets * entries_per_bucket) 0;
  }

let mix k =
  let h = k * 0x9E3779B97F4A7C1 in
  h lxor (h lsr 29)

let bucket_of t key = (mix key land max_int) mod t.nbuckets
let hash16 key = (mix key lsr 13) land 0xFFFF

(* Entry-state CAS helpers. *)

let rec transition t b i ~from_state ~to_state ~fail_if_flushing =
  let w = Atomic.get t.states.(b) in
  if fail_if_flushing && is_flushing w then false
  else if state_of w i <> from_state then false
  else if Atomic.compare_and_set t.states.(b) w (with_state w i to_state) then true
  else transition t b i ~from_state ~to_state ~fail_if_flushing

(* Retry a state transition until it succeeds (pending -> free and
   busy -> free always do eventually; only CAS contention is in the way). *)
let force_transition t b i ~from_state ~to_state =
  if not (transition t b i ~from_state ~to_state ~fail_if_flushing:false) then begin
    let bo = Backoff.make () in
    while not (transition t b i ~from_state ~to_state ~fail_if_flushing:false) do
      Backoff.once bo
    done
  end

(** Result of [try_link_and_add]. *)
type add_result =
  | Added  (** link updated; its durability is now the cache's business *)
  | Cas_failed  (** the link did not hold the expected value *)
  | Cache_full  (** no room / bucket flushing: caller must link-and-persist *)

(* A bucket with no free entry is batch-flushed by the caller needing room:
   one sync covers up to six parked links, keeping the cache useful even
   when no dependent operation happens to scan the keys (large key ranges).
   Exposed below as a forward reference to break the recursion with flush. *)
let flush_ref : (t -> Heap.cursor -> int -> unit) ref =
  ref (fun _ _ _ -> ())

(** Atomically update link word [link] from [expected] to [desired] and
    register it in the cache under [key]. Implements the paper's "Try Link
    and Add": the new link value carries the unflushed mark until the entry
    is finalized, so concurrent readers can tell it may not be durable.
    Contention failures give up after one attempt (constant worst case); a
    merely-full bucket is flushed once and retried. *)
let rec try_link_and_add_c ?(retried = false) t cu ~key ~link ~expected ~desired =
  let b = bucket_of t key in
  let w = Atomic.get t.states.(b) in
  if is_flushing w then Cache_full
  else begin
    (* Reserve a free entry: free -> pending. *)
    let rec find_free i =
      if i >= entries_per_bucket then -1
      else if state_of w i = st_free then i
      else find_free (i + 1)
    in
    let i = find_free 0 in
    if i < 0 then
      if retried then Cache_full
      else begin
        !flush_ref t cu b;
        try_link_and_add_c ~retried:true t cu ~key ~link ~expected ~desired
      end
    else if not (Atomic.compare_and_set t.states.(b) w (with_state w i st_pending))
    then Cache_full
    else begin
      let idx = (b * entries_per_bucket) + i in
      t.hashes.(idx) <- hash16 key;
      t.addrs.(idx) <- link;
      (* Install the new link value, marked not-yet-durable. *)
      let marked = Marked_ptr.with_unflushed desired in
      if not (Heap.Cursor.cas cu link ~expected ~desired:marked) then begin
        (* Undo the reservation; pending -> free always succeeds eventually. *)
        force_transition t b i ~from_state:st_pending ~to_state:st_free;
        let st = Heap.Cursor.stats cu in
        st.lc_fails <- st.lc_fails + 1;
        Cas_failed
      end
      else begin
        (* Finalize: pending -> busy. If a flush started meanwhile it may not
           see our entry, so persist the link ourselves and release it. *)
        let st = Heap.Cursor.stats cu in
        if transition t b i ~from_state:st_pending ~to_state:st_busy ~fail_if_flushing:true
        then begin
          (* The mark is cleared without a persist: the cache entry now owns
             this link's durability. Tell any observer so it does not read the
             clear as a lost write-back. *)
          if Heap.observed t.heap then
            Heap.annotate t.heap ~tid:(Heap.Cursor.tid cu)
              (Heap.A_lc_register { link });
          ignore (Heap.Cursor.cas cu link ~expected:marked ~desired);
          st.lc_adds <- st.lc_adds + 1;
          Added
        end
        else begin
          Heap.Cursor.persist cu link;
          ignore (Heap.Cursor.cas cu link ~expected:marked ~desired);
          force_transition t b i ~from_state:st_pending ~to_state:st_free;
          st.lc_adds <- st.lc_adds + 1;
          Added
        end
      end
    end
  end

let try_link_and_add ?retried t ~tid ~key ~link ~expected ~desired =
  try_link_and_add_c ?retried t (Heap.cursor t.heap ~tid) ~key ~link ~expected
    ~desired

(* Clear the unflushed mark of [link] if still set (its line is durable). *)
let clear_mark cu link =
  let v = Heap.Cursor.load cu link in
  if Marked_ptr.is_unflushed v then
    ignore (Heap.Cursor.cas cu link ~expected:v ~desired:(Marked_ptr.clear_unflushed v))

(** Write back every finalized entry of bucket [b] as one batch, wait for the
    batch, and release the entries. Repeats until no new busy entries appear
    (pending reservations taken before the flush flag was set may still
    finalize). Concurrent flushers wait for the active one. *)
let flush_bucket_c t cu b =
  let rec set_flag () =
    let w = Atomic.get t.states.(b) in
    if is_flushing w then begin
      (* Another thread is flushing this bucket; back off until it finishes
         (it may be descheduled — the backoff eventually yields). *)
      let bo = Backoff.make () in
      while is_flushing (Atomic.get t.states.(b)) do
        Backoff.once bo
      done;
      false
    end
    else if Atomic.compare_and_set t.states.(b) w (w lor flush_bit) then true
    else set_flag ()
  in
  if set_flag () then begin
    let st = Heap.Cursor.stats cu in
    st.lc_flushes <- st.lc_flushes + 1;
    let flushed = ref [] in
    let rec pass () =
      let w = Atomic.get t.states.(b) in
      let progress = ref false in
      for i = 0 to entries_per_bucket - 1 do
        if state_of w i = st_busy then begin
          let idx = (b * entries_per_bucket) + i in
          let link = t.addrs.(idx) in
          Heap.Cursor.write_back cu link;
          flushed := link :: !flushed;
          force_transition t b i ~from_state:st_busy ~to_state:st_free;
          progress := true
        end
      done;
      if !progress then pass ()
    in
    pass ();
    Heap.Cursor.fence cu;
    (* Links are durable; help clear their marks so readers stop helping. *)
    List.iter (fun link -> clear_mark cu link) !flushed;
    (* Release the flush flag. *)
    let rec clear_flag () =
      let w = Atomic.get t.states.(b) in
      if not (Atomic.compare_and_set t.states.(b) w (w land lnot flush_bit)) then
        clear_flag ()
    in
    clear_flag ()
  end

let flush_bucket t ~tid b = flush_bucket_c t (Heap.cursor t.heap ~tid) b
let () = flush_ref := flush_bucket_c

(** Make every link pertaining to [key] durable (section 4's Scan): a busy
    entry triggers a bucket flush; a pending entry whose link update is
    already visible gets written back directly. Cheap when the bucket has no
    matching entry — the common case. *)
let scan_c t cu ~key =
  let b = bucket_of t key in
  let h = hash16 key in
  let w = Atomic.get t.states.(b) in
  let need_flush = ref false in
  for i = 0 to entries_per_bucket - 1 do
    let s = state_of w i in
    if s <> st_free then begin
      let idx = (b * entries_per_bucket) + i in
      if t.hashes.(idx) = h then
        if s = st_busy then need_flush := true
        else begin
          (* Pending: if the updating CAS already landed, persist it here so
             our linearization point safely follows it. *)
          let link = t.addrs.(idx) in
          if link > 0 && link < Heap.size_words t.heap then begin
            let v = Heap.Cursor.load cu link in
            if Marked_ptr.is_unflushed v then begin
              Heap.Cursor.persist cu link;
              clear_mark cu link
            end
          end
        end
    end
  done;
  if !need_flush then flush_bucket_c t cu b

let scan t ~tid ~key = scan_c t (Heap.cursor t.heap ~tid) ~key

(** Flush every bucket (active-page-table trimming, clean shutdown). *)
let flush_all t ~tid =
  let cu = Heap.cursor t.heap ~tid in
  for b = 0 to t.nbuckets - 1 do
    flush_bucket_c t cu b
  done

(** Number of busy or pending entries (tests). *)
let occupancy t =
  let n = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let w = Atomic.get t.states.(b) in
    for i = 0 to entries_per_bucket - 1 do
      if state_of w i <> st_free then incr n
    done
  done;
  !n

let nbuckets t = t.nbuckets
