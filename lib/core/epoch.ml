(** Epoch-based quiescence detection (section 5.2).

    Each thread owns a counter: odd while inside a data-structure operation,
    even between operations. An unlinked node can be freed once every thread
    that was mid-operation when the node was unlinked has since stepped its
    counter — i.e. once the current epoch vector dominates the vector recorded
    at unlink time on the active positions. This is the volatile core of
    NV-epochs; nothing here needs to survive a crash (a restart empties all
    thread states by definition).

    The counters are OCaml [Atomic]s, invisible to the heap's observer
    stream — yet they carry the happens-before edges the reclamation
    protocol rests on (a reader's epoch exit happens-before the collector's
    grace-period check). When a heap is supplied at [create], the counter
    traffic is announced to attached observers as [A_hb_release] (enter /
    exit: the thread publishes its causal past through its counter) and
    [A_hb_acquire] (snapshot / safe: the caller happens-after every counter
    it read), keyed by the virtual object [Nvm.Heap.epoch_hb_obj]. Race
    detectors replay these as vector-clock joins. *)

type t = {
  counters : int Atomic.t array;
  nthreads : int;
  heap : Nvm.Heap.t option;
}

let create ?heap ~nthreads () =
  if nthreads < 1 || nthreads > Nvm.Pstats.max_threads then
    invalid_arg "Epoch.create";
  { counters = Array.init nthreads (fun _ -> Atomic.make 0); nthreads; heap }

let nthreads t = t.nthreads
let current t ~tid = Atomic.get t.counters.(tid)
let is_active e = e land 1 = 1

(* Announce that [tid] released through (or acquired) counter [obj_tid]'s
   virtual sync object. Only consulted when an observer is attached. *)
let note_release t ~tid =
  match t.heap with
  | Some heap when Nvm.Heap.observed heap ->
      Nvm.Heap.annotate heap ~tid
        (Nvm.Heap.A_hb_release { obj = Nvm.Heap.epoch_hb_obj ~tid })
  | _ -> ()

let note_acquire t ~tid ~obj_tid =
  match t.heap with
  | Some heap when Nvm.Heap.observed heap ->
      Nvm.Heap.annotate heap ~tid
        (Nvm.Heap.A_hb_acquire { obj = Nvm.Heap.epoch_hb_obj ~tid:obj_tid })
  | _ -> ()

(** Begin an operation: step the counter to odd. *)
let enter t ~tid =
  let e = Atomic.get t.counters.(tid) in
  assert (not (is_active e));
  Atomic.set t.counters.(tid) (e + 1);
  note_release t ~tid

(** End an operation: step the counter to even. *)
let exit t ~tid =
  let e = Atomic.get t.counters.(tid) in
  assert (is_active e);
  Atomic.set t.counters.(tid) (e + 1);
  note_release t ~tid

(** The current epoch vector. [tid] names the reading thread for the
    observer stream; callers off the reclamation path may omit it and forgo
    the happens-before announcement. *)
let snapshot ?tid t =
  let snap = Array.init t.nthreads (fun i -> Atomic.get t.counters.(i)) in
  (match tid with
  | Some tid ->
      for i = 0 to t.nthreads - 1 do
        note_acquire t ~tid ~obj_tid:i
      done
  | None -> ());
  snap

(** [safe t snap] is true once every thread that was active (odd) in [snap]
    has advanced past its snapshotted epoch, so no references taken before
    the snapshot can still be held. On success the caller happens-after
    every tracked epoch exit ([A_hb_acquire] per counter when [tid] is
    given). *)
let safe ?tid t snap =
  let ok = ref true in
  for i = 0 to t.nthreads - 1 do
    if is_active snap.(i) && Atomic.get t.counters.(i) = snap.(i) then ok := false
  done;
  (match tid with
  | Some tid when !ok ->
      for i = 0 to t.nthreads - 1 do
        note_acquire t ~tid ~obj_tid:i
      done
  | _ -> ());
  !ok
