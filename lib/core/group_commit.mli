(** Per-thread group-commit deferral state.

    While a batch is open ([begin_batch] .. [commit]),
    [Link_persist.cas_link_c] records successful link updates here with
    their unflushed marks left set and their write-backs parked in the
    cursor's pending buffer; [commit] issues {e one} covering fence and
    clears every recorded mark. A server releases buffered responses only
    after [commit] returns, so acked mutations are durable before their
    replies leave — the fence cost of a pipelined batch drops from one per
    mutation to one per batch.

    Single-domain use only: each record belongs to one thread (fetch via
    [Ctx.group_commit]), exactly like a heap cursor. *)

type t

val make : unit -> t

(** Whether a batch is open on this thread. *)
val active : t -> bool

(** Open a batch (idempotent). Subsequent [cas_link_c] / [persist_node_c]
    calls on this thread defer their fences until [commit]. *)
val begin_batch : t -> unit

(** Note that node-initialization write-backs were queued without a fence;
    the debt is settled by the next publishing CAS or by [commit]. *)
val owe_alloc_fence : t -> unit

(** Fence now if an allocation-fence debt is outstanding ("durably linked
    implies durably allocated" — called before a publishing CAS). *)
val settle_alloc_fence : t -> Nvm.Heap.cursor -> unit

(** The marked value this batch installed at [link], if it is still owed a
    clear — lets the owner recognize (and skip helping) its own deferred
    links. *)
val recorded_value : t -> link:int -> int option

(** Record a successful deferred link CAS of [marked] (unflushed bit set)
    into [link]: queues the line write-back, remembers the value for the
    commit clear-pass, and announces [A_lc_register] to observers. *)
val defer_link : t -> Nvm.Heap.cursor -> link:int -> int -> unit

(** Close the batch: one covering fence (skipped when nothing was deferred
    and no write-backs are pending), then clear each recorded mark with a
    value-matched CAS (ABA-safe; helped or moved-on links are skipped).
    Bumps [group_commits] / [group_ops] when a fence was issued. [ops] is
    the number of requests the batch executed. *)
val commit : t -> Nvm.Heap.cursor -> ops:int -> unit

(** {2 Telemetry} *)

(** Links recorded in the open batch and still owed a commit clear — the
    batch's current link debt. *)
val deferred_count : t -> int

(** Whether an allocation-fence debt is outstanding (node-init write-backs
    queued, no fence yet). *)
val owes_alloc_fence : t -> bool
