(** The link cache (paper section 4): a small, volatile, best-effort hash
    table holding the addresses of data-structure links whose latest value
    has not yet been written back to NVRAM, so write-backs happen in batches
    of up to six per sync instead of one at a time.

    Each bucket models one cache line (Figure 2): six entries with
    free/pending/busy states and a flush flag packed into one atomic word,
    plus 16-bit key hashes and link addresses. No HTM: this is the paper's
    documented fallback path. *)

type t

val create : Nvm.Heap.t -> ?nbuckets:int -> unit -> t

(** Bucket index a key maps to (tests, diagnostics). *)
val bucket_of : t -> int -> int

type add_result =
  | Added  (** link updated; its durability is now the cache's business *)
  | Cas_failed  (** the link did not hold the expected value *)
  | Cache_full  (** contention/flush in the way: caller link-and-persists *)

(** Atomically update [link] from [expected] to [desired] and register it in
    the cache under [key] (the paper's "Try Link and Add"). The new value
    carries the unflushed mark until the entry is finalized. Contention
    failures give up after one attempt (constant worst case); a merely-full
    bucket is batch-flushed once and retried. *)
val try_link_and_add :
  ?retried:bool ->
  t ->
  tid:int ->
  key:int ->
  link:int ->
  expected:int ->
  desired:int ->
  add_result

(** [try_link_and_add] with the caller-supplied heap cursor (the fast path
    the [~tid] version shims onto). *)
val try_link_and_add_c :
  ?retried:bool ->
  t ->
  Nvm.Heap.cursor ->
  key:int ->
  link:int ->
  expected:int ->
  desired:int ->
  add_result

(** Write back every finalized entry of one bucket as a single batch, wait,
    release the entries, and help-clear the links' unflushed marks.
    Concurrent flushers of the same bucket wait for the active one. *)
val flush_bucket : t -> tid:int -> int -> unit

(** [flush_bucket] on a caller-supplied cursor. *)
val flush_bucket_c : t -> Nvm.Heap.cursor -> int -> unit

(** Make every cached link pertaining to [key] durable before the caller's
    linearization point (the paper's "Scan"): a busy match triggers a bucket
    flush; a pending match whose update already landed is persisted
    directly. Cheap when the bucket has no matching entry. *)
val scan : t -> tid:int -> key:int -> unit

(** [scan] on a caller-supplied cursor. *)
val scan_c : t -> Nvm.Heap.cursor -> key:int -> unit

(** Flush every bucket (APT trimming, checkpoints, clean shutdown). *)
val flush_all : t -> tid:int -> unit

(** Number of non-free entries (tests). *)
val occupancy : t -> int

val nbuckets : t -> int
