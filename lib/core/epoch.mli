(** Epoch-based quiescence detection (paper section 5.2). Each thread's
    counter is odd while inside an operation; an unlinked node is safe to
    free once the epoch vector has advanced past the snapshot taken at
    unlink time on all then-active positions. Volatile state only.

    With a [heap] supplied at [create], counter traffic is announced to
    attached heap observers as [A_hb_release] / [A_hb_acquire] on the
    virtual sync object [Nvm.Heap.epoch_hb_obj] — the happens-before edges
    a race detector needs to see the reclamation protocol's ordering. *)

type t

val create : ?heap:Nvm.Heap.t -> nthreads:int -> unit -> t
val nthreads : t -> int
val current : t -> tid:int -> int
val is_active : int -> bool

(** Begin an operation: step the counter to odd. Asserts proper nesting. *)
val enter : t -> tid:int -> unit

(** End an operation: step the counter to even. *)
val exit : t -> tid:int -> unit

(** The current epoch vector. [tid] names the reading thread so the reads
    can be announced as acquire edges; omit it off the reclamation path. *)
val snapshot : ?tid:int -> t -> int array

(** True once every thread active in the snapshot has since advanced. When
    [tid] is given, a successful check announces the acquire edges. *)
val safe : ?tid:int -> t -> int array -> bool
