(** NV-epochs: durable memory management for concurrent structures (paper
    section 5), tying together the persistent allocator, epoch-based
    reclamation and the durable active page table.

    In the default [Nv] mode the only durable logging is an active-page-table
    miss; the [Logged] mode implements the traditional
    log-every-allocation/unlink alternative the paper compares against in
    Figure 9b. *)

type t

type mem_mode = Nv | Logged

(** Words of heap space the [Logged] mode's per-thread scratch lines need
    (pass the carved base as [log_base]). *)
val log_words_needed : nthreads:int -> int

val create :
  Nvm.Heap.t ->
  alloc:Nvm.Nvalloc.t ->
  apt:Active_page_table.t ->
  epoch:Epoch.t ->
  ?mem_mode:mem_mode ->
  ?batch_size:int ->
  log_base:int ->
  unit ->
  t

(** Register the link-cache flusher called before APT trimming. *)
val set_link_cache_flusher : t -> (tid:int -> unit) -> unit

val epoch : t -> Epoch.t
val allocator : t -> Nvm.Nvalloc.t
val apt : t -> Active_page_table.t

(** Operation brackets: step the thread's epoch; [op_end] also collects
    quiesced limbo generations and trims the active page table. *)
val op_begin : t -> tid:int -> unit

val op_end : t -> tid:int -> unit

(** [op_end] on a caller-supplied heap cursor (the fast path). *)
val op_end_c : t -> Nvm.Heap.cursor -> unit

(** Allocate a node, marking the page about to be used as active {e before}
    allocating (Figure 4) — a durable write only on an APT miss. *)
val alloc_node : t -> tid:int -> size_class:int -> int

val alloc_node_c : t -> Nvm.Heap.cursor -> size_class:int -> int

(** Hand an unlinked node to epoch-based reclamation; its page is marked
    active for unlinking. The node is freed (durable bitmap clear + one
    fence per generation) once no concurrent operation can hold it. *)
val retire_node : t -> tid:int -> int -> unit

val retire_node_c : t -> Nvm.Heap.cursor -> int -> unit

(** Force-seal and collect everything collectable for [tid] (tests, clean
    shutdown); full reclamation needs other threads quiescent. *)
val drain : t -> tid:int -> unit

(** Fault injection (sanitizer regression corpus): free every generation
    retired by the cursor's thread {e immediately}, skipping the
    grace-period check. A deliberate bug — only for the injected-bug
    tests. *)
val free_unsafely_c : t -> Nvm.Heap.cursor -> unit

(** Nodes retired by [tid] not yet freed (tests). *)
val pending_retired : t -> tid:int -> int
