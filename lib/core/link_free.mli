(** Per-node validity words for [Persist_mode.Link_free]: contents are
    persisted, links never are; recovery rebuilds reachability from the
    validity verdicts. All functions are no-ops outside link-free mode. *)

val invalid : int
(** 0 — no committed node in this slot (fresh, raced-out, or router). *)

val valid : int
(** 1 — committed set member; durable before the node is reachable. *)

val deleted : int
(** 2 — removed; durable before the remove's response. *)

val valid_item : int
(** 3 — committed KV-cache item payload; distinct from [valid] so a
    recovery scan can classify slots by validity word alone. *)

val active : Ctx.t -> bool
(** True iff the context runs in link-free mode. *)

(** Set a node's validity word before [Link_persist.persist_node_c]; the
    pre-publish fence persists contents and verdict together. *)
val init_c : Ctx.t -> Nvm.Heap.cursor -> validity_word:int -> state:int -> unit

(** Record (or help record) a deletion: CAS in [deleted] if not already
    there, announce [Heap.A_validity], queue the write-back. Idempotent;
    clean already-deleted words cost nothing. *)
val mark_deleted_c : Ctx.t -> Nvm.Heap.cursor -> validity_word:int -> unit

(** Durably retract a lost-race node's [valid] verdict before freeing it. *)
val invalidate_c : Ctx.t -> Nvm.Heap.cursor -> validity_word:int -> unit
