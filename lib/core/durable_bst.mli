(** Log-free durable binary search tree (Natarajan-Mittal lock-free external
    tree). Deletion flags the victim's incoming edge (the durable
    linearization point), then tags the sibling edge and splices the sibling
    up to the grandparent; helping makes both phases lock-free. Recovery
    completes durably-flagged deletions bottom-up, including the paper's
    flag carry-over. *)

type t

(** Create the sentinel structure (five static nodes — next static carve). *)
val create : Ctx.t -> t

(** Re-attach after recovery (same carve). *)
val attach : Ctx.t -> t

val search : Ctx.t -> t -> tid:int -> key:int -> int option
val insert : Ctx.t -> t -> tid:int -> key:int -> value:int -> bool
val remove : Ctx.t -> t -> tid:int -> key:int -> bool

(** Cursor-threading forms (the fast path the [~tid] forms shim onto). *)
val search_c : Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> int option

val insert_c : Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> value:int -> bool
val remove_c : Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> bool

(** Quiescent traversal over live user leaves. *)
val iter_leaves : Ctx.t -> tid:int -> t -> (int -> deleted:bool -> unit) -> unit

(** Every reachable node, interior and leaf, including static sentinels
    (leak sweeps filter by allocator span). *)
val iter_all_nodes : Ctx.t -> tid:int -> t -> (int -> unit) -> unit

val size : Ctx.t -> tid:int -> t -> int
val to_list : Ctx.t -> tid:int -> t -> (int * int) list

(** Post-crash normalization: clear tags and unflushed marks, complete
    flagged deletions (with upward flag carry), free spliced-out nodes. *)
val recover_consistency : Ctx.t -> t -> unit

(** Link-free rebuild support: validity-word offset within a node (only
    leaves are ever valid), and a durable reset to the empty sentinel
    tree. *)
val validity_off : int

val reset : Ctx.t -> t -> unit

val ops : Ctx.t -> t -> Set_intf.ops
