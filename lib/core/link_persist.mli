(** The link-and-persist operation (paper section 3) and its link-cache
    variant — the single way structures change a link.

    [expected]/[desired] may carry algorithm marks (delete/flag/tag) but
    never the unflushed bit: callers clean what they read with
    [help_unflushed] before CASing.

    The [_c] forms take the caller's heap cursor ([Ctx.cursor], fetched once
    per operation) and are the hot path; the [~tid] forms shim onto them. *)

(** Raw load of a link word. *)
val read : Ctx.t -> tid:int -> int -> int

val read_c : Ctx.t -> Nvm.Heap.cursor -> int -> int

(** Given value [v] just loaded from [link]: if it carries the unflushed
    mark, persist the line and clear the mark (helping — never blocks).
    Returns the believable clean value. *)
val help_unflushed : Ctx.t -> tid:int -> link:int -> int -> int

val help_unflushed_c : Ctx.t -> Nvm.Heap.cursor -> link:int -> int -> int

(** Load and help-clear in one step. *)
val read_clean : Ctx.t -> tid:int -> int -> int

val read_clean_c : Ctx.t -> Nvm.Heap.cursor -> int -> int

(** Atomically update [link] from [expected] to [desired] and make the
    update durable per the context's persist mode: plain CAS (volatile),
    link-and-persist (mark, sync, unmark), or link-cache registration with
    LP fallback. [key] identifies the update for the cache. False iff the
    CAS failed. *)
val cas_link :
  Ctx.t -> tid:int -> key:int -> link:int -> expected:int -> desired:int -> bool

val cas_link_c :
  Ctx.t ->
  Nvm.Heap.cursor ->
  key:int ->
  link:int ->
  expected:int ->
  desired:int ->
  bool

(** Make everything previously linked for [key] durable before the caller's
    linearization point: scans the link cache and clears a straggling mark
    on [link] — the "adjacent edges durable" step of section 3. *)
val make_durable : Ctx.t -> tid:int -> key:int -> ?link:int -> unit -> unit

val make_durable_c :
  Ctx.t -> Nvm.Heap.cursor -> key:int -> ?link:int -> unit -> unit

(** Persist freshly initialized node contents and wait; the fence also
    drains the allocator's metadata write-backs, establishing
    "durably linked implies durably allocated" (section 5.5). *)
val persist_node : Ctx.t -> tid:int -> addr:int -> size_class:int -> unit

val persist_node_c : Ctx.t -> Nvm.Heap.cursor -> addr:int -> size_class:int -> unit

(** {2 Group-commit batch brackets}

    [defer_begin] opens a batch on the calling thread: subsequent
    [cas_link] / [persist_node] calls leave their unflushed marks set and
    their write-backs pending instead of fencing; [defer_commit] issues one
    covering fence for the whole batch, clears the deferred marks, and
    closes the batch. A server must withhold responses until [defer_commit]
    returns — then an acked mutation is durable before its reply leaves,
    same contract as the eager path at a fraction of the fences.

    Deferral only engages in link-and-persist mode (the link cache batches
    on its own; volatile has nothing to fence): both brackets are no-ops
    elsewhere, so callers need not mode-switch. [ops] is the number of
    requests the batch executed, for [Pstats] group accounting. *)

val defer_begin : Ctx.t -> tid:int -> unit
val defer_begin_c : Ctx.t -> Nvm.Heap.cursor -> unit
val defer_commit : Ctx.t -> tid:int -> ops:int -> unit
val defer_commit_c : Ctx.t -> Nvm.Heap.cursor -> ops:int -> unit
