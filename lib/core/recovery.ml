(** Post-crash leak reclamation (section 5.5).

    After [recover_consistency] has restored a structure, the only remaining
    damage a crash can leave is {e allocated-but-unreachable} nodes: memory
    whose allocation bitmap bit reached NVRAM but whose linking (or
    unlinking's free) did not. NV-epochs guarantees every such node lives in
    a page that was durably marked active, so only those pages are swept —
    the reason recovery runs in milliseconds rather than a full-heap GC pass.

    Both strategies of the paper are implemented:

    - [sweep_search]: for every allocated address in an active page, search
      the structure for the node's key and keep the node only if the search
      returns this exact address (condition (ii) of the paper: an uninitialized
      node can masquerade as a real key). Best with fast search methods
      (hash table, skip list, BST).
    - [sweep_traversal]: traverse the structure once, remember which reachable
      nodes fall in active pages, then free every allocated address of those
      pages that was not seen. Best for the linked list, whose search is
      linear (the paper's mark-and-sweep-like strategy). *)

open Nvm

let pages_of_interest ctx ~active_pages =
  (* Deduplicate and keep only pages the allocator actually manages. *)
  let alloc = Ctx.allocator ctx in
  List.sort_uniq compare active_pages
  |> List.filter (fun p ->
         match Nvalloc.page_of alloc p with
         | q -> q = p
         | exception Invalid_argument _ -> false)

(** Search-based sweep. [locate ~key] must return the address of the live
    node holding [key], if any. Returns the number of nodes freed. *)
let sweep_search ctx ~active_pages ~locate =
  let tid = 0 in
  let alloc = Ctx.allocator ctx in
  let heap = Ctx.heap ctx in
  let freed = ref 0 in
  let sweep_page page =
    Nvalloc.iter_allocated alloc ~tid ~page (fun addr ->
        let key = Heap.load heap ~tid addr in
        let live = match locate ~key with Some node -> node = addr | None -> false in
        if not live then begin
          Nvalloc.free alloc ~tid addr;
          incr freed
        end)
  in
  List.iter sweep_page (pages_of_interest ctx ~active_pages);
  Heap.fence heap ~tid;
  !freed

(** Traversal-based sweep. [iter] must call its argument once per reachable
    node address (including interior nodes for trees). Returns the number of
    nodes freed. *)
let sweep_traversal ctx ~active_pages ~iter =
  let tid = 0 in
  let alloc = Ctx.allocator ctx in
  let heap = Ctx.heap ctx in
  let pages = pages_of_interest ctx ~active_pages in
  let page_set = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace page_set p ()) pages;
  let reachable = Hashtbl.create 1024 in
  iter (fun addr ->
      match Nvalloc.page_of alloc addr with
      | p when Hashtbl.mem page_set p -> Hashtbl.replace reachable addr ()
      | _ -> ()
      | exception Invalid_argument _ -> ());
  let freed = ref 0 in
  List.iter
    (fun page ->
      Nvalloc.iter_allocated alloc ~tid ~page (fun addr ->
          if not (Hashtbl.mem reachable addr) then begin
            Nvalloc.free alloc ~tid addr;
            incr freed
          end))
    pages;
  Heap.fence heap ~tid;
  !freed

(** Parallel variant of [sweep_traversal] (the paper notes both recovery
    strategies parallelize): the reachability walk stays sequential, then
    the active pages are partitioned across [nworkers] domains which scan
    bitmaps and free leaked nodes independently (bitmap updates are CAS-safe
    and recycle bins are per-thread). Worth it once page counts are large. *)
let sweep_traversal_parallel ctx ~active_pages ~iter ~nworkers =
  let alloc = Ctx.allocator ctx in
  let heap = Ctx.heap ctx in
  let pages = Array.of_list (pages_of_interest ctx ~active_pages) in
  let page_set = Hashtbl.create 64 in
  Array.iter (fun p -> Hashtbl.replace page_set p ()) pages;
  let reachable = Hashtbl.create 1024 in
  iter (fun addr ->
      match Nvalloc.page_of alloc addr with
      | p when Hashtbl.mem page_set p -> Hashtbl.replace reachable addr ()
      | _ -> ()
      | exception Invalid_argument _ -> ());
  let nworkers = max 1 (min nworkers (Array.length pages)) in
  let freed = Array.make nworkers 0 in
  let worker w () =
    let i = ref w in
    while !i < Array.length pages do
      Nvalloc.iter_allocated alloc ~tid:w ~page:pages.(!i) (fun addr ->
          if not (Hashtbl.mem reachable addr) then begin
            Nvalloc.free alloc ~tid:w addr;
            freed.(w) <- freed.(w) + 1
          end);
      i := !i + nworkers
    done;
    Heap.fence heap ~tid:w
  in
  if nworkers = 1 then worker 0 ()
  else begin
    let ds = List.init (nworkers - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    List.iter Domain.join ds
  end;
  Array.fold_left ( + ) 0 freed

(** Link-free rebuild (the recovery side of [Persist_mode.Link_free]):
    links are never persisted, so post-crash reachability is reconstructed
    from node contents alone. Every allocated slot of every initialized page
    is classified by its validity word at [validity_off] — only
    [Link_free.valid] slots survive, as (key, value) read from the uniform
    [+0]/[+1] layout. All slots are then freed, the structure is [reset] to
    empty, and the survivors are reinserted through the structure's own
    [insert] (rebuilding links, towers and routers as a side effect). The
    whole heap's worth of pages is scanned — this is the flavor's
    recovery-time-vs-size trade, in exchange for zero link persistence at
    run time. Returns the number of nodes rebuilt. *)
let rebuild_link_free ?(ordered = false) ctx ~validity_off ~reset ~insert =
  let tid = 0 in
  let alloc = Ctx.allocator ctx in
  let heap = Ctx.heap ctx in
  (* Collect first: freeing flips the very bitmaps being iterated. *)
  let slots = ref [] and survivors = ref [] in
  Timeline.span_current "lf.scan" ~detail:"classify slots by validity word"
    (fun () ->
      List.iter
        (fun page ->
          Nvalloc.iter_allocated alloc ~tid ~page (fun addr ->
              slots := addr :: !slots))
        (Nvalloc.initialized_pages alloc ~tid);
      survivors :=
        List.filter_map
          (fun addr ->
            if Heap.load heap ~tid (addr + validity_off) = Link_free.valid then
              Some (Heap.load heap ~tid addr, Heap.load heap ~tid (addr + 1))
            else None)
          !slots);
  Timeline.span_current "lf.free" ~detail:"free all slots" (fun () ->
      List.iter (fun addr -> Nvalloc.free alloc ~tid addr) !slots;
      Heap.fence heap ~tid);
  Timeline.span_current "lf.reinsert" ~detail:"reset and reinsert survivors"
    (fun () ->
      reset ();
      (* FIFO shapes store an arrival sequence number in the key word and
         need it respected on reinsertion; sets don't care about order. *)
      let survivors =
        if ordered then
          List.sort (fun (a, _) (b, _) -> compare a b) !survivors
        else !survivors
      in
      List.iter (fun (key, value) -> insert ~key ~value) survivors);
  Timeline.span_current "lf.fence" (fun () -> Heap.fence heap ~tid);
  List.length !survivors

(** Allocated nodes in active pages that the structure cannot reach —
    should be zero after a sweep (tests). *)
let leak_count ctx ~active_pages ~iter =
  let tid = 0 in
  let alloc = Ctx.allocator ctx in
  let reachable = Hashtbl.create 1024 in
  iter (fun addr -> Hashtbl.replace reachable addr ());
  let leaks = ref 0 in
  List.iter
    (fun page ->
      Nvalloc.iter_allocated alloc ~tid ~page (fun addr ->
          if not (Hashtbl.mem reachable addr) then incr leaks))
    (pages_of_interest ctx ~active_pages);
  !leaks
