(** Execution context shared by all log-free structures.

    Bundles the simulated heap, the persist mode, the optional link cache and
    the NV-epochs memory manager, and owns the heap layout:

    {v
    word 0            heap magic
    root slots        one cache line per slot; structure roots
    static region     carved by structures (hash buckets, head towers...)
    APT spans         durable active-page tables, one per thread
    log lines         scratch lines for Logged memory mode
    allocator span    everything else, in pages
    v}

    The layout is reconstructed (not read) at recovery: [recover] re-runs the
    same carving sequence on the crashed heap, so creation code and recovery
    code always agree on addresses. *)

open Nvm

let heap_magic = 0x4E564C46 (* "NVLF" *)

type t = {
  heap : Heap.t;
  mode : Persist_mode.t;
  lc : Link_cache.t option;
  mem : Nv_epochs.t;
  nthreads : int;
  root_base : int;
  n_roots : int;
  static : Region.t;  (** static carve-out for structure-owned spans *)
  apt_base : int;
  apt_entries : int;
  defers : Group_commit.t array;  (** per-thread group-commit state *)
}

type config = {
  size_words : int;
  nthreads : int;
  mode : Persist_mode.t;
  mem_mode : Nv_epochs.mem_mode;
  latency : Latency_model.t;
  lc_buckets : int;
  apt_entries : int;
  trim_threshold : int;
  page_words : int;
  n_roots : int;
  static_words : int;
  reclaim_batch : int;
}

let default_config () =
  {
    size_words = 1 lsl 20;
    nthreads = 1;
    mode = Persist_mode.Link_persist;
    mem_mode = Nv_epochs.Nv;
    latency = Latency_model.no_injection ();
    lc_buckets = 32;
    apt_entries = 128;
    trim_threshold = 64;
    page_words = 512;
    n_roots = 8;
    static_words = 1 lsl 16;
    reclaim_batch = 256;
  }

(* Carve the fixed layout; identical for creation and recovery. *)
let layout (cfg : config) =
  let r = Region.make ~base:Cacheline.words_per_line ~limit:cfg.size_words in
  let root_base = Region.carve r (cfg.n_roots * Cacheline.words_per_line) in
  let static_base = Region.carve r cfg.static_words in
  let apt_base =
    Region.carve r
      (Active_page_table.words_needed ~nthreads:cfg.nthreads
         ~entries_max:cfg.apt_entries)
  in
  let log_base = Region.carve r (Nv_epochs.log_words_needed ~nthreads:cfg.nthreads) in
  Region.align_to r cfg.page_words;
  let alloc_base = Region.position r in
  let alloc_words = cfg.size_words - alloc_base in
  (root_base, static_base, apt_base, log_base, alloc_base, alloc_words)

let build heap (cfg : config) ~fresh ~alloc =
  let root_base, static_base, apt_base, log_base, _, _ = layout cfg in
  let epoch = Epoch.create ~heap ~nthreads:cfg.nthreads () in
  let apt =
    Active_page_table.create heap ~base:apt_base ~nthreads:cfg.nthreads
      ~entries_max:cfg.apt_entries ~trim_threshold:cfg.trim_threshold ()
  in
  let mem =
    Nv_epochs.create heap ~alloc ~apt ~epoch ~mem_mode:cfg.mem_mode
      ~batch_size:cfg.reclaim_batch ~log_base ()
  in
  let lc =
    match cfg.mode with
    | Persist_mode.Link_cache ->
        let lc = Link_cache.create heap ~nbuckets:cfg.lc_buckets () in
        Nv_epochs.set_link_cache_flusher mem (fun ~tid ->
            Link_cache.flush_all lc ~tid);
        Some lc
    | Persist_mode.Volatile | Persist_mode.Link_persist
    | Persist_mode.Nvtraverse | Persist_mode.Link_free ->
        None
  in
  if fresh then begin
    Heap.store heap ~tid:0 0 heap_magic;
    for i = 0 to cfg.n_roots - 1 do
      Heap.store heap ~tid:0 (root_base + (i * Cacheline.words_per_line)) 0
    done;
    for i = 0 to cfg.n_roots - 1 do
      Heap.write_back heap ~tid:0 (root_base + (i * Cacheline.words_per_line))
    done;
    Heap.persist heap ~tid:0 0
  end;
  {
    heap;
    mode = cfg.mode;
    lc;
    mem;
    nthreads = cfg.nthreads;
    root_base;
    n_roots = cfg.n_roots;
    static = Region.make ~base:static_base ~limit:(static_base + cfg.static_words);
    apt_base;
    apt_entries = cfg.apt_entries;
    defers = Array.init cfg.nthreads (fun _ -> Group_commit.make ());
  }

(** Create a fresh heap and context. *)
let create (cfg : config) =
  let heap = Heap.create ~latency:cfg.latency ~size_words:cfg.size_words () in
  let _, _, _, _, alloc_base, alloc_words = layout cfg in
  let alloc =
    Nvalloc.create heap ~base:alloc_base ~size_words:alloc_words
      ~page_words:cfg.page_words ()
  in
  build heap cfg ~fresh:true ~alloc

(** Pages that were durably marked active when the heap crashed. Read this
    {e before} [recover] (which reinitializes the table). *)
let crashed_active_pages heap (cfg : config) =
  let _, _, apt_base, _, _, _ = layout cfg in
  Active_page_table.durable_active_pages heap ~base:apt_base
    ~nthreads:cfg.nthreads ~entries_max:cfg.apt_entries

(** Re-attach to a crashed heap: rebuilds the allocator from durable page
    metadata and returns a fresh context plus the set of pages that were
    active at crash time (the recovery sweep's worklist). *)
let recover heap (cfg : config) =
  Timeline.span_current "ctx.recover" (fun () ->
      if Heap.load heap ~tid:0 0 <> heap_magic then
        invalid_arg "Ctx.recover: heap has no NVLF layout";
      let active =
        Timeline.span_current "ctx.apt"
          ~detail:"read durable active-page table" (fun () ->
            crashed_active_pages heap cfg)
      in
      let _, _, _, _, alloc_base, alloc_words = layout cfg in
      let alloc =
        Timeline.span_current "ctx.alloc"
          ~detail:"rebuild allocator from page metadata" (fun () ->
            Nvalloc.recover heap ~base:alloc_base ~size_words:alloc_words
              ~page_words:cfg.page_words ~nthreads:cfg.nthreads ())
      in
      let t =
        Timeline.span_current "ctx.layout" ~detail:"re-carve heap layout"
          (fun () -> build heap cfg ~fresh:false ~alloc)
      in
      (t, active))

(** Address of root slot [i] (each root lives on its own cache line). *)
let root_slot (t : t) i =
  if i < 0 || i >= t.n_roots then invalid_arg "Ctx.root_slot";
  t.root_base + (i * Cacheline.words_per_line)

(** Carve [n] words of static space (hash bucket arrays, head towers).
    Structures must carve in the same order at create and recover time. *)
let carve_static (t : t) n = Region.carve t.static n

let heap (t : t) = t.heap

(** First address above the pointer-bearing prefix (root slots + static
    region). Words at or above this that are not inside allocated nodes are
    bookkeeping (APT, log lines, allocator metadata), never structure
    links — the sanitizer uses this to tell roots from metadata. *)
let static_limit (t : t) = t.apt_base

(** The calling domain's heap cursor — the hot-path handle every structure
    operation should fetch once and thread through its heap accesses. *)
let cursor (t : t) ~tid = Heap.cursor t.heap ~tid

(** The calling domain's group-commit deferral state (see {!Group_commit}).
    Single-domain use, like [cursor]. *)
let group_commit (t : t) ~tid = t.defers.(tid)

let mode (t : t) = t.mode
let mem (t : t) = t.mem
let link_cache (t : t) = t.lc
let nthreads (t : t) = t.nthreads
let allocator t = Nv_epochs.allocator t.mem

(** Bracket an operation with epoch enter/exit, threading the calling
    domain's cursor to the body — the hot-path form. [name] labels the
    operation for an attached heap observer (violation reports and trace
    spans name the offending op) and [key] carries its key argument; pass a
    static string, both are only consulted when an observer is attached. *)
let with_op_c ?(name = "op") ?(key = 0) ?ret (t : t) cu f =
  let tid = Heap.Cursor.tid cu in
  let obs = Heap.observed t.heap in
  if obs then Heap.annotate t.heap ~tid (Heap.A_op_begin { name; key });
  Nv_epochs.op_begin t.mem ~tid;
  match f cu with
  | v ->
      (* Fence-minimal flavors defer their write-backs to one covering
         fence on the response path: everything the op queued (links under
         NVTraverse, validity words under link-free) becomes durable here,
         before the response can be returned — and before [op_end_c] can
         hand any node the op unlinked to reclamation. Reads over clean
         lines queue nothing, so they stay fence-free. *)
      (match t.mode with
      | Persist_mode.Nvtraverse | Persist_mode.Link_free ->
          if Heap.Cursor.pending_count cu > 0 then Heap.Cursor.fence cu
      | Persist_mode.Volatile | Persist_mode.Link_persist
      | Persist_mode.Link_cache ->
          ());
      Nv_epochs.op_end_c t.mem cu;
      if obs then begin
        let ret =
          match ret with Some enc -> enc v | None -> Heap.op_ret_unknown
        in
        Heap.annotate t.heap ~tid (Heap.A_op_end { ret })
      end;
      v
  | exception e ->
      (* A crash exception aborts mid-operation; the epoch is left odd, as a
         real crashed thread would leave it. Any other exception propagates
         after restoring balance. *)
      (match e with
      | Heap.Crashed -> ()
      | _ ->
          Nv_epochs.op_end_c t.mem cu;
          if obs then
            Heap.annotate t.heap ~tid
              (Heap.A_op_end { ret = Heap.op_ret_unknown }));
      raise e

(** Bracket an operation with epoch enter/exit. *)
let with_op ?name ?key ?ret (t : t) ~tid f =
  with_op_c ?name ?key ?ret t (Heap.cursor t.heap ~tid) (fun _cu -> f ())
