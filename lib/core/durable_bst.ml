(** Log-free durable binary search tree (Natarajan-Mittal algorithm).

    The lock-free external BST of Natarajan and Mittal [PPoPP'14] with the
    section-3 durability discipline. Internal nodes route; leaves hold the
    set. Deletion works in two phases: {e injection} flags the edge to the
    victim leaf (the linearization point), then {e cleanup} tags the sibling
    edge and splices the sibling into the victim's grandparent, helping rules
    making both phases lock-free.

    Durable steps: the insert edge CAS, the delete flag CAS and the cleanup
    splice CAS all go through [Link_persist.cas_link]; tags are volatile
    helping state and are only written back lazily (recovery clears them).
    Every edge followed by [seek] is help-persisted, so each operation's
    dependencies are durable before it acts — the paper's recipe.

    Edge encoding on child pointers: bit 0 = FLAG (pending delete of the
    leaf below), bit 2 = TAG (sibling pinned for splicing), bit 1 = the
    link-and-persist unflushed mark.

    Node layout (one cache line): {v +0 key +1 value +2 left +3 right v}.
    A node is a leaf iff its left child is null. Sentinels: root [R] (key
    inf2) and [S] (key inf1) with leaves inf0/inf1/inf2; user keys are all
    smaller than inf0, so sentinels are never removed.

    Hot-path operations thread the caller's heap cursor ([_c] forms). *)

open Nvm

type t = { r : int; s : int }

let size_class = Cacheline.words_per_line
let key_of node = node
let value_of node = node + 1
let left_of node = node + 2
let right_of node = node + 3

(* Link-free validity word (a pad word of the same cache line). Only leaves
   are ever [valid] — internal routers must not be resurrected by the
   rebuild, so they are explicitly [invalid]. *)
let validity_of node = node + 4
let inf0 = Set_intf.max_key + 1
let inf1 = Set_intf.max_key + 2
let inf2 = Set_intf.max_key + 3

let read_key cu node = Heap.Cursor.load cu (key_of node)
let read_value cu node = Heap.Cursor.load cu (value_of node)

(* Edge from [node] toward [k], and its sibling. *)
let child_link cu node k =
  if k < read_key cu node then left_of node else right_of node

let sibling_link cu node k =
  if k < read_key cu node then right_of node else left_of node

let is_leaf cu node = Marked_ptr.addr (Heap.Cursor.load cu (left_of node)) = 0

(* Sentinel construction: five static nodes, persisted once. *)
let init_node ctx ~tid node ~key ~left ~right =
  let heap = Ctx.heap ctx in
  Heap.store heap ~tid (key_of node) key;
  Heap.store heap ~tid (value_of node) 0;
  Heap.store heap ~tid (left_of node) left;
  Heap.store heap ~tid (right_of node) right;
  Heap.write_back heap ~tid node

let create ctx =
  let base = Ctx.carve_static ctx (5 * size_class) in
  let r = base
  and s = base + size_class
  and l0 = base + (2 * size_class)
  and l1 = base + (3 * size_class)
  and l2 = base + (4 * size_class) in
  let tid = 0 in
  init_node ctx ~tid l0 ~key:inf0 ~left:0 ~right:0;
  init_node ctx ~tid l1 ~key:inf1 ~left:0 ~right:0;
  init_node ctx ~tid l2 ~key:inf2 ~left:0 ~right:0;
  init_node ctx ~tid s ~key:inf1 ~left:l0 ~right:l1;
  init_node ctx ~tid r ~key:inf2 ~left:s ~right:l2;
  Heap.fence (Ctx.heap ctx) ~tid;
  { r; s }

let attach ctx =
  let base = Ctx.carve_static ctx (5 * size_class) in
  { r = base; s = base + size_class }

(* Seek (Algorithm 2): descend to the leaf for [k], tracking the deepest
   untagged edge (ancestor -> successor) and the leaf's parent. Every edge
   followed is cleaned of unflushed marks. *)
type seek_record = {
  ancestor : int;
  successor : int;
  parent : int;
  leaf : int;
  leaf_edge : int;  (** value of the parent -> leaf edge as read *)
}

let seek ctx cu t k =
  let rec descend ~ancestor ~successor ~parent ~edge =
    let current = Marked_ptr.addr edge in
    if is_leaf cu current then
      { ancestor; successor; parent; leaf = current; leaf_edge = edge }
    else begin
      let ancestor, successor =
        if not (Marked_ptr.is_tagged edge) then (parent, current)
        else (ancestor, successor)
      in
      let next_edge = Link_persist.read_clean_c ctx cu (child_link cu current k) in
      descend ~ancestor ~successor ~parent:current ~edge:next_edge
    end
  in
  let edge = Link_persist.read_clean_c ctx cu (child_link cu t.s k) in
  descend ~ancestor:t.r ~successor:t.s ~parent:t.s ~edge

(* Retire the subtree spliced out by a successful cleanup CAS: everything
   under [root] except the subtree kept at [keep]. The splice winner is the
   unique caller, and epochs keep the memory valid for concurrent readers. *)
let rec retire_subtree ctx cu ~keep root =
  if root <> keep then begin
    let left = Marked_ptr.addr (Heap.Cursor.load cu (left_of root)) in
    let right = Marked_ptr.addr (Heap.Cursor.load cu (right_of root)) in
    if left <> 0 then retire_subtree ctx cu ~keep left;
    if right <> 0 then retire_subtree ctx cu ~keep right;
    Nv_epochs.retire_node_c (Ctx.mem ctx) cu root
  end

(* Cleanup (Algorithm 5): tag the sibling edge, then splice the sibling up to
   the ancestor, carrying over the sibling's flag. Returns true iff this call
   performed the splice. *)
let cleanup ctx cu t k (sr : seek_record) =
  ignore t;
  let ancestor_link = child_link cu sr.ancestor k in
  let child = child_link cu sr.parent k in
  let sibling = sibling_link cu sr.parent k in
  (* If the edge toward k is not flagged, we are helping a delete that
     flagged the sibling edge: splice out the k side instead. *)
  let sibling =
    if Marked_ptr.is_deleted (Heap.Cursor.load cu child) then sibling else child
  in
  (* Tag the sibling edge so it cannot change under the splice. *)
  let rec tag () =
    let sv = Link_persist.read_clean_c ctx cu sibling in
    if Marked_ptr.is_tagged sv then ()
    else if not (Heap.Cursor.cas cu sibling ~expected:sv ~desired:(Marked_ptr.with_tag sv))
    then tag ()
    else Heap.Cursor.write_back cu sibling
  in
  tag ();
  let sv = Heap.Cursor.load cu sibling in
  let keep = Marked_ptr.addr sv in
  (* The new ancestor edge: sibling subtree, keeping its flag, dropping tag. *)
  let new_child =
    if Marked_ptr.is_deleted sv then Marked_ptr.with_delete keep else keep
  in
  if
    Link_persist.cas_link_c ctx cu ~key:k ~link:ancestor_link
      ~expected:sr.successor ~desired:new_child
  then begin
    retire_subtree ctx cu ~keep sr.successor;
    true
  end
  else false

let make_leaf_edge_durable ctx cu ~k (sr : seek_record) =
  Link_persist.make_durable_c ctx cu ~key:k ~link:(child_link cu sr.parent k) ()

(** Search: the leaf holds [k] and its incoming edge is not flagged. *)
let search_c ctx t cu ~key =
  let sr = seek ctx cu t key in
  make_leaf_edge_durable ctx cu ~k:key sr;
  if read_key cu sr.leaf = key then begin
    let edge = Heap.Cursor.load cu (child_link cu sr.parent key) in
    if Marked_ptr.is_deleted edge then begin
      (* Absent because of a pending delete: under link-free, our answer
         rides on that deletion's verdict — help-persist it. *)
      Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of sr.leaf);
      None
    end
    else Some (read_value cu sr.leaf)
  end
  else None

let search ctx t ~tid ~key = search_c ctx t (Ctx.cursor ctx ~tid) ~key

let rec insert_c ctx t cu ~key ~value =
  let sr = seek ctx cu t key in
  let leaf_key = read_key cu sr.leaf in
  let edge_now = Heap.Cursor.load cu (child_link cu sr.parent key) in
  if leaf_key = key && not (Marked_ptr.is_deleted edge_now) then begin
    make_leaf_edge_durable ctx cu ~k:key sr;
    false
  end
  else if
    Marked_ptr.same_addr edge_now sr.leaf
    && (Marked_ptr.is_deleted edge_now || Marked_ptr.is_tagged edge_now)
  then begin
    (* The position is being spliced; help, then retry. *)
    ignore (cleanup ctx cu t key sr);
    insert_c ctx t cu ~key ~value
  end
  else begin
    let mem = Ctx.mem ctx in
    let new_leaf = Nv_epochs.alloc_node_c mem cu ~size_class in
    Heap.Cursor.store cu (key_of new_leaf) key;
    Heap.Cursor.store cu (value_of new_leaf) value;
    Heap.Cursor.store cu (left_of new_leaf) 0;
    Heap.Cursor.store cu (right_of new_leaf) 0;
    Link_free.init_c ctx cu ~validity_word:(validity_of new_leaf)
      ~state:Link_free.valid;
    let new_internal = Nv_epochs.alloc_node_c mem cu ~size_class in
    let left, right =
      if key < leaf_key then (new_leaf, sr.leaf) else (sr.leaf, new_leaf)
    in
    Heap.Cursor.store cu (key_of new_internal) (max key leaf_key);
    Heap.Cursor.store cu (value_of new_internal) 0;
    Heap.Cursor.store cu (left_of new_internal) left;
    Heap.Cursor.store cu (right_of new_internal) right;
    (* A recycled slot may still read durably [valid]; kill the verdict. *)
    Link_free.init_c ctx cu ~validity_word:(validity_of new_internal)
      ~state:Link_free.invalid;
    (* One fence covers both nodes and the allocator metadata. *)
    Heap.Cursor.write_back cu new_leaf;
    Link_persist.persist_node_c ctx cu ~addr:new_internal ~size_class;
    if
      Link_persist.cas_link_c ctx cu ~key
        ~link:(child_link cu sr.parent key)
        ~expected:sr.leaf ~desired:new_internal
    then true
    else begin
      (* The pre-publish fence already made the leaf durably [valid];
         retract the verdict before recycling the slot. *)
      Link_free.invalidate_c ctx cu ~validity_word:(validity_of new_leaf);
      Nvalloc.free_c (Ctx.allocator ctx) cu new_leaf;
      Nvalloc.free_c (Ctx.allocator ctx) cu new_internal;
      let v = Heap.Cursor.load cu (child_link cu sr.parent key) in
      if
        Marked_ptr.same_addr v sr.leaf
        && (Marked_ptr.is_deleted v || Marked_ptr.is_tagged v)
      then ignore (cleanup ctx cu t key sr);
      insert_c ctx t cu ~key ~value
    end
  end

let insert ctx t ~tid ~key ~value =
  insert_c ctx t (Ctx.cursor ctx ~tid) ~key ~value

let remove_c ctx t cu ~key =
  (* Injection phase: flag the victim's incoming edge (linearization). *)
  let rec inject () =
    let sr = seek ctx cu t key in
    if read_key cu sr.leaf <> key then begin
      make_leaf_edge_durable ctx cu ~k:key sr;
      false
    end
    else begin
      let link = child_link cu sr.parent key in
      let edge = Link_persist.read_clean_c ctx cu link in
      if not (Marked_ptr.same_addr edge sr.leaf) then inject ()
      else if Marked_ptr.is_deleted edge then begin
        (* Another delete linearized first; help it finish. Link-free:
           help-persist its deletion verdict, which our answer rides on. *)
        Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of sr.leaf);
        ignore (cleanup ctx cu t key sr);
        make_leaf_edge_durable ctx cu ~k:key sr;
        false
      end
      else if Marked_ptr.is_tagged edge then begin
        ignore (cleanup ctx cu t key sr);
        inject ()
      end
      else if
        Link_persist.cas_link_c ctx cu ~key ~link ~expected:sr.leaf
          ~desired:(Marked_ptr.with_delete sr.leaf)
      then begin
        (* Link-free: the deletion verdict, durable by our op-end fence. *)
        Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of sr.leaf);
        (* Cleanup phase: splice until our victim is out of the tree. *)
        let victim = sr.leaf in
        let rec finish sr =
          if cleanup ctx cu t key sr then ()
          else begin
            let sr' = seek ctx cu t key in
            if sr'.leaf = victim && read_key cu sr'.leaf = key then finish sr'
          end
        in
        finish sr;
        true
      end
      else inject ()
    end
  in
  inject ()

let remove ctx t ~tid ~key = remove_c ctx t (Ctx.cursor ctx ~tid) ~key

(* Quiescent traversal over live leaves (skips flagged edges). *)
let iter_leaves ctx ~tid t f =
  let cu = Ctx.cursor ctx ~tid in
  let rec go edge =
    let node = Marked_ptr.addr edge in
    if node <> 0 then
      if is_leaf cu node then begin
        let k = read_key cu node in
        if k < inf0 then f node ~deleted:(Marked_ptr.is_deleted edge)
      end
      else begin
        go (Heap.Cursor.load cu (left_of node));
        go (Heap.Cursor.load cu (right_of node))
      end
  in
  go (Heap.Cursor.load cu (left_of t.r))

let size ctx ~tid t =
  let n = ref 0 in
  iter_leaves ctx ~tid t (fun _ ~deleted -> if not deleted then incr n);
  !n

(** Every node reachable from the root, interior and leaf alike, including
    the static sentinels (callers that sweep allocator pages filter those out
    by address). Quiescent use only. *)
let iter_all_nodes ctx ~tid t f =
  let cu = Ctx.cursor ctx ~tid in
  let rec go node =
    if node <> 0 then begin
      f node;
      let l = Marked_ptr.addr (Heap.Cursor.load cu (left_of node)) in
      if l <> 0 then begin
        go l;
        go (Marked_ptr.addr (Heap.Cursor.load cu (right_of node)))
      end
    end
  in
  go t.r

let to_list ctx ~tid t =
  let cu = Ctx.cursor ctx ~tid in
  let acc = ref [] in
  iter_leaves ctx ~tid t (fun node ~deleted ->
      if not deleted then acc := (read_key cu node, read_value cu node) :: !acc);
  List.rev !acc

(* Recovery: normalize the durable tree bottom-up. Unflushed marks and tags
   are cleared (restart machinery state); flagged edges are completed by
   splicing the sibling up, freeing the victim leaf and its parent. A flag
   carried by the surviving sibling edge propagates upward, exactly like the
   flag carry-over in cleanup. Returns with a clean, consistent tree. *)
let recover_consistency ctx t =
  let cu = Ctx.cursor ctx ~tid:0 in
  let alloc = Ctx.allocator ctx in
  let in_alloc_span addr =
    match Nvalloc.page_of alloc addr with
    | (_ : int) -> true
    | exception Invalid_argument _ -> false
  in
  let free_node node = if in_alloc_span node then Nvalloc.free_c alloc cu node in
  (* Returns (replacement subtree root, deleted flag to carry upward). *)
  let rec norm edge =
    let node = Marked_ptr.addr edge in
    if node = 0 || is_leaf cu node then (node, Marked_ptr.is_deleted edge)
    else begin
      let l, lf = norm (Heap.Cursor.load cu (left_of node)) in
      let r, rf = norm (Heap.Cursor.load cu (right_of node)) in
      if lf && rf then begin
        (* Both children deleted: the node collapses and the deletion of the
           surviving side continues at the level above. *)
        free_node l;
        free_node node;
        (r, true)
      end
      else if lf then begin
        free_node l;
        free_node node;
        (r, false)
      end
      else if rf then begin
        free_node r;
        free_node node;
        (l, false)
      end
      else begin
        Heap.Cursor.store cu (left_of node) l;
        Heap.Cursor.store cu (right_of node) r;
        Heap.Cursor.write_back cu node;
        (node, Marked_ptr.is_deleted edge)
      end
    end
  in
  let fix_root_edge link =
    let sub, f = norm (Heap.Cursor.load cu link) in
    assert (not f);
    (* sentinel leaves are never deleted *)
    Heap.Cursor.store cu link sub;
    Heap.Cursor.write_back cu link
  in
  fix_root_edge (left_of t.s);
  fix_root_edge (right_of t.s);
  fix_root_edge (left_of t.r);
  fix_root_edge (right_of t.r);
  Heap.Cursor.fence cu

(* Link-free rebuild support: the validity-word offset for slot
   classification (internal routers read [invalid], so only user leaves
   survive a rebuild), and a durable reset to the empty sentinel tree. *)
let validity_off = 4

let reset ctx t =
  let tid = 0 in
  let l0 = t.r + (2 * size_class)
  and l1 = t.r + (3 * size_class)
  and l2 = t.r + (4 * size_class) in
  init_node ctx ~tid l0 ~key:inf0 ~left:0 ~right:0;
  init_node ctx ~tid l1 ~key:inf1 ~left:0 ~right:0;
  init_node ctx ~tid l2 ~key:inf2 ~left:0 ~right:0;
  init_node ctx ~tid t.s ~key:inf1 ~left:l0 ~right:l1;
  init_node ctx ~tid t.r ~key:inf2 ~left:t.s ~right:l2;
  Heap.fence (Ctx.heap ctx) ~tid

let ops ctx t =
  {
    Set_intf.name = "durable-bst(" ^ Persist_mode.to_string (Ctx.mode ctx) ^ ")";
    insert =
      (fun ~tid ~key ~value ->
        Ctx.with_op_c ~name:"bst.insert" ~key ~ret:Set_intf.ret_bool ctx (Ctx.cursor ctx ~tid) (fun cu ->
            insert_c ctx t cu ~key ~value));
    remove =
      (fun ~tid ~key ->
        Ctx.with_op_c ~name:"bst.remove" ~key ~ret:Set_intf.ret_bool ctx (Ctx.cursor ctx ~tid) (fun cu ->
            remove_c ctx t cu ~key));
    search =
      (fun ~tid ~key ->
        Ctx.with_op_c ~name:"bst.search" ~key ~ret:Set_intf.ret_opt ctx (Ctx.cursor ctx ~tid) (fun cu ->
            search_c ctx t cu ~key));
    size = (fun () -> size ctx ~tid:0 t);
  }
