(** Common runtime interface of all set implementations: a first-class
    record rather than a functor, so the benchmark harness drives log-free,
    log-based and volatile structures through one code path. Keys and values
    are positive integers (the paper evaluates 8-byte pairs). *)

type ops = {
  name : string;
  insert : tid:int -> key:int -> value:int -> bool;
      (** Add the binding if absent; true iff the set changed. *)
  remove : tid:int -> key:int -> bool;  (** True iff the key was present. *)
  search : tid:int -> key:int -> int option;  (** The bound value, if any. *)
  size : unit -> int;  (** Element count; quiescent use only. *)
}

val contains : ops -> tid:int -> key:int -> bool

(** User key bounds; sentinel keys live above [max_key]. *)
val min_key : int

val max_key : int

(** [A_op_end] result encoders shared by every structure's op wrappers:
    insert/remove answer 0/1, search the value or [-1] for absent (values
    are positive, so [-1] cannot collide). One response alphabet for
    history recorders. *)
val ret_bool : bool -> int

val ret_opt : int option -> int

(** Encoder for operations whose only answer is completion (a queue's
    enqueue, a deque's push): records 1, the same code as a successful
    insert, so recorders need no third alphabet. *)
val ret_unit : unit -> int
