(** Durable active-page tracking (paper section 5.4) — the only logging
    NV-epochs does. Page addresses are durable (a miss appends one and
    waits); the trimming metadata (last alloc / last unlink epochs) is
    volatile. One fixed-position span of [entries_max] words per thread. *)

type t

type entry = {
  page : int;
  slot : int;
  mutable last_alloc_epoch : int;
  mutable last_unlink_epoch : int;
}

type reason = Alloc | Unlink

(** Heap words needed for [nthreads] tables (pass to the layout carver). *)
val words_needed : nthreads:int -> entries_max:int -> int

val create :
  Nvm.Heap.t ->
  base:int ->
  nthreads:int ->
  ?entries_max:int ->
  ?trim_threshold:int ->
  unit ->
  t

val size : t -> tid:int -> int
val mem : t -> tid:int -> page:int -> bool

(** Record that [page] is in use by [tid] at [epoch]. A hit updates volatile
    metadata only; a miss appends the address durably and {e waits} — the
    logging cost Figure 9a counts. Fails if the table is full. *)
val ensure_active : t -> tid:int -> page:int -> epoch:int -> reason -> unit

(** [ensure_active] with the caller-supplied heap cursor (the fast path the
    [~tid] version shims onto). *)
val ensure_active_c :
  t -> Nvm.Heap.cursor -> page:int -> epoch:int -> reason -> unit

(** Drop entries satisfying [removable]; durable slots are zeroed lazily (a
    stale survivor only adds recovery work). Returns entries dropped. *)
val trim : t -> tid:int -> removable:(entry -> bool) -> int

val needs_trim : t -> tid:int -> bool

(** Pages currently active for [tid] (volatile view). *)
val active_pages : t -> tid:int -> int list

(** What recovery sees: the durable table contents after a crash. *)
val durable_active_pages :
  Nvm.Heap.t -> base:int -> nthreads:int -> entries_max:int -> int list
