(** Traverse→critical-section boundary helper for [Persist_mode.Nvtraverse]:
    queue write-backs for the destination nodes/links an operation is about
    to act on — dirty lines only, never fencing. The covering fence on the
    response path ([Ctx.with_op_c]) drains whatever was queued. *)

(** [ensure_word_durable_c heap cu addr] queues a write-back for [addr]'s
    line iff it is dirty. *)
val ensure_word_durable_c : Nvm.Heap.t -> Nvm.Heap.cursor -> int -> unit

(** [ensure_node_durable_c heap cu ~addr ~size_class] queues write-backs for
    every dirty line of the node spanning [size_class] words at [addr]. *)
val ensure_node_durable_c :
  Nvm.Heap.t -> Nvm.Heap.cursor -> addr:int -> size_class:int -> unit
