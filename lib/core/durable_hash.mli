(** Log-free durable hash table: one Harris list per bucket, inheriting all
    durability reasoning from [Durable_list]. Fixed bucket count; the bucket
    array is a static span of head links. *)

type t = { base : int; nbuckets : int }

(** Bucket head-link address for [key]. *)
val bucket_link : t -> int -> int

(** Create a fresh table (next static carve; heads zeroed and persisted). *)
val create : Ctx.t -> nbuckets:int -> t

(** Re-attach after recovery: repeats the carve without reinitializing. *)
val attach : Ctx.t -> nbuckets:int -> t

val search : Ctx.t -> t -> tid:int -> key:int -> int option
val insert : Ctx.t -> t -> tid:int -> key:int -> value:int -> bool
val remove : Ctx.t -> t -> tid:int -> key:int -> bool

(** Cursor-threading forms (the fast path the [~tid] forms shim onto). *)
val search_c : Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> int option

val insert_c : Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> value:int -> bool
val remove_c : Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> bool
val size : Ctx.t -> t -> int
val iter_nodes : Ctx.t -> t -> (int -> deleted:bool -> unit) -> unit
val to_list : Ctx.t -> t -> (int * int) list

(** Post-crash normalization: fix every bucket list. *)
val recover_consistency : Ctx.t -> t -> unit

(** Link-free rebuild support: validity-word offset within a node, and a
    durable reset to the empty table (all bucket heads zeroed, fenced). *)
val validity_off : int

val reset : Ctx.t -> t -> unit

val ops : Ctx.t -> t -> Set_intf.ops
