(** Common runtime interface of all set implementations.

    Keys and values are positive integers (the paper evaluates 8-byte
    key-value pairs). A first-class record rather than a functor so the
    benchmark harness can drive any structure — log-free, log-based or
    volatile — through one code path. *)

type ops = {
  name : string;
  insert : tid:int -> key:int -> value:int -> bool;
      (** [insert ~tid ~key ~value] adds the binding if [key] is absent;
          returns true iff the set changed. *)
  remove : tid:int -> key:int -> bool;
      (** [remove ~tid ~key] deletes the binding; true iff it was present. *)
  search : tid:int -> key:int -> int option;
      (** [search ~tid ~key] returns the bound value, if any. *)
  size : unit -> int;
      (** Number of elements; quiescent use only. *)
}

let contains t ~tid ~key = Option.is_some (t.search ~tid ~key)

(** [A_op_end] result encoders shared by every structure's op wrappers, so
    history recorders (Lincheck) see one response alphabet: insert/remove
    answer 0/1, search answers the value or [-1] for absent. Values are
    positive (see above), so [-1] cannot collide. *)
let ret_bool b = if b then 1 else 0

let ret_opt = function None -> -1 | Some v -> v

(** Encoder for operations whose only answer is completion (enqueue, push):
    recorded as 1, the success code, so recorders keep one alphabet. *)
let ret_unit () = 1

(** Minimum and maximum user keys (sentinel space is reserved outside). *)
let min_key = 1

let max_key = 1 lsl 48
