(** The link-free durability discipline (Zuriel et al., OOPSLA'19): node
    {e contents} plus a per-node validity word are persisted; links never
    are. Recovery ignores every link and rebuilds reachability from the
    validity words ([Recovery.rebuild_link_free]).

    Each node reserves one pad word as its validity word:

    - [invalid] (0): the slot holds no committed node — freshly allocated,
      or an insert that lost its race, or an interior/router node that must
      never be resurrected;
    - [valid] (1): the node is a committed set member; made durable
      together with the contents by the pre-publish fence, so a node is
      never reachable before it is durably valid;
    - [deleted] (2): the node was removed; made durable before the remove's
      response by the covering fence on the response path.

    Transitions are announced to an attached observer ([Heap.A_validity])
    so the sanitizer can hold acknowledged transitions to the
    fence-before-response contract without forking per flavor.

    Nothing in this module fences: insert-side transitions ride the
    pre-publish [Link_persist.persist_node_c] fence, delete-side ones ride
    the op-end covering fence in [Ctx.with_op_c]. *)

open Nvm

let invalid = 0
let valid = 1
let deleted = 2

(* A fourth verdict for heterogeneous heaps (the KV cache): a committed
   {e item} payload, distinct from [valid] so a recovery scan can tell an
   item slot from a structure-node slot by its validity word alone. *)
let valid_item = 3

let announce heap cu ~addr ~state =
  if Heap.observed heap then
    Heap.annotate heap ~tid:(Heap.Cursor.tid cu) (Heap.A_validity { addr; state })

(* Is the context in link-free mode? Structures gate their validity writes
   on this so the other flavors pay nothing. *)
let active ctx = Ctx.mode ctx = Persist_mode.Link_free

(** Set the validity word of a freshly initialized node {e before}
    [Link_persist.persist_node_c]: the pre-publish fence makes contents and
    validity durable together. Also used with [invalid] for router nodes and
    for an insert that lost its publishing race (the slot may be a recycled
    one whose durable image still says [valid] — the explicit store kills
    the stale verdict). *)
let init_c ctx cu ~validity_word ~state =
  if active ctx then begin
    Heap.Cursor.store cu validity_word state;
    announce (Ctx.heap ctx) cu ~addr:validity_word ~state
  end

(** Record a deletion: CAS in [deleted], announce, and queue the write-back.
    Idempotent and open to helpers — any thread that observes a deleted
    mark may call this, and because concurrent helpers record the same
    verdict the transition must be a CAS, not a plain store (two unordered
    plain stores to a shared word are a data race, even when they agree).
    Losing the CAS means another helper already recorded it; either way the
    write-back is queued, and if the word already reads [deleted] only a
    dirty line is re-queued (clean lines cost nothing), so steady-state
    traversals stay free. The caller's op-end covering fence makes the
    transition durable before any response that depends on it. *)
let mark_deleted_c ctx cu ~validity_word =
  if active ctx then begin
    let heap = Ctx.heap ctx in
    let cur = Heap.Cursor.load cu validity_word in
    if cur <> deleted then begin
      if Heap.Cursor.cas cu validity_word ~expected:cur ~desired:deleted then
        announce heap cu ~addr:validity_word ~state:deleted;
      Heap.Cursor.write_back cu validity_word
    end
    else if Heap.line_is_dirty heap validity_word then
      Heap.Cursor.write_back cu validity_word
  end

(** Kill a node that was durably [valid] but lost its publishing race, just
    before it is freed: store [invalid] and queue the write-back (the
    op-end fence of the insert that is still running covers it). *)
let invalidate_c ctx cu ~validity_word =
  if active ctx then begin
    Heap.Cursor.store cu validity_word invalid;
    announce (Ctx.heap ctx) cu ~addr:validity_word ~state:invalid;
    Heap.Cursor.write_back cu validity_word
  end
