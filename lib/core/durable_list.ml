(** Log-free durable linked list (Harris' algorithm + link-and-persist).

    The lock-free list of Harris [DISC'01], with the durability discipline of
    section 3 layered on top:

    - every state-changing link update goes through [Link_persist.cas_link]
      (link-and-persist, or the link cache in [Link_cache] mode);
    - traversals help-persist any marked link they cross, so every edge an
      operation depends on is durable before the operation acts on it;
    - inserts persist the node contents (and, via the same fence, the
      allocator metadata) before linking;
    - deletes persist the logical-deletion mark before unlinking.

    Node layout (one cache line):
    {v +0 key   +1 value   +2 next (marked)   +3..7 pad v}

    The list hangs off a single link word (a root slot or a hash bucket), so
    there are no sentinel nodes. All functions take the address of that head
    link. Memory is managed by NV-epochs; operations must run inside
    [Ctx.with_op] brackets (the exported [ops] wrapper does this).

    Hot-path operations take the caller's heap cursor ([_c] forms); the
    [~tid] forms fetch the cursor once and delegate. *)

open Nvm

let size_class = Cacheline.words_per_line
let key_of node = node
let value_of node = node + 1
let next_of node = node + 2
let validity_of node = node + 3

let read_key cu node = Heap.Cursor.load cu (key_of node)
let read_value cu node = Heap.Cursor.load cu (value_of node)

(* Result of the internal find: the incoming link of the predecessor (for
   the adjacent-edge durability rule), the link to CAS (&pred.next), and the
   first unmarked node with key >= k (0 if none). *)
type found = { in_pred : int; out_pred : int; curr : int }

(** Harris find with unlink helping. Marked nodes encountered on the way are
    durably unlinked (their mark is made durable first) and retired. The next
    pointer read at each node is carried forward, so the walk costs two loads
    per node, like the lock-based baseline's. Unflushed marks on links only
    matter where we act on them: traversal strips them, CAS sites help-clear
    them, and the operation's adjacent edges are made durable before its
    linearization ([make_position_durable]). *)
let rec find ctx cu ~head k =
  let rec step in_pred out_pred curr =
    if curr = 0 then { in_pred; out_pred; curr = 0 }
    else
      let nv = Heap.Cursor.load cu (next_of curr) in
      if Marked_ptr.is_deleted nv then begin
        (* curr is logically deleted: make the mark durable, then durably
           unlink it. On CAS failure the list changed under us: restart. *)
        let nv = Link_persist.help_unflushed_c ctx cu ~link:(next_of curr) nv in
        (* Link-free: the unlink must not outrun the deletion verdict —
           help-record it before acting on the mark. *)
        Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of curr);
        let succ = Marked_ptr.addr nv in
        if
          Link_persist.cas_link_c ctx cu
            ~key:(read_key cu curr)
            ~link:out_pred ~expected:curr ~desired:succ
        then begin
          Nv_epochs.retire_node_c (Ctx.mem ctx) cu curr;
          step in_pred out_pred succ
        end
        else find ctx cu ~head k
      end
      else if read_key cu curr >= k then { in_pred; out_pred; curr }
      else step out_pred (next_of curr) (Marked_ptr.addr nv)
  in
  step head head (Marked_ptr.addr (Link_persist.read_clean_c ctx cu head))

let key_matches cu node k = node <> 0 && read_key cu node = k

(* Durability of the edges adjacent to the position [f] (section 3): the
   traversal already cleaned them, but in link-cache mode their durable
   write may still be parked in the cache, so scan for the keys involved. *)
let make_position_durable ctx cu ~k f =
  Link_persist.make_durable_c ctx cu ~key:k ~link:f.out_pred ();
  if f.curr <> 0 then
    Link_persist.make_durable_c ctx cu
      ~key:(read_key cu f.curr)
      ~link:(next_of f.curr) ();
  Link_persist.make_durable_c ctx cu ~key:k ~link:f.in_pred ()

(** [search_c ctx cu ~head ~key] returns the value bound to [key], first
    making the links its answer depends on durable. *)
let search_c ctx cu ~head ~key =
  let f = find ctx cu ~head key in
  make_position_durable ctx cu ~k:key f;
  if key_matches cu f.curr key then Some (read_value cu f.curr) else None

let search ctx ~tid ~head ~key = search_c ctx (Ctx.cursor ctx ~tid) ~head ~key

(** [insert_c ctx cu ~head ~key ~value] adds a node; false if present. *)
let rec insert_c ctx cu ~head ~key ~value =
  let f = find ctx cu ~head key in
  if key_matches cu f.curr key then begin
    make_position_durable ctx cu ~k:key f;
    false
  end
  else begin
    (* Adjacent edges of the predecessor must be durable before linking. *)
    make_position_durable ctx cu ~k:key f;
    let node = Nv_epochs.alloc_node_c (Ctx.mem ctx) cu ~size_class in
    Heap.Cursor.store cu (key_of node) key;
    Heap.Cursor.store cu (value_of node) value;
    Heap.Cursor.store cu (next_of node) f.curr;
    Link_free.init_c ctx cu ~validity_word:(validity_of node)
      ~state:Link_free.valid;
    (* Contents + allocator metadata reach NVRAM before the node is visible. *)
    Link_persist.persist_node_c ctx cu ~addr:node ~size_class;
    if
      Link_persist.cas_link_c ctx cu ~key ~link:f.out_pred ~expected:f.curr
        ~desired:node
    then true
    else begin
      (* Lost the race; recycle the invisible node and retry. The durable
         [valid] verdict must be retracted first in link-free mode. *)
      Link_free.invalidate_c ctx cu ~validity_word:(validity_of node);
      Nvalloc.free_c (Ctx.allocator ctx) cu node;
      insert_c ctx cu ~head ~key ~value
    end
  end

let insert ctx ~tid ~head ~key ~value =
  insert_c ctx (Ctx.cursor ctx ~tid) ~head ~key ~value

(** [remove_c ctx cu ~head ~key] deletes the node; false if absent. *)
let rec remove_c ctx cu ~head ~key =
  let f = find ctx cu ~head key in
  if not (key_matches cu f.curr key) then begin
    make_position_durable ctx cu ~k:key f;
    false
  end
  else begin
    let curr = f.curr in
    make_position_durable ctx cu ~k:key f;
    let nv = Link_persist.read_clean_c ctx cu (next_of curr) in
    if Marked_ptr.is_deleted nv then begin
      (* Concurrently deleted; that deletion's mark is durable (we just
         cleaned the link), so reporting absence is durably justified.
         Link-free: help-persist the deletion verdict instead. *)
      Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of curr);
      Link_persist.make_durable_c ctx cu ~key ~link:(next_of curr) ();
      false
    end
    else if
      (* Logical deletion: durably mark curr's next pointer. *)
      Link_persist.cas_link_c ctx cu ~key ~link:(next_of curr) ~expected:nv
        ~desired:(Marked_ptr.with_delete nv)
    then begin
      (* Link-free: the deletion verdict, durable by our op-end fence. *)
      Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of curr);
      (* Physical deletion: best effort here, helpers finish otherwise. *)
      let succ = Marked_ptr.addr nv in
      if
        Link_persist.cas_link_c ctx cu ~key ~link:f.out_pred ~expected:curr
          ~desired:succ
      then Nv_epochs.retire_node_c (Ctx.mem ctx) cu curr
      else ignore (find ctx cu ~head key);
      true
    end
    else remove_c ctx cu ~head ~key
  end

let remove ctx ~tid ~head ~key = remove_c ctx (Ctx.cursor ctx ~tid) ~head ~key

(* Quiescent traversal (tests, recovery, size). *)

let iter_nodes ctx ~tid ~head f =
  let cu = Ctx.cursor ctx ~tid in
  let rec go link =
    let v = Heap.Cursor.load cu link in
    let node = Marked_ptr.addr v in
    if node <> 0 then begin
      let nv = Heap.Cursor.load cu (next_of node) in
      f node ~deleted:(Marked_ptr.is_deleted nv);
      go (next_of node)
    end
  in
  go head

let size ctx ~tid ~head =
  let n = ref 0 in
  iter_nodes ctx ~tid ~head (fun _ ~deleted -> if not deleted then incr n);
  !n

let to_list ctx ~tid ~head =
  let cu = Ctx.cursor ctx ~tid in
  let acc = ref [] in
  iter_nodes ctx ~tid ~head (fun node ~deleted ->
      if not deleted then acc := (read_key cu node, read_value cu node) :: !acc);
  List.rev !acc

(* Recovery (single-threaded, post-crash): bring the list back to a
   consistent state. Unflushed marks are meaningless after a restart (the
   restart itself is the missing write-back); half-done logical deletions are
   completed by unlinking. Every fixed line is written back once at the end. *)
let recover_consistency ctx ~head =
  let cu = Ctx.cursor ctx ~tid:0 in
  let rec go link =
    let v = Heap.Cursor.load cu link in
    let v =
      if Marked_ptr.is_unflushed v then begin
        let c = Marked_ptr.clear_unflushed v in
        Heap.Cursor.store cu link c;
        Heap.Cursor.write_back cu link;
        c
      end
      else v
    in
    let node = Marked_ptr.addr v in
    if node <> 0 then begin
      let nv = Heap.Cursor.load cu (next_of node) in
      if Marked_ptr.is_deleted nv then begin
        (* Finish the crashed delete: bypass the node. *)
        let succ = Marked_ptr.addr nv in
        Heap.Cursor.store cu link succ;
        Heap.Cursor.write_back cu link;
        Nvalloc.free_c (Ctx.allocator ctx) cu node;
        go link
      end
      else go (next_of node)
    end
  in
  go head;
  Heap.Cursor.fence cu

(* Link-free rebuild support: the validity-word offset for slot
   classification, and a durable reset to the empty list. *)
let validity_off = 3

let reset ctx ~head =
  let heap = Ctx.heap ctx in
  Heap.store heap ~tid:0 head 0;
  Heap.persist heap ~tid:0 head

(** First-class [Set_intf.ops] over a list rooted at [head]; operations are
    epoch-bracketed. Each operation fetches the domain's cursor once. *)
let ops ctx ~head =
  {
    Set_intf.name = "durable-list(" ^ Persist_mode.to_string (Ctx.mode ctx) ^ ")";
    insert =
      (fun ~tid ~key ~value ->
        Ctx.with_op_c ~name:"list.insert" ~key ~ret:Set_intf.ret_bool ctx (Ctx.cursor ctx ~tid) (fun cu ->
            insert_c ctx cu ~head ~key ~value));
    remove =
      (fun ~tid ~key ->
        Ctx.with_op_c ~name:"list.remove" ~key ~ret:Set_intf.ret_bool ctx (Ctx.cursor ctx ~tid) (fun cu ->
            remove_c ctx cu ~head ~key));
    search =
      (fun ~tid ~key ->
        Ctx.with_op_c ~name:"list.search" ~key ~ret:Set_intf.ret_opt ctx (Ctx.cursor ctx ~tid) (fun cu ->
            search_c ctx cu ~head ~key));
    size = (fun () -> size ctx ~tid:0 ~head);
  }

(** Create a fresh empty list in root slot [root]; returns the head link. *)
let create ctx ~root =
  let head = Ctx.root_slot ctx root in
  let heap = Ctx.heap ctx in
  Heap.store heap ~tid:0 head 0;
  Heap.persist heap ~tid:0 head;
  head

(** Head link of an existing list after recovery. *)
let attach ctx ~root = Ctx.root_slot ctx root
