(** How a log-free structure persists its state; the same algorithm code
    runs in all modes (the paper's durable structures differ from their
    volatile counterparts only by added flushes). *)

type t =
  | Volatile  (** no write-backs: the DRAM-oriented baseline (Figure 7) *)
  | Link_persist  (** one link-and-persist sync per state change (§3) *)
  | Link_cache  (** batched durability through the link cache (§4) *)
  | Nvtraverse
      (** fence-free traversal; only destination nodes are persisted before
          the linearizing CAS, plus one covering fence on the response path
          (NVTraverse) *)
  | Link_free
      (** durable node contents + validity word, links never persisted;
          recovery rebuilds reachability (Zuriel et al.) *)

val all : t list

val to_string : t -> string

(** Inverse of [to_string], also accepting the short flag spellings
    ([lp], [lc], [nvt], [lf], [dram]). The single canonical parser for every
    CLI surface. *)
val of_string : string -> (t, string) result

val is_durable : t -> bool

(** True when an acknowledged mutation is guaranteed durable at the instant
    the response leaves — i.e. a crash audit may be strict about acked
    losses. Link-cache acks are durable only to the last cache flush. *)
val acks_durable : t -> bool

(** True when the mode publishes links with the unflushed mark and persists
    them in place (the link-and-persist family). *)
val persists_links : t -> bool

(** True when the mode records deletion in a durable per-node validity word
    instead of durable links (the link-free family). *)
val uses_validity : t -> bool
