(** The traverse→critical-section boundary of the NVTraverse discipline.

    Under [Persist_mode.Nvtraverse] a traversal pays no flushes and no
    fences at all. Durability is concentrated at two points:

    - the {e boundary}: just before an operation's linearizing CAS, the
      destination nodes it is about to modify (and the links its answer
      depends on) are queued for write-back — but only the lines that are
      actually dirty, so a traversal over long-durable prefix nodes queues
      nothing;
    - the {e response path}: [Ctx.with_op_c] issues one covering fence for
      whatever the op queued before the response is returned, so an
      acknowledged operation is durable and a read that crossed a
      not-yet-durable link has made it durable before answering.

    Write-backs queued here ride the cursor's pending buffer; nothing in
    this module ever fences. *)

open Nvm

(* Queue a write-back for [addr]'s cache line iff the line is dirty: the
   fence-free traversal's whole point is that clean destinations cost
   nothing. A racing writer can re-dirty the line after the check — its own
   op's covering fence owns that durability, exactly as with helping. *)
let ensure_word_durable_c heap cu addr =
  if Heap.line_is_dirty heap addr then Heap.Cursor.write_back cu addr

(* Queue write-backs for every dirty line of the node at [addr]. *)
let ensure_node_durable_c heap cu ~addr ~size_class =
  let lines =
    (size_class + Cacheline.words_per_line - 1) / Cacheline.words_per_line
  in
  for i = 0 to lines - 1 do
    ensure_word_durable_c heap cu (addr + (i * Cacheline.words_per_line))
  done
