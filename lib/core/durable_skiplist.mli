(** Log-free durable skip list (Herlihy-Shavit lock-free algorithm).

    Only the level-0 list defines the abstract set, so only level-0 link
    updates pay a link-and-persist (or link-cache) sync; index levels are
    updated with plain CAS + asynchronous write-back and rebuilt by recovery
    if stale — the source of the paper's largest speedup (Figures 5, 8). *)

type t

(** Create a fresh skip list (carves and zeroes the head tower — next static
    carve). [max_level] defaults to 16; node classes cap it at 60. *)
val create : Ctx.t -> ?max_level:int -> unit -> t

(** Re-attach after recovery (same carve, same [max_level]). *)
val attach : Ctx.t -> ?max_level:int -> unit -> t

val search : Ctx.t -> t -> tid:int -> key:int -> int option
val insert : Ctx.t -> t -> tid:int -> key:int -> value:int -> bool
val remove : Ctx.t -> t -> tid:int -> key:int -> bool

(** Cursor-threading forms (the fast path the [~tid] forms shim onto). *)
val search_c : Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> int option

val insert_c : Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> value:int -> bool
val remove_c : Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> bool

(** Quiescent level-0 traversal. *)
val iter_nodes : Ctx.t -> tid:int -> t -> (int -> deleted:bool -> unit) -> unit

val size : Ctx.t -> tid:int -> t -> int
val to_list : Ctx.t -> tid:int -> t -> (int * int) list

(** Post-crash normalization: fix level 0 like a linked list, then rebuild
    every index level deterministically from the survivors' stored heights. *)
val recover_consistency : Ctx.t -> t -> unit

(** Link-free rebuild support: validity-word offset within a node, and a
    durable reset to the empty list (head tower zeroed and fenced). *)
val validity_off : int

val reset : Ctx.t -> t -> unit

val ops : Ctx.t -> t -> Set_intf.ops
