(** Memcached ASCII protocol over any cache build: [set]/[add]/[replace]/
    [append]/[prepend], [get]/[gets] (multi-key), [delete], [incr]/[decr],
    [touch], [stats], [version]. Operates on complete request strings (data
    block included); the socket loop that frames them out of a TCP byte
    stream is NVServe ([Server.Nvserve] / [Server.Framing]), whose workers
    call {!handle} once per framed request. Malformed input answers with
    [CLIENT_ERROR] / [SERVER_ERROR] instead of raising. *)

type t

(** A protocol endpoint over one cache backend; [stats] uptime counts from
    here. *)
val create : Cache_intf.ops -> t

(** Handle one complete request (e.g. ["set k 0 0 5\r\nhello\r\n"]);
    returns the wire response. Never raises on malformed requests: torn or
    over-long data blocks, bad byte counts and unknown commands produce
    [ERROR] / [CLIENT_ERROR] lines, and values exceeding the item size
    limit produce [SERVER_ERROR object too large for cache]. *)
val handle : t -> tid:int -> string -> string

(** One response per request. *)
val session : t -> tid:int -> string list -> string list
