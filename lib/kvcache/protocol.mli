(** Memcached ASCII protocol over any cache build: [set]/[add]/[replace]/
    [append]/[prepend], [get]/[gets] (multi-key), [delete], [incr]/[decr],
    [touch], [stats], [version]. Operates on complete request strings (data
    block included); the socket loop that frames them out of a TCP byte
    stream is NVServe ([Server.Nvserve] / [Server.Framing]), whose workers
    call {!handle} once per framed request. Malformed input answers with
    [CLIENT_ERROR] / [SERVER_ERROR] instead of raising. *)

type t

(** A protocol endpoint over one cache backend; [stats] uptime counts from
    here.

    [stats_ext] hooks a server-side stats provider into the [stats]
    command: [ext ~tid None] supplies extra [(key, value)] pairs appended
    to the plain [stats] report, and [ext ~tid (Some arg)] answers
    [stats <arg>] sub-reports (NVServe wires ["nvlf"] and ["settings"]).
    Returning [None] for an argument — and every argument when no extension
    is installed — yields the memcached-compatible [ERROR] rejection. *)
val create :
  ?stats_ext:(tid:int -> string option -> (string * string) list option) ->
  Cache_intf.ops ->
  t

(** Handle one complete request (e.g. ["set k 0 0 5\r\nhello\r\n"]);
    returns the wire response. Never raises on malformed requests: torn or
    over-long data blocks, bad byte counts and unknown commands produce
    [ERROR] / [CLIENT_ERROR] lines, and values exceeding the item size
    limit produce [SERVER_ERROR object too large for cache]. *)
val handle : t -> tid:int -> string -> string

(** One response per request. *)
val session : t -> tid:int -> string list -> string list

(** {2 Group-commit split execution}

    [handle_deferred] is {!handle} with the persistence fences deferred: it
    opens (or continues) a group-commit batch on the calling thread and
    executes the request with unflushed marks left in place. The response
    MUST be withheld from the client until {!commit} — which issues one
    covering fence for everything the batch deferred — has returned; then
    every acked mutation is durable, same contract as {!handle} at a
    fraction of the fences. Backends with nothing to defer (volatile, link
    cache) make both equivalent to {!handle} plus a no-op. [ops] is the
    number of requests executed in the batch, for group accounting. *)

val handle_deferred : t -> tid:int -> string -> string

val commit : t -> tid:int -> ops:int -> unit
