(** Durable cache items: immutable key/value blobs in slab memory, with a
    durable expiry stamp. The slab allocator is [Nvalloc] under NV-epochs,
    whose active page table is the paper's "active slab table" (§6.5). *)

(** Address of the item's key-hash word (what the durable hash table
    indexes). *)
val hash_of : int -> int

(** Slab class (words) for a key/value pair; raises past ~412 bytes. *)
val words_for : key_len:int -> val_len:int -> int

(** Address of the item's validity word — [Link_free.valid_item] once
    committed under link-free mode, [deleted] after removal. *)
val validity_of : int -> int

(** Allocate and fully initialize an item; contents and slab metadata are
    durable before the address is returned. Returns (address, class). *)
val alloc :
  ?expire_at:float ->
  Lfds.Ctx.t ->
  tid:int ->
  key:string ->
  value:string ->
  int * int

val read_key : Lfds.Ctx.t -> tid:int -> int -> string
val read_value : Lfds.Ctx.t -> tid:int -> int -> string
val key_matches : Lfds.Ctx.t -> tid:int -> int -> string -> bool

(** Absolute expiry (seconds since epoch; [0.] = never). *)
val expire_at : Lfds.Ctx.t -> tid:int -> int -> float

val expired : Lfds.Ctx.t -> tid:int -> int -> now:float -> bool

(** Cursor-threading forms (the fast path the [~tid] forms shim onto). *)
val alloc_c :
  ?expire_at:float ->
  Lfds.Ctx.t ->
  Nvm.Heap.cursor ->
  key:string ->
  value:string ->
  int * int

val read_key_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> int -> string
val read_value_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> int -> string
val key_matches_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> int -> string -> bool
val expire_at_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> int -> float
val expired_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> int -> now:float -> bool
