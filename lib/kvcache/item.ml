(** Durable cache items: immutable key/value blobs in slab memory.

    The slab allocator is [Nvalloc] (pages = slabs, size classes = slab
    classes) managed through NV-epochs, whose active page table {e is} the
    "active slab table" of section 6.5: allocating or retiring an item marks
    its slab active with a durable write only on a miss, and recovery sweeps
    only the slabs active at crash time.

    Layout: {v +0 key-hash  +1 (key_len << 24) | val_len  +2 expiry (ms since
    epoch; 0 = never)  +3 validity ([Link_free.valid_item] under link-free
    mode, the verdict a link-free recovery scan classifies slots by)
    +4.. key bytes, then value bytes v} *)

open Nvm

let hash_of item = item
let lens_of item = item + 1
let expiry_of item = item + 2
let validity_of item = item + 3
let key_words len = Strpack.words_needed len
let key_addr item = item + 4
let value_addr item ~key_len = item + 4 + key_words key_len

let words_for ~key_len ~val_len =
  let words = 4 + key_words key_len + Strpack.words_needed val_len in
  let rounded =
    (words + Cacheline.words_per_line - 1)
    / Cacheline.words_per_line * Cacheline.words_per_line
  in
  if rounded > 64 then invalid_arg "Item: key+value too large (max ~412 bytes)";
  rounded

let key_len item cu = Heap.Cursor.load cu (lens_of item) lsr 24
let val_len item cu = Heap.Cursor.load cu (lens_of item) land 0xFFFFFF

(** Allocate and fully initialize an item; contents are persisted (together
    with the slab metadata) before the address is returned, so linking it
    into the durable hash table never exposes unwritten payload. *)
let alloc_c ?(expire_at = 0.) ctx cu ~key ~value =
  let key_len = String.length key and val_len = String.length value in
  let size_class = words_for ~key_len ~val_len in
  let item = Lfds.Nv_epochs.alloc_node_c (Lfds.Ctx.mem ctx) cu ~size_class in
  Heap.Cursor.store cu (hash_of item) (Strpack.hash key);
  Heap.Cursor.store cu (lens_of item) ((key_len lsl 24) lor val_len);
  Heap.Cursor.store cu (expiry_of item) (int_of_float (expire_at *. 1000.));
  Heap.Cursor.store cu (validity_of item) Lfds.Link_free.invalid;
  Strpack.write_c cu ~addr:(key_addr item) key;
  Strpack.write_c cu ~addr:(value_addr item ~key_len) value;
  (* Under link-free mode the verdict word, not reachability, decides
     recovery: stamp [valid_item] so the pre-publish fence below persists
     payload and verdict together. (No-op in every other mode.) *)
  Lfds.Link_free.init_c ctx cu ~validity_word:(validity_of item)
    ~state:Lfds.Link_free.valid_item;
  Lfds.Link_persist.persist_node_c ctx cu ~addr:item ~size_class;
  (item, size_class)

let alloc ?expire_at ctx ~tid ~key ~value =
  alloc_c ?expire_at ctx (Lfds.Ctx.cursor ctx ~tid) ~key ~value

let read_key_c _ctx cu item =
  Strpack.read_c cu ~addr:(key_addr item) ~len:(key_len item cu)

let read_value_c _ctx cu item =
  let key_len = key_len item cu in
  Strpack.read_c cu ~addr:(value_addr item ~key_len) ~len:(val_len item cu)

let key_matches_c ctx cu item key = String.equal (read_key_c ctx cu item) key

(** Absolute expiry in seconds since the epoch; [0.] = never. *)
let expire_at_c _ctx cu item =
  float_of_int (Heap.Cursor.load cu (expiry_of item)) /. 1000.

let expired_c ctx cu item ~now =
  let e = expire_at_c ctx cu item in
  e > 0. && e <= now

let read_key ctx ~tid item = read_key_c ctx (Lfds.Ctx.cursor ctx ~tid) item
let read_value ctx ~tid item = read_value_c ctx (Lfds.Ctx.cursor ctx ~tid) item

let key_matches ctx ~tid item key =
  key_matches_c ctx (Lfds.Ctx.cursor ctx ~tid) item key

let expire_at ctx ~tid item = expire_at_c ctx (Lfds.Ctx.cursor ctx ~tid) item

let expired ctx ~tid item ~now =
  expired_c ctx (Lfds.Ctx.cursor ctx ~tid) item ~now
