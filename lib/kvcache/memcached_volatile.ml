(** Baseline Memcached core in plain OCaml memory: a lock-protected hash
    table plus an LRU, mirroring stock Memcached's design (global lock,
    volatile storage). Loses everything on restart — its "recovery" is the
    warm-up that Figure 11 compares against. *)

type entry = { mutable value : string; mutable stamp : int; mutable expire_at : float }

type t = {
  tbl : (string, entry) Hashtbl.t;
  capacity : int;
  mutable clock : int;
  lock : Mutex.t;
}

let create ~capacity =
  { tbl = Hashtbl.create 4096; capacity; clock = 0; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let set_ttl t ~key ~value ~expire_at =
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl key) && Hashtbl.length t.tbl >= t.capacity then
        evict_lru t;
      t.clock <- t.clock + 1;
      Hashtbl.replace t.tbl key { value; stamp = t.clock; expire_at })

let set t ~key ~value = set_ttl t ~key ~value ~expire_at:0.

let get t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e when e.expire_at > 0. && e.expire_at <= Unix.gettimeofday () ->
          Hashtbl.remove t.tbl key;
          None
      | Some e ->
          t.clock <- t.clock + 1;
          e.stamp <- t.clock;
          Some e.value
      | None -> None)

let delete t ~key =
  locked t (fun () ->
      if Hashtbl.mem t.tbl key then begin
        Hashtbl.remove t.tbl key;
        true
      end
      else false)

let incr t ~key ~delta =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e -> (
          match int_of_string_opt (String.trim e.value) with
          | Some n ->
              let n' = max 0 (n + delta) in
              e.value <- string_of_int n';
              Some n'
          | None -> None)
      | None -> None)

let count t = locked t (fun () -> Hashtbl.length t.tbl)

let ops t =
  {
    Cache_intf.name = "memcached";
    set = (fun ~tid:_ ~key ~value -> set t ~key ~value);
    set_ttl = (fun ~tid:_ ~key ~value ~expire_at -> set_ttl t ~key ~value ~expire_at);
    get = (fun ~tid:_ ~key -> get t ~key);
    delete = (fun ~tid:_ ~key -> delete t ~key);
    incr = (fun ~tid:_ ~key ~delta -> incr t ~key ~delta);
    count = (fun () -> count t);
    defer_begin = (fun ~tid:_ -> ());
    defer_commit = (fun ~tid:_ ~ops:_ -> ());
  }
