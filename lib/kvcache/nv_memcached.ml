(** NV-Memcached: a durable Memcached core (section 6.5).

    Replaces Memcached's two central structures with durable versions built
    from this library:

    - the hash table is the log-free durable hash table (one Harris list per
      bucket), keyed by a 48-bit hash of the item key, mapping to the item's
      slab address;
    - the slab allocator is [Nvalloc] driven through NV-epochs, whose active
      page table plays the role of the paper's active slab table: items are
      allocated and retired with durable logging only on a slab-table miss,
      and recovery sweeps only the slabs that were active at the crash.

    The LRU chains are volatile and rebuilt at recovery by walking the
    recovered hash table — that walk {e is} the recovery-vs-warm-up
    comparison of Figure 11.

    The same module with a [Volatile]-mode context is "memcached-clht": the
    identical lock-free table with all persistence compiled out. Hash
    collisions between distinct keys (2^-48 per pair) behave like Memcached
    evictions: the newer key wins. *)

open Lfds

type t = {
  ctx : Ctx.t;
  table : Durable_hash.t;
  lru : Lru.t;
  capacity : int;
  count : int Atomic.t;
  lock : Mutex.t;  (** serializes set/delete of the same hash slot *)
}

let create ctx ~nbuckets ~capacity =
  {
    ctx;
    table = Durable_hash.create ctx ~nbuckets;
    lru = Lru.create ();
    capacity;
    count = Atomic.make 0;
    lock = Mutex.create ();
  }

let find_item t cu h =
  match Durable_hash.search_c t.ctx t.table cu ~key:h with
  | Some item -> Some item
  | None -> None

let evict_one t cu =
  match Lru.pop_lru t.lru with
  | None -> ()
  | Some victim ->
      let h = Nvm.Heap.Cursor.load cu (Item.hash_of victim) in
      if Durable_hash.remove_c t.ctx t.table cu ~key:h then begin
        Link_free.mark_deleted_c t.ctx cu
          ~validity_word:(Item.validity_of victim);
        Nv_epochs.retire_node_c (Ctx.mem t.ctx) cu victim;
        ignore (Atomic.fetch_and_add t.count (-1))
      end

let set_ttl t ~tid ~key ~value ~expire_at =
  (* Size-class check up front: an oversized pair must raise before the old
     item is removed, or a rejected overwrite would destroy the stored
     value. *)
  ignore (Item.words_for ~key_len:(String.length key) ~val_len:(String.length value));
  let h = Strpack.hash key in
  Ctx.with_op_c ~name:"mc.set" ~key:h t.ctx (Ctx.cursor t.ctx ~tid) (fun cu ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          (match find_item t cu h with
          | Some old_item ->
              ignore (Durable_hash.remove_c t.ctx t.table cu ~key:h);
              (* Link-free recovery classifies slots by verdict alone, so
                 the replaced item must durably retract its [valid_item]
                 before reclamation — or a crash would resurrect it. *)
              Link_free.mark_deleted_c t.ctx cu
                ~validity_word:(Item.validity_of old_item);
              Lru.remove t.lru old_item;
              Nv_epochs.retire_node_c (Ctx.mem t.ctx) cu old_item;
              ignore (Atomic.fetch_and_add t.count (-1))
          | None -> ());
          while Atomic.get t.count >= t.capacity do
            evict_one t cu
          done;
          let item, _class = Item.alloc_c ~expire_at t.ctx cu ~key ~value in
          ignore (Durable_hash.insert_c t.ctx t.table cu ~key:h ~value:item);
          Lru.add t.lru item;
          ignore (Atomic.fetch_and_add t.count 1)))

let set t ~tid ~key ~value = set_ttl t ~tid ~key ~value ~expire_at:0.

let rec get t ~tid ~key =
  let h = Strpack.hash key in
  let hit =
    Ctx.with_op_c ~name:"mc.get" ~key:h t.ctx (Ctx.cursor t.ctx ~tid) (fun cu ->
        match find_item t cu h with
        | Some item when Item.key_matches_c t.ctx cu item key ->
            if Item.expired_c t.ctx cu item ~now:(Unix.gettimeofday ()) then
              `Expired
            else begin
              Lru.touch t.lru item;
              `Hit (Item.read_value_c t.ctx cu item)
            end
        | Some _ | None -> `Miss)
  in
  match hit with
  | `Hit v -> Some v
  | `Miss -> None
  | `Expired ->
      (* Lazy expiry, like memcached: reap on access. *)
      ignore (delete t ~tid ~key);
      None

and delete t ~tid ~key =
  let h = Strpack.hash key in
  Ctx.with_op_c ~name:"mc.delete" ~key:h t.ctx (Ctx.cursor t.ctx ~tid) (fun cu ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          match find_item t cu h with
          | Some item when Item.key_matches_c t.ctx cu item key ->
              ignore (Durable_hash.remove_c t.ctx t.table cu ~key:h);
              Link_free.mark_deleted_c t.ctx cu
                ~validity_word:(Item.validity_of item);
              Lru.remove t.lru item;
              Nv_epochs.retire_node_c (Ctx.mem t.ctx) cu item;
              ignore (Atomic.fetch_and_add t.count (-1));
              true
          | Some _ | None -> false))

let incr t ~tid ~key ~delta =
  match get t ~tid ~key with
  | None -> None
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | None -> None
      | Some n ->
          let n' = max 0 (n + delta) in
          set t ~tid ~key ~value:(string_of_int n');
          Some n')

let count t = Atomic.get t.count

(** Stored payload bytes (key + value of every live item) — a stats walk
    over the table. Racy against concurrent mutation: an item retired
    mid-walk may read torn lengths, so each item is guarded and skipped on
    any failure rather than raising into the stats path. *)
let stats_bytes t ~tid =
  let heap = Ctx.heap t.ctx in
  let total = ref 0 in
  Durable_hash.iter_nodes t.ctx t.table (fun node ~deleted ->
      if not deleted then
        try
          let item = Nvm.Heap.load heap ~tid (node + 1) in
          total :=
            !total
            + String.length (Item.read_key t.ctx ~tid item)
            + String.length (Item.read_value t.ctx ~tid item)
        with _ -> ());
  !total

(** Every reachable node address: hash nodes plus the items their values
    point to — the traversal the recovery sweep needs. *)
let iter_reachable t f =
  Durable_hash.iter_nodes t.ctx t.table (fun node ~deleted ->
      f node;
      if not deleted then
        f (Nvm.Heap.load (Ctx.heap t.ctx) ~tid:0 (node + 1)))

(** Re-attach to a crashed (or cleanly shut down) table: restore hash-table
    consistency and rebuild the volatile LRU and item count, but do {e not}
    sweep for leaked items. A single-table caller wants [recover]; a sharded
    front end (NVServe) attaches every shard first and then runs one combined
    sweep over the union of their reachable sets, because the active pages
    are shared across shards. *)
let attach ctx ~nbuckets ~capacity =
  let table = Durable_hash.attach ctx ~nbuckets in
  Durable_hash.recover_consistency ctx table;
  let t =
    {
      ctx;
      table;
      lru = Lru.create ();
      capacity;
      count = Atomic.make 0;
      lock = Mutex.create ();
    }
  in
  Durable_hash.iter_nodes ctx table (fun node ~deleted ->
      if not deleted then begin
        let item = Nvm.Heap.load (Ctx.heap ctx) ~tid:0 (node + 1) in
        Lru.add t.lru item;
        ignore (Atomic.fetch_and_add t.count 1)
      end);
  t

(** Re-attach under link-free mode, where the table's links are volatile
    garbage after a crash: repeat the carve, zero the bucket heads, start
    empty. The caller (a link-free recovery scan) re-admits surviving items
    with [readmit]. *)
let attach_empty ctx ~nbuckets ~capacity =
  let table = Durable_hash.attach ctx ~nbuckets in
  Durable_hash.reset ctx table;
  {
    ctx;
    table;
    lru = Lru.create ();
    capacity;
    count = Atomic.make 0;
    lock = Mutex.create ();
  }

(** Re-admit a surviving item (address still allocated, payload durable)
    into a freshly reset table, keyed by its stored hash word. False if the
    hash is already bound — a duplicate from a crash mid-overwrite; the
    caller frees the loser. *)
let readmit t cu item =
  let h = Nvm.Heap.Cursor.load cu (Item.hash_of item) in
  if Durable_hash.insert_c t.ctx t.table cu ~key:h ~value:item then begin
    Lru.add t.lru item;
    ignore (Atomic.fetch_and_add t.count 1);
    true
  end
  else false

(** Recover a crashed NV-Memcached: restore hash-table consistency, sweep the
    active slabs for allocated-but-unreachable items, rebuild the volatile
    LRU and item count. Returns the recovered instance. *)
let recover ctx ~nbuckets ~capacity ~active_pages =
  let t = attach ctx ~nbuckets ~capacity in
  ignore (Recovery.sweep_traversal ctx ~active_pages ~iter:(iter_reachable t));
  t

let ops ?(name = "nv-memcached") t =
  {
    Cache_intf.name;
    set = (fun ~tid ~key ~value -> set t ~tid ~key ~value);
    set_ttl = (fun ~tid ~key ~value ~expire_at -> set_ttl t ~tid ~key ~value ~expire_at);
    get = (fun ~tid ~key -> get t ~tid ~key);
    delete = (fun ~tid ~key -> delete t ~tid ~key);
    incr = (fun ~tid ~key ~delta -> incr t ~tid ~key ~delta);
    count = (fun () -> count t);
    defer_begin = (fun ~tid -> Link_persist.defer_begin t.ctx ~tid);
    defer_commit = (fun ~tid ~ops -> Link_persist.defer_commit t.ctx ~tid ~ops);
  }
