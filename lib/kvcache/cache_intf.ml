(** Common runtime interface of the three Memcached builds (volatile,
    clht-like, NV), so memtier and the text protocol drive them through one
    code path.

    Expiry times are absolute wall-clock seconds ([0.] = never); honoring
    them lazily on [get] is each build's job. *)

type ops = {
  name : string;
  set : tid:int -> key:string -> value:string -> unit;
  set_ttl : tid:int -> key:string -> value:string -> expire_at:float -> unit;
  get : tid:int -> key:string -> string option;
  delete : tid:int -> key:string -> bool;
  incr : tid:int -> key:string -> delta:int -> int option;
      (** Add [delta] (may be negative) to a decimal value; [None] if the
          key is absent or not a number. *)
  count : unit -> int;
  defer_begin : tid:int -> unit;
      (** Open a group-commit batch on the calling thread: subsequent
          mutations defer their persistence fences until [defer_commit].
          The caller must withhold acks until then. No-op for builds with
          nothing to fence (volatile) or their own batching (link cache). *)
  defer_commit : tid:int -> ops:int -> unit;
      (** Close the batch: one covering fence for everything deferred since
          [defer_begin]; [ops] is the number of requests executed in it.
          After return, every mutation in the batch is durable. *)
}
