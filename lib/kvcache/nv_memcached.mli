(** NV-Memcached: a durable Memcached core (paper section 6.5).

    The hash table is the log-free durable hash table keyed by a 48-bit
    string hash; the slab allocator is [Nvalloc] under NV-epochs, whose
    active page table plays the paper's "active slab table". LRU chains are
    volatile and rebuilt at recovery by walking the recovered table — that
    walk is the recovery side of Figure 11. Items carry durable expiry
    times (lazy reaping). With a [Volatile]-mode context this same module is
    the lock-free volatile "memcached-clht" build. *)

type t

val create : Lfds.Ctx.t -> nbuckets:int -> capacity:int -> t

val set : t -> tid:int -> key:string -> value:string -> unit
val set_ttl : t -> tid:int -> key:string -> value:string -> expire_at:float -> unit
val get : t -> tid:int -> key:string -> string option
val delete : t -> tid:int -> key:string -> bool

(** Add [delta] to a decimal value, clamping at zero (memcached semantics);
    [None] if absent or non-numeric. *)
val incr : t -> tid:int -> key:string -> delta:int -> int option

val count : t -> int

(** Stored payload bytes (key + value of every live item): a stats walk
    over the hash table, racy against concurrent mutation — items retired
    mid-walk are skipped, never raised on. *)
val stats_bytes : t -> tid:int -> int

(** Recover a crashed instance: restore table consistency, sweep active
    slabs for leaked items, rebuild the LRU and count. *)
val recover :
  Lfds.Ctx.t -> nbuckets:int -> capacity:int -> active_pages:int list -> t

(** [recover] without the leak sweep: restore table consistency and rebuild
    the volatile LRU and count only. For sharded deployments (NVServe) that
    attach every shard and then run one combined sweep over the union of the
    shards' reachable sets — active pages are shared across shards, so
    per-shard sweeps would free each other's live items. *)
val attach : Lfds.Ctx.t -> nbuckets:int -> capacity:int -> t

(** Re-attach under link-free mode, whose links are garbage after a crash:
    repeat the carve, zero the bucket heads, start empty. The caller's
    recovery scan re-admits the surviving items with {!readmit}. *)
val attach_empty : Lfds.Ctx.t -> nbuckets:int -> capacity:int -> t

(** Re-admit a surviving item into a freshly reset table by its stored hash
    word; false if the hash is already bound (crash-mid-overwrite
    duplicate — the caller frees the loser). *)
val readmit : t -> Nvm.Heap.cursor -> int -> bool

(** Call [f] with every reachable node address — hash-table nodes and the
    items their values point to — for recovery sweeps and leak counting. *)
val iter_reachable : t -> (int -> unit) -> unit

(** Package as the common cache interface ([name] defaults to
    ["nv-memcached"]). *)
val ops : ?name:string -> t -> Cache_intf.ops
