(** Packing strings into heap words.

    Seven characters per 64-bit word, so packed words never set the sign bit
    and always round-trip through the (63-bit-int) simulated heap. *)

open Nvm

let bytes_per_word = 7
let words_needed len = (len + bytes_per_word - 1) / bytes_per_word

(** FNV-1a hash of [s], folded into the positive key space (never 0). *)
let hash s =
  let h = ref 0xBF29CE484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001B3) s;
  let v = !h land (Lfds.Set_intf.max_key - 1) in
  if v = 0 then 1 else v

let write_c cu ~addr s =
  let len = String.length s in
  let nwords = words_needed len in
  for w = 0 to nwords - 1 do
    let word = ref 0 in
    let base = w * bytes_per_word in
    for b = min (len - base) bytes_per_word - 1 downto 0 do
      word := (!word lsl 8) lor Char.code s.[base + b]
    done;
    Heap.Cursor.store cu (addr + w) !word
  done

let read_c cu ~addr ~len =
  let buf = Bytes.create len in
  for i = 0 to len - 1 do
    let word = Heap.Cursor.load cu (addr + (i / bytes_per_word)) in
    Bytes.set buf i (Char.chr ((word lsr (8 * (i mod bytes_per_word))) land 0xFF))
  done;
  Bytes.to_string buf

let write heap ~tid ~addr s = write_c (Heap.cursor heap ~tid) ~addr s
let read heap ~tid ~addr ~len = read_c (Heap.cursor heap ~tid) ~addr ~len
