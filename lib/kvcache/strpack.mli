(** Packing strings into heap words: seven characters per 64-bit word so
    packed words never set the sign bit of the 63-bit simulated heap. *)

val bytes_per_word : int
val words_needed : int -> int

(** FNV-1a hash folded into the positive key space (never 0) — the durable
    hash table's key for an item. *)
val hash : string -> int

val write : Nvm.Heap.t -> tid:int -> addr:int -> string -> unit
val read : Nvm.Heap.t -> tid:int -> addr:int -> len:int -> string

(** Cursor-threading forms (the fast path the [~tid] forms shim onto). *)
val write_c : Nvm.Heap.cursor -> addr:int -> string -> unit

val read_c : Nvm.Heap.cursor -> addr:int -> len:int -> string
