(** Memcached text protocol over any cache build.

    Implements the core of the classic ASCII protocol — [set]/[add]/
    [replace], [get]/[gets] (multi-key), [delete], [incr]/[decr], [touch]
    via re-set, [stats], [version], [verbosity] — against a
    [Cache_intf.ops], so the same frontend drives the volatile, clht and NV
    builds. The protocol operates on complete request strings; the socket
    loop that frames them out of a TCP byte stream is NVServe
    ([Server.Nvserve]), whose workers call [handle] once per framed request.

    Requests are complete commands including any data block:
    {v set greeting 0 0 5\r\nhello\r\n v}

    Malformed input — torn data blocks, negative or non-numeric byte counts,
    missing terminators, oversized values — answers with [CLIENT_ERROR] /
    [SERVER_ERROR] rather than raising, so a server loop survives hostile or
    desynchronized clients. *)

type t = { backend : Cache_intf.ops; start : float }

let create backend = { backend; start = Unix.gettimeofday () }

let crlf = "\r\n"

(* Relative-or-absolute expiry per the memcached convention: 0 = never,
   <= 30 days = relative seconds, otherwise absolute unix time. *)
let expire_of_exptime exptime =
  if exptime = 0 then 0.
  else if exptime <= 2_592_000 then Unix.gettimeofday () +. float_of_int exptime
  else float_of_int exptime

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let strip_crlf s =
  let n = String.length s in
  if n >= 2 && s.[n - 2] = '\r' && s.[n - 1] = '\n' then String.sub s 0 (n - 2)
  else if n >= 1 && s.[n - 1] = '\n' then String.sub s 0 (n - 1)
  else s

(* A request = first line + optional data block. *)
let parse_request req =
  match String.index_opt req '\n' with
  | None -> (strip_crlf req, "")
  | Some i ->
      let line = strip_crlf (String.sub req 0 (i + 1)) in
      let rest = String.sub req (i + 1) (String.length req - i - 1) in
      (line, rest)

let storage_command t ~tid ~cmd ~key ~exptime ~bytes ~data =
  (* The data block must be exactly [bytes] long, terminated by (C)RLF;
     anything else is a torn or misframed request. Both checks answer with
     CLIENT_ERROR instead of raising, so a server loop survives bad input. *)
  if String.length data < bytes then "CLIENT_ERROR bad data chunk" ^ crlf
  else if
    (match String.sub data bytes (String.length data - bytes) with
    | "" | "\r\n" | "\n" -> false
    | _ -> true)
  then "CLIENT_ERROR bad data chunk" ^ crlf
  else
    let value = String.sub data 0 bytes in
    let exists = t.backend.get ~tid ~key <> None in
    let store value =
      (* The item layout caps key+value size; surface the limit as the
         memcached wire error rather than an exception. *)
      match
        t.backend.set_ttl ~tid ~key ~value ~expire_at:(expire_of_exptime exptime)
      with
      | () -> "STORED" ^ crlf
      | exception Invalid_argument _ ->
          "SERVER_ERROR object too large for cache" ^ crlf
    in
    match cmd with
    | "set" -> store value
    | "add" -> if exists then "NOT_STORED" ^ crlf else store value
    | "replace" -> if exists then store value else "NOT_STORED" ^ crlf
    | "append" | "prepend" -> (
        match t.backend.get ~tid ~key with
        | None -> "NOT_STORED" ^ crlf
        | Some old -> (
            (* Like memcached, append/prepend ignore the request's exptime. *)
            let value = if cmd = "append" then old ^ value else value ^ old in
            match t.backend.set ~tid ~key ~value with
            | () -> "STORED" ^ crlf
            | exception Invalid_argument _ ->
                "SERVER_ERROR object too large for cache" ^ crlf))
    | _ -> "ERROR" ^ crlf

let get_command t ~tid keys =
  let buf = Buffer.create 64 in
  List.iter
    (fun key ->
      match t.backend.get ~tid ~key with
      | Some value ->
          Buffer.add_string buf
            (Printf.sprintf "VALUE %s 0 %d\r\n%s\r\n" key (String.length value)
               value)
      | None -> ())
    keys;
  Buffer.add_string buf ("END" ^ crlf);
  Buffer.contents buf

let stats_command t =
  Printf.sprintf
    "STAT backend %s\r\nSTAT curr_items %d\r\nSTAT uptime %d\r\nEND\r\n"
    t.backend.name (t.backend.count ())
    (int_of_float (Unix.gettimeofday () -. t.start))

(** Handle one complete request; returns the wire response. *)
let handle t ~tid req =
  let line, data = parse_request req in
  match split_words line with
  | [] -> "ERROR" ^ crlf
  | cmd :: args -> (
      match (cmd, args) with
      | ("set" | "add" | "replace" | "append" | "prepend"), [ key; _flags; exptime; bytes ]
        -> (
          match (int_of_string_opt exptime, int_of_string_opt bytes) with
          | Some exptime, Some bytes when bytes >= 0 ->
              storage_command t ~tid ~cmd ~key ~exptime ~bytes ~data
          | _ -> "CLIENT_ERROR bad command line format" ^ crlf)
      | ("get" | "gets"), (_ :: _ as keys) -> get_command t ~tid keys
      | "delete", [ key ] ->
          if t.backend.delete ~tid ~key then "DELETED" ^ crlf
          else "NOT_FOUND" ^ crlf
      | ("incr" | "decr"), [ key; n ] -> (
          match int_of_string_opt n with
          | None -> "CLIENT_ERROR invalid numeric delta argument" ^ crlf
          | Some n -> (
              let delta = if cmd = "incr" then n else -n in
              match t.backend.incr ~tid ~key ~delta with
              | Some v -> string_of_int v ^ crlf
              | None -> "NOT_FOUND" ^ crlf))
      | "touch", [ key; exptime ] -> (
          match (t.backend.get ~tid ~key, int_of_string_opt exptime) with
          | Some value, Some exptime ->
              t.backend.set_ttl ~tid ~key ~value
                ~expire_at:(expire_of_exptime exptime);
              "TOUCHED" ^ crlf
          | _ -> "NOT_FOUND" ^ crlf)
      | "stats", [] -> stats_command t
      | "version", [] -> "VERSION nvlf-0.1" ^ crlf
      | "verbosity", [ _ ] -> "OK" ^ crlf
      | "flush_all", [] ->
          (* Not supported store-wide without enumeration; report OK for
             client compatibility but leave data (memcached semantics allow
             lazy invalidation; we document the difference). *)
          "OK" ^ crlf
      | _ -> "ERROR" ^ crlf)

(** Run a scripted session: one response per request. *)
let session t ~tid reqs = List.map (handle t ~tid) reqs
