(** Memcached text protocol over any cache build.

    Implements the core of the classic ASCII protocol — [set]/[add]/
    [replace], [get]/[gets] (multi-key), [delete], [incr]/[decr], [touch]
    via re-set, [stats], [version], [verbosity] — against a
    [Cache_intf.ops], so the same frontend drives the volatile, clht and NV
    builds. The protocol operates on complete request strings; the socket
    loop that frames them out of a TCP byte stream is NVServe
    ([Server.Nvserve]), whose workers call [handle] once per framed request.

    Requests are complete commands including any data block:
    {v set greeting 0 0 5\r\nhello\r\n v}

    Malformed input — torn data blocks, negative or non-numeric byte counts,
    missing terminators, oversized values — answers with [CLIENT_ERROR] /
    [SERVER_ERROR] rather than raising, so a server loop survives hostile or
    desynchronized clients. *)

type t = {
  backend : Cache_intf.ops;
  start : float;
  stats_ext : (tid:int -> string option -> (string * string) list option) option;
      (** server-side stats provider: [ext ~tid None] appends keys to plain
          [stats], [ext ~tid (Some arg)] answers [stats <arg>] ([None] =
          unknown argument, rejected with [ERROR] per memcached) *)
}

let create ?stats_ext backend =
  { backend; start = Unix.gettimeofday (); stats_ext }

let crlf = "\r\n"

(* Constant responses, built once — "STORED" ^ crlf per request is an
   allocation the hot path can skip. *)
let stored_r = "STORED" ^ crlf
let not_stored_r = "NOT_STORED" ^ crlf
let deleted_r = "DELETED" ^ crlf
let not_found_r = "NOT_FOUND" ^ crlf
let touched_r = "TOUCHED" ^ crlf
let ok_r = "OK" ^ crlf
let error_r = "ERROR" ^ crlf
let end_r = "END" ^ crlf
let bad_chunk_r = "CLIENT_ERROR bad data chunk" ^ crlf
let bad_format_r = "CLIENT_ERROR bad command line format" ^ crlf
let too_large_r = "SERVER_ERROR object too large for cache" ^ crlf
let bad_delta_r = "CLIENT_ERROR invalid numeric delta argument" ^ crlf

(* Relative-or-absolute expiry per the memcached convention: 0 = never,
   <= 30 days = relative seconds, otherwise absolute unix time. *)
let expire_of_exptime exptime =
  if exptime = 0 then 0.
  else if exptime <= 2_592_000 then Unix.gettimeofday () +. float_of_int exptime
  else float_of_int exptime

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let strip_crlf s =
  let n = String.length s in
  if n >= 2 && s.[n - 2] = '\r' && s.[n - 1] = '\n' then String.sub s 0 (n - 2)
  else if n >= 1 && s.[n - 1] = '\n' then String.sub s 0 (n - 1)
  else s

(* A request = first line + optional data block. *)
let parse_request req =
  match String.index_opt req '\n' with
  | None -> (strip_crlf req, "")
  | Some i ->
      let line = strip_crlf (String.sub req 0 (i + 1)) in
      let rest = String.sub req (i + 1) (String.length req - i - 1) in
      (line, rest)

let storage_command t ~tid ~cmd ~key ~exptime ~bytes ~data =
  (* The data block must be exactly [bytes] long, terminated by (C)RLF;
     anything else is a torn or misframed request. Both checks answer with
     CLIENT_ERROR instead of raising, so a server loop survives bad input. *)
  if String.length data < bytes then bad_chunk_r
  else if
    (match String.sub data bytes (String.length data - bytes) with
    | "" | "\r\n" | "\n" -> false
    | _ -> true)
  then bad_chunk_r
  else
    let value = String.sub data 0 bytes in
    (* Only add/replace need the existence probe; a plain set must not pay
       an extra full lookup on the hot path. *)
    let exists () = t.backend.get ~tid ~key <> None in
    let store value =
      (* The item layout caps key+value size; surface the limit as the
         memcached wire error rather than an exception. *)
      match
        t.backend.set_ttl ~tid ~key ~value ~expire_at:(expire_of_exptime exptime)
      with
      | () -> stored_r
      | exception Invalid_argument _ -> too_large_r
    in
    match cmd with
    | "set" -> store value
    | "add" -> if exists () then not_stored_r else store value
    | "replace" -> if exists () then store value else not_stored_r
    | "append" | "prepend" -> (
        match t.backend.get ~tid ~key with
        | None -> not_stored_r
        | Some old -> (
            (* Like memcached, append/prepend ignore the request's exptime. *)
            let value = if cmd = "append" then old ^ value else value ^ old in
            match t.backend.set ~tid ~key ~value with
            | () -> stored_r
            | exception Invalid_argument _ -> too_large_r))
    | _ -> error_r

let get_command t ~tid keys =
  let buf = Buffer.create 64 in
  List.iter
    (fun key ->
      match t.backend.get ~tid ~key with
      | Some value ->
          Buffer.add_string buf "VALUE ";
          Buffer.add_string buf key;
          Buffer.add_string buf " 0 ";
          Buffer.add_string buf (string_of_int (String.length value));
          Buffer.add_string buf crlf;
          Buffer.add_string buf value;
          Buffer.add_string buf crlf
      | None -> ())
    keys;
  Buffer.add_string buf "END\r\n";
  Buffer.contents buf

let render_stats kvs =
  let b = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string b "STAT ";
      Buffer.add_string b k;
      Buffer.add_char b ' ';
      Buffer.add_string b v;
      Buffer.add_string b crlf)
    kvs;
  Buffer.add_string b end_r;
  Buffer.contents b

let stats_command t ~tid =
  let base =
    [
      ("backend", t.backend.name);
      ("curr_items", string_of_int (t.backend.count ()));
      ("uptime", string_of_int (int_of_float (Unix.gettimeofday () -. t.start)));
    ]
  in
  let extra =
    match t.stats_ext with
    | None -> []
    | Some ext -> Option.value (ext ~tid None) ~default:[]
  in
  render_stats (base @ extra)

(* [stats <arg>]: only the extension knows the sub-reports; without one —
   or when it disowns the argument — answer ERROR, exactly as memcached
   rejects unknown stats arguments. *)
let stats_arg_command t ~tid arg =
  match t.stats_ext with
  | None -> error_r
  | Some ext -> (
      match ext ~tid (Some arg) with
      | Some kvs -> render_stats kvs
      | None -> error_r)

(* General parse: splits the command line into words and dispatches. The
   regular [set]/[get] shapes short-circuit in [handle] below; everything
   (including those, when malformed) also works through here. *)
let handle_general t ~tid req =
  let line, data = parse_request req in
  match split_words line with
  | [] -> error_r
  | cmd :: args -> (
      match (cmd, args) with
      | ("set" | "add" | "replace" | "append" | "prepend"), [ key; _flags; exptime; bytes ]
        -> (
          match (int_of_string_opt exptime, int_of_string_opt bytes) with
          | Some exptime, Some bytes when bytes >= 0 ->
              storage_command t ~tid ~cmd ~key ~exptime ~bytes ~data
          | _ -> bad_format_r)
      | ("get" | "gets"), (_ :: _ as keys) -> get_command t ~tid keys
      | "delete", [ key ] ->
          if t.backend.delete ~tid ~key then deleted_r else not_found_r
      | ("incr" | "decr"), [ key; n ] -> (
          match int_of_string_opt n with
          | None -> bad_delta_r
          | Some n -> (
              let delta = if cmd = "incr" then n else -n in
              match t.backend.incr ~tid ~key ~delta with
              | Some v -> string_of_int v ^ crlf
              | None -> not_found_r))
      | "touch", [ key; exptime ] -> (
          match (t.backend.get ~tid ~key, int_of_string_opt exptime) with
          | Some value, Some exptime ->
              t.backend.set_ttl ~tid ~key ~value
                ~expire_at:(expire_of_exptime exptime);
              touched_r
          | _ -> not_found_r)
      | "stats", [] -> stats_command t ~tid
      | "stats", [ arg ] -> stats_arg_command t ~tid arg
      | "version", [] -> "VERSION nvlf-0.1" ^ crlf
      | "verbosity", [ _ ] -> ok_r
      | "flush_all", [] ->
          (* Not supported store-wide without enumeration; report OK for
             client compatibility but leave data (memcached semantics allow
             lazy invalidation; we document the difference). *)
          ok_r
      | _ -> error_r)

(* ---------- hot-path fast parse ---------- *)

(* The general parser above allocates the command line, a word list and the
   data block per request; under a pipelined load that parse is a visible
   slice of per-request CPU. The two regular shapes the framer surfaces most
   — [set key flags exptime bytes] with a whole CRLF data block, and a
   single-key [get] — are parsed in place here with index scans. Anything
   irregular (signs, hex, odd arity, torn blocks) returns [None] and takes
   the general path, so observable behavior is unchanged. *)

(* Offsets [(s, e)] of the [k]th word in s[pos, stop); see Framing.word. *)
let rec word_s s ~pos ~stop k =
  let i = ref pos in
  while !i < stop && String.unsafe_get s !i = ' ' do incr i done;
  if !i >= stop then None
  else begin
    let e = ref !i in
    while !e < stop && String.unsafe_get s !e <> ' ' do incr e done;
    if k = 0 then Some (!i, !e) else word_s s ~pos:!e ~stop (k - 1)
  end

(* Non-negative decimal in s[i, e), or [None]. *)
let atoi_s s i e =
  if e <= i || e - i > 10 then None
  else begin
    let v = ref 0 and ok = ref true in
    for j = i to e - 1 do
      let c = String.unsafe_get s j in
      if c >= '0' && c <= '9' then v := (!v * 10) + (Char.code c - Char.code '0')
      else ok := false
    done;
    if !ok then Some !v else None
  end

let starts_with4 req c0 c1 c2 c3 =
  String.length req >= 4
  && String.unsafe_get req 0 = c0
  && String.unsafe_get req 1 = c1
  && String.unsafe_get req 2 = c2
  && String.unsafe_get req 3 = c3

let try_fast_set t ~tid req =
  match String.index_opt req '\n' with
  | None -> None
  | Some lf -> (
      let stop = if lf > 0 && req.[lf - 1] = '\r' then lf - 1 else lf in
      (* Words after "set ": key, flags, exptime, bytes — exactly four. *)
      match
        ( word_s req ~pos:4 ~stop 0,
          word_s req ~pos:4 ~stop 2,
          word_s req ~pos:4 ~stop 3 )
      with
      | Some (ks, ke), Some (es, ee), Some (bs, be)
        when word_s req ~pos:be ~stop 0 = None -> (
          match (atoi_s req es ee, atoi_s req bs be) with
          | Some exptime, Some bytes ->
              let dstart = lf + 1 in
              let dlen = String.length req - dstart in
              if
                dlen = bytes + 2
                && String.unsafe_get req (dstart + bytes) = '\r'
                && String.unsafe_get req (dstart + bytes + 1) = '\n'
              then begin
                let key = String.sub req ks (ke - ks) in
                let value = String.sub req dstart bytes in
                match
                  t.backend.set_ttl ~tid ~key ~value
                    ~expire_at:(expire_of_exptime exptime)
                with
                | () -> Some stored_r
                | exception Invalid_argument _ -> Some too_large_r
              end
              else None
          | _ -> None)
      | _ -> None)

let try_fast_get t ~tid req =
  match String.index_opt req '\n' with
  | None -> None
  | Some lf -> (
      if lf <> String.length req - 1 then None
      else
        let stop = if lf > 0 && req.[lf - 1] = '\r' then lf - 1 else lf in
        match word_s req ~pos:4 ~stop 0 with
        | None -> None
        | Some (ks, ke) ->
            if word_s req ~pos:ke ~stop 0 <> None then None
            else
              let key = String.sub req ks (ke - ks) in
              Some
                (match t.backend.get ~tid ~key with
                | None -> end_r
                | Some value ->
                    let b =
                      Buffer.create (String.length key + String.length value + 24)
                    in
                    Buffer.add_string b "VALUE ";
                    Buffer.add_string b key;
                    Buffer.add_string b " 0 ";
                    Buffer.add_string b (string_of_int (String.length value));
                    Buffer.add_string b crlf;
                    Buffer.add_string b value;
                    Buffer.add_string b crlf;
                    Buffer.add_string b end_r;
                    Buffer.contents b))

(** Handle one complete request; returns the wire response. *)
let handle t ~tid req =
  let fast =
    if starts_with4 req 's' 'e' 't' ' ' then try_fast_set t ~tid req
    else if starts_with4 req 'g' 'e' 't' ' ' then try_fast_get t ~tid req
    else None
  in
  match fast with Some resp -> resp | None -> handle_general t ~tid req

(** Run a scripted session: one response per request. *)
let session t ~tid reqs = List.map (handle t ~tid) reqs

(* Group-commit split execution: [handle_deferred] runs a request with its
   persistence fences deferred (the backend's batch opens on first use and
   stays open); [commit] retires the whole batch under one covering fence.
   The caller owns the durability contract: responses produced by
   [handle_deferred] must not reach the client until [commit] returns. *)

let handle_deferred t ~tid req =
  t.backend.Cache_intf.defer_begin ~tid;
  handle t ~tid req

let commit t ~tid ~ops = t.backend.Cache_intf.defer_commit ~tid ~ops
