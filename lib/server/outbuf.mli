(** Per-connection output buffer with a release watermark — the server's
    reply-release queue.

    Responses are appended as they are produced ([add_string]) but the
    socket may only take the {e released} prefix: a group-commit worker
    appends a whole batch's responses {e held}, issues the covering fence,
    then calls [release_all] — so no ack ever reaches the wire before the
    mutation it acknowledges is durable.

    The write path is copy-free: [bytes]/[start]/[writable] expose the
    released span in the backing buffer for one [Unix.write], and [consume]
    advances past what the socket took. Appends compact consumed space away
    (one blit, only when the tail runs out) or grow the backing by doubling
    — replacing the old per-flush [Buffer.to_bytes] copy that made a slow
    drain O(n²). *)

type t

(** Fresh buffer with at least [capacity] bytes backing. *)
val create : int -> t

(** Total buffered bytes (held + released). *)
val length : t -> int

(** Released bytes the socket may take now. *)
val writable : t -> int

(** Appended-but-unreleased bytes (responses awaiting their fence). *)
val held : t -> int

(** Backing buffer; the released span is [bytes..start+writable). Invalidated
    by the next [add_string]. *)
val bytes : t -> Bytes.t

(** Offset of the first unconsumed byte in [bytes]. *)
val start : t -> int

(** Append a response (held until the next [release_all]). *)
val add_string : t -> string -> unit

(** Release everything appended so far — call after the covering fence. *)
val release_all : t -> unit

(** Drop [n] released bytes (the socket accepted them). Raises
    [Invalid_argument] if [n] exceeds [writable]. *)
val consume : t -> int -> unit

(** Forget everything (connection teardown). *)
val clear : t -> unit

(** {2 Telemetry} *)

(** Queue-depth high-water mark: the largest [length] this buffer ever
    reached (bytes buffered awaiting fence or socket). *)
val hwm : t -> int

(** Times the backing array had to grow (a growing buffer means the peer
    reads slower than the server produces). *)
val grows : t -> int
