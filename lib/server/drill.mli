(** The crash-recovery drill: the whole durability story, end to end, in one
    run.

    A fresh NVServe instance takes live pipelined traffic from an
    acknowledgement-logged {!Loadgen} fleet; mid-traffic the server is
    {!Nvserve.kill}ed (no flush, no drain — connections just die),
    optionally a deliberately torn heap operation is injected on top, and
    the heap suffers a simulated power failure ([Nvm.Heap.crash]) that
    evicts an arbitrary subset of the volatile cache lines. Recovery is then
    timed — layout reconstruction ({!Lfds.Ctx.recover}), per-shard table
    consistency restoration, and the combined parallel leak sweep
    ({!Shard_store.recover}) — the server restarts on the same port over the
    recovered store, and every acknowledged mutation is audited over TCP
    ({!Loadgen.verify_acked}).

    Whether losses fail the drill is the persist mode's own ack contract
    ({!Lfds.Persist_mode.acks_durable}): modes whose acks are durable at
    response time (link-and-persist) may lose zero acknowledged mutations
    and leak zero nodes; flush-tolerant modes (link-cache) expect to lose
    acknowledged operations after the last cache flush, so losses are
    reported but do not fail the drill ([strict] is false). The server is sized so LRU
    eviction cannot masquerade as loss. *)

type config = {
  nworkers : int;  (** server workers (= shards = recovery sweep workers) *)
  nbuckets : int;
  capacity : int;  (** keep well above [nkeys]: eviction would alias loss *)
  mode : Lfds.Persist_mode.t;  (** durable modes only *)
  nconns : int;  (** load connections *)
  duration : float;  (** seconds of load before the kill *)
  nkeys : int;
  pipeline : int;
  seed : int;
  eviction_probability : float;  (** cache-line eviction chance at crash *)
  torn_op : bool;  (** inject a mid-operation crash before the power cut *)
  max_batch : int;  (** server group-commit cap; 1 = eager per-op fences *)
  max_delay_us : int;  (** server group-commit starvation bound *)
}

(** 4 workers, 2048 buckets, 20k capacity over 2k keys, link-and-persist,
    4 connections, 1 s of load, 50% eviction, torn op on, server-default
    group commit. *)
val default_config : unit -> config

type report = {
  load : Loadgen.report;  (** the traffic the server took before dying *)
  acked_keys : int;  (** distinct keys with an acknowledged mutation *)
  inflight_keys : int;  (** keys mid-mutation at the kill (audit-exempt) *)
  fences : int;  (** heap fences issued up to the kill *)
  fences_per_req : float;  (** fences per served request — the persist
                               mode's ack cost under server traffic *)
  torn : bool;  (** a torn operation was actually injected *)
  ctx_recover_s : float;  (** layout + allocator reconstruction *)
  sweep_s : float;  (** table attach + combined parallel leak sweep *)
  recovery_s : float;
      (** total recovery time — the sum of the timeline's depth-0 recovery
          phases (equal to the crash-to-serving wall time up to the
          nanoseconds between phases) *)
  timeline : Nvm.Timeline.event list;
      (** the recovery journal: timestamped phase spans emitted by
          [Heap.crash], [Ctx.recover] and [Shard_store.recover] — crash
          phases first ([heap.*]), then recovery phases ([ctx.*],
          [shards.*]); nested spans carry [depth > 0] *)
  freed_leaks : int;  (** nodes reclaimed by the sweep *)
  residual_leaks : int;  (** leaks remaining after the sweep — must be 0 *)
  checked : int;  (** acknowledged keys audited over TCP *)
  exempt : int;
  lost : int;  (** audited keys contradicting their acknowledgement *)
  post_ok : bool;  (** fresh set/get served after restart *)
  strict : bool;  (** losses fail the drill ([Persist_mode.acks_durable]) *)
  ok : bool;  (** the drill's verdict *)
}

(** Run the drill to completion; every domain it spawns is joined and both
    server incarnations are shut down before it returns. *)
val run : config -> report
