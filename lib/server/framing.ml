(** Incremental memcached ASCII request framing (see the interface for the
    contract). One scan finds the command line; storage commands then wait
    for their declared data block before the request is surfaced whole. *)

let max_line_bytes = 2048
let max_data_bytes = 16384

type result =
  | Request of { req : string; consumed : int }
  | Reject of { response : string; consumed : int }
  | Need_more
  | Too_long

let crlf = "\r\n"

let is_storage = function
  | "set" | "add" | "replace" | "append" | "prepend" -> true
  | _ -> false

(* First '\n' inside the window, never touching bytes past it. *)
let find_lf buf ~pos ~len =
  let stop = pos + len in
  let rec go i =
    if i >= stop then None else if Bytes.get buf i = '\n' then Some i else go (i + 1)
  in
  go pos

(* The scan below runs once per framed request on the server hot path, so
   it tokenizes the command line in place: no line string, no word list —
   the only allocation on the fast path is the surfaced request itself. *)

(* Offsets [(s, e)] of the [k]th (0-based) space-separated word in
   buf[pos, stop), or [None]. Runs of spaces collapse, like the
   [split_words]-based parse this replaces. *)
let rec word buf ~pos ~stop k =
  let s = ref pos in
  while !s < stop && Bytes.get buf !s = ' ' do incr s done;
  if !s >= stop then None
  else begin
    let e = ref !s in
    while !e < stop && Bytes.get buf !e <> ' ' do incr e done;
    if k = 0 then Some (!s, !e) else word buf ~pos:!e ~stop (k - 1)
  end

(* Non-negative decimal in buf[s, e); [None] on anything else (stricter
   than [int_of_string_opt] — no sign, no hex — which only byte counts no
   real client sends would notice). *)
let atoi buf s e =
  if e <= s || e - s > 10 then None
  else begin
    let v = ref 0 and ok = ref true in
    for i = s to e - 1 do
      let c = Bytes.get buf i in
      if c >= '0' && c <= '9' then v := (!v * 10) + (Char.code c - Char.code '0')
      else ok := false
    done;
    if !ok then Some !v else None
  end

let too_large_r = "SERVER_ERROR object too large for cache" ^ crlf
let bad_format_r = "CLIENT_ERROR bad command line format" ^ crlf
let error_r = "ERROR" ^ crlf

let next buf ~pos ~len =
  match find_lf buf ~pos ~len with
  | None -> if len >= max_line_bytes then Too_long else Need_more
  | Some lf -> (
      let line_len = lf - pos + 1 in
      if line_len > max_line_bytes then Too_long
      else
        let stop =
          if lf > pos && Bytes.get buf (lf - 1) = '\r' then lf - 1 else lf
        in
        let storage =
          match word buf ~pos ~stop 0 with
          | Some (s, e) -> is_storage (Bytes.sub_string buf s (e - s))
          | None -> false
        in
        if not storage then
          (* Line-only commands (get, delete, stats, garbage...): the
             protocol layer answers them, errors included. *)
          Request { req = Bytes.sub_string buf pos line_len; consumed = line_len }
        else
          match word buf ~pos ~stop 4 with
          | Some (s4, e4) when word buf ~pos:e4 ~stop 0 = None -> (
              match atoi buf s4 e4 with
              | Some n when n <= max_data_bytes ->
                  let total = line_len + n + 2 in
                  if len < total then Need_more
                  else
                    Request
                      { req = Bytes.sub_string buf pos total; consumed = total }
              | Some _ ->
                  (* Too large to buffer: refuse the line. The data block
                     that follows will be misread as commands until the
                     client resyncs — same failure mode as memcached. *)
                  Reject { response = too_large_r; consumed = line_len }
              | None -> Reject { response = bad_format_r; consumed = line_len })
          | _ ->
              (* Wrong arity leaves the data block length unknown; reject
                 the line alone. *)
              Reject { response = error_r; consumed = line_len })
