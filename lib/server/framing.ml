(** Incremental memcached ASCII request framing (see the interface for the
    contract). One scan finds the command line; storage commands then wait
    for their declared data block before the request is surfaced whole. *)

let max_line_bytes = 2048
let max_data_bytes = 16384

type result =
  | Request of { req : string; consumed : int }
  | Reject of { response : string; consumed : int }
  | Need_more
  | Too_long

let crlf = "\r\n"

let is_storage = function
  | "set" | "add" | "replace" | "append" | "prepend" -> true
  | _ -> false

(* First '\n' inside the window, never touching bytes past it. *)
let find_lf buf ~pos ~len =
  let stop = pos + len in
  let rec go i =
    if i >= stop then None else if Bytes.get buf i = '\n' then Some i else go (i + 1)
  in
  go pos

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let strip_crlf s =
  let n = String.length s in
  if n >= 2 && s.[n - 2] = '\r' && s.[n - 1] = '\n' then String.sub s 0 (n - 2)
  else if n >= 1 && s.[n - 1] = '\n' then String.sub s 0 (n - 1)
  else s

let next buf ~pos ~len =
  match find_lf buf ~pos ~len with
  | None -> if len >= max_line_bytes then Too_long else Need_more
  | Some lf -> (
      let line_len = lf - pos + 1 in
      if line_len > max_line_bytes then Too_long
      else
        let line = Bytes.sub_string buf pos line_len in
        match split_words (strip_crlf line) with
        | cmd :: args when is_storage cmd -> (
            match args with
            | [ _key; _flags; _exptime; bytes ] -> (
                match int_of_string_opt bytes with
                | Some n when n >= 0 && n <= max_data_bytes ->
                    let total = line_len + n + 2 in
                    if len < total then Need_more
                    else
                      Request { req = Bytes.sub_string buf pos total; consumed = total }
                | Some n when n > max_data_bytes ->
                    (* Too large to buffer: refuse the line. The data block
                       that follows will be misread as commands until the
                       client resyncs — same failure mode as memcached. *)
                    Reject
                      {
                        response = "SERVER_ERROR object too large for cache" ^ crlf;
                        consumed = line_len;
                      }
                | _ ->
                    Reject
                      {
                        response = "CLIENT_ERROR bad command line format" ^ crlf;
                        consumed = line_len;
                      })
            | _ ->
                (* Wrong arity leaves the data block length unknown; reject
                   the line alone. *)
                Reject { response = "ERROR" ^ crlf; consumed = line_len })
        | _ ->
            (* Line-only commands (get, delete, stats, garbage...): the
               protocol layer answers them, errors included. *)
            Request { req = line; consumed = line_len })
