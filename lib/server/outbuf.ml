(** Per-connection output buffer with a release watermark (see the
    interface). Layout: one backing [Bytes.t]; [start] is the first
    unconsumed byte, [len] the valid bytes from there, [released] the prefix
    of those the socket may take. Appends go at [start + len]; when the tail
    has no room, consumed space is compacted away (one blit) or the backing
    grows by doubling. Nothing is ever copied on the write path — the socket
    writes straight out of the backing bytes. *)

type t = {
  mutable buf : Bytes.t;
  mutable start : int;  (** first unconsumed byte *)
  mutable len : int;  (** valid bytes at [start ..] *)
  mutable released : int;  (** prefix of [len] eligible for the socket *)
  mutable hwm : int;  (** queue-depth high-water mark: max [len] ever seen *)
  mutable grows : int;  (** times the backing grew (telemetry) *)
}

let create capacity =
  {
    buf = Bytes.create (max 64 capacity);
    start = 0;
    len = 0;
    released = 0;
    hwm = 0;
    grows = 0;
  }

let length t = t.len
let writable t = t.released
let held t = t.len - t.released
let bytes t = t.buf
let start t = t.start
let hwm t = t.hwm
let grows t = t.grows

let ensure_room t need =
  let cap = Bytes.length t.buf in
  if t.start + t.len + need > cap then
    if t.len + need <= cap then begin
      (* Tail is tight but consumed space up front covers it: compact. *)
      Bytes.blit t.buf t.start t.buf 0 t.len;
      t.start <- 0
    end
    else begin
      let cap' = ref (max 64 (2 * cap)) in
      while t.len + need > !cap' do
        cap' := 2 * !cap'
      done;
      let buf' = Bytes.create !cap' in
      Bytes.blit t.buf t.start buf' 0 t.len;
      t.buf <- buf';
      t.start <- 0;
      t.grows <- t.grows + 1
    end

let add_string t s =
  let n = String.length s in
  if n > 0 then begin
    ensure_room t n;
    Bytes.blit_string s 0 t.buf (t.start + t.len) n;
    t.len <- t.len + n;
    if t.len > t.hwm then t.hwm <- t.len
  end

let release_all t = t.released <- t.len

let consume t n =
  if n < 0 || n > t.released then invalid_arg "Outbuf.consume";
  t.start <- t.start + n;
  t.len <- t.len - n;
  t.released <- t.released - n;
  if t.len = 0 then t.start <- 0

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.released <- 0
