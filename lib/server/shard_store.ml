(** Hash-partitioned NV-Memcached shards over one shared durable heap (see
    the interface). The shard index folds the same durable key hash the
    tables index, taken before the tables' own per-bucket re-mix, so shard
    choice and bucket choice stay independent. *)

type t = {
  ctx : Lfds.Ctx.t;
  shards : Kvcache.Nv_memcached.t array;
}

let nshards t = Array.length t.shards

let per_shard ~nshards ~nbuckets ~capacity =
  let b = max 16 (nbuckets / nshards) in
  let c = max 1 (capacity / nshards) in
  (b, c)

let create ctx ~nshards ~nbuckets ~capacity =
  if nshards < 1 then invalid_arg "Shard_store.create: nshards < 1";
  let b, c = per_shard ~nshards ~nbuckets ~capacity in
  {
    ctx;
    shards =
      Array.init nshards (fun _ ->
          Kvcache.Nv_memcached.create ctx ~nbuckets:b ~capacity:c);
  }

let attach ctx ~nshards ~nbuckets ~capacity =
  if nshards < 1 then invalid_arg "Shard_store.attach: nshards < 1";
  let b, c = per_shard ~nshards ~nbuckets ~capacity in
  {
    ctx;
    shards =
      Array.init nshards (fun _ ->
          Kvcache.Nv_memcached.attach ctx ~nbuckets:b ~capacity:c);
  }

let shard_index ~nshards key = Kvcache.Strpack.hash key mod nshards
let shard_of t key = shard_index ~nshards:(nshards t) key
let shard t key = t.shards.(shard_of t key)

let count t =
  Array.fold_left (fun acc s -> acc + Kvcache.Nv_memcached.count s) 0 t.shards

let items_per_shard t = Array.map Kvcache.Nv_memcached.count t.shards

let bytes_per_shard t ~tid =
  Array.map (fun s -> Kvcache.Nv_memcached.stats_bytes s ~tid) t.shards

let iter_reachable t f =
  Array.iter (fun s -> Kvcache.Nv_memcached.iter_reachable s f) t.shards

(* Link-free recovery: the tables' links were never persisted, so attaching
   and walking them is meaningless. Instead: reset every shard's buckets,
   scan the allocated slots of the initialized pages, classify by validity
   word alone ([valid_item] = committed cache item; hash-node verdicts and
   retracted items are garbage), free the garbage, and re-admit survivors
   into the shard their stored hash selects. Freeing before re-admitting
   matters: re-admission allocates fresh hash nodes from the same pages. *)
let attach_empty ctx ~nshards ~nbuckets ~capacity =
  if nshards < 1 then invalid_arg "Shard_store.attach_empty: nshards < 1";
  let b, c = per_shard ~nshards ~nbuckets ~capacity in
  {
    ctx;
    shards =
      Array.init nshards (fun _ ->
          Kvcache.Nv_memcached.attach_empty ctx ~nbuckets:b ~capacity:c);
  }

let recover_link_free ctx ~nshards ~nbuckets ~capacity =
  let t =
    Nvm.Timeline.span_current "shards.reset"
      ~detail:"re-create empty shard tables" (fun () ->
        attach_empty ctx ~nshards ~nbuckets ~capacity)
  in
  let tid = 0 in
  let alloc = Lfds.Ctx.allocator ctx in
  let heap = Lfds.Ctx.heap ctx in
  let cu = Lfds.Ctx.cursor ctx ~tid in
  let slots, survivors =
    Nvm.Timeline.span_current "shards.scan"
      ~detail:"classify allocated slots by validity word" (fun () ->
        (* Collect first: freeing flips the very bitmaps being iterated. *)
        let slots = ref [] in
        List.iter
          (fun page ->
            Nvm.Nvalloc.iter_allocated alloc ~tid ~page (fun addr ->
                slots := addr :: !slots))
          (Nvm.Nvalloc.initialized_pages alloc ~tid);
        let slots = List.rev !slots in
        let survives addr =
          Nvm.Heap.load heap ~tid (Kvcache.Item.validity_of addr)
          = Lfds.Link_free.valid_item
        in
        (slots, List.filter survives slots))
  in
  let freed = ref 0 in
  Nvm.Timeline.span_current "shards.free" ~detail:"free garbage slots + fence"
    (fun () ->
      let survives addr =
        Nvm.Heap.load heap ~tid (Kvcache.Item.validity_of addr)
        = Lfds.Link_free.valid_item
      in
      List.iter
        (fun addr ->
          if not (survives addr) then begin
            Nvm.Nvalloc.free alloc ~tid addr;
            incr freed
          end)
        slots;
      Nvm.Heap.fence heap ~tid);
  Nvm.Timeline.span_current "shards.readmit"
    ~detail:"reinsert survivors into hash-selected shards + fence" (fun () ->
      List.iter
        (fun item ->
          let h = Nvm.Heap.load heap ~tid (Kvcache.Item.hash_of item) in
          let shard = t.shards.(h mod Array.length t.shards) in
          if not (Kvcache.Nv_memcached.readmit shard cu item) then begin
            Nvm.Nvalloc.free alloc ~tid item;
            incr freed
          end)
        survivors;
      Nvm.Heap.fence heap ~tid);
  (t, !freed)

let recover ctx ~nshards ~nbuckets ~capacity ~active_pages ~nworkers =
  match Lfds.Ctx.mode ctx with
  | Lfds.Persist_mode.Link_free ->
      ignore nworkers;
      ignore active_pages;
      recover_link_free ctx ~nshards ~nbuckets ~capacity
  | _ ->
      let t =
        Nvm.Timeline.span_current "shards.attach"
          ~detail:"re-bind shard tables to recovered heap" (fun () ->
            attach ctx ~nshards ~nbuckets ~capacity)
      in
      let freed =
        Nvm.Timeline.span_current "shards.sweep"
          ~detail:"parallel traversal sweep of active pages" (fun () ->
            Lfds.Recovery.sweep_traversal_parallel ctx ~active_pages
              ~iter:(iter_reachable t) ~nworkers)
      in
      (t, freed)

let leak_count t ~active_pages =
  Lfds.Recovery.leak_count t.ctx ~active_pages ~iter:(iter_reachable t)

let ops t =
  {
    Kvcache.Cache_intf.name = Printf.sprintf "nvserve-%d-shards" (nshards t);
    set =
      (fun ~tid ~key ~value -> Kvcache.Nv_memcached.set (shard t key) ~tid ~key ~value);
    set_ttl =
      (fun ~tid ~key ~value ~expire_at ->
        Kvcache.Nv_memcached.set_ttl (shard t key) ~tid ~key ~value ~expire_at);
    get = (fun ~tid ~key -> Kvcache.Nv_memcached.get (shard t key) ~tid ~key);
    delete = (fun ~tid ~key -> Kvcache.Nv_memcached.delete (shard t key) ~tid ~key);
    incr =
      (fun ~tid ~key ~delta -> Kvcache.Nv_memcached.incr (shard t key) ~tid ~key ~delta);
    count = (fun () -> count t);
    (* All shards share one ctx, so the batch brackets go to it once — the
       covering fence spans whatever shards the batch touched. *)
    defer_begin = (fun ~tid -> Lfds.Link_persist.defer_begin t.ctx ~tid);
    defer_commit = (fun ~tid ~ops -> Lfds.Link_persist.defer_commit t.ctx ~tid ~ops);
  }
