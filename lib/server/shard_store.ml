(** Hash-partitioned NV-Memcached shards over one shared durable heap (see
    the interface). The shard index folds the same durable key hash the
    tables index, taken before the tables' own per-bucket re-mix, so shard
    choice and bucket choice stay independent. *)

type t = {
  ctx : Lfds.Ctx.t;
  shards : Kvcache.Nv_memcached.t array;
}

let nshards t = Array.length t.shards

let per_shard ~nshards ~nbuckets ~capacity =
  let b = max 16 (nbuckets / nshards) in
  let c = max 1 (capacity / nshards) in
  (b, c)

let create ctx ~nshards ~nbuckets ~capacity =
  if nshards < 1 then invalid_arg "Shard_store.create: nshards < 1";
  let b, c = per_shard ~nshards ~nbuckets ~capacity in
  {
    ctx;
    shards =
      Array.init nshards (fun _ ->
          Kvcache.Nv_memcached.create ctx ~nbuckets:b ~capacity:c);
  }

let attach ctx ~nshards ~nbuckets ~capacity =
  if nshards < 1 then invalid_arg "Shard_store.attach: nshards < 1";
  let b, c = per_shard ~nshards ~nbuckets ~capacity in
  {
    ctx;
    shards =
      Array.init nshards (fun _ ->
          Kvcache.Nv_memcached.attach ctx ~nbuckets:b ~capacity:c);
  }

let shard_index ~nshards key = Kvcache.Strpack.hash key mod nshards
let shard_of t key = shard_index ~nshards:(nshards t) key
let shard t key = t.shards.(shard_of t key)

let count t =
  Array.fold_left (fun acc s -> acc + Kvcache.Nv_memcached.count s) 0 t.shards

let iter_reachable t f =
  Array.iter (fun s -> Kvcache.Nv_memcached.iter_reachable s f) t.shards

let recover ctx ~nshards ~nbuckets ~capacity ~active_pages ~nworkers =
  let t = attach ctx ~nshards ~nbuckets ~capacity in
  let freed =
    Lfds.Recovery.sweep_traversal_parallel ctx ~active_pages
      ~iter:(iter_reachable t) ~nworkers
  in
  (t, freed)

let leak_count t ~active_pages =
  Lfds.Recovery.leak_count t.ctx ~active_pages ~iter:(iter_reachable t)

let ops t =
  {
    Kvcache.Cache_intf.name = Printf.sprintf "nvserve-%d-shards" (nshards t);
    set =
      (fun ~tid ~key ~value -> Kvcache.Nv_memcached.set (shard t key) ~tid ~key ~value);
    set_ttl =
      (fun ~tid ~key ~value ~expire_at ->
        Kvcache.Nv_memcached.set_ttl (shard t key) ~tid ~key ~value ~expire_at);
    get = (fun ~tid ~key -> Kvcache.Nv_memcached.get (shard t key) ~tid ~key);
    delete = (fun ~tid ~key -> Kvcache.Nv_memcached.delete (shard t key) ~tid ~key);
    incr =
      (fun ~tid ~key ~delta -> Kvcache.Nv_memcached.incr (shard t key) ~tid ~key ~delta);
    count = (fun () -> count t);
    (* All shards share one ctx, so the batch brackets go to it once — the
       covering fence spans whatever shards the batch touched. *)
    defer_begin = (fun ~tid -> Lfds.Link_persist.defer_begin t.ctx ~tid);
    defer_commit = (fun ~tid ~ops -> Lfds.Link_persist.defer_commit t.ctx ~tid ~ops);
  }
