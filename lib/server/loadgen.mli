(** Built-in load client for NVServe: [nconns] driver domains over blocking
    TCP connections, driving a memtier-style set/delete/get mix
    ({!Workload.Keygen.mix}) over a shared key range with pipelined batches.

    The key range is partitioned by driver (driver [d] owns the indices
    congruent to [d] modulo the driver count), so every driver knows the
    exact expected value of every key it reads: gets are validated
    byte-for-byte and mismatches are counted as [errors]. A miss is never an
    error — LRU eviction can legally drop any key (size the server's
    capacity above [nkeys] when that matters, as the crash drill does).

    {b Open-many mode} ([open_conns > 0], the C10K shape): the client first
    opens [open_conns] connections and keeps them {e all} open, then drives
    only the first [hot] of them — the [nconns] driver domains rotate their
    batches round-robin over the hot subset while the rest sit idle,
    resident in the server's pollers. Exactness is preserved: a driver
    never has two batches in flight at once, so its simulated view of its
    own keys stays accurate across the connections it rotates over.
    Connections that fail to open are counted in [open_failures], never
    silently dropped.

    With an {!acks} table attached, the client also records exactly which
    mutations the server acknowledged — the ground truth the crash drill
    checks recovery against: [acked] holds the last acknowledged state per
    key, and [inflight] the keys with a mutation sent but unacknowledged
    when the connection died (such keys are exempt from verification: the
    crash may have caught them mid-operation). *)

type config = {
  host : string;  (** dotted-quad; default loopback *)
  port : int;
  nconns : int;  (** client connections = client domains *)
  duration : float;  (** seconds of load *)
  nkeys : int;  (** key-range size, partitioned across connections *)
  mix : Workload.Keygen.mix;
      (** [Insert] = memcached [set], [Remove] = [delete], [Search] = [get] *)
  pipeline : int;  (** requests per pipelined batch *)
  value_bytes : int;  (** payload size (min 20, versioned self-validating) *)
  seed : int;
  open_conns : int;
      (** total connections to open and hold; 0 = classic mode (one
          connection per driver domain) *)
  hot : int;
      (** connections of the open set actually driven (clamped to
          [open_conns]); 0 = drive them all; ignored in classic mode *)
}

(** Loopback, 4 connections, 2 s, 10k keys, 20% sets / 10% deletes / 70%
    gets, pipeline depth 8, 24-byte values, classic mode. *)
val default_config : port:int -> config

type key_state =
  | Stored of int  (** last acknowledged set, by version *)
  | Deleted  (** last acknowledged mutation was a delete *)

type acks = {
  acked : (string, key_state) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;
}

val make_acks : unit -> acks

type report = {
  ops : int;
  sets : int;  (** acknowledged [STORED] *)
  deletes : int;  (** acknowledged [DELETED]/[NOT_FOUND] *)
  gets : int;
  hits : int;
  misses : int;
  errors : int;  (** unexpected responses or value mismatches *)
  dead_conns : int;  (** drivers that died before the deadline *)
  open_failures : int;
      (** open-many connections that failed to connect (0 in classic mode) *)
  open_s : float;
      (** seconds the open-many connect phase took (0 in classic mode) *)
  elapsed : float;
      (** the driving window only — the open-many connect phase is excluded
          (it is real time but not load time) *)
  ops_per_s : float;
  hist : Workload.Histogram.t;
      (** per-request latency; pipelined requests share their batch's
          round-trip time *)
  inflight : Workload.Histogram.t;
      (** inflight-depth distribution: one sample per response, value = how
          many responses of its batch were still owed when it arrived (on
          the histogram's ns axis) — the pipeline depth the server actually
          saw, i.e. the batching opportunity the client offered *)
}

(** Key for range index [n] — stable across client runs, so a post-recovery
    verification pass can re-derive every key. *)
val key_string : int -> string

(** The (padded, self-validating) payload of version [version] of key index
    [n]. *)
val value_for : n:int -> version:int -> value_bytes:int -> string

(** Run the load to completion (deadline reached or every connection dead)
    and report. Connection domains are joined before returning; [acks], when
    given, is filled from their merged logs. *)
val run : ?acks:acks -> config -> report

(** Post-recovery audit over one TCP connection: every key in
    [acks.acked] that has no in-flight mutation must read back exactly as
    acknowledged — [Stored v] keys must return version [v]'s payload,
    [Deleted] keys must miss. Returns [(checked, exempt, lost)]: [exempt]
    keys had a mutation in flight when the crash hit (any outcome is
    legal), [lost] keys contradict their acknowledgement. Assumes the
    server was sized to rule out eviction. *)
val verify_acked :
  host:string -> port:int -> value_bytes:int -> acks -> int * int * int

(** Liveness probe: set one fresh key over TCP and read it back. *)
val probe : host:string -> port:int -> bool
