(** NVServe's telemetry plane: per-worker, allocation-free counters, gauges
    and latency histograms, plus a 1-in-N request sampler that attributes
    server-side latency to pipeline stages.

    Each worker domain owns a {!w} view — flat [int array] counters, an
    [int array] gauge block and unboxed [float array] stamp slots — so the
    hot path never allocates and never contends: writes are single-writer
    per location, reads ({!counters}, {!req_hist}, ...) are racy-but-safe
    snapshots from any domain (OCaml guarantees word-atomic loads, and a
    reader's successive loads of one location never go backwards, so
    counters read monotone and gauges cannot tear).

    {b Sampling.} With [sample_every = N > 0] each worker opens a sample on
    every Nth framed request and stamps it through the pipeline:

    {v queue -> parse -> execute -> fence -> respond v}

    [queue] is time the request's bytes waited buffered behind earlier
    requests of the same wakeup, [parse] the framing of the sampled request
    itself, [execute] the backend call, [fence] from execution end to the
    covering group-commit fence (≈0 on the eager path, which fences inside
    execute), and [respond] from release to the socket taking the last
    released byte. One sample is in flight per worker at a time; a request
    whose turn falls while one is still open is skipped without disturbing
    the cadence. Closed samples land in per-stage histograms and a bounded
    ring for Chrome-trace export. *)

type t
type w

(** [create ~nworkers ~sample_every] — [sample_every = 0] disables the
    sampler entirely (stage hooks become cheap no-ops); counters and gauges
    are always live. *)
val create : nworkers:int -> sample_every:int -> t

val worker : t -> int -> w
val sample_every : t -> int
val start_time : t -> float

(** {2 Counters}

    Ids index both a worker's counter block and {!counter_names}. *)

val c_requests : int  (** framed requests answered, rejects included *)

val c_cmd_get : int

(** set / add / replace / append / prepend *)
val c_cmd_set : int

val c_cmd_delete : int

(** incr / decr *)
val c_cmd_incr : int

val c_cmd_stats : int
val c_cmd_other : int

(** get responses carrying at least one VALUE *)
val c_get_hits : int

val c_get_misses : int

(** framing rejects + overlong lines *)
val c_rejects : int

val c_quits : int
val c_conns_adopted : int
val c_conns_closed : int
val c_conns_idle_closed : int
val c_bytes_read : int
val c_bytes_written : int

(** short or EAGAIN socket writes (backpressure) *)
val c_write_stalls : int

(** output-buffer growths, folded in at close *)
val c_outbuf_grows : int

(** samples closed by the 1-in-N tracer *)
val c_sampled : int

(** tasks this worker stole from peers' run queues *)
val c_sched_steals : int

(** steal attempts that found nothing or lost the race *)
val c_sched_steal_fails : int

(** stolen connections this worker adopted from another domain *)
val c_sched_migrations : int

(** tasks drained from this worker's injector queue *)
val c_sched_injected : int

val n_counters : int
val counter_names : string array

(** Command-kind counter id for a raw request ([c_cmd_get] ... [c_cmd_other]). *)
val kind_of : string -> int

val bump : w -> int -> unit
val bump_n : w -> int -> int -> unit

(** Classify a get response: first byte ['V'] bumps [c_get_hits], an
    [END]-only reply bumps [c_get_misses]; errors bump neither. *)
val note_get_result : w -> string -> unit

(** Counter [id] summed across workers. *)
val counter : t -> int -> int

(** All counters summed across workers, indexed like {!counter_names}. *)
val counters : t -> int array

(** {2 Gauges} *)

val set_open_conns : w -> int -> unit

(** Run-queue depth at the worker's last loop turn. *)
val set_run_queue_depth : w -> int -> unit

val note_outbuf_hwm : w -> int -> unit  (** monotone max, bytes *)

(** Fold a closing connection's output-buffer telemetry into this worker:
    [grows] adds to [c_outbuf_grows], [hwm] feeds the high-water gauge. *)
val note_outbuf : w -> hwm:int -> grows:int -> unit

val open_conns : t -> int  (** summed across workers *)

val outbuf_hwm : t -> int  (** max across workers *)

val run_queue_depth : t -> int  (** summed across workers *)

(** {2 Histograms}

    Merged copies — safe to read while workers run. *)

(** Fence debt observed at each group commit: deferred links plus pending
    write-backs the covering fence retired (recorded on the ns axis). *)
val record_debt : w -> int -> unit

val debt_hist : t -> Workload.Histogram.t

(** Sampled whole-request latency (read wakeup to last response byte). *)
val req_hist : t -> Workload.Histogram.t

val s_queue : int
val s_parse : int
val s_execute : int
val s_fence : int
val s_respond : int
val n_stages : int
val stage_names : string array
val stage_hist : t -> int -> Workload.Histogram.t

(** {2 Sampler stage hooks}

    All are cheap no-ops when [sample_every = 0]. Single-domain: call only
    from the owning worker. *)

(** A readable wakeup pulled bytes for this connection — the sampled
    request's clock zero. *)
val on_read : w -> unit

(** About to frame the next request; stamps the parse start when the next
    framed request will be sampled. *)
val arm : w -> unit

(** A request was framed: bumps [c_requests] and its [kind] counter, and
    opens a sample when this request's turn came up. *)
val on_request : w -> fd:Unix.file_descr -> kind:int -> unit

(** The backend call for the just-framed request returned. *)
val on_executed : w -> unit

(** The covering fence for everything executed so far retired (group
    commit), or — eager path — the per-op fence already ran. *)
val on_commit : w -> unit

(** A socket write pass finished for [fd]; [drained] when no released bytes
    remain. Closes the open sample when it was waiting on this conn. *)
val on_written : w -> Unix.file_descr -> drained:bool -> unit

(** The connection died; abort any sample still riding it. *)
val on_conn_gone : w -> Unix.file_descr -> unit

(** {2 Sampled spans} *)

type sample = {
  worker : int;
  kind : int;  (** command-kind counter id *)
  t0_s : float;  (** absolute start (unix seconds) *)
  queue_ns : float;
  parse_ns : float;
  execute_ns : float;
  fence_ns : float;
  respond_ns : float;
  total_ns : float;
}

(** Most recent closed samples across workers (bounded ring per worker),
    oldest first. *)
val samples : t -> sample list

(** Render samples as a Chrome [chrome://tracing] / Perfetto JSON document:
    one pid per server, one tid per worker, one slice per stage. *)
val chrome_trace : t -> string
