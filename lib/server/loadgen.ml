(** NVServe load client (see the interface). One domain per connection;
    blocking sockets with a receive timeout; each batch is written whole and
    its responses parsed in order, so a connection's view of its own keys is
    exact. *)

type config = {
  host : string;
  port : int;
  nconns : int;
  duration : float;
  nkeys : int;
  mix : Workload.Keygen.mix;
  pipeline : int;
  value_bytes : int;
  seed : int;
}

let default_config ~port =
  {
    host = "127.0.0.1";
    port;
    nconns = 4;
    duration = 2.0;
    nkeys = 10_000;
    mix = { Workload.Keygen.insert_pct = 20; remove_pct = 10 };
    pipeline = 8;
    value_bytes = 24;
    seed = 42;
  }

type key_state = Stored of int | Deleted

type acks = {
  acked : (string, key_state) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;
}

let make_acks () = { acked = Hashtbl.create 1024; inflight = Hashtbl.create 64 }

type report = {
  ops : int;
  sets : int;
  deletes : int;
  gets : int;
  hits : int;
  misses : int;
  errors : int;
  dead_conns : int;
  elapsed : float;
  ops_per_s : float;
  hist : Workload.Histogram.t;
}

let key_string n = Printf.sprintf "lg-%010d" n

let value_for ~n ~version ~value_bytes =
  let base = Printf.sprintf "v%010d.%08d" n version in
  let len = String.length base in
  if value_bytes <= len then base
  else base ^ String.make (value_bytes - len) 'x'

(* ---------- buffered reading over a blocking socket ---------- *)

type reader = { fd : Unix.file_descr; rbuf : Bytes.t; mutable rpos : int; mutable rlen : int }

let reader fd = { fd; rbuf = Bytes.create 8192; rpos = 0; rlen = 0 }

let refill r =
  let n = Unix.read r.fd r.rbuf 0 (Bytes.length r.rbuf) in
  if n = 0 then raise End_of_file;
  r.rpos <- 0;
  r.rlen <- n

let read_line r =
  let b = Buffer.create 64 in
  let rec go () =
    if r.rpos >= r.rlen then refill r;
    let ch = Bytes.get r.rbuf r.rpos in
    r.rpos <- r.rpos + 1;
    if ch = '\n' then Buffer.contents b
    else begin
      if ch <> '\r' then Buffer.add_char b ch;
      go ()
    end
  in
  go ()

let read_exact r n =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Bytes.to_string b
    else begin
      if r.rpos >= r.rlen then refill r;
      let take = min (n - off) (r.rlen - r.rpos) in
      Bytes.blit r.rbuf r.rpos b off take;
      r.rpos <- r.rpos + take;
      go (off + take)
    end
  in
  go 0

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

(* ---------- per-connection driver ---------- *)

(* What each pipelined request expects back. For gets, the expected state is
   the connection's own simulated view of the key at send time — exact,
   because only this connection mutates its keys and the server answers a
   connection's requests in order. *)
type expect =
  | Ack_set of { key : string; version : int }
  | Ack_del of { key : string }
  | Ack_get of { n : int; state : key_state option }

type conn_result = {
  c_ops : int;
  c_sets : int;
  c_deletes : int;
  c_gets : int;
  c_hits : int;
  c_misses : int;
  c_errors : int;
  c_dead : bool;
  c_hist : Workload.Histogram.t;
  c_acked : (string, key_state) Hashtbl.t;
  c_inflight : (string, int) Hashtbl.t;
      (** outstanding unacked mutations per key — several can pipeline *)
}

let inflight_add tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let inflight_ack tbl key =
  match Hashtbl.find_opt tbl key with
  | Some n when n > 1 -> Hashtbl.replace tbl key (n - 1)
  | Some _ -> Hashtbl.remove tbl key
  | None -> ()

let conn_loop cfg c =
  let hist = Workload.Histogram.create () in
  let acked = Hashtbl.create 256 in
  let inflight = Hashtbl.create 64 in
  let ops = ref 0 and sets = ref 0 and deletes = ref 0 and gets = ref 0 in
  let hits = ref 0 and misses = ref 0 and errors = ref 0 and dead = ref false in
  let per = max 1 (cfg.nkeys / cfg.nconns) in
  let vers = Array.make per 0 in
  let sim : key_state option array = Array.make per None in
  let rng = Workload.Xoshiro.make ~seed:(cfg.seed + (1000 * c) + 1) in
  (try
     let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     (try
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
        let rd = reader fd in
        let deadline = Unix.gettimeofday () +. cfg.duration in
        while (not !dead) && Unix.gettimeofday () < deadline do
          (* Build one pipelined batch. *)
          let batch = Buffer.create 512 in
          let expects = ref [] in
          for _ = 1 to cfg.pipeline do
            let j = Workload.Xoshiro.below rng per in
            let n = (j * cfg.nconns) + c in
            let key = key_string n in
            match Workload.Keygen.pick rng cfg.mix with
            | Workload.Keygen.Insert ->
                vers.(j) <- vers.(j) + 1;
                let version = vers.(j) in
                let v = value_for ~n ~version ~value_bytes:cfg.value_bytes in
                Buffer.add_string batch
                  (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" key
                     (String.length v) v);
                inflight_add inflight key;
                sim.(j) <- Some (Stored version);
                expects := Ack_set { key; version } :: !expects
            | Workload.Keygen.Remove ->
                Buffer.add_string batch (Printf.sprintf "delete %s\r\n" key);
                inflight_add inflight key;
                sim.(j) <- Some Deleted;
                expects := Ack_del { key } :: !expects
            | Workload.Keygen.Search ->
                Buffer.add_string batch (Printf.sprintf "get %s\r\n" key);
                expects := Ack_get { n; state = sim.(j) } :: !expects
          done;
          let expects = List.rev !expects in
          let t0 = Unix.gettimeofday () in
          write_all fd (Buffer.contents batch);
          List.iter
            (fun e ->
              let line = read_line rd in
              (match e with
              | Ack_set { key; version } ->
                  incr ops;
                  inflight_ack inflight key;
                  if line = "STORED" then begin
                    incr sets;
                    Hashtbl.replace acked key (Stored version)
                  end
                  else incr errors
              | Ack_del { key } ->
                  incr ops;
                  inflight_ack inflight key;
                  if line = "DELETED" || line = "NOT_FOUND" then begin
                    incr deletes;
                    Hashtbl.replace acked key Deleted
                  end
                  else incr errors
              | Ack_get { n; state } ->
                  incr ops;
                  incr gets;
                  if String.length line >= 6 && String.sub line 0 6 = "VALUE " then begin
                    let bytes =
                      match String.split_on_char ' ' line with
                      | [ _; _; _; b ] -> int_of_string_opt b
                      | _ -> None
                    in
                    match bytes with
                    | None -> incr errors
                    | Some b ->
                        let data = read_exact rd (b + 2) in
                        let value = String.sub data 0 b in
                        let fin = read_line rd in
                        if fin <> "END" then incr errors
                        else begin
                          incr hits;
                          match state with
                          | Some (Stored v)
                            when value
                                 = value_for ~n ~version:v
                                     ~value_bytes:cfg.value_bytes ->
                              ()
                          | _ -> incr errors (* stale, deleted, or corrupt *)
                        end
                  end
                  else if line = "END" then incr misses (* eviction-legal *)
                  else incr errors);
              ())
            expects;
          let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
          List.iter
            (fun _ -> Workload.Histogram.record hist ~ns)
            expects
        done
      with
     | End_of_file | Unix.Unix_error (_, _, _) -> dead := true);
     try Unix.close fd with Unix.Unix_error _ -> ()
   with Unix.Unix_error (_, _, _) -> dead := true);
  {
    c_ops = !ops;
    c_sets = !sets;
    c_deletes = !deletes;
    c_gets = !gets;
    c_hits = !hits;
    c_misses = !misses;
    c_errors = !errors;
    c_dead = !dead;
    c_hist = hist;
    c_acked = acked;
    c_inflight = inflight;
  }

let run ?acks cfg =
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init (max 1 cfg.nconns) (fun c ->
        Domain.spawn (fun () -> conn_loop cfg c))
  in
  let results = List.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. t0 in
  let hist = Workload.Histogram.create () in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  List.iter (fun r -> Workload.Histogram.merge ~into:hist r.c_hist) results;
  (match acks with
  | None -> ()
  | Some a ->
      List.iter
        (fun r ->
          Hashtbl.iter (fun k v -> Hashtbl.replace a.acked k v) r.c_acked;
          Hashtbl.iter
            (fun k n -> if n > 0 then Hashtbl.replace a.inflight k ())
            r.c_inflight)
        results);
  let ops = sum (fun r -> r.c_ops) in
  {
    ops;
    sets = sum (fun r -> r.c_sets);
    deletes = sum (fun r -> r.c_deletes);
    gets = sum (fun r -> r.c_gets);
    hits = sum (fun r -> r.c_hits);
    misses = sum (fun r -> r.c_misses);
    errors = sum (fun r -> r.c_errors);
    dead_conns = sum (fun r -> if r.c_dead then 1 else 0);
    elapsed;
    ops_per_s = (if elapsed > 0. then float_of_int ops /. elapsed else 0.);
    hist;
  }

(* ---------- post-recovery verification ---------- *)

let with_client ~host ~port f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      f fd (reader fd))

(* One get over an open client; [Some value] on hit, [None] on miss.
   Unexpected responses raise. *)
let get_once fd rd key =
  write_all fd (Printf.sprintf "get %s\r\n" key);
  let line = read_line rd in
  if String.length line >= 6 && String.sub line 0 6 = "VALUE " then begin
    match String.split_on_char ' ' line with
    | [ _; _; _; b ] ->
        let b = int_of_string b in
        let data = read_exact rd (b + 2) in
        if read_line rd <> "END" then failwith "get: missing END";
        Some (String.sub data 0 b)
    | _ -> failwith ("get: bad VALUE line: " ^ line)
  end
  else if line = "END" then None
  else failwith ("get: unexpected response: " ^ line)

(* key_string is "lg-%010d"; recover the range index. *)
let index_of_key key =
  match int_of_string_opt (String.sub key 3 (String.length key - 3)) with
  | Some n -> n
  | None -> failwith ("verify: foreign key " ^ key)

let verify_acked ~host ~port ~value_bytes (a : acks) =
  with_client ~host ~port (fun fd rd ->
      let checked = ref 0 and exempt = ref 0 and lost = ref 0 in
      Hashtbl.iter
        (fun key state ->
          if Hashtbl.mem a.inflight key then incr exempt
          else begin
            incr checked;
            let got = get_once fd rd key in
            match (state, got) with
            | Stored v, Some value
              when value = value_for ~n:(index_of_key key) ~version:v ~value_bytes
              ->
                ()
            | Deleted, None -> ()
            | (Stored _ | Deleted), _ -> incr lost
          end)
        a.acked;
      (!checked, !exempt, !lost))

let probe ~host ~port =
  try
    with_client ~host ~port (fun fd rd ->
        let key = "drill-probe" and v = "post-recovery-alive" in
        write_all fd
          (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" key (String.length v) v);
        read_line rd = "STORED" && get_once fd rd key = Some v)
  with _ -> false
