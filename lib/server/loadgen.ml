(** NVServe load client (see the interface). One domain per connection;
    blocking sockets with a receive timeout; each batch is written whole and
    its responses parsed in order, so a connection's view of its own keys is
    exact. *)

type config = {
  host : string;
  port : int;
  nconns : int;
  duration : float;
  nkeys : int;
  mix : Workload.Keygen.mix;
  pipeline : int;
  value_bytes : int;
  seed : int;
  open_conns : int;
  hot : int;
}

let default_config ~port =
  {
    host = "127.0.0.1";
    port;
    nconns = 4;
    duration = 2.0;
    nkeys = 10_000;
    mix = { Workload.Keygen.insert_pct = 20; remove_pct = 10 };
    pipeline = 8;
    value_bytes = 24;
    seed = 42;
    open_conns = 0;
    hot = 0;
  }

type key_state = Stored of int | Deleted

type acks = {
  acked : (string, key_state) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;
}

let make_acks () = { acked = Hashtbl.create 1024; inflight = Hashtbl.create 64 }

type report = {
  ops : int;
  sets : int;
  deletes : int;
  gets : int;
  hits : int;
  misses : int;
  errors : int;
  dead_conns : int;
  open_failures : int;
  open_s : float;
  elapsed : float;
  ops_per_s : float;
  hist : Workload.Histogram.t;
  inflight : Workload.Histogram.t;
}

let key_string n = Printf.sprintf "lg-%010d" n

(* Zero-padded decimal into [buf] at [off] without Printf — value and
   request formatting sit on the load loop's hot path, and a formatted
   build per request makes the *client* the bottleneck of the benchmark. *)
let blit_zpad buf off n width =
  let rec go i n =
    if i >= 0 then begin
      Bytes.unsafe_set buf (off + i) (Char.unsafe_chr (Char.code '0' + (n mod 10)));
      go (i - 1) (n / 10)
    end
  in
  go (width - 1) n

(* "v%010d.%08d" padded with 'x' to [value_bytes] (min 20, the base). *)
let value_for ~n ~version ~value_bytes =
  let len = max 20 value_bytes in
  let b = Bytes.make len 'x' in
  Bytes.unsafe_set b 0 'v';
  blit_zpad b 1 n 10;
  Bytes.unsafe_set b 11 '.';
  blit_zpad b 12 version 8;
  Bytes.unsafe_to_string b

(* ---------- buffered reading over a blocking socket ---------- *)

type reader = {
  fd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;
  lbuf : Buffer.t;  (** scratch for [read_line], reused across lines *)
}

let reader fd =
  { fd; rbuf = Bytes.create 8192; rpos = 0; rlen = 0; lbuf = Buffer.create 64 }

let refill r =
  let n = Unix.read r.fd r.rbuf 0 (Bytes.length r.rbuf) in
  if n = 0 then raise End_of_file;
  r.rpos <- 0;
  r.rlen <- n

let read_line r =
  let b = r.lbuf in
  Buffer.clear b;
  let rec go () =
    if r.rpos >= r.rlen then refill r;
    let ch = Bytes.get r.rbuf r.rpos in
    r.rpos <- r.rpos + 1;
    if ch = '\n' then Buffer.contents b
    else begin
      if ch <> '\r' then Buffer.add_char b ch;
      go ()
    end
  in
  go ()

let read_exact r n =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Bytes.to_string b
    else begin
      if r.rpos >= r.rlen then refill r;
      let take = min (n - off) (r.rlen - r.rpos) in
      Bytes.blit r.rbuf r.rpos b off take;
      r.rpos <- r.rpos + take;
      go (off + take)
    end
  in
  go 0

let write_bytes_all fd b n =
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let write_all fd s = write_bytes_all fd (Bytes.of_string s) (String.length s)

(* ---------- per-driver load loop ---------- *)

(* What each pipelined request expects back. For gets, the expected state is
   the driver's own simulated view of the key at send time — exact, because
   only this driver mutates its keys and it never has two batches in flight
   at once: a batch's responses are fully read (so its mutations are
   applied) before the next batch goes out, even when the driver rotates
   over several connections. Keys are referenced by their range index [j],
   so the response loop tracks ack/inflight state in flat arrays — the
   per-key hashtables the drill audit wants are built once at the end, not
   touched per response. *)
type expect =
  | Ack_set of { j : int; version : int }
  | Ack_del of { j : int }
  | Ack_get of { n : int; state : key_state option }

type conn_result = {
  c_ops : int;
  c_sets : int;
  c_deletes : int;
  c_gets : int;
  c_hits : int;
  c_misses : int;
  c_errors : int;
  c_dead : bool;
  c_hist : Workload.Histogram.t;
  c_depth_hist : Workload.Histogram.t;
      (** responses still owed when each response arrived — the pipeline
          depth the server actually achieved (one sample per response) *)
  c_acked : (string, key_state) Hashtbl.t;
  c_inflight : (string, int) Hashtbl.t;
      (** outstanding unacked mutations per key — several can pipeline *)
}

(* One connected, tuned client socket. *)
let connect_to cfg =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* Driver [d] of [ndrivers] owns key indices congruent to [d] and rotates
   its pipelined batches round-robin over [fds] (one socket in the classic
   mode, a hot subset of many in open-many mode). The driver closes its
   sockets on the way out. *)
let driver_loop cfg ~d ~ndrivers fds =
  let hist = Workload.Histogram.create () in
  let depth_hist = Workload.Histogram.create () in
  let ops = ref 0 and sets = ref 0 and deletes = ref 0 and gets = ref 0 in
  let hits = ref 0 and misses = ref 0 and errors = ref 0 in
  let dead = ref (Array.length fds = 0) in
  let per = max 1 (cfg.nkeys / ndrivers) in
  let vers = Array.make per 0 in
  let sim : key_state option array = Array.make per None in
  (* Last server-acknowledged state and outstanding unacked mutation count
     per key index; folded into the hashtables the audit expects after the
     loop (4+ hashtable probes per mutation is client CPU the benchmark
     would charge to the server). *)
  let acked_st : key_state option array = Array.make per None in
  let infl = Array.make per 0 in
  (* This driver's keys, formatted once — not per request. *)
  let keys = Array.init per (fun j -> key_string ((j * ndrivers) + d)) in
  let rng = Workload.Xoshiro.make ~seed:(cfg.seed + (1000 * d) + 1) in
  (try
     if not !dead then begin
        let rds = Array.map reader fds in
        let batch_no = ref 0 in
        let batch = Buffer.create 4096 in
        (* Value scratch, layout "v<n:10>.<version:8>" padded with 'x' to
           [value_bytes]: only the two numeric fields change per request, so
           the batch builder blits over one reused buffer instead of
           allocating a fresh value string. *)
        let vlen = max 20 cfg.value_bytes in
        let vlen_str = string_of_int vlen in
        let vscratch = Bytes.make vlen 'x' in
        Bytes.unsafe_set vscratch 0 'v';
        Bytes.unsafe_set vscratch 11 '.';
        let nsent = max 1 cfg.pipeline in
        let expects = Array.make nsent (Ack_del { j = 0 }) in
        let deadline = Unix.gettimeofday () +. cfg.duration in
        while (not !dead) && Unix.gettimeofday () < deadline do
          let cur = !batch_no mod Array.length fds in
          incr batch_no;
          let fd = fds.(cur) in
          let rd = rds.(cur) in
          (* Build one pipelined batch (no Printf, no per-request value or
             expectation-list allocation — this loop must outrun the server
             to measure it). *)
          Buffer.clear batch;
          for i = 0 to nsent - 1 do
            let j = Workload.Xoshiro.below rng per in
            let n = (j * ndrivers) + d in
            let key = keys.(j) in
            match Workload.Keygen.pick rng cfg.mix with
            | Workload.Keygen.Insert ->
                vers.(j) <- vers.(j) + 1;
                let version = vers.(j) in
                blit_zpad vscratch 1 n 10;
                blit_zpad vscratch 12 version 8;
                Buffer.add_string batch "set ";
                Buffer.add_string batch key;
                Buffer.add_string batch " 0 0 ";
                Buffer.add_string batch vlen_str;
                Buffer.add_string batch "\r\n";
                Buffer.add_subbytes batch vscratch 0 vlen;
                Buffer.add_string batch "\r\n";
                infl.(j) <- infl.(j) + 1;
                sim.(j) <- Some (Stored version);
                expects.(i) <- Ack_set { j; version }
            | Workload.Keygen.Remove ->
                Buffer.add_string batch "delete ";
                Buffer.add_string batch key;
                Buffer.add_string batch "\r\n";
                infl.(j) <- infl.(j) + 1;
                sim.(j) <- Some Deleted;
                expects.(i) <- Ack_del { j }
            | Workload.Keygen.Search ->
                Buffer.add_string batch "get ";
                Buffer.add_string batch key;
                Buffer.add_string batch "\r\n";
                expects.(i) <- Ack_get { n; state = sim.(j) }
          done;
          let t0 = Unix.gettimeofday () in
          write_bytes_all fd (Buffer.to_bytes batch) (Buffer.length batch);
          for i = 0 to nsent - 1 do
            (* When response [i] arrives, [nsent - i] responses of this
               batch are still owed — the depth the server could batch. *)
            Workload.Histogram.record depth_hist ~ns:(float_of_int (nsent - i));
            let line = read_line rd in
            match expects.(i) with
            | Ack_set { j; version } ->
                incr ops;
                if infl.(j) > 0 then infl.(j) <- infl.(j) - 1;
                if line = "STORED" then begin
                  incr sets;
                  acked_st.(j) <- Some (Stored version)
                end
                else incr errors
            | Ack_del { j } ->
                incr ops;
                if infl.(j) > 0 then infl.(j) <- infl.(j) - 1;
                if line = "DELETED" || line = "NOT_FOUND" then begin
                  incr deletes;
                  acked_st.(j) <- Some Deleted
                end
                else incr errors
            | Ack_get { n; state } -> (
                incr ops;
                incr gets;
                if String.length line >= 6 && String.sub line 0 6 = "VALUE "
                then begin
                  let bytes =
                    match String.split_on_char ' ' line with
                    | [ _; _; _; b ] -> int_of_string_opt b
                    | _ -> None
                  in
                  match bytes with
                  | None -> incr errors
                  | Some b ->
                      let data = read_exact rd (b + 2) in
                      let value = String.sub data 0 b in
                      let fin = read_line rd in
                      if fin <> "END" then incr errors
                      else begin
                        incr hits;
                        match state with
                        | Some (Stored v)
                          when value
                               = value_for ~n ~version:v
                                   ~value_bytes:cfg.value_bytes ->
                            ()
                        | _ -> incr errors (* stale, deleted, or corrupt *)
                      end
                end
                else if line = "END" then incr misses (* eviction-legal *)
                else incr errors)
          done;
          let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
          Workload.Histogram.record_n hist ~ns nsent
        done
     end
   with End_of_file | Unix.Unix_error (_, _, _) -> dead := true);
  Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds;
  (* Fold the flat per-index state into the keyed tables the audit reads. *)
  let acked = Hashtbl.create 256 in
  let inflight = Hashtbl.create 64 in
  Array.iteri
    (fun j st ->
      match st with
      | Some s -> Hashtbl.replace acked keys.(j) s
      | None -> ())
    acked_st;
  Array.iteri (fun j n -> if n > 0 then Hashtbl.replace inflight keys.(j) n) infl;
  {
    c_ops = !ops;
    c_sets = !sets;
    c_deletes = !deletes;
    c_gets = !gets;
    c_hits = !hits;
    c_misses = !misses;
    c_errors = !errors;
    c_dead = !dead;
    c_hist = hist;
    c_depth_hist = depth_hist;
    c_acked = acked;
    c_inflight = inflight;
  }

let run ?acks cfg =
  let t0 = Unix.gettimeofday () in
  (* [elapsed] is the driving window only: in open-many mode the sequential
     open phase is real time but not load time, and folding it into the
     denominator would understate throughput in exact proportion to the
     connection count — the quantity this mode exists to measure. The open
     phase is reported separately as [open_s]. *)
  let results, open_failures, open_s, elapsed =
    if cfg.open_conns > 0 then begin
      (* Open-many mode: open [open_conns] sockets from this domain, drive
         only the first [hot] of them with [nconns] driver domains, and just
         hold the rest open — the C10K shape: a wall of idle connections the
         server must keep resident while a hot subset runs at full speed. *)
      (* The client process needs one fd per held connection; lift the soft
         RLIMIT_NOFILE toward the wall size before opening (a 1024 default
         would otherwise turn most of a C10K wall into open failures). *)
      ignore (Sys_poll.ensure_fd_capacity (cfg.open_conns + 64));
      let opened = ref [] in
      let failures = ref 0 in
      for i = 1 to cfg.open_conns do
        (match connect_to cfg with
        | fd -> opened := fd :: !opened
        | exception (Unix.Unix_error _ | Failure _) -> incr failures);
        (* Brief pause every few hundred opens so the server's acceptor
           keeps ahead of the listen backlog. *)
        if i mod 512 = 0 then Unix.sleepf 0.002
      done;
      let all = Array.of_list (List.rev !opened) in
      let nopen = Array.length all in
      let t_open = Unix.gettimeofday () in
      if nopen = 0 then ([], !failures, t_open -. t0, 0.)
      else begin
        let hot = min (if cfg.hot > 0 then cfg.hot else nopen) nopen in
        let ndrivers = max 1 (min cfg.nconns hot) in
        let assigned =
          Array.init ndrivers (fun d ->
              let mine = ref [] in
              let i = ref d in
              while !i < hot do
                mine := all.(!i) :: !mine;
                i := !i + ndrivers
              done;
              Array.of_list (List.rev !mine))
        in
        let domains =
          List.init ndrivers (fun d ->
              Domain.spawn (fun () -> driver_loop cfg ~d ~ndrivers assigned.(d)))
        in
        let results = List.map Domain.join domains in
        let driven = Unix.gettimeofday () -. t_open in
        (* The idle wall comes down only after the drivers finish. *)
        for i = hot to nopen - 1 do
          try Unix.close all.(i) with Unix.Unix_error _ -> ()
        done;
        (results, !failures, t_open -. t0, driven)
      end
    end
    else
      let ndrivers = max 1 cfg.nconns in
      let domains =
        List.init ndrivers (fun d ->
            Domain.spawn (fun () ->
                let fds =
                  match connect_to cfg with
                  | fd -> [| fd |]
                  | exception Unix.Unix_error _ -> [||]
                in
                driver_loop cfg ~d ~ndrivers fds))
      in
      let results = List.map Domain.join domains in
      (results, 0, 0., Unix.gettimeofday () -. t0)
  in
  let hist = Workload.Histogram.create () in
  let inflight = Workload.Histogram.create () in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  List.iter
    (fun r ->
      Workload.Histogram.merge ~into:hist r.c_hist;
      Workload.Histogram.merge ~into:inflight r.c_depth_hist)
    results;
  (match acks with
  | None -> ()
  | Some a ->
      List.iter
        (fun r ->
          Hashtbl.iter (fun k v -> Hashtbl.replace a.acked k v) r.c_acked;
          Hashtbl.iter
            (fun k n -> if n > 0 then Hashtbl.replace a.inflight k ())
            r.c_inflight)
        results);
  let ops = sum (fun r -> r.c_ops) in
  {
    ops;
    sets = sum (fun r -> r.c_sets);
    deletes = sum (fun r -> r.c_deletes);
    gets = sum (fun r -> r.c_gets);
    hits = sum (fun r -> r.c_hits);
    misses = sum (fun r -> r.c_misses);
    errors = sum (fun r -> r.c_errors);
    dead_conns = sum (fun r -> if r.c_dead then 1 else 0);
    open_failures;
    open_s;
    elapsed;
    ops_per_s = (if elapsed > 0. then float_of_int ops /. elapsed else 0.);
    hist;
    inflight;
  }

(* ---------- post-recovery verification ---------- *)

let with_client ~host ~port f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      f fd (reader fd))

(* One get over an open client; [Some value] on hit, [None] on miss.
   Unexpected responses raise. *)
let get_once fd rd key =
  write_all fd (Printf.sprintf "get %s\r\n" key);
  let line = read_line rd in
  if String.length line >= 6 && String.sub line 0 6 = "VALUE " then begin
    match String.split_on_char ' ' line with
    | [ _; _; _; b ] ->
        let b = int_of_string b in
        let data = read_exact rd (b + 2) in
        if read_line rd <> "END" then failwith "get: missing END";
        Some (String.sub data 0 b)
    | _ -> failwith ("get: bad VALUE line: " ^ line)
  end
  else if line = "END" then None
  else failwith ("get: unexpected response: " ^ line)

(* key_string is "lg-%010d"; recover the range index. *)
let index_of_key key =
  match int_of_string_opt (String.sub key 3 (String.length key - 3)) with
  | Some n -> n
  | None -> failwith ("verify: foreign key " ^ key)

let verify_acked ~host ~port ~value_bytes (a : acks) =
  with_client ~host ~port (fun fd rd ->
      let checked = ref 0 and exempt = ref 0 and lost = ref 0 in
      Hashtbl.iter
        (fun key state ->
          if Hashtbl.mem a.inflight key then incr exempt
          else begin
            incr checked;
            let got = get_once fd rd key in
            match (state, got) with
            | Stored v, Some value
              when value = value_for ~n:(index_of_key key) ~version:v ~value_bytes
              ->
                ()
            | Deleted, None -> ()
            | (Stored _ | Deleted), _ -> incr lost
          end)
        a.acked;
      (!checked, !exempt, !lost))

let probe ~host ~port =
  try
    with_client ~host ~port (fun fd rd ->
        let key = "drill-probe" and v = "post-recovery-alive" in
        write_all fd
          (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" key (String.length v) v);
        read_line rd = "STORED" && get_once fd rd key = Some v)
  with _ -> false
