(** poll(2) for the scheduler's per-domain pollers, plus the RLIMIT_NOFILE
    and monotonic-clock plumbing the C10K paths need.

    [Unix.select] cannot represent file descriptors >= FD_SETSIZE (1024), so
    a server holding thousands of open connections must multiplex with
    poll(2) — which the OCaml standard library does not expose. The pollfd
    array lives in a Bigarray (off-heap, immovable), rebuilt per wait by the
    owning domain; the wait itself releases the OCaml runtime lock. *)

(** A reusable pollfd buffer. Not thread-safe: one per domain. *)
type t

val create : unit -> t

(** Forget all registered entries (the buffer is reused across waits). *)
val reset : t -> unit

(** Append one fd with the given interest set. *)
val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit

(** Registered entries since the last {!reset}. *)
val length : t -> int

(** Block until an entry is ready or [timeout_ms] elapses ([0] = just poll,
    [-1] = forever). Returns the number of ready entries; [EINTR] reads as
    [0]. *)
val wait : t -> timeout_ms:int -> int

(** Visit every entry the last {!wait} reported ready. Error/hangup
    conditions read as both readable and writable, so the caller's next I/O
    attempt surfaces the failure. *)
val iter_ready :
  t -> (Unix.file_descr -> readable:bool -> writable:bool -> unit) -> unit

(** {2 epoll}

    poll(2) scans every registered fd on every wait — O(open connections)
    per wakeup even when only a handful are ready. epoll keeps the interest
    set in the kernel across waits and reports only ready entries, which is
    what makes 10k mostly-idle resident connections cheap. Linux-only; on
    other systems {!Epoll.create} returns [None] and callers fall back to
    the poll(2) buffer above. *)

module Epoll : sig
  (** One epoll instance plus its event buffer. Not thread-safe: one per
      domain, like {!t}. *)
  type t

  (** [None] when the platform has no epoll. *)
  val create : unit -> t option

  (** Register interest, or update it if [fd] is already registered
      (including a fired one-shot entry left disarmed). [oneshot] entries
      are disarmed by the kernel on delivery and must be re-armed here. *)
  val arm : t -> Unix.file_descr -> read:bool -> write:bool -> oneshot:bool -> unit

  (** Deregister. Never-registered and already-closed fds are fine. *)
  val del : t -> Unix.file_descr -> unit

  (** Block until something is ready or [timeout_ms] elapses ([0] = just
      poll, [-1] = forever). Returns the ready count; [EINTR] reads as [0].
      At most 512 events surface per wait — the rest stay queued in the
      kernel for the next one. *)
  val wait : t -> timeout_ms:int -> int

  (** Visit every entry the last {!wait} reported ready. Error/hangup read
      as both readable and writable, like {!iter_ready}. *)
  val iter_ready :
    t -> (Unix.file_descr -> readable:bool -> writable:bool -> unit) -> unit

  val close : t -> unit
end

(** {2 File-descriptor capacity} *)

(** Current soft RLIMIT_NOFILE. *)
val fd_limit : unit -> int

(** Hard RLIMIT_NOFILE cap. *)
val fd_limit_max : unit -> int

(** [ensure_fd_capacity n] raises the soft fd limit toward [n] (through the
    hard cap when privileged) and returns the capacity actually in force —
    callers opening many sockets size themselves to the result. *)
val ensure_fd_capacity : int -> int

(** The numeric value of an fd — the select/FD_SETSIZE guard needs it. *)
val int_of_fd : Unix.file_descr -> int

(** {2 Monotonic clock} *)

(** CLOCK_MONOTONIC, integer nanoseconds. *)
val monotonic_ns : unit -> int
