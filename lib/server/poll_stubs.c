/* poll(2), RLIMIT_NOFILE and a monotonic clock for NVServe.
 *
 * OCaml's Unix library multiplexes with select(2), which cannot represent
 * file descriptors >= FD_SETSIZE (1024) — a hard wall for C10K connection
 * counts.  The scheduler's per-domain poller therefore drives poll(2)
 * directly over a struct pollfd array living in a Bigarray: Bigarray data
 * is malloc'd outside the OCaml heap, so the buffer neither moves under the
 * GC nor needs copying across caml_release_runtime_system.
 *
 * The entry layout stays private to this file; OCaml indexes entries, never
 * bytes.
 */

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <time.h>
#include <sys/resource.h>

#include <caml/bigarray.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

CAMLprim value nvlf_sizeof_pollfd(value unit)
{
  (void)unit;
  return Val_long(sizeof(struct pollfd));
}

/* events bit 0 = readable interest, bit 1 = writable interest. */
CAMLprim value nvlf_pollfd_set(value buf, value i, value fd, value events)
{
  struct pollfd *p = (struct pollfd *)Caml_ba_data_val(buf);
  long e = Long_val(events);
  p[Long_val(i)].fd = Long_val(fd);
  p[Long_val(i)].events =
      ((e & 1) ? POLLIN : 0) | ((e & 2) ? POLLOUT : 0);
  p[Long_val(i)].revents = 0;
  return Val_unit;
}

CAMLprim value nvlf_pollfd_fd(value buf, value i)
{
  struct pollfd *p = (struct pollfd *)Caml_ba_data_val(buf);
  return Val_long(p[Long_val(i)].fd);
}

/* revents bit 0 = readable, bit 1 = writable.  Error and hangup conditions
 * set both bits: the caller attempts the I/O and takes the error from the
 * syscall, which is the path that already knows how to close the
 * connection. */
CAMLprim value nvlf_pollfd_revents(value buf, value i)
{
  struct pollfd *p = (struct pollfd *)Caml_ba_data_val(buf);
  short r = p[Long_val(i)].revents;
  long out = 0;
  if (r & (POLLIN | POLLPRI | POLLERR | POLLHUP | POLLNVAL)) out |= 1;
  if (r & (POLLOUT | POLLERR | POLLHUP | POLLNVAL)) out |= 2;
  return Val_long(out);
}

/* Returns the ready count, or -errno.  Releases the runtime lock: other
 * domains keep executing OCaml while this one sleeps in the kernel. */
CAMLprim value nvlf_poll(value buf, value nfds, value timeout_ms)
{
  struct pollfd *p = (struct pollfd *)Caml_ba_data_val(buf);
  long n = Long_val(nfds);
  int t = Int_val(timeout_ms);
  int r;
  caml_release_runtime_system();
  r = poll(p, (nfds_t)n, t);
  caml_acquire_runtime_system();
  return Val_long(r >= 0 ? r : -errno);
}

/* epoll: O(ready) readiness for the C10K path.  poll(2) above remains the
 * portable fallback, but every poll(2) wait rescans the full registered set
 * — the dominant cost once tens of thousands of mostly-idle connections are
 * resident and only a handful are ready per wakeup.  epoll keeps the
 * interest set in the kernel across waits and returns only ready entries.
 *
 * Non-Linux builds return -ENOSYS from nvlf_epoll_create and the scheduler
 * falls back to the poll(2) path. */

#ifdef __linux__
#include <sys/epoll.h>
#endif

CAMLprim value nvlf_epoll_create(value unit)
{
  (void)unit;
#ifdef __linux__
  int fd = epoll_create1(EPOLL_CLOEXEC);
  return Val_long(fd >= 0 ? fd : -errno);
#else
  return Val_long(-38 /* ENOSYS */);
#endif
}

/* events bit 0 = readable interest, bit 1 = writable interest,
 * bit 2 = one-shot (disarm on delivery; re-arming goes through here again).
 * ADD falls back to MOD on EEXIST: a one-shot entry that fired stays
 * registered but disarmed, and the re-watch after the task runs must update
 * it in place. */
CAMLprim value nvlf_epoll_arm(value epfd, value fd, value events)
{
#ifdef __linux__
  struct epoll_event ev;
  long e = Long_val(events);
  memset(&ev, 0, sizeof ev);
  ev.events = ((e & 1) ? EPOLLIN : 0) | ((e & 2) ? EPOLLOUT : 0) |
              ((e & 4) ? EPOLLONESHOT : 0);
  ev.data.fd = Int_val(fd);
  if (epoll_ctl(Int_val(epfd), EPOLL_CTL_ADD, Int_val(fd), &ev) == 0)
    return Val_long(0);
  if (errno == EEXIST &&
      epoll_ctl(Int_val(epfd), EPOLL_CTL_MOD, Int_val(fd), &ev) == 0)
    return Val_long(0);
  return Val_long(-errno);
#else
  (void)epfd; (void)fd; (void)events;
  return Val_long(-38);
#endif
}

/* Deregister.  ENOENT and EBADF are not errors here: the fd may never have
 * been armed, or the kernel already dropped it when the fd closed. */
CAMLprim value nvlf_epoll_del(value epfd, value fd)
{
#ifdef __linux__
  if (epoll_ctl(Int_val(epfd), EPOLL_CTL_DEL, Int_val(fd), NULL) == 0)
    return Val_long(0);
  if (errno == ENOENT || errno == EBADF) return Val_long(0);
  return Val_long(-errno);
#else
  (void)epfd; (void)fd;
  return Val_long(-38);
#endif
}

CAMLprim value nvlf_sizeof_epoll_event(value unit)
{
  (void)unit;
#ifdef __linux__
  return Val_long(sizeof(struct epoll_event));
#else
  return Val_long(16); /* placeholder so module init never divides by zero */
#endif
}

/* Fills [buf] with up to [maxevents] ready events; returns the count or
 * -errno.  Releases the runtime lock while sleeping, like nvlf_poll. */
CAMLprim value nvlf_epoll_wait(value epfd, value buf, value maxevents,
                               value timeout_ms)
{
#ifdef __linux__
  struct epoll_event *evs = (struct epoll_event *)Caml_ba_data_val(buf);
  int ep = Int_val(epfd);
  int n = Int_val(maxevents);
  int t = Int_val(timeout_ms);
  int r;
  caml_release_runtime_system();
  r = epoll_wait(ep, evs, n, t);
  caml_acquire_runtime_system();
  return Val_long(r >= 0 ? r : -errno);
#else
  (void)epfd; (void)buf; (void)maxevents; (void)timeout_ms;
  return Val_long(-38);
#endif
}

CAMLprim value nvlf_epoll_event_fd(value buf, value i)
{
#ifdef __linux__
  struct epoll_event *evs = (struct epoll_event *)Caml_ba_data_val(buf);
  return Val_long(evs[Long_val(i)].data.fd);
#else
  (void)buf; (void)i;
  return Val_long(-1);
#endif
}

/* Same readable/writable encoding as nvlf_pollfd_revents: errors and
 * hangups read as both, so the caller's next I/O attempt takes the error. */
CAMLprim value nvlf_epoll_event_revents(value buf, value i)
{
#ifdef __linux__
  struct epoll_event *evs = (struct epoll_event *)Caml_ba_data_val(buf);
  unsigned r = evs[Long_val(i)].events;
  long out = 0;
  if (r & (EPOLLIN | EPOLLPRI | EPOLLERR | EPOLLHUP)) out |= 1;
  if (r & (EPOLLOUT | EPOLLERR | EPOLLHUP)) out |= 2;
  return Val_long(out);
#else
  (void)buf; (void)i;
  return Val_long(0);
#endif
}

static long clamp_rlim(rlim_t v)
{
  if (v == RLIM_INFINITY || v > (rlim_t)Max_long) return Max_long;
  return (long)v;
}

CAMLprim value nvlf_nofile_soft(value unit)
{
  struct rlimit rl;
  (void)unit;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-errno);
  return Val_long(clamp_rlim(rl.rlim_cur));
}

CAMLprim value nvlf_nofile_hard(value unit)
{
  struct rlimit rl;
  (void)unit;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-errno);
  return Val_long(clamp_rlim(rl.rlim_max));
}

/* Raise the soft fd limit toward [n]: first try lifting the hard limit too
 * (privileged), then settle for the existing hard cap.  Returns the soft
 * limit actually in force afterwards. */
CAMLprim value nvlf_set_nofile(value n)
{
  struct rlimit rl;
  rlim_t want = (rlim_t)Long_val(n);
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-errno);
  if (want > rl.rlim_max) {
    struct rlimit up = { want, want };
    if (setrlimit(RLIMIT_NOFILE, &up) == 0) return Val_long(clamp_rlim(want));
  }
  rl.rlim_cur = want > rl.rlim_max ? rl.rlim_max : want;
  if (setrlimit(RLIMIT_NOFILE, &rl) != 0) {
    struct rlimit cur;
    if (getrlimit(RLIMIT_NOFILE, &cur) == 0)
      return Val_long(clamp_rlim(cur.rlim_cur));
    return Val_long(-errno);
  }
  return Val_long(clamp_rlim(rl.rlim_cur));
}

/* CLOCK_MONOTONIC in integer nanoseconds — 63 bits hold ~292 years, and the
 * steal-latency histogram needs sub-microsecond resolution gettimeofday
 * cannot give. */
CAMLprim value nvlf_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + ts.tv_nsec);
}
