(** Work-stealing run queues over one-shot pollers (see the interface). *)

(* The volatile Chase-Lev deque. Same owner/steal discipline as
   [Durable_deque] (owner works the bottom, thieves CAS the top, the
   bottom-vs-top race on the last element resolves through the top CAS) —
   minus the persist points, since scheduler state is reconstructed from
   live connections, never recovered. OCaml [Atomic] operations are
   sequentially consistent, which subsumes the fences of the C11 original.

   Growth keeps old buffers untouched: indices are absolute (modulo the
   buffer the reader saw), and a thief's claim is validated by the top CAS —
   the owner cannot overwrite index class [t mod cap] in place while [top]
   still equals [t], because that write would need [bottom - top > cap],
   which triggers growth instead. *)
module Ws_deque = struct
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : 'a option Atomic.t array Atomic.t;
  }

  let slot_make () = Atomic.make None

  let create () =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make (Array.init 64 (fun _ -> slot_make ()));
    }

  let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

  let grow t ~top_ ~bottom_ =
    let old = Atomic.get t.buf in
    let ocap = Array.length old in
    let nu = Array.init (ocap * 2) (fun _ -> slot_make ()) in
    for i = top_ to bottom_ - 1 do
      Atomic.set nu.(i mod (ocap * 2)) (Atomic.get old.(i mod ocap))
    done;
    Atomic.set t.buf nu

  let push t v =
    let b = Atomic.get t.bottom in
    let tp = Atomic.get t.top in
    let a = Atomic.get t.buf in
    let a =
      if b - tp >= Array.length a then begin
        grow t ~top_:tp ~bottom_:b;
        Atomic.get t.buf
      end
      else a
    in
    Atomic.set a.(b mod Array.length a) (Some v);
    Atomic.set t.bottom (b + 1)

  let pop t =
    let b = Atomic.get t.bottom - 1 in
    Atomic.set t.bottom b;
    let tp = Atomic.get t.top in
    if b < tp then begin
      (* Empty: restore. *)
      Atomic.set t.bottom tp;
      None
    end
    else begin
      let a = Atomic.get t.buf in
      let slot = a.(b mod Array.length a) in
      let v = Atomic.get slot in
      if b > tp then begin
        Atomic.set slot None;
        v
      end
      else if
        (* Last element: race the thieves through the top CAS. *)
        Atomic.compare_and_set t.top tp (tp + 1)
      then begin
        Atomic.set t.bottom (tp + 1);
        Atomic.set slot None;
        v
      end
      else begin
        Atomic.set t.bottom (tp + 1);
        None
      end
    end

  let steal t =
    let tp = Atomic.get t.top in
    let b = Atomic.get t.bottom in
    if tp >= b then None
    else begin
      let a = Atomic.get t.buf in
      let v = Atomic.get a.(tp mod Array.length a) in
      if Atomic.compare_and_set t.top tp (tp + 1) then v else None
    end
end

type 'a watch = { wdata : 'a; want_read : bool; want_write : bool }

type 'a dom = {
  idx : int;
  deque : 'a Ws_deque.t;
  inj : 'a Queue.t;
  inj_lock : Mutex.t;
  parked : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  watches : (Unix.file_descr, 'a watch) Hashtbl.t;
  pollbuf : Sys_poll.t;
  ep : Sys_poll.Epoll.t option;  (** O(ready) fast path; [pollbuf] fallback *)
  mutable victim : int;  (** steal-rotation cursor *)
  drain_buf : Bytes.t;
}

type 'a t = { doms : 'a dom array }

let mk_dom idx =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let ep = Sys_poll.Epoll.create () in
  (* The wakeup pipe is the one persistent (non-one-shot) registration. *)
  (match ep with
  | Some e -> Sys_poll.Epoll.arm e wake_r ~read:true ~write:false ~oneshot:false
  | None -> ());
  {
    ep;
    idx;
    deque = Ws_deque.create ();
    inj = Queue.create ();
    inj_lock = Mutex.create ();
    parked = Atomic.make false;
    wake_r;
    wake_w;
    watches = Hashtbl.create 64;
    pollbuf = Sys_poll.create ();
    victim = (idx + 1);
    drain_buf = Bytes.create 64;
  }

let create ~ndomains = { doms = Array.init (max 1 ndomains) mk_dom }
let ndomains t = Array.length t.doms
let dom t i = t.doms.(i)

(* ---------- run queue ---------- *)

let push d v = Ws_deque.push d.deque v
let pop d = Ws_deque.pop d.deque
let depth d = Ws_deque.size d.deque

let wake_byte = Bytes.make 1 '!'

let wake d =
  try ignore (Unix.write d.wake_w wake_byte 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    (* Pipe already full: the wakeup is pending anyway. *)
    ()

let inject t ~dom v =
  let d = t.doms.(dom) in
  Mutex.lock d.inj_lock;
  Queue.add v d.inj;
  Mutex.unlock d.inj_lock;
  (* The enqueue above happens before this read; the owner sets [parked]
     before re-checking its injector — so either we see it parked and wake
     it, or it sees our task. *)
  if Atomic.get d.parked then wake d

let drain_injector d f =
  Mutex.lock d.inj_lock;
  let n = Queue.length d.inj in
  if n = 0 then begin
    Mutex.unlock d.inj_lock;
    0
  end
  else begin
    let items = Queue.fold (fun acc v -> v :: acc) [] d.inj in
    Queue.clear d.inj;
    Mutex.unlock d.inj_lock;
    List.iter f (List.rev items);
    n
  end

let try_steal t d =
  let n = Array.length t.doms in
  let fails = ref 0 in
  let won = ref None in
  let i = ref 0 in
  while !won = None && !i < n - 1 do
    let v = (d.victim + !i) mod n in
    if v <> d.idx then begin
      match Ws_deque.steal t.doms.(v).deque with
      | Some _ as got ->
          won := got;
          d.victim <- v
      | None -> incr fails
    end;
    incr i
  done;
  if !won = None then d.victim <- d.victim + 1;
  (!won, !fails)

(* ---------- one-shot watches ---------- *)

let watch d fd ~read ~write v =
  Hashtbl.replace d.watches fd { wdata = v; want_read = read; want_write = write };
  match d.ep with
  | Some e -> Sys_poll.Epoll.arm e fd ~read ~write ~oneshot:true
  | None -> ()

let unwatch d fd =
  Hashtbl.remove d.watches fd;
  match d.ep with Some e -> Sys_poll.Epoll.del e fd | None -> ()
let watched d = Hashtbl.length d.watches
let iter_watches d f = Hashtbl.iter (fun fd w -> f fd w.wdata) d.watches

let drain_wake d =
  let rec go () =
    match Unix.read d.wake_r d.drain_buf 0 (Bytes.length d.drain_buf) with
    | n when n = Bytes.length d.drain_buf -> go ()
    | _ -> ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
  in
  go ()

let wait d ~timeout_s ~on_ready =
  Atomic.set d.parked true;
  (* Dekker handshake with [inject]: the flag is up, so anything already
     enqueued must be visible now — if so, just poll without sleeping. *)
  Mutex.lock d.inj_lock;
  let pending = not (Queue.is_empty d.inj) in
  Mutex.unlock d.inj_lock;
  let timeout_ms =
    if pending || timeout_s <= 0. then 0
    else max 1 (int_of_float (timeout_s *. 1000.))
  in
  let dispatch fd ~readable ~writable =
    if fd = d.wake_r then drain_wake d
    else
      match Hashtbl.find_opt d.watches fd with
      | None -> ()
      | Some w ->
          (* One-shot: whoever runs the task re-arms the fd. A fired epoll
             entry stays registered but disarmed; {!watch} updates it in
             place on re-arm, and closing the fd drops it. *)
          Hashtbl.remove d.watches fd;
          on_ready w.wdata ~readable ~writable
  in
  match d.ep with
  | Some e ->
      let ready = Sys_poll.Epoll.wait e ~timeout_ms in
      Atomic.set d.parked false;
      if ready > 0 then Sys_poll.Epoll.iter_ready e dispatch
  | None ->
      Sys_poll.reset d.pollbuf;
      Sys_poll.add d.pollbuf d.wake_r ~read:true ~write:false;
      Hashtbl.iter
        (fun fd w ->
          Sys_poll.add d.pollbuf fd ~read:w.want_read ~write:w.want_write)
        d.watches;
      let ready = Sys_poll.wait d.pollbuf ~timeout_ms in
      Atomic.set d.parked false;
      if ready > 0 then Sys_poll.iter_ready d.pollbuf dispatch

let wake_all t = Array.iter wake t.doms

let close t =
  Array.iter
    (fun d ->
      (match d.ep with Some e -> Sys_poll.Epoll.close e | None -> ());
      (try Unix.close d.wake_r with Unix.Unix_error _ -> ());
      try Unix.close d.wake_w with Unix.Unix_error _ -> ())
    t.doms
