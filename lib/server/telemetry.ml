(** NVServe telemetry plane (see the interface).

    Layout per worker: one [int array] of counters, one [int array] of
    gauges, one unboxed [float array] of sampler stamps — all single-writer
    (the owning worker domain), read racily by scrapers. No boxed floats on
    the hot path: mixed-record float fields would box on every store, so
    every stamp and duration lives in the flat [stamps] array. *)

(* ---------- counter ids ---------- *)

let c_requests = 0
let c_cmd_get = 1
let c_cmd_set = 2
let c_cmd_delete = 3
let c_cmd_incr = 4
let c_cmd_stats = 5
let c_cmd_other = 6
let c_get_hits = 7
let c_get_misses = 8
let c_rejects = 9
let c_quits = 10
let c_conns_adopted = 11
let c_conns_closed = 12
let c_conns_idle_closed = 13
let c_bytes_read = 14
let c_bytes_written = 15
let c_write_stalls = 16
let c_outbuf_grows = 17
let c_sampled = 18
let c_sched_steals = 19
let c_sched_steal_fails = 20
let c_sched_migrations = 21
let c_sched_injected = 22
let n_counters = 23

let counter_names =
  [|
    "requests";
    "cmd_get";
    "cmd_set";
    "cmd_delete";
    "cmd_incr";
    "cmd_stats";
    "cmd_other";
    "get_hits";
    "get_misses";
    "rejects";
    "quits";
    "conns_adopted";
    "conns_closed";
    "conns_idle_closed";
    "bytes_read";
    "bytes_written";
    "write_stalls";
    "outbuf_grows";
    "sampled_requests";
    "sched_steals";
    "sched_steal_fails";
    "sched_migrations";
    "sched_injected";
  |]

(* First three bytes decide the command class; "gets" rides with "get",
   "decr" with "incr", storage variants with "set". Runs once per framed
   request, so no splitting or allocation. *)
let kind_of req =
  if String.length req < 3 then c_cmd_other
  else
    match (String.unsafe_get req 0, String.unsafe_get req 1, String.unsafe_get req 2) with
    | 'g', 'e', 't' -> c_cmd_get
    | 's', 'e', 't' -> c_cmd_set
    | 'a', 'd', 'd' | 'r', 'e', 'p' | 'a', 'p', 'p' | 'p', 'r', 'e' -> c_cmd_set
    | 'd', 'e', 'l' -> c_cmd_delete
    | 'i', 'n', 'c' | 'd', 'e', 'c' -> c_cmd_incr
    | 's', 't', 'a' -> c_cmd_stats
    | _ -> c_cmd_other

(* ---------- gauges ---------- *)

let g_open_conns = 0
let g_outbuf_hwm = 1
let g_run_queue = 2
let n_gauges = 3

(* ---------- stages ---------- *)

let s_queue = 0
let s_parse = 1
let s_execute = 2
let s_fence = 3
let s_respond = 4
let n_stages = 5
let stage_names = [| "queue"; "parse"; "execute"; "fence"; "respond" |]

(* ---------- sampler stamp slots (unboxed float array) ---------- *)

let st_read = 0 (* wakeup read time — sample clock zero *)
let st_arm = 1 (* parse start of the would-be-sampled request *)
let st_t0 = 2 (* open sample: its st_read *)
let st_queue = 3 (* durations, ns *)
let st_parse = 4
let st_execute = 5
let st_fence = 6
let st_mark = 7 (* end of the last completed stage (absolute) *)
let n_stamps = 8

(* Sample phases. *)
let ph_idle = 0
let ph_executing = 1
let ph_awaiting_fence = 2
let ph_awaiting_write = 3

type sample = {
  worker : int;
  kind : int;
  t0_s : float;
  queue_ns : float;
  parse_ns : float;
  execute_ns : float;
  fence_ns : float;
  respond_ns : float;
  total_ns : float;
}

let ring_cap = 512

type w = {
  idx : int;
  counters : int array;
  gauges : int array;
  stamps : float array;
  req_hist : Workload.Histogram.t;
  stage_hists : Workload.Histogram.t array;
  debt_hist : Workload.Histogram.t;
  sample_every : int;
  mutable countdown : int;
  mutable phase : int;
  mutable s_fd : Unix.file_descr;
  mutable s_kind : int;
  ring : sample option array;
  mutable ring_n : int;  (** total samples ever pushed *)
}

type t = { workers : w array; sample_every_ : int; start : float }

let create ~nworkers ~sample_every =
  let sample_every = max 0 sample_every in
  {
    sample_every_ = sample_every;
    start = Unix.gettimeofday ();
    workers =
      Array.init (max 1 nworkers) (fun idx ->
          {
            idx;
            counters = Array.make n_counters 0;
            gauges = Array.make n_gauges 0;
            stamps = Array.make n_stamps 0.;
            req_hist = Workload.Histogram.create ();
            stage_hists = Array.init n_stages (fun _ -> Workload.Histogram.create ());
            debt_hist = Workload.Histogram.create ();
            sample_every;
            countdown = sample_every;
            phase = ph_idle;
            s_fd = Unix.stdin;
            s_kind = c_cmd_other;
            ring = Array.make ring_cap None;
            ring_n = 0;
          });
  }

let worker t i = t.workers.(i)
let sample_every t = t.sample_every_
let start_time t = t.start

(* ---------- counters / gauges ---------- *)

let bump w id = w.counters.(id) <- w.counters.(id) + 1
let bump_n w id n = w.counters.(id) <- w.counters.(id) + n

let note_get_result w resp =
  if String.length resp > 0 then
    match String.unsafe_get resp 0 with
    | 'V' -> bump w c_get_hits
    | 'E' when String.length resp > 1 && String.unsafe_get resp 1 = 'N' ->
        bump w c_get_misses
    | _ -> ()

let counter t id =
  Array.fold_left (fun acc w -> acc + w.counters.(id)) 0 t.workers

let counters t =
  let out = Array.make n_counters 0 in
  Array.iter
    (fun w ->
      for id = 0 to n_counters - 1 do
        out.(id) <- out.(id) + w.counters.(id)
      done)
    t.workers;
  out

let set_open_conns w n = w.gauges.(g_open_conns) <- n
let set_run_queue_depth w n = w.gauges.(g_run_queue) <- n

let note_outbuf_hwm w n =
  if n > w.gauges.(g_outbuf_hwm) then w.gauges.(g_outbuf_hwm) <- n

let note_outbuf w ~hwm ~grows =
  bump_n w c_outbuf_grows grows;
  note_outbuf_hwm w hwm

let open_conns t =
  Array.fold_left (fun acc w -> acc + w.gauges.(g_open_conns)) 0 t.workers

let outbuf_hwm t =
  Array.fold_left (fun acc w -> max acc w.gauges.(g_outbuf_hwm)) 0 t.workers

let run_queue_depth t =
  Array.fold_left (fun acc w -> acc + w.gauges.(g_run_queue)) 0 t.workers

(* ---------- histograms ---------- *)

let record_debt w n = Workload.Histogram.record w.debt_hist ~ns:(float_of_int n)

let merged pick t =
  let h = Workload.Histogram.create () in
  Array.iter (fun w -> Workload.Histogram.merge ~into:h (pick w)) t.workers;
  h

let debt_hist t = merged (fun w -> w.debt_hist) t
let req_hist t = merged (fun w -> w.req_hist) t
let stage_hist t s = merged (fun w -> w.stage_hists.(s)) t

(* ---------- sampler ---------- *)

let now () = Unix.gettimeofday ()
let ns_of d = d *. 1e9

let on_read w = if w.sample_every > 0 then w.stamps.(st_read) <- now ()

let arm w =
  if w.sample_every > 0 && w.countdown = 1 && w.phase = ph_idle then
    w.stamps.(st_arm) <- now ()

let open_sample w ~fd ~kind =
  let t = now () in
  let t_read = w.stamps.(st_read) in
  (* The arm stamp is only fresh when [arm] ran for this request; a stale
     or missing stamp degrades queue/parse to one combined bucket. *)
  let t_arm = w.stamps.(st_arm) in
  let t_arm = if t_arm >= t_read && t_arm <= t then t_arm else t_read in
  w.stamps.(st_t0) <- t_read;
  w.stamps.(st_queue) <- ns_of (t_arm -. t_read);
  w.stamps.(st_parse) <- ns_of (t -. t_arm);
  w.stamps.(st_mark) <- t;
  w.phase <- ph_executing;
  w.s_fd <- fd;
  w.s_kind <- kind

let on_request w ~fd ~kind =
  bump w c_requests;
  bump w kind;
  if w.sample_every > 0 then begin
    w.countdown <- w.countdown - 1;
    if w.countdown <= 0 then begin
      w.countdown <- w.sample_every;
      (* A sample rides its connection; if that connection migrated to
         another domain mid-flight, the closing write happens over there and
         this worker would stay wedged — abandon stale samples. *)
      if w.phase <> ph_idle && now () -. w.stamps.(st_t0) > 1. then
        w.phase <- ph_idle;
      (* One sample in flight per worker: a turn that lands while one is
         still open is skipped, keeping the cadence honest. *)
      if w.phase = ph_idle then open_sample w ~fd ~kind
    end
  end

let on_executed w =
  if w.phase = ph_executing then begin
    let t = now () in
    w.stamps.(st_execute) <- ns_of (t -. w.stamps.(st_mark));
    w.stamps.(st_mark) <- t;
    w.phase <- ph_awaiting_fence
  end

let on_commit w =
  if w.phase = ph_awaiting_fence then begin
    let t = now () in
    w.stamps.(st_fence) <- ns_of (t -. w.stamps.(st_mark));
    w.stamps.(st_mark) <- t;
    w.phase <- ph_awaiting_write
  end

let close_sample w =
  let t = now () in
  let respond_ns = ns_of (t -. w.stamps.(st_mark)) in
  let total_ns = ns_of (t -. w.stamps.(st_t0)) in
  Workload.Histogram.record w.req_hist ~ns:total_ns;
  Workload.Histogram.record w.stage_hists.(s_queue) ~ns:w.stamps.(st_queue);
  Workload.Histogram.record w.stage_hists.(s_parse) ~ns:w.stamps.(st_parse);
  Workload.Histogram.record w.stage_hists.(s_execute) ~ns:w.stamps.(st_execute);
  Workload.Histogram.record w.stage_hists.(s_fence) ~ns:w.stamps.(st_fence);
  Workload.Histogram.record w.stage_hists.(s_respond) ~ns:respond_ns;
  bump w c_sampled;
  w.ring.(w.ring_n mod ring_cap) <-
    Some
      {
        worker = w.idx;
        kind = w.s_kind;
        t0_s = w.stamps.(st_t0);
        queue_ns = w.stamps.(st_queue);
        parse_ns = w.stamps.(st_parse);
        execute_ns = w.stamps.(st_execute);
        fence_ns = w.stamps.(st_fence);
        respond_ns;
        total_ns;
      };
  w.ring_n <- w.ring_n + 1;
  w.phase <- ph_idle

let on_written w fd ~drained =
  if w.phase = ph_awaiting_write && drained && w.s_fd = fd then close_sample w

let on_conn_gone w fd =
  if w.phase <> ph_idle && w.s_fd = fd then w.phase <- ph_idle

let samples t =
  let all = ref [] in
  Array.iter
    (fun w ->
      Array.iter (function None -> () | Some s -> all := s :: !all) w.ring)
    t.workers;
  List.sort (fun a b -> compare a.t0_s b.t0_s) !all

(* ---------- Chrome trace export ---------- *)

(* Complete ("ph":"X") events, microsecond timestamps relative to server
   start; one tid per worker, stage slices nested under a whole-request
   slice by virtue of containment. *)
let chrome_trace t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  let first = ref true in
  let event ~name ~tid ~ts_us ~dur_us =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"cat\":\"req\"}"
         name tid ts_us dur_us)
  in
  List.iter
    (fun s ->
      let base_us = (s.t0_s -. t.start) *. 1e6 in
      let kind = counter_names.(s.kind) in
      event ~name:kind ~tid:s.worker ~ts_us:base_us ~dur_us:(s.total_ns /. 1e3);
      let cursor = ref base_us in
      List.iter
        (fun (stage, ns) ->
          let dur_us = ns /. 1e3 in
          event
            ~name:(kind ^ "/" ^ stage)
            ~tid:s.worker ~ts_us:!cursor ~dur_us;
          cursor := !cursor +. dur_us)
        [
          ("queue", s.queue_ns);
          ("parse", s.parse_ns);
          ("execute", s.execute_ns);
          ("fence", s.fence_ns);
          ("respond", s.respond_ns);
        ])
    (samples t);
  Buffer.add_string b "]\n";
  Buffer.contents b
