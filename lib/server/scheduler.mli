(** A per-domain run-queue scheduler with work stealing — the volatile twin
    of {!Durable_deque}'s owner/steal discipline, driving NVServe's
    connection tasks.

    Each domain owns a Chase-Lev deque (owner pushes and pops the bottom,
    thieves CAS the top), a mutex-guarded injector queue any thread may
    append to (the acceptor's hand-off path, and the forwarding path for
    pinned tasks), and a one-shot fd poller — epoll where available
    ({!Sys_poll.Epoll}, O(ready) per wakeup), falling back to a poll(2)
    buffer rebuilt per wait (O(watched) per wakeup). An idle domain
    first drains its injector, then pops its own deque, then steals from
    peers, and finally parks in {!wait} — woken early by a self-pipe byte
    whenever someone injects into it.

    Watches are {b one-shot}: a ready fd is deregistered before its task is
    surfaced, so whichever domain ends up running the task (owner or thief)
    re-registers the fd with {e its own} poller — this is what makes task
    migration safe without any shared fd bookkeeping.

    Ownership rules mirror the durable deque: {!push}, {!pop},
    {!drain_injector}, {!watch}, {!unwatch}, {!iter_watches} and {!wait} are
    owner-only (the domain bound to that handle); {!inject} and {!try_steal}
    are safe from any domain. *)

(** The volatile Chase-Lev deque, exposed for the scheduler's unit tests.
    Owner-only [push]/[pop] at the bottom; any thread may [steal] the top. *)
module Ws_deque : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option

  (** [None] = empty or lost the race to a concurrent taker. *)
  val steal : 'a t -> 'a option

  (** Approximate occupancy (racy read of both indices). *)
  val size : 'a t -> int
end

type 'a t

(** One domain's handle: its deque, injector, poller and park flag. *)
type 'a dom

val create : ndomains:int -> 'a t
val ndomains : 'a t -> int

(** [dom t i] — the handle domain [i] binds to (call from that domain). *)
val dom : 'a t -> int -> 'a dom

(** {2 Run queue} *)

val push : 'a dom -> 'a -> unit
val pop : 'a dom -> 'a option

(** Deque occupancy (the run-queue depth gauge). *)
val depth : 'a dom -> int

(** Append a task to domain [dom]'s injector from any thread, waking it if
    parked. *)
val inject : 'a t -> dom:int -> 'a -> unit

(** Move every injected task into the owner's hands; returns the count. *)
val drain_injector : 'a dom -> ('a -> unit) -> int

(** One steal sweep over the peers (rotating start): the first task won, if
    any, plus the number of failed attempts — empty peeks and lost CAS races
    both count, feeding the steal-fail telemetry. *)
val try_steal : 'a t -> 'a dom -> 'a option * int

(** {2 One-shot fd watches} *)

(** Register (or re-arm) [fd] with the given interest; the task value is
    surfaced by {!wait} when the fd turns ready, after the watch is
    removed. *)
val watch : 'a dom -> Unix.file_descr -> read:bool -> write:bool -> 'a -> unit

val unwatch : 'a dom -> Unix.file_descr -> unit
val watched : 'a dom -> int

(** Owner-only iteration over parked watches (idle scans, draining). *)
val iter_watches : 'a dom -> (Unix.file_descr -> 'a -> unit) -> unit

(** Park until an fd turns ready, a task is injected, or [timeout_s]
    elapses. Ready watches are removed and handed to [on_ready]. Returns
    immediately when the injector is non-empty. *)
val wait :
  'a dom ->
  timeout_s:float ->
  on_ready:('a -> readable:bool -> writable:bool -> unit) ->
  unit

(** Wake every parked domain (shutdown broadcast). *)
val wake_all : 'a t -> unit

(** Close the wake pipes and epoll instances. Call after the domains using
    the handles have exited. *)
val close : 'a t -> unit
