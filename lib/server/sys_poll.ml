(** poll(2) over a Bigarray pollfd buffer (see the interface). *)

type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

external sizeof_pollfd : unit -> int = "nvlf_sizeof_pollfd"

external pollfd_set : buf -> int -> int -> int -> unit = "nvlf_pollfd_set"
  [@@noalloc]

external pollfd_fd : buf -> int -> int = "nvlf_pollfd_fd" [@@noalloc]

external pollfd_revents : buf -> int -> int = "nvlf_pollfd_revents"
  [@@noalloc]

external poll_exec : buf -> int -> int -> int = "nvlf_poll"
external nofile_soft : unit -> int = "nvlf_nofile_soft"
external nofile_hard : unit -> int = "nvlf_nofile_hard"
external set_nofile : int -> int = "nvlf_set_nofile"
external monotonic_ns : unit -> int = "nvlf_monotonic_ns" [@@noalloc]

(* On Unix a [Unix.file_descr] is the fd number itself. *)
external int_of_fd : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"

let entry_size = sizeof_pollfd ()

type t = { mutable buf : buf; mutable n : int }

let alloc_bytes n = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n
let alloc entries = alloc_bytes (entries * entry_size)

let create () = { buf = alloc 64; n = 0 }
let reset t = t.n <- 0
let length t = t.n

let add t fd ~read ~write =
  let cap = Bigarray.Array1.dim t.buf / entry_size in
  if t.n >= cap then begin
    let nb = alloc (cap * 2) in
    Bigarray.Array1.blit t.buf (Bigarray.Array1.sub nb 0 (cap * entry_size));
    t.buf <- nb
  end;
  pollfd_set t.buf t.n (int_of_fd fd)
    ((if read then 1 else 0) lor if write then 2 else 0);
  t.n <- t.n + 1

let eintr = 4

let wait t ~timeout_ms =
  let r = poll_exec t.buf t.n timeout_ms in
  if r >= 0 then r
  else if r = -eintr then 0
  else
    raise
      (Unix.Unix_error (Unix.EUNKNOWNERR (-r), "poll", string_of_int t.n))

let iter_ready t f =
  for i = 0 to t.n - 1 do
    let r = pollfd_revents t.buf i in
    if r <> 0 then
      f
        (fd_of_int (pollfd_fd t.buf i))
        ~readable:(r land 1 <> 0) ~writable:(r land 2 <> 0)
  done

module Epoll = struct
  external ep_create : unit -> int = "nvlf_epoll_create"
  external ep_arm : int -> int -> int -> int = "nvlf_epoll_arm" [@@noalloc]
  external ep_del : int -> int -> int = "nvlf_epoll_del" [@@noalloc]
  external ep_wait : int -> buf -> int -> int -> int = "nvlf_epoll_wait"
  external sizeof_event : unit -> int = "nvlf_sizeof_epoll_event"

  external ev_fd : buf -> int -> int = "nvlf_epoll_event_fd" [@@noalloc]

  external ev_revents : buf -> int -> int = "nvlf_epoll_event_revents"
    [@@noalloc]

  (* More ready events than this per wait just roll over to the next turn:
     epoll keeps undelivered readiness in the kernel. *)
  let max_events = 512

  type t = { epfd : int; evbuf : buf; mutable ready : int }

  let create () =
    let epfd = ep_create () in
    if epfd < 0 then None
    else
      Some
        { epfd; evbuf = alloc_bytes (max_events * sizeof_event ()); ready = 0 }

  let err name r detail =
    raise (Unix.Unix_error (Unix.EUNKNOWNERR (-r), name, string_of_int detail))

  let arm e fd ~read ~write ~oneshot =
    let bits =
      (if read then 1 else 0)
      lor (if write then 2 else 0)
      lor if oneshot then 4 else 0
    in
    let r = ep_arm e.epfd (int_of_fd fd) bits in
    if r < 0 then err "epoll_ctl" r (int_of_fd fd)

  let del e fd = ignore (ep_del e.epfd (int_of_fd fd))

  let wait e ~timeout_ms =
    let r = ep_wait e.epfd e.evbuf max_events timeout_ms in
    let n = if r = -eintr then 0 else r in
    if n < 0 then err "epoll_wait" n e.epfd;
    e.ready <- n;
    n

  let iter_ready e f =
    for i = 0 to e.ready - 1 do
      let r = ev_revents e.evbuf i in
      f
        (fd_of_int (ev_fd e.evbuf i))
        ~readable:(r land 1 <> 0) ~writable:(r land 2 <> 0)
    done

  let close e = try Unix.close (fd_of_int e.epfd) with Unix.Unix_error _ -> ()
end

let fd_limit () = nofile_soft ()
let fd_limit_max () = nofile_hard ()

let ensure_fd_capacity n =
  let soft = nofile_soft () in
  if soft >= n then soft else set_nofile n
