(** The NVServe TCP server (see the interface). One acceptor domain, N
    worker domains; each worker multiplexes its connections with [select],
    frames requests with {!Framing} and answers them with
    {!Kvcache.Protocol.handle} on its own heap cursor. *)

type config = {
  port : int;
  nworkers : int;
  nbuckets : int;
  capacity : int;
  mode : Lfds.Persist_mode.t;
  latency : Nvm.Latency_model.t;
  idle_timeout : float;
  read_chunk : int;
}

let default_config () =
  {
    port = 0;
    nworkers = 4;
    nbuckets = 4096;
    capacity = 100_000;
    mode = Lfds.Persist_mode.Link_persist;
    latency = Nvm.Latency_model.no_injection ();
    idle_timeout = 60.;
    read_chunk = 4096;
  }

let heap_config cfg =
  let base = Lfds.Ctx.default_config () in
  {
    base with
    (* ~96 heap words per item (node + item payload + page slack) plus a
       floor for the static carves and the allocator's working set. *)
    Lfds.Ctx.size_words = max (1 lsl 18) ((cfg.capacity * 96) + (1 lsl 16));
    nthreads = max 1 cfg.nworkers;
    mode = cfg.mode;
    latency = cfg.latency;
    apt_entries = 8192;
    static_words = max base.Lfds.Ctx.static_words ((4 * cfg.nbuckets) + 8192);
  }

(* A connection's buffer must hold the largest frameable request plus one
   read chunk of slack; the frame loop compacts consumed bytes away, so a
   [Need_more] leading request always leaves at least a chunk of room. *)
let buf_capacity cfg =
  Framing.max_line_bytes + Framing.max_data_bytes + 2 + cfg.read_chunk

type conn = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable len : int;  (** valid bytes at the front of [buf] *)
  out : Buffer.t;
  mutable out_off : int;  (** bytes of [out] already written *)
  mutable last_active : float;
  mutable closing : bool;  (** close once [out] drains *)
}

type state = Running | Draining | Killed

type worker = {
  idx : int;
  inbox : Unix.file_descr Queue.t;  (** accepted fds awaiting adoption *)
  inbox_lock : Mutex.t;
  served : int Atomic.t;
}

type t = {
  cfg : config;
  hcfg : Lfds.Ctx.config;
  ctx : Lfds.Ctx.t;
  store_ : Shard_store.t;
  lsock : Unix.file_descr;
  port_ : int;
  state : state Atomic.t;
  workers : worker array;
  mutable domains : unit Domain.t list;
  accepted : int Atomic.t;
  down : bool ref;  (** shutdown already completed (stop/kill idempotence) *)
  down_lock : Mutex.t;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------- connection I/O ---------- *)

let conn_create cfg fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  {
    fd;
    buf = Bytes.create (buf_capacity cfg);
    len = 0;
    out = Buffer.create 256;
    out_off = 0;
    last_active = Unix.gettimeofday ();
    closing = false;
  }

let out_pending c = Buffer.length c.out - c.out_off

(* Write as much buffered output as the socket accepts; false = connection
   is dead. *)
let try_write c =
  let rec go () =
    let n = out_pending c in
    if n = 0 then true
    else
      let s = Buffer.to_bytes c.out in
      match Unix.write c.fd s c.out_off n with
      | written ->
          c.out_off <- c.out_off + written;
          if c.out_off >= Buffer.length c.out then begin
            Buffer.clear c.out;
            c.out_off <- 0;
            true
          end
          else if written = 0 then true
          else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          true
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go ()

let is_quit req = match String.trim req with "quit" | "QUIT" -> true | _ -> false

(* Frame and answer every complete request currently buffered. Returns
   false when the connection must close immediately (protocol violation
   with nothing to flush is still flushed first via [closing]). *)
let drain_requests w proto c =
  let rec go pos =
    if pos >= c.len then pos
    else
      match Framing.next c.buf ~pos ~len:(c.len - pos) with
      | Framing.Request { req; consumed } ->
          if is_quit req then begin
            c.closing <- true;
            pos + consumed
          end
          else begin
            Buffer.add_string c.out (Kvcache.Protocol.handle proto ~tid:w.idx req);
            Atomic.incr w.served;
            go (pos + consumed)
          end
      | Framing.Reject { response; consumed } ->
          Buffer.add_string c.out response;
          Atomic.incr w.served;
          go (pos + consumed)
      | Framing.Need_more -> pos
      | Framing.Too_long ->
          Buffer.add_string c.out "CLIENT_ERROR line too long\r\n";
          c.closing <- true;
          c.len (* discard the unframeable stream *)
  in
  let consumed = go 0 in
  if consumed > 0 then begin
    if consumed < c.len then Bytes.blit c.buf consumed c.buf 0 (c.len - consumed);
    c.len <- c.len - consumed
  end

(* One readable event: pull bytes, frame, answer. false = close now. *)
let service_read cfg w proto c =
  let room = Bytes.length c.buf - c.len in
  let want = min cfg.read_chunk room in
  if want = 0 then begin
    drain_requests w proto c;
    true
  end
  else
    match Unix.read c.fd c.buf c.len want with
    | 0 -> false (* peer closed *)
    | n ->
        c.len <- c.len + n;
        c.last_active <- Unix.gettimeofday ();
        drain_requests w proto c;
        try_write c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        true
    | exception Unix.Unix_error (_, _, _) -> false

(* ---------- worker ---------- *)

let adopt_pending w =
  Mutex.lock w.inbox_lock;
  let fds = Queue.fold (fun acc fd -> fd :: acc) [] w.inbox in
  Queue.clear w.inbox;
  Mutex.unlock w.inbox_lock;
  fds

let worker_loop t w proto =
  let cfg = t.cfg in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    close_quiet c.fd
  in
  let running = ref true in
  while !running do
    (match Atomic.get t.state with
    | Running -> ()
    | Draining ->
        (* Answer what is already buffered, flush, and leave. *)
        Hashtbl.iter
          (fun _ c ->
            drain_requests w proto c;
            ignore (try_write c))
          conns;
        Hashtbl.iter (fun _ c -> close_quiet c.fd) conns;
        Hashtbl.reset conns;
        running := false
    | Killed ->
        Hashtbl.iter (fun _ c -> close_quiet c.fd) conns;
        Hashtbl.reset conns;
        running := false);
    if !running then begin
      List.iter
        (fun fd ->
          let c = conn_create cfg fd in
          Hashtbl.replace conns fd c)
        (adopt_pending w);
      let rfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      let wfds =
        Hashtbl.fold
          (fun fd c acc -> if out_pending c > 0 then fd :: acc else acc)
          conns []
      in
      let readable, writable, _ =
        try Unix.select rfds wfds [] 0.05
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c -> if not (try_write c) then close_conn c)
        writable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c ->
              if not (service_read cfg w proto c) then close_conn c
              else if c.closing && out_pending c = 0 then close_conn c)
        readable;
      if cfg.idle_timeout > 0. then begin
        let now = Unix.gettimeofday () in
        let stale =
          Hashtbl.fold
            (fun _ c acc ->
              if now -. c.last_active > cfg.idle_timeout then c :: acc else acc)
            conns []
        in
        List.iter close_conn stale
      end
    end
  done

(* ---------- acceptor ---------- *)

let acceptor_loop t =
  let next = ref 0 in
  while Atomic.get t.state = Running do
    match Unix.select [ t.lsock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.lsock with
        | fd, _ ->
            let w = t.workers.(!next mod Array.length t.workers) in
            incr next;
            Mutex.lock w.inbox_lock;
            Queue.add fd w.inbox;
            Mutex.unlock w.inbox_lock;
            Atomic.incr t.accepted
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---------- lifecycle ---------- *)

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let start_with cfg ~heap_cfg ctx store_ =
  ignore_sigpipe ();
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port));
  Unix.listen lsock 128;
  Unix.set_nonblock lsock;
  let port_ =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let workers =
    Array.init (max 1 cfg.nworkers) (fun idx ->
        {
          idx;
          inbox = Queue.create ();
          inbox_lock = Mutex.create ();
          served = Atomic.make 0;
        })
  in
  let t =
    {
      cfg;
      hcfg = heap_cfg;
      ctx;
      store_;
      lsock;
      port_;
      state = Atomic.make Running;
      workers;
      domains = [];
      accepted = Atomic.make 0;
      down = ref false;
      down_lock = Mutex.create ();
    }
  in
  let proto = Kvcache.Protocol.create (Shard_store.ops store_) in
  let worker_domains =
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w proto)) workers)
  in
  let acceptor = Domain.spawn (fun () -> acceptor_loop t) in
  t.domains <- acceptor :: worker_domains;
  t

let start cfg =
  let hcfg = heap_config cfg in
  let ctx = Lfds.Ctx.create hcfg in
  let store_ =
    Shard_store.create ctx ~nshards:(max 1 cfg.nworkers) ~nbuckets:cfg.nbuckets
      ~capacity:cfg.capacity
  in
  start_with cfg ~heap_cfg:hcfg ctx store_

let port t = t.port_
let config t = t.cfg
let heap_cfg t = t.hcfg
let ctx t = t.ctx
let store t = t.store_

let requests_served t =
  Array.fold_left (fun acc w -> acc + Atomic.get w.served) 0 t.workers

let connections_accepted t = Atomic.get t.accepted

let shutdown t target ~persist =
  Mutex.lock t.down_lock;
  let first = not !(t.down) in
  if first then t.down := true;
  Mutex.unlock t.down_lock;
  if first then begin
    Atomic.set t.state target;
    List.iter Domain.join t.domains;
    t.domains <- [];
    close_quiet t.lsock;
    if persist then begin
      (match Lfds.Ctx.link_cache t.ctx with
      | Some lc -> Lfds.Link_cache.flush_all lc ~tid:0
      | None -> ());
      Nvm.Heap.flush_all (Lfds.Ctx.heap t.ctx) ~tid:0
    end
  end

let stop t = shutdown t Draining ~persist:true
let kill t = shutdown t Killed ~persist:false
