(** The NVServe TCP server (see the interface). One acceptor domain, N
    worker domains; each worker multiplexes its connections with [select],
    frames requests with {!Framing} and answers them on its own heap cursor.

    Group commit (ISSUE 5): with [max_batch > 1] a worker executes every
    complete pipelined request of a wakeup through
    {!Kvcache.Protocol.handle_deferred} — link-and-persist marking without
    the per-op fence — appending the responses {e held} in each
    connection's {!Outbuf}. One {!Kvcache.Protocol.commit} then covers the
    whole batch with a single fence, the held responses are released, and
    each connection's released span goes out in one gathered write. An
    acked mutation is therefore still durable before its reply hits the
    wire; the fence cost drops by the batch depth. [max_batch] bounds the
    ops under one fence (overflow commits mid-wakeup); [max_delay_us]
    optionally lets a scarce batch ride across wakeups to fill up, bounded
    by that starvation deadline ([0] = commit at every wakeup end). *)

type config = {
  port : int;
  nworkers : int;
  nbuckets : int;
  capacity : int;
  mode : Lfds.Persist_mode.t;
  latency : Nvm.Latency_model.t;
  idle_timeout : float;
  read_chunk : int;
  max_batch : int;
  max_delay_us : int;
}

let default_config () =
  {
    port = 0;
    nworkers = 4;
    nbuckets = 4096;
    capacity = 100_000;
    mode = Lfds.Persist_mode.Link_persist;
    latency = Nvm.Latency_model.no_injection ();
    idle_timeout = 60.;
    read_chunk = 4096;
    max_batch = 64;
    max_delay_us = 0;
  }

let heap_config cfg =
  let base = Lfds.Ctx.default_config () in
  {
    base with
    (* ~96 heap words per item (node + item payload + page slack) plus a
       floor for the static carves and the allocator's working set. *)
    Lfds.Ctx.size_words = max (1 lsl 18) ((cfg.capacity * 96) + (1 lsl 16));
    nthreads = max 1 cfg.nworkers;
    mode = cfg.mode;
    latency = cfg.latency;
    apt_entries = 8192;
    static_words = max base.Lfds.Ctx.static_words ((4 * cfg.nbuckets) + 8192);
  }

(* A connection's buffer must hold the largest frameable request plus one
   read chunk of slack; the frame loop compacts consumed bytes away, so a
   [Need_more] leading request always leaves at least a chunk of room. *)
let buf_capacity cfg =
  Framing.max_line_bytes + Framing.max_data_bytes + 2 + cfg.read_chunk

type conn = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable len : int;  (** valid bytes at the front of [buf] *)
  out : Outbuf.t;  (** responses; held until the covering fence releases *)
  mutable last_active : float;
  mutable closing : bool;  (** close once [out] drains *)
}

type state = Running | Draining | Killed

type worker = {
  idx : int;
  inbox : Unix.file_descr Queue.t;  (** accepted fds awaiting adoption *)
  inbox_lock : Mutex.t;
  served : int Atomic.t;
  commits : int Atomic.t;  (** group-commit batches this worker retired *)
  depth_hist : Workload.Histogram.t;
      (** batch depth (ops per commit) distribution; recorded as "ns" —
          merge/read after the worker stopped for exact counts *)
}

type t = {
  cfg : config;
  hcfg : Lfds.Ctx.config;
  ctx : Lfds.Ctx.t;
  store_ : Shard_store.t;
  lsock : Unix.file_descr;
  port_ : int;
  state : state Atomic.t;
  workers : worker array;
  mutable domains : unit Domain.t list;
  accepted : int Atomic.t;
  down : bool ref;  (** shutdown already completed (stop/kill idempotence) *)
  down_lock : Mutex.t;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------- connection I/O ---------- *)

let conn_create cfg fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  {
    fd;
    buf = Bytes.create (buf_capacity cfg);
    len = 0;
    out = Outbuf.create 256;
    last_active = Unix.gettimeofday ();
    closing = false;
  }

let out_pending c = Outbuf.length c.out

(* Write as much released output as the socket accepts, straight out of the
   backing buffer (no copy); false = connection is dead. *)
let try_write c =
  let rec go () =
    let n = Outbuf.writable c.out in
    if n = 0 then true
    else
      match Unix.write c.fd (Outbuf.bytes c.out) (Outbuf.start c.out) n with
      | 0 -> true
      | written ->
          Outbuf.consume c.out written;
          if written < n then true else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          true
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go ()

(* [String.trim] copies the request, so gate it on length: a quit line is
   tiny, and this predicate runs once per framed request. *)
let is_quit req =
  String.length req <= 8
  && (match String.trim req with "quit" | "QUIT" -> true | _ -> false)

(* ---------- worker ---------- *)

let adopt_pending w =
  Mutex.lock w.inbox_lock;
  let fds = Queue.fold (fun acc fd -> fd :: acc) [] w.inbox in
  Queue.clear w.inbox;
  Mutex.unlock w.inbox_lock;
  fds

let worker_loop t w proto =
  let cfg = t.cfg in
  let batching = cfg.max_batch > 1 in
  let max_delay = float_of_int cfg.max_delay_us *. 1e-6 in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  (* Open-batch state: ops executed deferred but not yet covered by a fence,
     and when the oldest of them arrived (the starvation clock). Responses
     for those ops sit held in their connections' out buffers. *)
  let batch_ops = ref 0 in
  let batch_since = ref 0. in
  let commit_batch () =
    if !batch_ops > 0 then begin
      Kvcache.Protocol.commit proto ~tid:w.idx ~ops:!batch_ops;
      Atomic.incr w.commits;
      Workload.Histogram.record w.depth_hist ~ns:(float_of_int !batch_ops);
      batch_ops := 0
    end;
    (* Every held response is now covered (mutating or not): release. *)
    Hashtbl.iter (fun _ c -> Outbuf.release_all c.out) conns
  in
  let answer c req =
    if batching then begin
      if !batch_ops = 0 then batch_since := Unix.gettimeofday ();
      Outbuf.add_string c.out (Kvcache.Protocol.handle_deferred proto ~tid:w.idx req);
      incr batch_ops;
      if !batch_ops >= cfg.max_batch then commit_batch ()
    end
    else begin
      Outbuf.add_string c.out (Kvcache.Protocol.handle proto ~tid:w.idx req);
      Outbuf.release_all c.out
    end;
    Atomic.incr w.served
  in
  (* Frame and answer every complete request currently buffered. *)
  let drain_requests c =
    let rec go pos =
      if pos >= c.len then pos
      else
        match Framing.next c.buf ~pos ~len:(c.len - pos) with
        | Framing.Request { req; consumed } ->
            if is_quit req then begin
              c.closing <- true;
              pos + consumed
            end
            else begin
              answer c req;
              go (pos + consumed)
            end
        | Framing.Reject { response; consumed } ->
            Outbuf.add_string c.out response;
            if not batching then Outbuf.release_all c.out;
            Atomic.incr w.served;
            go (pos + consumed)
        | Framing.Need_more -> pos
        | Framing.Too_long ->
            Outbuf.add_string c.out "CLIENT_ERROR line too long\r\n";
            if not batching then Outbuf.release_all c.out;
            c.closing <- true;
            c.len (* discard the unframeable stream *)
    in
    let consumed = go 0 in
    if consumed > 0 then begin
      if consumed < c.len then Bytes.blit c.buf consumed c.buf 0 (c.len - consumed);
      c.len <- c.len - consumed
    end
  in
  (* One readable event: pull bytes, frame, answer (responses stay held
     until the batch commits; the write happens after). false = close. *)
  let service_read c =
    let room = Bytes.length c.buf - c.len in
    let want = min cfg.read_chunk room in
    if want = 0 then begin
      drain_requests c;
      true
    end
    else
      match Unix.read c.fd c.buf c.len want with
      | 0 -> false (* peer closed *)
      | n ->
          c.len <- c.len + n;
          c.last_active <- Unix.gettimeofday ();
          drain_requests c;
          true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          true
      | exception Unix.Unix_error (_, _, _) -> false
  in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    close_quiet c.fd
  in
  let held_any () =
    !batch_ops > 0
    || Hashtbl.fold (fun _ c acc -> acc || Outbuf.held c.out > 0) conns false
  in
  let running = ref true in
  while !running do
    (match Atomic.get t.state with
    | Running -> ()
    | Draining ->
        (* Answer what is already buffered, commit, flush, and leave. *)
        Hashtbl.iter (fun _ c -> drain_requests c) conns;
        commit_batch ();
        Hashtbl.iter (fun _ c -> ignore (try_write c)) conns;
        Hashtbl.iter (fun _ c -> close_quiet c.fd) conns;
        Hashtbl.reset conns;
        running := false
    | Killed ->
        Hashtbl.iter (fun _ c -> close_quiet c.fd) conns;
        Hashtbl.reset conns;
        running := false);
    if !running then begin
      List.iter
        (fun fd ->
          let c = conn_create cfg fd in
          Hashtbl.replace conns fd c)
        (adopt_pending w);
      let rfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      let wfds =
        Hashtbl.fold
          (fun fd c acc -> if Outbuf.writable c.out > 0 then fd :: acc else acc)
          conns []
      in
      (* With a starved batch held open, wake at its deadline, not later. *)
      let timeout =
        if !batch_ops > 0 && max_delay > 0. then
          let remaining = !batch_since +. max_delay -. Unix.gettimeofday () in
          max 0.001 (min 0.05 remaining)
        else 0.05
      in
      let readable, writable, _ =
        try Unix.select rfds wfds [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c -> if not (try_write c) then close_conn c)
        writable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c -> if not (service_read c) then close_conn c)
        readable;
      (* Wakeup end: the whole ready batch has executed. Commit and release
         unless a small batch may still ride the starvation window. *)
      if
        held_any ()
        && (max_delay = 0.
           || !batch_ops = 0
           || Unix.gettimeofday () >= !batch_since +. max_delay)
      then commit_batch ();
      (* Gathered write: each connection's released span in one write. *)
      let dead =
        Hashtbl.fold
          (fun _ c acc ->
            if Outbuf.writable c.out > 0 && not (try_write c) then c :: acc
            else if c.closing && out_pending c = 0 then c :: acc
            else acc)
          conns []
      in
      List.iter close_conn dead;
      if cfg.idle_timeout > 0. then begin
        let now = Unix.gettimeofday () in
        let stale =
          Hashtbl.fold
            (fun _ c acc ->
              if now -. c.last_active > cfg.idle_timeout then c :: acc else acc)
            conns []
        in
        List.iter close_conn stale
      end
    end
  done

(* ---------- acceptor ---------- *)

let acceptor_loop t =
  let next = ref 0 in
  while Atomic.get t.state = Running do
    match Unix.select [ t.lsock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.lsock with
        | fd, _ ->
            let w = t.workers.(!next mod Array.length t.workers) in
            incr next;
            Mutex.lock w.inbox_lock;
            Queue.add fd w.inbox;
            Mutex.unlock w.inbox_lock;
            Atomic.incr t.accepted
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---------- lifecycle ---------- *)

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let start_with cfg ~heap_cfg ctx store_ =
  ignore_sigpipe ();
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port));
  Unix.listen lsock 128;
  Unix.set_nonblock lsock;
  let port_ =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let workers =
    Array.init (max 1 cfg.nworkers) (fun idx ->
        {
          idx;
          inbox = Queue.create ();
          inbox_lock = Mutex.create ();
          served = Atomic.make 0;
          commits = Atomic.make 0;
          depth_hist = Workload.Histogram.create ();
        })
  in
  let t =
    {
      cfg;
      hcfg = heap_cfg;
      ctx;
      store_;
      lsock;
      port_;
      state = Atomic.make Running;
      workers;
      domains = [];
      accepted = Atomic.make 0;
      down = ref false;
      down_lock = Mutex.create ();
    }
  in
  let proto = Kvcache.Protocol.create (Shard_store.ops store_) in
  let worker_domains =
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w proto)) workers)
  in
  let acceptor = Domain.spawn (fun () -> acceptor_loop t) in
  t.domains <- acceptor :: worker_domains;
  t

let start cfg =
  let hcfg = heap_config cfg in
  let ctx = Lfds.Ctx.create hcfg in
  let store_ =
    Shard_store.create ctx ~nshards:(max 1 cfg.nworkers) ~nbuckets:cfg.nbuckets
      ~capacity:cfg.capacity
  in
  start_with cfg ~heap_cfg:hcfg ctx store_

let port t = t.port_
let config t = t.cfg
let heap_cfg t = t.hcfg
let ctx t = t.ctx
let store t = t.store_

let requests_served t =
  Array.fold_left (fun acc w -> acc + Atomic.get w.served) 0 t.workers

let connections_accepted t = Atomic.get t.accepted

let group_commits t =
  Array.fold_left (fun acc w -> acc + Atomic.get w.commits) 0 t.workers

let batch_depth_hist t =
  let h = Workload.Histogram.create () in
  Array.iter (fun w -> Workload.Histogram.merge ~into:h w.depth_hist) t.workers;
  h

let shutdown t target ~persist =
  Mutex.lock t.down_lock;
  let first = not !(t.down) in
  if first then t.down := true;
  Mutex.unlock t.down_lock;
  if first then begin
    Atomic.set t.state target;
    List.iter Domain.join t.domains;
    t.domains <- [];
    close_quiet t.lsock;
    if persist then begin
      (match Lfds.Ctx.link_cache t.ctx with
      | Some lc -> Lfds.Link_cache.flush_all lc ~tid:0
      | None -> ());
      Nvm.Heap.flush_all (Lfds.Ctx.heap t.ctx) ~tid:0
    end
  end

let stop t = shutdown t Draining ~persist:true
let kill t = shutdown t Killed ~persist:false
