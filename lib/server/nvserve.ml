(** The NVServe TCP server (see the interface). One acceptor domain, N
    worker domains.

    {b Scheduler runtime} (the default): connections are resumable tasks on
    {!Scheduler}'s per-domain run queues. The acceptor round-robins accepted
    fds into per-domain injectors; each worker drains its injector, runs
    every task in its deque, steals from peers when empty, and parks in the
    scheduler's poll(2)-backed {!Scheduler.wait} — so thousands of
    mostly-idle connections multiplex over a few domains, hot connections
    migrate toward idle domains, and one group-commit batch forms across
    {e every} connection a domain drains in a turn, not just one select
    wakeup's worth. Connections carrying responses that still await their
    covering fence are {e pinned}: a thief that steals one forwards it back
    to its home domain instead of running it, so held responses are only
    ever released by the fence that covers them.

    {b Select runtime} ([runtime = Select]): the pre-scheduler per-worker
    select loop, kept as the measurable baseline. [Unix.select] cannot
    represent fds >= FD_SETSIZE (1024), so this runtime refuses connections
    whose fd number would overflow the set rather than corrupting it.

    Group commit (ISSUE 5): with [max_batch > 1] a worker executes every
    complete pipelined request of a turn through
    {!Kvcache.Protocol.handle_deferred} — link-and-persist marking without
    the per-op fence — appending the responses {e held} in each
    connection's {!Outbuf}. One {!Kvcache.Protocol.commit} then covers the
    whole batch with a single fence, the held responses are released, and
    each connection's released span goes out in one gathered write. An
    acked mutation is therefore still durable before its reply hits the
    wire; the fence cost drops by the batch depth. [max_batch] bounds the
    ops under one fence (overflow commits mid-turn); [max_delay_us]
    optionally lets a scarce batch ride across turns to fill up, bounded
    by that starvation deadline ([0] = commit at every turn end). *)

type runtime = Sched | Select

let runtime_to_string = function Sched -> "sched" | Select -> "select"

let runtime_of_string = function
  | "sched" -> Some Sched
  | "select" -> Some Select
  | _ -> None

type config = {
  port : int;
  nworkers : int;
  nbuckets : int;
  capacity : int;
  mode : Lfds.Persist_mode.t;
  latency : Nvm.Latency_model.t;
  idle_timeout : float;
  read_chunk : int;
  max_batch : int;
  max_delay_us : int;
  metrics_port : int option;
  sample_every : int;
  runtime : runtime;
}

let default_config () =
  {
    port = 0;
    nworkers = 4;
    nbuckets = 4096;
    capacity = 100_000;
    mode = Lfds.Persist_mode.Link_persist;
    latency = Nvm.Latency_model.no_injection ();
    idle_timeout = 60.;
    read_chunk = 4096;
    max_batch = 64;
    max_delay_us = 0;
    metrics_port = None;
    sample_every = 0;
    runtime = Sched;
  }

let heap_config cfg =
  let base = Lfds.Ctx.default_config () in
  {
    base with
    (* ~96 heap words per item (node + item payload + page slack) plus a
       floor for the static carves and the allocator's working set. *)
    Lfds.Ctx.size_words = max (1 lsl 18) ((cfg.capacity * 96) + (1 lsl 16));
    nthreads = max 1 cfg.nworkers;
    mode = cfg.mode;
    latency = cfg.latency;
    apt_entries = 8192;
    static_words = max base.Lfds.Ctx.static_words ((4 * cfg.nbuckets) + 8192);
  }

(* A connection's buffer must hold the largest frameable request plus one
   read chunk of slack; the frame loop compacts consumed bytes away, so a
   [Need_more] leading request always leaves at least a chunk of room. The
   buffer starts one chunk small and doubles on demand — at C10K counts a
   mostly-idle connection must not pay the full ~22 KB up front. *)
let buf_capacity cfg =
  Framing.max_line_bytes + Framing.max_data_bytes + 2 + cfg.read_chunk

type conn = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;  (** grows by doubling up to {!buf_capacity} *)
  mutable len : int;  (** valid bytes at the front of [buf] *)
  out : Outbuf.t;  (** responses; held until the covering fence releases *)
  mutable last_active : float;
  mutable closing : bool;  (** close once [out] drains *)
  mutable home : int;  (** owning worker; held responses pin the conn here *)
  mutable in_held : bool;  (** already on its home's held list this batch *)
  mutable parked : bool;  (** registered in its home's one-shot watch set *)
}

(* A schedulable task: an accepted fd awaiting adoption, or a connection
   whose socket turned ready. *)
type item = Accept of Unix.file_descr | Conn of conn

type state = Running | Draining | Killed

type worker = {
  idx : int;
  served : int Atomic.t;
  commits : int Atomic.t;  (** group-commit batches this worker retired *)
  depth_hist : Workload.Histogram.t;
      (** batch depth (ops per commit) distribution; recorded as "ns" —
          merge/read after the worker stopped for exact counts *)
}

type t = {
  cfg : config;
  hcfg : Lfds.Ctx.config;
  ctx : Lfds.Ctx.t;
  store_ : Shard_store.t;
  lsock : Unix.file_descr;
  port_ : int;
  state : state Atomic.t;
  workers : worker array;
  sched : item Scheduler.t;
  mutable domains : unit Domain.t list;
  accepted : int Atomic.t;
  tel : Telemetry.t;
  msock : Unix.file_descr option;  (** metrics listener, when enabled *)
  metrics_port_ : int option;
  down : bool ref;  (** shutdown already completed (stop/kill idempotence) *)
  down_lock : Mutex.t;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------- connection I/O ---------- *)

let conn_create cfg fd ~home =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  {
    fd;
    buf = Bytes.create (min (max 256 cfg.read_chunk) (buf_capacity cfg));
    len = 0;
    out = Outbuf.create 256;
    last_active = Unix.gettimeofday ();
    closing = false;
    home;
    in_held = false;
    parked = false;
  }

let out_pending c = Outbuf.length c.out

(* Write as much released output as the socket accepts, straight out of the
   backing buffer (no copy); false = connection is dead. A short or refused
   write is a stall — the peer reads slower than we produce. *)
let try_write tw c =
  let rec go () =
    let n = Outbuf.writable c.out in
    if n = 0 then true
    else
      match Unix.write c.fd (Outbuf.bytes c.out) (Outbuf.start c.out) n with
      | 0 -> true
      | written ->
          Outbuf.consume c.out written;
          Telemetry.bump_n tw Telemetry.c_bytes_written written;
          if written < n then begin
            Telemetry.bump tw Telemetry.c_write_stalls;
            true
          end
          else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          Telemetry.bump tw Telemetry.c_write_stalls;
          true
      | exception Unix.Unix_error (_, _, _) -> false
  in
  let alive = go () in
  if alive then begin
    Telemetry.note_outbuf_hwm tw (Outbuf.hwm c.out);
    Telemetry.on_written tw c.fd ~drained:(Outbuf.writable c.out = 0)
  end;
  alive

(* [String.trim] copies the request, so gate it on length: a quit line is
   tiny, and this predicate runs once per framed request. *)
let is_quit req =
  String.length req <= 8
  && (match String.trim req with "quit" | "QUIT" -> true | _ -> false)

(* ---------- the per-worker request engine ----------

   Framing, protocol dispatch and group-commit batching, shared by both
   runtimes. The open batch covers ops executed deferred on this worker's
   cursor; their responses sit held in the connections on [held] until
   [commit_batch] fences and releases them ([after_release] then lets the
   scheduler runtime flush and re-arm parked connections — the select
   runtime's gathered-write sweep does it by table walk). *)

type engine = {
  drain_requests : conn -> unit;
  service_read : conn -> bool;
  commit_batch : unit -> unit;
  maybe_commit : unit -> unit;
      (** end-of-turn commit, unless a scarce batch may ride the starvation
          window *)
  wait_timeout : unit -> float;
      (** park duration: the starvation deadline when a batch is open *)
}

let make_engine t w proto tw ~after_release =
  let cfg = t.cfg in
  let gc = Lfds.Ctx.group_commit t.ctx ~tid:w.idx in
  let heap = Lfds.Ctx.heap t.ctx in
  let batching = cfg.max_batch > 1 in
  let max_delay = float_of_int cfg.max_delay_us *. 1e-6 in
  let batch_ops = ref 0 in
  let batch_since = ref 0. in
  let held : conn list ref = ref [] in
  let hold c =
    if batching && not c.in_held then begin
      c.in_held <- true;
      held := c :: !held
    end
  in
  let commit_batch () =
    if !batch_ops > 0 then begin
      (* Fence debt the covering fence is about to retire: links awaiting
         their commit clear plus cache lines parked in the cursor. *)
      Telemetry.record_debt tw
        (Lfds.Group_commit.deferred_count gc
        + Nvm.Heap.pending_count heap ~tid:w.idx);
      Kvcache.Protocol.commit proto ~tid:w.idx ~ops:!batch_ops;
      Atomic.incr w.commits;
      Workload.Histogram.record w.depth_hist ~ns:(float_of_int !batch_ops);
      batch_ops := 0
    end;
    Telemetry.on_commit tw;
    (* Every held response is now covered (mutating or not): release. *)
    let covered = !held in
    held := [];
    List.iter
      (fun c ->
        c.in_held <- false;
        Outbuf.release_all c.out)
      covered;
    List.iter after_release covered
  in
  let answer c req =
    let kind = Telemetry.kind_of req in
    Telemetry.on_request tw ~fd:c.fd ~kind;
    if batching then begin
      if !batch_ops = 0 then batch_since := Unix.gettimeofday ();
      let resp = Kvcache.Protocol.handle_deferred proto ~tid:w.idx req in
      Telemetry.on_executed tw;
      if kind = Telemetry.c_cmd_get then Telemetry.note_get_result tw resp;
      Outbuf.add_string c.out resp;
      hold c;
      incr batch_ops;
      if !batch_ops >= cfg.max_batch then commit_batch ()
    end
    else begin
      let resp = Kvcache.Protocol.handle proto ~tid:w.idx req in
      Telemetry.on_executed tw;
      (* Eager path: the per-op fence already ran inside the handler. *)
      Telemetry.on_commit tw;
      if kind = Telemetry.c_cmd_get then Telemetry.note_get_result tw resp;
      Outbuf.add_string c.out resp;
      Outbuf.release_all c.out
    end;
    Atomic.incr w.served
  in
  (* Frame and answer every complete request currently buffered. *)
  let drain_requests c =
    let rec go pos =
      if pos >= c.len then pos
      else begin
        Telemetry.arm tw;
        match Framing.next c.buf ~pos ~len:(c.len - pos) with
        | Framing.Request { req; consumed } ->
            if is_quit req then begin
              Telemetry.bump tw Telemetry.c_quits;
              c.closing <- true;
              pos + consumed
            end
            else begin
              answer c req;
              go (pos + consumed)
            end
        | Framing.Reject { response; consumed } ->
            Telemetry.bump tw Telemetry.c_requests;
            Telemetry.bump tw Telemetry.c_rejects;
            Outbuf.add_string c.out response;
            if batching then hold c else Outbuf.release_all c.out;
            Atomic.incr w.served;
            go (pos + consumed)
        | Framing.Need_more -> pos
        | Framing.Too_long ->
            Telemetry.bump tw Telemetry.c_rejects;
            Outbuf.add_string c.out "CLIENT_ERROR line too long\r\n";
            if batching then hold c else Outbuf.release_all c.out;
            c.closing <- true;
            c.len (* discard the unframeable stream *)
      end
    in
    let consumed = go 0 in
    if consumed > 0 then begin
      if consumed < c.len then Bytes.blit c.buf consumed c.buf 0 (c.len - consumed);
      c.len <- c.len - consumed
    end
  in
  (* One readable event: pull bytes, frame, answer (responses stay held
     until the batch commits; the write happens after). false = close. *)
  let service_read c =
    (* Grow a full buffer toward its frame-capacity ceiling. *)
    if c.len = Bytes.length c.buf && Bytes.length c.buf < buf_capacity cfg then begin
      let nlen = min (buf_capacity cfg) (Bytes.length c.buf * 2) in
      let nb = Bytes.create nlen in
      Bytes.blit c.buf 0 nb 0 c.len;
      c.buf <- nb
    end;
    let room = Bytes.length c.buf - c.len in
    let want = min cfg.read_chunk room in
    if want = 0 then begin
      drain_requests c;
      true
    end
    else
      match Unix.read c.fd c.buf c.len want with
      | 0 -> false (* peer closed *)
      | n ->
          c.len <- c.len + n;
          c.last_active <- Unix.gettimeofday ();
          Telemetry.bump_n tw Telemetry.c_bytes_read n;
          Telemetry.on_read tw;
          drain_requests c;
          true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          true
      | exception Unix.Unix_error (_, _, _) -> false
  in
  let held_any () = !batch_ops > 0 || !held <> [] in
  let maybe_commit () =
    if
      held_any ()
      && (max_delay = 0.
         || !batch_ops = 0
         || Unix.gettimeofday () >= !batch_since +. max_delay)
    then commit_batch ()
  in
  (* With a starved batch held open, wake at its deadline, not later. *)
  let wait_timeout () =
    if !batch_ops > 0 && max_delay > 0. then
      let remaining = !batch_since +. max_delay -. Unix.gettimeofday () in
      max 0.001 (min 0.05 remaining)
    else 0.05
  in
  { drain_requests; service_read; commit_batch; maybe_commit; wait_timeout }

let conn_telemetry_close tw c =
  Telemetry.bump tw Telemetry.c_conns_closed;
  Telemetry.note_outbuf tw ~hwm:(Outbuf.hwm c.out) ~grows:(Outbuf.grows c.out);
  Telemetry.on_conn_gone tw c.fd

(* ---------- scheduler runtime ---------- *)

let worker_sched_loop t w proto =
  let cfg = t.cfg in
  let tw = Telemetry.worker t.tel w.idx in
  let d = Scheduler.dom t.sched w.idx in
  let close_conn c =
    close_quiet c.fd;
    conn_telemetry_close tw c
  in
  let rearm c =
    if c.closing && out_pending c = 0 then close_conn c
    else begin
      c.parked <- true;
      Scheduler.watch d c.fd ~read:(not c.closing)
        ~write:(Outbuf.writable c.out > 0)
        (Conn c)
    end
  in
  (* A parked connection whose held responses just released: flush now and
     refresh its interest set — it will not pass through run_conn. *)
  let after_release c =
    if c.parked then begin
      if not (try_write tw c) then begin
        Scheduler.unwatch d c.fd;
        c.parked <- false;
        close_conn c
      end
      else if c.closing && out_pending c = 0 then begin
        Scheduler.unwatch d c.fd;
        c.parked <- false;
        close_conn c
      end
      else
        Scheduler.watch d c.fd ~read:(not c.closing)
          ~write:(Outbuf.writable c.out > 0)
          (Conn c)
    end
  in
  let eng = make_engine t w proto tw ~after_release in
  let adopt fd =
    let c = conn_create cfg fd ~home:w.idx in
    Telemetry.bump tw Telemetry.c_conns_adopted;
    rearm c
  in
  let run_conn c =
    if Outbuf.held c.out > 0 && c.home <> w.idx then
      (* Pinned: its held responses await its home domain's covering fence —
         forward instead of running, so release order stays fence-correct. *)
      Scheduler.inject t.sched ~dom:c.home (Conn c)
    else begin
      if c.home <> w.idx then begin
        c.home <- w.idx;
        Telemetry.bump tw Telemetry.c_sched_migrations
      end;
      if not (try_write tw c) then close_conn c
      else if not (eng.service_read c) then close_conn c
      else rearm c
    end
  in
  let run_item = function Conn c -> run_conn c | Accept fd -> adopt fd in
  (* Pull every resident connection into the open: injected tasks, queued
     tasks, parked watches. Used by the shutdown paths. *)
  let residents () =
    let mine = ref [] in
    let take = function
      | Accept fd -> close_quiet fd
      | Conn c -> mine := c :: !mine
    in
    ignore (Scheduler.drain_injector d take);
    let rec drain () =
      match Scheduler.pop d with
      | Some it ->
          take it;
          drain ()
      | None -> ()
    in
    drain ();
    Scheduler.iter_watches d (fun _ it -> take it);
    !mine
  in
  let scan_period = max 0.5 (cfg.idle_timeout /. 4.) in
  let last_scan = ref (Unix.gettimeofday ()) in
  let running = ref true in
  while !running do
    match Atomic.get t.state with
    | Draining ->
        (* Answer what is already buffered, commit, flush, and leave. *)
        let mine = residents () in
        List.iter eng.drain_requests mine;
        eng.commit_batch ();
        List.iter
          (fun c ->
            ignore (try_write tw c);
            close_quiet c.fd)
          mine;
        running := false
    | Killed ->
        List.iter (fun c -> close_quiet c.fd) (residents ());
        running := false
    | Running ->
        let injected = Scheduler.drain_injector d run_item in
        if injected > 0 then Telemetry.bump_n tw Telemetry.c_sched_injected injected;
        (* Drain the run queue, then raid the peers: everything runnable
           this turn lands in one covering batch. *)
        let turning = ref true in
        while !turning do
          match Scheduler.pop d with
          | Some it -> run_item it
          | None -> (
              match Scheduler.try_steal t.sched d with
              | Some it, fails ->
                  Telemetry.bump tw Telemetry.c_sched_steals;
                  if fails > 0 then
                    Telemetry.bump_n tw Telemetry.c_sched_steal_fails fails;
                  run_item it
              | None, fails ->
                  if fails > 0 then
                    Telemetry.bump_n tw Telemetry.c_sched_steal_fails fails;
                  turning := false)
        done;
        eng.maybe_commit ();
        Telemetry.set_run_queue_depth tw (Scheduler.depth d);
        Telemetry.set_open_conns tw (Scheduler.watched d + Scheduler.depth d);
        Scheduler.wait d ~timeout_s:(eng.wait_timeout ())
          ~on_ready:(fun it ~readable:_ ~writable:_ ->
            (match it with Conn c -> c.parked <- false | Accept _ -> ());
            Scheduler.push d it);
        if cfg.idle_timeout > 0. then begin
          let now = Unix.gettimeofday () in
          if now -. !last_scan > scan_period then begin
            last_scan := now;
            let stale = ref [] in
            Scheduler.iter_watches d (fun _ it ->
                match it with
                | Conn c when now -. c.last_active > cfg.idle_timeout ->
                    stale := c :: !stale
                | _ -> ());
            List.iter
              (fun c ->
                Scheduler.unwatch d c.fd;
                c.parked <- false;
                Telemetry.bump tw Telemetry.c_conns_idle_closed;
                close_conn c)
              !stale;
            Telemetry.set_open_conns tw (Scheduler.watched d + Scheduler.depth d)
          end
        end
  done

(* ---------- select runtime (legacy baseline) ---------- *)

let worker_select_loop t w proto =
  let cfg = t.cfg in
  let tw = Telemetry.worker t.tel w.idx in
  let d = Scheduler.dom t.sched w.idx in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let eng = make_engine t w proto tw ~after_release:(fun _ -> ()) in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    close_quiet c.fd;
    conn_telemetry_close tw c
  in
  let running = ref true in
  while !running do
    (match Atomic.get t.state with
    | Running -> ()
    | Draining ->
        (* Answer what is already buffered, commit, flush, and leave. *)
        ignore
          (Scheduler.drain_injector d (function
            | Accept fd -> close_quiet fd
            | Conn c -> close_quiet c.fd));
        Hashtbl.iter (fun _ c -> eng.drain_requests c) conns;
        eng.commit_batch ();
        Hashtbl.iter (fun _ c -> ignore (try_write tw c)) conns;
        Hashtbl.iter (fun _ c -> close_quiet c.fd) conns;
        Hashtbl.reset conns;
        running := false
    | Killed ->
        Hashtbl.iter (fun _ c -> close_quiet c.fd) conns;
        Hashtbl.reset conns;
        running := false);
    if !running then begin
      let injected =
        Scheduler.drain_injector d (function
          | Accept fd ->
              let c = conn_create cfg fd ~home:w.idx in
              Telemetry.bump tw Telemetry.c_conns_adopted;
              Hashtbl.replace conns fd c
          | Conn c ->
              (* Unreachable under this runtime; adopt defensively. *)
              Hashtbl.replace conns c.fd c)
      in
      if injected > 0 then Telemetry.bump_n tw Telemetry.c_sched_injected injected;
      Telemetry.set_open_conns tw (Hashtbl.length conns);
      let rfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      let wfds =
        Hashtbl.fold
          (fun fd c acc -> if Outbuf.writable c.out > 0 then fd :: acc else acc)
          conns []
      in
      let readable, writable, _ =
        try Unix.select rfds wfds [] (eng.wait_timeout ())
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c -> if not (try_write tw c) then close_conn c)
        writable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c -> if not (eng.service_read c) then close_conn c)
        readable;
      (* Wakeup end: the whole ready batch has executed. Commit and release
         unless a small batch may still ride the starvation window. *)
      eng.maybe_commit ();
      (* Gathered write: each connection's released span in one write. *)
      let dead =
        Hashtbl.fold
          (fun _ c acc ->
            if Outbuf.writable c.out > 0 && not (try_write tw c) then c :: acc
            else if c.closing && out_pending c = 0 then c :: acc
            else acc)
          conns []
      in
      List.iter close_conn dead;
      if cfg.idle_timeout > 0. then begin
        let now = Unix.gettimeofday () in
        let stale =
          Hashtbl.fold
            (fun _ c acc ->
              if now -. c.last_active > cfg.idle_timeout then c :: acc else acc)
            conns []
        in
        List.iter
          (fun c ->
            Telemetry.bump tw Telemetry.c_conns_idle_closed;
            close_conn c)
          stale
      end;
      Telemetry.set_open_conns tw (Hashtbl.length conns)
    end
  done

let worker_loop t w proto =
  match t.cfg.runtime with
  | Sched -> worker_sched_loop t w proto
  | Select -> worker_select_loop t w proto

(* ---------- acceptor ---------- *)

(* Fd numbers at or above FD_SETSIZE would silently corrupt a select set;
   the select runtime refuses them with a one-line notice instead. *)
let select_fd_guard = 1000

let acceptor_loop t =
  let next = ref 0 in
  let nw = Array.length t.workers in
  let warned = ref false in
  while Atomic.get t.state = Running do
    match Unix.select [ t.lsock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ ->
        (* Drain the backlog in one wakeup: one accept per select round
           caps the accept rate at ~20 conns/s, useless at C10K. *)
        let more = ref true in
        let burst = ref 0 in
        while !more && !burst < 1024 do
          incr burst;
          match Unix.accept t.lsock with
          | fd, _ ->
              if
                t.cfg.runtime = Select
                && Sys_poll.int_of_fd fd >= select_fd_guard
              then begin
                if not !warned then begin
                  warned := true;
                  Printf.eprintf
                    "nvserve: select runtime refuses fd %d >= %d \
                     (FD_SETSIZE); use the sched runtime for more \
                     connections\n\
                     %!"
                    (Sys_poll.int_of_fd fd) select_fd_guard
                end;
                close_quiet fd
              end
              else begin
                Scheduler.inject t.sched ~dom:(!next mod nw) (Accept fd);
                incr next;
                Atomic.incr t.accepted
              end
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              more := false
        done
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---------- aggregate views ---------- *)

let requests_served t =
  Array.fold_left (fun acc w -> acc + Atomic.get w.served) 0 t.workers

let connections_accepted t = Atomic.get t.accepted

let group_commits t =
  Array.fold_left (fun acc w -> acc + Atomic.get w.commits) 0 t.workers

let batch_depth_hist t =
  let h = Workload.Histogram.create () in
  Array.iter (fun w -> Workload.Histogram.merge ~into:h w.depth_hist) t.workers;
  h

let telemetry t = t.tel
let metrics_port t = t.metrics_port_

(* ---------- stats exposition ---------- *)

let uptime_s t = Unix.gettimeofday () -. Telemetry.start_time t.tel

(* memcached-standard keys appended to the plain [stats] report, so stock
   monitoring that speaks memcached reads NVServe unmodified. *)
let basic_stats t =
  let c = Telemetry.counters t.tel in
  let i k id = (k, string_of_int c.(id)) in
  [
    ("pid", string_of_int (Unix.getpid ()));
    ("threads", string_of_int (Array.length t.workers));
    ("curr_connections", string_of_int (Telemetry.open_conns t.tel));
    ("total_connections", string_of_int (Atomic.get t.accepted));
    i "cmd_get" Telemetry.c_cmd_get;
    i "cmd_set" Telemetry.c_cmd_set;
    i "get_hits" Telemetry.c_get_hits;
    i "get_misses" Telemetry.c_get_misses;
    i "bytes_read" Telemetry.c_bytes_read;
    i "bytes_written" Telemetry.c_bytes_written;
  ]

(* The [stats nvlf] schema. Key set and order are part of the wire contract
   (CI diffs a scrape against a committed baseline; [nvlf watch] diffs
   successive scrapes) — extend by appending to the relevant group, never by
   renaming or reordering. *)
let nvlf_stats t ~tid =
  let c = Telemetry.counters t.tel in
  let tc k id = (k, string_of_int c.(id)) in
  let i k v = (k, string_of_int v) in
  let f k v = (k, Printf.sprintf "%.3f" v) in
  let rate k num den =
    (k, Printf.sprintf "%.4f" (if den = 0 then 0. else float_of_int num /. float_of_int den))
  in
  let us k ns = (k, Printf.sprintf "%.1f" (ns /. 1e3)) in
  let st = Nvm.Heap.aggregate_stats (Lfds.Ctx.heap t.ctx) in
  let served = requests_served t in
  let depth = batch_depth_hist t in
  let pct h p = Workload.Histogram.percentile h p in
  let req = Telemetry.req_hist t.tel in
  let debt = Telemetry.debt_hist t.tel in
  let items = Shard_store.items_per_shard t.store_ in
  let bytes = Shard_store.bytes_per_shard t.store_ ~tid in
  let shard_kvs =
    List.concat
      (List.init (Array.length items) (fun s ->
           [
             i (Printf.sprintf "shard%d_items" s) items.(s);
             i (Printf.sprintf "shard%d_bytes" s) bytes.(s);
           ]))
  in
  let stage_kvs =
    List.init Telemetry.n_stages (fun s ->
        us
          ("stage_" ^ Telemetry.stage_names.(s) ^ "_us")
          (Workload.Histogram.mean (Telemetry.stage_hist t.tel s)))
  in
  [
    ("mode", Lfds.Persist_mode.to_string t.cfg.mode);
    i "workers" (Array.length t.workers);
    i "shards" (Shard_store.nshards t.store_);
    i "port" t.port_;
    i "max_batch" t.cfg.max_batch;
    i "max_delay_us" t.cfg.max_delay_us;
    i "sample_every" (Telemetry.sample_every t.tel);
    f "uptime_s" (uptime_s t);
    i "conns_accepted" (Atomic.get t.accepted);
    tc "conns_adopted" Telemetry.c_conns_adopted;
    tc "conns_closed" Telemetry.c_conns_closed;
    tc "conns_idle_closed" Telemetry.c_conns_idle_closed;
    i "open_conns" (Telemetry.open_conns t.tel);
    tc "requests" Telemetry.c_requests;
    i "requests_served" served;
    tc "rejects" Telemetry.c_rejects;
    tc "quits" Telemetry.c_quits;
    tc "bytes_read" Telemetry.c_bytes_read;
    tc "bytes_written" Telemetry.c_bytes_written;
    tc "write_stalls" Telemetry.c_write_stalls;
    tc "outbuf_grows" Telemetry.c_outbuf_grows;
    i "outbuf_hwm" (Telemetry.outbuf_hwm t.tel);
    tc "cmd_get" Telemetry.c_cmd_get;
    tc "cmd_set" Telemetry.c_cmd_set;
    tc "cmd_delete" Telemetry.c_cmd_delete;
    tc "cmd_incr" Telemetry.c_cmd_incr;
    tc "cmd_stats" Telemetry.c_cmd_stats;
    tc "cmd_other" Telemetry.c_cmd_other;
    tc "get_hits" Telemetry.c_get_hits;
    tc "get_misses" Telemetry.c_get_misses;
    rate "get_hit_rate" c.(Telemetry.c_get_hits)
      (c.(Telemetry.c_get_hits) + c.(Telemetry.c_get_misses));
    i "fences" st.Nvm.Pstats.fences;
    i "write_backs" st.Nvm.Pstats.write_backs;
    i "sync_batches" st.Nvm.Pstats.sync_batches;
    i "lines_drained" st.Nvm.Pstats.lines_drained;
    i "allocs" st.Nvm.Pstats.allocs;
    i "frees" st.Nvm.Pstats.frees;
    i "epoch_stalls" st.Nvm.Pstats.epoch_stalls;
    i "group_commits" st.Nvm.Pstats.group_commits;
    i "group_ops" st.Nvm.Pstats.group_ops;
    i "deferred_links" st.Nvm.Pstats.deferred_links;
    i "lc_adds" st.Nvm.Pstats.lc_adds;
    i "lc_fails" st.Nvm.Pstats.lc_fails;
    i "lc_flushes" st.Nvm.Pstats.lc_flushes;
    rate "lc_hit_rate" st.Nvm.Pstats.lc_adds
      (st.Nvm.Pstats.lc_adds + st.Nvm.Pstats.lc_fails);
    rate "fences_per_req" st.Nvm.Pstats.fences served;
    rate "wbs_per_req" st.Nvm.Pstats.write_backs served;
    rate "ops_per_commit" st.Nvm.Pstats.group_ops st.Nvm.Pstats.group_commits;
    i "batch_depth_p50" (int_of_float (pct depth 50.));
    i "batch_depth_p99" (int_of_float (pct depth 99.));
    i "batch_depth_max" (int_of_float (Workload.Histogram.max_ns depth));
    i "curr_items" (Shard_store.count t.store_);
  ]
  @ shard_kvs
  @ [
      tc "sampled_requests" Telemetry.c_sampled;
      i "fence_debt_p50" (int_of_float (pct debt 50.));
      i "fence_debt_p99" (int_of_float (pct debt 99.));
      us "req_p50_us" (pct req 50.);
      us "req_p99_us" (pct req 99.);
      us "req_p999_us" (pct req 99.9);
      us "req_max_us" (Workload.Histogram.max_ns req);
    ]
  @ stage_kvs
  @ [
      (* Scheduler-runtime group (PR 10) — appended, per the contract. *)
      ("runtime", runtime_to_string t.cfg.runtime);
      tc "sched_steals" Telemetry.c_sched_steals;
      tc "sched_steal_fails" Telemetry.c_sched_steal_fails;
      tc "sched_migrations" Telemetry.c_sched_migrations;
      tc "sched_injected" Telemetry.c_sched_injected;
      i "run_queue_depth" (Telemetry.run_queue_depth t.tel);
    ]

let settings_stats t =
  [
    ("port", string_of_int t.port_);
    ( "metrics_port",
      match t.metrics_port_ with None -> "off" | Some p -> string_of_int p );
    ("nworkers", string_of_int t.cfg.nworkers);
    ("nbuckets", string_of_int t.cfg.nbuckets);
    ("capacity", string_of_int t.cfg.capacity);
    ("mode", Lfds.Persist_mode.to_string t.cfg.mode);
    ("idle_timeout", Printf.sprintf "%g" t.cfg.idle_timeout);
    ("read_chunk", string_of_int t.cfg.read_chunk);
    ("max_batch", string_of_int t.cfg.max_batch);
    ("max_delay_us", string_of_int t.cfg.max_delay_us);
    ("sample_every", string_of_int t.cfg.sample_every);
    ("runtime", runtime_to_string t.cfg.runtime);
  ]

let stats_ext t ~tid arg =
  match arg with
  | None -> Some (basic_stats t)
  | Some "nvlf" -> Some (nvlf_stats t ~tid)
  | Some "settings" -> Some (settings_stats t)
  | Some _ -> None (* unknown argument: Protocol answers ERROR *)

(* ---------- Prometheus text exposition ---------- *)

(* Every numeric [stats nvlf] key, prefixed [nvlf_]; the non-numeric mode
   rides as a label on [nvlf_info]. One-shot HTTP answer, so both
   [curl http://127.0.0.1:PORT/metrics] and netcat work. *)
let prometheus_body t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "# HELP nvlf_info NVServe configuration\n";
  Buffer.add_string b "# TYPE nvlf_info gauge\n";
  Buffer.add_string b
    (Printf.sprintf "nvlf_info{mode=\"%s\",workers=\"%d\",runtime=\"%s\"} 1\n"
       (Lfds.Persist_mode.to_string t.cfg.mode)
       (Array.length t.workers)
       (runtime_to_string t.cfg.runtime));
  List.iter
    (fun (k, v) ->
      match float_of_string_opt v with
      | None -> ()
      | Some _ ->
          Buffer.add_string b "nvlf_";
          Buffer.add_string b k;
          Buffer.add_char b ' ';
          Buffer.add_string b v;
          Buffer.add_char b '\n')
    (nvlf_stats t ~tid:0);
  Buffer.contents b

let metrics_loop t msock =
  let buf = Bytes.create 1024 in
  while Atomic.get t.state = Running do
    match Unix.select [ msock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept msock with
        | fd, _ ->
            (* One-shot exchange: drain whatever request line arrived (with
               a short timeout, so a silent peer cannot wedge the scraper),
               answer, close. *)
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5
             with Unix.Unix_error _ -> ());
            (try ignore (Unix.read fd buf 0 (Bytes.length buf))
             with Unix.Unix_error _ -> ());
            let body = prometheus_body t in
            let resp =
              Printf.sprintf
                "HTTP/1.0 200 OK\r\n\
                 Content-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: %d\r\n\
                 Connection: close\r\n\r\n%s"
                (String.length body) body
            in
            (try ignore (Unix.write_substring fd resp 0 (String.length resp))
             with Unix.Unix_error _ -> ());
            close_quiet fd
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  close_quiet msock

(* ---------- lifecycle ---------- *)

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let start_with cfg ~heap_cfg ctx store_ =
  ignore_sigpipe ();
  (* C10K housekeeping: lift the soft fd limit toward the hard cap (best
     effort — a refusal just means fewer concurrent connections). *)
  if cfg.runtime = Sched then
    ignore (Sys_poll.ensure_fd_capacity (min (Sys_poll.fd_limit_max ()) 65536));
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port));
  Unix.listen lsock 1024;
  Unix.set_nonblock lsock;
  let port_ =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let workers =
    Array.init (max 1 cfg.nworkers) (fun idx ->
        {
          idx;
          served = Atomic.make 0;
          commits = Atomic.make 0;
          depth_hist = Workload.Histogram.create ();
        })
  in
  let tel =
    Telemetry.create ~nworkers:(max 1 cfg.nworkers) ~sample_every:cfg.sample_every
  in
  let msock, metrics_port_ =
    match cfg.metrics_port with
    | None -> (None, None)
    | Some p ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
        Unix.listen s 16;
        Unix.set_nonblock s;
        let p' =
          match Unix.getsockname s with Unix.ADDR_INET (_, q) -> q | _ -> p
        in
        (Some s, Some p')
  in
  let t =
    {
      cfg;
      hcfg = heap_cfg;
      ctx;
      store_;
      lsock;
      port_;
      state = Atomic.make Running;
      workers;
      sched = Scheduler.create ~ndomains:(max 1 cfg.nworkers);
      domains = [];
      accepted = Atomic.make 0;
      tel;
      msock;
      metrics_port_;
      down = ref false;
      down_lock = Mutex.create ();
    }
  in
  let proto =
    Kvcache.Protocol.create ~stats_ext:(stats_ext t) (Shard_store.ops store_)
  in
  let worker_domains =
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w proto)) workers)
  in
  let metrics_domains =
    match msock with
    | None -> []
    | Some s -> [ Domain.spawn (fun () -> metrics_loop t s) ]
  in
  let acceptor = Domain.spawn (fun () -> acceptor_loop t) in
  t.domains <- (acceptor :: metrics_domains) @ worker_domains;
  t

let start cfg =
  let hcfg = heap_config cfg in
  let ctx = Lfds.Ctx.create hcfg in
  let store_ =
    Shard_store.create ctx ~nshards:(max 1 cfg.nworkers) ~nbuckets:cfg.nbuckets
      ~capacity:cfg.capacity
  in
  start_with cfg ~heap_cfg:hcfg ctx store_

let port t = t.port_
let config t = t.cfg
let heap_cfg t = t.hcfg
let ctx t = t.ctx
let store t = t.store_

let shutdown t target ~persist =
  Mutex.lock t.down_lock;
  let first = not !(t.down) in
  if first then t.down := true;
  Mutex.unlock t.down_lock;
  if first then begin
    Atomic.set t.state target;
    Scheduler.wake_all t.sched;
    List.iter Domain.join t.domains;
    t.domains <- [];
    close_quiet t.lsock;
    (* Tasks injected during the final worker turns (an accept racing the
       state flip, a forward crossing a drained injector): close their fds
       so nothing leaks. *)
    for i = 0 to Scheduler.ndomains t.sched - 1 do
      ignore
        (Scheduler.drain_injector (Scheduler.dom t.sched i) (function
          | Accept fd -> close_quiet fd
          | Conn c -> close_quiet c.fd))
    done;
    Scheduler.close t.sched;
    if persist then begin
      (match Lfds.Ctx.link_cache t.ctx with
      | Some lc -> Lfds.Link_cache.flush_all lc ~tid:0
      | None -> ());
      Nvm.Heap.flush_all (Lfds.Ctx.heap t.ctx) ~tid:0
    end
  end

let stop t = shutdown t Draining ~persist:true
let kill t = shutdown t Killed ~persist:false
