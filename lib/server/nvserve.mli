(** NVServe: a TCP front end for NV-Memcached.

    An acceptor domain round-robins accepted loopback connections into
    [nworkers] worker domains. Each worker owns one {!Shard_store} shard and
    one heap cursor ([tid] = worker index), frames requests incrementally
    ({!Framing}), and answers on its own cursor. Idle connections are closed
    after [idle_timeout].

    {b Scheduler runtime} ([runtime = Sched], the default): connections are
    resumable tasks on {!Scheduler}'s per-domain run queues. The acceptor
    injects accepted fds into per-domain injectors; each worker turn drains
    its injector, runs every ready task in its deque, steals from peers'
    deques when its own runs dry, then parks in the scheduler's
    poll(2)-backed waiter with every resident connection registered as a
    one-shot fd watch. Thousands of mostly-idle connections therefore cost
    one pollfd each, hot connections migrate toward idle domains, and one
    group-commit batch covers {e everything} a domain ran in a turn. A
    connection holding unreleased (pre-fence) responses is pinned to its
    home domain — a thief forwards it back instead of running it, so held
    bytes are only ever released by the fence of the cursor that executed
    them.

    {b Select runtime} ([runtime = Select]): the pre-scheduler per-worker
    [Unix.select] loop, kept as the measurable baseline. [select] cannot
    represent fds >= FD_SETSIZE (1024); this runtime refuses such
    connections at accept rather than corrupting the fd set.

    {b Group commit.} With [max_batch > 1] (the default) a worker executes
    every complete pipelined request of a wakeup with the persistence fence
    {e deferred} ({!Kvcache.Protocol.handle_deferred}), holds the responses
    in each connection's {!Outbuf}, issues {e one} covering fence for the
    whole batch ({!Kvcache.Protocol.commit}), and only then releases the
    responses — each connection's span leaves in one gathered write. Acked
    mutations are still durable before their replies hit the wire, so the
    crash drill's strict audit is unchanged while fences-per-request drops
    by the batch depth. [max_batch] caps the ops under one fence (the batch
    commits mid-wakeup when full); [max_delay_us] lets an under-filled batch
    ride across wakeups until that many microseconds have passed since its
    oldest op (0 = commit at every wakeup end — no added latency).
    [max_batch = 1] disables deferral entirely: every request takes the
    eager {!Kvcache.Protocol.handle} path, the honest unbatched baseline.
    Under the scheduler runtime a "wakeup" is a worker turn — injector
    drain, run-queue drain and steals included — so batches form across
    every runnable connection a domain holds, not one fd set's worth.

    Two ways down: {!stop} is the graceful path — workers answer what is
    already buffered, flush their write buffers, close, and the store is
    persisted (link cache flushed, every dirty line written back) before
    returning; {!kill} abandons connections without persisting anything,
    leaving the heap exactly as a power failure would find it — the crash
    drill's entry point ({!Drill}). *)

(** Connection-multiplexing runtime: [Sched] is the work-stealing scheduler
    over poll(2); [Select] the legacy per-worker select loop (capped below
    FD_SETSIZE). *)
type runtime = Sched | Select

val runtime_to_string : runtime -> string

(** ["sched"] or ["select"]. *)
val runtime_of_string : string -> runtime option

type config = {
  port : int;  (** 0 = kernel-assigned ephemeral port (see {!port}) *)
  nworkers : int;  (** worker domains = shards = heap cursors *)
  nbuckets : int;  (** hash buckets, store total *)
  capacity : int;  (** LRU capacity in items, store total *)
  mode : Lfds.Persist_mode.t;
      (** [Link_persist] acknowledges only durable writes; [Link_cache]
          batches durability (acks are durable up to the last flush);
          [Volatile] is the memcached-clht baseline *)
  latency : Nvm.Latency_model.t;  (** injected NVRAM latency *)
  idle_timeout : float;  (** seconds before an idle connection closes; 0 = never *)
  read_chunk : int;  (** bytes read per readable event *)
  max_batch : int;
      (** max ops under one covering fence; 1 = no group commit (eager
          per-op fences) *)
  max_delay_us : int;
      (** starvation bound: microseconds an under-filled batch may be held
          open across wakeups before its fence is forced (0 = commit at
          every wakeup end) *)
  metrics_port : int option;
      (** serve a Prometheus-style text exposition of the [stats nvlf]
          counters on this loopback port ([Some 0] = ephemeral, resolved by
          {!metrics_port}); [None] = no metrics listener *)
  sample_every : int;
      (** trace every Nth request per worker through the
          queue/parse/execute/fence/respond stages ({!Telemetry}); [0]
          disables the sampler (counters stay live) *)
  runtime : runtime;  (** connection-multiplexing runtime (see above) *)
}

(** 4 workers, 4096 buckets, 100k items, link-and-persist, no injected
    latency, 60 s idle timeout, ephemeral port, group commit up to 64 ops
    with no cross-wakeup holding, no metrics listener, sampler off,
    scheduler runtime. *)
val default_config : unit -> config

(** Heap/context configuration a server built from [config] uses — what
    {!Lfds.Ctx.recover} needs to re-attach the crashed heap. *)
val heap_config : config -> Lfds.Ctx.config

type t

(** Create a fresh store and serve it. Binds 127.0.0.1:[port], spawns the
    acceptor and workers, and returns once the socket is listening. *)
val start : config -> t

(** Serve an existing store — the drill's restart path: same socket setup
    and worker spawn, no store creation. [heap_cfg] must be the
    configuration the context was created or recovered with. *)
val start_with : config -> heap_cfg:Lfds.Ctx.config -> Lfds.Ctx.t -> Shard_store.t -> t

(** The port actually bound (resolves [port = 0]). *)
val port : t -> int

val config : t -> config
val heap_cfg : t -> Lfds.Ctx.config
val ctx : t -> Lfds.Ctx.t
val store : t -> Shard_store.t

(** Requests answered so far, summed over workers (monotonic, read-racy). *)
val requests_served : t -> int

(** Connections the acceptor has handed to workers. *)
val connections_accepted : t -> int

(** Group-commit batches retired so far, summed over workers (monotonic,
    read-racy). One covering fence each. *)
val group_commits : t -> int

(** The server's telemetry plane: live counters, gauges, stage histograms
    and the sampled-request ring. Reads are racy-but-safe from any domain. *)
val telemetry : t -> Telemetry.t

(** The bound metrics-exposition port, when [config.metrics_port] asked for
    one (resolves [Some 0]). *)
val metrics_port : t -> int option

(** Merged batch-depth distribution: one sample per retired batch, value =
    ops it covered (recorded on the histogram's ns axis). Percentiles are
    exact to bucket resolution (~8%). Read after {!stop}/{!kill} for a
    settled view; mid-run reads are racy but safe. *)
val batch_depth_hist : t -> Workload.Histogram.t

(** Graceful shutdown: drain buffered requests, flush responses, close
    connections and the listening socket, then persist the store (link
    cache flushed, all dirty lines written back). Idempotent. *)
val stop : t -> unit

(** Abrupt shutdown: close everything {e without} persisting — the heap is
    left as a power failure would find it, ready for
    [Nvm.Heap.crash]. Idempotent. *)
val kill : t -> unit
