(** NVServe: a TCP front end for NV-Memcached.

    An acceptor domain hands accepted loopback connections round-robin to
    [nworkers] worker domains. Each worker owns one {!Shard_store} shard and
    one heap cursor ([tid] = worker index), multiplexes its connections with
    [select], frames requests incrementally ({!Framing}), answers through
    {!Kvcache.Protocol.handle}, and batches pipelined responses into one
    write per readable chunk. Idle connections are closed after
    [idle_timeout].

    Two ways down: {!stop} is the graceful path — workers answer what is
    already buffered, flush their write buffers, close, and the store is
    persisted (link cache flushed, every dirty line written back) before
    returning; {!kill} abandons connections without persisting anything,
    leaving the heap exactly as a power failure would find it — the crash
    drill's entry point ({!Drill}). *)

type config = {
  port : int;  (** 0 = kernel-assigned ephemeral port (see {!port}) *)
  nworkers : int;  (** worker domains = shards = heap cursors *)
  nbuckets : int;  (** hash buckets, store total *)
  capacity : int;  (** LRU capacity in items, store total *)
  mode : Lfds.Persist_mode.t;
      (** [Link_persist] acknowledges only durable writes; [Link_cache]
          batches durability (acks are durable up to the last flush);
          [Volatile] is the memcached-clht baseline *)
  latency : Nvm.Latency_model.t;  (** injected NVRAM latency *)
  idle_timeout : float;  (** seconds before an idle connection closes; 0 = never *)
  read_chunk : int;  (** bytes read per readable event *)
}

(** 4 workers, 4096 buckets, 100k items, link-and-persist, no injected
    latency, 60 s idle timeout, ephemeral port. *)
val default_config : unit -> config

(** Heap/context configuration a server built from [config] uses — what
    {!Lfds.Ctx.recover} needs to re-attach the crashed heap. *)
val heap_config : config -> Lfds.Ctx.config

type t

(** Create a fresh store and serve it. Binds 127.0.0.1:[port], spawns the
    acceptor and workers, and returns once the socket is listening. *)
val start : config -> t

(** Serve an existing store — the drill's restart path: same socket setup
    and worker spawn, no store creation. [heap_cfg] must be the
    configuration the context was created or recovered with. *)
val start_with : config -> heap_cfg:Lfds.Ctx.config -> Lfds.Ctx.t -> Shard_store.t -> t

(** The port actually bound (resolves [port = 0]). *)
val port : t -> int

val config : t -> config
val heap_cfg : t -> Lfds.Ctx.config
val ctx : t -> Lfds.Ctx.t
val store : t -> Shard_store.t

(** Requests answered so far, summed over workers (monotonic, read-racy). *)
val requests_served : t -> int

(** Connections the acceptor has handed to workers. *)
val connections_accepted : t -> int

(** Graceful shutdown: drain buffered requests, flush responses, close
    connections and the listening socket, then persist the store (link
    cache flushed, all dirty lines written back). Idempotent. *)
val stop : t -> unit

(** Abrupt shutdown: close everything {e without} persisting — the heap is
    left as a power failure would find it, ready for
    [Nvm.Heap.crash]. Idempotent. *)
val kill : t -> unit
