(** Hash-partitioned NV-Memcached shards over one shared durable heap.

    NVServe gives each worker domain its own shard — an independent
    {!Kvcache.Nv_memcached} instance (own durable hash table, own volatile
    LRU, own slot mutex) — all carved from a single {!Lfds.Ctx} heap. A key
    belongs to exactly one shard ({!shard_of}), so writes to different
    shards never contend on a shard mutex, while the lock-free reads and the
    per-thread heap cursors keep the hot path contention-local regardless of
    which worker executes the request.

    Shards share the allocator and the active page table, so crash recovery
    attaches every shard (creation order = attach order, the layout-carving
    discipline of {!Lfds.Ctx}) and then runs {e one} combined leak sweep
    over the union of the shards' reachable sets — per-shard sweeps would
    free each other's live items. *)

type t

(** [create ctx ~nshards ~nbuckets ~capacity] carves [nshards] fresh shards.
    [nbuckets] and [capacity] are store totals, split evenly; per-shard LRU
    eviction therefore approximates a global LRU only as well as the hash
    spreads keys. *)
val create : Lfds.Ctx.t -> nshards:int -> nbuckets:int -> capacity:int -> t

(** Re-attach to a crashed (or cleanly shut down) heap: every shard's table
    consistency is restored and its volatile LRU and count rebuilt, in
    creation order. No leak sweep — see {!recover}. *)
val attach : Lfds.Ctx.t -> nshards:int -> nbuckets:int -> capacity:int -> t

(** [attach] plus the combined leak reclamation pass:
    {!Lfds.Recovery.sweep_traversal_parallel} over the union of all shards'
    reachable nodes, partitioned across [nworkers] domains. Returns the
    store and the number of leaked nodes freed.

    Under link-free mode the links were never persisted, so this instead
    resets every shard and rebuilds from the slab scan: slots whose
    validity word is [Link_free.valid_item] are re-admitted to the shard
    their stored hash selects; every other allocated slot (hash nodes,
    retracted items, crash-mid-overwrite duplicates) is freed. *)
val recover :
  Lfds.Ctx.t ->
  nshards:int ->
  nbuckets:int ->
  capacity:int ->
  active_pages:int list ->
  nworkers:int ->
  t * int

val nshards : t -> int

(** Owning shard index of a key (stable across restarts: derived from the
    same durable key hash the tables index). *)
val shard_of : t -> string -> int

(** Total items across shards. *)
val count : t -> int

(** Live item count of each shard, indexed by shard (stats scrape). *)
val items_per_shard : t -> int array

(** Stored payload bytes of each shard (key + value of live items): a racy
    stats walk on the calling worker's [tid]; mutation-torn items are
    skipped, not raised on. *)
val bytes_per_shard : t -> tid:int -> int array

(** Every reachable node address across all shards (hash nodes and the items
    they point to) — the combined sweep's traversal. *)
val iter_reachable : t -> (int -> unit) -> unit

(** Allocated-but-unreachable nodes over [active_pages] considering all
    shards — zero after {!recover} (drill assertion). *)
val leak_count : t -> active_pages:int list -> int

(** The store as one cache interface: each operation is dispatched to the
    key's shard and runs on the calling worker's own cursor ([tid]). *)
val ops : t -> Kvcache.Cache_intf.ops
