(** Crash-recovery drill (see the interface): serve, kill mid-traffic,
    crash the heap, recover, restart, audit every acknowledged mutation. *)

type config = {
  nworkers : int;
  nbuckets : int;
  capacity : int;
  mode : Lfds.Persist_mode.t;
  nconns : int;
  duration : float;
  nkeys : int;
  pipeline : int;
  seed : int;
  eviction_probability : float;
  torn_op : bool;
  max_batch : int;
  max_delay_us : int;
}

let default_config () =
  {
    nworkers = 4;
    nbuckets = 2048;
    capacity = 20_000;
    mode = Lfds.Persist_mode.Link_persist;
    nconns = 4;
    duration = 1.0;
    nkeys = 2_000;
    pipeline = 8;
    seed = 42;
    eviction_probability = 0.5;
    torn_op = true;
    max_batch = (Nvserve.default_config ()).Nvserve.max_batch;
    max_delay_us = (Nvserve.default_config ()).Nvserve.max_delay_us;
  }

type report = {
  load : Loadgen.report;
  acked_keys : int;
  inflight_keys : int;
  fences : int;  (** heap fences issued up to the kill *)
  fences_per_req : float;  (** fences / requests served before the kill *)
  torn : bool;
  ctx_recover_s : float;
  sweep_s : float;
  recovery_s : float;
  timeline : Nvm.Timeline.event list;
      (** crash + recovery phase journal; depth-0 recovery phases sum to
          [recovery_s] *)
  freed_leaks : int;
  residual_leaks : int;
  checked : int;
  exempt : int;
  lost : int;
  post_ok : bool;
  strict : bool;
  ok : bool;
}

let run cfg =
  if not (Lfds.Persist_mode.is_durable cfg.mode) then
    invalid_arg "Drill.run: volatile mode has nothing to recover";
  let scfg =
    {
      (Nvserve.default_config ()) with
      Nvserve.nworkers = cfg.nworkers;
      nbuckets = cfg.nbuckets;
      capacity = cfg.capacity;
      mode = cfg.mode;
      max_batch = cfg.max_batch;
      max_delay_us = cfg.max_delay_us;
    }
  in
  let server = Nvserve.start scfg in
  let port = Nvserve.port server in
  let lcfg =
    {
      (Loadgen.default_config ~port) with
      Loadgen.nconns = cfg.nconns;
      duration = cfg.duration;
      nkeys = cfg.nkeys;
      pipeline = cfg.pipeline;
      seed = cfg.seed;
    }
  in
  let acks = Loadgen.make_acks () in
  (* The load runs in its own domain so the kill lands mid-traffic; dead
     connections end it shortly after. *)
  let load_domain = Domain.spawn (fun () -> Loadgen.run ~acks lcfg) in
  Unix.sleepf (cfg.duration /. 2.);
  Nvserve.kill server;
  let load = Domain.join load_domain in
  let heap = Lfds.Ctx.heap (Nvserve.ctx server) in
  (* Persistence cost of the run that just died, read before the torn op
     and the crash disturb the counters: how many fences this persist mode
     charged per served request (the flavors' whole point of difference). *)
  let fences = (Nvm.Heap.aggregate_stats heap).Nvm.Pstats.fences in
  let served = Nvserve.requests_served server in
  let fences_per_req =
    if served = 0 then 0. else float_of_int fences /. float_of_int served
  in
  (* Optionally tear one operation on top of the kill: arm the trip-wire
     and let a store crash mid-flight, as a power cut would catch it. *)
  let torn =
    cfg.torn_op
    &&
    let ops = Shard_store.ops (Nvserve.store server) in
    Nvm.Heap.set_trip heap 5;
    match ops.Kvcache.Cache_intf.set ~tid:0 ~key:"drill:torn" ~value:"torn" with
    | () ->
        Nvm.Heap.disarm_trip heap;
        false
    | exception Nvm.Heap.Crashed -> true
  in
  (* Phase journal: the crash and every recovery step emit timestamped
     spans ([Nvm.Timeline.span_current]) into these sinks — the crash into
     its own timeline, recovery into another whose depth-0 spans partition
     the recovery work, so their durations sum to the reported recovery
     time by construction. *)
  let crash_tl = Nvm.Timeline.create () in
  Nvm.Timeline.with_current crash_tl (fun () ->
      Nvm.Heap.crash ~seed:cfg.seed
        ~eviction_probability:cfg.eviction_probability heap);
  (* Timed recovery: layout/allocator reconstruction, then table attach +
     combined parallel leak sweep. *)
  let recovery_tl = Nvm.Timeline.create () in
  let hcfg = Nvserve.heap_cfg server in
  let t0 = Unix.gettimeofday () in
  let ctx', active_pages =
    Nvm.Timeline.with_current recovery_tl (fun () -> Lfds.Ctx.recover heap hcfg)
  in
  let t1 = Unix.gettimeofday () in
  let store', freed_leaks =
    Nvm.Timeline.with_current recovery_tl (fun () ->
        Shard_store.recover ctx' ~nshards:cfg.nworkers ~nbuckets:cfg.nbuckets
          ~capacity:cfg.capacity ~active_pages ~nworkers:cfg.nworkers)
  in
  let t2 = Unix.gettimeofday () in
  let residual_leaks = Shard_store.leak_count store' ~active_pages in
  (* Restart on the same port over the recovered store and audit. *)
  let server' =
    Nvserve.start_with { scfg with Nvserve.port } ~heap_cfg:hcfg ctx' store'
  in
  let checked, exempt, lost =
    Loadgen.verify_acked ~host:"127.0.0.1" ~port ~value_bytes:lcfg.Loadgen.value_bytes
      acks
  in
  let post_ok = Loadgen.probe ~host:"127.0.0.1" ~port in
  Nvserve.stop server';
  (* Strictness is the persist mode's own ack contract, not a hard-coded
     flavor split: any mode whose acks are durable at response time (lp,
     and the fence-minimal flavors once the server adopts them) is audited
     with zero tolerance for lost acked keys; flush-tolerant modes
     (link-cache) only lose what the last cache flush had not covered. *)
  let strict = Lfds.Persist_mode.acks_durable cfg.mode in
  {
    load;
    acked_keys = Hashtbl.length acks.Loadgen.acked;
    inflight_keys = Hashtbl.length acks.Loadgen.inflight;
    fences;
    fences_per_req;
    torn;
    ctx_recover_s = t1 -. t0;
    sweep_s = t2 -. t1;
    (* The phase sum, not [t2 -. t0]: identical to wall time up to the
       nanoseconds between spans, and exactly what the timeline's depth-0
       phases add up to — the invariant the drill report advertises. *)
    recovery_s = Nvm.Timeline.total_s recovery_tl;
    timeline = Nvm.Timeline.events crash_tl @ Nvm.Timeline.events recovery_tl;
    freed_leaks;
    residual_leaks;
    checked;
    exempt;
    lost;
    post_ok;
    strict;
    ok =
      residual_leaks = 0 && post_ok && load.Loadgen.errors = 0
      && ((not strict) || lost = 0);
  }
