(** Incremental memcached ASCII request framing.

    A connection's read buffer holds an arbitrary prefix of the client's
    byte stream — possibly several pipelined requests, possibly a torn
    fragment of one. {!next} extracts the leading complete request (command
    line plus data block for storage commands) without copying more than
    that request, so a worker can drain a readable chunk request-by-request
    and answer each through {!Kvcache.Protocol.handle}.

    Framing is where byte-stream pathologies are absorbed: lines with no
    terminator in sight, storage commands whose byte count cannot be parsed
    (leaving the data block unframeable), and data blocks too large to
    buffer. Anything the protocol layer itself can answer (bad terminators,
    unknown commands, store-layer size limits) is framed normally and left
    to [Protocol.handle]'s own error responses. *)

(** Longest accepted command line, terminator included; a buffer holding
    this many bytes with no [\n] is a protocol violation ({!Too_long}). *)
val max_line_bytes : int

(** Largest data block the server will buffer for one request. Values past
    the item-layout limit still frame fine below this and get the protocol's
    [SERVER_ERROR]; past it the line is rejected outright. *)
val max_data_bytes : int

type result =
  | Request of { req : string; consumed : int }
      (** One complete request, exactly what [Protocol.handle] expects;
          [consumed] bytes of the buffer belong to it. *)
  | Reject of { response : string; consumed : int }
      (** The leading line cannot be framed as a request (unparseable or
          oversized byte count, wrong storage arity). Send [response],
          discard [consumed] bytes, and keep going — the client must resync
          itself, as with real memcached. *)
  | Need_more  (** No complete request yet; read more bytes first. *)
  | Too_long
      (** No line terminator within {!max_line_bytes}: the connection is
          not speaking the protocol and should be answered once and
          closed. *)

(** [next buf ~pos ~len] frames the leading request of [buf.[pos .. pos+len)].
    Never reads outside that window and never consumes more than one
    request. *)
val next : Bytes.t -> pos:int -> len:int -> result
