(** Chrome trace-event JSON from NVTrace spans: complete ("ph":"X") events
    with persistence-cost attribution in [args]; loads in [chrome://tracing]
    and Perfetto. A builder accumulates events so several trace sources can
    share one file under distinct pids. *)

type t

val create : unit -> t

(** Name the process track [pid] (a metadata event). *)
val add_process : t -> pid:int -> name:string -> unit

val add_span : t -> pid:int -> Nvtrace.span -> unit
val add_spans : t -> pid:int -> Nvtrace.span list -> unit

(** Events added so far (metadata included). *)
val event_count : t -> int

(** The complete JSON document (the builder stays appendable). *)
val contents : t -> string

val write_file : t -> string -> unit
