(** NVTrace: a flight-recorder for the simulated NVM heap.

    Rides the {!Nvm.Heap.Observer} multiplexer and turns the
    [A_op_begin]/[A_op_end] operation brackets every structure already emits
    into {e spans}: wall-clock start and duration, operation name, key, and
    the persistence work — write-backs, fences, sync batches, lines drained,
    link-cache traffic — attributed to that span.

    Attribution needs no per-event bookkeeping: events are delivered on the
    acting domain, and each domain owns its {!Nvm.Pstats} counter record, so
    the recorder just snapshots the domain's own counters at [A_op_begin]
    and diffs them at [A_op_end]. Per-span costs therefore sum {e exactly}
    to the substrate aggregate over the traced window (every heap access
    between the brackets is charged to the span, including allocator and
    reclamation work the operation triggered).

    Two sinks per domain, both touched only by the owning domain (no locks):

    - a fixed-size {e ring} of the most recent spans — the flight recorder,
      exported as Chrome trace-event JSON ({!Chrome_trace});
    - per-operation-name {e aggregates} — span counts, persistence-cost
      totals and a latency {!Workload.Histogram} — which survive ring
      wrap-around and feed percentile/attribution reports.

    Reading ([spans], [histograms], [attribution]) is quiescent-only, like
    every observer lifecycle operation. *)

open Nvm

type span = {
  tid : int;
  name : string;  (** operation label, e.g. ["hash.insert"] *)
  key : int;  (** key argument, 0 when the op carries none *)
  start_ns : float;  (** wall-clock offset from [attach], ns *)
  dur_ns : float;
  loads : int;
  stores : int;
  cas : int;
  write_backs : int;
  fences : int;
  sync_batches : int;
  lines_drained : int;
  lc_adds : int;
  lc_fails : int;
}

let null_span =
  {
    tid = -1;
    name = "";
    key = 0;
    start_ns = 0.;
    dur_ns = 0.;
    loads = 0;
    stores = 0;
    cas = 0;
    write_backs = 0;
    fences = 0;
    sync_batches = 0;
    lines_drained = 0;
    lc_adds = 0;
    lc_fails = 0;
  }

(** Persistence-cost totals for one operation name over the traced window. *)
type attrib = {
  ops : int;
  total_ns : float;
  a_loads : int;
  a_stores : int;
  a_cas : int;
  a_write_backs : int;
  a_fences : int;
  a_sync_batches : int;
  a_lines_drained : int;
  a_lc_adds : int;
  a_lc_fails : int;
}

(* Mutable per-tid accumulator behind [attrib]. *)
type agg = {
  mutable g_ops : int;
  mutable g_ns : float;
  mutable g_loads : int;
  mutable g_stores : int;
  mutable g_cas : int;
  mutable g_wb : int;
  mutable g_fences : int;
  mutable g_sync : int;
  mutable g_lines : int;
  mutable g_lc_adds : int;
  mutable g_lc_fails : int;
  g_hist : Workload.Histogram.t;
}

let make_agg () =
  {
    g_ops = 0;
    g_ns = 0.;
    g_loads = 0;
    g_stores = 0;
    g_cas = 0;
    g_wb = 0;
    g_fences = 0;
    g_sync = 0;
    g_lines = 0;
    g_lc_adds = 0;
    g_lc_fails = 0;
    g_hist = Workload.Histogram.create ();
  }

(* Per-domain recorder state; only the owning domain ever touches it (the
   heap delivers events on the acting domain), so there is no lock. *)
type tstate = {
  mutable in_op : bool;
  mutable op_name : string;
  mutable op_key : int;
  mutable t0 : float;  (* ns offset of the open span's begin *)
  (* counter baselines snapshotted at A_op_begin *)
  mutable b_loads : int;
  mutable b_stores : int;
  mutable b_cas : int;
  mutable b_wb : int;
  mutable b_fences : int;
  mutable b_sync : int;
  mutable b_lines : int;
  mutable b_lc_adds : int;
  mutable b_lc_fails : int;
  ring : span array;
  mutable pos : int;  (* next ring slot to overwrite *)
  mutable emitted : int;  (* spans ever recorded by this tid *)
  aggs : (string, agg) Hashtbl.t;
}

type t = {
  heap : Heap.t;
  ring_size : int;
  epoch_us : float;  (* gettimeofday at attach, microseconds *)
  ts : tstate array;
  mutable handle : Heap.Observer.handle option;
}

let default_ring_size = 4096

let now_ns t = (Unix.gettimeofday () *. 1e6 -. t.epoch_us) *. 1e3

let make_tstate ring_size =
  {
    in_op = false;
    op_name = "";
    op_key = 0;
    t0 = 0.;
    b_loads = 0;
    b_stores = 0;
    b_cas = 0;
    b_wb = 0;
    b_fences = 0;
    b_sync = 0;
    b_lines = 0;
    b_lc_adds = 0;
    b_lc_fails = 0;
    ring = Array.make ring_size null_span;
    pos = 0;
    emitted = 0;
    aggs = Hashtbl.create 16;
  }

let on_begin t tid name key =
  let s = t.ts.(tid) in
  let st = Heap.stats t.heap tid in
  (* An op aborted by a crash trip never emits A_op_end; the next begin
     simply restarts the bracket, dropping the aborted span. *)
  s.in_op <- true;
  s.op_name <- name;
  s.op_key <- key;
  s.b_loads <- st.Pstats.loads;
  s.b_stores <- st.Pstats.stores;
  s.b_cas <- st.Pstats.cas;
  s.b_wb <- st.Pstats.write_backs;
  s.b_fences <- st.Pstats.fences;
  s.b_sync <- st.Pstats.sync_batches;
  s.b_lines <- st.Pstats.lines_drained;
  s.b_lc_adds <- st.Pstats.lc_adds;
  s.b_lc_fails <- st.Pstats.lc_fails;
  s.t0 <- now_ns t

let on_end t tid =
  let s = t.ts.(tid) in
  if s.in_op then begin
    s.in_op <- false;
    let dur = now_ns t -. s.t0 in
    let st = Heap.stats t.heap tid in
    let span =
      {
        tid;
        name = s.op_name;
        key = s.op_key;
        start_ns = s.t0;
        dur_ns = dur;
        loads = st.Pstats.loads - s.b_loads;
        stores = st.Pstats.stores - s.b_stores;
        cas = st.Pstats.cas - s.b_cas;
        write_backs = st.Pstats.write_backs - s.b_wb;
        fences = st.Pstats.fences - s.b_fences;
        sync_batches = st.Pstats.sync_batches - s.b_sync;
        lines_drained = st.Pstats.lines_drained - s.b_lines;
        lc_adds = st.Pstats.lc_adds - s.b_lc_adds;
        lc_fails = st.Pstats.lc_fails - s.b_lc_fails;
      }
    in
    s.ring.(s.pos) <- span;
    s.pos <- (s.pos + 1) mod Array.length s.ring;
    s.emitted <- s.emitted + 1;
    let agg =
      match Hashtbl.find_opt s.aggs span.name with
      | Some g -> g
      | None ->
          let g = make_agg () in
          Hashtbl.add s.aggs span.name g;
          g
    in
    agg.g_ops <- agg.g_ops + 1;
    agg.g_ns <- agg.g_ns +. dur;
    agg.g_loads <- agg.g_loads + span.loads;
    agg.g_stores <- agg.g_stores + span.stores;
    agg.g_cas <- agg.g_cas + span.cas;
    agg.g_wb <- agg.g_wb + span.write_backs;
    agg.g_fences <- agg.g_fences + span.fences;
    agg.g_sync <- agg.g_sync + span.sync_batches;
    agg.g_lines <- agg.g_lines + span.lines_drained;
    agg.g_lc_adds <- agg.g_lc_adds + span.lc_adds;
    agg.g_lc_fails <- agg.g_lc_fails + span.lc_fails;
    Workload.Histogram.record agg.g_hist ~ns:dur
  end

let on_event t = function
  | Heap.Ev_note { tid; note = Heap.A_op_begin { name; key } } ->
      on_begin t tid name key
  | Heap.Ev_note { tid; note = Heap.A_op_end _ } -> on_end t tid
  | _ ->
      (* Per-span costs come from Pstats baselines, so individual heap
         events need no bookkeeping here. *)
      ()

let attach ?(ring_size = default_ring_size) heap =
  if ring_size <= 0 then invalid_arg "Nvtrace.attach: ring_size";
  let t =
    {
      heap;
      ring_size;
      epoch_us = Unix.gettimeofday () *. 1e6;
      ts = Array.init Pstats.max_threads (fun _ -> make_tstate ring_size);
      handle = None;
    }
  in
  t.handle <- Some (Heap.Observer.add heap (on_event t));
  t

let detach t =
  match t.handle with
  | None -> ()
  | Some h ->
      Heap.Observer.remove t.heap h;
      t.handle <- None

let ring_size t = t.ring_size
let span_count t = Array.fold_left (fun acc s -> acc + s.emitted) 0 t.ts

let dropped t =
  Array.fold_left (fun acc s -> acc + max 0 (s.emitted - t.ring_size)) 0 t.ts

(* One tid's retained spans, oldest first. *)
let tid_spans s =
  let n = Array.length s.ring in
  if s.emitted >= n then List.init n (fun i -> s.ring.((s.pos + i) mod n))
  else List.init s.pos (fun i -> s.ring.(i))

let spans t =
  Array.to_list t.ts
  |> List.concat_map tid_spans
  |> List.sort (fun a b -> compare a.start_ns b.start_ns)

(* Merge per-tid aggregates by operation name (quiescent read). *)
let merged_aggs t =
  let out : (string, agg * Workload.Histogram.t) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      Hashtbl.iter
        (fun name g ->
          let into, hist =
            match Hashtbl.find_opt out name with
            | Some v -> v
            | None ->
                let v = (make_agg (), Workload.Histogram.create ()) in
                Hashtbl.add out name v;
                v
          in
          into.g_ops <- into.g_ops + g.g_ops;
          into.g_ns <- into.g_ns +. g.g_ns;
          into.g_loads <- into.g_loads + g.g_loads;
          into.g_stores <- into.g_stores + g.g_stores;
          into.g_cas <- into.g_cas + g.g_cas;
          into.g_wb <- into.g_wb + g.g_wb;
          into.g_fences <- into.g_fences + g.g_fences;
          into.g_sync <- into.g_sync + g.g_sync;
          into.g_lines <- into.g_lines + g.g_lines;
          into.g_lc_adds <- into.g_lc_adds + g.g_lc_adds;
          into.g_lc_fails <- into.g_lc_fails + g.g_lc_fails;
          Workload.Histogram.merge ~into:hist g.g_hist)
        s.aggs)
    t.ts;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) out []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histograms t = List.map (fun (name, (_, h)) -> (name, h)) (merged_aggs t)

let attribution t =
  List.map
    (fun (name, (g, _)) ->
      ( name,
        {
          ops = g.g_ops;
          total_ns = g.g_ns;
          a_loads = g.g_loads;
          a_stores = g.g_stores;
          a_cas = g.g_cas;
          a_write_backs = g.g_wb;
          a_fences = g.g_fences;
          a_sync_batches = g.g_sync;
          a_lines_drained = g.g_lines;
          a_lc_adds = g.g_lc_adds;
          a_lc_fails = g.g_lc_fails;
        } ))
    (merged_aggs t)

(* Totals across every operation name — the cross-check against the heap's
   aggregate Pstats for the same window. *)
let total_attribution t =
  List.fold_left
    (fun acc (_, a) ->
      {
        ops = acc.ops + a.ops;
        total_ns = acc.total_ns +. a.total_ns;
        a_loads = acc.a_loads + a.a_loads;
        a_stores = acc.a_stores + a.a_stores;
        a_cas = acc.a_cas + a.a_cas;
        a_write_backs = acc.a_write_backs + a.a_write_backs;
        a_fences = acc.a_fences + a.a_fences;
        a_sync_batches = acc.a_sync_batches + a.a_sync_batches;
        a_lines_drained = acc.a_lines_drained + a.a_lines_drained;
        a_lc_adds = acc.a_lc_adds + a.a_lc_adds;
        a_lc_fails = acc.a_lc_fails + a.a_lc_fails;
      })
    {
      ops = 0;
      total_ns = 0.;
      a_loads = 0;
      a_stores = 0;
      a_cas = 0;
      a_write_backs = 0;
      a_fences = 0;
      a_sync_batches = 0;
      a_lines_drained = 0;
      a_lc_adds = 0;
      a_lc_fails = 0;
    }
    (attribution t)
