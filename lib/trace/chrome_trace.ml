(** Chrome trace-event JSON from NVTrace spans.

    Emits the JSON-object flavor of the trace-event format —
    [{"traceEvents": [...]}] — with one complete ("ph":"X") event per span,
    which loads directly in [chrome://tracing] and Perfetto. Timestamps are
    microseconds (the format's unit); persistence-cost attribution rides in
    each event's [args], so clicking a slice in the viewer shows the
    flushes, fences and link-cache traffic that operation paid.

    A builder accumulates events so several trace sources (one benchmark
    point each, say) can land in one file under distinct pids, labelled via
    [add_process]. *)

type t = { buf : Buffer.t; mutable n_events : int }

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let create () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  { buf; n_events = 0 }

let start_event t =
  if t.n_events > 0 then Buffer.add_char t.buf ',';
  t.n_events <- t.n_events + 1

(** Name the process track [pid] ("hash-table/link-cache t=8", say). *)
let add_process t ~pid ~name =
  start_event t;
  Buffer.add_string t.buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\""
       pid);
  add_escaped t.buf name;
  Buffer.add_string t.buf "\"}}"

let add_span t ~pid (s : Nvtrace.span) =
  start_event t;
  let b = t.buf in
  Buffer.add_string b "{\"name\":\"";
  add_escaped b s.name;
  Buffer.add_string b "\",\"cat\":\"op\",\"ph\":\"X\",";
  (* Trace-event timestamps are microseconds. *)
  Buffer.add_string b
    (Printf.sprintf "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,"
       (s.start_ns /. 1e3) (s.dur_ns /. 1e3) pid s.tid);
  Buffer.add_string b
    (Printf.sprintf
       "\"args\":{\"key\":%d,\"loads\":%d,\"stores\":%d,\"cas\":%d,\"wb\":%d,\
        \"fences\":%d,\"sync_batches\":%d,\"lines_drained\":%d,\"lc_adds\":%d,\
        \"lc_fails\":%d}}"
       s.key s.loads s.stores s.cas s.write_backs s.fences s.sync_batches
       s.lines_drained s.lc_adds s.lc_fails)

let add_spans t ~pid spans = List.iter (add_span t ~pid) spans

let contents t =
  (* Close a copy so the builder stays appendable. *)
  Buffer.contents t.buf ^ "],\"displayTimeUnit\":\"ns\"}\n"

let event_count t = t.n_events

let write_file t path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc
