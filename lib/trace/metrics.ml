(** Interval metrics over the {!Nvm.Pstats} registry: snapshot, diff, and a
    one-line derived-rate report — the `nvlf top` building blocks.

    A [sample] copies the heap's aggregate counters plus a wall-clock stamp;
    [delta] turns two samples into the counter increments and elapsed time
    of the interval between them. [report] renders an interval as rates a
    reader can act on (flushes per op, link-cache hit rate, fence batching
    factor, epoch-advance stalls, APT hit rate) instead of raw totals. *)

open Nvm

type sample = { at : float;  (** [Unix.gettimeofday] stamp *) counters : Pstats.t }

let sample heap = { at = Unix.gettimeofday (); counters = Heap.aggregate_stats heap }

(** Counter increments and elapsed seconds from [older] to [newer]. *)
let delta ~older ~newer =
  (Pstats.diff newer.counters older.counters, newer.at -. older.at)

(* ---------- flight-recorder histogram intervals ----------

   [Nvtrace.histograms] merges the per-domain aggregates on every read, so
   an interval differ must snapshot the {e merged} view and subtract bucket
   counts — diffing any single domain's histogram would drop every other
   domain's samples from the interval. *)

type hist_sample = {
  h_at : float;  (** [Unix.gettimeofday] stamp *)
  hists : (string * Workload.Histogram.t) list;
      (** per-op-name merged histograms, frozen copies *)
}

let hist_sample tr =
  {
    h_at = Unix.gettimeofday ();
    hists =
      List.map (fun (n, h) -> (n, Workload.Histogram.copy h)) (Nvtrace.histograms tr);
  }

(** Per-op-name histograms of the interval between two snapshots (bucket
    subtraction; an op name absent from [older] contributes its full
    histogram), and the elapsed seconds. *)
let hist_delta ~older ~newer =
  let d =
    List.map
      (fun (n, h) ->
        match List.assoc_opt n older.hists with
        | None -> (n, Workload.Histogram.copy h)
        | Some o -> (n, Workload.Histogram.sub h o))
      newer.hists
  in
  (d, newer.h_at -. older.h_at)

(* ---------- scraped key/value intervals (nvlf watch) ---------- *)

type kv_sample = {
  k_at : float;
  kvs : (string * string) list;  (** a [stats]-style scrape, order kept *)
}

let kv_sample kvs = { k_at = Unix.gettimeofday (); kvs }

(** Numeric increments from [older] to [newer], in [newer]'s key order
    (non-numeric values are skipped; a key new to [newer] counts from 0),
    and the elapsed seconds. Gauges scraped this way yield deltas too — the
    caller decides which keys to render as rates vs levels. *)
let kv_delta ~older ~newer =
  let d =
    List.filter_map
      (fun (k, v) ->
        match float_of_string_opt v with
        | None -> None
        | Some nv ->
            let ov =
              match List.assoc_opt k older.kvs with
              | None -> 0.
              | Some o -> Option.value (float_of_string_opt o) ~default:0.
            in
            Some (k, nv -. ov))
      newer.kvs
  in
  (d, newer.k_at -. older.k_at)

let per f d = if d <= 0 then 0. else f /. float_of_int d

(** One interval as derived rates. [ops] is the operation count of the
    interval when the caller tracks one (0 = unknown: per-op rates print
    as [-]). *)
let report ?(ops = 0) ~dt (d : Pstats.t) =
  let ops_s =
    if ops > 0 && dt > 0. then
      Workload.Report.human_ops (float_of_int ops /. dt)
    else "-"
  in
  let per_op v = if ops > 0 then Printf.sprintf "%.2f" (per (float_of_int v) ops) else "-" in
  Printf.sprintf
    "%8s | wb/op %5s fence/op %5s | wb/store %4.2f lines/batch %4.1f | lc hit \
     %5.1f%% apt hit %5.1f%% | stalls/s %.0f"
    ops_s
    (per_op d.write_backs) (per_op d.fences)
    (Pstats.flushes_per_store d)
    (Pstats.lines_per_batch d)
    (100. *. Pstats.lc_hit_rate d)
    (100. *. Pstats.apt_hit_rate d)
    (if dt > 0. then float_of_int d.epoch_stalls /. dt else 0.)

(** Column header aligned with {!report}. *)
let header = "   ops/s | per-op flush cost       | batching             | hit rates            | reclamation"
