(** Interval metrics over the {!Nvm.Pstats} registry: snapshot/diff plus a
    derived-rate text report (the `nvlf top` building blocks). *)

type sample = { at : float; counters : Nvm.Pstats.t }

(** Copy the heap's aggregate counters with a wall-clock stamp. *)
val sample : Nvm.Heap.t -> sample

(** Counter increments and elapsed seconds from [older] to [newer]. *)
val delta : older:sample -> newer:sample -> Nvm.Pstats.t * float

(** Render one interval's deltas as derived rates (flushes/op, link-cache
    hit rate, fence batching factor, epoch stalls/s, APT hit rate). [ops]
    is the interval's operation count; omit when unknown. *)
val report : ?ops:int -> dt:float -> Nvm.Pstats.t -> string

(** Column header aligned with {!report}. *)
val header : string
