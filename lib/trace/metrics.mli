(** Interval metrics over the {!Nvm.Pstats} registry: snapshot/diff plus a
    derived-rate text report (the `nvlf top` building blocks). *)

type sample = { at : float; counters : Nvm.Pstats.t }

(** Copy the heap's aggregate counters with a wall-clock stamp. *)
val sample : Nvm.Heap.t -> sample

(** Counter increments and elapsed seconds from [older] to [newer]. *)
val delta : older:sample -> newer:sample -> Nvm.Pstats.t * float

(** {2 Flight-recorder histogram intervals}

    {!Nvtrace.histograms} merges the per-domain aggregates on every read;
    these snapshot that merged view so interval differencing covers every
    domain's samples (diffing one domain's histogram would silently drop
    the rest). *)

type hist_sample = {
  h_at : float;
  hists : (string * Workload.Histogram.t) list;  (** frozen merged copies *)
}

val hist_sample : Nvtrace.t -> hist_sample

(** Per-op-name histograms of the samples recorded between two snapshots
    (bucket subtraction; op names new to [newer] contribute in full), and
    the elapsed seconds. *)
val hist_delta :
  older:hist_sample ->
  newer:hist_sample ->
  (string * Workload.Histogram.t) list * float

(** {2 Scraped key/value intervals}

    The [nvlf watch] building block: snapshot a [stats nvlf] scrape, diff
    two snapshots into numeric increments. *)

type kv_sample = { k_at : float; kvs : (string * string) list }

val kv_sample : (string * string) list -> kv_sample

(** Numeric increments from [older] to [newer] in [newer]'s key order
    (non-numeric values skipped, keys new to [newer] count from zero), and
    the elapsed seconds. *)
val kv_delta :
  older:kv_sample -> newer:kv_sample -> (string * float) list * float

(** Render one interval's deltas as derived rates (flushes/op, link-cache
    hit rate, fence batching factor, epoch stalls/s, APT hit rate). [ops]
    is the interval's operation count; omit when unknown. *)
val report : ?ops:int -> dt:float -> Nvm.Pstats.t -> string

(** Column header aligned with {!report}. *)
val header : string
