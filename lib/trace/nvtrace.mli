(** NVTrace: flight-recorder tracing and persistence-cost attribution.

    Attaches to a heap through the {!Nvm.Heap.Observer} multiplexer (so it
    runs alongside NVSan) and turns the [A_op_begin]/[A_op_end] brackets
    into spans: wall time, op name, key, and the write-back / fence /
    link-cache work attributed to the span by diffing the acting domain's
    own {!Nvm.Pstats} counters at the brackets. Per-span costs sum exactly
    to the substrate aggregate over the traced window.

    Per domain it keeps a fixed-size ring of recent spans (the flight
    recorder; oldest overwritten first) and per-op-name aggregates — counts,
    cost totals, and a latency {!Workload.Histogram} — which survive ring
    wrap-around. All recording is lock-free per-domain state; the read
    accessors are quiescent-only, like attach/detach. *)

(** One recorded operation: its wall time and the persistence work it did
    (counter deltas between the op's begin/end brackets). *)
type span = {
  tid : int;
  name : string;  (** operation label, e.g. ["hash.insert"] *)
  key : int;  (** key argument, 0 when the op carries none *)
  start_ns : float;  (** wall-clock offset from [attach], ns *)
  dur_ns : float;
  loads : int;
  stores : int;
  cas : int;
  write_backs : int;
  fences : int;
  sync_batches : int;
  lines_drained : int;
  lc_adds : int;
  lc_fails : int;
}

(** Persistence-cost totals for one operation name over the traced window. *)
type attrib = {
  ops : int;
  total_ns : float;
  a_loads : int;
  a_stores : int;
  a_cas : int;
  a_write_backs : int;
  a_fences : int;
  a_sync_batches : int;
  a_lines_drained : int;
  a_lc_adds : int;
  a_lc_fails : int;
}

(** A recorder attached to one heap. *)
type t

(** Default per-domain ring capacity (4096 spans). *)
val default_ring_size : int

(** Attach a recorder ([ring_size] spans per domain, default 4096). Attach
    at a quiescent point. Raises [Invalid_argument] if [ring_size <= 0]. *)
val attach : ?ring_size:int -> Nvm.Heap.t -> t

(** Remove this recorder's observer (others stay); idempotent. Recorded
    spans and aggregates remain readable. *)
val detach : t -> unit

(** The per-domain ring capacity this recorder was attached with. *)
val ring_size : t -> int

(** Spans ever recorded, including ones the rings have overwritten. *)
val span_count : t -> int

(** Spans lost to ring wrap-around. *)
val dropped : t -> int

(** Retained spans across all domains, oldest first (quiescent-only). *)
val spans : t -> span list

(** Per-op-name latency histograms, merged across domains, sorted by name
    (quiescent-only). *)
val histograms : t -> (string * Workload.Histogram.t) list

(** Per-op-name persistence-cost totals, sorted by name (quiescent-only). *)
val attribution : t -> (string * attrib) list

(** Totals over all op names — cross-check against the heap's aggregate
    {!Nvm.Pstats} for the traced window. *)
val total_attribution : t -> attrib
