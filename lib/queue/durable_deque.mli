(** Durable Chase-Lev work-stealing deque: single owner pushing and popping
    at the bottom, any thread stealing from the top, over a growable
    circular buffer — with the link-and-persist discipline on every
    pointer the structure publishes.

    Layout: [top] and [bottom] are monotonic indices in two root slots; a
    third root links to the current buffer, an allocator slot of size class
    16/32/64 words (one header line + 8/24/56 one-word item links; logical
    index [i] lives at physical word [i mod cap]). Items are one-line nodes
    {v +0 idx  +1 value  +2 0  +3 validity v} persisted {e before} being
    published into their slot through [Lfds.Link_persist.cas_link_c].

    Persistence protocol, by flavor ([Lfds.Persist_mode]):

    - Push persists the node (index stamp included) before the slot link
      CAS; bottom is volatile metadata recomputed at recovery by scanning
      stamps upward from the durable top (single ownership makes unacked
      pushes a suffix of the index window).
    - Pop's durable linearization is the slot-clearing link CAS (lp fences
      it, nvt rides the op-end covering fence, lc parks it in the cache);
      link-free marks the node's validity verdict instead.
    - Steal's durable linearization is the new [top] (lp write-back +
      fence, nvt covering fence, lc buffered write-back); link-free marks
      the stolen node [deleted]. A thief never reclaims: the slot still
      references the node, so the owner retires it when the slot is
      overwritten after wrap-around, and the recovery sweep frees whatever
      a crash leaves behind.
    - Buffer growth doubles the size class, copies the live window, persists
      the new buffer whole and publishes it through the buffer link; the
      deque is full at grow time, so no slot is orphaned. [Deque_full] is
      raised past the largest (64-word) class.

    Acked operations are durable before their response in lp/nvt/lf;
    link-cache acks are buffered; volatile is the DRAM baseline. Operations
    must run inside [Lfds.Ctx.with_op] brackets — the exported [ops]
    wrapper does this. *)

exception Deque_full
(** Raised by push when the largest buffer size class is exhausted. *)

type t
(** Deque handle: the top, bottom and buffer-link root-slot addresses. *)

val node_words : int
(** Words per item node (one cache line). *)

val max_cap : int
(** Largest buffer capacity in items (largest size class minus header). *)

val validity_off : int
(** Offset of the validity word inside an item node. The buffer header
    keeps [Lfds.Link_free.invalid] at the same offset so a link-free
    rebuild never mistakes a buffer for an item. *)

val index_words : t -> int list
(** The root words holding raw monotonic indices ([top] and [bottom])
    rather than links. Sanitizers must exempt them from mark-protocol
    interpretation (see [Sanitizer.Nvsan.declare_index_word]): an integer
    decrement can flip exactly the bit that reads as an unflushed mark. *)

val create : Lfds.Ctx.t -> root:int -> t
(** [create ctx ~root] builds a fresh empty deque on root slots [root]
    (top), [root + 1] (bottom) and [root + 2] (buffer link). *)

val attach : Lfds.Ctx.t -> root:int -> t
(** Roots of an existing deque after a crash; run [recover_consistency]
    (or [rebuild_link_free]) before operating. *)

val push : Lfds.Ctx.t -> tid:int -> t -> value:int -> unit
(** Owner only: append [value] at the bottom (bare operation — no epoch
    bracket; prefer [ops]). Raises [Deque_full]. *)

val push_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> t -> value:int -> unit
(** [push] on a caller-supplied heap cursor (the hot path). *)

val pop : Lfds.Ctx.t -> tid:int -> t -> int option
(** Owner only: take the youngest value, or [None] on empty. *)

val pop_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> t -> int option
(** [pop] on a caller-supplied heap cursor. *)

val steal : Lfds.Ctx.t -> tid:int -> t -> int option
(** Any thread: take the oldest value, or [None] on empty or lost race. *)

val steal_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> t -> int option
(** [steal] on a caller-supplied heap cursor. *)

val ops : Lfds.Ctx.t -> t -> Queue_intf.deque_ops
(** First-class epoch-bracketed operations; the pushed value rides the
    bracket's [~key] annotation for history recorders. *)

val iter_nodes : Lfds.Ctx.t -> tid:int -> t -> (int -> unit) -> unit
(** Quiescent physical scan: the buffer, then every node any slot still
    references (live and not-yet-reclaimed stolen nodes alike) — the
    recovery sweep's reachability source. *)

val size : Lfds.Ctx.t -> tid:int -> t -> int
(** Element count ([bottom - top]); quiescent use only. *)

val to_list : Lfds.Ctx.t -> tid:int -> t -> int list
(** Contents oldest-first (steal order); quiescent use only. *)

val recover_consistency : Lfds.Ctx.t -> t -> unit
(** Post-crash normalization for every flavor but link-free: believe the
    durable [top], walk indices upward while slots carry correctly-stamped
    nodes to recompute [bottom], null out slots outside the live window so
    the leak sweep can free stale stolen nodes, one fence at the end. *)

val rebuild_link_free : Lfds.Ctx.t -> t -> int
(** Link-free recovery: classify every allocated slot by validity word,
    free all of them, reset to empty, re-push valid survivors in stamp
    order. Survivors beyond [max_cap] can only be steals cut mid-flight by
    the crash (the lowest stamps); they are dropped, linearizing those
    steals as completed. Returns the number of items rebuilt. *)

val reset : Lfds.Ctx.t -> t -> unit
(** Durable reset to the empty deque (fresh minimal buffer). *)
