(** Durable Chase-Lev work-stealing deque. See the interface for the
    persistence protocol.

    Shape: [top]/[bottom] are monotonic indices in two root slots; a third
    root points at the current circular buffer — an allocator slot of
    size class 16/32/64 whose first line is a header ({v +0 cap  +3 0 v})
    and whose remaining words are one link per logical index (index [i]
    lives at physical word [i mod cap]). Items are one-line nodes with the
    queue's uniform layout {v +0 idx  +1 value  +2 0  +3 validity v},
    persisted before being published into their slot with
    [Lfds.Link_persist.cas_link_c] — so every slot edge follows the link
    discipline and NVSan/NVRace see ordinary link traffic.

    Single owner: [push]/[pop] work at [bottom]; thieves [steal] at [top]
    (index CASes carry the happens-before edges NVRace needs). A stolen
    node is {e not} retired by the thief (its slot still references it);
    the owner retires it when the slot is overwritten after wrap-around,
    and the recovery sweep reclaims whatever a crash leaves behind. *)

open Nvm
open Lfds

exception Deque_full

let node_words = Cacheline.words_per_line
let seq_of node = node
let value_of node = node + 1
let validity_of node = node + 3
let validity_off = 3

(* Buffer geometry: one header line, then [cap] one-word slots. Size
   classes 16/32/64 give capacities 8/24/56; [Deque_full] past the top. *)
let hdr_words = Cacheline.words_per_line
let min_class = 2 * Cacheline.words_per_line
let max_class = 64
let max_cap = max_class - hdr_words

type t = { top : int; bottom : int; bufp : int }

(* The two roots holding raw indices rather than links — sanitizers must
   not read their integer CASes as mark-protocol traffic. *)
let index_words d = [ d.top; d.bottom ]

let cap_of cu buf = Heap.Cursor.load cu buf
let slot_addr buf ~cap i = buf + hdr_words + (i mod cap)
let read_value cu node = Heap.Cursor.load cu (value_of node)
let read_seq cu node = Heap.Cursor.load cu (seq_of node)

(* Allocate and durably initialize an empty buffer of [size_class] words.
   Recycled slots may hold stale bytes, so every word is rewritten. *)
let init_buffer ctx cu ~size_class =
  let buf = Nv_epochs.alloc_node_c (Ctx.mem ctx) cu ~size_class in
  for i = 0 to size_class - 1 do
    Heap.Cursor.store cu (buf + i) 0
  done;
  Heap.Cursor.store cu buf (size_class - hdr_words);
  Link_persist.persist_node_c ctx cu ~addr:buf ~size_class;
  buf

let current_buffer ctx cu d =
  Marked_ptr.addr (Link_persist.read_clean_c ctx cu d.bufp)

(* Double the buffer (owner only, called when [b - t = cap]): copy the live
   window into a fresh larger buffer, persist it whole, publish it through
   the buffer link, retire the old one. Every old physical slot is live at
   grow time (the deque is full), so nothing is orphaned. *)
let grow ctx cu d ~buf ~cap ~t ~b =
  let size_class = 2 * (cap + hdr_words) in
  if size_class > max_class then raise Deque_full;
  let nbuf = Nv_epochs.alloc_node_c (Ctx.mem ctx) cu ~size_class in
  let ncap = size_class - hdr_words in
  for i = 0 to size_class - 1 do
    Heap.Cursor.store cu (nbuf + i) 0
  done;
  Heap.Cursor.store cu nbuf ncap;
  for i = t to b - 1 do
    let node =
      Marked_ptr.addr (Link_persist.read_clean_c ctx cu (slot_addr buf ~cap i))
    in
    Heap.Cursor.store cu (slot_addr nbuf ~cap:ncap i) node
  done;
  Link_persist.persist_node_c ctx cu ~addr:nbuf ~size_class;
  ignore
    (Link_persist.cas_link_c ctx cu ~key:0 ~link:d.bufp ~expected:buf
       ~desired:nbuf);
  Nv_epochs.retire_node_c (Ctx.mem ctx) cu buf;
  nbuf

(* Durably consume the node a slot references: clear the slot through the
   link discipline (lp fences here — the op's ack durability), record the
   link-free verdict, hand the node to reclamation. *)
let take_slot ctx cu ~slot ~node =
  ignore
    (Link_persist.cas_link_c ctx cu ~key:(read_seq cu node) ~link:slot
       ~expected:node ~desired:0);
  Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of node);
  Nv_epochs.retire_node_c (Ctx.mem ctx) cu node

(** [push_c ctx cu d ~value] — owner only. Raises [Deque_full] past the
    largest buffer class. *)
let push_c ctx cu d ~value =
  let b = Heap.Cursor.load cu d.bottom in
  let t = Heap.Cursor.load cu d.top in
  let buf = current_buffer ctx cu d in
  let cap = cap_of cu buf in
  let buf, cap =
    if b - t >= cap then
      let nbuf = grow ctx cu d ~buf ~cap ~t ~b in
      (nbuf, cap_of cu nbuf)
    else (buf, cap)
  in
  let node = Nv_epochs.alloc_node_c (Ctx.mem ctx) cu ~size_class:node_words in
  Heap.Cursor.store cu (seq_of node) b;
  Heap.Cursor.store cu (value_of node) value;
  Heap.Cursor.store cu (node + 2) 0;
  Link_free.init_c ctx cu ~validity_word:(validity_of node)
    ~state:Link_free.valid;
  Link_persist.persist_node_c ctx cu ~addr:node ~size_class:node_words;
  let slot = slot_addr buf ~cap b in
  let old = Marked_ptr.addr (Link_persist.read_clean_c ctx cu slot) in
  ignore
    (Link_persist.cas_link_c ctx cu ~key:b ~link:slot ~expected:old
       ~desired:node);
  (* A displaced reference can only be a long-stolen node (its index is
     [b - cap] < top): reclaim it now that nothing points at it. *)
  if old <> 0 then Nv_epochs.retire_node_c (Ctx.mem ctx) cu old;
  ignore (Heap.Cursor.cas cu d.bottom ~expected:b ~desired:(b + 1))

let push ctx ~tid d ~value = push_c ctx (Ctx.cursor ctx ~tid) d ~value

(** [pop_c ctx cu d] — owner only; takes the youngest value. *)
let pop_c ctx cu d =
  let b = Heap.Cursor.load cu d.bottom in
  let t0 = Heap.Cursor.load cu d.top in
  if b <= t0 then None
  else begin
    let b' = b - 1 in
    ignore (Heap.Cursor.cas cu d.bottom ~expected:b ~desired:b');
    let t = Heap.Cursor.load cu d.top in
    if b' < t then begin
      (* Thieves emptied it while we were reserving. *)
      ignore (Heap.Cursor.cas cu d.bottom ~expected:b' ~desired:b);
      None
    end
    else begin
      let buf = current_buffer ctx cu d in
      let cap = cap_of cu buf in
      let slot = slot_addr buf ~cap b' in
      let node = Marked_ptr.addr (Link_persist.read_clean_c ctx cu slot) in
      let v = read_value cu node in
      if b' > t then begin
        take_slot ctx cu ~slot ~node;
        Some v
      end
      else begin
        (* Last element: race the thieves on [top]. Winning consumes index
           [t] — a steal in disguise, so the new [top] must be durable with
           the ack, or recovery would read the durably-cleared slot [t] as
           the window's empty start and drop every later stamp. The queued
           write-back rides [take_slot]'s fence (lp) or the op-end covering
           fence (nvt). *)
        let won = Heap.Cursor.cas cu d.top ~expected:t ~desired:(t + 1) in
        ignore (Heap.Cursor.cas cu d.bottom ~expected:b' ~desired:b);
        if won then begin
          (match Ctx.mode ctx with
          | Persist_mode.Volatile | Persist_mode.Link_free -> ()
          | Persist_mode.Link_persist | Persist_mode.Link_cache ->
              Heap.Cursor.write_back cu d.top
          | Persist_mode.Nvtraverse ->
              Nvtraverse.ensure_word_durable_c (Ctx.heap ctx) cu d.top);
          take_slot ctx cu ~slot ~node;
          Some v
        end
        else None
      end
    end
  end

let pop ctx ~tid d = pop_c ctx (Ctx.cursor ctx ~tid) d

(** [steal_c ctx cu d] — any thread; takes the oldest value. An acked steal
    persists the consumption before responding: lp/nvt make the new [top]
    durable (fence / covering fence), link-free marks the node's validity
    verdict instead; link-cache write-backs are buffered (acks not
    durable); volatile does nothing. *)
let rec steal_c ctx cu d =
  let t = Heap.Cursor.load cu d.top in
  let b = Heap.Cursor.load cu d.bottom in
  if t >= b then None
  else begin
    let buf = current_buffer ctx cu d in
    let cap = cap_of cu buf in
    let node =
      Marked_ptr.addr (Link_persist.read_clean_c ctx cu (slot_addr buf ~cap t))
    in
    if node = 0 || read_seq cu node <> t then
      (* The window moved under us (pop or wrap-around); retry fresh. *)
      steal_c ctx cu d
    else begin
      let v = read_value cu node in
      if Heap.Cursor.cas cu d.top ~expected:t ~desired:(t + 1) then begin
        (match Ctx.mode ctx with
        | Persist_mode.Volatile -> ()
        | Persist_mode.Link_persist ->
            Heap.Cursor.write_back cu d.top;
            Heap.Cursor.fence cu
        | Persist_mode.Link_cache -> Heap.Cursor.write_back cu d.top
        | Persist_mode.Nvtraverse ->
            Nvtraverse.ensure_word_durable_c (Ctx.heap ctx) cu d.top
        | Persist_mode.Link_free ->
            Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of node));
        (* The slot still references the node: the owner retires it when
           the slot is overwritten (or the recovery sweep frees it). *)
        Some v
      end
      else steal_c ctx cu d
    end
  end

let steal ctx ~tid d = steal_c ctx (Ctx.cursor ctx ~tid) d

let size ctx ~tid d =
  let cu = Ctx.cursor ctx ~tid in
  max 0 (Heap.Cursor.load cu d.bottom - Heap.Cursor.load cu d.top)

(* Quiescent physical scan: the buffer, then every node any slot still
   references (live window and not-yet-reclaimed stolen nodes alike) — the
   recovery sweep's reachability source. *)
let iter_nodes ctx ~tid d f =
  let cu = Ctx.cursor ctx ~tid in
  let buf = Marked_ptr.addr (Heap.Cursor.load cu d.bufp) in
  f buf;
  let cap = cap_of cu buf in
  for p = 0 to cap - 1 do
    let node = Marked_ptr.addr (Heap.Cursor.load cu (buf + hdr_words + p)) in
    if node <> 0 then f node
  done

let to_list ctx ~tid d =
  let cu = Ctx.cursor ctx ~tid in
  let buf = Marked_ptr.addr (Heap.Cursor.load cu d.bufp) in
  let cap = cap_of cu buf in
  let t = Heap.Cursor.load cu d.top in
  let b = Heap.Cursor.load cu d.bottom in
  List.init (max 0 (b - t)) (fun k ->
      read_value cu
        (Marked_ptr.addr (Heap.Cursor.load cu (slot_addr buf ~cap (t + k)))))

(* Fresh empty deque: indices zero, minimal buffer. Used by [create] and by
   the link-free rebuild. *)
let init_empty ctx d =
  let cu = Ctx.cursor ctx ~tid:0 in
  let buf = init_buffer ctx cu ~size_class:min_class in
  Heap.Cursor.store cu d.top 0;
  Heap.Cursor.store cu d.bottom 0;
  Heap.Cursor.store cu d.bufp buf;
  Heap.Cursor.write_back cu d.top;
  Heap.Cursor.write_back cu d.bottom;
  Heap.Cursor.write_back cu d.bufp;
  Heap.Cursor.fence cu

(* Post-crash normalization (all flavors but link-free): believe the
   durable [top], walk indices upward while slots carry correctly-stamped
   nodes (a single owner makes unacked pushes a suffix, so the first
   mismatch is the true durable bottom), then null out every slot outside
   the live window so the leak sweep can free stale stolen nodes. *)
let recover_consistency ctx d =
  let cu = Ctx.cursor ctx ~tid:0 in
  let buf = Marked_ptr.addr (Link_persist.read_clean_c ctx cu d.bufp) in
  let cap = cap_of cu buf in
  let t = Heap.Cursor.load cu d.top in
  let rec scan i =
    if i - t >= cap then i
    else
      let v = Link_persist.read_clean_c ctx cu (slot_addr buf ~cap i) in
      let node = Marked_ptr.addr v in
      if node = 0 || read_seq cu node <> i then i else scan (i + 1)
  in
  let b = scan t in
  Heap.Cursor.store cu d.bottom b;
  Heap.Cursor.write_back cu d.bottom;
  for p = 0 to cap - 1 do
    let i = t + (((p - (t mod cap)) + cap) mod cap) in
    let live = i < b in
    if (not live) && Heap.Cursor.load cu (buf + hdr_words + p) <> 0 then begin
      Heap.Cursor.store cu (buf + hdr_words + p) 0;
      Heap.Cursor.write_back cu (buf + hdr_words + p)
    end
  done;
  Heap.Cursor.write_back cu d.top;
  Heap.Cursor.fence cu

(* Link-free rebuild: classify every allocated slot by validity word (the
   buffer header keeps an [invalid] verdict there, so buffers never pass),
   free everything, reset, re-push survivors in stamp order. Valid nodes can
   outnumber the largest capacity only when in-flight steals were cut by
   the crash — those are exactly the lowest stamps, and dropping them
   linearizes the interrupted steals as completed. Returns nodes rebuilt. *)
let rebuild_link_free ctx d =
  let tid = 0 in
  let alloc = Ctx.allocator ctx in
  let heap = Ctx.heap ctx in
  let slots = ref [] in
  List.iter
    (fun page ->
      Nvalloc.iter_allocated alloc ~tid ~page (fun addr ->
          slots := addr :: !slots))
    (Nvalloc.initialized_pages alloc ~tid);
  let survivors =
    List.filter_map
      (fun addr ->
        if Heap.load heap ~tid (addr + validity_off) = Link_free.valid then
          Some (Heap.load heap ~tid addr, Heap.load heap ~tid (addr + 1))
        else None)
      !slots
  in
  List.iter (fun addr -> Nvalloc.free alloc ~tid addr) !slots;
  Heap.fence heap ~tid;
  init_empty ctx d;
  let survivors = List.sort compare survivors in
  let n = List.length survivors in
  let drop = max 0 (n - max_cap) in
  let cu = Ctx.cursor ctx ~tid in
  List.iteri
    (fun k (_, value) -> if k >= drop then push_c ctx cu d ~value)
    survivors;
  Heap.fence heap ~tid;
  n - drop

let reset ctx d = init_empty ctx d

(** First-class [Queue_intf.deque_ops]; operations are epoch-bracketed, the
    pushed value riding the bracket's [~key] annotation. *)
let ops ctx d =
  {
    Queue_intf.name =
      "ws-deque(" ^ Persist_mode.to_string (Ctx.mode ctx) ^ ")";
    push =
      (fun ~tid ~value ->
        Ctx.with_op_c ~name:"deque.push" ~key:value ~ret:Set_intf.ret_unit ctx
          (Ctx.cursor ctx ~tid) (fun cu -> push_c ctx cu d ~value));
    pop =
      (fun ~tid ->
        Ctx.with_op_c ~name:"deque.pop" ~key:0 ~ret:Set_intf.ret_opt ctx
          (Ctx.cursor ctx ~tid) (fun cu -> pop_c ctx cu d));
    steal =
      (fun ~tid ->
        Ctx.with_op_c ~name:"deque.steal" ~key:0 ~ret:Set_intf.ret_opt ctx
          (Ctx.cursor ctx ~tid) (fun cu -> steal_c ctx cu d));
    size = (fun () -> size ctx ~tid:0 d);
  }

(** Create a fresh empty deque on root slots [root] (top), [root + 1]
    (bottom) and [root + 2] (buffer link). *)
let create ctx ~root =
  let d =
    {
      top = Ctx.root_slot ctx root;
      bottom = Ctx.root_slot ctx (root + 1);
      bufp = Ctx.root_slot ctx (root + 2);
    }
  in
  init_empty ctx d;
  d

(** Roots of an existing deque after a crash (run [recover_consistency] or
    [rebuild_link_free] next). *)
let attach ctx ~root =
  {
    top = Ctx.root_slot ctx root;
    bottom = Ctx.root_slot ctx (root + 1);
    bufp = Ctx.root_slot ctx (root + 2);
  }
