(** Durable lock-free MPMC FIFO queue: Michael & Scott's queue with the
    link-and-persist discipline layered on top, after "Durable Queues: The
    Second Amendment" (PAPERS.md).

    Persistence protocol, by flavor ([Lfds.Persist_mode]):

    - Enqueue allocates a one-line node {v +0 seq  +1 value  +2 next  +3
      validity v}, persists its contents (arrival stamp included) {e before}
      linking it with [Lfds.Link_persist.cas_link_c], so a durable link
      always has durable contents behind it. The tail root is volatile
      metadata, but it never swings past a link that is not yet durable
      (lp: the CAS fenced; nvt: the pending write-back is drained first) —
      the chain-prefix rule that keeps every acked enqueue reachable from
      the durable head.
    - Dequeue's durable linearization is the head-root swing (lp fences it,
      nvt rides the operation's covering fence, lc parks it in the link
      cache); in link-free mode the consumed node's [deleted] validity
      verdict persists instead and links are never written back.
    - Recovery for lp/lc/nvt walks the durable head chain, clears unflushed
      marks, truncates at the first arrival-stamp discontinuity and
      recomputes the tail ([recover_consistency]); link-free recovery is a
      rebuild — classify slots by validity word and re-enqueue survivors in
      stamp order ([Lfds.Recovery.rebuild_link_free] with [~ordered:true]).

    Acked operations are durable before their response in lp/nvt/lf;
    link-cache acks are buffered (a crash may lose a suffix of completed
    effects); volatile is the DRAM baseline. Operations must run inside
    [Lfds.Ctx.with_op] brackets — the exported [ops] wrapper does this. *)

type t
(** Queue handle: the head and tail root-slot addresses. *)

val size_class : int
(** Words per node (one cache line). *)

val validity_off : int
(** Offset of the validity word inside a node — the link-free rebuild's
    classification key. *)

val create : Lfds.Ctx.t -> root:int -> t
(** [create ctx ~root] builds a fresh empty queue on root slots [root]
    (head) and [root + 1] (tail), with a durably-persisted sentinel. *)

val attach : Lfds.Ctx.t -> root:int -> t
(** Roots of an existing queue after a crash; run [recover_consistency]
    (or the link-free rebuild) before operating. *)

val enqueue : Lfds.Ctx.t -> tid:int -> t -> value:int -> unit
(** Append [value] at the tail (bare operation — no epoch bracket; prefer
    [ops]). *)

val enqueue_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> t -> value:int -> unit
(** [enqueue] on a caller-supplied heap cursor (the hot path). *)

val dequeue : Lfds.Ctx.t -> tid:int -> t -> int option
(** Take the head value, or [None] on empty (bare operation). *)

val dequeue_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> t -> int option
(** [dequeue] on a caller-supplied heap cursor. *)

val ops : Lfds.Ctx.t -> t -> Queue_intf.queue_ops
(** First-class epoch-bracketed operations; the enqueued value rides the
    bracket's [~key] annotation so history recorders (Lincheck) can match
    enqueues to dequeues. *)

val iter_nodes :
  Lfds.Ctx.t -> tid:int -> t -> (int -> sentinel:bool -> unit) -> unit
(** Quiescent walk over every reachable node address, sentinel first — the
    recovery sweep's reachability source. *)

val size : Lfds.Ctx.t -> tid:int -> t -> int
(** Element count; quiescent use only. *)

val to_list : Lfds.Ctx.t -> tid:int -> t -> int list
(** Queue contents front-first; quiescent use only. *)

val recover_consistency : Lfds.Ctx.t -> t -> unit
(** Post-crash normalization for every flavor but link-free: believe the
    durable head, clear unflushed marks, truncate at the first stamp
    discontinuity, recompute the tail, one fence at the end. *)

val reset : Lfds.Ctx.t -> t -> unit
(** Durable reset to the empty queue (fresh sentinel) — the link-free
    rebuild's [reset] hook. *)
