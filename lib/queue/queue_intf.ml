(** Common runtime interface of the FIFO shapes (see the interface). *)

type queue_ops = {
  name : string;
  enqueue : tid:int -> value:int -> unit;
  dequeue : tid:int -> int option;
  size : unit -> int;
}

type deque_ops = {
  name : string;
  push : tid:int -> value:int -> unit;
  pop : tid:int -> int option;
  steal : tid:int -> int option;
  size : unit -> int;
}

let min_value = 1
let max_value = 1 lsl 48
