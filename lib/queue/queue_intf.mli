(** Common runtime interface of the FIFO shapes — the queue/deque analogue
    of [Lfds.Set_intf]: first-class records rather than functors, so the
    bench harness, the sanitizers and the crash drills drive any flavor
    through one code path.

    Values are positive integers (same convention as set values), so the
    [-1] absent code of [Lfds.Set_intf.ret_opt] cannot collide; history
    recorders see enqueue/push as [Lfds.Set_intf.ret_unit] (the value
    travels in the op's [~key] annotation) and dequeue/pop/steal as
    [ret_opt]. *)

(** A multi-producer multi-consumer FIFO queue. *)
type queue_ops = {
  name : string;
  enqueue : tid:int -> value:int -> unit;
      (** Append [value] at the tail. Total: an unbounded queue never
          refuses. *)
  dequeue : tid:int -> int option;
      (** Take the head value, or [None] on empty. *)
  size : unit -> int;  (** Element count; quiescent use only. *)
}

(** A work-stealing deque: one owner thread pushes and pops at the bottom,
    any other thread steals from the top. *)
type deque_ops = {
  name : string;
  push : tid:int -> value:int -> unit;
      (** Owner only: append at the bottom. Raises
          [Durable_deque.Deque_full] past the largest buffer size class. *)
  pop : tid:int -> int option;
      (** Owner only: take the youngest value, or [None] on empty. *)
  steal : tid:int -> int option;
      (** Any thread: take the oldest value, or [None] on empty/lost race. *)
  size : unit -> int;  (** Element count; quiescent use only. *)
}

(** User value bounds (mirrors [Lfds.Set_intf.min_key]/[max_key]). *)
val min_value : int

val max_value : int
