(** Durable lock-free MPMC FIFO queue (Michael-Scott + link-and-persist).
    See the interface for the persistence protocol; layout and idioms follow
    [Lfds.Durable_list].

    Node layout (one cache line):
    {v +0 seq   +1 value   +2 next (marked)   +3 validity   +4..7 pad v}

    [seq] is the arrival stamp: the predecessor's stamp + 1, assigned under
    the winning link CAS, so stamps along the chain are consecutive. One
    line per node means node contents are persisted atomically; the stamp
    check at recovery is defense in depth against recycled-slot masquerade
    and out-of-order link-cache flushes. *)

open Nvm
open Lfds

let size_class = Cacheline.words_per_line
let seq_of node = node
let value_of node = node + 1
let next_of node = node + 2
let validity_of node = node + 3
let validity_off = 3

type t = { head : int; tail : int }

let read_value cu node = Heap.Cursor.load cu (value_of node)
let read_seq cu node = Heap.Cursor.load cu (seq_of node)

(* Swing the tail root over a freshly linked node. The tail must never move
   past a link that is not yet durable, or a later enqueuer could append
   beyond a volatile link and ack an item recovery cannot reach (the
   chain-prefix rule): in lp the link CAS already fenced (and helpers read
   it clean), in nvt its write-back may still be pending — drain it first.
   lc acks are buffered and lf never persists links, so both swing plainly.
   The tail root itself is volatile metadata: recovery recomputes it. *)
let advance_tail ctx cu q ~t ~next =
  (match Ctx.mode ctx with
  | Persist_mode.Nvtraverse ->
      Nvtraverse.ensure_word_durable_c (Ctx.heap ctx) cu (next_of t);
      Heap.Cursor.fence cu
  | Persist_mode.Volatile | Persist_mode.Link_persist
  | Persist_mode.Link_cache | Persist_mode.Link_free ->
      ());
  ignore (Heap.Cursor.cas cu q.tail ~expected:t ~desired:next)

(* Last node of the chain, helping lagging tails forward (MS discipline).
   Helped links are made durable by [advance_tail] before the swing. *)
let rec find_tail ctx cu q =
  let t = Marked_ptr.addr (Heap.Cursor.load cu q.tail) in
  let nv = Link_persist.read_clean_c ctx cu (next_of t) in
  let next = Marked_ptr.addr nv in
  if next = 0 then t
  else begin
    advance_tail ctx cu q ~t ~next;
    find_tail ctx cu q
  end

(** [enqueue_c ctx cu q ~value] appends a node carrying [value]. *)
let enqueue_c ctx cu q ~value =
  let node = Nv_epochs.alloc_node_c (Ctx.mem ctx) cu ~size_class in
  Heap.Cursor.store cu (value_of node) value;
  Heap.Cursor.store cu (next_of node) 0;
  let rec attempt () =
    let t = find_tail ctx cu q in
    let seq = read_seq cu t + 1 in
    Heap.Cursor.store cu (seq_of node) seq;
    Link_free.init_c ctx cu ~validity_word:(validity_of node)
      ~state:Link_free.valid;
    (* Contents (stamp included) + allocator metadata reach NVRAM before
       the node is visible; a durable link therefore always has durable
       contents behind it. *)
    Link_persist.persist_node_c ctx cu ~addr:node ~size_class;
    if
      Link_persist.cas_link_c ctx cu ~key:seq ~link:(next_of t) ~expected:0
        ~desired:node
    then advance_tail ctx cu q ~t ~next:node
    else attempt ()
  in
  attempt ()

let enqueue ctx ~tid q ~value = enqueue_c ctx (Ctx.cursor ctx ~tid) q ~value

(** [dequeue_c ctx cu q] takes the head value; [None] on empty. The head
    swing is the durable linearization (lp fences it, nvt rides the op-end
    covering fence); in link-free mode the consumed node's validity verdict
    is what persists instead. *)
let rec dequeue_c ctx cu q =
  let h = Marked_ptr.addr (Link_persist.read_clean_c ctx cu q.head) in
  let nv = Link_persist.read_clean_c ctx cu (next_of h) in
  let next = Marked_ptr.addr nv in
  if next = 0 then
    (* Empty. No durability debt: a next link only ever goes 0 -> node, and
       node contents (next = 0 included) persist pre-publish, so the
       durable image of this word is 0 whenever the volatile one is. *)
    None
  else begin
    (* Keep the tail ahead of the sentinel we are about to consume. *)
    let t = Marked_ptr.addr (Heap.Cursor.load cu q.tail) in
    if t = h then advance_tail ctx cu q ~t:h ~next;
    let v = read_value cu next in
    let key = read_seq cu next in
    if
      Link_persist.cas_link_c ctx cu ~key ~link:q.head ~expected:h
        ~desired:next
    then begin
      (* Link-free: the consumption verdict, durable by our op-end fence. *)
      Link_free.mark_deleted_c ctx cu ~validity_word:(validity_of next);
      (* The old sentinel is unreachable from the durable head before any
         later op can reclaim it: our fence (cas_link's or the covering
         one) orders before reclamation, which only runs at op ends. *)
      Nv_epochs.retire_node_c (Ctx.mem ctx) cu h;
      Some v
    end
    else dequeue_c ctx cu q
  end

let dequeue ctx ~tid q = dequeue_c ctx (Ctx.cursor ctx ~tid) q

(* Quiescent traversal (tests, recovery, size). [f] sees every reachable
   node, sentinel first. *)
let iter_nodes ctx ~tid q f =
  let cu = Ctx.cursor ctx ~tid in
  let rec go node ~sentinel =
    if node <> 0 then begin
      f node ~sentinel;
      go (Marked_ptr.addr (Heap.Cursor.load cu (next_of node))) ~sentinel:false
    end
  in
  go (Marked_ptr.addr (Heap.Cursor.load cu q.head)) ~sentinel:true

let size ctx ~tid q =
  let n = ref 0 in
  iter_nodes ctx ~tid q (fun _ ~sentinel -> if not sentinel then incr n);
  !n

let to_list ctx ~tid q =
  let cu = Ctx.cursor ctx ~tid in
  let acc = ref [] in
  iter_nodes ctx ~tid q (fun node ~sentinel ->
      if not sentinel then acc := read_value cu node :: !acc);
  List.rev !acc

(* Fresh empty queue state: a dummy sentinel (stamp 0, validity invalid so a
   link-free rebuild never resurrects it) with both roots on it. Used by
   [create] and by the link-free rebuild's reset. *)
let init_empty ctx q =
  let cu = Ctx.cursor ctx ~tid:0 in
  let dummy = Nv_epochs.alloc_node_c (Ctx.mem ctx) cu ~size_class in
  Heap.Cursor.store cu (seq_of dummy) 0;
  Heap.Cursor.store cu (value_of dummy) 0;
  Heap.Cursor.store cu (next_of dummy) 0;
  Heap.Cursor.store cu (validity_of dummy) Link_free.invalid;
  Link_persist.persist_node_c ctx cu ~addr:dummy ~size_class;
  Heap.Cursor.store cu q.head dummy;
  Heap.Cursor.store cu q.tail dummy;
  Heap.Cursor.write_back cu q.head;
  Heap.Cursor.write_back cu q.tail;
  Heap.Cursor.fence cu

(* Post-crash normalization (all flavors but link-free): believe the durable
   head, clear unflushed marks along the chain, truncate at the first
   arrival-stamp discontinuity (a link whose target is not predecessor + 1
   can only be a recycled-slot masquerade or an out-of-order link-cache
   flush), and recompute the tail as the last chain node. *)
let recover_consistency ctx q =
  let cu = Ctx.cursor ctx ~tid:0 in
  let clean link =
    let v = Heap.Cursor.load cu link in
    if Marked_ptr.is_unflushed v then begin
      let c = Marked_ptr.clear_unflushed v in
      Heap.Cursor.store cu link c;
      Heap.Cursor.write_back cu link;
      c
    end
    else v
  in
  let h = Marked_ptr.addr (clean q.head) in
  let rec walk prev =
    let node = Marked_ptr.addr (clean (next_of prev)) in
    if node = 0 then prev
    else if read_seq cu node <> read_seq cu prev + 1 then begin
      Heap.Cursor.store cu (next_of prev) 0;
      Heap.Cursor.write_back cu (next_of prev);
      prev
    end
    else walk node
  in
  let last = walk h in
  Heap.Cursor.store cu q.tail last;
  Heap.Cursor.write_back cu q.tail;
  Heap.Cursor.fence cu

(* Link-free rebuild support: reset to empty (fresh sentinel); survivors are
   re-enqueued by [Lfds.Recovery.rebuild_link_free ~ordered:true], sorted by
   their stamp word. *)
let reset ctx q = init_empty ctx q

(** First-class [Queue_intf.queue_ops]; operations are epoch-bracketed, with
    the enqueued value carried in the bracket's [~key] annotation so history
    recorders can match enqueues to dequeues. *)
let ops ctx q =
  {
    Queue_intf.name =
      "mpmc-queue(" ^ Persist_mode.to_string (Ctx.mode ctx) ^ ")";
    enqueue =
      (fun ~tid ~value ->
        Ctx.with_op_c ~name:"queue.enqueue" ~key:value ~ret:Set_intf.ret_unit
          ctx (Ctx.cursor ctx ~tid) (fun cu -> enqueue_c ctx cu q ~value));
    dequeue =
      (fun ~tid ->
        Ctx.with_op_c ~name:"queue.dequeue" ~key:0 ~ret:Set_intf.ret_opt ctx
          (Ctx.cursor ctx ~tid) (fun cu -> dequeue_c ctx cu q));
    size = (fun () -> size ctx ~tid:0 q);
  }

(** Create a fresh empty queue on root slots [root] (head) and [root + 1]
    (tail). *)
let create ctx ~root =
  let q =
    { head = Ctx.root_slot ctx root; tail = Ctx.root_slot ctx (root + 1) }
  in
  init_empty ctx q;
  q

(** Roots of an existing queue after a crash (run [recover_consistency] or
    the link-free rebuild next). *)
let attach ctx ~root =
  { head = Ctx.root_slot ctx root; tail = Ctx.root_slot ctx (root + 1) }
