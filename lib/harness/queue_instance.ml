(** Uniform construction and crash-recovery of the FIFO-shape
    configurations — the queue/deque analogue of [Instance]: a structure
    (MPMC queue or work-stealing deque) x a persist flavor, its context,
    and the hooks benchmarks, sanitizers and crash drills need. Creation
    and recovery share the layout carving code, so addresses always
    agree.

    Flavors reuse [Instance.flavor]; the log-based WAL baseline has no
    queue counterpart and is rejected at [create]. *)

open Nvm

type structure = Mpmc | Deque

let structure_name = function Mpmc -> "mpmc-queue" | Deque -> "ws-deque"
let all_structures = [ Mpmc; Deque ]

let structure_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "mpmc" | "queue" | "mpmc-queue" | "fifo" -> Ok Mpmc
  | "deque" | "ws-deque" | "chase-lev" -> Ok Deque
  | s ->
      Error (Printf.sprintf "unknown queue structure %S (expected mpmc|deque)" s)

(* The built shape: handle + first-class ops, kept together so the uniform
   drivers below can dispatch without re-deriving either. *)
type shape =
  | Q of Nvqueue.Durable_queue.t * Nvqueue.Queue_intf.queue_ops
  | D of Nvqueue.Durable_deque.t * Nvqueue.Queue_intf.deque_ops

type t = {
  structure : structure;
  flavor : Instance.flavor;
  cfg : Lfds.Ctx.config;
  ctx : Lfds.Ctx.t;
  shape : shape;
}

(* Heap sizing: one cache line per item plus slack for deque buffers,
   recycled-slot churn and the static areas. *)
let default_heap_words ~size =
  let nodes = max 1024 (4 * size) in
  Nvm.Cacheline.align_up ((nodes * 16) + (1 lsl 18))

let config ?(nthreads = 1) ?(size_hint = 1024) ?latency
    ?(mem_mode = Lfds.Nv_epochs.Nv) ?(lc_buckets = 32) ?(page_words = 512)
    ?(apt_entries = 1024) ?(trim_threshold = 64) ?heap_words ~flavor () =
  let latency =
    match latency with Some l -> l | None -> Latency_model.no_injection ()
  in
  let size_words =
    match heap_words with
    | Some w -> w
    | None -> default_heap_words ~size:size_hint
  in
  {
    (Lfds.Ctx.default_config ()) with
    size_words;
    nthreads;
    mode = Instance.mode_of_flavor flavor;
    mem_mode;
    latency;
    lc_buckets;
    page_words;
    apt_entries;
    trim_threshold;
    (* FIFO shapes live entirely in root slots + allocated nodes; no static
       carves, so keep the region minimal (small heaps enumerate crashes). *)
    static_words = Nvm.Cacheline.align_up 512;
  }

(* Build the shape inside an existing context; [fresh] distinguishes create
   from attach. Returns the shape and its recovery hook. *)
let build_in ~structure ~flavor ~fresh ctx =
  match structure with
  | Mpmc ->
      let q =
        if fresh then Nvqueue.Durable_queue.create ctx ~root:0
        else Nvqueue.Durable_queue.attach ctx ~root:0
      in
      let ops = Nvqueue.Durable_queue.ops ctx q in
      let recover =
        if flavor = Instance.Lf then fun () ->
          (* FIFO rebuild must respect arrival order: survivors sorted by
             their stamp word before re-enqueueing. *)
          ignore
            (Lfds.Recovery.rebuild_link_free ctx ~ordered:true
               ~validity_off:Nvqueue.Durable_queue.validity_off
               ~reset:(fun () -> Nvqueue.Durable_queue.reset ctx q)
               ~insert:(fun ~key:_ ~value ->
                 Nvqueue.Durable_queue.enqueue ctx ~tid:0 q ~value))
        else fun () -> Nvqueue.Durable_queue.recover_consistency ctx q
      in
      (Q (q, ops), recover)
  | Deque ->
      let d =
        if fresh then Nvqueue.Durable_deque.create ctx ~root:0
        else Nvqueue.Durable_deque.attach ctx ~root:0
      in
      let ops = Nvqueue.Durable_deque.ops ctx d in
      let recover =
        if flavor = Instance.Lf then fun () ->
          ignore (Nvqueue.Durable_deque.rebuild_link_free ctx d)
        else fun () -> Nvqueue.Durable_deque.recover_consistency ctx d
      in
      (D (d, ops), recover)

let create ?nthreads ?size_hint ?latency ?mem_mode ?lc_buckets ?page_words
    ?apt_entries ?trim_threshold ?heap_words ~structure ~flavor () =
  if flavor = Instance.Log then
    invalid_arg "Queue_instance.create: no log-based queue baseline";
  let cfg =
    config ?nthreads ?size_hint ?latency ?mem_mode ?lc_buckets ?page_words
      ?apt_entries ?trim_threshold ?heap_words ~flavor ()
  in
  let ctx = Lfds.Ctx.create cfg in
  let shape, _recover = build_in ~structure ~flavor ~fresh:true ctx in
  { structure; flavor; cfg; ctx; shape }

(* Uniform drivers: [put]/[take] are the producer/consumer pair of either
   shape ([take] is owner-side pop on a deque); [steal] is the
   any-thread consumption path (plain dequeue on a queue). *)
let name t = match t.shape with Q (_, o) -> o.name | D (_, o) -> o.name
let put t ~tid ~value =
  match t.shape with
  | Q (_, o) -> o.enqueue ~tid ~value
  | D (_, o) -> o.push ~tid ~value

let take t ~tid =
  match t.shape with Q (_, o) -> o.dequeue ~tid | D (_, o) -> o.pop ~tid

let steal t ~tid =
  match t.shape with Q (_, o) -> o.dequeue ~tid | D (_, o) -> o.steal ~tid

let size t = match t.shape with Q (_, o) -> o.size () | D (_, o) -> o.size ()

let to_list t =
  match t.shape with
  | Q (q, _) -> Nvqueue.Durable_queue.to_list t.ctx ~tid:0 q
  | D (d, _) -> Nvqueue.Durable_deque.to_list t.ctx ~tid:0 d

(* Consume everything oldest-first (dequeue-all / steal-all), through the
   epoch-bracketed ops so recorders see the drain. *)
let drain t ~tid =
  let rec go acc =
    match steal t ~tid with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []

(* Root words carrying raw integer indices (deque top/bottom) — sanitizers
   must not read their CASes as mark-protocol traffic. *)
let index_words t =
  match t.shape with
  | Q _ -> []
  | D (d, _) -> Nvqueue.Durable_deque.index_words d

let iter_reachable t f =
  match t.shape with
  | Q (q, _) ->
      Nvqueue.Durable_queue.iter_nodes t.ctx ~tid:0 q (fun n ~sentinel:_ ->
          f n)
  | D (d, _) -> Nvqueue.Durable_deque.iter_nodes t.ctx ~tid:0 d f

(** Recover a heap that has already crashed (caller chose the eviction
    outcome): re-attach the layout, restore shape consistency, sweep the
    active pages for leaks. Returns the new instance, the recovery time in
    seconds and the number of leaked nodes freed. *)
let recover_only t =
  let t0 = Unix.gettimeofday () in
  let ctx, active = Lfds.Ctx.recover (Lfds.Ctx.heap t.ctx) t.cfg in
  let shape, recover_structure =
    build_in ~structure:t.structure ~flavor:t.flavor ~fresh:false ctx
  in
  recover_structure ();
  let t' = { t with ctx; shape } in
  (* The link-free rebuild freed every slot itself; others sweep. *)
  let freed =
    match t.flavor with
    | Instance.Lf -> 0
    | _ ->
        Lfds.Recovery.sweep_traversal ctx ~active_pages:active
          ~iter:(fun f -> iter_reachable t' f)
  in
  let dt = Unix.gettimeofday () -. t0 in
  (t', dt, freed)

(** Power-fail the heap (random evictions) and fully recover. *)
let crash_and_recover ?(seed = 0xDEAD) ?(eviction_probability = 0.5) t =
  Heap.crash (Lfds.Ctx.heap t.ctx) ~seed ~eviction_probability;
  recover_only t
