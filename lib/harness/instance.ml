(** Uniform construction and recovery of every benchmarked configuration.

    An [Instance.t] bundles a data structure (one of the four types), a
    flavor (volatile / link-and-persist / link-cache / log-based), its
    context, and the hooks the benchmark and test harnesses need: crash
    recovery, reachability iteration (for leak sweeps) and key location
    (for search-based sweeps). Creating and recovering go through the same
    code paths, so the layout carves always agree. *)

open Nvm

type structure = List | Hash | Skiplist | Bst

let structure_name = function
  | List -> "linked-list"
  | Hash -> "hash-table"
  | Skiplist -> "skip-list"
  | Bst -> "bst"

let all_structures = [ Hash; Skiplist; List; Bst ]

type flavor = Volatile | Lp | Lc | Nvt | Lf | Log

let flavor_name = function
  | Volatile -> "volatile"
  | Lp -> "link-persist"
  | Lc -> "link-cache"
  | Nvt -> "nvtraverse"
  | Lf -> "link-free"
  | Log -> "log-based"

let all_flavors = [ Volatile; Lp; Lc; Nvt; Lf; Log ]

(* Canonical flavor parser: Persist_mode's spellings plus the log-based
   baseline. Every CLI surface (bench, sanitize, serve) goes through here
   or [Persist_mode.of_string] — no ad-hoc parsers. *)
let flavor_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "log" | "log-based" | "wal" -> Ok Log
  | s -> (
      match Lfds.Persist_mode.of_string s with
      | Ok Lfds.Persist_mode.Volatile -> Ok Volatile
      | Ok Lfds.Persist_mode.Link_persist -> Ok Lp
      | Ok Lfds.Persist_mode.Link_cache -> Ok Lc
      | Ok Lfds.Persist_mode.Nvtraverse -> Ok Nvt
      | Ok Lfds.Persist_mode.Link_free -> Ok Lf
      | Error _ ->
          Error
            (Printf.sprintf
               "unknown flavor %S (expected volatile|lp|lc|nvt|lf|log)" s))

type t = {
  structure : structure;
  flavor : flavor;
  cfg : Lfds.Ctx.config;
  ctx : Lfds.Ctx.t;
  ops : Lfds.Set_intf.ops;
  iter_reachable : (int -> unit) -> unit;
  locate : key:int -> int option;
  hash_buckets : int;
  skiplist_levels : int;
  wal_mode : Baseline.Wal.sync_mode;
}

(* Heap sizing: static areas plus generous node space (skip-list nodes
   average ~2 cache lines; churn keeps recycled slots in play). *)
let default_heap_words ~structure ~size =
  let per_node =
    match structure with
    | List | Hash | Bst -> 24
    | Skiplist -> 40
  in
  let nodes = max 1024 (4 * size) in
  Cacheline.align_up ((nodes * per_node) + (1 lsl 18))

let default_buckets ~size = max 16 (Cacheline.align_up (max 16 (size / 4)))

let mode_of_flavor = function
  | Volatile -> Lfds.Persist_mode.Volatile
  | Lp | Log -> Lfds.Persist_mode.Link_persist
  | Lc -> Lfds.Persist_mode.Link_cache
  | Nvt -> Lfds.Persist_mode.Nvtraverse
  | Lf -> Lfds.Persist_mode.Link_free

let config ?(nthreads = 1) ?(size_hint = 1024) ?latency ?(mem_mode = Lfds.Nv_epochs.Nv)
    ?(lc_buckets = 32) ?(page_words = 512) ?(apt_entries = 1024)
    ?(trim_threshold = 64) ?heap_words ~structure ~flavor () =
  let latency =
    match latency with Some l -> l | None -> Latency_model.no_injection ()
  in
  let size_words =
    match heap_words with
    | Some w -> w
    | None -> default_heap_words ~structure ~size:size_hint
  in
  {
    (Lfds.Ctx.default_config ()) with
    size_words;
    nthreads;
    mode = mode_of_flavor flavor;
    mem_mode;
    latency;
    lc_buckets;
    page_words;
    apt_entries;
    trim_threshold;
    static_words = Cacheline.align_up ((4 * default_buckets ~size:size_hint) + 8192);
  }

(* Build the structure inside an existing context. [fresh] distinguishes
   create from attach; carve order is identical either way. *)
let build_in ~structure ~flavor ~cfg:_ ~hash_buckets ~skiplist_levels ~wal_mode
    ~fresh ctx =
  (* Link-free recovery is a rebuild, not a normalization: classify every
     allocated slot by its validity word, reset the structure, reinsert the
     valid pairs through the structure's own insert. *)
  let lf_rebuild ctx ~validity_off ~reset ops () =
    ignore
      (Lfds.Recovery.rebuild_link_free ctx ~validity_off ~reset
         ~insert:(fun ~key ~value ->
           ignore (ops.Lfds.Set_intf.insert ~tid:0 ~key ~value)))
  in
  match flavor with
  | Volatile | Lp | Lc | Nvt | Lf -> (
      match structure with
      | List ->
          let head =
            if fresh then Lfds.Durable_list.create ctx ~root:0
            else Lfds.Durable_list.attach ctx ~root:0
          in
          let ops = Lfds.Durable_list.ops ctx ~head in
          let iter f =
            Lfds.Durable_list.iter_nodes ctx ~tid:0 ~head (fun n ~deleted:_ -> f n)
          in
          let locate ~key =
            let found = ref None in
            Lfds.Durable_list.iter_nodes ctx ~tid:0 ~head (fun n ~deleted ->
                if
                  (not deleted)
                  && Heap.load (Lfds.Ctx.heap ctx) ~tid:0 n = key
                then found := Some n);
            !found
          in
          let recover =
            if flavor = Lf then
              lf_rebuild ctx ~validity_off:Lfds.Durable_list.validity_off
                ~reset:(fun () -> Lfds.Durable_list.reset ctx ~head)
                ops
            else fun () -> Lfds.Durable_list.recover_consistency ctx ~head
          in
          (ops, iter, locate, recover)
      | Hash ->
          let t =
            if fresh then Lfds.Durable_hash.create ctx ~nbuckets:hash_buckets
            else Lfds.Durable_hash.attach ctx ~nbuckets:hash_buckets
          in
          let ops = Lfds.Durable_hash.ops ctx t in
          let iter f = Lfds.Durable_hash.iter_nodes ctx t (fun n ~deleted:_ -> f n) in
          let locate ~key =
            let found = ref None in
            Lfds.Durable_hash.iter_nodes ctx t (fun n ~deleted ->
                if
                  (not deleted)
                  && Heap.load (Lfds.Ctx.heap ctx) ~tid:0 n = key
                then found := Some n);
            !found
          in
          let recover =
            if flavor = Lf then
              lf_rebuild ctx ~validity_off:Lfds.Durable_hash.validity_off
                ~reset:(fun () -> Lfds.Durable_hash.reset ctx t)
                ops
            else fun () -> Lfds.Durable_hash.recover_consistency ctx t
          in
          (ops, iter, locate, recover)
      | Skiplist ->
          let t =
            if fresh then Lfds.Durable_skiplist.create ctx ~max_level:skiplist_levels ()
            else Lfds.Durable_skiplist.attach ctx ~max_level:skiplist_levels ()
          in
          let ops = Lfds.Durable_skiplist.ops ctx t in
          let iter f =
            Lfds.Durable_skiplist.iter_nodes ctx ~tid:0 t (fun n ~deleted:_ -> f n)
          in
          let locate ~key =
            let found = ref None in
            Lfds.Durable_skiplist.iter_nodes ctx ~tid:0 t (fun n ~deleted ->
                if
                  (not deleted)
                  && Heap.load (Lfds.Ctx.heap ctx) ~tid:0 n = key
                then found := Some n);
            !found
          in
          let recover =
            if flavor = Lf then
              lf_rebuild ctx ~validity_off:Lfds.Durable_skiplist.validity_off
                ~reset:(fun () -> Lfds.Durable_skiplist.reset ctx t)
                ops
            else fun () -> Lfds.Durable_skiplist.recover_consistency ctx t
          in
          (ops, iter, locate, recover)
      | Bst ->
          let t =
            if fresh then Lfds.Durable_bst.create ctx else Lfds.Durable_bst.attach ctx
          in
          let ops = Lfds.Durable_bst.ops ctx t in
          (* Reachability must include interior nodes; the sweep filters the
             static sentinels out by address. *)
          let iter f = Lfds.Durable_bst.iter_all_nodes ctx ~tid:0 t f in
          let locate ~key:_ = None in
          let recover =
            if flavor = Lf then
              lf_rebuild ctx ~validity_off:Lfds.Durable_bst.validity_off
                ~reset:(fun () -> Lfds.Durable_bst.reset ctx t)
                ops
            else fun () -> Lfds.Durable_bst.recover_consistency ctx t
          in
          (ops, iter, locate, recover))
  | Log -> (
      let wal =
        if fresh then Baseline.Wal.create ctx ~sync_mode:wal_mode ()
        else Baseline.Wal.attach ctx ~sync_mode:wal_mode ()
      in
      let recover_wal () = Baseline.Wal.recover wal in
      match structure with
      | List ->
          let head =
            if fresh then Baseline.Log_list.create ctx else Baseline.Log_list.attach ctx
          in
          let ops = Baseline.Log_list.ops ctx wal ~head in
          let iter f =
            Baseline.Log_list.iter_nodes ctx ~tid:0 ~head (fun n ~deleted:_ -> f n)
          in
          ( ops,
            iter,
            (fun ~key:_ -> None),
            fun () ->
              recover_wal ();
              Baseline.Log_list.recover_consistency ctx ~head )
      | Hash ->
          let t =
            if fresh then Baseline.Log_hash.create ctx ~nbuckets:hash_buckets
            else Baseline.Log_hash.attach ctx ~nbuckets:hash_buckets
          in
          let ops = Baseline.Log_hash.ops ctx wal t in
          let iter f = Baseline.Log_hash.iter_nodes ctx t (fun n ~deleted:_ -> f n) in
          ( ops,
            iter,
            (fun ~key:_ -> None),
            fun () ->
              recover_wal ();
              Baseline.Log_hash.recover_consistency ctx t )
      | Skiplist ->
          let t =
            if fresh then Baseline.Log_skiplist.create ctx ~max_level:skiplist_levels ()
            else Baseline.Log_skiplist.attach ctx ~max_level:skiplist_levels ()
          in
          let ops = Baseline.Log_skiplist.ops ctx wal t in
          let iter f =
            Baseline.Log_skiplist.iter_nodes ctx ~tid:0 t (fun n ~deleted:_ -> f n)
          in
          ( ops,
            iter,
            (fun ~key:_ -> None),
            fun () ->
              recover_wal ();
              Baseline.Log_skiplist.recover_consistency ctx t )
      | Bst ->
          let t =
            if fresh then Baseline.Log_bst.create ctx else Baseline.Log_bst.attach ctx
          in
          let ops = Baseline.Log_bst.ops ctx wal t in
          let iter f = Baseline.Log_bst.iter_nodes ctx ~tid:0 t (fun n ~leaf:_ -> f n) in
          ( ops,
            iter,
            (fun ~key:_ -> None),
            fun () ->
              recover_wal ();
              Baseline.Log_bst.recover_consistency ctx t ))

let create ?nthreads ?size_hint ?latency ?mem_mode ?lc_buckets ?page_words
    ?apt_entries ?trim_threshold ?heap_words ?(skiplist_levels = 16)
    ?(wal_mode = Baseline.Wal.Eager) ?hash_buckets ~structure ~flavor () =
  let size_hint = Option.value size_hint ~default:1024 in
  let cfg =
    config ?nthreads ~size_hint ?latency ?mem_mode ?lc_buckets ?page_words
      ?apt_entries ?trim_threshold ?heap_words ~structure ~flavor ()
  in
  let hash_buckets =
    Option.value hash_buckets ~default:(default_buckets ~size:size_hint)
  in
  let ctx = Lfds.Ctx.create cfg in
  let ops, iter_reachable, locate, _recover =
    build_in ~structure ~flavor ~cfg ~hash_buckets ~skiplist_levels ~wal_mode
      ~fresh:true ctx
  in
  {
    structure;
    flavor;
    cfg;
    ctx;
    ops;
    iter_reachable;
    locate;
    hash_buckets;
    skiplist_levels;
    wal_mode;
  }

(** Recover a heap that has already crashed — the caller chose the eviction
    outcome ([Heap.crash], [Heap.crash_with], or a restored snapshot):
    re-attach layout, restore structure consistency, roll back the WAL for
    log-based flavors, and sweep active pages for leaks. Returns the new
    instance, the recovery time in seconds and the number of leaked nodes
    freed. *)
let recover_only t =
  let t0 = Unix.gettimeofday () in
  let ctx, active = Lfds.Ctx.recover (Lfds.Ctx.heap t.ctx) t.cfg in
  let ops, iter_reachable, locate, recover_structure =
    build_in ~structure:t.structure ~flavor:t.flavor ~cfg:t.cfg
      ~hash_buckets:t.hash_buckets ~skiplist_levels:t.skiplist_levels
      ~wal_mode:t.wal_mode ~fresh:false ctx
  in
  recover_structure ();
  (* The link-free rebuild already freed every slot and reinserted the
     survivors — nothing allocated is unreachable, so the leak sweep is
     skipped (its cost is already inside the rebuild's timing). *)
  let freed =
    match t.flavor with
    | Lf -> 0
    | Volatile | Lp | Lc | Nvt | Log ->
        Lfds.Recovery.sweep_traversal ctx ~active_pages:active
          ~iter:iter_reachable
  in
  let dt = Unix.gettimeofday () -. t0 in
  ({ t with ctx; ops; iter_reachable; locate }, dt, freed)

(** Crash the heap (power failure at this instant, random evictions) and
    fully recover. *)
let crash_and_recover ?(seed = 0xDEAD) ?(eviction_probability = 0.5) t =
  Heap.crash (Lfds.Ctx.heap t.ctx) ~seed ~eviction_probability;
  recover_only t
