(** Uniform construction and crash-recovery of the FIFO-shape
    configurations — the queue/deque analogue of {!Instance}. Flavors
    reuse [Instance.flavor]; the log-based WAL baseline has no queue
    counterpart and is rejected at [create]. *)

(** The two FIFO shapes: durable MPMC Michael-Scott queue, durable
    Chase-Lev work-stealing deque. *)
type structure = Mpmc | Deque

(** Short name used in reports and CLI arguments ("mpmc-queue",
    "ws-deque"). *)
val structure_name : structure -> string

(** Both, in bench order. *)
val all_structures : structure list

(** CLI parser: [mpmc]/[queue]/[fifo] and [deque]/[ws-deque]/[chase-lev]. *)
val structure_of_string : string -> (structure, string) result

(** The built shape: handle plus first-class epoch-bracketed ops. *)
type shape =
  | Q of Nvqueue.Durable_queue.t * Nvqueue.Queue_intf.queue_ops
  | D of Nvqueue.Durable_deque.t * Nvqueue.Queue_intf.deque_ops

(** One built configuration and everything needed to drive or recover it. *)
type t = {
  structure : structure;
  flavor : Instance.flavor;
  cfg : Lfds.Ctx.config;
  ctx : Lfds.Ctx.t;
  shape : shape;
}

(** Build a fresh instance. [size_hint] drives heap sizing; knobs mirror
    [Lfds.Ctx.config]. Raises [Invalid_argument] on [Instance.Log]. *)
val create :
  ?nthreads:int ->
  ?size_hint:int ->
  ?latency:Nvm.Latency_model.t ->
  ?mem_mode:Lfds.Nv_epochs.mem_mode ->
  ?lc_buckets:int ->
  ?page_words:int ->
  ?apt_entries:int ->
  ?trim_threshold:int ->
  ?heap_words:int ->
  structure:structure ->
  flavor:Instance.flavor ->
  unit ->
  t

val name : t -> string
(** Display name of the built shape, flavor included. *)

val put : t -> tid:int -> value:int -> unit
(** Producer op: enqueue / owner push. *)

val take : t -> tid:int -> int option
(** Consumer op at the structure's primary end: dequeue / owner pop. *)

val steal : t -> tid:int -> int option
(** Any-thread consumption: dequeue on a queue, steal on a deque. *)

val size : t -> int
(** Element count; quiescent use only. *)

val to_list : t -> int list
(** Contents oldest-first; quiescent use only. *)

val drain : t -> tid:int -> int list
(** Consume everything oldest-first through the bracketed ops (dequeue-all
    / steal-all); quiescent producers assumed. *)

val index_words : t -> int list
(** Root words holding raw monotonic indices (deque [top]/[bottom]; empty
    for the queue). Sanitizers must exempt them from mark-protocol
    interpretation ([Sanitizer.Nvsan.declare_index_word]). *)

val iter_reachable : t -> (int -> unit) -> unit
(** Every reachable allocation (nodes, deque buffer) — the recovery
    sweep's reachability source. *)

val recover_only : t -> t * float * int
(** Recover a heap that has already crashed — the caller chose the
    eviction outcome: re-attach the layout, restore shape consistency
    (stamp-scan normalization, or the link-free rebuild), sweep active
    pages. Returns the recovered instance, the recovery time in seconds
    and the number of leaked nodes freed. *)

val crash_and_recover :
  ?seed:int -> ?eviction_probability:float -> t -> t * float * int
(** Power-fail the heap (random evictions) and fully recover. *)
