(** Uniform construction and crash-recovery of every benchmarked
    configuration: a data structure type x a flavor, its context, and the
    hooks benchmarks and tests need. Creation and recovery share the layout
    carving code, so addresses always agree. *)

type structure = List | Hash | Skiplist | Bst

val structure_name : structure -> string
val all_structures : structure list

type flavor =
  | Volatile  (** no flushes (DRAM baseline) *)
  | Lp  (** link-and-persist *)
  | Lc  (** link cache *)
  | Log  (** lock-based algorithm + write-ahead log *)

val flavor_name : flavor -> string

type t = {
  structure : structure;
  flavor : flavor;
  cfg : Lfds.Ctx.config;
  ctx : Lfds.Ctx.t;
  ops : Lfds.Set_intf.ops;
  iter_reachable : (int -> unit) -> unit;
      (** every reachable node address (interior nodes included) *)
  locate : key:int -> int option;
      (** node address holding a key, for search-based sweeps *)
  hash_buckets : int;
  skiplist_levels : int;
  wal_mode : Baseline.Wal.sync_mode;
}

(** Build a fresh instance. [size_hint] drives heap sizing and bucket
    counts; [latency] defaults to no injection; remaining knobs mirror
    [Lfds.Ctx.config]. *)
val create :
  ?nthreads:int ->
  ?size_hint:int ->
  ?latency:Nvm.Latency_model.t ->
  ?mem_mode:Lfds.Nv_epochs.mem_mode ->
  ?lc_buckets:int ->
  ?page_words:int ->
  ?apt_entries:int ->
  ?trim_threshold:int ->
  ?heap_words:int ->
  ?skiplist_levels:int ->
  ?wal_mode:Baseline.Wal.sync_mode ->
  ?hash_buckets:int ->
  structure:structure ->
  flavor:flavor ->
  unit ->
  t

(** Recover a heap that has already crashed — the caller chose the eviction
    outcome ([Nvm.Heap.crash], [Nvm.Heap.crash_with], or a restored
    snapshot): re-attach the layout, restore structure consistency (rolling
    back the WAL for log-based flavors) and sweep the active pages. Returns
    the recovered instance, the recovery time in seconds and the number of
    leaked nodes freed. *)
val recover_only : t -> t * float * int

(** Power-fail the heap (random evictions) and fully recover; same result
    triple as [recover_only], crash time excluded. *)
val crash_and_recover :
  ?seed:int -> ?eviction_probability:float -> t -> t * float * int
