(** Uniform construction and crash-recovery of every benchmarked
    configuration: a data structure type x a flavor, its context, and the
    hooks benchmarks and tests need. Creation and recovery share the layout
    carving code, so addresses always agree. *)

(** The four paper structures: Harris linked list, hash table of Harris
    lists, Herlihy–Shavit skip list, Natarajan–Mittal BST. *)
type structure = List | Hash | Skiplist | Bst

(** Short name used in reports and CLI arguments ("linked-list",
    "hash-table", "skip-list", "bst"). *)
val structure_name : structure -> string

(** All four, in the order benchmarks iterate them. *)
val all_structures : structure list

type flavor =
  | Volatile  (** no flushes (DRAM baseline) *)
  | Lp  (** link-and-persist *)
  | Lc  (** link cache *)
  | Nvt  (** NVTraverse: fence-free traversal, covering fence per op *)
  | Lf  (** link-free: validity words, links never persisted *)
  | Log  (** lock-based algorithm + write-ahead log *)

(** Short name used in reports and CLI arguments ("volatile",
    "link-persist", "link-cache", "nvtraverse", "link-free", "log-based"). *)
val flavor_name : flavor -> string

(** All six, in shootout order. *)
val all_flavors : flavor list

(** The canonical CLI flavor parser: every [Persist_mode.of_string]
    spelling plus [log]/[log-based]/[wal] for the WAL baseline. *)
val flavor_of_string : string -> (flavor, string) result

(** Persist mode a flavor runs under (Log uses link-and-persist plumbing). *)
val mode_of_flavor : flavor -> Lfds.Persist_mode.t

(** One built configuration and everything needed to drive or recover it. *)
type t = {
  structure : structure;
  flavor : flavor;
  cfg : Lfds.Ctx.config;  (** the config the context was created with *)
  ctx : Lfds.Ctx.t;  (** the live context (heap, epochs, link cache) *)
  ops : Lfds.Set_intf.ops;  (** insert/remove/search entry points *)
  iter_reachable : (int -> unit) -> unit;
      (** every reachable node address (interior nodes included) *)
  locate : key:int -> int option;
      (** node address holding a key, for search-based sweeps *)
  hash_buckets : int;  (** bucket count used (hash structure only) *)
  skiplist_levels : int;  (** level count used (skip list only) *)
  wal_mode : Baseline.Wal.sync_mode;  (** log sync policy (Log flavor only) *)
}

(** Build a fresh instance. [size_hint] drives heap sizing and bucket
    counts; [latency] defaults to no injection; remaining knobs mirror
    [Lfds.Ctx.config]. *)
val create :
  ?nthreads:int ->
  ?size_hint:int ->
  ?latency:Nvm.Latency_model.t ->
  ?mem_mode:Lfds.Nv_epochs.mem_mode ->
  ?lc_buckets:int ->
  ?page_words:int ->
  ?apt_entries:int ->
  ?trim_threshold:int ->
  ?heap_words:int ->
  ?skiplist_levels:int ->
  ?wal_mode:Baseline.Wal.sync_mode ->
  ?hash_buckets:int ->
  structure:structure ->
  flavor:flavor ->
  unit ->
  t

(** Recover a heap that has already crashed — the caller chose the eviction
    outcome ([Nvm.Heap.crash], [Nvm.Heap.crash_with], or a restored
    snapshot): re-attach the layout, restore structure consistency (rolling
    back the WAL for log-based flavors) and sweep the active pages. Returns
    the recovered instance, the recovery time in seconds and the number of
    leaked nodes freed. *)
val recover_only : t -> t * float * int

(** Power-fail the heap (random evictions) and fully recover; same result
    triple as [recover_only], crash time excluded. *)
val crash_and_recover :
  ?seed:int -> ?eviction_probability:float -> t -> t * float * int
