(** Calibration of the injected NVRAM latency to the simulated machine.

    The paper's cost model (Table 1) has an NVRAM write cost 62.5x an
    L1 load (125 ns vs 2 ns). A load on the simulated heap costs more than a
    real L1 hit (array access, statistics, bounds checks), so injecting a
    literal 125 ns would understate the relative price of sync operations.
    [write_ns] measures the simulated load cost once and scales the injected
    write latency to preserve the paper's ratio. Pass an explicit
    [--write-ns] to the bench harness to bypass this. *)

open Nvm

let paper_write_to_load_ratio = 62.5

let measured_load_ns : float Lazy.t =
  lazy
    (let heap = Heap.create ~latency:(Latency_model.no_injection ()) ~size_words:4096 () in
     let cu = Heap.cursor heap ~tid:0 in
     let n = 200_000 in
     let acc = ref 0 in
     let t0 = Unix.gettimeofday () in
     for i = 1 to n do
       acc := !acc + Heap.Cursor.load cu (i land 1023)
     done;
     ignore (Sys.opaque_identity !acc);
     (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9)

(** Injected NVRAM write latency (ns) that keeps the paper's write:load
    cost ratio on this machine's simulated heap. *)
let write_ns () =
  int_of_float (Lazy.force measured_load_ns *. paper_write_to_load_ratio)

let load_ns () = Lazy.force measured_load_ns
