(** Log-based durable BST: a lock-based external tree in the style of bst-tk
    [ASPLOS'15], with write-ahead logging.

    Same external-tree shape and sentinels as the log-free BST. Updates take
    per-node spinlocks on the one or two ancestors they rewrite, validate
    reachability, and mutate in place through the log. Searches are unlocked.

    Node layout (one cache line):
    {v +0 key +1 value +2 left +3 right +4 lock +5 removed +6..7 pad v} *)

open Nvm

type t = { r : int; s : int }

let size_class = Cacheline.words_per_line
let key_of node = node
let value_of node = node + 1
let left_of node = node + 2
let right_of node = node + 3
let lock_of node = node + 4
let removed_of node = node + 5
let inf0 = Lfds.Set_intf.max_key + 1
let inf1 = Lfds.Set_intf.max_key + 2
let inf2 = Lfds.Set_intf.max_key + 3

let read_key cu node = Heap.Cursor.load cu (key_of node)

let child_link cu node k =
  if k < read_key cu node then left_of node else right_of node

let sibling_link cu node k =
  if k < read_key cu node then right_of node else left_of node

let is_leaf cu node = Heap.Cursor.load cu (left_of node) = 0
let is_removed cu node = Heap.Cursor.load cu (removed_of node) <> 0

let init_node cu node ~key ~left ~right =
  Heap.Cursor.store cu (key_of node) key;
  Heap.Cursor.store cu (value_of node) 0;
  Heap.Cursor.store cu (left_of node) left;
  Heap.Cursor.store cu (right_of node) right;
  Heap.Cursor.store cu (lock_of node) 0;
  Heap.Cursor.store cu (removed_of node) 0;
  Heap.Cursor.write_back cu node

let create ctx =
  let base = Lfds.Ctx.carve_static ctx (5 * size_class) in
  let r = base
  and s = base + size_class
  and l0 = base + (2 * size_class)
  and l1 = base + (3 * size_class)
  and l2 = base + (4 * size_class) in
  let cu = Lfds.Ctx.cursor ctx ~tid:0 in
  init_node cu l0 ~key:inf0 ~left:0 ~right:0;
  init_node cu l1 ~key:inf1 ~left:0 ~right:0;
  init_node cu l2 ~key:inf2 ~left:0 ~right:0;
  init_node cu s ~key:inf1 ~left:l0 ~right:l1;
  init_node cu r ~key:inf2 ~left:s ~right:l2;
  Heap.Cursor.fence cu;
  { r; s }

let attach ctx =
  let base = Lfds.Ctx.carve_static ctx (5 * size_class) in
  { r = base; s = base + size_class }

(* Unlocked descent: grandparent, parent and leaf on the path to [k]. *)
let seek cu t k =
  let rec go gparent parent current =
    if is_leaf cu current then (gparent, parent, current)
    else go parent current (Heap.Cursor.load cu (child_link cu current k))
  in
  go t.r t.s (Heap.Cursor.load cu (child_link cu t.s k))

let search_c _ctx t cu ~key =
  let _, _, leaf = seek cu t key in
  if read_key cu leaf = key then Some (Heap.Cursor.load cu (value_of leaf))
  else None

let search ctx t ~tid ~key = search_c ctx t (Lfds.Ctx.cursor ctx ~tid) ~key

let rec insert_c ctx wal t cu ~key ~value =
  let _, parent, leaf = seek cu t key in
  if read_key cu leaf = key then false
  else begin
    let outcome =
      Spinlock.with_locks_c cu [ lock_of parent ] (fun () ->
          if
            is_removed cu parent
            || Heap.Cursor.load cu (child_link cu parent key) <> leaf
          then `Retry
          else begin
            let mem = Lfds.Ctx.mem ctx in
            let new_leaf = Lfds.Nv_epochs.alloc_node_c mem cu ~size_class in
            let leaf_key = read_key cu leaf in
            init_node cu new_leaf ~key ~left:0 ~right:0;
            Heap.Cursor.store cu (value_of new_leaf) value;
            let new_internal = Lfds.Nv_epochs.alloc_node_c mem cu ~size_class in
            let left, right =
              if key < leaf_key then (new_leaf, leaf) else (leaf, new_leaf)
            in
            init_node cu new_internal ~key:(max key leaf_key) ~left ~right;
            Wal.begin_op_c wal cu;
            Wal.logged_store_c wal cu (child_link cu parent key) new_internal;
            Wal.commit_c wal cu;
            `Done
          end)
    in
    match outcome with
    | `Done -> true
    | `Retry -> insert_c ctx wal t cu ~key ~value
  end

let insert ctx wal t ~tid ~key ~value =
  insert_c ctx wal t (Lfds.Ctx.cursor ctx ~tid) ~key ~value

let rec remove_c ctx wal t cu ~key =
  let gparent, parent, leaf = seek cu t key in
  if read_key cu leaf <> key then false
  else begin
    let outcome =
      Spinlock.with_locks_c cu [ lock_of gparent; lock_of parent ] (fun () ->
          if
            is_removed cu gparent
            || is_removed cu parent
            || Heap.Cursor.load cu (child_link cu gparent key) <> parent
            || Heap.Cursor.load cu (child_link cu parent key) <> leaf
          then `Retry
          else begin
            let sibling = Heap.Cursor.load cu (sibling_link cu parent key) in
            Wal.begin_op_c wal cu;
            Wal.logged_store_c wal cu (removed_of parent) 1;
            Wal.logged_store_c wal cu (removed_of leaf) 1;
            Wal.logged_store_c wal cu (child_link cu gparent key) sibling;
            Wal.commit_c wal cu;
            `Done
          end)
    in
    match outcome with
    | `Done ->
        Lfds.Nv_epochs.retire_node_c (Lfds.Ctx.mem ctx) cu parent;
        Lfds.Nv_epochs.retire_node_c (Lfds.Ctx.mem ctx) cu leaf;
        true
    | `Retry -> remove_c ctx wal t cu ~key
  end

let remove ctx wal t ~tid ~key =
  remove_c ctx wal t (Lfds.Ctx.cursor ctx ~tid) ~key

(* Quiescent helpers and recovery. *)

let iter_nodes ctx ~tid t f =
  let cu = Lfds.Ctx.cursor ctx ~tid in
  let rec go node =
    if node <> 0 then
      if is_leaf cu node then begin
        if read_key cu node < inf0 then f node ~leaf:true
      end
      else begin
        f node ~leaf:false;
        go (Heap.Cursor.load cu (left_of node));
        go (Heap.Cursor.load cu (right_of node))
      end
  in
  go (Heap.Cursor.load cu (left_of t.s))

let size ctx ~tid t =
  let n = ref 0 in
  iter_nodes ctx ~tid t (fun _ ~leaf -> if leaf then incr n);
  !n

let recover_consistency ctx t =
  let cu = Lfds.Ctx.cursor ctx ~tid:0 in
  let clear node =
    if Heap.Cursor.load cu (lock_of node) <> 0 then
      Heap.Cursor.store cu (lock_of node) 0
  in
  clear t.r;
  clear t.s;
  iter_nodes ctx ~tid:0 t (fun node ~leaf:_ -> clear node);
  Heap.Cursor.fence cu

let ops ctx wal t =
  {
    Lfds.Set_intf.name = "log-bst";
    insert =
      (fun ~tid ~key ~value ->
        Lfds.Ctx.with_op_c ~name:"log-bst.insert" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            insert_c ctx wal t cu ~key ~value));
    remove =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op_c ~name:"log-bst.remove" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            remove_c ctx wal t cu ~key));
    search =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op_c ~name:"log-bst.search" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            search_c ctx t cu ~key));
    size = (fun () -> size ctx ~tid:0 t);
  }
