(** Log-based durable skip list: the optimistic lock-based algorithm of
    Herlihy, Lev, Luchangco and Shavit [SIROCCO'07] with write-ahead logging.

    Updates lock the predecessor of the node at every level it occupies, so a
    log-based update must log (and, eagerly, sync) one entry per level —
    against the single level-0 sync of the log-free version. This is why the
    skip list shows the paper's largest gap (Figures 5 and 8).

    Node layout ([8 + levels] words, rounded to cache lines):
    {v +0 key +1 value +2 toplevel +3 lock +4 marked +5 fullylinked +6..7 pad
       +8+l next_l v}

    The head is a static tower of [max_level] links plus one lock word. *)

open Nvm

type t = { head : int; head_lock : int; max_level : int; rng : int array }

let key_of node = node
let value_of node = node + 1
let toplevel_of node = node + 2
let lock_of node = node + 3
let marked_of node = node + 4
let fullylinked_of node = node + 5
let next_of node level = node + 8 + level

let node_class ~levels =
  (8 + levels + Cacheline.words_per_line - 1)
  / Cacheline.words_per_line * Cacheline.words_per_line

let read_key cu node = Heap.Cursor.load cu (key_of node)
let is_marked cu node = Heap.Cursor.load cu (marked_of node) <> 0

let create ctx ?(max_level = 16) () =
  let span = Cacheline.align_up (max_level + 1) in
  let head = Lfds.Ctx.carve_static ctx span in
  let heap = Lfds.Ctx.heap ctx in
  let tid = 0 in
  for i = 0 to span - 1 do
    Heap.store heap ~tid (head + i) 0
  done;
  for i = 0 to (span / Cacheline.words_per_line) - 1 do
    Heap.write_back heap ~tid (head + (i * Cacheline.words_per_line))
  done;
  Heap.fence heap ~tid;
  {
    head;
    head_lock = head + max_level;
    max_level;
    rng = Array.init Pstats.max_threads (fun i -> (i * 0x2545F491) lor 1);
  }

let attach ctx ?(max_level = 16) () =
  let span = Cacheline.align_up (max_level + 1) in
  let head = Lfds.Ctx.carve_static ctx span in
  {
    head;
    head_lock = head + max_level;
    max_level;
    rng = Array.init Pstats.max_threads (fun i -> (i * 0x2545F491) lor 1);
  }

let random_level t ~tid =
  let x = t.rng.(tid) in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = (x lxor (x lsl 17)) land max_int in
  t.rng.(tid) <- x;
  let rec count lvl bits =
    if lvl >= t.max_level || bits land 1 = 0 then lvl else count (lvl + 1) (bits lsr 1)
  in
  count 1 x

(* Per-level predecessor bookkeeping: link word to rewrite, lock to take,
   and the predecessor node (0 when it is the head). *)
type preds = { links : int array; locks : int array; nodes : int array }

let make_preds t =
  {
    links = Array.make t.max_level 0;
    locks = Array.make t.max_level 0;
    nodes = Array.make t.max_level 0;
  }

(* Returns the highest level at which [k] was found (-1 if absent) and fills
   [preds] and [succs]. Pure reads; no helping, no unlinking. *)
let find t cu k ~preds ~succs =
  let lfound = ref (-1) in
  let rec down level pred_node pred_link =
    if level >= 0 then begin
      let rec walk pred_node pred_link =
        let curr = Heap.Cursor.load cu pred_link in
        if curr <> 0 && read_key cu curr < k then walk curr (next_of curr level)
        else begin
          if !lfound < 0 && curr <> 0 && read_key cu curr = k then
            lfound := level;
          preds.links.(level) <- pred_link;
          preds.locks.(level) <- (if pred_node = 0 then t.head_lock else lock_of pred_node);
          preds.nodes.(level) <- pred_node;
          succs.(level) <- curr;
          down (level - 1) pred_node
            (if pred_node = 0 then t.head + (level - 1)
             else next_of pred_node (level - 1))
        end
      in
      walk pred_node pred_link
    end
  in
  down (t.max_level - 1) 0 (t.head + (t.max_level - 1));
  !lfound

let search_c _ctx t cu ~key =
  let preds = make_preds t and succs = Array.make t.max_level 0 in
  let lfound = find t cu key ~preds ~succs in
  if lfound < 0 then None
  else
    let node = succs.(lfound) in
    if Heap.Cursor.load cu (fullylinked_of node) <> 0 && not (is_marked cu node)
    then Some (Heap.Cursor.load cu (value_of node))
    else None

let search ctx t ~tid ~key = search_c ctx t (Lfds.Ctx.cursor ctx ~tid) ~key

(* Lock the distinct predecessor locks of levels [0 .. toplevel-1], from
   level 0 up. The level-0 predecessor has the largest key and higher-level
   predecessors only get smaller (the head smallest of all), so every thread
   acquires locks in descending key order — and a remover, which holds its
   victim (larger than every one of its predecessors) first, fits the same
   global order. Ascending acquisition would deadlock against removers
   through the head lock. *)
let lock_preds cu ~preds ~toplevel =
  let locked = ref [] in
  for level = 0 to toplevel - 1 do
    let l = preds.locks.(level) in
    if not (List.mem l !locked) then begin
      Spinlock.acquire_c cu l;
      locked := l :: !locked
    end
  done;
  !locked

let unlock_all cu locked = List.iter (fun l -> Spinlock.release_c cu l) locked

let valid_level cu ~preds ~succs level =
  (preds.nodes.(level) = 0 || not (is_marked cu preds.nodes.(level)))
  && Heap.Cursor.load cu preds.links.(level) = succs.(level)
  && (succs.(level) = 0 || not (is_marked cu succs.(level)))

let rec insert_c ctx wal t cu ~key ~value =
  let preds = make_preds t and succs = Array.make t.max_level 0 in
  let lfound = find t cu key ~preds ~succs in
  if lfound >= 0 && not (is_marked cu succs.(lfound)) then false
  else begin
    let toplevel = random_level t ~tid:(Heap.Cursor.tid cu) in
    let locked = lock_preds cu ~preds ~toplevel in
    let valid = ref true in
    for level = 0 to toplevel - 1 do
      if not (valid_level cu ~preds ~succs level) then valid := false
    done;
    if not !valid then begin
      unlock_all cu locked;
      insert_c ctx wal t cu ~key ~value
    end
    else begin
      let size_class = node_class ~levels:toplevel in
      let node = Lfds.Nv_epochs.alloc_node_c (Lfds.Ctx.mem ctx) cu ~size_class in
      Heap.Cursor.store cu (key_of node) key;
      Heap.Cursor.store cu (value_of node) value;
      Heap.Cursor.store cu (toplevel_of node) toplevel;
      Heap.Cursor.store cu (lock_of node) 0;
      Heap.Cursor.store cu (marked_of node) 0;
      Heap.Cursor.store cu (fullylinked_of node) 1;
      for l = 0 to toplevel - 1 do
        Heap.Cursor.store cu (next_of node l) succs.(l)
      done;
      let lines = (size_class + Cacheline.words_per_line - 1) / Cacheline.words_per_line in
      for i = 0 to lines - 1 do
        Heap.Cursor.write_back cu (node + (i * Cacheline.words_per_line))
      done;
      (* One logged (synced) link write per level. *)
      Wal.begin_op_c wal cu;
      for l = 0 to toplevel - 1 do
        Wal.logged_store_c wal cu preds.links.(l) node
      done;
      Wal.commit_c wal cu;
      unlock_all cu locked;
      true
    end
  end

let insert ctx wal t ~tid ~key ~value =
  insert_c ctx wal t (Lfds.Ctx.cursor ctx ~tid) ~key ~value

let remove_c ctx wal t cu ~key =
  let preds = make_preds t and succs = Array.make t.max_level 0 in
  let lfound = find t cu key ~preds ~succs in
  if lfound < 0 then false
  else begin
    let victim = succs.(lfound) in
    let toplevel = Heap.Cursor.load cu (toplevel_of victim) in
    if
      Heap.Cursor.load cu (fullylinked_of victim) = 0
      || toplevel - 1 <> lfound
      || is_marked cu victim
    then false
    else begin
      Spinlock.acquire_c cu (lock_of victim);
      if is_marked cu victim then begin
        Spinlock.release_c cu (lock_of victim);
        false
      end
      else begin
        (* Point of no return: mark under the victim's lock, logged. *)
        Wal.begin_op_c wal cu;
        Wal.logged_store_c wal cu (marked_of victim) 1;
        let rec unlink () =
          let preds = make_preds t and succs = Array.make t.max_level 0 in
          ignore (find t cu key ~preds ~succs);
          let locked = lock_preds cu ~preds ~toplevel in
          let valid = ref true in
          for level = 0 to toplevel - 1 do
            if
              preds.nodes.(level) <> 0 && is_marked cu preds.nodes.(level)
              || Heap.Cursor.load cu preds.links.(level) <> victim
            then valid := false
          done;
          if not !valid then begin
            unlock_all cu locked;
            unlink ()
          end
          else begin
            for l = toplevel - 1 downto 0 do
              Wal.logged_store_c wal cu preds.links.(l)
                (Heap.Cursor.load cu (next_of victim l))
            done;
            Wal.commit_c wal cu;
            unlock_all cu locked
          end
        in
        unlink ();
        Spinlock.release_c cu (lock_of victim);
        Lfds.Nv_epochs.retire_node_c (Lfds.Ctx.mem ctx) cu victim;
        true
      end
    end
  end

let remove ctx wal t ~tid ~key =
  remove_c ctx wal t (Lfds.Ctx.cursor ctx ~tid) ~key

(* Quiescent helpers and recovery. *)

let iter_nodes ctx ~tid t f =
  let cu = Lfds.Ctx.cursor ctx ~tid in
  let rec go node =
    if node <> 0 then begin
      f node ~deleted:(is_marked cu node);
      go (Heap.Cursor.load cu (next_of node 0))
    end
  in
  go (Heap.Cursor.load cu t.head)

let size ctx ~tid t =
  let n = ref 0 in
  iter_nodes ctx ~tid t (fun _ ~deleted -> if not deleted then incr n);
  !n

let recover_consistency ctx t =
  let tid = 0 in
  let heap = Lfds.Ctx.heap ctx in
  Heap.store heap ~tid t.head_lock 0;
  iter_nodes ctx ~tid t (fun node ~deleted:_ ->
      if Heap.load heap ~tid (lock_of node) <> 0 then
        Heap.store heap ~tid (lock_of node) 0);
  Heap.fence heap ~tid

let ops ctx wal t =
  {
    Lfds.Set_intf.name = "log-skiplist";
    insert =
      (fun ~tid ~key ~value ->
        Lfds.Ctx.with_op_c ~name:"log-skiplist.insert" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            insert_c ctx wal t cu ~key ~value));
    remove =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op_c ~name:"log-skiplist.remove" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            remove_c ctx wal t cu ~key));
    search =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op_c ~name:"log-skiplist.search" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            search_c ctx t cu ~key));
    size = (fun () -> size ctx ~tid:0 t);
  }
