(** Test-and-test-and-set spinlock over a heap word, waiting with
    [Nvm.Backoff] (bounded exponential backoff degrading to a timeslice
    yield — on few cores the holder may be descheduled). Lock words are
    volatile state: never written back on purpose; the log-based structures'
    recovery clears any that a crash made durable.

    The [_c] forms take the caller's heap cursor and are the hot path; the
    [~tid] forms shim onto them. *)

val acquire : Nvm.Heap.t -> tid:int -> int -> unit
val acquire_c : Nvm.Heap.cursor -> int -> unit
val release : Nvm.Heap.t -> tid:int -> int -> unit
val release_c : Nvm.Heap.cursor -> int -> unit
val try_acquire : Nvm.Heap.t -> tid:int -> int -> bool
val try_acquire_c : Nvm.Heap.cursor -> int -> bool

(** Holding tid, or -1 when free. *)
val holder : Nvm.Heap.t -> tid:int -> int -> int

(** Acquire [addrs] in address order (deduplicated), run, release —
    exception-safe. *)
val with_locks : Nvm.Heap.t -> tid:int -> int list -> (unit -> 'a) -> 'a

val with_locks_c : Nvm.Heap.cursor -> int list -> (unit -> 'a) -> 'a
