(** Per-thread write-ahead (undo) log — how the paper's lock-based
    competitors are made durable (section 6.2).

    In the sound [Eager] mode, each in-place store's undo record is synced
    before the store (the store may be evicted to NVRAM at any moment);
    commit writes back the modified data (one batched sync) and durably
    truncates the log (one more) before locks are released: [E + 2] syncs
    per [E]-word update, against link-and-persist's one. [Batched] logs all
    entries under a single sync — unsound under arbitrary eviction, offered
    as an ablation lower bound. *)

type t

type sync_mode = Eager | Batched

val words_for : entries_max:int -> int

(** Create the per-thread logs in the context's static region (next carve). *)
val create : Lfds.Ctx.t -> ?entries_max:int -> ?sync_mode:sync_mode -> unit -> t

(** Same carve after recovery; call [recover] before use. *)
val attach : Lfds.Ctx.t -> ?entries_max:int -> ?sync_mode:sync_mode -> unit -> t

(** Open a logged critical section (costs no sync of its own: the status
    write-back rides on the first [logged_store]'s fence). *)
val begin_op : t -> tid:int -> unit

val begin_op_c : t -> Nvm.Heap.cursor -> unit

(** Durably perform an in-place store: log the old value (synced in [Eager]
    mode), then store. *)
val logged_store : t -> tid:int -> int -> int -> unit

val logged_store_c : t -> Nvm.Heap.cursor -> int -> int -> unit

(** Close the critical section: batched data sync, then durable log
    truncation. Call before releasing any lock. *)
val commit : t -> tid:int -> unit

val commit_c : t -> Nvm.Heap.cursor -> unit

(** Roll back every log that was mid-operation at crash time (reverse
    order), restoring each thread's pre-operation state. *)
val recover : t -> unit
