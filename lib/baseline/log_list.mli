(** Log-based durable linked list: the lazy list of Heller et al. with
    write-ahead logging — the list competitor of Figures 5-8. Unlocked
    wait-free searches; updates lock predecessor and current, validate, and
    mutate in place through the log. *)

(** Size class of a node (one cache line). *)
val size_class : int

(** Create a fresh [link, lock] head cell (next static carve). *)
val create : Lfds.Ctx.t -> int

val attach : Lfds.Ctx.t -> int
val search : Lfds.Ctx.t -> tid:int -> head:int -> key:int -> int option
val insert : Lfds.Ctx.t -> Wal.t -> tid:int -> head:int -> key:int -> value:int -> bool
val remove : Lfds.Ctx.t -> Wal.t -> tid:int -> head:int -> key:int -> bool

(** Cursor-threading forms (the fast path the [~tid] forms shim onto). *)
val search_c : Lfds.Ctx.t -> Nvm.Heap.cursor -> head:int -> key:int -> int option

val insert_c :
  Lfds.Ctx.t -> Wal.t -> Nvm.Heap.cursor -> head:int -> key:int -> value:int -> bool

val remove_c : Lfds.Ctx.t -> Wal.t -> Nvm.Heap.cursor -> head:int -> key:int -> bool
val iter_nodes : Lfds.Ctx.t -> tid:int -> head:int -> (int -> deleted:bool -> unit) -> unit
val size : Lfds.Ctx.t -> tid:int -> head:int -> int
val to_list : Lfds.Ctx.t -> tid:int -> head:int -> (int * int) list

(** Post-crash cleanup after [Wal.recover]: clear stale lock words (the
    rollback already restored structural consistency). *)
val recover_consistency : Lfds.Ctx.t -> head:int -> unit

val ops : Lfds.Ctx.t -> Wal.t -> head:int -> Lfds.Set_intf.ops
