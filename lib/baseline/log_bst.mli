(** Log-based durable BST: a lock-based external tree in the style of
    bst-tk, with write-ahead logging. Updates lock the one or two ancestors
    they rewrite, validate reachability, and mutate in place through the
    log; searches are unlocked. *)

type t

val create : Lfds.Ctx.t -> t
val attach : Lfds.Ctx.t -> t
val search : Lfds.Ctx.t -> t -> tid:int -> key:int -> int option
val insert : Lfds.Ctx.t -> Wal.t -> t -> tid:int -> key:int -> value:int -> bool
val remove : Lfds.Ctx.t -> Wal.t -> t -> tid:int -> key:int -> bool

(** Cursor-threading forms (the fast path the [~tid] forms shim onto). *)
val search_c : Lfds.Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> int option

val insert_c :
  Lfds.Ctx.t -> Wal.t -> t -> Nvm.Heap.cursor -> key:int -> value:int -> bool

val remove_c : Lfds.Ctx.t -> Wal.t -> t -> Nvm.Heap.cursor -> key:int -> bool

(** Pre-order walk; [leaf] distinguishes user leaves from interior nodes. *)
val iter_nodes : Lfds.Ctx.t -> tid:int -> t -> (int -> leaf:bool -> unit) -> unit

val size : Lfds.Ctx.t -> tid:int -> t -> int
val recover_consistency : Lfds.Ctx.t -> t -> unit
val ops : Lfds.Ctx.t -> Wal.t -> t -> Lfds.Set_intf.ops
