(** Log-based durable hash table: one lazy list per bucket.

    Bucket cells are [link, lock] pairs in a static span, so each bucket is a
    [Log_list] head. *)

open Nvm

type t = { base : int; nbuckets : int }

let mix k =
  let h = k * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 31)) land max_int

let bucket_head t key = t.base + (2 * (mix key mod t.nbuckets))

let create ctx ~nbuckets =
  let base = Lfds.Ctx.carve_static ctx (2 * nbuckets) in
  let heap = Lfds.Ctx.heap ctx in
  let tid = 0 in
  for i = 0 to (2 * nbuckets) - 1 do
    Heap.store heap ~tid (base + i) 0
  done;
  let lines = ((2 * nbuckets) + Cacheline.words_per_line - 1) / Cacheline.words_per_line in
  for l = 0 to lines - 1 do
    Heap.write_back heap ~tid (base + (l * Cacheline.words_per_line))
  done;
  Heap.fence heap ~tid;
  { base; nbuckets }

let attach ctx ~nbuckets =
  { base = Lfds.Ctx.carve_static ctx (2 * nbuckets); nbuckets }

let insert_c ctx wal t cu ~key ~value =
  Log_list.insert_c ctx wal cu ~head:(bucket_head t key) ~key ~value

let remove_c ctx wal t cu ~key =
  Log_list.remove_c ctx wal cu ~head:(bucket_head t key) ~key

let search_c ctx t cu ~key =
  Log_list.search_c ctx cu ~head:(bucket_head t key) ~key

let insert ctx wal t ~tid ~key ~value =
  insert_c ctx wal t (Lfds.Ctx.cursor ctx ~tid) ~key ~value

let remove ctx wal t ~tid ~key =
  remove_c ctx wal t (Lfds.Ctx.cursor ctx ~tid) ~key

let search ctx t ~tid ~key = search_c ctx t (Lfds.Ctx.cursor ctx ~tid) ~key

let size ctx t =
  let n = ref 0 in
  for i = 0 to t.nbuckets - 1 do
    n := !n + Log_list.size ctx ~tid:0 ~head:(t.base + (2 * i))
  done;
  !n

let iter_nodes ctx t f =
  for i = 0 to t.nbuckets - 1 do
    Log_list.iter_nodes ctx ~tid:0 ~head:(t.base + (2 * i)) f
  done

let recover_consistency ctx t =
  for i = 0 to t.nbuckets - 1 do
    Log_list.recover_consistency ctx ~head:(t.base + (2 * i))
  done

let ops ctx wal t =
  {
    Lfds.Set_intf.name = "log-hash";
    insert =
      (fun ~tid ~key ~value ->
        Lfds.Ctx.with_op_c ~name:"log-hash.insert" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            insert_c ctx wal t cu ~key ~value));
    remove =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op_c ~name:"log-hash.remove" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            remove_c ctx wal t cu ~key));
    search =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op_c ~name:"log-hash.search" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            search_c ctx t cu ~key));
    size = (fun () -> size ctx t);
  }
