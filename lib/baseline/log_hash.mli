(** Log-based durable hash table: one lazy list per bucket; bucket cells are
    [link, lock] pairs in a static span. *)

type t

val create : Lfds.Ctx.t -> nbuckets:int -> t
val attach : Lfds.Ctx.t -> nbuckets:int -> t
val search : Lfds.Ctx.t -> t -> tid:int -> key:int -> int option
val insert : Lfds.Ctx.t -> Wal.t -> t -> tid:int -> key:int -> value:int -> bool
val remove : Lfds.Ctx.t -> Wal.t -> t -> tid:int -> key:int -> bool

(** Cursor-threading forms (the fast path the [~tid] forms shim onto). *)
val search_c : Lfds.Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> int option

val insert_c :
  Lfds.Ctx.t -> Wal.t -> t -> Nvm.Heap.cursor -> key:int -> value:int -> bool

val remove_c : Lfds.Ctx.t -> Wal.t -> t -> Nvm.Heap.cursor -> key:int -> bool
val size : Lfds.Ctx.t -> t -> int
val iter_nodes : Lfds.Ctx.t -> t -> (int -> deleted:bool -> unit) -> unit
val recover_consistency : Lfds.Ctx.t -> t -> unit
val ops : Lfds.Ctx.t -> Wal.t -> t -> Lfds.Set_intf.ops
