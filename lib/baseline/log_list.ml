(** Log-based durable linked list: the lazy list of Heller et al. with
    write-ahead logging — the competitor of Figures 5-8 for lists.

    The lazy list is the best-performing lock-based list [ASPLOS'15]:
    wait-free unlocked searches; updates lock the predecessor and current
    node, validate, and mutate in place. Every in-place mutation of reachable
    state goes through [Wal.logged_store]; the critical section commits (two
    more syncs) before releasing its locks.

    Node layout (one cache line):
    {v +0 key +1 value +2 next +3 lock +4 marked +5..7 pad v}

    Heads are two-word cells [link, lock] so the predecessor position is
    uniform whether it is a node or a head (the [pos] type). Memory is
    managed by NV-epochs, identically to the log-free structures (the paper
    holds memory management constant in these comparisons). *)

open Nvm

let size_class = Cacheline.words_per_line
let key_of node = node
let value_of node = node + 1
let next_of node = node + 2
let lock_of node = node + 3
let marked_of node = node + 4

let read_key cu node = Heap.Cursor.load cu (key_of node)

(* A predecessor position: where its outgoing link and lock live, and its
   marked flag if it is a real node (heads cannot be marked). *)
type pos = { link : int; lock : int; marked : int option }

let pos_of_head head = { link = head; lock = head + 1; marked = None }

let pos_of_node node =
  { link = next_of node; lock = lock_of node; marked = Some (marked_of node) }

let is_marked cu pos =
  match pos.marked with
  | None -> false
  | Some addr -> Heap.Cursor.load cu addr <> 0

let node_marked cu node = Heap.Cursor.load cu (marked_of node) <> 0

(** Create a fresh list head (next static carve): [link, lock] zeroed. *)
let create ctx =
  let head = Lfds.Ctx.carve_static ctx Cacheline.words_per_line in
  let heap = Lfds.Ctx.heap ctx in
  Heap.store heap ~tid:0 head 0;
  Heap.store heap ~tid:0 (head + 1) 0;
  Heap.persist heap ~tid:0 head;
  head

let attach ctx = Lfds.Ctx.carve_static ctx Cacheline.words_per_line

(* Unlocked traversal: first node with key >= k and its predecessor. *)
let locate cu ~head k =
  let rec walk pred curr =
    if curr = 0 then (pred, 0)
    else if read_key cu curr >= k then (pred, curr)
    else walk (pos_of_node curr) (Heap.Cursor.load cu (next_of curr))
  in
  walk (pos_of_head head) (Heap.Cursor.load cu head)

let search_c _ctx cu ~head ~key =
  let _, curr = locate cu ~head key in
  if curr <> 0 && read_key cu curr = key && not (node_marked cu curr) then
    Some (Heap.Cursor.load cu (value_of curr))
  else None

let search ctx ~tid ~head ~key =
  search_c ctx (Lfds.Ctx.cursor ctx ~tid) ~head ~key

let validate cu pred curr =
  (not (is_marked cu pred))
  && Heap.Cursor.load cu pred.link = curr
  && (curr = 0 || not (node_marked cu curr))

let rec insert_c ctx wal cu ~head ~key ~value =
  let pred, curr = locate cu ~head key in
  let locks = pred.lock :: (if curr = 0 then [] else [ lock_of curr ]) in
  let outcome =
    Spinlock.with_locks_c cu locks (fun () ->
        if not (validate cu pred curr) then `Retry
        else if curr <> 0 && read_key cu curr = key then `Present
        else begin
          let node = Lfds.Nv_epochs.alloc_node_c (Lfds.Ctx.mem ctx) cu ~size_class in
          Heap.Cursor.store cu (key_of node) key;
          Heap.Cursor.store cu (value_of node) value;
          Heap.Cursor.store cu (next_of node) curr;
          Heap.Cursor.store cu (lock_of node) 0;
          Heap.Cursor.store cu (marked_of node) 0;
          Heap.Cursor.write_back cu node;
          (* The first logged store's fence covers node contents and
             allocator metadata, mirroring the log-free discipline. *)
          Wal.begin_op_c wal cu;
          Wal.logged_store_c wal cu pred.link node;
          Wal.commit_c wal cu;
          `Done
        end)
  in
  match outcome with
  | `Done -> true
  | `Present -> false
  | `Retry -> insert_c ctx wal cu ~head ~key ~value

let insert ctx wal ~tid ~head ~key ~value =
  insert_c ctx wal (Lfds.Ctx.cursor ctx ~tid) ~head ~key ~value

let rec remove_c ctx wal cu ~head ~key =
  let pred, curr = locate cu ~head key in
  if curr = 0 || read_key cu curr <> key then false
  else begin
    let outcome =
      Spinlock.with_locks_c cu [ pred.lock; lock_of curr ] (fun () ->
          if not (validate cu pred curr) then `Retry
          else begin
            Wal.begin_op_c wal cu;
            Wal.logged_store_c wal cu (marked_of curr) 1;
            Wal.logged_store_c wal cu pred.link
              (Heap.Cursor.load cu (next_of curr));
            Wal.commit_c wal cu;
            `Done
          end)
    in
    match outcome with
    | `Done ->
        Lfds.Nv_epochs.retire_node_c (Lfds.Ctx.mem ctx) cu curr;
        true
    | `Retry -> remove_c ctx wal cu ~head ~key
  end

let remove ctx wal ~tid ~head ~key =
  remove_c ctx wal (Lfds.Ctx.cursor ctx ~tid) ~head ~key

(* Quiescent helpers and recovery. *)

let iter_nodes ctx ~tid ~head f =
  let cu = Lfds.Ctx.cursor ctx ~tid in
  let rec go node =
    if node <> 0 then begin
      f node ~deleted:(node_marked cu node);
      go (Heap.Cursor.load cu (next_of node))
    end
  in
  go (Heap.Cursor.load cu head)

let size ctx ~tid ~head =
  let n = ref 0 in
  iter_nodes ctx ~tid ~head (fun _ ~deleted -> if not deleted then incr n);
  !n

let to_list ctx ~tid ~head =
  let acc = ref [] in
  let cu = Lfds.Ctx.cursor ctx ~tid in
  iter_nodes ctx ~tid ~head (fun node ~deleted ->
      if not deleted then
        acc := (read_key cu node, Heap.Cursor.load cu (value_of node)) :: !acc);
  List.rev !acc

(** Post-crash cleanup, after [Wal.recover]: the rollback already restored a
    consistent list, so only volatile residue remains — lock words and any
    marked-but-unlinked node cannot exist, but stale lock bits can. *)
let recover_consistency ctx ~head =
  let tid = 0 in
  let heap = Lfds.Ctx.heap ctx in
  Heap.store heap ~tid (head + 1) 0;
  iter_nodes ctx ~tid ~head (fun node ~deleted:_ ->
      if Heap.load heap ~tid (lock_of node) <> 0 then
        Heap.store heap ~tid (lock_of node) 0);
  Heap.fence heap ~tid

let ops ctx wal ~head =
  {
    Lfds.Set_intf.name = "log-list";
    insert =
      (fun ~tid ~key ~value ->
        Lfds.Ctx.with_op_c ~name:"log-list.insert" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            insert_c ctx wal cu ~head ~key ~value));
    remove =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op_c ~name:"log-list.remove" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            remove_c ctx wal cu ~head ~key));
    search =
      (fun ~tid ~key ->
        Lfds.Ctx.with_op_c ~name:"log-list.search" ~key ctx (Lfds.Ctx.cursor ctx ~tid) (fun cu ->
            search_c ctx cu ~head ~key));
    size = (fun () -> size ctx ~tid:0 ~head);
  }
