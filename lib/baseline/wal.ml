(** Per-thread write-ahead (undo) log — the log-based baseline's machinery.

    The paper's competitors make lock-based critical sections durable by
    logging (section 6.2). For in-place updates under locks the natural
    write-ahead discipline is undo logging: before each in-place store, the
    word's old value is logged {e and synced} (the store may reach NVRAM at
    any moment after it is issued, so its undo record must already be
    there). On commit the modified lines are written back (one batched
    sync) and the log is durably truncated (one more sync) before the locks
    are released. Per update of [E] words that is [E + 2] sync operations —
    against the single sync of link-and-persist; this gap is exactly what
    Figures 5-8 measure.

    A [Batched] mode logs all entries with a single sync before any store —
    only correct if stores cannot be evicted early, so it is offered purely
    as an ablation lower bound for the log-based side (bench [ablate]).

    Per-thread durable layout ([span] words):
    {v +0 status (0 empty / 1 active)  +1 count  +2.. (addr, old) pairs v}

    Recovery ([recover]): any thread log still active is rolled back in
    reverse order, restoring the pre-crash-operation state; the structure's
    locks are then clean because lock words are never logged or flushed. *)

open Nvm

type sync_mode = Eager | Batched

type t = {
  heap : Heap.t;
  base : int;
  span : int;
  entries_max : int;
  sync_mode : sync_mode;
  count : int array;  (** volatile per-tid entry count *)
  touched : int list array;  (** per-tid modified data addresses *)
}

let words_for ~entries_max = Cacheline.align_up (2 + (2 * entries_max))

(** Create the per-thread logs inside [ctx]'s static region (next carve). *)
let create ctx ?(entries_max = 29) ?(sync_mode = Eager) () =
  let nthreads = Lfds.Ctx.nthreads ctx in
  let span = words_for ~entries_max in
  let base = Lfds.Ctx.carve_static ctx (nthreads * span) in
  let heap = Lfds.Ctx.heap ctx in
  for tid = 0 to nthreads - 1 do
    Heap.store heap ~tid:0 (base + (tid * span)) 0;
    Heap.store heap ~tid:0 (base + (tid * span) + 1) 0;
    Heap.write_back heap ~tid:0 (base + (tid * span))
  done;
  Heap.fence heap ~tid:0;
  {
    heap;
    base;
    span;
    entries_max;
    sync_mode;
    count = Array.make nthreads 0;
    touched = Array.init nthreads (fun _ -> []);
  }

(** Re-attach after recovery: same carve; call [recover] before using. *)
let attach ctx ?(entries_max = 29) ?(sync_mode = Eager) () =
  let nthreads = Lfds.Ctx.nthreads ctx in
  let span = words_for ~entries_max in
  let base = Lfds.Ctx.carve_static ctx (nthreads * span) in
  {
    heap = Lfds.Ctx.heap ctx;
    base;
    span;
    entries_max;
    sync_mode;
    count = Array.make nthreads 0;
    touched = Array.init nthreads (fun _ -> []);
  }

let tid_base t tid = t.base + (tid * t.span)

(** Open a logged critical section. The status word's write-back rides on the
    first [logged_store]'s fence, so opening costs no sync of its own. *)
let begin_op_c t cu =
  let tid = Heap.Cursor.tid cu in
  t.count.(tid) <- 0;
  t.touched.(tid) <- [];
  Heap.Cursor.store cu (tid_base t tid) 1;
  Heap.Cursor.store cu (tid_base t tid + 1) 0;
  Heap.Cursor.write_back cu (tid_base t tid)

let begin_op t ~tid = begin_op_c t (Heap.cursor t.heap ~tid)

(** Durably perform an in-place store of [v] at [addr]: log the old value
    (synced in [Eager] mode), then store. *)
let logged_store_c t cu addr v =
  let tid = Heap.Cursor.tid cu in
  let n = t.count.(tid) in
  if n >= t.entries_max then invalid_arg "Wal.logged_store: log full";
  let b = tid_base t tid in
  let old_v = Heap.Cursor.load cu addr in
  Heap.Cursor.store cu (b + 2 + (2 * n)) addr;
  Heap.Cursor.store cu (b + 2 + (2 * n) + 1) old_v;
  Heap.Cursor.store cu (b + 1) (n + 1);
  Heap.Cursor.write_back cu (b + 2 + (2 * n));
  Heap.Cursor.write_back cu (b + 1);
  (match t.sync_mode with
  | Eager -> Heap.Cursor.fence cu
  | Batched -> ());
  let st = Heap.Cursor.stats cu in
  st.log_entries <- st.log_entries + 1;
  t.count.(tid) <- n + 1;
  Heap.Cursor.store cu addr v;
  t.touched.(tid) <- addr :: t.touched.(tid)

let logged_store t ~tid addr v = logged_store_c t (Heap.cursor t.heap ~tid) addr v

(** Close the critical section: write back the modified data (one batched
    sync), then durably truncate the log (one sync). Call before releasing
    any lock. *)
let commit_c t cu =
  let tid = Heap.Cursor.tid cu in
  (match t.sync_mode with
  | Eager -> ()
  | Batched ->
      (* Batched ablation: one sync covering all log entries, before data. *)
      Heap.Cursor.fence cu);
  List.iter (fun addr -> Heap.Cursor.write_back cu addr) t.touched.(tid);
  Heap.Cursor.fence cu;
  Heap.Cursor.store cu (tid_base t tid) 0;
  Heap.Cursor.persist cu (tid_base t tid);
  t.count.(tid) <- 0;
  t.touched.(tid) <- []

let commit t ~tid = commit_c t (Heap.cursor t.heap ~tid)

(** Roll back every log that was mid-operation at crash time. *)
let recover t =
  let tid = 0 in
  let nthreads = Array.length t.count in
  for owner = 0 to nthreads - 1 do
    let b = t.base + (owner * t.span) in
    if Heap.load t.heap ~tid b = 1 then begin
      let n = Heap.load t.heap ~tid (b + 1) in
      for i = n - 1 downto 0 do
        let addr = Heap.load t.heap ~tid (b + 2 + (2 * i)) in
        let old_v = Heap.load t.heap ~tid (b + 2 + (2 * i) + 1) in
        Heap.store t.heap ~tid addr old_v;
        Heap.write_back t.heap ~tid addr
      done;
      Heap.store t.heap ~tid b 0;
      Heap.write_back t.heap ~tid b
    end
  done;
  Heap.fence t.heap ~tid
