(** Log-based durable skip list: Herlihy-Lev-Luchangco-Shavit's optimistic
    lock-based algorithm with write-ahead logging. Updates lock (and log,
    with an eager sync each) one link per occupied level — the per-update
    sync count the log-free version avoids (Figures 5, 8). *)

type t

val create : Lfds.Ctx.t -> ?max_level:int -> unit -> t
val attach : Lfds.Ctx.t -> ?max_level:int -> unit -> t
val search : Lfds.Ctx.t -> t -> tid:int -> key:int -> int option
val insert : Lfds.Ctx.t -> Wal.t -> t -> tid:int -> key:int -> value:int -> bool
val remove : Lfds.Ctx.t -> Wal.t -> t -> tid:int -> key:int -> bool

(** Cursor-threading forms (the fast path the [~tid] forms shim onto). *)
val search_c : Lfds.Ctx.t -> t -> Nvm.Heap.cursor -> key:int -> int option

val insert_c :
  Lfds.Ctx.t -> Wal.t -> t -> Nvm.Heap.cursor -> key:int -> value:int -> bool

val remove_c : Lfds.Ctx.t -> Wal.t -> t -> Nvm.Heap.cursor -> key:int -> bool
val iter_nodes : Lfds.Ctx.t -> tid:int -> t -> (int -> deleted:bool -> unit) -> unit
val size : Lfds.Ctx.t -> tid:int -> t -> int

(** Post-crash cleanup after [Wal.recover]: clear stale lock words. *)
val recover_consistency : Lfds.Ctx.t -> t -> unit

val ops : Lfds.Ctx.t -> Wal.t -> t -> Lfds.Set_intf.ops
