(** Test-and-test-and-set spinlock over a heap word.

    Lock words are volatile state: they are never written back on purpose,
    and the log-based structures' recovery clears any lock word a crash
    happened to make durable.

    The wait loop uses [Nvm.Backoff]: bounded exponential [cpu_relax] that
    degrades to an OS-timeslice yield, because on few cores the holder may be
    descheduled and pure spinning starves it. *)

open Nvm

let acquire_c cu addr =
  let tid = Heap.Cursor.tid cu in
  let bo = Backoff.make () in
  let rec spin () =
    if Heap.Cursor.load cu addr <> 0 then begin
      Backoff.once bo;
      spin ()
    end
    else if not (Heap.Cursor.cas cu addr ~expected:0 ~desired:(tid + 1)) then
      spin ()
  in
  spin ()

let acquire heap ~tid addr = acquire_c (Heap.cursor heap ~tid) addr
let release_c cu addr = Heap.Cursor.store cu addr 0
let release heap ~tid addr = release_c (Heap.cursor heap ~tid) addr

let try_acquire_c cu addr =
  let tid = Heap.Cursor.tid cu in
  Heap.Cursor.load cu addr = 0
  && Heap.Cursor.cas cu addr ~expected:0 ~desired:(tid + 1)

let try_acquire heap ~tid addr = try_acquire_c (Heap.cursor heap ~tid) addr
let holder heap ~tid addr = Heap.load heap ~tid addr - 1

(** Acquire [addrs] in address order (deadlock avoidance), run [f], release.
    Duplicate addresses are locked once. *)
let with_locks_c cu addrs f =
  let sorted = List.sort_uniq compare addrs in
  List.iter (fun a -> acquire_c cu a) sorted;
  Fun.protect ~finally:(fun () -> List.iter (fun a -> release_c cu a) sorted) f

let with_locks heap ~tid addrs f = with_locks_c (Heap.cursor heap ~tid) addrs f
