(** Simulated persistent memory.

    The heap is a flat array of 64-bit words with two images: the
    {e volatile} image (what loads, stores and CAS observe — the CPU caches
    plus memory as seen through them) and the {e durable} image (what
    survives a crash — the bytes physically resident in NVRAM).

    A store only touches the volatile image and marks its cache line dirty.
    Data moves to the durable image when the program issues a write-back
    ([write_back], the [clwb] analogue) followed by a [fence] (the [sfence]
    analogue), or when the simulated cache {e evicts} the line: at crash
    time every dirty line is independently written back with probability
    [eviction_probability], modelling that programs do not control eviction
    order.

    All addresses are word indices. Each domain passes its [tid] (a small
    integer, unique per running domain) so write-back queues and statistics
    stay race-free.

    The hot path is the {e cursor} API: [cursor t ~tid] returns the domain's
    handle (cached stats record, pending write-back buffer, dedup stamps),
    and the [Cursor] operations run with zero per-op registry lookups. The
    [~tid] functions below are thin shims over the same cursors and keep
    identical counters. *)

type t

(** Raised by a primitive when the crash trip-wire (see [set_trip]) fires. *)
exception Crashed

(** Which write-back instruction the program uses (paper section 2):
    [Clwb] (default) writes back without invalidating and batches under one
    fence; [Clflushopt] batches but invalidates (the next load of the line
    pays an NVRAM read); [Clflush] additionally serializes — every
    write-back completes alone, immediately. *)
type wb_instruction = Clwb | Clflushopt | Clflush

(** {1 Observation — sanitizer / tracer hook interface}

    A heap carries a set of {e observers}: callbacks invoked after every
    primitive with a description of what happened, in registration order
    (see {!Observer}). With no observer attached every hook point is a
    single field load and a never-taken branch on the fast path; with any
    attached, events are allocated and delivered synchronously on the acting
    domain, so observers must serialize internally (or keep per-tid state)
    for multi-domain runs and must never call heap primitives from inside a
    hook (use [peek] / [annotate] side channels instead). *)

(** Why a line moved to the durable image. [Drain_fence], [Drain_clflush] and
    [Drain_shutdown] are the program-ordered paths; [Drain_overflow] (pending
    buffer spill) and [Drain_crash] (eviction) carry no ordering guarantee —
    data they make durable is durable by luck. *)
type drain_reason =
  | Drain_fence
  | Drain_overflow
  | Drain_clflush
  | Drain_shutdown
  | Drain_crash

(** Protocol-level facts announced by layers above the heap (allocator,
    reclamation, operation brackets) through [annotate]; the heap never
    interprets them. *)
type annotation =
  | A_alloc of { addr : int; size_class : int }
  | A_free of { addr : int }
  | A_retire of { addr : int }
  | A_reclaim of { nodes : int list; snapshot : int array; current : int array }
  | A_lc_register of { link : int }
  | A_validity of { addr : int; state : int }
      (** link-free validity word at [addr] moved to [state]
          (0 = invalid, 1 = valid, 2 = deleted) *)
  | A_op_begin of { name : string; key : int }
      (** [key] is the operation's key argument, 0 when it has none *)
  | A_op_end of { ret : int }
      (** [ret] is the op's encoded result, [op_ret_unknown] if not encoded *)
  | A_hb_acquire of { obj : int }
      (** acting thread happens-after the last release of sync object [obj];
          negative [obj] names a virtual (non-heap) object *)
  | A_hb_release of { obj : int }
      (** acting thread published its causal past through sync object [obj] *)

(** [A_op_end]'s encoded result when the bracket had no encoder or the op
    raised. *)
val op_ret_unknown : int

(** The virtual sync-object id for thread [tid]'s epoch counter. *)
val epoch_hb_obj : tid:int -> int

(** One observable heap event, emitted {e after} the primitive applied. *)
type event =
  | Ev_load of { tid : int; addr : int; value : int }
  | Ev_store of { tid : int; addr : int; value : int; old : int }
  | Ev_cas of { tid : int; addr : int; expected : int; desired : int; success : bool }
  | Ev_write_back of { tid : int; addr : int }
  | Ev_fence of { tid : int }
  | Ev_drain of { line : int; reason : drain_reason }
  | Ev_crash
  | Ev_note of { tid : int; note : annotation }

(** [create ~latency ~size_words ()] allocates a zeroed heap. [latency]
    defaults to a no-injection model (functional tests). *)
val create : ?latency:Latency_model.t -> size_words:int -> unit -> t

(** Observer registration. [add] returns a handle for [remove]; observers
    run in registration order. Add and remove only at quiescent points (no
    domain mid-operation): primitives read the composed hook unsynchronized.
    With one observer registered dispatch is a direct call; with several, one
    array walk per event. *)
module Observer : sig
  (** Identifies one registered observer for [remove]. *)
  type handle

  (** Register an observer; runs after every primitive, in add order. *)
  val add : t -> (event -> unit) -> handle

  (** Detach the observer behind [handle] (others stay). *)
  val remove : t -> handle -> unit

  (** Number of currently registered observers. *)
  val count : t -> int
end

(** Whether an observer is attached. Annotation emitters should pre-guard on
    this to avoid building annotations nobody will see. *)
val observed : t -> bool

(** Deliver [annotation] to the observer (no-op when none is attached). *)
val annotate : t -> tid:int -> annotation -> unit

(** Heap capacity in words, as passed to [create]. *)
val size_words : t -> int

(** The latency model the heap charges on fences and misses. *)
val latency : t -> Latency_model.t

(** Select the write-back instruction the cost model simulates (default
    [Clwb]); switch only at a quiescent point. *)
val set_wb_instruction : t -> wb_instruction -> unit

(** The currently selected write-back instruction. *)
val wb_instruction : t -> wb_instruction

(** {1 Cursors — the hot path}

    One cursor exists per possible [tid], created with the heap; [cursor]
    only fetches it. A cursor must only ever be used by the domain owning
    its [tid] (same contract as the [~tid] arguments). *)

(** A domain's private handle onto the heap (see section comment above). *)
type cursor

(** Fetch the (pre-created) cursor for [tid]. O(1), allocation-free. *)
val cursor : t -> tid:int -> cursor

module Cursor : sig
  (** The heap this cursor belongs to. *)
  val heap : cursor -> t

  (** The owning domain's [tid]. *)
  val tid : cursor -> int

  (** The owning domain's live counter record (same record as [stats]). *)
  val stats : cursor -> Pstats.t

  (** Read a word through the volatile image. *)
  val load : cursor -> int -> int

  (** Write a word to the volatile image; marks its line dirty. *)
  val store : cursor -> int -> int -> unit

  (** Compare-and-swap one word; returns whether it succeeded. *)
  val cas : cursor -> int -> expected:int -> desired:int -> bool

  (** Atomic fetch-and-add; returns the previous value. *)
  val fetch_add : cursor -> int -> int -> int

  (** Request an asynchronous line write-back, deduplicated in O(1) against
      the cursor's pending buffer. *)
  val write_back : cursor -> int -> unit

  (** Wait for the cursor's outstanding write-backs: one latency charge per
      drained batch. *)
  val fence : cursor -> unit

  (** [persist cu addr] = [write_back] + [fence]: one non-batched sync. *)
  val persist : cursor -> int -> unit

  (** Write-backs queued but not yet fenced on this cursor. *)
  val pending_count : cursor -> int
end

(** {1 Primitive accesses}

    All primitives raise [Invalid_argument] on out-of-bounds addresses and
    participate in crash injection (see [set_trip]). *)

(** Read a word through the volatile image. *)
val load : t -> tid:int -> int -> int

(** Write a word to the volatile image; marks its line dirty. *)
val store : t -> tid:int -> int -> int -> unit

(** Compare-and-swap one word; returns whether it succeeded. *)
val cas : t -> tid:int -> int -> expected:int -> desired:int -> bool

(** Atomic fetch-and-add; returns the previous value. *)
val fetch_add : t -> tid:int -> int -> int -> int

(** {1 Durability}

    [write_back] requests an asynchronous line write-back (deduplicated per
    domain); [fence] waits for the domain's outstanding write-backs,
    charging the NVRAM write latency once per batch (the paper's batched
    [clwb] cost model, section 6.1). *)

(** Queue an asynchronous write-back of [addr]'s line (the [clwb]
    analogue), deduplicated against the domain's pending buffer. *)
val write_back : t -> tid:int -> int -> unit

(** Drain the domain's pending write-backs into the durable image (the
    [sfence] analogue); charges the NVRAM write latency once per batch. *)
val fence : t -> tid:int -> unit

(** [persist t ~tid addr] = [write_back] + [fence]: one non-batched sync. *)
val persist : t -> tid:int -> int -> unit

(** Write back every dirty line and wait — a clean shutdown. *)
val flush_all : t -> tid:int -> unit

(** {1 Crash and restart} *)

(** [crash ?seed ?eviction_probability t] simulates a power failure and
    restart: each dirty (or pending) line reaches the durable image with
    probability [eviction_probability] (default 0.5); the volatile image is
    then reloaded from the durable one. Call only while no other domain is
    accessing the heap. *)
val crash : ?seed:int -> ?eviction_probability:float -> t -> unit

(** [crash_with t ~keep] is [crash] with a {e chosen} eviction outcome: each
    dirty line reaches the durable image iff [keep line]. The deterministic
    building block for exhaustive crash-state enumeration. *)
val crash_with : t -> keep:(int -> bool) -> unit

(** {1 State capture (crash-state enumeration)}

    [snapshot] captures the full simulator state (volatile + durable images,
    dirty and invalidation bits); [restore] puts it back and forgets all
    pending write-backs, disarming the trip-wire. Take one snapshot at a trip
    point, then [restore] + [crash_with] once per eviction subset.
    Single-domain use, like [crash]. *)

(** An opaque full-state capture. *)
type snapshot

(** Capture the full simulator state. *)
val snapshot : t -> snapshot

(** Restore a captured state; forgets pending write-backs, disarms the
    trip-wire. *)
val restore : t -> snapshot -> unit

(** {1 Crash injection}

    [set_trip t n] arms a countdown decremented by every store / CAS /
    write-back / fence; the primitive that reaches zero raises [Crashed],
    aborting the enclosing operation mid-flight (then the trip-wire disarms
    itself). Single-domain use. *)

(** Arm the trip-wire [n] primitive accesses from now. *)
val set_trip : t -> int -> unit

(** Disarm a pending trip-wire (idempotent). *)
val disarm_trip : t -> unit

(** {1 Statistics} *)

(** [stats t tid] is domain [tid]'s live counter record. *)
val stats : t -> int -> Pstats.t

(** Sum of all domains' counters (freshly allocated). *)
val aggregate_stats : t -> Pstats.t

(** Zero every domain's counters. *)
val reset_stats : t -> unit

(** {1 Introspection (tests)} *)

(** Contents of the durable image, bypassing the volatile image. *)
val durable_load : t -> int -> int

(** Whether [addr]'s cache line holds volatile data not yet durable. *)
val line_is_dirty : t -> int -> bool

(** Number of dirty lines. *)
val dirty_line_count : t -> int

(** Indices of all dirty lines, ascending. *)
val dirty_lines : t -> int list

(** Volatile contents of [addr] with no counters, no crash tick, no observer
    event — the read an observer may use from inside a hook. *)
val peek : t -> int -> int

(** Write-backs queued but not yet fenced by domain [tid]. *)
val pending_count : t -> tid:int -> int
