(** Bounded exponential backoff for spin-wait loops.

    Each [once] spins [Domain.cpu_relax] for an exponentially growing number
    of iterations. Once the bound saturates, every further step also yields
    the OS timeslice: with fewer cores than runnable domains the thread we
    are waiting on may be descheduled, and pure spinning would starve it for
    a whole quantum (this repo's CI box has a single core, where that
    degenerate case is the common one). *)

type t = { mutable spins : int }

let initial_spins = 1

(* Past this many relaxations per step, spinning is no longer buying
   anything: the awaited domain is almost certainly not running. *)
let max_spins = 256

let make () = { spins = initial_spins }
let reset b = b.spins <- initial_spins

let once b =
  for _ = 1 to b.spins do
    Domain.cpu_relax ()
  done;
  if b.spins < max_spins then b.spins <- b.spins * 2
  else (* Saturated: hand the holder a timeslice. *) Unix.sleepf 0.
