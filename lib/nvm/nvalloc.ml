(** Persistent page/size-class allocator.

    Models the paper's modified jemalloc (section 5.3): the managed span is
    divided into fixed-size {e pages} (4 KiB by default); each page serves
    one size class and carries its durable metadata — a status word and an
    allocation bitmap — in its first cache line. Pages are acquired whole by
    one thread, so consecutive allocations by a thread come from the same
    page: the locality NV-epochs exploits.

    Durability contract (the paper's, verbatim): metadata updates issue
    write-backs but never wait for them. The data-structure code fences before
    linking a new node, which also drains the allocator's pending write-backs;
    hence a durably linked node always has durably set bitmap bits, while the
    converse (allocated-but-unlinked at crash time) is what the NV-epochs
    recovery sweep repairs.

    [next_alloc_addr] exposes the address the next allocation will return —
    the hook NV-epochs needs to mark a page active {e before} allocating from
    it (Figure 4). *)

type t = {
  heap : Heap.t;
  base : int;  (** first word of the managed span (page-aligned carve) *)
  page_words : int;
  n_pages : int;
  next_page : int Atomic.t;  (** bump index of the next virgin page *)
  free_pages : int Queue.t;  (** recycled uninitialized pages (post-crash) *)
  free_pages_lock : Mutex.t;
  current : int array array;  (** [tid].(class_idx) -> page addr or -1 *)
  next_slot : int array array;  (** [tid].(class_idx) -> next fresh slot *)
  recycle : bin array array;  (** [tid].(class_idx) -> recycled slots, by page *)
}

(* Freed slots are binned by page and drained one page at a time, like
   jemalloc runs: consecutive allocations from recycled memory then come
   from the same page, which is what gives NV-epochs its ~100% allocation
   hit rate (Figure 9a). *)
and bin = {
  mutable draining : int;  (** page currently being drained, or -1 *)
  by_page : (int, int list ref) Hashtbl.t;
}

let header_words = Cacheline.words_per_line
let magic = 0x5A11 (* "alloc" page marker, stored in the high status bits *)
let status_word page = page
let bitmap_word page i = page + 1 + i
let bits_per_word = 60
let max_bitmap_words = 6

(** Size classes are multiples of a cache line, from 8 to 64 words. *)
let n_classes = 8

let class_index ~size_class =
  if
    size_class < Cacheline.words_per_line
    || size_class mod Cacheline.words_per_line <> 0
    || size_class > n_classes * Cacheline.words_per_line
  then invalid_arg "Nvalloc: size class must be 8..64 words, multiple of 8";
  (size_class / Cacheline.words_per_line) - 1

let encode_status ~size_class = (magic lsl 32) lor size_class

let decode_status v =
  if v lsr 32 <> magic then None else Some (v land 0xFFFF)

let create heap ~base ~size_words ?(page_words = 512) () =
  if page_words mod Cacheline.words_per_line <> 0 || page_words <= header_words
  then invalid_arg "Nvalloc.create: bad page size";
  if not (Cacheline.is_aligned base) then invalid_arg "Nvalloc.create: base";
  let n_pages = size_words / page_words in
  if n_pages < 1 then invalid_arg "Nvalloc.create: region too small";
  {
    heap;
    base;
    page_words;
    n_pages;
    next_page = Atomic.make 0;
    free_pages = Queue.create ();
    free_pages_lock = Mutex.create ();
    current = Array.make_matrix Pstats.max_threads n_classes (-1);
    next_slot = Array.make_matrix Pstats.max_threads n_classes 0;
    recycle =
      Array.init Pstats.max_threads (fun _ ->
          Array.init n_classes (fun _ ->
              { draining = -1; by_page = Hashtbl.create 16 }));
  }

let page_addr t idx = t.base + (idx * t.page_words)

(** Base address of the page containing [addr]. *)
let page_of t addr =
  if addr < t.base || addr >= t.base + (t.n_pages * t.page_words) then
    invalid_arg "Nvalloc.page_of: address outside managed span";
  t.base + ((addr - t.base) / t.page_words * t.page_words)

let page_words t = t.page_words

let slots_per_page t ~size_class =
  min ((t.page_words - header_words) / size_class) (bits_per_word * max_bitmap_words)

let slot_addr _t ~page ~size_class slot = page + header_words + (slot * size_class)

let slot_of _t ~page ~size_class addr =
  let off = addr - page - header_words in
  if off < 0 || off mod size_class <> 0 then
    invalid_arg "Nvalloc: address is not a slot boundary";
  off / size_class

(* Recycle bins. *)

let bin_push t bin addr =
  let page = page_of t addr in
  (match Hashtbl.find_opt bin.by_page page with
  | Some slots -> slots := addr :: !slots
  | None -> Hashtbl.replace bin.by_page page (ref [ addr ]));
  if bin.draining < 0 then bin.draining <- page

let rec bin_peek bin =
  if bin.draining < 0 then None
  else
    match Hashtbl.find_opt bin.by_page bin.draining with
    | Some { contents = addr :: _ } -> Some addr
    | Some { contents = [] } | None ->
        Hashtbl.remove bin.by_page bin.draining;
        (* Pick any other page to drain next. *)
        let next = Hashtbl.fold (fun page _ _ -> page) bin.by_page (-1) in
        bin.draining <- next;
        bin_peek bin

let bin_pop bin =
  match bin_peek bin with
  | None -> None
  | Some addr ->
      (match Hashtbl.find_opt bin.by_page bin.draining with
      | Some slots -> slots := List.tl !slots
      | None -> assert false);
      Some addr

(* Durable bitmap manipulation; CAS loop because slots of a page can be freed
   by any thread. Internals run on the caller's heap cursor. *)

let rec set_bit ~page cu slot value =
  let w = bitmap_word page (slot / bits_per_word) in
  let bit = 1 lsl (slot mod bits_per_word) in
  let old_v = Heap.Cursor.load cu w in
  let new_v = if value then old_v lor bit else old_v land lnot bit in
  if old_v = new_v then ()
  else if Heap.Cursor.cas cu w ~expected:old_v ~desired:new_v then
    Heap.Cursor.write_back cu w
  else set_bit ~page cu slot value

let bit_is_set ~page cu slot =
  let w = bitmap_word page (slot / bits_per_word) in
  Heap.Cursor.load cu w land (1 lsl (slot mod bits_per_word)) <> 0

(* Page acquisition. *)

let take_free_page t =
  Mutex.lock t.free_pages_lock;
  let p = if Queue.is_empty t.free_pages then None else Some (Queue.pop t.free_pages) in
  Mutex.unlock t.free_pages_lock;
  p

exception Out_of_memory

let acquire_page t cu ~size_class =
  let page =
    match take_free_page t with
    | Some p -> p
    | None ->
        let idx = Atomic.fetch_and_add t.next_page 1 in
        if idx >= t.n_pages then raise Out_of_memory;
        page_addr t idx
  in
  (* Initialize durable metadata: status + cleared bitmap. Write-backs are
     issued but not awaited (covered by the next fence on this thread). *)
  Heap.Cursor.store cu (status_word page) (encode_status ~size_class);
  for i = 0 to max_bitmap_words - 1 do
    Heap.Cursor.store cu (bitmap_word page i) 0
  done;
  Heap.Cursor.write_back cu (status_word page);
  page

(* Allocation. *)

let refill t cu ~size_class ci =
  let tid = Heap.Cursor.tid cu in
  let page = acquire_page t cu ~size_class in
  t.current.(tid).(ci) <- page;
  t.next_slot.(tid).(ci) <- 0

(** Address the next [alloc] with the same parameters will return. May
    acquire a fresh page as a side effect (idempotent w.r.t. the subsequent
    [alloc]). *)
let next_alloc_addr_c t cu ~size_class =
  let tid = Heap.Cursor.tid cu in
  let ci = class_index ~size_class in
  match bin_peek t.recycle.(tid).(ci) with
  | Some addr -> addr
  | None ->
      let page = t.current.(tid).(ci) in
      if page < 0 || t.next_slot.(tid).(ci) >= slots_per_page t ~size_class then
        refill t cu ~size_class ci;
      slot_addr t
        ~page:t.current.(tid).(ci)
        ~size_class
        t.next_slot.(tid).(ci)

let next_alloc_addr t ~tid ~size_class =
  next_alloc_addr_c t (Heap.cursor t.heap ~tid) ~size_class

let alloc_c t cu ~size_class =
  let tid = Heap.Cursor.tid cu in
  let ci = class_index ~size_class in
  let addr =
    match bin_pop t.recycle.(tid).(ci) with
    | Some addr -> addr
    | None ->
        let page = t.current.(tid).(ci) in
        if page < 0 || t.next_slot.(tid).(ci) >= slots_per_page t ~size_class
        then refill t cu ~size_class ci;
        let slot = t.next_slot.(tid).(ci) in
        t.next_slot.(tid).(ci) <- slot + 1;
        slot_addr t ~page:t.current.(tid).(ci) ~size_class slot
  in
  let page = page_of t addr in
  set_bit ~page cu (slot_of t ~page ~size_class addr) true;
  let st = Heap.Cursor.stats cu in
  st.allocs <- st.allocs + 1;
  if Heap.observed t.heap then
    Heap.annotate t.heap ~tid (Heap.A_alloc { addr; size_class });
  addr

let alloc t ~tid ~size_class = alloc_c t (Heap.cursor t.heap ~tid) ~size_class

let size_class_of_c t cu addr =
  let page = page_of t addr in
  match decode_status (Heap.Cursor.load cu (status_word page)) with
  | Some c -> c
  | None -> invalid_arg "Nvalloc.size_class_of: uninitialized page"

(** Size class of the (initialized) page containing [addr]. *)
let size_class_of t ~tid addr = size_class_of_c t (Heap.cursor t.heap ~tid) addr

let free_c t cu addr =
  let tid = Heap.Cursor.tid cu in
  let page = page_of t addr in
  let size_class = size_class_of_c t cu addr in
  let slot = slot_of t ~page ~size_class addr in
  set_bit ~page cu slot false;
  let ci = class_index ~size_class in
  bin_push t t.recycle.(tid).(ci) addr;
  let st = Heap.Cursor.stats cu in
  st.frees <- st.frees + 1;
  if Heap.observed t.heap then Heap.annotate t.heap ~tid (Heap.A_free { addr })

let free t ~tid addr = free_c t (Heap.cursor t.heap ~tid) addr

(* Recovery. *)

(** Iterate over the addresses of all allocated slots of [page], according to
    the durable bitmap. *)
let iter_allocated t ~tid ~page f =
  let cu = Heap.cursor t.heap ~tid in
  match decode_status (Heap.Cursor.load cu (status_word page)) with
  | None -> ()
  | Some size_class ->
      let n = slots_per_page t ~size_class in
      for slot = 0 to n - 1 do
        if bit_is_set ~page cu slot then
          f (slot_addr t ~page ~size_class slot)
      done

(** Rebuild the volatile allocator state from durable page metadata after a
    crash. Initialized pages keep their contents; their free slots are dealt
    round-robin to thread recycle queues so they can be reused. Uninitialized
    pages below the bump point return to the free-page pool. *)
let recover heap ~base ~size_words ?(page_words = 512) ?(nthreads = 1) () =
  let t = create heap ~base ~size_words ~page_words () in
  let cu = Heap.cursor heap ~tid:0 in
  let deal = ref 0 in
  let last_used = ref (-1) in
  for idx = 0 to t.n_pages - 1 do
    let page = page_addr t idx in
    match decode_status (Heap.Cursor.load cu (status_word page)) with
    | None -> ()
    | Some size_class ->
        last_used := idx;
        let ci = class_index ~size_class in
        let n = slots_per_page t ~size_class in
        (* Whole pages go to one thread so recycled allocation keeps its
           page locality after a restart. *)
        let target = !deal mod nthreads in
        let any = ref false in
        for slot = 0 to n - 1 do
          if not (bit_is_set ~page cu slot) then begin
            bin_push t t.recycle.(target).(ci) (slot_addr t ~page ~size_class slot);
            any := true
          end
        done;
        if !any then incr deal
  done;
  Atomic.set t.next_page (!last_used + 1);
  for idx = 0 to !last_used - 1 do
    let page = page_addr t idx in
    if decode_status (Heap.Cursor.load cu (status_word page)) = None then
      Queue.push page t.free_pages
  done;
  t

(** Number of allocated slots across all initialized pages (sequential;
    tests and recovery reporting). *)
let allocated_count t ~tid =
  let n = ref 0 in
  for idx = 0 to Atomic.get t.next_page - 1 do
    if idx < t.n_pages then
      iter_allocated t ~tid ~page:(page_addr t idx) (fun _ -> incr n)
  done;
  !n

(** All initialized page base addresses. *)
let initialized_pages t ~tid =
  let cu = Heap.cursor t.heap ~tid in
  let acc = ref [] in
  for idx = Atomic.get t.next_page - 1 downto 0 do
    if idx < t.n_pages then begin
      let page = page_addr t idx in
      if decode_status (Heap.Cursor.load cu (status_word page)) <> None then
        acc := page :: !acc
    end
  done;
  !acc
