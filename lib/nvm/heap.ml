(** Simulated persistent memory.

    The heap is a flat array of 64-bit words with two images:

    - the {e volatile} image — what loads, stores and CAS observe. It stands
      for the CPU caches plus the memory as seen through them;
    - the {e durable} image — what survives a crash. It stands for the bytes
      physically resident in NVRAM.

    A store only touches the volatile image and marks its cache line dirty.
    Data moves to the durable image when

    - the program issues a write-back ([write_back], the [clwb] analogue)
      followed by a [fence] (the [sfence] analogue) — the guaranteed path; or
    - the simulated cache {e evicts} the line: at crash time every dirty line
      is independently written back with probability [eviction_probability],
      modelling the fact that programs do not control eviction order.

    [fence] drains the calling domain's pending write-backs and charges the
    NVRAM write latency {e once per batch} (section 6.1 of the paper: several
    outstanding [clwb]s complete in parallel).

    {b Cursors.} All per-domain state — the stats record, the pending
    write-back buffer and its O(1) dedup stamp table — lives in a [cursor],
    one per possible tid, created eagerly with the heap. The [Cursor]
    operations are the hot path: they touch no registry and perform no
    per-op tid indirection. The [~tid] entry points remain as thin shims
    (one bounds check + one array read) so existing callers and tests keep
    working unchanged; both paths maintain identical counters.

    Crash injection for tests: [set_trip] arms a countdown decremented by
    every primitive; when it reaches zero the primitive raises [Crashed],
    aborting the operation mid-flight. [crash] then produces the post-restart
    state. This exposes every intermediate state an algorithm can leave in
    NVRAM, which is exactly what durable linearizability quantifies over. *)

exception Crashed

(** Which write-back instruction the program uses (section 2 of the paper):
    [Clwb] writes back without invalidating and batches under one fence;
    [Clflushopt] also batches but invalidates the line (the next load pays
    an NVRAM read); [Clflush] additionally serializes — every write-back
    completes immediately, alone. *)
type wb_instruction = Clwb | Clflushopt | Clflush

(** Why a line moved to the durable image. Checkers distinguish the ordered
    paths (fence / clflush / shutdown) from drains that carry no ordering
    guarantee: an overflow drain models the write-combining queue spilling on
    its own, and a crash drain models uncontrolled eviction — data that gets
    durable through either is durable {e by luck}, and a sanitizer must not
    credit the program for it. *)
type drain_reason =
  | Drain_fence  (** explicit [fence] retiring the pending batch *)
  | Drain_overflow  (** pending buffer overflow: no ordering guarantee *)
  | Drain_clflush  (** serializing [Clflush] write-back *)
  | Drain_shutdown  (** [flush_all] clean shutdown *)
  | Drain_crash  (** random eviction at crash time *)

(** Protocol-level facts the layers above the heap announce to an attached
    observer ([annotate]). The heap itself never interprets them; they exist
    so an observer can track allocator and reclamation state without the
    allocator depending on the sanitizer. *)
type annotation =
  | A_alloc of { addr : int; size_class : int }
  | A_free of { addr : int }
  | A_retire of { addr : int }
  | A_reclaim of { nodes : int list; snapshot : int array; current : int array }
      (** epoch-based reclamation about to free [nodes]; [snapshot] is the
          epoch vector recorded at unlink time, [current] the vector now *)
  | A_lc_register of { link : int }
      (** [link]'s latest value is parked in the link cache: its durability
          is the cache's business until the line next drains *)
  | A_validity of { addr : int; state : int }
      (** the link-free validity word at [addr] transitioned to [state]
          (0 = invalid, 1 = valid, 2 = deleted); emitted before the
          write-back that makes the transition durable *)
  | A_op_begin of { name : string; key : int }
      (** [key] is the operation's key argument, 0 when it has none — a
          tracer attributes spans to keys with it *)
  | A_op_end of { ret : int }
      (** [ret] is the operation's encoded result ([op_ret_unknown] when the
          bracket had no encoder, or the op died in an exception) — a
          linearizability checker reconstructs histories with it *)
  | A_hb_acquire of { obj : int }
      (** the acting thread read synchronization object [obj] and now
          happens-after its last release ([obj] < 0 names a virtual object
          with no heap address, e.g. an epoch counter) *)
  | A_hb_release of { obj : int }
      (** the acting thread published its causal past through [obj];
          later acquirers of [obj] happen-after this point *)

(** [A_op_end]'s result encoding when the operation result is unknown. *)
let op_ret_unknown = min_int

(** Virtual synchronization object standing for thread [tid]'s epoch
    counter (an OCaml [Atomic], not a heap word — hence no address). *)
let epoch_hb_obj ~tid = -(tid + 1)

(** One observable heap event. Emitted {e after} the primitive applied, so a
    handler sees the pre-event world in its own shadow state and the
    post-event world in the heap. *)
type event =
  | Ev_load of { tid : int; addr : int; value : int }
  | Ev_store of { tid : int; addr : int; value : int; old : int }
  | Ev_cas of { tid : int; addr : int; expected : int; desired : int; success : bool }
  | Ev_write_back of { tid : int; addr : int }
  | Ev_fence of { tid : int }
  | Ev_drain of { line : int; reason : drain_reason }
  | Ev_crash
  | Ev_note of { tid : int; note : annotation }

type t = {
  size_words : int;
  n_lines : int;
  volatile : int Atomic.t array;
  durable : int array;
  dirty : Bytes.t;  (** one byte per cache line; 0 = clean *)
  latency : Latency_model.t;
  stats : Pstats.registry;
  mutable trip : int;  (** crash-injection countdown; -1 = disarmed *)
  invalid : Bytes.t;  (** lines invalidated by clflush/clflushopt *)
  mutable wb_instruction : wb_instruction;
  mutable cursors : cursor array;  (** one per tid; filled right after create *)
  mutable observer : (event -> unit) option;
      (** composed observer hook; every primitive guards on [None] with one
          field load + branch, so the disabled cost is a predictable
          never-taken branch and no allocation. Never written directly:
          recomputed from [observers] by [Observer.add] / [Observer.remove] *)
  mutable observers : (int * (event -> unit)) list;
      (** registered observers, oldest first, keyed by handle *)
  mutable next_observer_id : int;
}

and cursor = {
  h : t;
  tid : int;
  st : Pstats.t;  (** this domain's counters, fetched once *)
  buf : int array;  (** pending lines awaiting the next fence *)
  mutable n : int;  (** valid prefix of [buf] *)
  mutable stamps : int array;
      (** per-line generation stamps; [stamps.(line) = gen] iff the line is
          queued in [buf]. Sized lazily on first use ([[||]] until then). *)
  mutable gen : int;  (** bumped on every drain: O(1) stamp reset *)
  _pad : int array;
      (** two-line spacer allocated just before the record: [n] and [gen]
          are written on every write-back/fence, and neighbouring tids must
          not invalidate each other's cache line. Reachable from here so the
          GC cannot collect it and compact the records back together. *)
}

let max_pending = 4096

let make_cursor t tid =
  let pad = Array.make 16 0 in
  { h = t; tid; st = Pstats.get t.stats tid; buf = Array.make max_pending 0;
    n = 0; stamps = [||]; gen = 1; _pad = pad }

let create ?(latency = Latency_model.no_injection ()) ~size_words () =
  if size_words <= 0 then invalid_arg "Heap.create: size";
  let lines = Cacheline.line_of_addr (size_words - 1) + 1 in
  let t =
    {
      size_words;
      n_lines = lines;
      volatile = Array.init size_words (fun _ -> Atomic.make 0);
      durable = Array.make size_words 0;
      dirty = Bytes.make lines '\000';
      latency;
      stats = Pstats.make_registry ();
      trip = -1;
      invalid = Bytes.make lines '\000';
      wb_instruction = Clwb;
      cursors = [||];
      observer = None;
      observers = [];
      next_observer_id = 0;
    }
  in
  t.cursors <- Array.init Pstats.max_threads (fun tid -> make_cursor t tid);
  t

let size_words t = t.size_words
let set_wb_instruction t kind = t.wb_instruction <- kind
let wb_instruction t = t.wb_instruction
let latency t = t.latency
let stats t tid = Pstats.get t.stats tid
let aggregate_stats t = Pstats.aggregate t.stats
let reset_stats t = Pstats.reset_registry t.stats

(* Observer plumbing. Multiple observers (a sanitizer and a tracer, say) can
   coexist: each [Observer.add] registers a callback and the composed
   dispatch closure in [observer] is recomputed, so the hot path keeps its
   single field-load + never-taken branch when nobody listens and a direct
   call (no list walk) with exactly one listener. Add/remove only at
   quiescent points: primitives read [observer] unsynchronized. *)

module Observer = struct
  type handle = int

  let recompose t =
    t.observer <-
      (match t.observers with
      | [] -> None
      | [ (_, f) ] -> Some f
      | fs ->
          (* Delivery in registration order; materialized once so dispatch
             does not rebuild the list per event. *)
          let arr = Array.of_list (List.map snd fs) in
          Some
            (fun ev ->
              for i = 0 to Array.length arr - 1 do
                (Array.unsafe_get arr i) ev
              done))

  let add t f =
    let id = t.next_observer_id in
    t.next_observer_id <- id + 1;
    t.observers <- t.observers @ [ (id, f) ];
    recompose t;
    id

  let remove t id =
    t.observers <- List.filter (fun (id', _) -> id' <> id) t.observers;
    recompose t

  let count t = List.length t.observers
end

let observed t = match t.observer with None -> false | Some _ -> true

(** Forward a protocol annotation to the observer, if any. Callers on hot
    paths should pre-guard with [observed] to avoid building the annotation
    when nobody listens. *)
let annotate t ~tid note =
  match t.observer with None -> () | Some f -> f (Ev_note { tid; note })

let cursor t ~tid =
  if tid < 0 || tid >= Array.length t.cursors then
    invalid_arg (Printf.sprintf "Heap.cursor: tid %d out of range" tid);
  Array.unsafe_get t.cursors tid

(* An [int Atomic.t] is a single-field heap block, so it has the same layout
   as [int ref]: viewing it as a ref gives fence-free plain access (the
   multicore-magic idiom). Used only where the memory model allows it —
   the drain loop copies lines whose latest value the draining domain
   already synchronized with, and [crash] is documented single-domain. *)
let fenceless_get (a : int Atomic.t) : int = !(Obj.magic a : int ref)
let fenceless_set (a : int Atomic.t) v = (Obj.magic a : int ref) := v

(* Crash injection. *)

let set_trip t n = t.trip <- n
let disarm_trip t = t.trip <- -1

let tick t =
  if t.trip >= 0 then begin
    if t.trip = 0 then begin
      t.trip <- -1;
      raise Crashed
    end;
    t.trip <- t.trip - 1
  end

(* Primitive accesses. All bounds checks happen here, once; past them the
   unsafe accessors are used. *)

let check t addr =
  if addr < 0 || addr >= t.size_words then
    invalid_arg (Printf.sprintf "Heap: address %d out of bounds" addr)

let mark_dirty t addr = Bytes.unsafe_set t.dirty (Cacheline.line_of_addr addr) '\001'

module Cursor = struct
  let heap cu = cu.h
  let tid cu = cu.tid
  let stats cu = cu.st
  let pending_count cu = cu.n

  let load cu addr =
    let t = cu.h in
    check t addr;
    let st = cu.st in
    st.loads <- st.loads + 1;
    let line = Cacheline.line_of_addr addr in
    if Bytes.unsafe_get t.invalid line <> '\000' then begin
      (* The line was invalidated by a flush: this load misses to NVRAM. *)
      Bytes.unsafe_set t.invalid line '\000';
      if t.latency.Latency_model.inject then
        Latency_model.spin_ns t.latency.Latency_model.nvram_read_ns
    end;
    let v = Atomic.get (Array.unsafe_get t.volatile addr) in
    (match t.observer with
    | None -> ()
    | Some f -> f (Ev_load { tid = cu.tid; addr; value = v }));
    v

  let store cu addr v =
    let t = cu.h in
    check t addr;
    tick t;
    let st = cu.st in
    st.stores <- st.stores + 1;
    (match t.observer with
    | None ->
        Atomic.set (Array.unsafe_get t.volatile addr) v;
        mark_dirty t addr
    | Some f ->
        (* The overwritten value is only needed for shadow edge tracking;
           single-writer-per-word discipline makes the relaxed read exact. *)
        let cell = Array.unsafe_get t.volatile addr in
        let old = fenceless_get cell in
        Atomic.set cell v;
        mark_dirty t addr;
        f (Ev_store { tid = cu.tid; addr; value = v; old }))

  let cas cu addr ~expected ~desired =
    let t = cu.h in
    check t addr;
    tick t;
    let st = cu.st in
    st.cas <- st.cas + 1;
    let ok =
      Atomic.compare_and_set (Array.unsafe_get t.volatile addr) expected desired
    in
    if ok then mark_dirty t addr;
    (match t.observer with
    | None -> ()
    | Some f -> f (Ev_cas { tid = cu.tid; addr; expected; desired; success = ok }));
    ok

  let fetch_add cu addr delta =
    let t = cu.h in
    check t addr;
    tick t;
    let st = cu.st in
    st.cas <- st.cas + 1;
    let v = Atomic.fetch_and_add (Array.unsafe_get t.volatile addr) delta in
    mark_dirty t addr;
    (match t.observer with
    | None -> ()
    | Some f -> f (Ev_store { tid = cu.tid; addr; value = v + delta; old = v }));
    v

  (* Write-backs and fences. *)

  (* Drain one line. Dirty-bit/durable-image consistency contract: the bit
     is cleared first, then the words copied, and only then is the observer
     notified — so no point inside a drain where an exception can originate
     (only the observer can raise here) ever sees a clean bit with a stale
     durable line. Clearing first also keeps a concurrent writer safe: its
     [mark_dirty] lands after its store, so a store racing the copy leaves
     the bit set (conservative) rather than a dirty word behind a clean bit. *)
  let drain_line t reason line =
    let base = Cacheline.addr_of_line line in
    let hi = min (base + Cacheline.words_per_line) t.size_words in
    Bytes.unsafe_set t.dirty line '\000';
    for a = base to hi - 1 do
      Array.unsafe_set t.durable a (fenceless_get (Array.unsafe_get t.volatile a))
    done;
    match t.observer with
    | None -> ()
    | Some f -> f (Ev_drain { line; reason })

  (* Drain this cursor's whole pending buffer as one completed batch. The
     generation bump un-stamps every queued line in O(1). If the observer
     aborts mid-batch (a sanitizer running in raise-on-violation mode) the
     buffer is still reset: every line either fully drained or is still
     marked dirty, so the crash image stays consistent; re-queueing the
     undrained tail would claim an ordering the interrupted fence never
     provided. *)
  let drain_pending ~reason cu =
    let t = cu.h in
    let st = cu.st and n = cu.n in
    st.sync_batches <- st.sync_batches + 1;
    st.lines_drained <- st.lines_drained + n;
    let buf = cu.buf in
    (try
       for i = 0 to n - 1 do
         drain_line t reason (Array.unsafe_get buf i)
       done
     with e ->
       cu.n <- 0;
       cu.gen <- cu.gen + 1;
       raise e);
    cu.n <- 0;
    cu.gen <- cu.gen + 1;
    Latency_model.charge_sync t.latency

  let write_back cu addr =
    let t = cu.h in
    check t addr;
    tick t;
    let st = cu.st in
    st.write_backs <- st.write_backs + 1;
    let line = Cacheline.line_of_addr addr in
    (match t.observer with
    | None -> ()
    | Some f -> f (Ev_write_back { tid = cu.tid; addr }));
    (match t.wb_instruction with
    | Clwb -> ()
    | Clflushopt | Clflush -> Bytes.unsafe_set t.invalid line '\001');
    if t.wb_instruction = Clflush then begin
      (* clflush is ordered: it completes by itself, with no batching. *)
      drain_line t Drain_clflush line;
      st.sync_batches <- st.sync_batches + 1;
      st.lines_drained <- st.lines_drained + 1;
      Latency_model.charge_sync t.latency
    end
    else begin
      if Array.length cu.stamps = 0 then cu.stamps <- Array.make t.n_lines 0;
      let stamps = cu.stamps in
      (* O(1) dedup: the line is already queued iff its stamp carries the
         current generation (the seed scanned the buffer, O(pending_n)). *)
      if Array.unsafe_get stamps line <> cu.gen then begin
        if cu.n >= max_pending then
          (* The write-combining queue is full: hardware drains it on its
             own. Model that as an implicit batch completion — one that,
             unlike a fence, guarantees nothing about ordering. Queueing
             continues below with the drained (empty) buffer; the seed
             recursed here, ticking the trip-wire twice for one logical
             write-back. *)
          drain_pending ~reason:Drain_overflow cu;
        let n = cu.n in
        Array.unsafe_set stamps line cu.gen;
        Array.unsafe_set cu.buf n line;
        cu.n <- n + 1
      end
    end

  let fence cu =
    let t = cu.h in
    tick t;
    let st = cu.st in
    st.fences <- st.fences + 1;
    if cu.n > 0 then
      (* One batch of parallel write-backs completes in ~one NVRAM write. *)
      drain_pending ~reason:Drain_fence cu;
    match t.observer with
    | None -> ()
    | Some f -> f (Ev_fence { tid = cu.tid })

  (** [persist cu addr] = write-back + fence of a single line: the
      non-batched sync operation. *)
  let persist cu addr =
    write_back cu addr;
    fence cu
end

(* [~tid] shims: one range check and one array read away from the cursor
   fast path. Counters are bumped by the cursor ops, so both entry points
   account identically. *)

let load t ~tid addr = Cursor.load (cursor t ~tid) addr
let store t ~tid addr v = Cursor.store (cursor t ~tid) addr v
let cas t ~tid addr ~expected ~desired = Cursor.cas (cursor t ~tid) addr ~expected ~desired
let fetch_add t ~tid addr delta = Cursor.fetch_add (cursor t ~tid) addr delta
let write_back t ~tid addr = Cursor.write_back (cursor t ~tid) addr
let fence t ~tid = Cursor.fence (cursor t ~tid)
let persist t ~tid addr = Cursor.persist (cursor t ~tid) addr

(* Forget every domain's pending write-backs (the lines themselves remain
   dirty or drained as the caller arranged). *)
let clear_all_pending t =
  Array.iter
    (fun cu ->
      cu.n <- 0;
      cu.gen <- cu.gen + 1)
    t.cursors

(** Write back every dirty line and wait: a clean shutdown. *)
let flush_all t ~tid =
  for line = 0 to t.n_lines - 1 do
    if Bytes.unsafe_get t.dirty line <> '\000' then
      Cursor.drain_line t Drain_shutdown line
  done;
  clear_all_pending t;
  let st = Pstats.get t.stats tid in
  st.fences <- st.fences + 1;
  Latency_model.charge_sync t.latency

(* Crash and restart. *)

(** [crash_with t ~keep] simulates a power failure with a {e chosen} eviction
    outcome: each dirty line (pending write-backs included) reaches the
    durable image iff [keep line] is true; every other dirty line loses its
    volatile contents. The volatile image is then reloaded from the durable
    image, as after a reboot that maps the NVRAM region back at the same
    addresses. Deterministic building block for exhaustive crash-state
    enumeration; must be called when no other domain is accessing the heap. *)
let crash_with t ~keep =
  Timeline.span_current "heap.crash" (fun () ->
      t.trip <- -1;
      Timeline.span_current "heap.evict" (fun () ->
          for line = 0 to t.n_lines - 1 do
            if Bytes.unsafe_get t.dirty line <> '\000' then begin
              if keep line then Cursor.drain_line t Drain_crash line
              else Bytes.unsafe_set t.dirty line '\000'
            end
          done;
          clear_all_pending t);
      (* Single-domain by contract, so the reload can use plain stores
         instead of paying a seq_cst fence per word. *)
      Timeline.span_current "heap.reload" (fun () ->
          for a = 0 to t.size_words - 1 do
            fenceless_set
              (Array.unsafe_get t.volatile a)
              (Array.unsafe_get t.durable a)
          done);
      (* A reboot empties the caches: stale invalidation state dies with
         them. *)
      Bytes.fill t.invalid 0 (Bytes.length t.invalid) '\000';
      match t.observer with None -> () | Some f -> f Ev_crash)

(** [crash t ~seed ~eviction_probability] simulates a power failure followed
    by a restart. Must be called when no other domain is accessing the heap.

    Every line still dirty (including lines with a pending but un-fenced
    write-back) is independently flushed to the durable image with probability
    [eviction_probability]; all other dirty lines lose their volatile
    contents. *)
let crash ?(seed = 0xC0FFEE) ?(eviction_probability = 0.5) t =
  let rng = Random.State.make [| seed |] in
  crash_with t ~keep:(fun _ -> Random.State.float rng 1.0 < eviction_probability)

(* Whole-heap state capture, for deterministic crash-state enumeration: take
   one snapshot at the trip point, then [restore]+[crash_with] once per
   eviction subset. Single-domain use, like [crash]. *)

type snapshot = {
  snap_volatile : int array;
  snap_durable : int array;
  snap_dirty : Bytes.t;
  snap_invalid : Bytes.t;
}

let snapshot t =
  {
    snap_volatile =
      Array.init t.size_words (fun a -> fenceless_get (Array.unsafe_get t.volatile a));
    snap_durable = Array.copy t.durable;
    snap_dirty = Bytes.copy t.dirty;
    snap_invalid = Bytes.copy t.invalid;
  }

let restore t s =
  if Array.length s.snap_volatile <> t.size_words then
    invalid_arg "Heap.restore: snapshot from a different heap";
  t.trip <- -1;
  for a = 0 to t.size_words - 1 do
    fenceless_set (Array.unsafe_get t.volatile a) (Array.unsafe_get s.snap_volatile a)
  done;
  Array.blit s.snap_durable 0 t.durable 0 t.size_words;
  Bytes.blit s.snap_dirty 0 t.dirty 0 (Bytes.length s.snap_dirty);
  Bytes.blit s.snap_invalid 0 t.invalid 0 (Bytes.length s.snap_invalid);
  clear_all_pending t

(* Introspection for tests. *)

(** Contents of the durable image, bypassing the volatile image. *)
let durable_load t addr =
  check t addr;
  Array.unsafe_get t.durable addr

let line_is_dirty t addr = Bytes.get t.dirty (Cacheline.line_of_addr addr) <> '\000'

let dirty_line_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.dirty;
  !n

(** Indices of all dirty lines, ascending. *)
let dirty_lines t =
  let acc = ref [] in
  for line = t.n_lines - 1 downto 0 do
    if Bytes.unsafe_get t.dirty line <> '\000' then acc := line :: !acc
  done;
  !acc

(** Volatile contents of [addr] with no counters, no crash tick, no observer
    event and no invalidation side effects — for observers that must read the
    heap from inside a hook without recursing into themselves. *)
let peek t addr =
  check t addr;
  fenceless_get (Array.unsafe_get t.volatile addr)

let pending_count t ~tid = (cursor t ~tid).n
