(** Per-domain event counters for the persistence substrate. Each domain
    (small integer [tid]) owns one record so counting is race-free;
    [aggregate] sums for reporting. Sync-operation counts drive the
    throughput ratios of Figures 5-8; the APT counters drive Figure 9a. *)

(** Maximum concurrently running domains the library supports. *)
val max_threads : int

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable cas : int;
  mutable write_backs : int;
  mutable fences : int;
  mutable sync_batches : int;  (** fences that drained pending lines *)
  mutable lines_drained : int;
  mutable log_entries : int;  (** WAL / logged-allocation records *)
  mutable apt_hits : int;
  mutable apt_misses : int;
  mutable apt_alloc_hits : int;
  mutable apt_alloc_misses : int;
  mutable apt_unlink_hits : int;
  mutable apt_unlink_misses : int;
  mutable lc_adds : int;
  mutable lc_fails : int;
  mutable lc_flushes : int;
  mutable allocs : int;
  mutable frees : int;
  mutable epoch_stalls : int;
      (** reclamation attempts blocked on an unfinished grace period *)
  mutable group_commits : int;
      (** group-commit batches retired: one covering fence each (NVServe) *)
  mutable group_ops : int;
      (** operations whose persistence rode a group-commit batch *)
  mutable deferred_links : int;
      (** link updates whose fence was deferred to a batch commit *)
}

val make : unit -> t
val copy : t -> t
val reset : t -> unit
val add : into:t -> t -> unit

(** [diff newer older] is the field-wise delta — interval reporting over two
    snapshots of the same registry. *)
val diff : t -> t -> t

(** {2 Derived metrics}

    Ratios for human-readable reports; a zero denominator yields 0. *)

(** [lc_adds / (lc_adds + lc_fails)]: link-cache insertion hit rate. *)
val lc_hit_rate : t -> float

(** [lines_drained / sync_batches]: fence batching factor. *)
val lines_per_batch : t -> float

(** [write_backs / stores]: persistence pressure of the write path. *)
val flushes_per_store : t -> float

(** [group_ops / group_commits]: mean operations per group-commit fence. *)
val ops_per_commit : t -> float

val apt_hit_rate : t -> float
val apt_alloc_hit_rate : t -> float
val apt_unlink_hit_rate : t -> float

(** One padded record per possible domain; padding isolates each record on
    its own cache lines so concurrent counting never false-shares. *)
type registry

val make_registry : unit -> registry
val get : registry -> int -> t
val aggregate : registry -> t
val reset_registry : registry -> unit
val pp : Format.formatter -> t -> unit
