(** Persistent page/size-class allocator (the paper's modified jemalloc,
    section 5.3).

    The managed span is split into fixed-size pages; each page serves one
    size class and stores its durable metadata — a status word and an
    allocation bitmap — in its first cache line. Pages are owned whole by
    one thread, so consecutive allocations are page-local (the locality
    NV-epochs exploits), and freed slots are recycled one page at a time
    (jemalloc-run style) so recycled allocation keeps that locality too.

    Durability contract: metadata updates issue write-backs but never wait;
    the structure's pre-link fence covers them, establishing that a durably
    linked node always has a durably set bitmap bit (section 5.5). *)

type t

exception Out_of_memory

(** [create heap ~base ~size_words ~page_words ()] manages
    [base, base+size_words) split into [page_words]-word pages (default 512
    words = 4 KiB). [base] must be cache-line aligned. *)
val create :
  Heap.t -> base:int -> size_words:int -> ?page_words:int -> unit -> t

(** Rebuild volatile allocator state from durable page metadata after a
    crash. Free slots of surviving pages are dealt page-wise to the first
    [nthreads] thread caches; uninitialized pages return to the pool. *)
val recover :
  Heap.t ->
  base:int ->
  size_words:int ->
  ?page_words:int ->
  ?nthreads:int ->
  unit ->
  t

(** Allocate a slot of [size_class] words (multiple of 8, at most 64). The
    bitmap bit is set durably (write-back issued, not awaited). *)
val alloc : t -> tid:int -> size_class:int -> int

(** Address the next [alloc] with the same arguments will return — the hook
    NV-epochs needs to mark a page active {e before} allocating (Fig. 4). *)
val next_alloc_addr : t -> tid:int -> size_class:int -> int

(** Clear the slot's bitmap bit (write-back issued, not awaited) and recycle
    it into the calling thread's cache. *)
val free : t -> tid:int -> int -> unit

(** Cursor-first variants of the hot entry points: identical semantics, but
    the heap cursor (which must belong to this heap) is supplied by the
    caller, saving the per-call lookup. The [~tid] versions above are shims
    over these. *)

val alloc_c : t -> Heap.cursor -> size_class:int -> int
val next_alloc_addr_c : t -> Heap.cursor -> size_class:int -> int
val free_c : t -> Heap.cursor -> int -> unit

(** Base address of the page containing an address; [Invalid_argument] if
    outside the managed span. *)
val page_of : t -> int -> int

val page_words : t -> int
val size_class_of : t -> tid:int -> int -> int

(** Iterate the addresses of all allocated slots of one page, per the
    durable bitmap (the recovery sweep's source of truth). *)
val iter_allocated : t -> tid:int -> page:int -> (int -> unit) -> unit

(** All initialized page base addresses (sequential use). *)
val initialized_pages : t -> tid:int -> int list

(** Number of allocated slots across all initialized pages (sequential). *)
val allocated_count : t -> tid:int -> int
