(** Recovery/crash phase journal (see the interface). Events are collected
    in reverse and flipped on read; the process-wide sink is a plain ref —
    recovery is single-domain by contract, so no lock. *)

type event = { phase : string; detail : string; start_s : float; dur_s : float; depth : int }

type t = {
  t0 : float;  (* gettimeofday at create *)
  mutable rev_events : (int * event) list;  (* (start seq, event) *)
  mutable depth : int;  (* current span-nesting level *)
  mutable next_seq : int;  (* entry order — ticks at span START *)
}

let create () =
  { t0 = Unix.gettimeofday (); rev_events = []; depth = 0; next_seq = 0 }

(* Spans are recorded on completion, which puts a parent after its nested
   children; re-sort by the sequence number taken at span START so readers
   see the journal in execution order (clock timestamps can tie at
   gettimeofday resolution, so they cannot order the list). *)
let events t =
  List.map snd
    (List.sort
       (fun (a, _) (b, _) -> compare (a : int) b)
       t.rev_events)

let total_s t =
  List.fold_left
    (fun acc (_, (e : event)) -> if e.depth = 0 then acc +. e.dur_s else acc)
    0. t.rev_events

let span t ?(detail = "") phase f =
  let start = Unix.gettimeofday () in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let depth = t.depth in
  t.depth <- depth + 1;
  let record () =
    t.depth <- depth;
    let stop = Unix.gettimeofday () in
    t.rev_events <-
      ( seq,
        { phase; detail; start_s = start -. t.t0; dur_s = stop -. start; depth }
      )
      :: t.rev_events
  in
  match f () with
  | v ->
      record ();
      v
  | exception e ->
      record ();
      raise e

(* The process-wide sink. Recovery code deep in the stack (heap crash,
   layout rebuild, slab scans) brackets itself against this so callers need
   not thread a journal through every signature; None costs one load. *)
let current : t option ref = ref None

let with_current t f =
  let saved = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := saved) f

let span_current ?detail phase f =
  match !current with None -> f () | Some t -> span t ?detail phase f
