(** Per-domain event counters for the persistence substrate.

    Every domain (identified by a small integer [tid]) owns one record, so
    counting is race-free and cheap. [aggregate] sums over all domains for
    reporting. The counters are the raw material for several figures of the
    paper: sync-operation counts drive the throughput ratios of Figures 5-8,
    and the active-page-table hit counters drive Figure 9a. *)

(** Maximum number of concurrently running domains the library supports. *)
let max_threads = 64

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable cas : int;
  mutable write_backs : int;  (** clwb-style line write-back requests *)
  mutable fences : int;  (** store fences issued *)
  mutable sync_batches : int;  (** fences that had to drain pending lines *)
  mutable lines_drained : int;  (** total lines made durable by fences *)
  mutable log_entries : int;  (** redo-log entries written (baselines) *)
  mutable apt_hits : int;  (** active-page-table hits (no durable write) *)
  mutable apt_misses : int;  (** active-page-table misses (durable write) *)
  mutable apt_alloc_hits : int;  (** hits on the allocation path (Fig. 9a) *)
  mutable apt_alloc_misses : int;
  mutable apt_unlink_hits : int;  (** hits on the unlink path (Fig. 9a) *)
  mutable apt_unlink_misses : int;
  mutable lc_adds : int;  (** successful link-cache insertions *)
  mutable lc_fails : int;  (** link-cache insertions that fell back *)
  mutable lc_flushes : int;  (** link-cache bucket flushes *)
  mutable allocs : int;
  mutable frees : int;
  mutable epoch_stalls : int;
      (** reclamation attempts blocked because some thread still sits in the
          epoch a sealed generation snapshotted — grace period not over *)
  mutable group_commits : int;
      (** group-commit batches retired: one covering fence each (NVServe) *)
  mutable group_ops : int;
      (** operations whose persistence rode a group-commit batch *)
  mutable deferred_links : int;
      (** link updates whose fence was deferred to a batch commit *)
}

let make () =
  {
    loads = 0;
    stores = 0;
    cas = 0;
    write_backs = 0;
    fences = 0;
    sync_batches = 0;
    lines_drained = 0;
    log_entries = 0;
    apt_hits = 0;
    apt_misses = 0;
    apt_alloc_hits = 0;
    apt_alloc_misses = 0;
    apt_unlink_hits = 0;
    apt_unlink_misses = 0;
    lc_adds = 0;
    lc_fails = 0;
    lc_flushes = 0;
    allocs = 0;
    frees = 0;
    epoch_stalls = 0;
    group_commits = 0;
    group_ops = 0;
    deferred_links = 0;
  }

let copy t = { t with loads = t.loads }

let reset t =
  t.loads <- 0;
  t.stores <- 0;
  t.cas <- 0;
  t.write_backs <- 0;
  t.fences <- 0;
  t.sync_batches <- 0;
  t.lines_drained <- 0;
  t.log_entries <- 0;
  t.apt_hits <- 0;
  t.apt_misses <- 0;
  t.apt_alloc_hits <- 0;
  t.apt_alloc_misses <- 0;
  t.apt_unlink_hits <- 0;
  t.apt_unlink_misses <- 0;
  t.lc_adds <- 0;
  t.lc_fails <- 0;
  t.lc_flushes <- 0;
  t.allocs <- 0;
  t.frees <- 0;
  t.epoch_stalls <- 0;
  t.group_commits <- 0;
  t.group_ops <- 0;
  t.deferred_links <- 0

let add ~into t =
  into.loads <- into.loads + t.loads;
  into.stores <- into.stores + t.stores;
  into.cas <- into.cas + t.cas;
  into.write_backs <- into.write_backs + t.write_backs;
  into.fences <- into.fences + t.fences;
  into.sync_batches <- into.sync_batches + t.sync_batches;
  into.lines_drained <- into.lines_drained + t.lines_drained;
  into.log_entries <- into.log_entries + t.log_entries;
  into.apt_hits <- into.apt_hits + t.apt_hits;
  into.apt_misses <- into.apt_misses + t.apt_misses;
  into.apt_alloc_hits <- into.apt_alloc_hits + t.apt_alloc_hits;
  into.apt_alloc_misses <- into.apt_alloc_misses + t.apt_alloc_misses;
  into.apt_unlink_hits <- into.apt_unlink_hits + t.apt_unlink_hits;
  into.apt_unlink_misses <- into.apt_unlink_misses + t.apt_unlink_misses;
  into.lc_adds <- into.lc_adds + t.lc_adds;
  into.lc_fails <- into.lc_fails + t.lc_fails;
  into.lc_flushes <- into.lc_flushes + t.lc_flushes;
  into.allocs <- into.allocs + t.allocs;
  into.frees <- into.frees + t.frees;
  into.epoch_stalls <- into.epoch_stalls + t.epoch_stalls;
  into.group_commits <- into.group_commits + t.group_commits;
  into.group_ops <- into.group_ops + t.group_ops;
  into.deferred_links <- into.deferred_links + t.deferred_links

(* [diff newer older]: counter deltas, for interval snapshot reporting. *)
let diff newer older =
  {
    loads = newer.loads - older.loads;
    stores = newer.stores - older.stores;
    cas = newer.cas - older.cas;
    write_backs = newer.write_backs - older.write_backs;
    fences = newer.fences - older.fences;
    sync_batches = newer.sync_batches - older.sync_batches;
    lines_drained = newer.lines_drained - older.lines_drained;
    log_entries = newer.log_entries - older.log_entries;
    apt_hits = newer.apt_hits - older.apt_hits;
    apt_misses = newer.apt_misses - older.apt_misses;
    apt_alloc_hits = newer.apt_alloc_hits - older.apt_alloc_hits;
    apt_alloc_misses = newer.apt_alloc_misses - older.apt_alloc_misses;
    apt_unlink_hits = newer.apt_unlink_hits - older.apt_unlink_hits;
    apt_unlink_misses = newer.apt_unlink_misses - older.apt_unlink_misses;
    lc_adds = newer.lc_adds - older.lc_adds;
    lc_fails = newer.lc_fails - older.lc_fails;
    lc_flushes = newer.lc_flushes - older.lc_flushes;
    allocs = newer.allocs - older.allocs;
    frees = newer.frees - older.frees;
    epoch_stalls = newer.epoch_stalls - older.epoch_stalls;
    group_commits = newer.group_commits - older.group_commits;
    group_ops = newer.group_ops - older.group_ops;
    deferred_links = newer.deferred_links - older.deferred_links;
  }

(* Derived metrics: the ratios a reader actually wants, so reports need no
   calculator. Denominator 0 yields 0 (rate undefined, nothing happened). *)

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

(** [lc_adds / (lc_adds + lc_fails)]: how often parking a link in the cache
    succeeded instead of falling back to an eager sync. *)
let lc_hit_rate t = ratio t.lc_adds (t.lc_adds + t.lc_fails)

(** [lines_drained / sync_batches]: the fence batching factor — how many
    lines each completed sync retired (1.0 = no batching win). *)
let lines_per_batch t = ratio t.lines_drained t.sync_batches

(** [write_backs / stores]: persistence pressure of the write path. *)
let flushes_per_store t = ratio t.write_backs t.stores

(** [group_ops / group_commits]: mean operations amortized per group-commit
    fence (0 when the server never batched). *)
let ops_per_commit t = ratio t.group_ops t.group_commits

let apt_hit_rate t = ratio t.apt_hits (t.apt_hits + t.apt_misses)
let apt_alloc_hit_rate t = ratio t.apt_alloc_hits (t.apt_alloc_hits + t.apt_alloc_misses)
let apt_unlink_hit_rate t = ratio t.apt_unlink_hits (t.apt_unlink_hits + t.apt_unlink_misses)

(* Each domain hammers its own record on every heap primitive, so two
   records sharing a cache line means cross-domain invalidation traffic on
   the hottest path in the repo. A counter record is 23 words (~3 lines);
   interleaving a two-line pad between consecutive allocations keeps any
   line from holding words of two records. The pads must stay reachable —
   dead pads would be dropped at the next minor collection and the records
   compacted back together — hence the field. Best-effort: a copying GC may
   still rearrange, but promotion preserves allocation order. *)
type registry = { recs : t array; _pads : int array array }

let pad_words = 16

let make_registry () =
  let pads = Array.make max_threads [||] in
  let recs =
    Array.init max_threads (fun i ->
        let rec_ = make () in
        pads.(i) <- Array.make pad_words 0;
        rec_)
  in
  { recs; _pads = pads }

let get (r : registry) tid = r.recs.(tid)

let aggregate (r : registry) =
  let total = make () in
  Array.iter (fun t -> add ~into:total t) r.recs;
  total

let reset_registry (r : registry) = Array.iter reset r.recs

let pp ppf t =
  Format.fprintf ppf
    "loads=%d stores=%d cas=%d wb=%d fences=%d syncs=%d drained=%d log=%d \
     apt_hit=%d apt_miss=%d lc_add=%d lc_fail=%d lc_flush=%d alloc=%d free=%d \
     stalls=%d gc=%d gops=%d defer=%d | lc_hit=%.1f%% lines/batch=%.2f \
     wb/store=%.2f apt_hit=%.1f%% ops/commit=%.2f"
    t.loads t.stores t.cas t.write_backs t.fences t.sync_batches
    t.lines_drained t.log_entries t.apt_hits t.apt_misses t.lc_adds t.lc_fails
    t.lc_flushes t.allocs t.frees t.epoch_stalls t.group_commits t.group_ops
    t.deferred_links
    (100. *. lc_hit_rate t)
    (lines_per_batch t) (flushes_per_store t)
    (100. *. apt_hit_rate t)
    (ops_per_commit t)
