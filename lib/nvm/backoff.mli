(** Bounded exponential backoff for spin-wait loops: [once] relaxes the CPU
    for an exponentially growing number of iterations and, once the bound
    saturates, additionally yields the OS timeslice so a descheduled peer
    can run (essential when domains outnumber cores). *)

type t

val make : unit -> t

(** Back off one step: spin, grow the bound, yield when saturated. *)
val once : t -> unit

(** Forget accumulated growth (call after the awaited condition held). *)
val reset : t -> unit
