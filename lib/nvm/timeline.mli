(** Recovery/crash phase journal: timestamped, nestable phase spans.

    Crash recovery used to answer with one aggregate number; an operator
    diagnosing a slow restart needs to know {e which phase} ate the time —
    the layout re-carve, the allocator rebuild, the table attach, the leak
    sweep, the link-free slab scan, the re-admission pass. Every recovery
    step ({!Heap.crash}, [Ctx.recover], [Recovery.rebuild_link_free],
    [Shard_store.recover]) brackets itself in {!span_current}, which records
    into whatever journal the caller installed with {!with_current} — and
    costs one global read plus a never-taken branch when none is.

    Spans nest: a top-level phase (depth 0) may contain sub-phases (depth 1,
    2, ...). Depth-0 spans partition the journal's wall-clock, so their
    durations sum to the total the caller reports — the drill's acceptance
    invariant.

    Single-domain use: recovery is inherently quiescent (no other domain may
    touch the heap), and the journal inherits that contract. The current
    sink is process-wide state; do not install one from two domains at
    once. *)

(** One recorded phase. [start_s] is seconds since the journal's creation;
    [depth] is the span-nesting level at record time (0 = top level). *)
type event = { phase : string; detail : string; start_s : float; dur_s : float; depth : int }

type t

val create : unit -> t

(** Recorded events, in start order. *)
val events : t -> event list

(** Sum of depth-0 span durations — the journal's covered wall-clock. *)
val total_s : t -> float

(** [span t phase f] times [f ()] and records it as a phase (nested calls
    record at increasing depth). The exception-safe bracket: the span is
    recorded even if [f] raises. *)
val span : t -> ?detail:string -> string -> (unit -> 'a) -> 'a

(** Install [t] as the process-wide journal for the duration of [f]:
    {!span_current} brackets inside [f] record into it. Restores the
    previous sink (so journals may stack) even if [f] raises. *)
val with_current : t -> (unit -> 'a) -> 'a

(** [span t phase f] against the installed journal; when none is installed
    this is exactly [f ()] — no timestamps, no allocation. *)
val span_current : ?detail:string -> string -> (unit -> 'a) -> 'a
