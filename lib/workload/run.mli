(** Timed multi-domain throughput runs and latency profiling.

    On a single hardware core domains timeslice instead of running in
    parallel; the figures this harness feeds report ratios between systems
    at the same thread count, which survives timeslicing (DESIGN.md). *)

type result = {
  total_ops : int;
  duration : float;  (** measured wall-clock seconds *)
  per_thread : int array;
  throughput : float;  (** operations per second *)
}

(** [throughput ~nthreads ~duration ~step ~seed ()] spawns [nthreads]
    domains, each looping [step ~tid ~rng] until the stop flag is raised
    after [duration] seconds; domains synchronize on a barrier before the
    clock starts. Thread ids double as heap/statistics thread ids.

    With [interval], the otherwise-sleeping main domain calls [on_tick]
    every that many seconds while the workers run — live metrics sampling
    (`nvlf top`). [on_tick] runs concurrently with the workload, so it must
    stick to read-only probes (e.g. {!Nvm.Heap.aggregate_stats}). *)
val throughput :
  ?interval:float ->
  ?on_tick:(elapsed:float -> unit) ->
  nthreads:int ->
  duration:float ->
  step:(tid:int -> rng:Xoshiro.t -> unit) ->
  seed:int ->
  unit ->
  result

(** The paper's set workload as a step function. *)
val set_workload :
  Lfds.Set_intf.ops -> mix:Keygen.mix -> range:int -> tid:int -> rng:Xoshiro.t -> unit

(** Single-threaded per-operation latency histogram over [n] steps. *)
val latency_profile :
  n:int -> step:(tid:int -> rng:Xoshiro.t -> unit) -> seed:int -> unit -> Histogram.t

(** Time a thunk (recovery measurements): value and elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float
