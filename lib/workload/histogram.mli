(** Log-bucketed latency histogram: geometric buckets (~8% resolution) from
    1 ns to ~100 s, so recording is one increment and percentiles are exact
    to bucket resolution. *)

type t

val create : unit -> t
val record : t -> ns:float -> unit

(** [record_n t ~ns n] records [n] samples of the same value with one bucket
    lookup (a pipelined client records a whole batch at one latency). *)
val record_n : t -> ns:float -> int -> unit

val count : t -> int

(** Latency (ns) at percentile [p] in [0, 100]: the geometric midpoint of
    the bucket holding the rank-[p] sample (within ~4% of the exact order
    statistic), capped at the observed maximum. *)
val percentile : t -> float -> float

val mean : t -> float
val max_ns : t -> float
val merge : into:t -> t -> unit

(** Independent copy (snapshot for interval differencing). *)
val copy : t -> t

(** [sub newer older] is the bucket-wise delta of two snapshots of the same
    growing histogram — the samples recorded in the interval between them.
    Clamped at zero per bucket; [max_ns] is [newer]'s (the interval's own
    maximum is not recoverable from bucket counts). *)
val sub : t -> t -> t

val pp : Format.formatter -> t -> unit
