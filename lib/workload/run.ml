(** Timed multi-domain throughput runs.

    [throughput] spawns [nthreads] domains, each looping a workload step
    until the main domain raises the stop flag after [duration] seconds.
    Domains synchronize on a barrier before the clock starts. Thread ids are
    0-based and double as heap/statistics thread ids.

    On a single hardware core, domains timeslice instead of running in
    parallel; the figures this harness feeds report ratios between systems
    measured at the same thread count, which survives timeslicing (DESIGN.md,
    substitutions table). *)

type result = {
  total_ops : int;
  duration : float;
  per_thread : int array;
  throughput : float;  (** operations per second *)
}

let throughput ?interval ?(on_tick = fun ~elapsed:_ -> ()) ~nthreads ~duration
    ~(step : tid:int -> rng:Xoshiro.t -> unit) ~seed () =
  let stop = Atomic.make false in
  let barrier = Barrier.make (nthreads + 1) in
  let counts = Array.make nthreads 0 in
  let worker tid () =
    let rng = Xoshiro.make ~seed:(seed + (tid * 7919)) in
    Barrier.wait barrier;
    let n = ref 0 in
    while not (Atomic.get stop) do
      step ~tid ~rng;
      incr n
    done;
    counts.(tid) <- !n
  in
  let domains = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  Barrier.wait barrier;
  let t0 = Unix.gettimeofday () in
  (* The main domain only times the run; with [interval] it wakes every that
     many seconds for a live-metrics tick (the workers never notice). *)
  (match interval with
  | None -> Unix.sleepf duration
  | Some iv ->
      let iv = Float.max 0.01 iv in
      let rec loop () =
        let elapsed = Unix.gettimeofday () -. t0 in
        if elapsed < duration then begin
          Unix.sleepf (Float.min iv (duration -. elapsed));
          let elapsed = Unix.gettimeofday () -. t0 in
          if elapsed < duration then on_tick ~elapsed;
          loop ()
        end
      in
      loop ());
  Atomic.set stop true;
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = Array.fold_left ( + ) 0 counts in
  {
    total_ops = total;
    duration = elapsed;
    per_thread = counts;
    throughput = float_of_int total /. elapsed;
  }

(** Run the paper's update workload against [set]. *)
let set_workload (set : Lfds.Set_intf.ops) ~mix ~range =
  fun ~tid ~rng ->
   let key = Keygen.random_key rng ~range in
   match Keygen.pick rng mix with
   | Keygen.Insert -> ignore (set.insert ~tid ~key ~value:key)
   | Keygen.Remove -> ignore (set.remove ~tid ~key)
   | Keygen.Search -> ignore (set.search ~tid ~key)

(** Single-threaded per-operation latency profile: runs [n] steps, timing
    each, and returns the histogram (benchmark percentile reporting). *)
let latency_profile ~n ~(step : tid:int -> rng:Xoshiro.t -> unit) ~seed () =
  let h = Histogram.create () in
  let rng = Xoshiro.make ~seed in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    step ~tid:0 ~rng;
    Histogram.record h ~ns:((Unix.gettimeofday () -. t0) *. 1e9)
  done;
  h

(** Time a single thunk (recovery measurements). *)
let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)
