(** Log-bucketed latency histogram (HdrHistogram-style, coarse).

    Buckets grow geometrically (~8% per step), covering 1 ns to ~100 s with
    a few hundred counters, so recording is one array increment and
    percentile queries are exact to bucket resolution. *)

type t = { counts : int array; mutable total : int; mutable max_ns : float }

let buckets = 512
let growth = 1.08
let log_growth = log growth

let create () = { counts = Array.make buckets 0; total = 0; max_ns = 0. }

let bucket_of_ns ns =
  if ns <= 1. then 0
  else min (buckets - 1) (int_of_float (log ns /. log_growth))

(* Bucket [b] covers [growth^b, growth^(b+1)); its geometric midpoint
   growth^(b+0.5) is the least-biased single representative. Reporting the
   lower bound (as the seed did) collapses low percentiles — p0 of any
   sample read as 1 ns. *)
let mid_of_bucket b = growth ** (float_of_int b +. 0.5)

let record t ~ns =
  let b = bucket_of_ns ns in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  if ns > t.max_ns then t.max_ns <- ns

(* [n] samples of the same value: one bucket lookup instead of [n] — a
   pipelined load client records a whole batch at one latency. *)
let record_n t ~ns n =
  if n > 0 then begin
    let b = bucket_of_ns ns in
    t.counts.(b) <- t.counts.(b) + n;
    t.total <- t.total + n;
    if ns > t.max_ns then t.max_ns <- ns
  end

let count t = t.total
let max_ns t = t.max_ns

(** Latency (ns) at percentile [p] in [0, 100]: the geometric midpoint of the
    bucket holding the rank-[p] sample, capped at the observed maximum. *)
let percentile t p =
  if t.total = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int t.total)) in
    let rank = max 1 (min rank t.total) in
    let rec go b seen =
      let seen = seen + t.counts.(b) in
      if seen >= rank || b = buckets - 1 then b else go (b + 1) seen
    in
    let b = go 0 0 in
    Float.min (mid_of_bucket b) t.max_ns
  end

let mean t =
  if t.total = 0 then 0.
  else begin
    let sum = ref 0. in
    Array.iteri
      (fun b c -> sum := !sum +. (float_of_int c *. mid_of_bucket b))
      t.counts;
    !sum /. float_of_int t.total
  end

let merge ~into t =
  Array.iteri (fun b c -> into.counts.(b) <- into.counts.(b) + c) t.counts;
  into.total <- into.total + t.total;
  if t.max_ns > into.max_ns then into.max_ns <- t.max_ns

let copy t = { counts = Array.copy t.counts; total = t.total; max_ns = t.max_ns }

(* Interval differencing over two snapshots of the same growing histogram:
   [newer]'s counts minus [older]'s, clamped at zero per bucket (a racy
   snapshot pair taken while a recorder is live may be momentarily
   inconsistent; clamping keeps the delta a valid histogram). *)
let sub newer older =
  let d = create () in
  let total = ref 0 in
  for b = 0 to buckets - 1 do
    let c = max 0 (newer.counts.(b) - older.counts.(b)) in
    d.counts.(b) <- c;
    total := !total + c
  done;
  d.total <- !total;
  d.max_ns <- newer.max_ns;
  d

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%s p50=%s p99=%s p99.9=%s max=%s" t.total
    (Report.human_ns (mean t))
    (Report.human_ns (percentile t 50.))
    (Report.human_ns (percentile t 99.))
    (Report.human_ns (percentile t 99.9))
    (Report.human_ns t.max_ns)
