(** Producer-consumer crash drill: real domains stream values through a
    FIFO shape, one domain is killed mid-operation by the heap trip-wire,
    the machine then power-fails, and the recovered contents are audited
    against the acknowledgment log. See the interface for the audit
    rules. *)

open Nvm
module QI = Harness.Queue_instance
module Instance = Harness.Instance

type report = {
  structure : string;
  flavor : string;
  produced : int;  (** acked enqueues/pushes across producers *)
  consumed : int;  (** acked dequeues/steals across consumers *)
  recovered : int;  (** items drained after recovery *)
  lost_inflight : int;  (** acked-produced items in neither set (strict) *)
  tripped : bool;  (** did the trip-wire actually kill a domain? *)
  freed : int;  (** leaked nodes freed by the recovery sweep *)
  recovery_s : float;
  violations : string list;
}

let ok r = r.violations = []

let pp_report ppf r =
  Format.fprintf ppf
    "%s/%s: produced %d, consumed %d, recovered %d, lost-in-flight %d%s, \
     %d leaked node(s) freed: %s"
    r.structure r.flavor r.produced r.consumed r.recovered r.lost_inflight
    (if r.tripped then ", trip fired" else "")
    r.freed
    (if r.violations = [] then "clean"
     else String.concat "; " r.violations)

(* Values encode provenance: producer id x per-producer sequence number,
   so audits can reconstruct each producer's stream from any shuffle. *)
let pid_of v = (v / 1_000_000) - 1
let n_of v = v mod 1_000_000
let value ~pid ~n = ((pid + 1) * 1_000_000) + n

(* Every producer's subsequence of [vs] must be strictly increasing in
   sequence number — FIFO consumption and recovery must both respect
   per-producer order. *)
let audit_order ~what vs report =
  let last = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let p = pid_of v and n = n_of v in
      (match Hashtbl.find_opt last p with
      | Some m when n <= m ->
          report
            (Printf.sprintf "%s: producer %d out of order (%d after %d)" what
               p n m)
      | _ -> ());
      Hashtbl.replace last p n)
    vs

let run ?(producers = 2) ?(consumers = 2) ?(ops_per_producer = 300)
    ?(seed = 0xD811) ?(trip = 4000) ?(eviction_probability = 0.5) ~structure
    ~flavor () =
  (* A deque has a single owner: it is the one producer (domain 0), and
     the thieves consume. *)
  let producers = match structure with QI.Deque -> 1 | QI.Mpmc -> producers in
  let nthreads = producers + consumers in
  let inst =
    QI.create ~nthreads ~size_hint:(4 * ops_per_producer) ~structure ~flavor ()
  in
  let heap = Lfds.Ctx.heap inst.QI.ctx in
  let strict =
    Lfds.Persist_mode.acks_durable (Instance.mode_of_flavor flavor)
  in
  let stop = Atomic.make false in
  let producers_left = Atomic.make producers in
  let acked_prod = Array.make producers [] in
  let acked_cons = Array.make consumers [] in
  Heap.set_trip heap trip;
  let producer pid () =
    (try
       for n = 1 to ops_per_producer do
         if not (Atomic.get stop) then begin
           (* The deque owner keeps headroom under the largest buffer
              class; thieves only shrink the deque, so the bound holds. *)
           if structure = QI.Deque then
             while QI.size inst >= 40 && not (Atomic.get stop) do
               Domain.cpu_relax ()
             done;
           if not (Atomic.get stop) then begin
             let v = value ~pid ~n in
             QI.put inst ~tid:pid ~value:v;
             acked_prod.(pid) <- v :: acked_prod.(pid)
           end
         end
       done
     with Heap.Crashed -> Atomic.set stop true);
    Atomic.decr producers_left
  in
  let consumer cid () =
    let tid = producers + cid in
    try
      let continue = ref true in
      while !continue && not (Atomic.get stop) do
        match QI.steal inst ~tid with
        | Some v -> acked_cons.(cid) <- v :: acked_cons.(cid)
        | None ->
            if Atomic.get producers_left = 0 then continue := false
            else Domain.cpu_relax ()
      done
    with Heap.Crashed -> Atomic.set stop true
  in
  let ds =
    List.init producers (fun pid -> Domain.spawn (producer pid))
    @ List.init consumers (fun cid -> Domain.spawn (consumer cid))
  in
  List.iter Domain.join ds;
  let tripped = Atomic.get stop in
  Heap.disarm_trip heap;
  Heap.crash heap ~seed ~eviction_probability;
  let inst', recovery_s, freed = QI.recover_only inst in
  let recovered = QI.drain inst' ~tid:0 in
  let violations = ref [] in
  let report msg = violations := msg :: !violations in
  let produced = Array.fold_left (fun a l -> a + List.length l) 0 acked_prod in
  let consumed = Array.fold_left (fun a l -> a + List.length l) 0 acked_cons in
  (* No duplication: every value is unique by construction, so any value
     seen twice across consumers and the recovered drain was delivered
     twice. Strict flavors allow none; the link-cache flavor is
     at-least-once (a consumed ack may be durably lost, resurrecting the
     item), so duplication across consumed/recovered is tolerated there —
     but a value stolen by two consumers is a logic bug in any flavor. *)
  let seen = Hashtbl.create 1024 in
  Array.iter
    (fun l ->
      List.iter
        (fun v ->
          if Hashtbl.mem seen v then
            report (Printf.sprintf "value %d consumed twice" v);
          Hashtbl.replace seen v ())
        l)
    acked_cons;
  List.iter
    (fun v ->
      if Hashtbl.mem seen v && strict then
        report
          (Printf.sprintf "value %d both consumed (acked) and recovered" v))
    recovered;
  let rec_dup = Hashtbl.create 1024 in
  List.iter
    (fun v ->
      if Hashtbl.mem rec_dup v then
        report (Printf.sprintf "value %d recovered twice" v);
      Hashtbl.replace rec_dup v ())
    recovered;
  (* No acked item lost (strict flavors): anything produced-and-acked must
     be consumed-and-acked or recovered, except what the single killed
     domain may have durably consumed without acking. *)
  let lost_inflight = ref 0 in
  if strict then begin
    let held = Hashtbl.create 1024 in
    Array.iter (fun l -> List.iter (fun v -> Hashtbl.replace held v ()) l)
      acked_cons;
    List.iter (fun v -> Hashtbl.replace held v ()) recovered;
    Array.iter
      (fun l ->
        List.iter
          (fun v -> if not (Hashtbl.mem held v) then incr lost_inflight)
          l)
      acked_prod;
    if !lost_inflight > 1 then
      report
        (Printf.sprintf
           "%d acked items lost, but at most one domain died mid-operation"
           !lost_inflight)
  end;
  (* Per-producer FIFO order, in each consumer's stream and in the
     recovered drain; strict flavors additionally require everything
     consumed to precede everything recovered, per producer. *)
  Array.iteri
    (fun cid l -> audit_order ~what:(Printf.sprintf "consumer %d" cid)
        (List.rev l) report)
    acked_cons;
  audit_order ~what:"recovered" recovered report;
  if strict then begin
    let min_rec = Hashtbl.create 8 in
    List.iter
      (fun v ->
        let p = pid_of v in
        match Hashtbl.find_opt min_rec p with
        | Some m when m <= n_of v -> ()
        | _ -> Hashtbl.replace min_rec p (n_of v))
      recovered;
    Array.iter
      (fun l ->
        List.iter
          (fun v ->
            match Hashtbl.find_opt min_rec (pid_of v) with
            | Some m when n_of v >= m ->
                report
                  (Printf.sprintf
                     "value %d was consumed yet producer %d's item %d was \
                      recovered"
                     v (pid_of v) m)
            | _ -> ())
          l)
      acked_cons
  end;
  {
    structure = QI.structure_name structure;
    flavor = Instance.flavor_name flavor;
    produced;
    consumed;
    recovered = List.length recovered;
    lost_inflight = !lost_inflight;
    tripped;
    freed;
    recovery_s;
    violations = List.rev !violations;
  }
