(** Exhaustive small-scope crash-state checking (NVSan checker 3).

    A crash leaves each dirty cache line independently either evicted to
    NVRAM or lost — the program does not control eviction order. For a given
    pre-crash instant with [n] dirty lines there are therefore [2^n]
    possible durable images. This module drives a deterministic
    single-thread workload into a structure, trips a crash at a chosen
    primitive count, and — when [n <= max_dirty] — materializes {e every}
    one of the [2^n] images with {!Nvm.Heap.restore} + {!Nvm.Heap.crash_with},
    runs full recovery on each, and checks {e prefix consistency}: the
    recovered set must agree with the model of all completed operations,
    with the single in-flight operation's key free to land either way.

    The trip point slides along one fixed operation history (same seed every
    trip), so successive trips probe successive instants of the same
    execution. Instants with more than [max_dirty] dirty lines are counted
    in [skipped_large] rather than sampled — the report never silently
    pretends coverage it did not have. *)

type result = {
  trips_attempted : int;  (** trip points tried *)
  crashes : int;  (** trips where the wire actually fired *)
  states_checked : int;  (** durable images enumerated + recovered *)
  skipped_large : int;  (** crashes with more dirty lines than [max_dirty] *)
  max_dirty_seen : int;
  violations : string list;  (** capped at [max_reports] *)
}

val pp_result : Format.formatter -> result -> unit

(** Run the enumerator. Defaults: flavor [Lp] (the only flavor whose
    completed operations are individually durable — link-cache buffers
    them), 48 ops per trip over 48 keys, trip points 1, 8, 15, ... up to
    600, [max_dirty] 10. *)
val run :
  ?flavor:Harness.Instance.flavor ->
  ?ops_per_trip:int ->
  ?key_range:int ->
  ?trip_start:int ->
  ?trip_stop:int ->
  ?trip_step:int ->
  ?max_dirty:int ->
  ?max_reports:int ->
  ?seed:int ->
  structure:Harness.Instance.structure ->
  unit ->
  result

(** FIFO-shape enumerator (MPMC queue / work-stealing deque): the same
    2^n-image model, but consistency compares the {e drained} recovered
    contents (oldest-first) against the completed-ops model list, with the
    single in-flight operation free to have happened or not. The deque
    script mixes owner push/pop with same-thread steals. Raises
    [Invalid_argument] for flavors whose acks are not durable (volatile
    and link-cache). *)
val run_queue :
  ?flavor:Harness.Instance.flavor ->
  ?ops_per_trip:int ->
  ?trip_start:int ->
  ?trip_stop:int ->
  ?trip_step:int ->
  ?max_dirty:int ->
  ?max_reports:int ->
  ?seed:int ->
  structure:Harness.Queue_instance.structure ->
  unit ->
  result
