(** Lincheck — linearizability and durable-linearizability checking from
    recorded operation histories.

    A {!recorder} rides the heap's observer multiplexer and turns the
    [A_op_begin]/[A_op_end] brackets every structure already emits into a
    history of timed intervals: a global sequence number at invocation and
    response, plus the encoded result ({!Lfds.Set_intf.ret_bool} /
    [ret_opt]). Ops still open when recording stops (or when the crash
    event arrives) are {e in flight}: a linearization may order them
    anywhere after their invocation or drop them entirely.

    Checking is per key — the set spec's keys are independent objects, and
    linearizability is local (Herlihy & Wing), so a history is linearizable
    iff each per-key subhistory is. Each key runs a Wing & Gong style
    enumeration: linearize next any op whose invocation precedes no
    unlinearized op's response, step the sequential spec by its observed
    result, backtrack on contradiction. States are memoized, and a key is
    rejected outright past {!max_key_ops} ops (drivers size their key
    ranges to stay far below it).

    Durable linearizability composes the same check with a crash: the
    recovered value of each key must be explained by some linearization of
    the pre-crash history — its {e final} state for flavors whose acks are
    durable (lp/nvt/lf), or {e any intermediate} state for the buffered
    link-cache flavor, whose completed effects may still sit in the link
    cache when power fails. (Per-key prefixes are a sound relaxation of a
    single global cut; a cross-key consistent-cut check would be strictly
    stronger.) *)

(** {2 Histories} *)

type entry = {
  e_tid : int;
  name : string;  (** e.g. ["list.insert"]; kind = suffix after ['.'] *)
  key : int;
  inv : int;  (** global sequence number at invocation *)
  mutable res : int;  (** at response; [max_int] while in flight *)
  mutable ret : int;  (** encoded result; [Heap.op_ret_unknown] in flight *)
}

type recorder

val record : Nvm.Heap.t -> recorder
val stop : recorder -> unit
val history : recorder -> entry list  (** in invocation order *)

val recorded_ops : recorder -> int
val saw_crash : recorder -> bool

(** {2 Checking} *)

type durable_spec = {
  recovered : int option;  (** the key's post-recovery binding *)
  buffered : bool;  (** link-cache: any prefix state may match *)
}

val max_key_ops : int
(** Per-key op-count bound of the WGL search (62: one int of mask bits). *)

val check_key : ?durable:durable_spec -> entry array -> (unit, string) result
(** One key's ops sorted by [inv]. [Error] carries a diagnosis. *)

val check :
  ?durable:(int -> durable_spec) ->
  entry list ->
  int * (int * string) list
(** Group by key, check each; returns (keys checked, failures as
    [(key, diagnosis)] sorted by key). *)

(** {2 FIFO shapes}

    FIFO order couples every operation to every other, so queue/deque
    histories are checked whole (one WGL search over an int-list state,
    contents oldest-first) rather than per key. Producer entries carry
    their value in [key] and ack with [Lfds.Set_intf.ret_unit]; consumers
    answer through [ret_opt]. Dequeue and steal consume the front, pop the
    back. *)

type fifo_durable = {
  q_recovered : int list;  (** post-recovery contents, oldest-first *)
  q_buffered : bool;
      (** accept any intermediate state of the linearization — a per-object
          relaxation that is {e not} sound for link-cache queues (a durable
          image can be a window of the item sequence that no interleaving
          point reached), so the durable driver rejects lc outright *)
}

val check_fifo : ?durable:fifo_durable -> entry list -> (unit, string) result
(** Whole-history check of queue/deque entries ([Error] past
    {!max_key_ops} ops or on an inexplicable history). *)

(** {2 Drivers} *)

type outcome = {
  ops_recorded : int;
  keys_checked : int;
  in_flight : int;
  crashed : bool;  (** durable driver: did the trip wire fire? *)
  failures : (int * string) list;
}

val ok : outcome -> bool

val live_check :
  ?nthreads:int ->
  ?ops_per_thread:int ->
  ?key_range:int ->
  ?seed:int ->
  structure:Harness.Instance.structure ->
  flavor:Harness.Instance.flavor ->
  unit ->
  outcome
(** Record a real multi-domain run (defaults: 2 domains × 150 random ops
    over keys 1..24) and check plain linearizability. *)

val durable_check :
  ?nthreads:int ->
  ?total_ops:int ->
  ?key_range:int ->
  ?seed:int ->
  ?trip:int ->
  structure:Harness.Instance.structure ->
  flavor:Harness.Instance.flavor ->
  unit ->
  outcome
(** Durable linearizability: [nthreads] {e logical} threads interleaved
    deterministically on the calling thread, a trip-wire crash after
    [trip] heap primitives, seeded cache eviction, recovery, then the
    per-key recovered-state check. Raises [Invalid_argument] for volatile
    flavors. Fully deterministic in its parameters. *)

val queue_live_check :
  ?nthreads:int ->
  ?ops_per_thread:int ->
  ?seed:int ->
  structure:Harness.Queue_instance.structure ->
  flavor:Harness.Instance.flavor ->
  unit ->
  outcome
(** Record a real multi-domain run over a FIFO shape (defaults: 2 domains
    × 24 ops — whole-history checking bounds total ops by
    {!max_key_ops}) and check plain linearizability. The deque's owner is
    domain 0; other domains only steal. *)

val queue_durable_check :
  ?nthreads:int ->
  ?total_ops:int ->
  ?seed:int ->
  ?trip:int ->
  structure:Harness.Queue_instance.structure ->
  flavor:Harness.Instance.flavor ->
  unit ->
  outcome
(** Durable linearizability of a FIFO shape: deterministic logical-thread
    interleave, trip-wire crash, seeded evictions, recovery, then the
    whole-history check against the drained post-recovery contents.
    Raises [Invalid_argument] for flavors whose acks are not durable
    (volatile and link-cache). Fully deterministic in its parameters. *)

val pp_outcome : Format.formatter -> outcome -> unit
