(** Lincheck implementation: history recording over the observer stream,
    a per-key WGL-style linearizability check against the sequential set
    spec, and the crash-composed durable-linearizability drivers. See the
    interface for the checking model. *)

open Nvm
module I = Harness.Instance

(* ---- history recording ------------------------------------------------- *)

type entry = {
  e_tid : int;
  name : string;
  key : int;
  inv : int;  (** global sequence number at invocation *)
  mutable res : int;  (** at response; [max_int] while in flight *)
  mutable ret : int;  (** encoded result; [Heap.op_ret_unknown] in flight *)
}

type recorder = {
  heap : Heap.t;
  lock : Mutex.t;
  mutable obs_handle : Heap.Observer.handle option;
  mutable seq : int;
  pending : entry option array;
  mutable entries : entry list;  (** newest first *)
  mutable nentries : int;
  mutable crashed : bool;
}

let ntids = Pstats.max_threads

let on_event r ev =
  Mutex.lock r.lock;
  (match ev with
  | Heap.Ev_note { tid; note = Heap.A_op_begin { name; key } }
    when not r.crashed ->
      r.seq <- r.seq + 1;
      let e =
        {
          e_tid = tid;
          name;
          key;
          inv = r.seq;
          res = max_int;
          ret = Heap.op_ret_unknown;
        }
      in
      r.pending.(tid) <- Some e;
      r.entries <- e :: r.entries;
      r.nentries <- r.nentries + 1
  | Heap.Ev_note { tid; note = Heap.A_op_end { ret } } when not r.crashed -> (
      r.seq <- r.seq + 1;
      match r.pending.(tid) with
      | Some e ->
          e.res <- r.seq;
          e.ret <- ret;
          r.pending.(tid) <- None
      | None -> ())
  | Heap.Ev_crash ->
      (* Whatever was invoked and never answered is in flight at the power
         cut; recovery traffic after this is not part of the history. *)
      r.crashed <- true
  | _ -> ());
  Mutex.unlock r.lock

let record heap =
  let r =
    {
      heap;
      lock = Mutex.create ();
      obs_handle = None;
      seq = 0;
      pending = Array.make ntids None;
      entries = [];
      nentries = 0;
      crashed = false;
    }
  in
  r.obs_handle <- Some (Heap.Observer.add heap (on_event r));
  r

let stop r =
  match r.obs_handle with
  | None -> ()
  | Some h ->
      Heap.Observer.remove r.heap h;
      r.obs_handle <- None

let history r = List.rev r.entries
let recorded_ops r = r.nentries
let saw_crash r = r.crashed

(* ---- the sequential spec ----------------------------------------------- *)

type kind = Insert | Remove | Search

let kind_of_name name =
  let suffix =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  match suffix with
  | "insert" -> Some Insert
  | "remove" -> Some Remove
  | "search" -> Some Search
  | _ -> None

(* Per-key state: absent, present with as-yet-unconstrained value (inserts
   don't record their value argument), or present with a value a search
   response pinned down. *)
let st_absent = -2
let st_present_unknown = -1

(* Post-states of applying one op with observed (encoded) response [ret] to
   [state]; empty means the response contradicts the state. An unknown
   response (in-flight op, or an unencoded bracket) admits every legal
   behavior. *)
let steps kind ret state =
  let unknown = ret = Heap.op_ret_unknown in
  match kind with
  | Insert ->
      ((if (unknown || ret = 1) && state = st_absent then [ st_present_unknown ]
        else [])
      @ if (unknown || ret = 0) && state <> st_absent then [ state ] else [])
  | Remove ->
      ((if (unknown || ret = 1) && state <> st_absent then [ st_absent ]
        else [])
      @ if (unknown || ret = 0) && state = st_absent then [ state ] else [])
  | Search ->
      if unknown then [ state ]
      else if ret < 0 then if state = st_absent then [ state ] else []
      else if state = st_present_unknown then [ ret ]
      else if state = ret then [ state ]
      else []

(* ---- per-key WGL check ------------------------------------------------- *)

type durable_spec = {
  recovered : int option;  (** the key's post-recovery binding *)
  buffered : bool;
      (** link-cache semantics: a suffix of completed effects may be lost,
          so any prefix state of a valid linearization may match
          [recovered]; strict modes require the final state to *)
}

let consistent state = function
  | None -> state = st_absent
  | Some v -> state = st_present_unknown || state = v

(* One key's ops, sorted by invocation. The check enumerates linearizations
   with the Wing & Gong recursion: an op may be linearized next iff no
   other still-unlinearized op responded before it was invoked — so every
   search node is a downward-closed cut of the real-time order. Memoized on
   (linearized-set, state[, matched]); in-flight ops (res = max_int) may be
   linearized anywhere after invocation or dropped entirely. *)
let max_key_ops = 62 (* mask bits in one int *)

let check_key ?durable (ops : entry array) =
  let n = Array.length ops in
  if n > max_key_ops then
    Error
      (Printf.sprintf "%d ops on one key exceeds the WGL bound (%d)" n
         max_key_ops)
  else begin
    let kinds =
      Array.map
        (fun e ->
          match kind_of_name e.name with
          | Some k -> k
          | None -> invalid_arg ("Lincheck: unknown op " ^ e.name))
        ops
    in
    let completed = ref 0 in
    Array.iteri (fun i e -> if e.res < max_int then completed := !completed lor (1 lsl i)) ops;
    let completed = !completed in
    let memo = Hashtbl.create 256 in
    let rec go mask state matched =
      let matched =
        matched
        ||
        match durable with
        | Some d when d.buffered -> consistent state d.recovered
        | _ -> false
      in
      let accept =
        mask land completed = completed
        &&
        match durable with
        | None -> true
        | Some d -> if d.buffered then matched else consistent state d.recovered
      in
      accept
      || (not (Hashtbl.mem memo (mask, state, matched)))
         &&
         (Hashtbl.replace memo (mask, state, matched) ();
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let b = 1 lsl !i in
            if mask land b = 0 then begin
              (* minimal in real-time order among the unlinearized? *)
              let minimal = ref true in
              for j = 0 to n - 1 do
                if mask land (1 lsl j) = 0 && j <> !i then
                  if ops.(j).res < ops.(!i).inv then minimal := false
              done;
              if !minimal then
                List.iter
                  (fun state' ->
                    if not !ok then ok := go (mask lor b) state' matched)
                  (steps kinds.(!i) ops.(!i).ret state)
            end;
            incr i
          done;
          !ok)
    in
    if go 0 st_absent false then Ok ()
    else
      Error
        (Printf.sprintf "no valid linearization of %d ops (%d completed)%s" n
           (let c = ref 0 in
            Array.iter (fun e -> if e.res < max_int then incr c) ops;
            !c)
           (match durable with
           | None -> ""
           | Some d ->
               Printf.sprintf " reaching recovered state %s%s"
                 (match d.recovered with
                 | None -> "absent"
                 | Some v -> string_of_int v)
                 (if d.buffered then " (buffered)" else "")))
  end

(* Group a history by key and check each key independently — sound for the
   set spec because its keys are independent objects and linearizability is
   local (Herlihy & Wing): a history is linearizable iff each per-object
   subhistory is. *)
let check ?durable entries =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let l = try Hashtbl.find by_key e.key with Not_found -> [] in
      Hashtbl.replace by_key e.key (e :: l))
    entries;
  let failures = ref [] in
  let keys = ref 0 in
  Hashtbl.iter
    (fun key l ->
      incr keys;
      let ops =
        Array.of_list (List.sort (fun a b -> compare a.inv b.inv) l)
      in
      let durable =
        match durable with None -> None | Some f -> Some (f key)
      in
      match check_key ?durable ops with
      | Ok () -> ()
      | Error msg -> failures := (key, msg) :: !failures)
    by_key;
  (!keys, List.sort compare !failures)

(* ---- FIFO shapes (queue / work-stealing deque) ------------------------- *)

(* FIFO order couples every operation to every other, so the check is a
   whole-history WGL over an int-list state (contents oldest-first) rather
   than the per-key decomposition sets enjoy. Producer entries carry their
   value in [key] ([Set_intf.ret_unit] acks with 1); consumers answer
   through [ret_opt]. *)

type qkind = Enqueue | Dequeue | Push | Pop | Steal

let qkind_of_name name =
  let suffix =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  match suffix with
  | "enqueue" -> Some Enqueue
  | "dequeue" -> Some Dequeue
  | "push" -> Some Push
  | "pop" -> Some Pop
  | "steal" -> Some Steal
  | _ -> None

let without_last l =
  match List.rev l with [] -> [] | _ :: r -> List.rev r

let last_opt l = match List.rev l with [] -> None | v :: _ -> Some v

(* Post-states of linearizing one op against [state]. In-flight ops that
   are never linearized are simply dropped by the search; offered steps are
   therefore full effects only. Dequeue/steal consume the front, pop the
   back. *)
let steps_fifo kind (e : entry) state =
  let unknown = e.ret = Heap.op_ret_unknown in
  match kind with
  | Enqueue | Push ->
      if unknown || e.ret = 1 then [ state @ [ e.key ] ] else []
  | Dequeue | Steal -> (
      if unknown then
        match state with [] -> [ state ] | _ :: tl -> [ state; tl ]
      else if e.ret < 0 then if state = [] then [ state ] else []
      else
        match state with
        | v :: tl when v = e.ret -> [ tl ]
        | _ -> [])
  | Pop -> (
      if unknown then
        match state with [] -> [ state ] | _ -> [ state; without_last state ]
      else if e.ret < 0 then if state = [] then [ state ] else []
      else
        match last_opt state with
        | Some v when v = e.ret -> [ without_last state ]
        | _ -> [])

type fifo_durable = {
  q_recovered : int list;  (** post-recovery contents, oldest-first *)
  q_buffered : bool;
      (** accept any intermediate state of the linearization — a per-object
          relaxation that is {e not} sound for link-cache queues (durable
          images can be windows no interleaving point reached), so durable
          drivers reject lc outright *)
}

let check_fifo ?durable entries =
  let ops =
    Array.of_list (List.sort (fun a b -> compare a.inv b.inv) entries)
  in
  let n = Array.length ops in
  if n > max_key_ops then
    Error
      (Printf.sprintf "%d ops exceeds the whole-history WGL bound (%d)" n
         max_key_ops)
  else begin
    let qkinds =
      Array.map
        (fun e ->
          match qkind_of_name e.name with
          | Some k -> k
          | None -> invalid_arg ("Lincheck: unknown queue op " ^ e.name))
        ops
    in
    let completed = ref 0 in
    Array.iteri
      (fun i e -> if e.res < max_int then completed := !completed lor (1 lsl i))
      ops;
    let completed = !completed in
    let memo = Hashtbl.create 1024 in
    let rec go mask state matched =
      let matched =
        matched
        ||
        match durable with
        | Some d when d.q_buffered -> state = d.q_recovered
        | _ -> false
      in
      let accept =
        mask land completed = completed
        &&
        match durable with
        | None -> true
        | Some d -> if d.q_buffered then matched else state = d.q_recovered
      in
      accept
      || (not (Hashtbl.mem memo (mask, state, matched)))
         &&
         (Hashtbl.replace memo (mask, state, matched) ();
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let b = 1 lsl !i in
            if mask land b = 0 then begin
              let minimal = ref true in
              for j = 0 to n - 1 do
                if mask land (1 lsl j) = 0 && j <> !i then
                  if ops.(j).res < ops.(!i).inv then minimal := false
              done;
              if !minimal then
                List.iter
                  (fun state' ->
                    if not !ok then ok := go (mask lor b) state' matched)
                  (steps_fifo qkinds.(!i) ops.(!i) state)
            end;
            incr i
          done;
          !ok)
    in
    if go 0 [] false then Ok ()
    else
      Error
        (Printf.sprintf "no valid linearization of %d queue ops%s" n
           (match durable with
           | None -> ""
           | Some d ->
               Printf.sprintf " reaching recovered contents [%s]"
                 (String.concat ";" (List.map string_of_int d.q_recovered))))
  end

(* ---- drivers ----------------------------------------------------------- *)

type outcome = {
  ops_recorded : int;
  keys_checked : int;
  in_flight : int;
  crashed : bool;
  failures : (int * string) list;  (** key, diagnosis *)
}

let ok outcome = outcome.failures = []

let in_flight_count entries =
  List.length (List.filter (fun e -> e.res = max_int) entries)

let random_op rng ops ~tid ~key_range =
  let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:key_range in
  match Workload.Xoshiro.below rng 10 with
  | 0 | 1 | 2 | 3 -> ignore (ops.Lfds.Set_intf.insert ~tid ~key ~value:(key * 3))
  | 4 | 5 | 6 -> ignore (ops.Lfds.Set_intf.remove ~tid ~key)
  | _ -> ignore (ops.Lfds.Set_intf.search ~tid ~key)

(** Record a real multi-domain run and check it (no crash): [nthreads]
    domains of [ops_per_thread] random ops over [1..key_range]. *)
let live_check ?(nthreads = 2) ?(ops_per_thread = 150) ?(key_range = 24)
    ?(seed = 42) ~structure ~flavor () =
  let inst = I.create ~nthreads ~size_hint:256 ~structure ~flavor () in
  let r = record (Lfds.Ctx.heap inst.I.ctx) in
  let worker tid () =
    let rng = Workload.Xoshiro.make ~seed:(seed + (tid * 7919)) in
    for _ = 1 to ops_per_thread do
      random_op rng inst.I.ops ~tid ~key_range
    done
  in
  let ds = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  stop r;
  let entries = history r in
  let keys_checked, failures = check entries in
  {
    ops_recorded = recorded_ops r;
    keys_checked;
    in_flight = in_flight_count entries;
    crashed = false;
    failures;
  }

(** Durable linearizability, crash-composed: run [total_ops] ops from
    [nthreads] {e logical} threads interleaved deterministically on the
    calling thread, trip a crash mid-stream ([trip] counts heap
    primitives), power-fail with seeded evictions, recover, and require the
    recovered state of every key to be explained by a linearization of its
    pre-crash history — final state for ack-durable flavors (lp/nvt/lf),
    any prefix state for the buffered link-cache flavor. *)
let durable_check ?(nthreads = 2) ?(total_ops = 200) ?(key_range = 24)
    ?(seed = 42) ?(trip = 900) ~structure ~flavor () =
  let mode = I.mode_of_flavor flavor in
  if not (Lfds.Persist_mode.is_durable mode) then
    invalid_arg "Lincheck.durable_check: volatile flavor has no crash story";
  let inst = I.create ~nthreads ~size_hint:256 ~structure ~flavor () in
  let heap = Lfds.Ctx.heap inst.I.ctx in
  let r = record heap in
  let rng = Workload.Xoshiro.make ~seed in
  let tripped =
    Heap.set_trip heap trip;
    try
      for _ = 1 to total_ops do
        let tid = Workload.Xoshiro.below rng nthreads in
        random_op rng inst.I.ops ~tid ~key_range
      done;
      Heap.disarm_trip heap;
      false
    with Heap.Crashed -> true
  in
  Heap.crash ~seed ~eviction_probability:0.5 heap;
  stop r;
  let entries = history r in
  let inst', _, _ = I.recover_only inst in
  let durable key =
    {
      recovered = inst'.I.ops.Lfds.Set_intf.search ~tid:0 ~key;
      buffered = not (Lfds.Persist_mode.acks_durable mode);
    }
  in
  let keys_checked, failures = check ~durable entries in
  {
    ops_recorded = recorded_ops r;
    keys_checked;
    in_flight = in_flight_count entries;
    crashed = tripped;
    failures;
  }

(* ---- queue / deque drivers --------------------------------------------- *)

module QI = Harness.Queue_instance

(* Producer values are distinct (thread id x per-thread counter), which
   keeps the whole-history search narrow and failures diagnosable. The
   deque owner (tid 0) bounds its outstanding items well under the largest
   buffer class so [Deque_full] cannot fire. *)
let deque_soft_cap = 40

let random_fifo_op rng inst ~tid ~counter =
  let fresh_value () =
    incr counter;
    (100 * (tid + 1)) + !counter
  in
  match inst.QI.structure with
  | QI.Mpmc ->
      if Workload.Xoshiro.below rng 2 = 0 then
        QI.put inst ~tid ~value:(fresh_value ())
      else ignore (QI.steal inst ~tid)
  | QI.Deque ->
      if tid = 0 then
        if Workload.Xoshiro.below rng 3 < 2 && QI.size inst < deque_soft_cap
        then QI.put inst ~tid ~value:(fresh_value ())
        else ignore (QI.take inst ~tid)
      else ignore (QI.steal inst ~tid)

(** Record a real multi-domain run over a FIFO shape and check the whole
    history (no crash). The deque's owner is domain 0; other domains only
    steal. *)
let queue_live_check ?(nthreads = 2) ?(ops_per_thread = 24) ?(seed = 42)
    ~structure ~flavor () =
  let inst = QI.create ~nthreads ~size_hint:256 ~structure ~flavor () in
  let r = record (Lfds.Ctx.heap inst.QI.ctx) in
  let worker tid () =
    let rng = Workload.Xoshiro.make ~seed:(seed + (tid * 7919)) in
    let counter = ref 0 in
    for _ = 1 to ops_per_thread do
      random_fifo_op rng inst ~tid ~counter
    done
  in
  let ds = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  stop r;
  let entries = history r in
  let failures =
    match check_fifo entries with Ok () -> [] | Error msg -> [ (0, msg) ]
  in
  {
    ops_recorded = recorded_ops r;
    keys_checked = 1;
    in_flight = in_flight_count entries;
    crashed = false;
    failures;
  }

(** Durable linearizability of a FIFO shape, crash-composed: logical
    threads interleaved deterministically, a trip-wire crash mid-stream,
    seeded evictions, recovery, then a whole-history check requiring the
    drained post-recovery contents to be the final state of some
    linearization. Only ack-durable flavors (lp/nvt/lf) qualify: volatile
    has no crash story, and link-cache queue images can be windows no
    interleaving point reached (see {!fifo_durable}). *)
let queue_durable_check ?(nthreads = 2) ?(total_ops = 48) ?(seed = 42)
    ?(trip = 700) ~structure ~flavor () =
  let mode = I.mode_of_flavor flavor in
  if not (Lfds.Persist_mode.acks_durable mode) then
    invalid_arg
      "Lincheck.queue_durable_check: needs an ack-durable flavor (lp/nvt/lf)";
  let inst = QI.create ~nthreads ~size_hint:256 ~structure ~flavor () in
  let heap = Lfds.Ctx.heap inst.QI.ctx in
  let r = record heap in
  let rng = Workload.Xoshiro.make ~seed in
  let counters = Array.init nthreads (fun _ -> ref 0) in
  let tripped =
    Heap.set_trip heap trip;
    try
      for _ = 1 to total_ops do
        let tid = Workload.Xoshiro.below rng nthreads in
        random_fifo_op rng inst ~tid ~counter:counters.(tid)
      done;
      Heap.disarm_trip heap;
      false
    with Heap.Crashed -> true
  in
  Heap.crash ~seed ~eviction_probability:0.5 heap;
  stop r;
  let entries = history r in
  let inst', _, _ = QI.recover_only inst in
  let durable =
    { q_recovered = QI.drain inst' ~tid:0; q_buffered = false }
  in
  let failures =
    match check_fifo ~durable entries with
    | Ok () -> []
    | Error msg -> [ (0, msg) ]
  in
  {
    ops_recorded = recorded_ops r;
    keys_checked = 1;
    in_flight = in_flight_count entries;
    crashed = tripped;
    failures;
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "%d ops over %d keys (%d in flight%s): %s"
    o.ops_recorded o.keys_checked o.in_flight
    (if o.crashed then ", crash-tripped" else "")
    (if o.failures = [] then "linearizable"
     else
       String.concat "; "
         (List.map
            (fun (k, msg) -> Printf.sprintf "key %d: %s" k msg)
            o.failures))
