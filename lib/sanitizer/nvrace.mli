(** NVRace — a vector-clock happens-before race detector for the simulated
    NVM heap, riding the same observer multiplexer as NVSan.

    {2 Access model}

    The heap's primitives map onto a C11-like discipline:

    - [Heap.Cursor.load] is an atomic acquire read: it happens-after the
      last successful CAS on the same word (the link-and-persist protocol's
      publish idiom);
    - a successful [Heap.Cursor.cas] is an atomic acquire+release
      read-modify-write;
    - [Heap.Cursor.store] claims the word is privately owned — node
      initialization before publish, or recovery code. It synchronizes with
      nothing.

    A {e race} is a pair of conflicting accesses with no happens-before
    edge and a plain store on at least one side: [racy-load] (a load
    observes an unordered plain store), [racy-store] (a plain store
    conflicts with an unordered prior write or read, or a CAS overlaps an
    unordered plain store). Atomic-vs-atomic pairs never race.

    {2 Happens-before edges}

    - program order per thread;
    - CAS release -> later load/CAS acquire of the same word;
    - [A_hb_release] -> [A_hb_acquire] on the same sync object (the epoch
      counters announce these: enter/exit release a thread's counter,
      [Epoch.safe]/[snapshot] acquire every counter they read);
    - allocation: [A_alloc] starts the span's shadow clean, so accesses to
      the slot's previous lifetime never pair with the new one (the grace
      period justifying the recycle is NVSan's reclamation check, not
      ours); and a thread's first observed event joins all earlier-started
      threads (the untracked [Domain.spawn] edge, over-approximated).

    Fences add no edge: sfence orders persistence, not visibility.

    Race checks apply only to pointer-bearing words — roots/static below
    [root_limit] plus words inside allocated nodes — the same filter NVSan
    uses to keep allocator bitmaps, APT slots and log lines out. *)

type violation = {
  code : string;  (** "racy-load" | "racy-store" *)
  addr : int;
  tid : int;  (** the access that completed the race *)
  other_tid : int;  (** the earlier unordered access *)
  op_seq : int;
  op_name : string;
  other_op : string;  (** earlier access's op name, "?" if unrecorded *)
  detail : string;
}

type config = {
  root_limit : int;  (** pass [Lfds.Ctx.static_limit] *)
  max_violations : int;
}

val default_config : unit -> config

type t

(** Attach to [heap]'s observer multiplexer. Reports are deterministic for
    a deterministic event stream: no timestamps, no hashing of addresses. *)
val attach : ?config:config -> Nvm.Heap.t -> t

val detach : t -> unit

(** Join every tracked thread's clock into [tid]'s — the [Domain.join]
    edge, which the event stream cannot see. Call from the joining thread
    before it touches the structure post-join while still observed. *)
val quiesce : t -> tid:int -> unit

val violations : t -> violation list
val violation_count : t -> int

(** Violations discarded after [max_violations] was reached. *)
val dropped : t -> int

(** False once a crash event stopped the detector. *)
val active : t -> bool

val clear : t -> unit
val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string
