(** NVRace implementation: a FastTrack-style vector-clock happens-before
    race detector over the heap observer stream. See the interface for the
    access model and edge catalogue.

    Like NVSan, everything runs inside observer hooks: never call a heap
    primitive from here, keep all state behind the one mutex. Events arrive
    after the primitive applied, so conflict checks against the pre-event
    shadow run before the shadow is updated. *)

open Nvm

let ntids = Pstats.max_threads
let tid_bits = 6 (* 2^6 = Pstats.max_threads *)
let tid_mask = (1 lsl tid_bits) - 1

(* An epoch packs (clock, tid) into one int; 0 means "no access on record".
   Clocks start at 1 so every real epoch is non-zero. *)
let epoch ~clock ~tid = (clock lsl tid_bits) lor tid
let epoch_clock e = e lsr tid_bits
let epoch_tid e = e land tid_mask

(* The read shadow for a word is either an epoch (> 0), nothing (0), or
   [rd_shared] (-1): the word has unordered concurrent readers and the full
   per-tid read clocks live in [rd_shared]. *)
let rd_shared_sentinel = -1

type violation = {
  code : string;  (** "racy-load" | "racy-store" *)
  addr : int;
  tid : int;  (** the thread whose access completed the race *)
  other_tid : int;  (** the earlier, unordered access's thread *)
  op_seq : int;
  op_name : string;
  other_op : string;  (** op name of the earlier access, "?" if unrecorded *)
  detail : string;
}

type config = {
  root_limit : int;
      (** first address above the pointer-bearing prefix
          ([Lfds.Ctx.static_limit]); race checks apply to root/static words
          and words inside allocated nodes, never to metadata *)
  max_violations : int;
}

let default_config () = { root_limit = max_int; max_violations = 1000 }

type t = {
  heap : Heap.t;
  cfg : config;
  lock : Mutex.t;
  mutable obs_handle : Heap.Observer.handle option;
  mutable is_active : bool;
  (* Per-thread vector clocks; [started] gates the bootstrap join that
     stands in for the untracked Domain.spawn edge. *)
  vc : int array array;
  started : bool array;
  (* Per-word shadows. *)
  wr : int array;  (** packed last-write epoch, 0 = none *)
  wr_atomic : Bytes.t;  (** 1 iff the last write was a successful CAS *)
  wr_op : string array;  (** op name of the last writer, for reports *)
  rd : int array;  (** packed last-read epoch, 0 / [rd_shared_sentinel] *)
  rd_shared : (int, int array) Hashtbl.t;  (** word -> per-tid read clocks *)
  word_owner : int array;  (** owning node base, -1 = unallocated *)
  alloc_size : (int, int) Hashtbl.t;  (** node base -> size_class *)
  (* Per-object synchronization clocks: heap addresses written by CAS, and
     negative virtual objects ([Heap.epoch_hb_obj]). *)
  sync : (int, int array) Hashtbl.t;
  (* Attribution. *)
  op_seq : int array;
  op_name : string array;
  mutable viols : violation list;
  mutable nviols : int;
  mutable ndropped : int;
}

(* ---- clock plumbing ---------------------------------------------------- *)

let join dst src =
  for i = 0 to ntids - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

(* Does [tid]'s current clock dominate packed epoch [e]? *)
let hb_after t ~tid e = t.vc.(tid).(epoch_tid e) >= epoch_clock e

let my_epoch t ~tid = epoch ~clock:t.vc.(tid).(tid) ~tid

(* First event of a thread: give it a clock, and join every thread already
   on record. The Domain.spawn edge is not in the event stream, so this
   over-approximates it — anything that happened before the thread's first
   observed access is treated as ordered before the whole thread. Scenario
   drivers that need a precise boundary issue a warm-up access per thread
   first (see test/injected). *)
let bootstrap t ~tid =
  if not t.started.(tid) then begin
    t.started.(tid) <- true;
    for u = 0 to ntids - 1 do
      if t.started.(u) && u <> tid then join t.vc.(tid) t.vc.(u)
    done;
    t.vc.(tid).(tid) <- max 1 (t.vc.(tid).(tid) + 1)
  end

let acquire t ~tid ~obj =
  match Hashtbl.find_opt t.sync obj with
  | Some c -> join t.vc.(tid) c
  | None -> ()

let release t ~tid ~obj =
  (match Hashtbl.find_opt t.sync obj with
  | Some c -> join c t.vc.(tid)
  | None -> Hashtbl.replace t.sync obj (Array.copy t.vc.(tid)));
  (* Step the clock so later releases by this thread are distinguishable
     from this one. *)
  t.vc.(tid).(tid) <- t.vc.(tid).(tid) + 1

(* Same pointer-bearing test as NVSan: roots/static below [root_limit], or
   inside an allocated node. Allocator bitmaps, APT slots and log lines are
   engineered single-writer/quiescent metadata — never race-checked. *)
let pointer_bearing t addr =
  t.word_owner.(addr) >= 0 || addr < t.cfg.root_limit

let report t ~code ~addr ~tid ~other_tid ~other_op detail =
  if t.nviols >= t.cfg.max_violations then t.ndropped <- t.ndropped + 1
  else begin
    t.viols <-
      {
        code;
        addr;
        tid;
        other_tid;
        op_seq = t.op_seq.(tid);
        op_name = t.op_name.(tid);
        other_op;
        detail;
      }
      :: t.viols;
    t.nviols <- t.nviols + 1
  end

(* ---- access shadows ---------------------------------------------------- *)

(* Record a read in the FastTrack read shadow: one epoch while reads stay
   ordered, escalating to a per-tid clock table once two unordered readers
   coexist. *)
let record_read t ~tid ~addr =
  let e = t.rd.(addr) in
  if e = rd_shared_sentinel then begin
    match Hashtbl.find_opt t.rd_shared addr with
    | Some arr -> arr.(tid) <- t.vc.(tid).(tid)
    | None ->
        (* Shared entry dropped by an alloc reset between events; demote. *)
        t.rd.(addr) <- my_epoch t ~tid
  end
  else if e = 0 || epoch_tid e = tid || hb_after t ~tid e then
    t.rd.(addr) <- my_epoch t ~tid
  else begin
    let arr = Array.make ntids 0 in
    arr.(epoch_tid e) <- epoch_clock e;
    arr.(tid) <- t.vc.(tid).(tid);
    Hashtbl.replace t.rd_shared addr arr;
    t.rd.(addr) <- rd_shared_sentinel
  end

let clear_read t ~addr =
  if t.rd.(addr) = rd_shared_sentinel then Hashtbl.remove t.rd_shared addr;
  t.rd.(addr) <- 0

(* The write shadow after a checked write. *)
let record_write t ~tid ~addr ~atomic =
  t.wr.(addr) <- my_epoch t ~tid;
  Bytes.unsafe_set t.wr_atomic addr (if atomic then '\001' else '\000');
  t.wr_op.(addr) <- t.op_name.(tid);
  clear_read t ~addr

(* ---- conflict checks ---------------------------------------------------

   The access model: heap loads and CASes are genuine atomics (acquire
   reads; successful CAS = acquire + release write), while [Heap.store] is
   the protocol's "privately owned word" claim. A race is a conflicting
   unordered pair with a plain store on at least one side:

   - load    vs unordered plain store          -> racy-load
   - store   vs unordered prior write (any)    -> racy-store (write-write)
   - store   vs unordered prior read  (any)    -> racy-store (read-write)
   - CAS     vs unordered prior plain store    -> racy-store
   - CAS/load vs CAS/load                      -> never a race *)

let check_load t ~tid ~addr =
  let e = t.wr.(addr) in
  if
    e <> 0
    && Bytes.get t.wr_atomic addr = '\000'
    && epoch_tid e <> tid
    && not (hb_after t ~tid e)
  then
    report t ~code:"racy-load" ~addr ~tid ~other_tid:(epoch_tid e)
      ~other_op:t.wr_op.(addr)
      (Printf.sprintf
         "load of word %d observes a plain store by tid %d with no \
          happens-before edge (no publishing CAS or sync object orders them)"
         addr (epoch_tid e))

let check_write t ~tid ~addr ~atomic =
  (* Write-write: a plain store conflicts with any unordered prior write; a
     CAS only with an unordered prior {e plain} store. *)
  let e = t.wr.(addr) in
  if
    e <> 0
    && epoch_tid e <> tid
    && ((not atomic) || Bytes.get t.wr_atomic addr = '\000')
    && not (hb_after t ~tid e)
  then
    report t ~code:"racy-store" ~addr ~tid ~other_tid:(epoch_tid e)
      ~other_op:t.wr_op.(addr)
      (Printf.sprintf
         "%s to word %d overlaps an unordered %s by tid %d (write-write)"
         (if atomic then "CAS" else "plain store")
         addr
         (if Bytes.get t.wr_atomic addr = '\001' then "CAS" else "plain store")
         (epoch_tid e));
  (* Read-write: only a plain store conflicts with prior reads (loads and
     CASes are atomic; an atomic write never races an atomic read). *)
  if not atomic then begin
    let r = t.rd.(addr) in
    if r = rd_shared_sentinel then begin
      match Hashtbl.find_opt t.rd_shared addr with
      | Some arr ->
          let u = ref (-1) in
          for i = 0 to ntids - 1 do
            if !u < 0 && i <> tid && arr.(i) > 0 && t.vc.(tid).(i) < arr.(i)
            then u := i
          done;
          if !u >= 0 then
            report t ~code:"racy-store" ~addr ~tid ~other_tid:!u ~other_op:"?"
              (Printf.sprintf
                 "plain store to word %d overtakes an unordered read by tid \
                  %d (read-write)"
                 addr !u)
      | None -> ()
    end
    else if r <> 0 && epoch_tid r <> tid && not (hb_after t ~tid r) then
      report t ~code:"racy-store" ~addr ~tid ~other_tid:(epoch_tid r)
        ~other_op:"?"
        (Printf.sprintf
           "plain store to word %d overtakes an unordered read by tid %d \
            (read-write)"
           addr (epoch_tid r))
  end

(* ---- event handlers ---------------------------------------------------- *)

let on_load t ~tid ~addr =
  bootstrap t ~tid;
  (* Every load acquires the word's sync clock: reading a CAS-published
     value is the protocol's release/acquire idiom. *)
  acquire t ~tid ~obj:addr;
  if pointer_bearing t addr then begin
    check_load t ~tid ~addr;
    record_read t ~tid ~addr
  end

let on_store t ~tid ~addr =
  bootstrap t ~tid;
  if pointer_bearing t addr then begin
    check_write t ~tid ~addr ~atomic:false;
    record_write t ~tid ~addr ~atomic:false
  end

let on_cas t ~tid ~addr ~success =
  bootstrap t ~tid;
  acquire t ~tid ~obj:addr;
  if success then begin
    if pointer_bearing t addr then check_write t ~tid ~addr ~atomic:true;
    (* Release through the word even off the pointer-bearing prefix: CASes
       on allocator bitmaps carry real edges and are cheap to honor. *)
    release t ~tid ~obj:addr;
    if pointer_bearing t addr then record_write t ~tid ~addr ~atomic:true
  end

(* A new lifetime: the slot's shadow history belongs to the previous
   occupant, and the grace period that let the allocator recycle the slot
   is exactly the ordering evidence we lack events for (NVSan's reclamation
   checkers audit that protocol). Start the span clean. *)
let on_alloc t ~tid ~addr ~size_class =
  bootstrap t ~tid;
  Hashtbl.replace t.alloc_size addr size_class;
  for w = addr to addr + size_class - 1 do
    t.word_owner.(w) <- addr;
    t.wr.(w) <- 0;
    Bytes.unsafe_set t.wr_atomic w '\000';
    t.wr_op.(w) <- "?";
    clear_read t ~addr:w;
    Hashtbl.remove t.sync w
  done

let on_free t ~addr =
  match Hashtbl.find_opt t.alloc_size addr with
  | None -> ()
  | Some size ->
      Hashtbl.remove t.alloc_size addr;
      for w = addr to addr + size - 1 do
        t.word_owner.(w) <- -1
      done

let on_note t ~tid note =
  match note with
  | Heap.A_alloc { addr; size_class } -> on_alloc t ~tid ~addr ~size_class
  | Heap.A_free { addr } -> on_free t ~addr
  | Heap.A_hb_acquire { obj } ->
      bootstrap t ~tid;
      acquire t ~tid ~obj
  | Heap.A_hb_release { obj } ->
      bootstrap t ~tid;
      release t ~tid ~obj
  | Heap.A_op_begin { name; key = _ } ->
      t.op_seq.(tid) <- t.op_seq.(tid) + 1;
      t.op_name.(tid) <- name
  | Heap.A_op_end _ | Heap.A_retire _ | Heap.A_reclaim _
  | Heap.A_lc_register _ | Heap.A_validity _ ->
      ()

let handle t ev =
  match ev with
  | Heap.Ev_load { tid; addr; value = _ } -> on_load t ~tid ~addr
  | Heap.Ev_store { tid; addr; _ } -> on_store t ~tid ~addr
  | Heap.Ev_cas { tid; addr; success; _ } -> on_cas t ~tid ~addr ~success
  | Heap.Ev_fence _ ->
      (* sfence orders persistence, not inter-thread visibility: stores are
         already globally visible when issued, so fences add no
         happens-before edge in this model. *)
      ()
  | Heap.Ev_write_back _ | Heap.Ev_drain _ -> ()
  | Heap.Ev_crash ->
      (* Recovery runs single-threaded outside the runtime protocol. *)
      t.is_active <- false
  | Heap.Ev_note { tid; note } -> on_note t ~tid note

let on_event t ev =
  Mutex.lock t.lock;
  (try if t.is_active then handle t ev
   with e ->
     Mutex.unlock t.lock;
     raise e);
  Mutex.unlock t.lock

(* ---- lifecycle --------------------------------------------------------- *)

let attach ?config heap =
  let cfg = match config with Some c -> c | None -> default_config () in
  let size = Heap.size_words heap in
  let t =
    {
      heap;
      cfg;
      lock = Mutex.create ();
      obs_handle = None;
      is_active = true;
      vc = Array.init ntids (fun _ -> Array.make ntids 0);
      started = Array.make ntids false;
      wr = Array.make size 0;
      wr_atomic = Bytes.make size '\000';
      wr_op = Array.make size "?";
      rd = Array.make size 0;
      rd_shared = Hashtbl.create 64;
      word_owner = Array.make size (-1);
      alloc_size = Hashtbl.create 1024;
      sync = Hashtbl.create 1024;
      op_seq = Array.make ntids 0;
      op_name = Array.make ntids "?";
      viols = [];
      nviols = 0;
      ndropped = 0;
    }
  in
  t.obs_handle <- Some (Heap.Observer.add heap (on_event t));
  t

let detach t =
  match t.obs_handle with
  | None -> ()
  | Some h ->
      Heap.Observer.remove t.heap h;
      t.obs_handle <- None

let quiesce t ~tid =
  Mutex.lock t.lock;
  bootstrap t ~tid;
  for u = 0 to ntids - 1 do
    if t.started.(u) && u <> tid then join t.vc.(tid) t.vc.(u)
  done;
  Mutex.unlock t.lock

let violations t = List.rev t.viols
let violation_count t = t.nviols
let dropped t = t.ndropped
let active t = t.is_active

let clear t =
  Mutex.lock t.lock;
  t.viols <- [];
  t.nviols <- 0;
  t.ndropped <- 0;
  Mutex.unlock t.lock

let pp_violation ppf v =
  Format.fprintf ppf "[race] %s: word %d tid %d op #%d %s vs tid %d %s — %s"
    v.code v.addr v.tid v.op_seq v.op_name v.other_tid v.other_op v.detail

let violation_to_string v = Format.asprintf "%a" pp_violation v
