(** Exhaustive crash-state enumeration: see the interface for the model.

    Each trip point gets a fresh instance replaying the same scripted
    history, so the only moving part across trips is where the crash lands.
    Enumeration then brackets every iteration with [Heap.restore], making
    the 2^n recoveries independent. The sanitizer proper is never attached
    here: recovery legitimately breaks the runtime protocol, and the heap
    under enumeration must behave exactly as in production. *)

open Nvm

type result = {
  trips_attempted : int;
  crashes : int;
  states_checked : int;
  skipped_large : int;
  max_dirty_seen : int;
  violations : string list;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%d trips (%d crashed), %d crash states recovered, %d skipped (> \
     max-dirty), worst dirty-line count %d, %d violation(s)"
    r.trips_attempted r.crashes r.states_checked r.skipped_large
    r.max_dirty_seen (List.length r.violations)

(* Deterministic xorshift so every trip replays the identical history. *)
let next r =
  let x = !r in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  let x = if x = 0 then 0x9E3779B9 else x in
  r := x;
  x

let value_for key = key + 1000

(* Replay the scripted history on [inst], updating [model] only for
   operations that complete. Returns the key of the operation in flight when
   the trip fired, if it fired. *)
let replay inst ~model ~ops_per_trip ~key_range ~seed =
  let ops = inst.Harness.Instance.ops in
  let rng = ref seed in
  let crashed_on = ref None in
  (try
     for _ = 1 to ops_per_trip do
       let k = 1 + (next rng mod key_range) in
       let pick = next rng mod 10 in
       crashed_on := Some k;
       if pick < 5 then begin
         if ops.insert ~tid:0 ~key:k ~value:(value_for k) then
           Hashtbl.replace model k (value_for k)
       end
       else if pick < 8 then begin
         if ops.remove ~tid:0 ~key:k then Hashtbl.remove model k
       end
       else ignore (ops.search ~tid:0 ~key:k);
       crashed_on := None
     done;
     None
   with Heap.Crashed -> Some (Option.value !crashed_on ~default:(-1)))

let run ?(flavor = Harness.Instance.Lp) ?(ops_per_trip = 48) ?(key_range = 48)
    ?(trip_start = 1) ?(trip_stop = 600) ?(trip_step = 7) ?(max_dirty = 10)
    ?(max_reports = 32) ?(seed = 0x5EED) ~structure () =
  let trips_attempted = ref 0 in
  let crashes = ref 0 in
  let states_checked = ref 0 in
  let skipped_large = ref 0 in
  let max_dirty_seen = ref 0 in
  let violations = ref [] in
  let nviol = ref 0 in
  let report msg =
    incr nviol;
    if !nviol <= max_reports then violations := msg :: !violations
  in
  let trip = ref trip_start in
  while !trip <= trip_stop do
    incr trips_attempted;
    let inst =
      Harness.Instance.create ~nthreads:1 ~size_hint:key_range
        ~heap_words:(1 lsl 15) ~apt_entries:64 ~hash_buckets:64
        ~skiplist_levels:8 ~structure ~flavor ()
    in
    let heap = Lfds.Ctx.heap inst.Harness.Instance.ctx in
    let model = Hashtbl.create 64 in
    Heap.set_trip heap !trip;
    (match replay inst ~model ~ops_per_trip ~key_range ~seed with
    | None -> Heap.disarm_trip heap (* wire past the end of the script *)
    | Some inflight ->
        incr crashes;
        let snap = Heap.snapshot heap in
        let dirty = Array.of_list (Heap.dirty_lines heap) in
        let n = Array.length dirty in
        if n > !max_dirty_seen then max_dirty_seen := n;
        if n > max_dirty then incr skipped_large
        else
          for mask = 0 to (1 lsl n) - 1 do
            Heap.restore heap snap;
            Heap.crash_with heap ~keep:(fun line ->
                let rec idx i =
                  if i >= n then -1
                  else if dirty.(i) = line then i
                  else idx (i + 1)
                in
                let i = idx 0 in
                i >= 0 && mask land (1 lsl i) <> 0);
            let rec_inst, _dt, _freed = Harness.Instance.recover_only inst in
            incr states_checked;
            let rops = rec_inst.Harness.Instance.ops in
            for k = 1 to key_range do
              let expected = Hashtbl.find_opt model k in
              let got = rops.search ~tid:0 ~key:k in
              if expected <> got && k <> inflight then
                report
                  (Printf.sprintf
                     "%s/%s trip %d mask %#x: key %d %s after recovery \
                      (expected %s), in-flight key was %d"
                     (Harness.Instance.structure_name structure)
                     (Harness.Instance.flavor_name flavor)
                     !trip mask k
                     (match got with
                     | Some v -> Printf.sprintf "= %d" v
                     | None -> "missing")
                     (match expected with
                     | Some v -> string_of_int v
                     | None -> "absent")
                     inflight)
            done
          done);
    trip := !trip + trip_step
  done;
  {
    trips_attempted = !trips_attempted;
    crashes = !crashes;
    states_checked = !states_checked;
    skipped_large = !skipped_large;
    max_dirty_seen = !max_dirty_seen;
    violations = List.rev !violations;
  }

(* ---- FIFO shapes -------------------------------------------------------- *)

module QI = Harness.Queue_instance

(* The single in-flight operation's possible durable effect. *)
type q_effect = E_put of int | E_take | E_pop

let without_last l = match List.rev l with [] -> [] | _ :: r -> List.rev r

(* Replay the scripted single-thread history on a FIFO shape, updating
   [model] (contents oldest-first) only for completed operations. The deque
   script mixes owner push/pop with same-thread steals (functionally just
   the other consumption end); its model bound keeps [Deque_full]
   unreachable. *)
let replay_queue inst ~model ~ops_per_trip ~seed =
  let rng = ref seed in
  let counter = ref 0 in
  let crashed_on = ref None in
  let fresh () =
    incr counter;
    1000 + !counter
  in
  try
    for _ = 1 to ops_per_trip do
      let pick = next rng mod 10 in
      (match inst.QI.structure with
      | QI.Mpmc ->
          if pick < 6 then begin
            let v = fresh () in
            crashed_on := Some (E_put v);
            QI.put inst ~tid:0 ~value:v;
            model := !model @ [ v ]
          end
          else begin
            crashed_on := Some E_take;
            match QI.steal inst ~tid:0 with
            | Some _ -> model := List.tl !model
            | None -> ()
          end
      | QI.Deque ->
          if pick < 5 && List.length !model < 40 then begin
            let v = fresh () in
            crashed_on := Some (E_put v);
            QI.put inst ~tid:0 ~value:v;
            model := !model @ [ v ]
          end
          else if pick < 8 then begin
            crashed_on := Some E_pop;
            match QI.take inst ~tid:0 with
            | Some _ -> model := without_last !model
            | None -> ()
          end
          else begin
            crashed_on := Some E_take;
            match QI.steal inst ~tid:0 with
            | Some _ -> model := List.tl !model
            | None -> ()
          end);
      crashed_on := None
    done;
    None
  with Heap.Crashed -> Some (Option.get !crashed_on)

let q_effect_name = function
  | E_put v -> Printf.sprintf "put %d" v
  | E_take -> "take-front"
  | E_pop -> "pop-back"

(** FIFO-shape enumerator: same model as {!run}, but the consistency check
    compares the {e drained} recovered contents against the completed-ops
    model, with the single in-flight operation free to have happened or
    not. Only ack-durable flavors (lp/nvt/lf) qualify. *)
let run_queue ?(flavor = Harness.Instance.Lp) ?(ops_per_trip = 48)
    ?(trip_start = 1) ?(trip_stop = 600) ?(trip_step = 7) ?(max_dirty = 10)
    ?(max_reports = 32) ?(seed = 0x5EED) ~structure () =
  if not (Lfds.Persist_mode.acks_durable (Harness.Instance.mode_of_flavor flavor))
  then
    invalid_arg "Crash_enum.run_queue: needs an ack-durable flavor (lp/nvt/lf)";
  let trips_attempted = ref 0 in
  let crashes = ref 0 in
  let states_checked = ref 0 in
  let skipped_large = ref 0 in
  let max_dirty_seen = ref 0 in
  let violations = ref [] in
  let nviol = ref 0 in
  let report msg =
    incr nviol;
    if !nviol <= max_reports then violations := msg :: !violations
  in
  let trip = ref trip_start in
  while !trip <= trip_stop do
    incr trips_attempted;
    let inst =
      QI.create ~nthreads:1 ~size_hint:64 ~heap_words:(1 lsl 15)
        ~apt_entries:64 ~structure ~flavor ()
    in
    let heap = Lfds.Ctx.heap inst.QI.ctx in
    let model = ref [] in
    Heap.set_trip heap !trip;
    (match replay_queue inst ~model ~ops_per_trip ~seed with
    | None -> Heap.disarm_trip heap
    | Some inflight ->
        incr crashes;
        (* The in-flight op's effect may or may not be durable. *)
        let acceptable =
          !model
          ::
          (match inflight with
          | E_put v -> [ !model @ [ v ] ]
          | E_take -> ( match !model with [] -> [] | _ :: tl -> [ tl ])
          | E_pop -> ( match !model with [] -> [] | l -> [ without_last l ]))
        in
        let snap = Heap.snapshot heap in
        let dirty = Array.of_list (Heap.dirty_lines heap) in
        let n = Array.length dirty in
        if n > !max_dirty_seen then max_dirty_seen := n;
        if n > max_dirty then incr skipped_large
        else
          for mask = 0 to (1 lsl n) - 1 do
            Heap.restore heap snap;
            Heap.crash_with heap ~keep:(fun line ->
                let rec idx i =
                  if i >= n then -1
                  else if dirty.(i) = line then i
                  else idx (i + 1)
                in
                let i = idx 0 in
                i >= 0 && mask land (1 lsl i) <> 0);
            let rec_inst, _dt, _freed = QI.recover_only inst in
            incr states_checked;
            let got = QI.drain rec_inst ~tid:0 in
            if not (List.mem got acceptable) then
              report
                (Printf.sprintf
                   "%s/%s trip %d mask %#x: recovered [%s], expected [%s] \
                    (in-flight op: %s)"
                   (QI.structure_name structure)
                   (Harness.Instance.flavor_name flavor)
                   !trip mask
                   (String.concat ";" (List.map string_of_int got))
                   (String.concat ";" (List.map string_of_int !model))
                   (q_effect_name inflight))
          done);
    trip := !trip + trip_step
  done;
  {
    trips_attempted = !trips_attempted;
    crashes = !crashes;
    states_checked = !states_checked;
    skipped_large = !skipped_large;
    max_dirty_seen = !max_dirty_seen;
    violations = List.rev !violations;
  }
