(** Exhaustive crash-state enumeration: see the interface for the model.

    Each trip point gets a fresh instance replaying the same scripted
    history, so the only moving part across trips is where the crash lands.
    Enumeration then brackets every iteration with [Heap.restore], making
    the 2^n recoveries independent. The sanitizer proper is never attached
    here: recovery legitimately breaks the runtime protocol, and the heap
    under enumeration must behave exactly as in production. *)

open Nvm

type result = {
  trips_attempted : int;
  crashes : int;
  states_checked : int;
  skipped_large : int;
  max_dirty_seen : int;
  violations : string list;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%d trips (%d crashed), %d crash states recovered, %d skipped (> \
     max-dirty), worst dirty-line count %d, %d violation(s)"
    r.trips_attempted r.crashes r.states_checked r.skipped_large
    r.max_dirty_seen (List.length r.violations)

(* Deterministic xorshift so every trip replays the identical history. *)
let next r =
  let x = !r in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  let x = if x = 0 then 0x9E3779B9 else x in
  r := x;
  x

let value_for key = key + 1000

(* Replay the scripted history on [inst], updating [model] only for
   operations that complete. Returns the key of the operation in flight when
   the trip fired, if it fired. *)
let replay inst ~model ~ops_per_trip ~key_range ~seed =
  let ops = inst.Harness.Instance.ops in
  let rng = ref seed in
  let crashed_on = ref None in
  (try
     for _ = 1 to ops_per_trip do
       let k = 1 + (next rng mod key_range) in
       let pick = next rng mod 10 in
       crashed_on := Some k;
       if pick < 5 then begin
         if ops.insert ~tid:0 ~key:k ~value:(value_for k) then
           Hashtbl.replace model k (value_for k)
       end
       else if pick < 8 then begin
         if ops.remove ~tid:0 ~key:k then Hashtbl.remove model k
       end
       else ignore (ops.search ~tid:0 ~key:k);
       crashed_on := None
     done;
     None
   with Heap.Crashed -> Some (Option.value !crashed_on ~default:(-1)))

let run ?(flavor = Harness.Instance.Lp) ?(ops_per_trip = 48) ?(key_range = 48)
    ?(trip_start = 1) ?(trip_stop = 600) ?(trip_step = 7) ?(max_dirty = 10)
    ?(max_reports = 32) ?(seed = 0x5EED) ~structure () =
  let trips_attempted = ref 0 in
  let crashes = ref 0 in
  let states_checked = ref 0 in
  let skipped_large = ref 0 in
  let max_dirty_seen = ref 0 in
  let violations = ref [] in
  let nviol = ref 0 in
  let report msg =
    incr nviol;
    if !nviol <= max_reports then violations := msg :: !violations
  in
  let trip = ref trip_start in
  while !trip <= trip_stop do
    incr trips_attempted;
    let inst =
      Harness.Instance.create ~nthreads:1 ~size_hint:key_range
        ~heap_words:(1 lsl 15) ~apt_entries:64 ~hash_buckets:64
        ~skiplist_levels:8 ~structure ~flavor ()
    in
    let heap = Lfds.Ctx.heap inst.Harness.Instance.ctx in
    let model = Hashtbl.create 64 in
    Heap.set_trip heap !trip;
    (match replay inst ~model ~ops_per_trip ~key_range ~seed with
    | None -> Heap.disarm_trip heap (* wire past the end of the script *)
    | Some inflight ->
        incr crashes;
        let snap = Heap.snapshot heap in
        let dirty = Array.of_list (Heap.dirty_lines heap) in
        let n = Array.length dirty in
        if n > !max_dirty_seen then max_dirty_seen := n;
        if n > max_dirty then incr skipped_large
        else
          for mask = 0 to (1 lsl n) - 1 do
            Heap.restore heap snap;
            Heap.crash_with heap ~keep:(fun line ->
                let rec idx i =
                  if i >= n then -1
                  else if dirty.(i) = line then i
                  else idx (i + 1)
                in
                let i = idx 0 in
                i >= 0 && mask land (1 lsl i) <> 0);
            let rec_inst, _dt, _freed = Harness.Instance.recover_only inst in
            incr states_checked;
            let rops = rec_inst.Harness.Instance.ops in
            for k = 1 to key_range do
              let expected = Hashtbl.find_opt model k in
              let got = rops.search ~tid:0 ~key:k in
              if expected <> got && k <> inflight then
                report
                  (Printf.sprintf
                     "%s/%s trip %d mask %#x: key %d %s after recovery \
                      (expected %s), in-flight key was %d"
                     (Harness.Instance.structure_name structure)
                     (Harness.Instance.flavor_name flavor)
                     !trip mask k
                     (match got with
                     | Some v -> Printf.sprintf "= %d" v
                     | None -> "missing")
                     (match expected with
                     | Some v -> string_of_int v
                     | None -> "absent")
                     inflight)
            done
          done);
    trip := !trip + trip_step
  done;
  {
    trips_attempted = !trips_attempted;
    crashes = !crashes;
    states_checked = !states_checked;
    skipped_large = !skipped_large;
    max_dirty_seen = !max_dirty_seen;
    violations = List.rev !violations;
  }
