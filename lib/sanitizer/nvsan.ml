(** NVSan implementation: shadow persist-state tracking plus the flush-order
    and reclamation checkers. See the interface for the checker catalogue.

    Everything here runs inside heap observer hooks, so the cardinal rules
    are: never call a heap primitive (only [Heap.peek]), and keep every
    update behind the one mutex. Events arrive {e after} the primitive
    applied, so checks that need the pre-event shadow run before the shadow
    is updated. *)

open Nvm

type vclass = Flush_order | Reclamation

let vclass_name = function
  | Flush_order -> "flush-order"
  | Reclamation -> "reclamation"

type violation = {
  vclass : vclass;
  code : string;
  addr : int;
  line : int;
  line_state : string;
  tid : int;
  op_seq : int;
  op_name : string;
  detail : string;
}

type config = {
  durable : bool;
  require_publish_mark : bool;
  strict_deref : bool;
  root_limit : int;
  max_violations : int;
}

let default_config ~durable =
  { durable; require_publish_mark = durable; strict_deref = false;
    root_limit = max_int; max_violations = 1000 }

(* One canonical mapping from persist mode to checker expectations: the
   fence-minimal flavors are durable but never mark links, so only the
   link-and-persist family is held to the publish-mark protocol. *)
let config_for_mode mode =
  {
    (default_config ~durable:(Lfds.Persist_mode.is_durable mode)) with
    require_publish_mark = Lfds.Persist_mode.persists_links mode;
  }

(* Shadow of one allocation, keyed by base address in [nodes]. [published]
   flips when a CAS installs the node's address in a link outside it;
   [reclaim_ok] flips when an A_reclaim annotation presents a safe epoch
   snapshot covering the node. A freed record stays in the table (edges and
   ownership already scrubbed) until the slot is reallocated. *)
type node = {
  base : int;
  size : int;
  mutable published : bool;
  mutable retired : bool;
  mutable freed : bool;
  mutable reclaim_ok : bool;
}

type t = {
  heap : Heap.t;
  cfg : config;
  lock : Mutex.t;
  mutable obs_handle : Heap.Observer.handle option;
  mutable is_active : bool;
  line_state : Bytes.t;  (* '\000' clean | '\001' dirty | '\002' wb-pending *)
  word_synced : Bytes.t;  (* '\001' iff durable image known to hold the word *)
  last_tid : int array;
  last_op : int array;
  word_owner : int array;  (* owning node base, or -1 for roots/static *)
  nodes : (int, node) Hashtbl.t;
  incoming : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* node base -> links *)
  lc_registered : (int, unit) Hashtbl.t;  (* links owned by link-cache entries *)
  index_words : (int, unit) Hashtbl.t;
      (* root/static words declared to hold monotonic integer indices
         (deque top/bottom): their payloads are not pointers, so CASes on
         them are exempt from mark-protocol and reachability interpretation
         (an index decrement like 6 -> 5 flips what reads as the unflushed
         bit over an identical "address" part). *)
  op_seq : int array;  (* per tid *)
  op_name : string array;  (* per tid *)
  deref_watch : (int, int) Hashtbl.t array;
      (* per tid: node base -> marked link it was reached through *)
  validity_watch : (int, int) Hashtbl.t array;
      (* per tid: validity word -> state announced during the current op *)
  mutable viols : violation list;  (* newest first; reversed on read *)
  mutable nviols : int;
  mutable ndropped : int;
}

let wpl = Cacheline.words_per_line
let ntids = Pstats.max_threads
let addr_part = Marked_ptr.addr

let state_name t line =
  match Bytes.get t.line_state line with
  | '\000' -> "clean"
  | '\001' -> "dirty"
  | _ -> "wb-pending"

let report t ~vclass ~code ~addr ~tid detail =
  if t.nviols >= t.cfg.max_violations then t.ndropped <- t.ndropped + 1
  else begin
    let line = addr / wpl in
    t.viols <-
      {
        vclass;
        code;
        addr;
        line;
        line_state = state_name t line;
        tid;
        op_seq = t.op_seq.(tid);
        op_name = t.op_name.(tid);
        detail;
      }
      :: t.viols;
    t.nviols <- t.nviols + 1
  end

(* ---- reachability edges ----------------------------------------------- *)

let incoming_of t base =
  match Hashtbl.find_opt t.incoming base with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.replace t.incoming base h;
      h

let remove_edge t ~link ~target =
  match Hashtbl.find_opt t.incoming target with
  | Some h -> Hashtbl.remove h link
  | None -> ()

(* Is [link] a word that can legitimately hold a structure pointer? Roots
   and static slots live below [root_limit]; everything else must be inside
   an allocated node. Allocator bitmaps, APT slots and log lines fail this
   test — their integer payloads must not be read as mark-protocol traffic
   or reachability edges. *)
let pointer_bearing t link =
  (not (Hashtbl.mem t.index_words link))
  && (t.word_owner.(link) >= 0 || link < t.cfg.root_limit)

(* A written word is an edge iff it is pointer-bearing and its address part
   is a tracked node base. Mark-only rewrites (same address part) leave the
   edge untouched. *)
let update_edges t ~link ~old_v ~new_v =
  if pointer_bearing t link then begin
    let ob = addr_part old_v and nb = addr_part new_v in
    if ob <> nb then begin
      if Hashtbl.mem t.nodes ob then remove_edge t ~link ~target:ob;
      if Hashtbl.mem t.nodes nb then Hashtbl.replace (incoming_of t nb) link ()
    end
  end

(* Shadow update shared by store / CAS / fetch-add, after all pre-checks. *)
let record_write t ~tid ~addr ~old_v ~new_v =
  Bytes.unsafe_set t.word_synced addr '\000';
  Bytes.unsafe_set t.line_state (addr / wpl) '\001';
  t.last_tid.(addr) <- tid;
  t.last_op.(addr) <- t.op_seq.(tid);
  update_edges t ~link:addr ~old_v ~new_v

(* ---- flush-order checkers --------------------------------------------- *)

(* FO1 — publish-unpersisted. Marking [n] published also publishes, via the
   volatile image, every private allocation it points at (a BST publish of
   an internal node carries its fresh leaf): the fence that covered the
   parent must have covered them too, so each gets the same span check. *)
let rec publish t ~tid n =
  if not n.published then begin
    n.published <- true;
    if t.cfg.durable then begin
      let unsynced = ref 0 and first = ref (-1) in
      for w = n.base to n.base + n.size - 1 do
        if Bytes.get t.word_synced w = '\000' then begin
          incr unsynced;
          if !first < 0 then first := w
        end
      done;
      if !unsynced > 0 then
        report t ~vclass:Flush_order ~code:"publish-unpersisted" ~addr:!first
          ~tid
          (Printf.sprintf
             "node %d published with %d word(s) never written back + fenced \
              (first: %d)"
             n.base !unsynced !first)
    end;
    for w = n.base to n.base + n.size - 1 do
      match Hashtbl.find_opt t.nodes (addr_part (Heap.peek t.heap w)) with
      | Some m when (not m.freed) && not m.published -> publish t ~tid m
      | _ -> ()
    done
  end

(* Is a CAS of [desired] into [link] a first publish? Only when the target
   is a tracked, private allocation and the link itself lives outside it, in
   a root/static slot or a live published node — a store into one private
   node pointing at another stays private. *)
let cas_publishes t ~link ~desired =
  if not (pointer_bearing t link) then None
  else
    match Hashtbl.find_opt t.nodes (addr_part desired) with
    | Some n when (not n.freed) && not n.published -> (
        match t.word_owner.(link) with
        | -1 -> Some n
        | src when src = n.base -> None
        | src -> (
            match Hashtbl.find_opt t.nodes src with
            | Some s when s.published && not s.freed -> Some n
            | Some _ -> None
            | None -> Some n))
    | _ -> None

let on_cas t ~tid ~addr ~expected ~desired =
  (match cas_publishes t ~link:addr ~desired with
  | Some n ->
      (* FO3 — in durable modes the publishing CAS must announce itself with
         the unflushed mark so concurrent readers can help persist it. *)
      if
        t.cfg.durable && t.cfg.require_publish_mark
        && not (Marked_ptr.is_unflushed desired)
      then
        report t ~vclass:Flush_order ~code:"publish-unmarked" ~addr ~tid
          (Printf.sprintf
             "link %d published node %d with a plain CAS (no unflushed mark)"
             addr n.base);
      publish t ~tid n
  | None -> ());
  (* FO2 — clear-unsynced: dropping the unflushed mark asserts the link is
     durable, which needs either a program-ordered drain of its line or a
     link-cache entry owning it. The [durable_load] guard covers the
     cross-thread event-order inversion where a helper's fence drained the
     line but its drain event lost the race to this CAS event: if the marked
     value did reach NVRAM, the clear was justified. *)
  if
    t.cfg.durable
    && Marked_ptr.is_unflushed expected
    && (not (Marked_ptr.is_unflushed desired))
    && addr_part expected = addr_part desired
    && pointer_bearing t addr
    && Bytes.get t.word_synced addr = '\000'
    && (not (Hashtbl.mem t.lc_registered addr))
    && Heap.durable_load t.heap addr <> expected
  then
    report t ~vclass:Flush_order ~code:"clear-unsynced" ~addr ~tid
      (Printf.sprintf
         "unflushed mark on link %d cleared before its line was written back \
          + fenced"
         addr);
  record_write t ~tid ~addr ~old_v:expected ~new_v:desired

(* Strict-deref: remember each marked link value a thread reads; a later
   load inside the pointed-to node, while the link is still unsynced and
   still marked, walked through an unpersisted link. Single-domain only. *)
let on_load t ~tid ~addr ~value =
  let w = t.deref_watch.(tid) in
  (match t.word_owner.(addr) with
  | -1 -> ()
  | owner -> (
      match Hashtbl.find_opt w owner with
      | None -> ()
      | Some link ->
          if
            Bytes.get t.word_synced link = '\000'
            && Marked_ptr.is_unflushed (Heap.peek t.heap link)
            && not (Hashtbl.mem t.lc_registered link)
          then
            report t ~vclass:Flush_order ~code:"deref-marked" ~addr:link ~tid
              (Printf.sprintf
                 "load of %d dereferences node %d through link %d, still \
                  marked unflushed and never persisted"
                 addr owner link);
          Hashtbl.remove w owner));
  if Marked_ptr.is_unflushed value && pointer_bearing t addr then begin
    let b = addr_part value in
    if Hashtbl.mem t.nodes b then Hashtbl.replace w b addr
  end

(* ---- reclamation checkers --------------------------------------------- *)

let on_alloc t addr size =
  let n =
    { base = addr; size; published = false; retired = false; freed = false;
      reclaim_ok = false }
  in
  Hashtbl.replace t.nodes addr n;
  (match Hashtbl.find_opt t.incoming addr with
  | Some h -> Hashtbl.reset h
  | None -> ());
  (* The slot's previous occupant may have left words volatile-only; the new
     owner is only accountable for words it writes itself, so the span
     starts synced. *)
  for w = addr to addr + size - 1 do
    Bytes.unsafe_set t.word_synced w '\001';
    t.word_owner.(w) <- addr
  done

let on_free t ~tid addr =
  match Hashtbl.find_opt t.nodes addr with
  | None -> ()
  | Some n ->
      if not n.freed then begin
        (* R1a — every legitimate free of a published node goes through a
           reclamation generation, which proves its grace period first. *)
        if n.published && not n.reclaim_ok then
          report t ~vclass:Reclamation ~code:"free-live" ~addr ~tid
            (Printf.sprintf
               "node %d freed while published, with no safe reclamation \
                evidence%s"
               addr
               (if n.retired then " (retired but grace period not proven)"
                else ""));
        (* R1b — a freed node must not stay reachable: check every recorded
           incoming link that still points here against its source. *)
        (match Hashtbl.find_opt t.incoming addr with
        | None -> ()
        | Some h ->
            Hashtbl.iter
              (fun l () ->
                if addr_part (Heap.peek t.heap l) = addr then begin
                  let live =
                    match t.word_owner.(l) with
                    | -1 -> true
                    | src -> (
                        match Hashtbl.find_opt t.nodes src with
                        | Some s -> s.published && (not s.retired) && not s.freed
                        | None -> true)
                  in
                  if live then
                    report t ~vclass:Reclamation ~code:"free-reachable"
                      ~addr:l ~tid
                      (Printf.sprintf
                         "node %d freed while still reachable through live \
                          link %d"
                         addr l)
                end)
              h;
            Hashtbl.reset h);
        (* Scrub the node's own outgoing edges before releasing ownership,
           or its targets would later blame a root/static source. *)
        for w = addr to addr + n.size - 1 do
          let b = addr_part (Heap.peek t.heap w) in
          if b <> addr then remove_edge t ~link:w ~target:b;
          t.word_owner.(w) <- -1
        done;
        n.freed <- true
      end

let on_retire t ~tid addr =
  match Hashtbl.find_opt t.nodes addr with
  | None -> ()
  | Some n ->
      if not n.published then
        report t ~vclass:Reclamation ~code:"retire-unpublished" ~addr ~tid
          (Printf.sprintf "node %d retired but was never published" addr);
      n.retired <- true

(* R2 — a generation is safe iff no thread still sits inside (odd counter)
   the epoch it held when the generation was sealed; mirror of
   [Epoch.safe]. *)
let on_reclaim t ~tid ~nodes ~snapshot ~current =
  let unsafe = ref (-1) in
  Array.iteri
    (fun i s ->
      if
        !unsafe < 0 && s land 1 = 1
        && i < Array.length current
        && current.(i) = s
      then unsafe := i)
    snapshot;
  if !unsafe >= 0 then
    report t ~vclass:Reclamation ~code:"reclaim-early"
      ~addr:(match nodes with a :: _ -> a | [] -> 0)
      ~tid
      (Printf.sprintf
         "generation of %d node(s) freed while tid %d is still inside epoch \
          %d"
         (List.length nodes) !unsafe snapshot.(!unsafe));
  List.iter
    (fun a ->
      match Hashtbl.find_opt t.nodes a with
      | Some n -> n.reclaim_ok <- true
      | None -> ())
    nodes

(* ---- event dispatch --------------------------------------------------- *)

let on_drain t line reason =
  Bytes.unsafe_set t.line_state line '\000';
  match reason with
  | Heap.Drain_fence | Heap.Drain_clflush | Heap.Drain_shutdown ->
      for w = line * wpl to (line * wpl) + wpl - 1 do
        Bytes.unsafe_set t.word_synced w '\001'
      done;
      if Hashtbl.length t.lc_registered > 0 then begin
        let stale =
          Hashtbl.fold
            (fun l () acc -> if l / wpl = line then l :: acc else acc)
            t.lc_registered []
        in
        List.iter (Hashtbl.remove t.lc_registered) stale
      end
  | Heap.Drain_overflow | Heap.Drain_crash ->
      (* Durable by luck: the data reached NVRAM, but the program never
         ordered it, so it earns no protocol credit. *)
      ()

let on_note t ~tid note =
  match note with
  | Heap.A_alloc { addr; size_class } -> on_alloc t addr size_class
  | Heap.A_free { addr } -> on_free t ~tid addr
  | Heap.A_retire { addr } -> on_retire t ~tid addr
  | Heap.A_reclaim { nodes; snapshot; current } ->
      on_reclaim t ~tid ~nodes ~snapshot ~current
  | Heap.A_lc_register { link } -> Hashtbl.replace t.lc_registered link ()
  | Heap.A_op_begin { name; key = _ } ->
      t.op_seq.(tid) <- t.op_seq.(tid) + 1;
      t.op_name.(tid) <- name;
      Hashtbl.reset t.deref_watch.(tid);
      Hashtbl.reset t.validity_watch.(tid)
  | Heap.A_validity { addr; state } ->
      Hashtbl.replace t.validity_watch.(tid) addr state
  | Heap.A_op_end _ ->
      (* FO5 — validity-unfenced: every validity verdict announced during
         this operation must be durable by the time the operation answers
         (the op-end fence fires before this annotation). Program-ordered
         drain credit, or an actual durable-image match (a helper's fence
         may have drained the line before our event was processed). *)
      if t.cfg.durable then
        Hashtbl.iter
          (fun addr _state ->
            if
              Bytes.get t.word_synced addr = '\000'
              && Heap.durable_load t.heap addr <> Heap.peek t.heap addr
            then
              report t ~vclass:Flush_order ~code:"validity-unfenced" ~addr
                ~tid
                (Printf.sprintf
                   "validity verdict on word %d announced this op but not \
                    durable at op end"
                   addr))
          t.validity_watch.(tid);
      Hashtbl.reset t.validity_watch.(tid)
  | Heap.A_hb_acquire _ | Heap.A_hb_release _ ->
      (* Happens-before edges are NVRace's input; flush-order checking has
         no use for them. *)
      ()

let handle t ev =
  match ev with
  | Heap.Ev_load { tid; addr; value } ->
      if t.cfg.strict_deref && t.cfg.durable then on_load t ~tid ~addr ~value
  | Heap.Ev_store { tid; addr; value; old } ->
      record_write t ~tid ~addr ~old_v:old ~new_v:value
  | Heap.Ev_cas { tid; addr; expected; desired; success } ->
      if success then on_cas t ~tid ~addr ~expected ~desired
  | Heap.Ev_write_back { tid = _; addr } ->
      let line = addr / wpl in
      if Bytes.get t.line_state line = '\001' then
        Bytes.unsafe_set t.line_state line '\002'
  | Heap.Ev_fence _ -> ()
  | Heap.Ev_drain { line; reason } -> on_drain t line reason
  | Heap.Ev_crash ->
      (* Recovery rewrites links and frees reachable nodes outside the
         runtime protocol; stop judging. *)
      t.is_active <- false
  | Heap.Ev_note { tid; note } -> on_note t ~tid note

let on_event t ev =
  Mutex.lock t.lock;
  (try if t.is_active then handle t ev
   with e ->
     Mutex.unlock t.lock;
     raise e);
  Mutex.unlock t.lock

(* ---- lifecycle -------------------------------------------------------- *)

let attach ?config heap =
  let cfg = match config with Some c -> c | None -> default_config ~durable:true in
  let size = Heap.size_words heap in
  let t =
    {
      heap;
      cfg;
      lock = Mutex.create ();
      obs_handle = None;
      is_active = true;
      line_state = Bytes.make ((size + wpl - 1) / wpl) '\000';
      word_synced = Bytes.make size '\001';
      last_tid = Array.make size (-1);
      last_op = Array.make size 0;
      word_owner = Array.make size (-1);
      nodes = Hashtbl.create 1024;
      incoming = Hashtbl.create 1024;
      lc_registered = Hashtbl.create 64;
      index_words = Hashtbl.create 8;
      op_seq = Array.make ntids 0;
      op_name = Array.make ntids "?";
      deref_watch = Array.init ntids (fun _ -> Hashtbl.create 8);
      validity_watch = Array.init ntids (fun _ -> Hashtbl.create 8);
      viols = [];
      nviols = 0;
      ndropped = 0;
    }
  in
  t.obs_handle <- Some (Heap.Observer.add heap (on_event t));
  t

(* Register an allocation that predates the attach (a sentinel, a deque
   buffer): counted as already published with a durably-synced span, so
   links inside it participate in the checkers and a later CAS installing
   its address elsewhere is not mistaken for a first publish. *)
let seed_node t ~base ~size =
  Mutex.lock t.lock;
  let n =
    { base; size; published = true; retired = false; freed = false;
      reclaim_ok = false }
  in
  Hashtbl.replace t.nodes base n;
  for w = base to base + size - 1 do
    Bytes.unsafe_set t.word_synced w '\001';
    t.word_owner.(w) <- base
  done;
  Mutex.unlock t.lock

let declare_index_word t addr =
  Mutex.lock t.lock;
  Hashtbl.replace t.index_words addr ();
  Mutex.unlock t.lock

let detach t =
  match t.obs_handle with
  | None -> ()
  | Some h ->
      Heap.Observer.remove t.heap h;
      t.obs_handle <- None
let violations t = List.rev t.viols
let violation_count t = t.nviols
let dropped t = t.ndropped
let active t = t.is_active

let clear t =
  Mutex.lock t.lock;
  t.viols <- [];
  t.nviols <- 0;
  t.ndropped <- 0;
  Mutex.unlock t.lock

let pp_violation ppf v =
  Format.fprintf ppf
    "[%s] %s: word %d (line %d, %s) tid %d op #%d %s — %s"
    (vclass_name v.vclass) v.code v.addr v.line v.line_state v.tid v.op_seq
    v.op_name v.detail

let violation_to_string v = Format.asprintf "%a" pp_violation v
