(** NVSan: a crash-consistency sanitizer for the simulated NVM heap.

    Attaches to a heap through the {!Nvm.Heap} observer hook and maintains a
    shadow of the program's persist state: per cache line, whether it is
    clean / dirty / write-back-pending; per word, whether the durable image
    is known to hold the volatile value (only program-ordered drains —
    fence, clflush, shutdown — earn that credit; overflow spills and crash
    evictions are durable by luck) and which thread and operation last wrote
    it. On top of the shadow run two online checker families:

    {b Flush-order} — a link CAS must not publish a node whose words were
    never written back and fenced ([publish-unpersisted]); in durable modes
    the publishing CAS must carry the link-and-persist unflushed mark
    ([publish-unmarked]); clearing an unflushed mark requires the link's
    line to have drained first, unless a link-cache entry registered
    ownership of the link's durability ([clear-unsynced]); and, under
    [strict_deref], no load may walk through a still-marked, still-unsynced
    link into the node it points at ([deref-marked]).

    {b Reclamation} — freeing a node that is published and was never proven
    safe to reclaim ([free-live]); freeing a node still pointed to by a
    root, a static slot or a live published node ([free-reachable]);
    retiring a node that was never published ([retire-unpublished]); and
    freeing a reclamation generation whose epoch snapshot is not yet safe —
    some thread still sits in the epoch it held at seal time
    ([reclaim-early]).

    The third checker family, exhaustive crash-state enumeration, lives in
    {!Crash_enum} and runs on an unobserved heap.

    Hook bodies serialize on an internal mutex, so multi-domain runs are
    safe (and slow — the sanitizer is a testing tool, not a production
    mode). The sanitizer deactivates itself when the heap crashes: recovery
    code legitimately frees reachable nodes and rewrites links without the
    runtime protocol. *)

type vclass = Flush_order | Reclamation

val vclass_name : vclass -> string

type violation = {
  vclass : vclass;
  code : string;  (** stable identifier, e.g. ["publish-unpersisted"] *)
  addr : int;  (** offending word *)
  line : int;  (** its cache line *)
  line_state : string;  (** shadow line state at report time *)
  tid : int;  (** acting thread *)
  op_seq : int;  (** per-thread operation sequence number *)
  op_name : string;  (** enclosing operation, ["?"] outside any *)
  detail : string;
}

type config = {
  durable : bool;
      (** expect a durable-persistence protocol (false for Volatile runs:
          flush-order checkers off, reclamation checkers stay on) *)
  require_publish_mark : bool;
      (** expect the publishing CAS to carry the link-and-persist unflushed
          mark ([publish-unmarked]). True for link-and-persist / link-cache;
          set false for the fence-minimal flavors (NVTraverse, link-free),
          which never mark links — their publish-ordering obligations are
          checked by [publish-unpersisted] and [validity-unfenced] instead. *)
  strict_deref : bool;
      (** flag loads that walk through a still-unpersisted marked link.
          Sound only single-domain: concurrent traversals legitimately read
          links another thread has marked but not yet persisted. *)
  root_limit : int;
      (** only words below this address, or inside allocated nodes, are
          treated as structure links (pass [Lfds.Ctx.static_limit]).
          Allocator bitmaps and other bookkeeping words above it are CASed
          with integer payloads that would otherwise fake mark-protocol
          traffic and reachability edges. Default: no limit. *)
  max_violations : int;  (** recording cap; the rest are only counted *)
}

val default_config : durable:bool -> config

(** The canonical checker expectations for a persist mode: [durable] per
    [Persist_mode.is_durable], [require_publish_mark] per
    [Persist_mode.persists_links]; other fields as [default_config]. *)
val config_for_mode : Lfds.Persist_mode.t -> config

type t

(** Attach a sanitizer to [heap] through the observer multiplexer
    ({!Nvm.Heap.Observer}); other observers — e.g. an NVTrace flight
    recorder — keep running alongside. Attach at a quiescent point, before
    the workload under test. *)
val attach : ?config:config -> Nvm.Heap.t -> t

(** Detach from the heap (removes only this sanitizer's observer; others
    stay registered). Recorded violations remain readable; idempotent. *)
val detach : t -> unit

(** Register an allocation that predates the attach — a sentinel node, a
    deque buffer. Its span counts as durably synced and the node as
    already published, so links inside it participate in the checkers and
    a later CAS installing its address elsewhere (e.g. a volatile tail
    root catching up) is not mistaken for a first publish. Call right
    after {!attach}, at the same quiescent point, for every allocation the
    structure's reachability iterator reports. *)
val seed_node : t -> base:int -> size:int -> unit

(** Declare a root or static word whose payload is a monotonic integer
    index (a Chase-Lev [top]/[bottom]), not a pointer. Small integers are
    indistinguishable from marked null pointers — decrementing 6 to 5
    reads as clearing the unflushed bit over an identical address part —
    so the sanitizer must be told to exempt such words from mark-protocol
    and reachability interpretation. Call alongside {!seed_node}, at the
    quiescent attach point. *)
val declare_index_word : t -> int -> unit

(** Recorded violations, oldest first. *)
val violations : t -> violation list

val violation_count : t -> int

(** Violations beyond [max_violations], counted but not recorded. *)
val dropped : t -> int

(** Whether the sanitizer is still checking (false after a heap crash). *)
val active : t -> bool

val clear : t -> unit
val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string
