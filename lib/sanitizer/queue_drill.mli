(** Producer-consumer crash drill over the FIFO shapes.

    Real domains stream tagged values (producer id x sequence number)
    through an MPMC queue or a work-stealing deque (single owner producing,
    thieves consuming). The heap trip-wire kills one domain mid-operation;
    the rest stop at operation boundaries; then the machine power-fails
    with seeded evictions and recovery runs. The audit compares three
    records: per-producer {e acked} productions, per-consumer {e acked}
    consumptions, and the drained post-recovery contents.

    Audit rules:
    - {e No duplication}: a value consumed by two consumers, or recovered
      twice, is a logic bug in every flavor. A value both consumed-acked
      and recovered is a violation only for ack-durable flavors (lp / nvt /
      lf) — link-cache is at-least-once (a consumed ack may be durably
      lost, resurrecting the item).
    - {e No acked item lost} (ack-durable flavors): every acked production
      must be acked-consumed or recovered, minus at most one item the
      killed domain may have durably consumed without delivering its ack.
    - {e Per-producer FIFO order}: each producer's subsequence is strictly
      increasing in every consumer's stream and in the recovered drain;
      ack-durable flavors additionally require every consumed item of a
      producer to precede every recovered one. *)

type report = {
  structure : string;
  flavor : string;
  produced : int;  (** acked enqueues/pushes across producers *)
  consumed : int;  (** acked dequeues/steals across consumers *)
  recovered : int;  (** items drained after recovery *)
  lost_inflight : int;
      (** acked productions in neither record (ack-durable flavors; at most
          1 is legitimate) *)
  tripped : bool;  (** did the trip-wire actually kill a domain? *)
  freed : int;  (** leaked nodes freed by the recovery sweep *)
  recovery_s : float;
  violations : string list;
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

(** Run the drill. Defaults: 2 producers (forced to 1 for the deque) + 2
    consumers, 300 ops per producer, trip after 4000 persisted-memory
    primitives, eviction probability 0.5. Deterministic apart from domain
    scheduling. *)
val run :
  ?producers:int ->
  ?consumers:int ->
  ?ops_per_producer:int ->
  ?seed:int ->
  ?trip:int ->
  ?eviction_probability:float ->
  structure:Harness.Queue_instance.structure ->
  flavor:Harness.Instance.flavor ->
  unit ->
  report
