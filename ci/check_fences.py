#!/usr/bin/env python3
"""Fences/op regression guard.

Compares the "flavors" and "queues" records of one or more nvlf-bench/2
JSON documents (produced by `dune exec bench/main.exe -- flavors --json
FILE` and `-- queues --json FILE`) against the committed baseline in
ci/fences_baseline.json. Fails (exit 1) if any durable flavor's fences/op
regresses by more than the tolerance (default 10%) on any structure x mix
point, or if a baselined point is missing from the run.

Fence counts per operation are a property of the persistence protocol, not
of machine speed, so they are stable across hosts at a fixed seed; the
tolerance absorbs mix sampling noise from the timed run, not scheduling.
Only single-thread points are baselined: multi-thread interleavings move
the help/steal ratios with scheduling.

Usage:
    ci/check_fences.py flavors.json [queues.json ...]
                       [--baseline ci/fences_baseline.json]
                       [--tolerance 0.10] [--update]

--update rewrites the baseline from the runs instead of checking (commit
the result when a protocol change intentionally moves the fence budget).
"""

import argparse
import json
import sys

DURABLE = {"link-persist", "link-cache", "nvtraverse", "link-free"}
KINDS = {"flavors", "queues"}


def load_runs(paths):
    points = {}
    for path in paths:
        doc = json.load(open(path))
        if doc.get("schema") != "nvlf-bench/2":
            sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
        found = 0
        for rec in doc["records"]:
            if (rec.get("kind") in KINDS and rec["flavor"] in DURABLE
                    and rec.get("threads", 1) == 1):
                key = f"{rec['structure']}/{rec['flavor']}/{rec['mix']}"
                points[key] = rec["fences_per_op"]
                found += 1
        if not found:
            sys.exit(f"{path}: no single-thread durable-flavor records")
    return points


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("runs", nargs="+",
                    help="nvlf-bench/2 JSON from the flavors/queues subcommands")
    ap.add_argument("--baseline", default="ci/fences_baseline.json")
    ap.add_argument("--tolerance", type=float, default=0.10)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from these runs instead of checking")
    args = ap.parse_args()

    points = load_runs(args.runs)

    if args.update:
        doc = json.load(open(args.baseline))
        doc["fences_per_op"] = {k: round(v, 4) for k, v in sorted(points.items())}
        json.dump(doc, open(args.baseline, "w"), indent=2, sort_keys=True)
        print(f"{args.baseline}: rewrote {len(points)} entries")
        return

    base = json.load(open(args.baseline))["fences_per_op"]
    failures = []
    for key, expected in sorted(base.items()):
        got = points.get(key)
        if got is None:
            failures.append(f"{key}: missing from run (baseline {expected:.4f})")
            continue
        limit = expected * (1.0 + args.tolerance)
        verdict = "FAIL" if got > limit else "ok"
        print(f"{verdict:4s} {key:45s} {got:7.4f} vs baseline {expected:7.4f}"
              f" (limit {limit:.4f})")
        if got > limit:
            failures.append(
                f"{key}: {got:.4f} fences/op exceeds baseline {expected:.4f} "
                f"by more than {args.tolerance:.0%}")
    if failures:
        print(f"\n{len(failures)} fences/op regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {len(base)} points within {args.tolerance:.0%} of baseline")


if __name__ == "__main__":
    main()
