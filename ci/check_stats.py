#!/usr/bin/env python3
"""Stats-plane smoke checker for CI.

Scrapes a live NVServe instance and validates the telemetry wire contract:

  * `stats nvlf` answers a STAT list whose key sequence matches the
    committed baseline (ci/stats_nvlf_keys.txt) exactly — the key set and
    order are append-only wire contract, and an accidental rename/reorder
    must fail the build;
  * a handful of invariants on the scraped values (counters non-negative,
    requests counted, shard items summing to curr_items);
  * optionally, the Prometheus text exposition on --metrics-port parses
    line-wise and carries the same counters.

Usage:
  check_stats.py --port 21513 [--metrics-port 21613] \
                 [--baseline ci/stats_nvlf_keys.txt] [--update]

--update rewrites the baseline from the live scrape instead of checking
(run it when keys are added on purpose, and commit the refreshed file).
"""

import argparse
import socket
import sys
import urllib.request


def scrape(port, arg="nvlf"):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
        s.sendall(f"stats {arg}\r\n".encode())
        buf = b""
        while not (buf.endswith(b"END\r\n") or buf.endswith(b"ERROR\r\n")):
            chunk = s.recv(4096)
            if not chunk:
                raise SystemExit("server closed the connection mid-scrape")
            buf += chunk
    kvs = []
    for line in buf.decode().split("\r\n"):
        parts = line.split(" ", 2)
        if parts[0] == "STAT" and len(parts) >= 3:
            kvs.append((parts[1], parts[2]))
    return kvs


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--metrics-port", type=int, default=None)
    ap.add_argument("--baseline", default="ci/stats_nvlf_keys.txt")
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args()

    kvs = scrape(args.port)
    if not kvs:
        raise SystemExit("stats nvlf returned no STAT lines")
    keys = [k for k, _ in kvs]
    vals = dict(kvs)

    if args.update:
        with open(args.baseline, "w") as f:
            f.write("\n".join(keys) + "\n")
        print(f"{args.baseline} updated: {len(keys)} keys")
        return

    with open(args.baseline) as f:
        expected = f.read().split()
    if keys != expected:
        extra = [k for k in keys if k not in expected]
        missing = [k for k in expected if k not in keys]
        print("stats nvlf key schema drifted from", args.baseline)
        if missing:
            print("  missing:", ", ".join(missing))
        if extra:
            print("  unexpected:", ", ".join(extra))
        if not missing and not extra:
            print("  same keys, different order")
        print("  (rerun with --update and commit the baseline if this is",
              "an intentional append)")
        sys.exit(1)

    # Value sanity: the scrape ran over a served workload.
    n_shards = int(vals["shards"])
    for key in ("requests", "requests_served", "fences", "conns_accepted"):
        assert int(vals[key]) > 0, f"{key} = {vals[key]}, expected > 0"
    shard_items = sum(int(vals[f"shard{s}_items"]) for s in range(n_shards))
    assert shard_items == int(vals["curr_items"]), (
        f"shard items {shard_items} != curr_items {vals['curr_items']}")
    hit_rate = float(vals["get_hit_rate"])
    assert 0.0 <= hit_rate <= 1.0, hit_rate

    if args.metrics_port is not None:
        body = urllib.request.urlopen(
            f"http://127.0.0.1:{args.metrics_port}/metrics", timeout=10
        ).read().decode()
        lines = [l for l in body.splitlines() if l and not l.startswith("#")]
        assert lines, "empty metrics exposition"
        for line in lines:
            name, _, value = line.partition(" ")
            assert name.startswith("nvlf_"), line
            if not name.startswith("nvlf_info"):
                float(value)  # every sample parses
        names = {l.split(" ", 1)[0] for l in lines}
        for want in ("nvlf_requests", "nvlf_fences", "nvlf_curr_items"):
            assert want in names, f"{want} missing from /metrics"
        print(f"/metrics OK: {len(lines)} samples")

    print(f"stats nvlf OK: {len(keys)} keys match {args.baseline}, "
          f"{vals['requests']} requests, {vals['curr_items']} items")


if __name__ == "__main__":
    main()
